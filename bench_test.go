// Benchmark harness: one benchmark per figure and in-text experiment of
// the paper, plus ablations of the design choices called out in DESIGN.md
// §5. Each benchmark runs the relevant scenario and reports the headline
// statistics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full experiment table. EXPERIMENTS.md records
// paper-vs-measured values. Absolute magnitudes are simulator-scale; the
// shapes (who wins, rough factors, crossovers) are the reproduction
// target.
package forkwatch_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"forkwatch"
	"forkwatch/internal/analysis"
	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/keccak"
	"forkwatch/internal/market"
	"forkwatch/internal/p2p"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

// runScenario executes a scenario and returns the report, failing the
// benchmark on error.
func runScenario(b *testing.B, sc *forkwatch.Scenario) *forkwatch.Report {
	b.Helper()
	rep, err := forkwatch.Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkFigure1ShortTermDynamics reproduces Fig 1: blocks per hour,
// difficulty and inter-block delta over the month following the fork.
// Paper: ETC block rate collapses to ~0 for almost a day, deltas spike
// above 1,200 s (~2 orders over the 14 s target), and difficulty takes
// ~2 days to re-adjust.
func BenchmarkFigure1ShortTermDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runScenario(b, forkwatch.NewScenario(1, 30))
		c := rep.Collector
		b.ReportMetric(analysis.MeanOver(c.BlocksPerHour("ETC"), 0, 6), "etc_blocks/hr_h0-6")
		b.ReportMetric(analysis.MeanOver(c.BlocksPerHour("ETH"), 0, 6), "eth_blocks/hr_h0-6")
		b.ReportMetric(analysis.MaxOver(c.HourlyMeanDelta("ETC"), 0, 96), "etc_max_delta_s")
		rec := rep.RecoveryHours()
		b.ReportMetric(float64(rec[1]), "etc_recovery_hours")
	}
}

// BenchmarkFigure2LongTermDynamics reproduces Fig 2 over nine months:
// daily difficulty (ETH ~10x ETC), transactions per day (~2.5:1 rising
// toward ~5:1 in the March speculation wave) and the contract-call
// fraction (similar across chains).
func BenchmarkFigure2LongTermDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runScenario(b, forkwatch.NewScenario(1, 270))
		c := rep.Collector
		days := c.Days()
		dEth := c.DailyDifficulty("ETH")
		dEtc := c.DailyDifficulty("ETC")
		b.ReportMetric(dEth[days-1]/dEtc[days-1], "difficulty_ratio_final")
		b.ReportMetric(dEth[days-1]/dEth[1], "eth_difficulty_growth")
		ethTx := c.TxPerDay("ETH")
		etcTx := c.TxPerDay("ETC")
		early := analysis.MeanOver(ethTx, 30, 60) / analysis.MeanOver(etcTx, 30, 60)
		late := analysis.MeanOver(ethTx, days-10, days) / analysis.MeanOver(etcTx, days-10, days)
		b.ReportMetric(early, "tx_ratio_day30-60")
		b.ReportMetric(late, "tx_ratio_final")
		b.ReportMetric(analysis.MeanOver(c.PctContract("ETH"), 30, days), "eth_pct_contract")
		b.ReportMetric(analysis.MeanOver(c.PctContract("ETC"), 30, days), "etc_pct_contract")
	}
}

// BenchmarkFigure3HashesPerUSD reproduces Fig 3: the expected hashes per
// USD on the two chains are nearly identical (the market operates
// efficiently). Paper: visually indistinguishable curves; we report the
// Pearson correlation over the paper's plotted window (from ~day 50,
// September 2016) and the mean cross-chain payoff ratio.
func BenchmarkFigure3HashesPerUSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runScenario(b, forkwatch.NewScenario(1, 270))
		c := rep.Collector
		days := c.Days()
		eth := c.HashesPerUSD("ETH", 5)
		etc := c.HashesPerUSD("ETC", 5)
		b.ReportMetric(c.PayoffCorrelation(5, "ETH", "ETC"), "correlation_full")
		b.ReportMetric(correlationFrom(eth, etc, 50), "correlation_post_sep")
		// Mean |ratio| deviation from 1 after stabilisation.
		dev := 0.0
		n := 0
		for d := 50; d < days; d++ {
			if etc[d] > 0 {
				r := eth[d] / etc[d]
				if r < 1 {
					r = 1 / r
				}
				dev += r - 1
				n++
			}
		}
		b.ReportMetric(dev/float64(n), "mean_payoff_gap")
	}
}

func correlationFrom(x, y []float64, from int) float64 {
	if from >= len(x) || from >= len(y) {
		return 0
	}
	return market.Correlation(x[from:], y[from:])
}

// BenchmarkFigure4ReplayEchoes reproduces Fig 4: rebroadcast transactions
// spike right after the fork (up to ~50-60% of ETC's traffic), decline as
// users split funds and adopt chain ids, drop sharply at ETC's Jan 2017
// replay protection, yet persist at the study's end. Most echoes flow
// ETH -> ETC.
func BenchmarkFigure4ReplayEchoes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runScenario(b, forkwatch.NewScenario(1, 270))
		c := rep.Collector
		days := c.Days()
		b.ReportMetric(analysis.MaxOver(c.EchoPct("ETC"), 0, 30), "peak_etc_echo_pct")
		b.ReportMetric(analysis.MeanOver(c.EchoesPerDay("ETC"), 100, 170), "etc_echoes/day_pre_eip155")
		b.ReportMetric(analysis.MeanOver(c.EchoesPerDay("ETC"), days-30, days), "etc_echoes/day_final")
		b.ReportMetric(float64(c.TotalEchoes("ETC"))/float64(c.TotalEchoes("ETH")), "direction_ratio_eth_to_etc")
	}
}

// BenchmarkFigure5PoolConcentration reproduces Fig 5: the top-1/3/5 pool
// block shares. Paper: ETH's distribution is immediately the pre-fork one
// and stays constant; ETC starts far more fragmented and converges to the
// same ratios over months.
func BenchmarkFigure5PoolConcentration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runScenario(b, forkwatch.NewScenario(1, 270))
		c := rep.Collector
		days := c.Days()
		t5e := c.TopNShare("ETH", 5)
		t5c := c.TopNShare("ETC", 5)
		b.ReportMetric(analysis.MeanOver(t5e, 0, days), "eth_top5_mean")
		b.ReportMetric(analysis.MeanOver(t5c, 0, 30), "etc_top5_first_month")
		b.ReportMetric(analysis.MeanOver(t5c, days-30, days), "etc_top5_final_month")
		b.ReportMetric(analysis.MeanOver(c.TopNShare("ETH", 1), 0, days), "eth_top1_mean")
		b.ReportMetric(analysis.MeanOver(c.TopNShare("ETC", 1), days-30, days), "etc_top1_final_month")
		b.ReportMetric(analysis.MeanOver(c.PoolGini("ETH"), 0, days), "eth_gini_mean")
		b.ReportMetric(analysis.MeanOver(c.PoolGini("ETC"), days-30, days), "etc_gini_final_month")
	}
}

// BenchmarkE1NodePartition reproduces the in-text observation O1: "ETC
// experienced a sudden loss of roughly 90% of the nodes in its network
// immediately after the fork". A live p2p network of real servers is
// split 90/10 by fork id; the census crawler (presenting ETC's fork id)
// counts who still answers.
func BenchmarkE1NodePartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loss := runPartitionCensus(b, 100, 10)
		b.ReportMetric(loss*100, "node_loss_pct")
	}
}

func runPartitionCensus(b *testing.B, total, keepClassic int) float64 {
	b.Helper()
	gen := &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_469_020_840,
	}
	const forkBlock = 2
	eth, err := chain.NewBlockchain(chain.ETHConfig(forkBlock, nil, types.Address{}), gen)
	if err != nil {
		b.Fatal(err)
	}
	etc, err := eth.NewSibling(chain.ETCConfig(forkBlock), gen)
	if err != nil {
		b.Fatal(err)
	}
	mine := func(bc *chain.Blockchain, cross bool) {
		blk, err := bc.BuildBlock(types.Address{}, bc.Head().Header.Time+14, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := bc.InsertBlock(blk); err != nil {
			b.Fatal(err)
		}
		if cross {
			other := etc
			if bc == etc {
				other = eth
			}
			if err := other.InsertBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	}
	mine(eth, true)  // shared block 1
	mine(eth, false) // divergent fork blocks
	mine(etc, false)

	mem := p2p.NewMemNet()
	nodes := make([]discover.Node, total)
	servers := make([]*p2p.Server, total)
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("census%03d", i)
		h := keccak.Sum256([]byte(name))
		nodes[i] = discover.Node{ID: discover.IDFromHash(types.BytesToHash(h[:])), Addr: name}
		bc := eth
		if i < keepClassic {
			bc = etc
		}
		servers[i] = p2p.NewServer(p2p.Config{
			Self: nodes[i], NetworkID: 1, MaxPeers: total,
			Backend: p2p.NewChainBackend(bc), Dialer: mem,
		})
		ln, err := mem.Listen(name)
		if err != nil {
			b.Fatal(err)
		}
		go servers[i].Serve(ln)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	head := etc.Head()
	td, _ := etc.TD(head.Hash())
	ch := keccak.Sum256([]byte("census-crawler"))
	probe := &p2p.Probe{
		Self: discover.Node{ID: discover.IDFromHash(types.BytesToHash(ch[:])), Addr: "crawler"},
		Status: p2p.Status{
			NetworkID: 1, TD: td, Head: head.Hash(), HeadNumber: head.Number(),
			Genesis: etc.Genesis().Hash(), ForkID: etc.ForkID(),
		},
		Dialer:  mem,
		Timeout: 2 * time.Second,
	}
	res := discover.Crawl(nodes, probe.FindNodeFunc(), 0)
	return float64(len(res.Unreachable)) / float64(len(res.Reachable)+len(res.Unreachable))
}

// BenchmarkE2StabilizationTime reproduces observation O2: "It took two
// days for ETC to resume producing blocks at the target rate" after ~97%+
// of hashpower left instantly, because the difficulty filter's clamped
// step limits the per-block decay.
func BenchmarkE2StabilizationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runScenario(b, forkwatch.NewScenario(1, 10))
		rec := rep.RecoveryHours()
		b.ReportMetric(float64(rec[1]), "etc_recovery_hours")
		b.ReportMetric(float64(rec[1])/24, "etc_recovery_days")
	}
}

// BenchmarkE3TransientForkLength reproduces §2.1's contrast between
// transient protocol-upgrade forks: ETH's November 2016 fork resolved
// after 86 blocks; ETC's January 2017 fork persisted for 3,583. The model:
// the laggard (non-upgraded) subgroup is a sliver of a big, fast-reacting
// network on ETH, and a large pool in a small, slow-reacting network on
// ETC.
func BenchmarkE3TransientForkLength(b *testing.B) {
	cfg := chain.MainnetLikeConfig()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(9))
		ethLike := &sim.ForkRace{Config: cfg, TotalHashrate: 5e12, MinorityShare: 0.2, NoticeMeanSeconds: 2 * 3600}
		etcLike := &sim.ForkRace{Config: cfg, TotalHashrate: 5e11, MinorityShare: 0.3, NoticeMeanSeconds: 20 * 3600}
		b.ReportMetric(ethLike.RunMean(100, r), "eth_fork_blocks")
		b.ReportMetric(etcLike.RunMean(100, r), "etc_fork_blocks")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationDifficultyClamp removes the Homestead -99 clamp on the
// per-block difficulty step. The clamp binds once inter-block deltas
// exceed ~1000 s, i.e. when the hashrate collapse is severe; the ablation
// therefore runs a harsher fork (99.5% of hashpower leaving) where the
// unclamped filter would adjust in a handful of blocks while the clamped
// one stalls — evidence the clamp is the mechanism behind O2's slow
// recovery.
func BenchmarkAblationDifficultyClamp(b *testing.B) {
	for _, clamp := range []int64{99, 1_000_000} {
		b.Run(fmt.Sprintf("clamp=%d", clamp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := forkwatch.NewScenario(1, 6)
				sc.ETCShareAtFork = 0.005
				eng, err := forkwatch.NewEngine(sc)
				if err != nil {
					b.Fatal(err)
				}
				eng.Ledger("ETH").Config().DifficultyClampFactor = clamp
				eng.Ledger("ETC").Config().DifficultyClampFactor = clamp
				col := analysis.NewCollector(sc.Epoch)
				eng.AddObserver(col)
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(col.RecoveryHour("ETC", 14, 0.9, 6)), "etc_recovery_hours")
			}
		})
	}
}

// BenchmarkAblationArbitrageElasticity sweeps how aggressively miners
// chase the more profitable chain. The paper's near-identical payoff
// curves require meaningful elasticity; at zero the two chains' payoffs
// decouple.
func BenchmarkAblationArbitrageElasticity(b *testing.B) {
	for _, e := range []float64{0, 0.02, 0.1, 0.5} {
		b.Run(fmt.Sprintf("elasticity=%v", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := forkwatch.NewScenario(1, 200)
				sc.ArbitrageElasticity = e
				rep := runScenario(b, sc)
				eth := rep.Collector.HashesPerUSD("ETH", 5)
				etc := rep.Collector.HashesPerUSD("ETC", 5)
				b.ReportMetric(correlationFrom(eth, etc, 50), "correlation_post_sep")
			}
		})
	}
}

// BenchmarkAblationReplayProtection compares three deployments of chain
// ids: never, the historical retrofit (day 125/177), and from day 0. The
// echo volume collapses in proportion — quantifying how much of Fig 4 was
// avoidable.
func BenchmarkAblationReplayProtection(b *testing.B) {
	cases := []struct {
		name     string
		eth, etc int
	}{
		{"never", -1, -1},
		{"historical", 125, 177},
		{"from_genesis", 0, 0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := forkwatch.NewScenario(1, 220)
				sc.EIP155DayETH = tc.eth
				sc.EIP155DayETC = tc.etc
				rep := runScenario(b, sc)
				b.ReportMetric(float64(rep.Collector.TotalEchoes("ETC")), "total_etc_echoes")
				b.ReportMetric(analysis.MeanOver(rep.Collector.EchoesPerDay("ETC"), 190, 220), "etc_echoes/day_final")
			}
		})
	}
}

// BenchmarkAblationPoolAttachment sweeps the preferential-attachment
// exponent driving ETC's pool consolidation (Fig 5). At alpha=1 the
// process barely concentrates over the study window; the convergence the
// paper observed implies super-linear attachment.
func BenchmarkAblationPoolAttachment(b *testing.B) {
	for _, alpha := range []float64{1.0, 1.3, 1.8} {
		b.Run(fmt.Sprintf("alpha=%v", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := forkwatch.NewScenario(1, 200)
				sc.ETCPoolAlpha = alpha
				rep := runScenario(b, sc)
				t5 := rep.Collector.TopNShare("ETC", 5)
				b.ReportMetric(analysis.MeanOver(t5, 170, 200), "etc_top5_final_month")
			}
		})
	}
}

// BenchmarkEngineParallelism measures the two-partition day-barrier
// engine across Scenario.Parallelism settings on the Figure 2 horizon
// (270 days, fast ledgers): parallelism=1 is the serial reference,
// parallelism=2/4 step ETH and ETC on separate goroutines. Output is
// byte-identical across variants (TestParallelFiguresByteIdentical), so
// the ns/op delta is pure scheduling: on a multi-core host the parallel
// variants overlap the two partitions' mining; on a single-core host
// they measure the barrier overhead instead.
func BenchmarkEngineParallelism(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := forkwatch.NewScenario(1, 270)
				sc.Parallelism = par
				rep := runScenario(b, sc)
				c := rep.Collector
				days := c.Days()
				// Sanity metric shared across variants: identical by
				// construction, so a drift here flags a determinism bug.
				b.ReportMetric(c.DailyDifficulty("ETH")[days-1]/c.DailyDifficulty("ETC")[days-1], "difficulty_ratio_final")
			}
		})
	}
}

// BenchmarkEngineParallelismFull is the same sweep on the full-fidelity
// substrate (real EVM, tries, seals) over a short horizon, where
// per-block work dominates and the day barrier is comparatively cheap.
func BenchmarkEngineParallelismFull(b *testing.B) {
	for _, par := range []int{1, 2} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := forkwatch.NewScenario(1, 2)
				sc.Mode = forkwatch.ModeFull
				sc.DayLength = 3600
				sc.Users = 50
				sc.ETHTxPerDay = 40
				sc.ETCTxPerDay = 15
				sc.Parallelism = par
				if _, err := forkwatch.Run(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullFidelityDay measures the cost of one simulated day in full
// (EVM + tries + seals) mode relative to the fast ledger, documenting the
// substitution DESIGN.md makes for nine-month horizons.
func BenchmarkFullFidelityDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := forkwatch.NewScenario(int64(i)+1, 1)
		sc.Mode = forkwatch.ModeFull
		sc.DayLength = 3600
		sc.Users = 50
		sc.ETHTxPerDay = 40
		sc.ETCTxPerDay = 15
		if _, err := forkwatch.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullFidelityDayDisk is the same simulated day persisting every
// trie node, block and WAL record through the log-structured disk backend
// (fsync per commit): the price of durability relative to the in-memory
// run above.
func BenchmarkFullFidelityDayDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := forkwatch.NewScenario(int64(i)+1, 1)
		sc.Mode = forkwatch.ModeFull
		sc.DayLength = 3600
		sc.Users = 50
		sc.ETHTxPerDay = 40
		sc.ETCTxPerDay = 15
		sc.Storage = forkwatch.StorageConfig{
			Backend: forkwatch.StorageDisk,
			DataDir: b.TempDir(),
		}
		if _, err := forkwatch.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}
