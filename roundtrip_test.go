package forkwatch

import (
	"bytes"
	"fmt"
	"testing"

	"forkwatch/internal/analysis"
	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/export"
	"forkwatch/internal/sim"
)

// figureCSVs renders every figure of a report to CSV bytes, keyed by name,
// so two reports can be compared byte-for-byte.
func figureCSVs(t *testing.T, rep *Report) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	add := func(name string, s Series) {
		var buf bytes.Buffer
		if err := WriteFigureCSV(&buf, s); err != nil {
			t.Fatalf("rendering %s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	bph, diffH, deltaH := rep.Figure1()
	add("fig1_blocks_per_hour", bph)
	add("fig1_difficulty", diffH)
	add("fig1_delta", deltaH)
	diffD, txD, pctC := rep.Figure2()
	add("fig2_difficulty", diffD)
	add("fig2_tx_per_day", txD)
	add("fig2_pct_contract", pctC)
	hpu, _ := rep.Figure3()
	add("fig3_hashes_per_usd", hpu)
	echoPct, echoes := rep.Figure4()
	add("fig4_echo_pct", echoPct)
	add("fig4_echoes_per_day", echoes)
	for n, s := range rep.Figure5() {
		add(fmt.Sprintf("fig5_top%d", n), s)
	}
	return out
}

// TestFullModeKVRoundTrip is the persistence acceptance test: a ModeFull
// run whose ledgers live in the KV store is exported with WriteChain,
// re-imported into fresh stores with ImportChain, read back through
// chain.Store via export.FromStore, and replayed into a second collector.
// Every figure of the reconstructed report must equal the live run's
// byte-for-byte.
func TestFullModeKVRoundTrip(t *testing.T) {
	sc := NewScenario(7, 2)
	sc.Mode = ModeFull
	sc.DayLength = 3600
	sc.Users = 30
	sc.ETHTxPerDay = 25
	sc.ETCTxPerDay = 10
	sc.Storage = StorageConfig{Backend: StorageCached}

	eng, err := sim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	col := analysis.NewCollector(sc.Epoch)
	rec := &export.Recorder{}
	eng.AddObserver(col)
	eng.AddObserver(rec)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	live := &Report{Scenario: sc, Collector: col}

	stats := eng.StorageStats()
	if stats.Writes == 0 || stats.Reads == 0 {
		t.Fatalf("expected storage traffic, got %+v", stats)
	}
	if stats.Hits == 0 {
		t.Fatalf("cached backend saw no hits: %+v", stats)
	}

	// Snapshot each partition, re-import into a brand-new store, and read
	// the rows back through the store schema rather than the live chain.
	reload := func(name string, led sim.Ledger) ([]export.BlockRow, []export.TxRow) {
		fl, ok := led.(*sim.FullLedger)
		if !ok {
			t.Fatalf("%s: not a full ledger", name)
		}
		var buf bytes.Buffer
		if err := fl.BC.WriteChain(&buf); err != nil {
			t.Fatalf("%s: WriteChain: %v", name, err)
		}
		fresh, err := chain.NewBlockchainWithDB(fl.BC.Config(), eng.Workload.Genesis(), db.NewMemDB())
		if err != nil {
			t.Fatalf("%s: fresh chain: %v", name, err)
		}
		n, err := fresh.ImportChain(&buf)
		if err != nil {
			t.Fatalf("%s: ImportChain after %d blocks: %v", name, n, err)
		}
		if got, want := fresh.Head().Number(), fl.BC.Head().Number(); got != want {
			t.Fatalf("%s: reimported head %d, want %d", name, got, want)
		}
		blocks, txs, err := export.FromStore(name, fresh.Store())
		if err != nil {
			t.Fatalf("%s: FromStore: %v", name, err)
		}
		// The store view and the live-chain view must agree.
		liveBlocks, liveTxs := export.FromBlockchain(name, fresh)
		if len(blocks) != len(liveBlocks) || len(txs) != len(liveTxs) {
			t.Fatalf("%s: store view %d blocks/%d txs, chain view %d/%d",
				name, len(blocks), len(txs), len(liveBlocks), len(liveTxs))
		}
		for i := range blocks {
			a, b := blocks[i], liveBlocks[i]
			same := a.Chain == b.Chain && a.Number == b.Number && a.Hash == b.Hash &&
				a.Time == b.Time && a.Coinbase == b.Coinbase && a.TxCount == b.TxCount &&
				a.Difficulty.Cmp(b.Difficulty) == 0
			if !same {
				t.Fatalf("%s: block row %d differs: store %+v, chain %+v", name, i, a, b)
			}
		}
		for i := range txs {
			if txs[i] != liveTxs[i] {
				t.Fatalf("%s: tx row %d differs: store %+v, chain %+v", name, i, txs[i], liveTxs[i])
			}
		}
		return blocks, txs
	}
	ethBlocks, ethTxs := reload("ETH", eng.Ledger("ETH"))
	etcBlocks, etcTxs := reload("ETC", eng.Ledger("ETC"))

	col2 := analysis.NewCollector(sc.Epoch)
	export.ReplayAll(
		append(ethBlocks, etcBlocks...),
		append(ethTxs, etcTxs...),
		rec.Days, sc.Epoch, sc.DayLength, col2)
	replayed := &Report{Scenario: sc, Collector: col2}

	want := figureCSVs(t, live)
	got := figureCSVs(t, replayed)
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("replayed report missing %s", name)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s differs after round trip:\nlive:\n%s\nreplayed:\n%s", name, w, g)
		}
	}
}
