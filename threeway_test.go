package forkwatch_test

import (
	"bytes"
	"testing"

	"forkwatch"
	"forkwatch/internal/analysis"
)

// threeWayScenario builds the partition-and-heal scenario: an anchor
// majority, a dying partition whose ideological miners follow its
// structural schedule into a day-20 collapse (its hashrate drains to
// zero and migrates to the survivors), and a minority that partially
// rejoins (heals). TRI's zero economic weight keeps the market allocator
// from propping it up; TWO rides the residual slot, so its heal shows up
// through the blend of rejoin curve and market support.
func threeWayScenario(seed int64, par int) *forkwatch.Scenario {
	sc := forkwatch.NewScenario(seed, 40)
	sc.Parallelism = par
	sc.Partitions = []forkwatch.PartitionSpec{
		{Name: "ONE", ChainID: 1, DAOSupport: true, EconomicWeight: 0.65,
			Price0: 10, RallyShare: 1, PrimaryFraction: 0.5, TxPerDay: 200,
			EIP155Day: -1, Pools: 20, PoolZipf: 1.0, PoolAlpha: 1, PoolCap: 0.24},
		{Name: "TRI", ChainID: 3, ShareAtFork: 0.1, EconomicWeight: 0,
			CollapseDay: 20, CollapseTauDays: 3, Behaviour: "ideological",
			Price0: 2, RallyShare: 1, PrimaryFraction: 0.1, TxPerDay: 40,
			EIP155Day: -1, Pools: 10, PoolAlpha: 1.3, PoolCap: 0.3},
		{Name: "TWO", ChainID: 2, ShareAtFork: 0.2, EconomicWeight: 0.6,
			RejoinShare: 0.05, RejoinTauDays: 10, Behaviour: "mixed", IdeologicalShare: 0.5,
			Price0: 5, RallyShare: 1, PrimaryFraction: 0.3, TxPerDay: 80,
			EIP155Day: 15, Pools: 15, PoolChurn: 0.1, PoolAlpha: 1.2, PoolCap: 0.24, PoolLagDays: 5},
	}
	return sc
}

// TestThreeWayPartitionAndHeal runs the three-partition scenario end to
// end and checks the paper's O1/O2-style census per partition: every
// chain mines, every chain carries its own difficulty trajectory, the
// collapsed partition's hashrate drains to (near) zero and the survivors
// absorb it.
func TestThreeWayPartitionAndHeal(t *testing.T) {
	rep, err := forkwatch.Run(threeWayScenario(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Collector
	names := rep.Chains()
	if len(names) != 3 || names[0] != "ONE" || names[1] != "TRI" || names[2] != "TWO" {
		t.Fatalf("chains = %v", names)
	}

	// O1 census: every partition mined blocks in the first week...
	for _, name := range names {
		if week := analysis.MeanOver(c.BlocksPerHour(name), 0, 168); week <= 0 {
			t.Errorf("%s mined nothing in the first week", name)
		}
		if c.Days() != 40 {
			t.Fatalf("days = %d", c.Days())
		}
	}
	// ...at rates ordered like their hashrate shares, and the minorities
	// below the anchor.
	one := analysis.MeanOver(c.BlocksPerHour("ONE"), 0, 48)
	two := analysis.MeanOver(c.BlocksPerHour("TWO"), 0, 48)
	tri := analysis.MeanOver(c.BlocksPerHour("TRI"), 0, 48)
	if !(one > two && two > tri) {
		t.Errorf("block rates not ordered by share: ONE %.1f, TWO %.1f, TRI %.1f", one, two, tri)
	}

	// O2: each partition has its own difficulty trajectory, ordered by
	// hashrate at the end of the run; the collapsed chain's difficulty
	// fell from its pre-collapse level.
	last := c.Days() - 1
	dOne := c.DailyDifficulty("ONE")
	dTwo := c.DailyDifficulty("TWO")
	dTri := c.DailyDifficulty("TRI")
	if !(dOne[last] > dTwo[last] && dTwo[last] > dTri[last]) {
		t.Errorf("final difficulties not ordered: ONE %g, TWO %g, TRI %g", dOne[last], dTwo[last], dTri[last])
	}
	if dTri[last] >= dTri[19] {
		t.Errorf("TRI difficulty did not fall after its collapse: day19 %g, day%d %g", dTri[19], last, dTri[last])
	}

	// Migration: TRI's hashrate collapses to (near) zero and the
	// survivors absorb it.
	hrTri := c.DailyHashrate("TRI")
	hrOne := c.DailyHashrate("ONE")
	hrTwo := c.DailyHashrate("TWO")
	if hrTri[19] <= 0 {
		t.Fatalf("TRI had no hashrate before collapse: %g", hrTri[19])
	}
	if frac := hrTri[last] / (hrOne[last] + hrTwo[last] + hrTri[last]); frac > 0.01 {
		t.Errorf("TRI still holds %.3f of hashrate %d days after collapse", frac, last-20)
	}
	if hrOne[last]+hrTwo[last] <= hrOne[19]+hrTwo[19] {
		t.Errorf("survivors did not absorb the collapsed hashrate: %g -> %g",
			hrOne[19]+hrTwo[19], hrOne[last]+hrTwo[last])
	}

	// Heal: TWO's rejoin curve lifted its structural share above the fork
	// share, visible as a hashrate share above ShareAtFork mid-run.
	if share := hrTwo[15] / (hrOne[15] + hrTwo[15] + hrTri[15]); share <= 0.2 {
		t.Errorf("TWO did not heal above its fork share: %.3f", share)
	}

	// Echoes flow between all pairs: with three chains the mirror fan-out
	// must reach the third partition too.
	if c.TotalEchoes("TRI") == 0 && c.TotalEchoes("TWO") == 0 {
		t.Error("no echoes reached either minority chain")
	}
}

// TestThreeWayParallelismByteIdentical locks the three-way run's figure
// CSVs across serial and concurrent partition stepping — the N-way
// extension of the engine's two-way determinism contract.
func TestThreeWayParallelismByteIdentical(t *testing.T) {
	render := func(par int) map[string][]byte {
		rep, err := forkwatch.Run(threeWayScenario(11, par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		figs, err := forkwatch.RenderFigures(rep)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return figs
	}
	serial := render(1)
	concurrent := render(0)
	if len(serial) == 0 || len(serial) != len(concurrent) {
		t.Fatalf("figure sets differ: %d vs %d", len(serial), len(concurrent))
	}
	for name, want := range serial {
		got, ok := concurrent[name]
		if !ok {
			t.Errorf("figure %s missing from concurrent run", name)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("figure %s differs between parallelism 1 and N", name)
		}
	}
}
