package forkwatch

import (
	"bytes"
	"fmt"
	"sort"
)

// GoldenConfig names one canonical scenario whose figure CSVs are locked
// down by testdata/golden_twoway.json (regenerate with tools/goldengen).
// The set spans both ledger fidelities and the storage-fault machinery so
// a refactor cannot silently change behaviour in any of them.
type GoldenConfig struct {
	Name string
	// Full marks the scenario as full-fidelity (slower; golden_test skips
	// these under -short).
	Full     bool
	Scenario func() *Scenario
}

// GoldenConfigs returns the canonical two-way scenarios behind the golden
// regression test. Kept in the façade so tools/goldengen and golden_test
// build the exact same runs.
func GoldenConfigs() []GoldenConfig {
	return []GoldenConfig{
		{
			Name: "fast",
			Scenario: func() *Scenario {
				sc := NewScenario(3, 30)
				sc.Parallelism = 1
				return sc
			},
		},
		{
			Name: "full",
			Full: true,
			Scenario: func() *Scenario {
				sc := newGoldenFullScenario(7)
				return sc
			},
		},
		{
			Name: "full-faults",
			Full: true,
			Scenario: func() *Scenario {
				sc := newGoldenFullScenario(5)
				sc.StorageFaults = StorageFaults{
					Seed:          99,
					ReadErrRate:   0.20,
					WriteErrRate:  0.20,
					TornBatchRate: 0.002,
				}
				sc.StorageRetryAttempts = 24 // 0.2^24: transient faults never go fatal
				sc.Crashes = []CrashSpec{
					{Chain: "ETH", Day: 0, Block: 4, Op: 3},
					{Chain: "ETH", Day: 1, Block: 2, Op: 40},
					{Chain: "ETC", Day: 1, Block: 0, Op: 1},
				}
				return sc
			},
		},
	}
}

// newGoldenFullScenario is the shrunk full-fidelity scenario the byte-
// identity tests use: two short days, a small population, real blocks.
func newGoldenFullScenario(seed int64) *Scenario {
	sc := NewScenario(seed, 2)
	sc.Mode = ModeFull
	sc.DayLength = 3600
	sc.Users = 40
	sc.ETHTxPerDay = 30
	sc.ETCTxPerDay = 12
	sc.Parallelism = 1
	return sc
}

// RenderFigures renders every figure CSV cmd/forksim emits, keyed by file
// name — the byte-identity currency of the golden and parallelism tests.
func RenderFigures(rep *Report) (map[string][]byte, error) {
	out := make(map[string][]byte)
	put := func(name string, s Series) error {
		var buf bytes.Buffer
		if err := WriteFigureCSV(&buf, s); err != nil {
			return fmt.Errorf("render %s: %w", name, err)
		}
		out[name] = buf.Bytes()
		return nil
	}
	bph, diffH, deltaH := rep.Figure1()
	diffD, txD, pctC := rep.Figure2()
	hpu, _ := rep.Figure3()
	echoPct, echoes := rep.Figure4()
	for _, f := range []struct {
		name string
		s    Series
	}{
		{"fig1_blocks_per_hour.csv", bph},
		{"fig1_difficulty.csv", diffH},
		{"fig1_delta.csv", deltaH},
		{"fig2_difficulty.csv", diffD},
		{"fig2_tx_per_day.csv", txD},
		{"fig2_pct_contract.csv", pctC},
		{"fig3_hashes_per_usd.csv", hpu},
		{"fig4_echo_pct.csv", echoPct},
		{"fig4_echoes_per_day.csv", echoes},
	} {
		if err := put(f.name, f.s); err != nil {
			return nil, err
		}
	}
	top := rep.Figure5()
	ns := make([]int, 0, len(top))
	for n := range top {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		if err := put(fmt.Sprintf("fig5_top%d.csv", n), top[n]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
