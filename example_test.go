package forkwatch_test

import (
	"fmt"
	"log"
	"os"

	"forkwatch"
)

// Example runs a miniature fork scenario end to end and reads one of the
// paper's statistics from the report.
func Example() {
	sc := forkwatch.NewScenario(1, 2) // seed 1, two days
	sc.DayLength = 3600               // compressed days keep the example fast
	sc.Users = 20
	sc.ETHTxPerDay = 10
	sc.ETCTxPerDay = 4

	rep, err := forkwatch.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("days observed:", rep.Collector.Days())
	// Output: days observed: 2
}

// ExampleWriteFigureCSV shows the CSV shape cmd/forksim writes for every
// figure.
func ExampleWriteFigureCSV() {
	s := forkwatch.Series{
		Label:  "blocks/hour",
		Chains: []string{"ETH", "ETC"},
		Values: [][]float64{{257, 256}, {3, 8}},
	}
	if err := forkwatch.WriteFigureCSV(os.Stdout, s); err != nil {
		log.Fatal(err)
	}
	// Output:
	// index,eth_blocks/hour,etc_blocks/hour
	// 0,257,3
	// 1,256,8
}

// ExampleReport_Figure3 reads the market-efficiency statistic (the
// paper's headline from Figure 3) off a short run.
func ExampleReport_Figure3() {
	sc := forkwatch.NewScenario(7, 3)
	sc.DayLength = 3600
	sc.Users = 20
	sc.ETHTxPerDay = 10
	sc.ETCTxPerDay = 4
	rep, err := forkwatch.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	series, _ := rep.Figure3()
	fmt.Println("per-chain series lengths:", len(series.Chain("ETH")), len(series.Chain("ETC")))
	// Output: per-chain series lengths: 3 3
}
