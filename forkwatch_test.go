package forkwatch_test

import (
	"strings"
	"testing"

	"forkwatch"
)

// shortScenario keeps API tests fast: 1-hour days, small population.
func shortScenario(seed int64, days int) *forkwatch.Scenario {
	sc := forkwatch.NewScenario(seed, days)
	sc.DayLength = 3600
	sc.Users = 40
	sc.ETHTxPerDay = 30
	sc.ETCTxPerDay = 12
	return sc
}

func TestRunProducesReport(t *testing.T) {
	rep, err := forkwatch.Run(shortScenario(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collector.Days() != 3 {
		t.Fatalf("days = %d", rep.Collector.Days())
	}

	bph, diff, delta := rep.Figure1()
	if len(bph.Chain("ETH")) == 0 || len(diff.Chain("ETC")) == 0 || len(delta.Chain("ETC")) == 0 {
		t.Error("figure 1 series empty")
	}
	d2, tx, pct := rep.Figure2()
	if len(d2.Chain("ETH")) != 3 || len(tx.Chain("ETH")) != 3 || len(pct.Chain("ETC")) != 3 {
		t.Error("figure 2 series wrong length")
	}
	hpu, corr := rep.Figure3()
	if len(hpu.Chain("ETH")) != 3 {
		t.Error("figure 3 series wrong length")
	}
	if corr != corr && rep.Collector.Days() > 2 { // NaN check tolerated only for tiny runs
		t.Log("correlation NaN on tiny run (expected)")
	}
	echoPct, echoes := rep.Figure4()
	if len(echoPct.Chain("ETC")) != 3 || len(echoes.Chain("ETC")) != 3 {
		t.Error("figure 4 series wrong length")
	}
	fig5 := rep.Figure5()
	for _, n := range []int{1, 3, 5} {
		if len(fig5[n].Chain("ETH")) != 3 {
			t.Errorf("figure 5 top-%d series wrong length", n)
		}
	}
}

func TestSummaryMentionsObservations(t *testing.T) {
	rep, err := forkwatch.Run(shortScenario(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, key := range []string{"O1", "O3", "O4", "O5", "O6", "echoes", "difficulty"} {
		if !strings.Contains(s, key) {
			t.Errorf("summary missing %q:\n%s", key, s)
		}
	}
}

func TestRunRecorded(t *testing.T) {
	rep, rec, err := forkwatch.RunRecorded(shortScenario(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) == 0 {
		t.Error("recorder captured no blocks")
	}
	// Block totals agree between the recorder and the collector.
	blockSum := 0
	for _, s := range rep.Collector.BlocksPerHour("ETH") {
		blockSum += int(s)
	}
	for _, s := range rep.Collector.BlocksPerHour("ETC") {
		blockSum += int(s)
	}
	if blockSum != len(rec.Blocks) {
		t.Errorf("collector saw %d blocks, recorder %d", blockSum, len(rec.Blocks))
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var sb strings.Builder
	s := forkwatch.Series{Label: "x", Chains: []string{"ETH", "ETC"}, Values: [][]float64{{1, 2}, {3}}}
	if err := forkwatch.WriteFigureCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "index,eth_x,etc_x\n0,1,3\n1,2,0\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	r1, err := forkwatch.Run(shortScenario(9, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := forkwatch.Run(shortScenario(9, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary() != r2.Summary() {
		t.Error("same seed produced different summaries")
	}
}
