// Package forkwatch reproduces the measurement study "Stick a fork in it:
// Analyzing the Ethereum network partition" (Kiffer, Levin, Mislove —
// HotNets 2017) as a runnable system: a complete Ethereum-like substrate
// (RLP, Keccak, Merkle-Patricia tries, an EVM, the Homestead difficulty
// rule, PoW-sealed blocks, a partition-aware p2p wire protocol) plus a
// calibrated two-chain fork simulation and the paper's full analysis
// pipeline.
//
// The package is the public façade: configure a Scenario, Run it, and read
// the Report, whose accessors correspond one-to-one to the paper's
// figures. The cmd/ binaries and examples/ are thin clients of this API.
//
//	sc := forkwatch.NewScenario(1, 270)        // seed, days
//	rep, err := forkwatch.Run(sc)
//	fmt.Println(rep.Summary())
//	fig3 := rep.Figure3()                      // hashes-per-USD series
package forkwatch

import (
	"fmt"
	"io"
	"strings"

	"forkwatch/internal/analysis"
	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/export"
	"forkwatch/internal/sim"
)

// Re-exported simulation types: the Scenario knobs, the engine, the event
// stream and the fidelity modes. See the sim package docs for field-level
// detail.
type (
	// Scenario configures a fork simulation run.
	Scenario = sim.Scenario
	// Engine executes a Scenario.
	Engine = sim.Engine
	// Observer receives per-block and per-day events during a run.
	Observer = sim.Observer
	// BlockEvent describes one mined block.
	BlockEvent = sim.BlockEvent
	// DayEvent describes one simulated day.
	DayEvent = sim.DayEvent
	// PartitionSpec describes one named partition of an N-way scenario
	// (Scenario.Partitions).
	PartitionSpec = sim.PartitionSpec
	// MatrixCell is one cell of the scenario-matrix sweep (grid regime ×
	// minority pool behaviour).
	MatrixCell = sim.MatrixCell
	// Mode selects ledger fidelity.
	Mode = sim.Mode
	// Collector aggregates events into the paper's statistics.
	Collector = analysis.Collector
	// Recorder captures raw block/transaction rows for export.
	Recorder = export.Recorder
	// StorageConfig selects the key-value backend full-fidelity ledgers
	// persist through (Scenario.Storage).
	StorageConfig = db.Config
	// StorageStats reports a store's read/write/hit/miss counters
	// (Engine.StorageStats).
	StorageStats = db.Stats
	// StorageFaults configures deterministic storage-fault injection for
	// full-fidelity runs (Scenario.StorageFaults): seeded I/O errors, torn
	// batches, bit-rot and stalls.
	StorageFaults = faultkv.Faults
	// CrashSpec schedules a storage crash mid-run (Scenario.Crashes): the
	// named chain's store is killed mid-commit, reopened and WAL-recovered.
	CrashSpec = sim.CrashSpec
)

// ParseStorageFaults parses the comma-separated key=value fault
// specification behind cmd/forksim's -storage-faults flag, e.g.
// "seed=42,readerr=0.2,writeerr=0.2,torn=0.01".
func ParseStorageFaults(spec string) (StorageFaults, error) {
	return faultkv.ParseSpec(spec)
}

// ParseCrashSpecs parses the comma-separated crash schedule behind
// cmd/forksim's -crash flag; each element is chain:day:block:op, e.g.
// "ETH:1:3:40,ETC:2:0:5".
func ParseCrashSpecs(spec string) ([]CrashSpec, error) {
	return sim.ParseCrashSpecs(spec)
}

// ParsePartitionSpecs parses the semicolon-separated partition list
// behind cmd/forksim's -partitions flag; each element is
// NAME:key=value,... — see sim.ParsePartitionSpecs for the grammar.
func ParsePartitionSpecs(spec string) ([]PartitionSpec, error) {
	return sim.ParsePartitionSpecs(spec)
}

// MatrixCells builds the scenario-matrix sweep behind cmd/forksim's
// -matrix mode: hashrate/economics regimes × minority pool behaviours.
func MatrixCells(seed int64, days int) []MatrixCell {
	return sim.MatrixCells(seed, days)
}

// Storage backend names for StorageConfig.Backend.
const (
	// StorageMem is the sharded in-memory store (default).
	StorageMem = db.BackendMem
	// StorageCached adds a write-through LRU cache in front of the store.
	StorageCached = db.BackendCached
	// StorageDisk is the log-structured file store; set
	// StorageConfig.DataDir to the directory holding its segments.
	StorageDisk = db.BackendDisk
)

// Ledger fidelities.
const (
	// ModeFast simulates headers and accounts (default; nine-month runs).
	ModeFast = sim.ModeFast
	// ModeFull materialises real blocks with EVM execution and tries.
	ModeFull = sim.ModeFull
)

// NewScenario returns the calibrated default scenario: seed drives all
// randomness; days is the horizon from the fork moment (the paper's study
// spans ~270 days).
func NewScenario(seed int64, days int) *Scenario {
	return sim.NewScenario(seed, days)
}

// NewEngine builds an engine for custom orchestration (attach your own
// observers before calling Run).
func NewEngine(sc *Scenario) (*Engine, error) {
	return sim.New(sc)
}

// Run executes the scenario and returns the analysis report.
func Run(sc *Scenario) (*Report, error) {
	eng, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	col := analysis.NewCollector(sc.Epoch)
	eng.AddObserver(col)
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return &Report{Scenario: sc, Collector: col}, nil
}

// RunRecorded executes the scenario collecting both the report and the raw
// export rows (for cmd/forksim's CSV output).
func RunRecorded(sc *Scenario) (*Report, *Recorder, error) {
	eng, err := sim.New(sc)
	if err != nil {
		return nil, nil, err
	}
	col := analysis.NewCollector(sc.Epoch)
	rec := &export.Recorder{}
	eng.AddObserver(col)
	eng.AddObserver(rec)
	if err := eng.Run(); err != nil {
		return nil, nil, err
	}
	return &Report{Scenario: sc, Collector: col}, rec, nil
}

// Report exposes every figure of the paper computed over one run.
type Report struct {
	Scenario  *Scenario
	Collector *Collector
}

// Series is a set of aligned per-chain series in partition order:
// Values[i] belongs to Chains[i].
type Series struct {
	// Label names the statistic; the index unit is hours since the fork
	// for Figure 1, days for the rest.
	Label  string
	Chains []string
	Values [][]float64
}

// Chain returns the named chain's series, or nil.
func (s Series) Chain(name string) []float64 {
	for i, c := range s.Chains {
		if c == name {
			return s.Values[i]
		}
	}
	return nil
}

// Chains returns the run's partition names in order.
func (r *Report) Chains() []string { return r.Scenario.PartitionNames() }

// series builds a Series by evaluating one collector accessor per chain.
func (r *Report) series(label string, f func(chain string) []float64) Series {
	names := r.Chains()
	s := Series{Label: label, Chains: names, Values: make([][]float64, len(names))}
	for i, c := range names {
		s.Values[i] = f(c)
	}
	return s
}

// Figure1 returns the short-term dynamics: blocks/hour, mean difficulty
// and mean inter-block delta per hour.
func (r *Report) Figure1() (blocksPerHour, difficulty, delta Series) {
	c := r.Collector
	return r.series("blocks/hour", c.BlocksPerHour),
		r.series("difficulty", c.HourlyMeanDifficulty),
		r.series("delta_seconds", c.HourlyMeanDelta)
}

// Figure2 returns the long-term dynamics: daily difficulty, transactions
// per day and percent contract transactions.
func (r *Report) Figure2() (difficulty, txPerDay, pctContract Series) {
	c := r.Collector
	return r.series("difficulty", c.DailyDifficulty),
		r.series("tx/day", c.TxPerDay),
		r.series("pct_contract", c.PctContract)
}

// Figure3 returns the expected hashes-per-USD series and their Pearson
// correlation (the paper's market-efficiency headline). With more than
// two partitions the correlation is the mean over all unordered chain
// pairs.
func (r *Report) Figure3() (hashesPerUSD Series, correlation float64) {
	c := r.Collector
	s := r.series("hashes/USD", func(chain string) []float64 {
		return c.HashesPerUSD(chain, 5)
	})
	names := r.Chains()
	sum, pairs := 0.0, 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			sum += c.PayoffCorrelation(5, names[i], names[j])
			pairs++
		}
	}
	if pairs > 0 {
		correlation = sum / float64(pairs)
	}
	return s, correlation
}

// Figure4 returns the rebroadcast ("echo") series: percent of daily
// transactions that are echoes and absolute echoes per day.
func (r *Report) Figure4() (echoPct, echoesPerDay Series) {
	c := r.Collector
	return r.series("echo_pct", c.EchoPct), r.series("echoes/day", c.EchoesPerDay)
}

// Figure4SameDay returns Fig 4's "Same time" series: echoes mined on
// more than one chain within the same day.
func (r *Report) Figure4SameDay() Series {
	return r.series("same_day_echoes", r.Collector.SameDayEchoesPerDay)
}

// Figure5 returns the top-N pool concentration series for n in {1, 3, 5}.
func (r *Report) Figure5() map[int]Series {
	c := r.Collector
	out := make(map[int]Series, 3)
	for _, n := range []int{1, 3, 5} {
		n := n
		out[n] = r.series(fmt.Sprintf("top%d_share", n), func(chain string) []float64 {
			return c.TopNShare(chain, n)
		})
	}
	return out
}

// RecoveryHours returns experiment E2 per partition, in partition order:
// the hour at which each chain sustainably produced blocks at >= 90% of
// the target rate (-1 if never).
func (r *Report) RecoveryHours() []int {
	out := make([]int, 0, len(r.Chains()))
	for _, chain := range r.Chains() {
		out = append(out, r.Collector.RecoveryHour(chain, 14, 0.9, 6))
	}
	return out
}

// Summary renders the run's key findings against the paper's six
// observations. The first partition plays the paper's majority (ETH)
// role; every later partition is reported against it.
func (r *Report) Summary() string {
	c := r.Collector
	names := r.Chains()
	anchor := names[0]
	var b strings.Builder
	days := c.Days()
	fmt.Fprintf(&b, "forkwatch run: %d days, seed %d, partitions %s\n",
		days, r.Scenario.Seed, strings.Join(names, "/"))

	rec := r.RecoveryHours()
	for i := 1; i < len(names); i++ {
		minority := names[i]
		fmt.Fprintf(&b, "O1/O2  %s block rate first hours: %.0f/hr vs %s %.0f/hr; max mean delta %.0fs; %s recovery at hour %d (%s %d)\n",
			minority,
			analysis.MeanOver(c.BlocksPerHour(minority), 0, 6),
			anchor,
			analysis.MeanOver(c.BlocksPerHour(anchor), 0, 6),
			analysis.MaxOver(c.HourlyMeanDelta(minority), 0, 96),
			minority, rec[i], anchor, rec[0])
	}

	if days > 1 {
		last := days - 1
		dAnchor := c.DailyDifficulty(anchor)
		for i := 1; i < len(names); i++ {
			dMin := c.DailyDifficulty(names[i])
			fmt.Fprintf(&b, "O3     difficulty %s %.3g -> %.3g (x%.1f); %s %.3g -> %.3g; final ratio %.1f:1\n",
				anchor, dAnchor[0], dAnchor[last], safeDiv(dAnchor[last], dAnchor[0]),
				names[i], dMin[0], dMin[last], safeDiv(dAnchor[last], dMin[last]))
		}
	}

	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			fmt.Fprintf(&b, "O4     hashes/USD correlation %s vs %s: %.4f\n",
				names[i], names[j], c.PayoffCorrelation(5, names[i], names[j]))
		}
	}

	echoes := make([]string, len(names))
	for i, name := range names {
		echoes[i] = fmt.Sprintf("%d into %s", c.TotalEchoes(name), name)
	}
	tail := names[len(names)-1]
	fmt.Fprintf(&b, "O5     echoes: %s; peak %.0f%% of %s daily txs; last-10-day mean %.1f/day\n",
		strings.Join(echoes, ", "),
		analysis.MaxOver(c.EchoPct(tail), 0, days), tail,
		analysis.MeanOver(c.EchoesPerDay(tail), days-10, days))

	if days > 1 {
		last := days - 1
		shares := make([]string, len(names))
		for i, name := range names {
			t5 := c.TopNShare(name, 5)
			shares[i] = fmt.Sprintf("%s %.2f -> %.2f", name, t5[0], t5[last])
		}
		fmt.Fprintf(&b, "O6     top-5 pool share: %s\n", strings.Join(shares, "; "))
	}
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WriteFigureCSV writes one figure's series as CSV: an index column
// followed by one column per chain, headed <lowercase chain>_<label> —
// for the historical pair exactly the legacy index,eth_*,etc_* layout.
func WriteFigureCSV(w io.Writer, s Series) error {
	var hb strings.Builder
	hb.WriteString("index")
	for _, chain := range s.Chains {
		fmt.Fprintf(&hb, ",%s_%s", strings.ToLower(chain), s.Label)
	}
	hb.WriteByte('\n')
	if _, err := io.WriteString(w, hb.String()); err != nil {
		return err
	}
	n := 0
	for _, vs := range s.Values {
		if len(vs) > n {
			n = len(vs)
		}
	}
	at := func(xs []float64, i int) float64 {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		var rb strings.Builder
		fmt.Fprintf(&rb, "%d", i)
		for _, vs := range s.Values {
			fmt.Fprintf(&rb, ",%g", at(vs, i))
		}
		rb.WriteByte('\n')
		if _, err := io.WriteString(w, rb.String()); err != nil {
			return err
		}
	}
	return nil
}
