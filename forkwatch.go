// Package forkwatch reproduces the measurement study "Stick a fork in it:
// Analyzing the Ethereum network partition" (Kiffer, Levin, Mislove —
// HotNets 2017) as a runnable system: a complete Ethereum-like substrate
// (RLP, Keccak, Merkle-Patricia tries, an EVM, the Homestead difficulty
// rule, PoW-sealed blocks, a partition-aware p2p wire protocol) plus a
// calibrated two-chain fork simulation and the paper's full analysis
// pipeline.
//
// The package is the public façade: configure a Scenario, Run it, and read
// the Report, whose accessors correspond one-to-one to the paper's
// figures. The cmd/ binaries and examples/ are thin clients of this API.
//
//	sc := forkwatch.NewScenario(1, 270)        // seed, days
//	rep, err := forkwatch.Run(sc)
//	fmt.Println(rep.Summary())
//	fig3 := rep.Figure3()                      // hashes-per-USD series
package forkwatch

import (
	"fmt"
	"io"
	"strings"

	"forkwatch/internal/analysis"
	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/export"
	"forkwatch/internal/sim"
)

// Re-exported simulation types: the Scenario knobs, the engine, the event
// stream and the fidelity modes. See the sim package docs for field-level
// detail.
type (
	// Scenario configures a fork simulation run.
	Scenario = sim.Scenario
	// Engine executes a Scenario.
	Engine = sim.Engine
	// Observer receives per-block and per-day events during a run.
	Observer = sim.Observer
	// BlockEvent describes one mined block.
	BlockEvent = sim.BlockEvent
	// DayEvent describes one simulated day.
	DayEvent = sim.DayEvent
	// Mode selects ledger fidelity.
	Mode = sim.Mode
	// Collector aggregates events into the paper's statistics.
	Collector = analysis.Collector
	// Recorder captures raw block/transaction rows for export.
	Recorder = export.Recorder
	// StorageConfig selects the key-value backend full-fidelity ledgers
	// persist through (Scenario.Storage).
	StorageConfig = db.Config
	// StorageStats reports a store's read/write/hit/miss counters
	// (Engine.StorageStats).
	StorageStats = db.Stats
	// StorageFaults configures deterministic storage-fault injection for
	// full-fidelity runs (Scenario.StorageFaults): seeded I/O errors, torn
	// batches, bit-rot and stalls.
	StorageFaults = faultkv.Faults
	// CrashSpec schedules a storage crash mid-run (Scenario.Crashes): the
	// named chain's store is killed mid-commit, reopened and WAL-recovered.
	CrashSpec = sim.CrashSpec
)

// ParseStorageFaults parses the comma-separated key=value fault
// specification behind cmd/forksim's -storage-faults flag, e.g.
// "seed=42,readerr=0.2,writeerr=0.2,torn=0.01".
func ParseStorageFaults(spec string) (StorageFaults, error) {
	return faultkv.ParseSpec(spec)
}

// ParseCrashSpecs parses the comma-separated crash schedule behind
// cmd/forksim's -crash flag; each element is chain:day:block:op, e.g.
// "ETH:1:3:40,ETC:2:0:5".
func ParseCrashSpecs(spec string) ([]CrashSpec, error) {
	return sim.ParseCrashSpecs(spec)
}

// Storage backend names for StorageConfig.Backend.
const (
	// StorageMem is the sharded in-memory store (default).
	StorageMem = db.BackendMem
	// StorageCached adds a write-through LRU cache in front of the store.
	StorageCached = db.BackendCached
	// StorageDisk is the log-structured file store; set
	// StorageConfig.DataDir to the directory holding its segments.
	StorageDisk = db.BackendDisk
)

// Ledger fidelities.
const (
	// ModeFast simulates headers and accounts (default; nine-month runs).
	ModeFast = sim.ModeFast
	// ModeFull materialises real blocks with EVM execution and tries.
	ModeFull = sim.ModeFull
)

// NewScenario returns the calibrated default scenario: seed drives all
// randomness; days is the horizon from the fork moment (the paper's study
// spans ~270 days).
func NewScenario(seed int64, days int) *Scenario {
	return sim.NewScenario(seed, days)
}

// NewEngine builds an engine for custom orchestration (attach your own
// observers before calling Run).
func NewEngine(sc *Scenario) (*Engine, error) {
	return sim.New(sc)
}

// Run executes the scenario and returns the analysis report.
func Run(sc *Scenario) (*Report, error) {
	eng, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	col := analysis.NewCollector(sc.Epoch)
	eng.AddObserver(col)
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return &Report{Scenario: sc, Collector: col}, nil
}

// RunRecorded executes the scenario collecting both the report and the raw
// export rows (for cmd/forksim's CSV output).
func RunRecorded(sc *Scenario) (*Report, *Recorder, error) {
	eng, err := sim.New(sc)
	if err != nil {
		return nil, nil, err
	}
	col := analysis.NewCollector(sc.Epoch)
	rec := &export.Recorder{}
	eng.AddObserver(col)
	eng.AddObserver(rec)
	if err := eng.Run(); err != nil {
		return nil, nil, err
	}
	return &Report{Scenario: sc, Collector: col}, rec, nil
}

// Report exposes every figure of the paper computed over one run.
type Report struct {
	Scenario  *Scenario
	Collector *Collector
}

// Series is a pair of aligned per-chain series.
type Series struct {
	// X is the index unit: hours since the fork for Figure 1, days for
	// the rest.
	Label    string
	ETH, ETC []float64
}

// Figure1 returns the short-term dynamics: blocks/hour, mean difficulty
// and mean inter-block delta per hour.
func (r *Report) Figure1() (blocksPerHour, difficulty, delta Series) {
	c := r.Collector
	return Series{Label: "blocks/hour", ETH: c.BlocksPerHour("ETH"), ETC: c.BlocksPerHour("ETC")},
		Series{Label: "difficulty", ETH: c.HourlyMeanDifficulty("ETH"), ETC: c.HourlyMeanDifficulty("ETC")},
		Series{Label: "delta_seconds", ETH: c.HourlyMeanDelta("ETH"), ETC: c.HourlyMeanDelta("ETC")}
}

// Figure2 returns the long-term dynamics: daily difficulty, transactions
// per day and percent contract transactions.
func (r *Report) Figure2() (difficulty, txPerDay, pctContract Series) {
	c := r.Collector
	return Series{Label: "difficulty", ETH: c.DailyDifficulty("ETH"), ETC: c.DailyDifficulty("ETC")},
		Series{Label: "tx/day", ETH: c.TxPerDay("ETH"), ETC: c.TxPerDay("ETC")},
		Series{Label: "pct_contract", ETH: c.PctContract("ETH"), ETC: c.PctContract("ETC")}
}

// Figure3 returns the expected hashes-per-USD series and their Pearson
// correlation (the paper's market-efficiency headline).
func (r *Report) Figure3() (hashesPerUSD Series, correlation float64) {
	c := r.Collector
	return Series{Label: "hashes/USD", ETH: c.HashesPerUSD("ETH", 5), ETC: c.HashesPerUSD("ETC", 5)},
		c.PayoffCorrelation(5)
}

// Figure4 returns the rebroadcast ("echo") series: percent of daily
// transactions that are echoes and absolute echoes per day.
func (r *Report) Figure4() (echoPct, echoesPerDay Series) {
	c := r.Collector
	return Series{Label: "echo_pct", ETH: c.EchoPct("ETH"), ETC: c.EchoPct("ETC")},
		Series{Label: "echoes/day", ETH: c.EchoesPerDay("ETH"), ETC: c.EchoesPerDay("ETC")}
}

// Figure4SameDay returns Fig 4's "Same time" series: echoes mined on both
// chains within the same day.
func (r *Report) Figure4SameDay() Series {
	c := r.Collector
	return Series{Label: "same_day_echoes", ETH: c.SameDayEchoesPerDay("ETH"), ETC: c.SameDayEchoesPerDay("ETC")}
}

// Figure5 returns the top-N pool concentration series for n in {1, 3, 5}.
func (r *Report) Figure5() map[int]Series {
	c := r.Collector
	out := make(map[int]Series, 3)
	for _, n := range []int{1, 3, 5} {
		out[n] = Series{
			Label: fmt.Sprintf("top%d_share", n),
			ETH:   c.TopNShare("ETH", n),
			ETC:   c.TopNShare("ETC", n),
		}
	}
	return out
}

// RecoveryHours returns experiment E2: the hour at which each chain
// sustainably produced blocks at >= 90% of the target rate (-1 if never).
func (r *Report) RecoveryHours() (eth, etc int) {
	target := float64(14)
	return r.Collector.RecoveryHour("ETH", target, 0.9, 6),
		r.Collector.RecoveryHour("ETC", target, 0.9, 6)
}

// Summary renders the run's key findings against the paper's six
// observations.
func (r *Report) Summary() string {
	c := r.Collector
	var b strings.Builder
	days := c.Days()
	fmt.Fprintf(&b, "forkwatch run: %d days, seed %d\n", days, r.Scenario.Seed)

	ethRec, etcRec := r.RecoveryHours()
	fmt.Fprintf(&b, "O1/O2  ETC block rate first hours: %.0f/hr vs ETH %.0f/hr; max mean delta %.0fs; ETC recovery at hour %d (ETH %d)\n",
		analysis.MeanOver(c.BlocksPerHour("ETC"), 0, 6),
		analysis.MeanOver(c.BlocksPerHour("ETH"), 0, 6),
		analysis.MaxOver(c.HourlyMeanDelta("ETC"), 0, 96),
		etcRec, ethRec)

	dEth := c.DailyDifficulty("ETH")
	dEtc := c.DailyDifficulty("ETC")
	if days > 1 {
		last := days - 1
		fmt.Fprintf(&b, "O3     difficulty ETH %.3g -> %.3g (x%.1f); ETC %.3g -> %.3g; final ratio %.1f:1\n",
			dEth[0], dEth[last], safeDiv(dEth[last], dEth[0]),
			dEtc[0], dEtc[last], safeDiv(dEth[last], dEtc[last]))
	}

	_, corr := r.Figure3()
	fmt.Fprintf(&b, "O4     hashes/USD correlation ETH vs ETC: %.4f\n", corr)

	fmt.Fprintf(&b, "O5     echoes: %d into ETC, %d into ETH; peak %.0f%% of ETC daily txs; last-10-day mean %.1f/day\n",
		c.TotalEchoes("ETC"), c.TotalEchoes("ETH"),
		analysis.MaxOver(c.EchoPct("ETC"), 0, days),
		analysis.MeanOver(c.EchoesPerDay("ETC"), days-10, days))

	if days > 1 {
		last := days - 1
		t5e := c.TopNShare("ETH", 5)
		t5c := c.TopNShare("ETC", 5)
		fmt.Fprintf(&b, "O6     top-5 pool share: ETH %.2f -> %.2f; ETC %.2f -> %.2f\n",
			t5e[0], t5e[last], t5c[0], t5c[last])
	}
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WriteFigureCSV writes one figure's series as CSV (index, eth, etc).
func WriteFigureCSV(w io.Writer, s Series) error {
	if _, err := fmt.Fprintf(w, "index,eth_%s,etc_%s\n", s.Label, s.Label); err != nil {
		return err
	}
	n := len(s.ETH)
	if len(s.ETC) > n {
		n = len(s.ETC)
	}
	at := func(xs []float64, i int) float64 {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%d,%g,%g\n", i, at(s.ETH, i), at(s.ETC, i)); err != nil {
			return err
		}
	}
	return nil
}
