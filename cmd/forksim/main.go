// Command forksim runs the calibrated two-partition fork scenario and
// regenerates every figure of the paper, printing a summary keyed to the
// paper's observations O1–O6 and optionally writing the figure series and
// the raw ledger export as CSV.
//
// Usage:
//
//	forksim -seed 1 -days 270 -out results/
//	forksim -days 30 -mode full        # short run on the real chain substrate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"forkwatch"
	"forkwatch/internal/analysis"
	"forkwatch/internal/export"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forksim: ")

	var (
		seed    = flag.Int64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
		days    = flag.Int("days", 270, "days to simulate from the fork moment")
		mode    = flag.String("mode", "fast", `ledger fidelity: "fast" or "full"`)
		storage = flag.String("storage", "mem", `full-mode storage backend: "mem", "cached" or "disk"`)
		datadir = flag.String("datadir", "", `directory for -storage disk segment files (each chain gets a subdirectory); use a fresh directory per run`)
		cacheN  = flag.Int("cache-entries", 0, "LRU capacity for -storage cached (0 = default)")
		faults  = flag.String("storage-faults", "", `full-mode storage fault injection, e.g. "seed=42,readerr=0.2,writeerr=0.2,torn=0.01" (empty = none)`)
		crash   = flag.String("crash", "", `full-mode storage crash schedule: comma-separated chain:day:block:op, e.g. "ETH:1:3:40,ETC:2:0:5"`)
		outDir  = flag.String("out", "", "directory for CSV output (figures + ledger export); empty = summary only")
		par     = flag.Int("parallelism", 0, "partition-stepping goroutines: 0 = GOMAXPROCS, 1 = serial; output is byte-identical either way")
		profDir = flag.String("profile", "", "directory for cpu.pprof/heap.pprof capture of the run (empty = no profiling)")
	)
	flag.Parse()

	sc := forkwatch.NewScenario(*seed, *days)
	switch *mode {
	case "fast":
		sc.Mode = forkwatch.ModeFast
	case "full":
		sc.Mode = forkwatch.ModeFull
		if *days > 3 {
			log.Printf("note: full mode executes every transaction on a real EVM; %d days will take a while", *days)
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
	sc.Storage = forkwatch.StorageConfig{Backend: *storage, CacheEntries: *cacheN, DataDir: *datadir}
	if *storage == forkwatch.StorageDisk && sc.Mode != forkwatch.ModeFull {
		log.Fatal("-storage disk requires -mode full (fast mode keeps no chain storage)")
	}
	if *faults != "" {
		f, err := forkwatch.ParseStorageFaults(*faults)
		if err != nil {
			log.Fatal(err)
		}
		if sc.Mode != forkwatch.ModeFull {
			log.Fatal("-storage-faults requires -mode full (fast mode keeps no chain storage)")
		}
		sc.StorageFaults = f
		log.Printf("storage faults: %v", f)
	}
	if *crash != "" {
		cs, err := forkwatch.ParseCrashSpecs(*crash)
		if err != nil {
			log.Fatal(err)
		}
		if sc.Mode != forkwatch.ModeFull {
			log.Fatal("-crash requires -mode full (fast mode keeps no chain storage)")
		}
		sc.Crashes = cs
	}

	sc.Parallelism = *par

	eng, err := forkwatch.NewEngine(sc)
	if err != nil {
		log.Fatal(err)
	}
	col := analysis.NewCollector(sc.Epoch)
	rec := &forkwatch.Recorder{}
	eng.AddObserver(col)
	eng.AddObserver(rec)

	if *profDir != "" {
		if err := os.MkdirAll(*profDir, 0o755); err != nil {
			log.Fatal(err)
		}
		cpuF, err := os.Create(filepath.Join(*profDir, "cpu.pprof"))
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			log.Fatal(err)
		}
		defer cpuF.Close()
	}
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	if *profDir != "" {
		pprof.StopCPUProfile()
		heapF, err := os.Create(filepath.Join(*profDir, "heap.pprof"))
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile reflects retained allocations
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			log.Fatal(err)
		}
		heapF.Close()
		log.Printf("wrote cpu.pprof and heap.pprof to %s", *profDir)
	}
	rep := &forkwatch.Report{Scenario: sc, Collector: col}
	fmt.Print(rep.Summary())
	if sc.Mode == forkwatch.ModeFull {
		defer func() {
			s := eng.StorageStats()
			log.Printf("storage [%s]: %d entries, %d reads (%.1f%% hit), %d writes, %d deletes",
				*storage, s.Entries, s.Reads, 100*s.HitRate(), s.Writes, s.Deletes)
			if *faults != "" || *crash != "" {
				log.Printf("storage chaos: %d fault events logged, %d/%d scheduled crashes fired",
					eng.StorageFaultEvents(), eng.CrashesFired(), len(sc.Crashes))
			}
		}()
	}

	if *outDir == "" {
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeCSV := func(name string, s forkwatch.Series) {
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := forkwatch.WriteFigureCSV(f, s); err != nil {
			log.Fatal(err)
		}
	}
	bph, diffH, deltaH := rep.Figure1()
	writeCSV("fig1_blocks_per_hour.csv", bph)
	writeCSV("fig1_difficulty.csv", diffH)
	writeCSV("fig1_delta.csv", deltaH)
	diffD, txD, pctC := rep.Figure2()
	writeCSV("fig2_difficulty.csv", diffD)
	writeCSV("fig2_tx_per_day.csv", txD)
	writeCSV("fig2_pct_contract.csv", pctC)
	hpu, corr := rep.Figure3()
	writeCSV("fig3_hashes_per_usd.csv", hpu)
	echoPct, echoes := rep.Figure4()
	writeCSV("fig4_echo_pct.csv", echoPct)
	writeCSV("fig4_echoes_per_day.csv", echoes)
	for n, s := range rep.Figure5() {
		writeCSV(fmt.Sprintf("fig5_top%d.csv", n), s)
	}

	blocksF, err := os.Create(filepath.Join(*outDir, "blocks.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer blocksF.Close()
	if err := export.WriteBlocks(blocksF, rec.Blocks); err != nil {
		log.Fatal(err)
	}
	txsF, err := os.Create(filepath.Join(*outDir, "txs.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer txsF.Close()
	if err := export.WriteTxs(txsF, rec.Txs); err != nil {
		log.Fatal(err)
	}
	daysF, err := os.Create(filepath.Join(*outDir, "days.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer daysF.Close()
	if err := export.WriteDays(daysF, rec.Days); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote figures and ledger export to %s (fig3 correlation %.4f)", *outDir, corr)
}
