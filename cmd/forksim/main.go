// Command forksim runs a partitioned fork scenario — the calibrated
// historical two-way split by default, any N-way split via -partitions —
// and regenerates every figure of the paper, printing a summary keyed to
// the paper's observations O1–O6 and optionally writing the figure series
// and the raw ledger export as CSV. -matrix instead sweeps the scenario
// matrix (hashrate/economics grid crossed with pool behaviour models) and
// prints a summary table.
//
// Usage:
//
//	forksim -seed 1 -days 270 -out results/
//	forksim -days 30 -mode full        # short run on the real chain substrate
//	forksim -days 60 -partitions 'MAJ:share=0,weight=0.7;MIN:share=0.3,weight=0.3,behaviour=mixed'
//	forksim -days 45 -matrix -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"forkwatch"
	"forkwatch/internal/analysis"
	"forkwatch/internal/export"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forksim: ")

	var (
		seed    = flag.Int64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
		days    = flag.Int("days", 270, "days to simulate from the fork moment")
		mode    = flag.String("mode", "fast", `ledger fidelity: "fast" or "full"`)
		storage = flag.String("storage", "mem", `full-mode storage backend: "mem", "cached" or "disk"`)
		datadir = flag.String("datadir", "", `directory for -storage disk segment files (each chain gets a subdirectory); use a fresh directory per run`)
		cacheN  = flag.Int("cache-entries", 0, "LRU capacity for -storage cached (0 = default)")
		faults  = flag.String("storage-faults", "", `full-mode storage fault injection, e.g. "seed=42,readerr=0.2,writeerr=0.2,torn=0.01" (empty = none)`)
		crash   = flag.String("crash", "", `full-mode storage crash schedule: comma-separated chain:day:block:op, e.g. "ETH:1:3:40,ETC:2:0:5"`)
		outDir  = flag.String("out", "", "directory for CSV output (figures + ledger export); empty = summary only")
		par     = flag.Int("parallelism", 0, "partition-stepping goroutines: 0 = GOMAXPROCS, 1 = serial; output is byte-identical either way")
		profDir = flag.String("profile", "", "directory for cpu.pprof/heap.pprof capture of the run (empty = no profiling)")
		parts   = flag.String("partitions", "", `N-way partition spec "NAME:key=v,...;NAME:key=v,..." (empty = historical two-way split); see DESIGN.md §12`)
		matrix  = flag.Bool("matrix", false, "sweep the scenario matrix (hashrate/economics grid x pool behaviour models) and print a summary table instead of one run")
	)
	flag.Parse()

	if *matrix {
		runMatrix(*seed, *days, *par, *outDir)
		return
	}

	sc := forkwatch.NewScenario(*seed, *days)
	if *parts != "" {
		specs, err := forkwatch.ParsePartitionSpecs(*parts)
		if err != nil {
			log.Fatal(err)
		}
		sc.Partitions = specs
	}
	switch *mode {
	case "fast":
		sc.Mode = forkwatch.ModeFast
	case "full":
		sc.Mode = forkwatch.ModeFull
		if *days > 3 {
			log.Printf("note: full mode executes every transaction on a real EVM; %d days will take a while", *days)
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
	sc.Storage = forkwatch.StorageConfig{Backend: *storage, CacheEntries: *cacheN, DataDir: *datadir}
	if *storage == forkwatch.StorageDisk && sc.Mode != forkwatch.ModeFull {
		log.Fatal("-storage disk requires -mode full (fast mode keeps no chain storage)")
	}
	if *faults != "" {
		f, err := forkwatch.ParseStorageFaults(*faults)
		if err != nil {
			log.Fatal(err)
		}
		if sc.Mode != forkwatch.ModeFull {
			log.Fatal("-storage-faults requires -mode full (fast mode keeps no chain storage)")
		}
		sc.StorageFaults = f
		log.Printf("storage faults: %v", f)
	}
	if *crash != "" {
		cs, err := forkwatch.ParseCrashSpecs(*crash)
		if err != nil {
			log.Fatal(err)
		}
		if sc.Mode != forkwatch.ModeFull {
			log.Fatal("-crash requires -mode full (fast mode keeps no chain storage)")
		}
		sc.Crashes = cs
	}

	sc.Parallelism = *par

	eng, err := forkwatch.NewEngine(sc)
	if err != nil {
		log.Fatal(err)
	}
	col := analysis.NewCollector(sc.Epoch)
	rec := &forkwatch.Recorder{}
	eng.AddObserver(col)
	eng.AddObserver(rec)

	if *profDir != "" {
		if err := os.MkdirAll(*profDir, 0o755); err != nil {
			log.Fatal(err)
		}
		cpuF, err := os.Create(filepath.Join(*profDir, "cpu.pprof"))
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			log.Fatal(err)
		}
		defer cpuF.Close()
	}
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	if *profDir != "" {
		pprof.StopCPUProfile()
		heapF, err := os.Create(filepath.Join(*profDir, "heap.pprof"))
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile reflects retained allocations
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			log.Fatal(err)
		}
		heapF.Close()
		log.Printf("wrote cpu.pprof and heap.pprof to %s", *profDir)
	}
	rep := &forkwatch.Report{Scenario: sc, Collector: col}
	fmt.Print(rep.Summary())
	if sc.Mode == forkwatch.ModeFull {
		defer func() {
			s := eng.StorageStats()
			log.Printf("storage [%s]: %d entries, %d reads (%.1f%% hit), %d writes, %d deletes",
				*storage, s.Entries, s.Reads, 100*s.HitRate(), s.Writes, s.Deletes)
			if *faults != "" || *crash != "" {
				log.Printf("storage chaos: %d fault events logged, %d/%d scheduled crashes fired",
					eng.StorageFaultEvents(), eng.CrashesFired(), len(sc.Crashes))
			}
		}()
	}

	if *outDir == "" {
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeCSV := func(name string, s forkwatch.Series) {
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := forkwatch.WriteFigureCSV(f, s); err != nil {
			log.Fatal(err)
		}
	}
	bph, diffH, deltaH := rep.Figure1()
	writeCSV("fig1_blocks_per_hour.csv", bph)
	writeCSV("fig1_difficulty.csv", diffH)
	writeCSV("fig1_delta.csv", deltaH)
	diffD, txD, pctC := rep.Figure2()
	writeCSV("fig2_difficulty.csv", diffD)
	writeCSV("fig2_tx_per_day.csv", txD)
	writeCSV("fig2_pct_contract.csv", pctC)
	hpu, corr := rep.Figure3()
	writeCSV("fig3_hashes_per_usd.csv", hpu)
	echoPct, echoes := rep.Figure4()
	writeCSV("fig4_echo_pct.csv", echoPct)
	writeCSV("fig4_echoes_per_day.csv", echoes)
	for n, s := range rep.Figure5() {
		writeCSV(fmt.Sprintf("fig5_top%d.csv", n), s)
	}

	blocksF, err := os.Create(filepath.Join(*outDir, "blocks.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer blocksF.Close()
	if err := export.WriteBlocks(blocksF, rec.Blocks); err != nil {
		log.Fatal(err)
	}
	txsF, err := os.Create(filepath.Join(*outDir, "txs.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer txsF.Close()
	if err := export.WriteTxs(txsF, rec.Txs); err != nil {
		log.Fatal(err)
	}
	daysF, err := os.Create(filepath.Join(*outDir, "days.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer daysF.Close()
	if err := export.WriteDays(daysF, rec.Days); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote figures and ledger export to %s (fig3 correlation %.4f)", *outDir, corr)
}

// runMatrix sweeps the aligned/conflict/extreme hashrate-economics grid
// crossed with the three pool behaviour models, printing one summary row
// per cell and, with -out, writing the same table as matrix.csv.
func runMatrix(seed int64, days, par int, outDir string) {
	cells := forkwatch.MatrixCells(seed, days)
	header := "grid,behaviour,min_share_fork,min_share_end,diff_ratio_end,min_recovery_hour,payoff_corr,echoes_into_min"
	rows := make([]string, 0, len(cells))
	for _, cell := range cells {
		sc := cell.Scenario
		sc.Parallelism = par
		eng, err := forkwatch.NewEngine(sc)
		if err != nil {
			log.Fatalf("matrix cell %s/%s: %v", cell.Grid, cell.Behaviour, err)
		}
		col := analysis.NewCollector(sc.Epoch)
		eng.AddObserver(col)
		if err := eng.Run(); err != nil {
			log.Fatalf("matrix cell %s/%s: %v", cell.Grid, cell.Behaviour, err)
		}
		rep := &forkwatch.Report{Scenario: sc, Collector: col}
		names := rep.Chains()
		maj, min := names[0], names[1]
		last := col.Days() - 1
		majDiff := col.DailyDifficulty(maj)
		minDiff := col.DailyDifficulty(min)
		ratio := 0.0
		if last >= 0 && minDiff[last] > 0 {
			ratio = majDiff[last] / minDiff[last]
		}
		shareEnd := 0.0
		if last >= 0 {
			majHR := col.DailyHashrate(maj)[last]
			minHR := col.DailyHashrate(min)[last]
			if total := majHR + minHR; total > 0 {
				shareEnd = minHR / total
			}
		}
		_, corr := rep.Figure3()
		row := fmt.Sprintf("%s,%s,%g,%.4f,%.2f,%d,%.4f,%d",
			cell.Grid, cell.Behaviour,
			sc.Partitions[1].ShareAtFork, shareEnd, ratio,
			col.RecoveryHour(min, 14, 0.9, 6), corr, col.TotalEchoes(min))
		rows = append(rows, row)
	}
	fmt.Println(header)
	for _, r := range rows {
		fmt.Println(r)
	}
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(outDir, "matrix.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, header); err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(f, r); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("wrote %d matrix cells to %s", len(rows), filepath.Join(outDir, "matrix.csv"))
}
