// Command forknode runs a real forkwatch node over TCP: it keeps a ledger
// (ETH- or ETC-ruled), speaks the partition-aware wire protocol, gossips
// blocks and transactions, and can mine at an accelerated wall-clock rate.
// In -crawl mode it instead performs the paper's node census: handshake
// with every reachable node, presenting the chosen fork id, and report who
// answered — the measurement behind observation O1.
//
// Examples (three terminals):
//
//	forknode -listen 127.0.0.1:30301 -chain eth -mine
//	forknode -listen 127.0.0.1:30302 -chain eth -connect 127.0.0.1:30301
//	forknode -chain eth -crawl 127.0.0.1:30301
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/faultnet"
	"forkwatch/internal/keccak"
	"forkwatch/internal/p2p"
	"forkwatch/internal/pow"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	var (
		listen   = flag.String("listen", "", "TCP listen address (host:port); empty = client only")
		connects = flag.String("connect", "", "comma-separated peer addresses to dial")
		chainSel = flag.String("chain", "eth", `consensus rules: "eth", "etc" or "pre" (before the fork)`)
		mine     = flag.Bool("mine", false, "produce blocks at -blockms intervals and gossip them")
		blockMS  = flag.Int("blockms", 1000, "accelerated wall-clock milliseconds per mined block")
		crawl    = flag.String("crawl", "", "census mode: crawl the network from this seed address and exit")
		name     = flag.String("name", "", "node name (defaults to the listen address or a random tag)")
		secure   = flag.Bool("secure", false, "encrypt connections (ECDH + AES-CTR + HMAC, RLPx-style)")
		loadPath = flag.String("load", "", "import a chain snapshot before starting")
		savePath = flag.String("save", "", "export the chain snapshot on shutdown")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "rng seed for mining")
		faultStr = flag.String("faults", "", `fault injection spec, comma-separated key=value: seed=<n>, latency=<dur>, jitter=<dur>, drop=<rate>, corrupt=<rate>, reset=<rate>, bw=<bytes/s>, stall=<frames> (e.g. "seed=7,drop=0.2,jitter=200ms")`)
	)
	flag.Parse()

	bc, err := buildChain(*chainSel)
	if err != nil {
		log.Fatal(err)
	}

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		n, err := bc.ImportChain(f)
		f.Close()
		if err != nil {
			log.Fatalf("import %s: %v (after %d blocks)", *loadPath, err, n)
		}
		log.Printf("imported %d blocks from %s (head %d)", n, *loadPath, bc.Head().Number())
	}

	if *crawl != "" {
		runCrawl(bc, *crawl, *faultStr)
		return
	}

	nodeName := *name
	if nodeName == "" {
		if *listen != "" {
			nodeName = *listen
		} else {
			nodeName = fmt.Sprintf("node-%d", *seed)
		}
	}
	idHash := keccak.Sum256([]byte(nodeName))
	self := discover.Node{ID: discover.IDFromHash(types.BytesToHash(idHash[:])), Addr: *listen}

	backend := p2p.NewChainBackend(bc)
	// Transport stack, innermost first: TCP -> faultnet -> secure. The
	// fault layer sits below encryption so injected corruption hits the
	// ciphertext, exactly like a hostile network path would.
	var dialer p2p.Dialer = p2p.TCPDialer(3 * time.Second)
	var fnet *faultnet.Net
	var fep *faultnet.Endpoint
	if *faultStr != "" {
		faults, err := faultnet.ParseSpec(*faultStr)
		if err != nil {
			log.Fatal(err)
		}
		fnet = faultnet.New(dialer, faults)
		fep = fnet.Endpoint(nodeName)
		dialer = fep
		log.Printf("fault injection active: %s", faults.String())
	}
	if *secure {
		dialer = p2p.SecureDialer(dialer)
	}
	srv := p2p.NewServer(p2p.Config{
		Self:      self,
		NetworkID: 1,
		MaxPeers:  25,
		Backend:   backend,
		Dialer:    dialer,
		Logf:      log.Printf,
	})
	defer srv.Close()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		if fep != nil {
			ln = fep.WrapListener(ln)
		}
		if *secure {
			ln = p2p.SecureListener(ln)
		}
		go func() {
			if err := srv.Serve(ln); err != nil && err != p2p.ErrServerClosed {
				log.Printf("serve: %v", err)
			}
		}()
		log.Printf("%s listening on %s (%s rules, fork id %+v)", nodeName, *listen, bc.Config().Name, bc.ForkID())
	}

	for _, addr := range splitNonEmpty(*connects) {
		peerHash := keccak.Sum256([]byte(addr))
		peer := discover.Node{ID: discover.IDFromHash(types.BytesToHash(peerHash[:])), Addr: addr}
		if err := srv.Connect(peer); err != nil {
			log.Printf("connect %s: %v", addr, err)
		} else {
			log.Printf("connected to %s", addr)
		}
	}

	// Background network hygiene: discovery/dial maintenance and
	// liveness keepalive, as real nodes run.
	go srv.MaintainPeers(25, 5*time.Second)
	go srv.KeepaliveLoop(10*time.Second, time.Minute)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *mine {
		go mineLoop(bc, srv, rand.New(rand.NewSource(*seed)), time.Duration(*blockMS)*time.Millisecond, stop)
	}

	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			if *savePath != "" {
				if f, err := os.Create(*savePath); err == nil {
					if err := bc.WriteChain(f); err != nil {
						log.Printf("save: %v", err)
					}
					f.Close()
					log.Printf("saved chain (head %d) to %s", bc.Head().Number(), *savePath)
				} else {
					log.Printf("save: %v", err)
				}
			}
			log.Printf("shutting down")
			return
		case <-ticker.C:
			head := bc.Head()
			if fnet != nil {
				st := fnet.Stats()
				log.Printf("height %d, difficulty %v, peers %d, txpool %d | faults: %d frames, %d dropped, %d corrupted, %d resets, %d refusals",
					head.Number(), head.Header.Difficulty, srv.PeerCount(), backend.Pool.Len(),
					st.Frames, st.Dropped, st.Corrupted, st.Resets, st.Refusals)
			} else {
				log.Printf("height %d, difficulty %v, peers %d, txpool %d",
					head.Number(), head.Header.Difficulty, srv.PeerCount(), backend.Pool.Len())
			}
		}
	}
}

// buildChain creates a ledger with the shared demo genesis under the
// selected rule set. All forknode instances derive the same genesis, so
// they can peer and sync.
func buildChain(sel string) (*chain.Blockchain, error) {
	gen := demoGenesis()
	var cfg *chain.Config
	switch sel {
	case "eth":
		cfg = chain.ETHConfig(8, []types.Address{sim.DAOAddress(0)}, sim.DAORefundAddress)
	case "etc":
		cfg = chain.ETCConfig(8)
	case "pre":
		cfg = chain.MainnetLikeConfig()
	default:
		return nil, fmt.Errorf("unknown -chain %q", sel)
	}
	return chain.NewBlockchain(cfg, gen)
}

func demoGenesis() *chain.Genesis {
	alloc := map[types.Address]*big.Int{
		sim.DAOAddress(0): new(big.Int).Mul(big.NewInt(1_000_000), chain.Ether),
	}
	for i := 0; i < 16; i++ {
		alloc[sim.UserAddress(i)] = new(big.Int).Mul(big.NewInt(1000), chain.Ether)
	}
	return &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_469_020_840,
		Alloc:      alloc,
	}
}

// mineLoop produces sealed blocks on a wall-clock cadence, advancing the
// ledger's internal clock by one target interval per block, and gossips
// them. It also injects a demo transaction per block so peers see tx
// gossip.
func mineLoop(bc *chain.Blockchain, srv *p2p.Server, r *rand.Rand, every time.Duration, stop <-chan os.Signal) {
	coinbase := sim.UserAddress(0)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		head := bc.Head()
		sender := sim.UserAddress(int(head.Number())%15 + 1)
		st, err := bc.HeadState()
		if err != nil {
			log.Printf("mine: %v", err)
			continue
		}
		to := sim.UserAddress(0)
		tx := chain.NewTransaction(st.GetNonce(sender), &to, big.NewInt(1), 21_000, big.NewInt(1), nil).
			Sign(sender, 0)
		uncles := bc.CollectUncles(head.Hash())
		blk, err := bc.BuildBlockWithUncles(coinbase, head.Header.Time+bc.Config().TargetBlockTime, []*chain.Transaction{tx}, uncles)
		if err != nil {
			log.Printf("mine: %v", err)
			continue
		}
		pow.Seal(blk.Header, r)
		if err := bc.InsertBlock(blk); err != nil {
			log.Printf("mine: insert: %v", err)
			continue
		}
		srv.BroadcastBlock(blk)
		srv.AnnounceHead()
		log.Printf("mined block %d (%s) with %d txs, %d uncles", blk.Number(), blk.Hash(), len(blk.Txs), len(blk.Uncles))
	}
}

// runCrawl performs the node census from a seed address, presenting this
// chain's fork id, and prints the reachable/unreachable split. A fault
// spec degrades the crawler's own link, showing how loss undercounts a
// census.
func runCrawl(bc *chain.Blockchain, seedAddr, faultStr string) {
	head := bc.Head()
	td, _ := bc.TD(head.Hash())
	var dialer p2p.Dialer = p2p.TCPDialer(3 * time.Second)
	if faultStr != "" {
		faults, err := faultnet.ParseSpec(faultStr)
		if err != nil {
			log.Fatal(err)
		}
		dialer = faultnet.New(dialer, faults).Endpoint("crawler")
	}
	idHash := keccak.Sum256([]byte("crawler"))
	probe := &p2p.Probe{
		Self: discover.Node{ID: discover.IDFromHash(types.BytesToHash(idHash[:])), Addr: "crawler"},
		Status: p2p.Status{
			NetworkID:  1,
			TD:         td,
			Head:       head.Hash(),
			HeadNumber: head.Number(),
			Genesis:    bc.Genesis().Hash(),
			ForkID:     bc.ForkID(),
		},
		Dialer:  dialer,
		Timeout: 3 * time.Second,
	}
	seedHash := keccak.Sum256([]byte(seedAddr))
	seeds := []discover.Node{{ID: discover.IDFromHash(types.BytesToHash(seedHash[:])), Addr: seedAddr}}
	res := discover.Crawl(seeds, probe.FindNodeFunc(), 0)
	fmt.Printf("crawl as %s (fork id %+v): %d reachable, %d advertised-but-unreachable, %d queries\n",
		bc.Config().Name, bc.ForkID(), len(res.Reachable), len(res.Unreachable), res.Queries)
	for _, n := range res.Reachable {
		fmt.Printf("  reachable   %s\n", n.Addr)
	}
	for _, n := range res.Unreachable {
		fmt.Printf("  unreachable %s\n", n.Addr)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
