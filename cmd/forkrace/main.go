// Command forkrace runs experiment E3: the transient-fork race model
// behind the paper's §2.1 contrast — ETH's November 2016 protocol-upgrade
// fork resolved after 86 blocks while ETC's January 2017 fork lasted
// 3,583. It sweeps the laggard hashrate share and reaction time and
// prints the mean losing-branch length for each combination.
//
//	forkrace -runs 200
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"forkwatch/internal/chain"
	"forkwatch/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		runs = flag.Int("runs", 100, "simulated forks per parameter combination")
		seed = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	cfg := chain.MainnetLikeConfig()
	r := rand.New(rand.NewSource(*seed))

	shares := []float64{0.01, 0.05, 0.2, 0.3}
	notices := []float64{0.5, 2, 8, 20} // hours

	fmt.Printf("mean losing-branch length (blocks) over %d runs\n\n", *runs)
	fmt.Printf("%22s", "laggard share \\ notice")
	for _, h := range notices {
		fmt.Printf("%10.1fh", h)
	}
	fmt.Println()
	for _, share := range shares {
		fmt.Printf("%21.0f%%", share*100)
		for _, h := range notices {
			race := &sim.ForkRace{
				Config:            cfg,
				TotalHashrate:     5e12,
				MinorityShare:     share,
				NoticeMeanSeconds: h * 3600,
			}
			fmt.Printf("%11.0f", race.RunMean(*runs, r))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("paper calibration points: ETH Nov-2016 fork ≈ 86 blocks (large network,")
	fmt.Println("fast reaction), ETC Jan-2017 fork ≈ 3,583 blocks (small network, a large")
	fmt.Println("pool lagging for most of a day).")
}
