// Command forkload is a closed-loop load generator for the forkwatch
// JSON-RPC archive: N client goroutines issue a mixed read workload
// against both chain endpoints as fast as the server allows, then the
// run's throughput, latency percentiles, per-class failure counts and
// cache hit rate are written as JSON (BENCH_pr4.json by default).
//
// Every request travels through the failover-aware rpc client, so -urls
// can name several replicas of the same serving plane: the generator
// health-checks them, prefers ready ones, hedges slow requests (-hedge)
// and fails over on infrastructure errors — and its report breaks
// failures down by class (timeout, overloaded, read_only, degraded,
// circuit_open, draining, transport, protocol) instead of one lump sum.
//
// The run exits non-zero if any response violated the protocol (non-2.0
// envelope, garbage body) or failed at the transport level: a correct
// serving plane under load sheds typed errors, it never returns junk.
//
// Usage:
//
//	forkload -selfserve -duration 5s -clients 64        # in-process target
//	forkload -url http://127.0.0.1:8545 -duration 10s   # external forkserve
//	forkload -urls http://127.0.0.1:8546,http://127.0.0.1:8547 -hedge 100ms
//	forkload -selfserve -subscribers 16                 # subscription mix
//
// -subscribers adds a live-feed mix on top of the read load: each
// subscriber loops fork_subscribe → fork_pollSubscription (replaying
// the feed from cursor 0 to its EOF marker) → fork_unsubscribe until
// the deadline, and the report gains sub_events/sub_gaps/sub_errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"forkwatch"
	"forkwatch/internal/rpc"
	"forkwatch/internal/serve"
	"forkwatch/internal/sim"
)

// benchReport is the JSON record of one load run.
type benchReport struct {
	Target       string           `json:"target"`
	Clients      int              `json:"clients"`
	DurationSecs float64          `json:"duration_s"`
	Requests     int64            `json:"requests"`
	Throughput   float64          `json:"throughput_rps"`
	P50Ms        float64          `json:"p50_ms"`
	P90Ms        float64          `json:"p90_ms"`
	P99Ms        float64          `json:"p99_ms"`
	MaxMs        float64          `json:"max_ms"`
	Shed429      int64            `json:"shed_429"`
	RPCErrors    int64            `json:"rpc_errors"`
	Transport    int64            `json:"transport_errors"`
	ByClass      map[string]int64 `json:"by_class"`
	Failovers    uint64           `json:"failovers"`
	Hedged       uint64           `json:"hedged"`
	CacheHitRate float64          `json:"cache_hit_rate"`
	Subscribers  int              `json:"subscribers,omitempty"`
	SubEvents    int64            `json:"sub_events,omitempty"`
	SubGaps      int64            `json:"sub_gaps,omitempty"`
	SubErrors    int64            `json:"sub_errors,omitempty"`
}

// workerStats is one client's tally, merged after the run. Latencies
// cover answered requests (successes and typed errors alike).
type workerStats struct {
	latencies []time.Duration
	byClass   map[string]int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("forkload: ")

	var (
		url       = flag.String("url", "", "base URL of a running forkserve (e.g. http://127.0.0.1:8545)")
		urls      = flag.String("urls", "", "comma-separated base URLs of replicas serving the same chains; the client health-checks and fails over between them (overrides -url)")
		selfserve = flag.Bool("selfserve", false, "boot an in-process archive and load that (ignores -url/-urls)")
		seed      = flag.Int64("seed", 1, "selfserve scenario seed")
		days      = flag.Int("days", 1, "selfserve days to simulate")
		clients   = flag.Int("clients", 64, "concurrent closed-loop clients")
		duration  = flag.Duration("duration", 5*time.Second, "load duration")
		hedge     = flag.Duration("hedge", 0, "hedge a request to the next replica if the first has not answered within this delay (0 = off; needs >1 URL)")
		out       = flag.String("out", "BENCH_pr4.json", "JSON report path (- for stdout)")
		chainsCSV = flag.String("chains", "eth,etc", "comma-separated chain routes to load on an external target (selfserve discovers its own)")
		subs      = flag.Int("subscribers", 0, "subscriber goroutines riding along: each loops fork_subscribe → fork_pollSubscription → fork_unsubscribe against the live feed for the whole run")
		substream = flag.String("substream", "events", "stream the subscriber mix follows (events, newHeads, newDays, pendingEchoes)")
	)
	flag.Parse()

	routes := strings.Split(*chainsCSV, ",")
	bases := []string{*url}
	if *urls != "" {
		bases = strings.Split(*urls, ",")
	}
	if *selfserve {
		sc := forkwatch.NewScenario(*seed, *days)
		sc.Mode = sim.ModeFull
		log.Printf("selfserve: simulating %d days...", *days)
		res, err := serve.Build(sc, rpc.ServerConfig{QueueDepth: 8192})
		if err != nil {
			log.Fatal(err)
		}
		defer res.Server.Close()
		ts := httptest.NewServer(res.Server)
		defer ts.Close()
		bases = []string{ts.URL}
		routes = routes[:0]
		headLog := make([]string, 0, len(res.Chains))
		for _, c := range res.Chains {
			routes = append(routes, strings.ToLower(c.Name))
			headLog = append(headLog, fmt.Sprintf("%s head %d", c.Name, c.Ledger.BC.Head().Number()))
		}
		log.Printf("selfserve: %s on %s", strings.Join(headLog, ", "), bases[0])
	}
	if len(bases) == 0 || bases[0] == "" {
		log.Fatal("need -url, -urls or -selfserve")
	}
	for i := range bases {
		bases[i] = strings.TrimRight(bases[i], "/")
	}

	// One pooled transport sized for the fleet: the default transport
	// keeps only 2 idle conns per host and would churn TCP handshakes.
	transport := &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	hc := &http.Client{Timeout: 10 * time.Second, Transport: transport}

	// One failover client per chain route, shared by every worker: a
	// single-URL run degenerates to a classifying client with nowhere to
	// fail over to.
	fcs := map[string]*rpc.FailoverClient{}
	for _, route := range routes {
		eps := make([]string, len(bases))
		for i, b := range bases {
			eps[i] = b + "/" + route
		}
		fc, err := rpc.NewFailoverClient(rpc.FailoverConfig{
			Endpoints:      eps,
			HTTPClient:     hc,
			HedgeDelay:     *hedge,
			HealthInterval: 500 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer fc.Close()
		fcs[route] = fc
	}

	heads, err := headNumbers(fcs, routes)
	if err != nil {
		log.Fatalf("probing endpoints: %v", err)
	}
	log.Printf("loading %s for %s with %d clients", strings.Join(bases, " "), *duration, *clients)

	bodies := workload(heads)
	stats := make([]workerStats, *clients)
	substats := make([]subStats, *subs)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(*duration)
	// The subscriber mix: each goroutine pins to one base URL (poll
	// subscriptions are server-side state) and replays the live feed from
	// cursor 0 to EOF in a loop, re-subscribing each round — steady
	// subscription churn plus sustained poll traffic alongside the read
	// load.
	for s := 0; s < *subs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := bases[s%len(bases)]
			route := routes[s%len(routes)]
			subscriberLoop(hc, base+"/"+strings.TrimPrefix(route, "/"), *substream, deadline, &substats[s])
		}(s)
	}
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.byClass = map[string]int64{}
			for i := 0; time.Now().Before(deadline); i++ {
				req := bodies[(c+i)%len(bodies)]
				fc := fcs[strings.TrimPrefix(req.path, "/")]
				t0 := time.Now()
				_, outc := fc.Do([]byte(req.body))
				lat := time.Since(t0)
				st.byClass[outc.Class]++
				switch outc.Class {
				case rpc.ClassTransport, rpc.ClassTimeout:
					// No well-formed answer arrived; the latency would
					// measure the client's own deadline, not the server.
				default:
					st.latencies = append(st.latencies, lat)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := merge(stats, strings.Join(bases, ","), *clients, elapsed)
	for _, fc := range fcs {
		s := fc.Stats()
		rep.Failovers += s.Failovers
		rep.Hedged += s.Hedged
	}
	rep.CacheHitRate = scrapeHitRate(bases[0])
	rep.Subscribers = *subs
	for i := range substats {
		rep.SubEvents += substats[i].events
		rep.SubGaps += substats[i].gaps
		rep.SubErrors += substats[i].errors
	}
	if *subs > 0 {
		log.Printf("%d subscribers streamed %d events (%d gaps, %d errors)",
			*subs, rep.SubEvents, rep.SubGaps, rep.SubErrors)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	log.Printf("%d requests in %.2fs = %.0f req/s; p50 %.3fms p99 %.3fms; %d shed, %d rpc errors, %d failovers, %d hedged, cache hit %.1f%%",
		rep.Requests, rep.DurationSecs, rep.Throughput, rep.P50Ms, rep.P99Ms,
		rep.Shed429, rep.RPCErrors, rep.Failovers, rep.Hedged, 100*rep.CacheHitRate)
	if n := rep.ByClass[rpc.ClassProtocol]; n > 0 {
		log.Fatalf("%d protocol-violating responses (malformed or non-2.0 envelopes)", n)
	}
	if rep.Transport > 0 {
		log.Fatalf("%d transport errors (hung or refused connections)", rep.Transport)
	}
}

type loadReq struct {
	path string
	body string
}

// subStats is one subscriber goroutine's tally.
type subStats struct {
	events int64
	gaps   int64
	errors int64
}

// subCall issues one JSON-RPC call and decodes the result envelope.
func subCall(hc *http.Client, url, method, params string, result any) error {
	body := fmt.Sprintf(`{"jsonrpc":"2.0","id":1,"method":"%s","params":%s}`, method, params)
	resp, err := hc.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var envelope struct {
		Result json.RawMessage `json:"result"`
		Error  *rpc.Error      `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return err
	}
	if envelope.Error != nil {
		return envelope.Error
	}
	if result != nil {
		return json.Unmarshal(envelope.Result, result)
	}
	return nil
}

// subscriberLoop replays the live feed from cursor 0 to the run's EOF
// marker through a poll subscription, over and over until the deadline:
// subscription registration, polling and teardown all stay hot for the
// whole run.
func subscriberLoop(hc *http.Client, routeURL, stream string, deadline time.Time, st *subStats) {
	for time.Now().Before(deadline) {
		var sub struct {
			Subscription string `json:"subscription"`
		}
		if err := subCall(hc, routeURL, "fork_subscribe", fmt.Sprintf(`["%s",0]`, stream), &sub); err != nil {
			st.errors++
			time.Sleep(100 * time.Millisecond)
			continue
		}
		for time.Now().Before(deadline) {
			var poll struct {
				Events []struct {
					Kind string `json:"kind"`
				} `json:"events"`
				Gap bool `json:"gap"`
			}
			if err := subCall(hc, routeURL, "fork_pollSubscription",
				fmt.Sprintf(`["%s",4096,200]`, sub.Subscription), &poll); err != nil {
				st.errors++
				break
			}
			st.events += int64(len(poll.Events))
			if poll.Gap {
				st.gaps++
			}
			done := false
			for _, ev := range poll.Events {
				if ev.Kind == "eof" {
					done = true
				}
			}
			if done {
				break
			}
		}
		_ = subCall(hc, routeURL, "fork_unsubscribe", fmt.Sprintf(`["%s"]`, sub.Subscription), nil)
	}
}

// workload builds the request mix: head polls dominate (the cacheable
// hot path every dashboard hammers), block reads spread over the archive
// behind them, and the fork_* analysis windows ride along bounded to the
// last 256 blocks — the paper's queries are windowed scans, not
// whole-chain dumps per request.
func workload(heads map[string]uint64) []loadReq {
	var reqs []loadReq
	for chain, head := range heads {
		path := "/" + chain
		add := func(times int, body string) {
			for i := 0; i < times; i++ {
				reqs = append(reqs, loadReq{path: path, body: body})
			}
		}
		add(10, `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`)
		for _, frac := range []uint64{4, 2, 1} {
			n := head * frac / 4
			add(2, fmt.Sprintf(`{"jsonrpc":"2.0","id":2,"method":"eth_getBlockByNumber","params":["0x%x",false]}`, n))
		}
		add(1, fmt.Sprintf(`{"jsonrpc":"2.0","id":3,"method":"eth_getBlockByNumber","params":["0x%x",true]}`, head))
		if head > 0 {
			from := uint64(1)
			if head > 256 {
				from = head - 256
			}
			add(1, fmt.Sprintf(`{"jsonrpc":"2.0","id":4,"method":"fork_poolShares","params":["0x%x","0x%x"]}`, from, head))
			add(1, fmt.Sprintf(`{"jsonrpc":"2.0","id":5,"method":"fork_difficultyWindow","params":["0x%x","0x%x"]}`, from, head))
		}
	}
	return reqs
}

// headNumbers probes each chain endpoint for its head through the
// failover clients, so a run against replicas tolerates one being down.
func headNumbers(fcs map[string]*rpc.FailoverClient, routes []string) (map[string]uint64, error) {
	out := map[string]uint64{}
	for _, chain := range routes {
		var hex string
		if _, err := fcs[chain].Call(&hex, "eth_blockNumber"); err != nil {
			return nil, fmt.Errorf("%s: %w", chain, err)
		}
		var head uint64
		if _, err := fmt.Sscanf(hex, "0x%x", &head); err != nil {
			return nil, fmt.Errorf("%s: bad head %q", chain, hex)
		}
		out[chain] = head
	}
	return out, nil
}

func merge(stats []workerStats, target string, clients int, elapsed time.Duration) *benchReport {
	var all []time.Duration
	rep := &benchReport{Target: target, Clients: clients, DurationSecs: elapsed.Seconds(), ByClass: map[string]int64{}}
	for i := range stats {
		all = append(all, stats[i].latencies...)
		for class, n := range stats[i].byClass {
			rep.ByClass[class] += n
			rep.Requests += n
		}
	}
	rep.Shed429 = rep.ByClass[rpc.ClassOverloaded]
	rep.RPCErrors = rep.ByClass[rpc.ClassRPCError]
	rep.Transport = rep.ByClass[rpc.ClassTransport]
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	rep.P50Ms = pct(0.50)
	rep.P90Ms = pct(0.90)
	rep.P99Ms = pct(0.99)
	if len(all) > 0 {
		rep.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	return rep
}

// scrapeHitRate reads /debug/metrics and aggregates the response-cache
// hit/miss counters across every method.
func scrapeHitRate(base string) float64 {
	resp, err := http.Get(base + "/debug/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0
	}
	var hits, misses float64
	for key, raw := range snap {
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			continue
		}
		switch {
		case strings.HasSuffix(key, ".cache_hits"):
			hits += v
		case strings.HasSuffix(key, ".cache_misses"):
			misses += v
		}
	}
	if hits+misses == 0 {
		return 0
	}
	return hits / (hits + misses)
}
