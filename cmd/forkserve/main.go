// Command forkserve materialises a partitioned fork scenario — the
// historical two-way split by default, any N-way split via -partitions —
// and serves every chain's archive over JSON-RPC: one process standing in
// for the paper's paired full nodes.
//
// Routes: POST /<lowercase chain name> per partition (JSON-RPC 2.0,
// batches supported), GET /debug/metrics (counters, latency histograms,
// storage stats), GET /debug/pprof/ (live CPU/heap/goroutine profiles),
// GET /healthz.
//
// Usage:
//
//	forkserve -seed 1 -days 2 -addr :8545
//	forkserve -days 1 -storage-faults "seed=7,readerr=0.2"  # chaos serving
//	forkserve -days 2 -storage disk -datadir /var/lib/forkwatch
//	forkserve -days 1 -partitions 'ONE:share=0;TWO:share=0.2;TRI:share=0.1'
//
// With -storage disk the simulated chains persist in -datadir; a later
// run against the same directory reopens the archive (WAL redo, no
// re-simulation) and serves identical responses.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"forkwatch"
	"forkwatch/internal/rpc"
	"forkwatch/internal/serve"
	"forkwatch/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forkserve: ")

	var (
		seed    = flag.Int64("seed", 1, "scenario seed (equal seeds reproduce the served chains exactly)")
		days    = flag.Int("days", 2, "days to simulate before serving (full-fidelity; keep small)")
		addr    = flag.String("addr", ":8545", "listen address")
		storage = flag.String("storage", "mem", `storage backend: "mem", "cached" or "disk"`)
		datadir = flag.String("datadir", "", `directory for -storage disk segment files; reuse it across restarts to serve without re-simulating`)
		faults  = flag.String("storage-faults", "", `storage fault injection kept on while serving, e.g. "seed=42,readerr=0.2"`)
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "queue depth before 429 backpressure (0 = default)")
		cacheN  = flag.Int("cache-entries", 0, "per-method response-cache capacity (0 = default, <0 disables)")
		rate    = flag.Float64("rate", 0, "per-client requests/second (0 = unlimited)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request execution deadline")
		par     = flag.Int("parallelism", 0, "simulation partition-stepping goroutines: 0 = GOMAXPROCS, 1 = serial; served chains are identical either way")
		parts   = flag.String("partitions", "", `N-way partition spec "NAME:key=v,...;NAME:key=v,..." (empty = historical two-way split)`)
	)
	flag.Parse()

	sc := forkwatch.NewScenario(*seed, *days)
	sc.Mode = sim.ModeFull
	sc.Parallelism = *par
	if *parts != "" {
		specs, err := forkwatch.ParsePartitionSpecs(*parts)
		if err != nil {
			log.Fatal(err)
		}
		sc.Partitions = specs
	}
	sc.Storage = forkwatch.StorageConfig{Backend: *storage, DataDir: *datadir}
	if *faults != "" {
		f, err := forkwatch.ParseStorageFaults(*faults)
		if err != nil {
			log.Fatal(err)
		}
		sc.StorageFaults = f
		log.Printf("storage faults stay enabled while serving: %v", f)
	}

	if *storage == forkwatch.StorageDisk {
		log.Printf("opening archive from %s (simulating %d days first if empty)...", *datadir, *days)
	} else {
		log.Printf("simulating %d days (seed %d, full fidelity)...", *days, *seed)
	}
	res, err := serve.OpenOrBuild(sc, rpc.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		RatePerSec:     *rate,
		RequestTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Server.Close()
	if res.Engine == nil {
		log.Printf("reopened persisted archive from %s (no re-simulation)", *datadir)
	}

	// The RPC server stays the catch-all; the mux only peels off the
	// pprof endpoints (/debug/metrics still falls through to the server).
	mux := http.NewServeMux()
	mux.Handle("/", res.Server)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	heads := make([]string, len(res.Chains))
	routes := make([]string, len(res.Chains))
	for i, c := range res.Chains {
		heads[i] = fmt.Sprintf("%s head %d", c.Name, c.Ledger.BC.Head().Number())
		routes[i] = "/" + strings.ToLower(c.Name)
	}
	log.Print(strings.Join(heads, ", "))
	log.Printf("serving %s /debug/metrics /debug/pprof /healthz on %s", strings.Join(routes, " "), *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
