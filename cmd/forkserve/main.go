// Command forkserve materialises a partitioned fork scenario — the
// historical two-way split by default, any N-way split via -partitions —
// and serves every chain's archive over JSON-RPC: one process standing in
// for the paper's paired full nodes.
//
// Routes: POST /<lowercase chain name> per partition (JSON-RPC 2.0,
// batches supported), GET /debug/metrics (counters, latency histograms,
// storage stats), GET /debug/pprof/ (live CPU/heap/goroutine profiles),
// GET /healthz, GET /readyz (503 while draining or degraded).
//
// Usage:
//
//	forkserve -seed 1 -days 2 -addr :8545
//	forkserve -days 1 -storage-faults "seed=7,readerr=0.2"  # chaos serving
//	forkserve -days 2 -storage disk -datadir /var/lib/forkwatch
//	forkserve -days 1 -partitions 'ONE:share=0;TWO:share=0.2;TRI:share=0.1'
//	forkserve -days 3 -live -pace 2s          # serve while simulating
//
// Every boot shape attaches the live measurement plane: fork_subscribe /
// fork_pollSubscription / fork_liveEvents / fork_liveSnapshot on each
// route, plus the persistent NDJSON stream at GET /<route>/stream. With
// -live the scenario simulates in the background while the archive
// serves, so subscribers (forkanalyze -follow) watch the partition
// unfold and receive the feed's EOF when the run completes; -pace slows
// the run to human speed.
//
// With -storage disk the simulated chains persist in -datadir; a later
// run against the same directory reopens the archive (WAL redo, no
// re-simulation) and serves identical responses.
//
// Replica tier: a primary exposes its chains for replication with -p2p
// (one listen address per partition); replicas boot with -follow pointed
// at those addresses, sync every block over the wire into their own
// stores, and serve the same RPC surface — tagging responses with a
// staleness field and failing /readyz whenever they trail the primary by
// more than -staleness-bound blocks:
//
//	forkserve -days 2 -addr :8545 -p2p 127.0.0.1:30301,127.0.0.1:30302
//	forkserve -addr :8546 -follow 127.0.0.1:30301,127.0.0.1:30302 -replica-name r1
//
// SIGINT/SIGTERM drains gracefully: stop accepting, finish in-flight
// requests, flush and close the stores.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"forkwatch"
	"forkwatch/internal/rpc"
	"forkwatch/internal/serve"
	"forkwatch/internal/sim"
)

// dayPacer slows a -live run down to watchable speed: it sleeps after
// every simulated day, on the engine goroutine, so the feed's day
// barrier is also the pacing barrier.
type dayPacer time.Duration

func (p dayPacer) OnBlock(*sim.BlockEvent) {}
func (p dayPacer) OnDay(*sim.DayEvent)     { time.Sleep(time.Duration(p)) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("forkserve: ")

	var (
		seed    = flag.Int64("seed", 1, "scenario seed (equal seeds reproduce the served chains exactly)")
		days    = flag.Int("days", 2, "days to simulate before serving (full-fidelity; keep small)")
		addr    = flag.String("addr", ":8545", "listen address")
		storage = flag.String("storage", "mem", `storage backend: "mem", "cached" or "disk"`)
		datadir = flag.String("datadir", "", `directory for -storage disk segment files; reuse it across restarts to serve without re-simulating`)
		faults  = flag.String("storage-faults", "", `storage fault injection kept on while serving, e.g. "seed=42,readerr=0.2"`)
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "queue depth before 429 backpressure (0 = default)")
		cacheN  = flag.Int("cache-entries", 0, "per-method response-cache capacity (0 = default, <0 disables)")
		rate    = flag.Float64("rate", 0, "per-client requests/second (0 = unlimited)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request execution deadline")
		par     = flag.Int("parallelism", 0, "simulation partition-stepping goroutines: 0 = GOMAXPROCS, 1 = serial; served chains are identical either way")
		parts   = flag.String("partitions", "", `N-way partition spec "NAME:key=v,...;NAME:key=v,..." (empty = historical two-way split)`)

		liveRun = flag.Bool("live", false, "serve WHILE the scenario simulates: subscribers on fork_subscribe//<route>/stream watch the partition unfold, and the feed publishes EOF when the run ends")
		pace    = flag.Duration("pace", 0, "with -live, sleep this long after each simulated day so followers can watch in something like real time (0 = run flat out)")

		p2pAddrs   = flag.String("p2p", "", "primary mode: comma-separated p2p listen addresses, one per partition in order, for replicas to sync from")
		follow     = flag.String("follow", "", "replica mode: comma-separated primary p2p addresses, one per partition in order; the scenario flags must match the primary's")
		repName    = flag.String("replica-name", "replica", "this replica's name on the sync plane (replica mode)")
		staleBound = flag.Uint64("staleness-bound", 8, "blocks behind the primary head before a replica reports degraded and tags responses (replica mode)")
	)
	flag.Parse()

	sc := forkwatch.NewScenario(*seed, *days)
	sc.Mode = sim.ModeFull
	sc.Parallelism = *par
	if *parts != "" {
		specs, err := forkwatch.ParsePartitionSpecs(*parts)
		if err != nil {
			log.Fatal(err)
		}
		sc.Partitions = specs
	}
	sc.Storage = forkwatch.StorageConfig{Backend: *storage, DataDir: *datadir}
	if *faults != "" {
		f, err := forkwatch.ParseStorageFaults(*faults)
		if err != nil {
			log.Fatal(err)
		}
		sc.StorageFaults = f
		log.Printf("storage faults stay enabled while serving: %v", f)
	}

	srvCfg := rpc.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		RatePerSec:     *rate,
		RequestTimeout: *timeout,
	}

	// Boot one of the three shapes — replica, primary with a sync plane,
	// or standalone archive. res serves; shutdown drains and flushes.
	var (
		res      *serve.Result
		shutdown func()
	)
	if *follow != "" {
		if *p2pAddrs != "" {
			log.Fatal("-follow and -p2p are mutually exclusive (a node is a primary or a replica)")
		}
		rep, err := serve.NewReplica(sc, serve.ReplicaConfig{
			Name:           *repName,
			PrimaryAddrs:   strings.Split(*follow, ","),
			Transport:      serve.TCPTransport(5 * time.Second),
			StalenessBound: *staleBound,
			DataDir:        *datadir,
		}, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		res, shutdown = &rep.Result, rep.Close
		log.Printf("replica %q following %s (staleness bound %d blocks)", *repName, *follow, *staleBound)
	} else if *liveRun {
		if *p2pAddrs != "" {
			log.Fatal("-live and -p2p are mutually exclusive (the sync plane serves a finished archive)")
		}
		built, run, err := serve.BuildLive(sc, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		if *pace > 0 {
			built.Engine.AddObserver(dayPacer(*pace))
		}
		res, shutdown = built, built.Close
		go func() {
			start := time.Now()
			if err := run(); err != nil {
				log.Printf("live run failed: %v", err)
				return
			}
			log.Printf("live run complete after %s: feed published EOF, archive now final", time.Since(start).Round(time.Millisecond))
		}()
		log.Printf("simulating %d days live (seed %d); subscribe while it runs", *days, *seed)
	} else {
		if *storage == forkwatch.StorageDisk {
			log.Printf("opening archive from %s (simulating %d days first if empty)...", *datadir, *days)
		} else {
			log.Printf("simulating %d days (seed %d, full fidelity)...", *days, *seed)
		}
		built, err := serve.OpenOrBuild(sc, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		if built.Engine == nil {
			log.Printf("reopened persisted archive from %s (no re-simulation)", *datadir)
		}
		res, shutdown = built, built.Close
		if *p2pAddrs != "" {
			psrv, err := serve.ServePrimary(built, serve.PrimaryConfig{
				Addrs:     strings.Split(*p2pAddrs, ","),
				Transport: serve.TCPTransport(5 * time.Second),
			})
			if err != nil {
				log.Fatal(err)
			}
			shutdown = func() { psrv.Close(); built.Close() }
			log.Printf("primary sync plane on %s", *p2pAddrs)
		}
	}

	// The RPC server stays the catch-all; the mux only peels off the
	// pprof endpoints (/debug/metrics still falls through to the server).
	mux := http.NewServeMux()
	mux.Handle("/", res.Server)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	heads := make([]string, len(res.Chains))
	routes := make([]string, len(res.Chains))
	for i, c := range res.Chains {
		heads[i] = fmt.Sprintf("%s head %d", c.Name, c.Ledger.BC.Head().Number())
		routes[i] = "/" + strings.ToLower(c.Name)
	}
	log.Print(strings.Join(heads, ", "))
	log.Printf("serving %s /debug/metrics /debug/pprof /healthz /readyz on %s", strings.Join(routes, " "), *addr)

	// Graceful drain: the first SIGINT/SIGTERM stops the listener and
	// waits for in-flight HTTP requests; then the serving plane drains its
	// worker pool and closes the stores so disk segments flush cleanly.
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigC
		log.Printf("%s: draining (in-flight requests finish, stores flush)...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	shutdown()
	log.Print("drained and closed cleanly")
}
