package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"forkwatch/internal/live"
	"forkwatch/internal/live/feed"
)

// followLive attaches the streaming analyzer to a forkserve archive and
// replays its measurement feed through the stateless fork_liveEvents
// read until the run's EOF marker. The client owns the cursor, so every
// transport error is retried from the same position — the follower
// converges even over a lossy path — and a reported gap (the cursor
// fell off the server's replay ring) is surfaced as a warning, since
// observables derived after a gap are no longer exact.
func followLive(target, outDir string, epoch uint64) error {
	routeURL, err := resolveRoute(target)
	if err != nil {
		return err
	}
	fmt.Printf("following %s\n", routeURL)

	an := live.NewAnalyzer(epoch, live.Options{})
	client := &http.Client{Timeout: 10 * time.Second}
	var (
		cursor   uint64
		id       int
		failures int
		lastDay  = -1
	)
	for {
		id++
		body := fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"fork_liveEvents","params":["events",%d,4096]}`,
			id, cursor)
		resp, err := client.Post(routeURL, "application/json", strings.NewReader(body))
		if err != nil {
			failures++
			if failures > 120 {
				return fmt.Errorf("giving up after %d consecutive transport failures: %w", failures, err)
			}
			time.Sleep(250 * time.Millisecond)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			failures++
			time.Sleep(250 * time.Millisecond)
			continue
		}
		var envelope struct {
			Result struct {
				Events []feed.Event `json:"events"`
				Cursor uint64       `json:"cursor"`
				Gap    bool         `json:"gap"`
			} `json:"result"`
			Error *struct {
				Code    int    `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			failures++
			time.Sleep(250 * time.Millisecond)
			continue
		}
		failures = 0
		if envelope.Error != nil {
			return fmt.Errorf("fork_liveEvents: %d %s", envelope.Error.Code, envelope.Error.Message)
		}
		if envelope.Result.Gap {
			fmt.Printf("WARNING: cursor %d fell off the replay ring; observables are inexact from here\n", cursor)
		}
		done := false
		for _, ev := range envelope.Result.Events {
			if err := an.Apply(ev); err != nil {
				return fmt.Errorf("applying event %d: %w", ev.Seq, err)
			}
			if ev.Kind == feed.KindDay && ev.Day != nil && ev.Day.Day != lastDay {
				lastDay = ev.Day.Day
				printDayLine(an)
			}
			if ev.Kind == feed.KindEOF {
				done = true
			}
		}
		if done {
			break
		}
		cursor = envelope.Result.Cursor
		if len(envelope.Result.Events) == 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}

	printSummary(an)
	if outDir != "" {
		if err := writeTables(an, outDir); err != nil {
			return err
		}
		fmt.Printf("\nwrote blocks.csv txs.csv days.csv to %s (byte-identical to a batch export of the run)\n", outDir)
	}
	return nil
}

// resolveRoute turns the -follow target into a concrete JSON-RPC route
// URL: a URL that already names a route is used as-is; a bare base URL
// asks /readyz which routes exist and picks the first in sorted order
// (the events stream is global, so any route serves the whole feed).
func resolveRoute(target string) (string, error) {
	u, err := url.Parse(target)
	if err != nil {
		return "", fmt.Errorf("bad -follow URL: %w", err)
	}
	if u.Scheme == "" {
		u, err = url.Parse("http://" + target)
		if err != nil {
			return "", fmt.Errorf("bad -follow URL: %w", err)
		}
	}
	base := strings.TrimSuffix(u.String(), "/")
	if p := strings.Trim(u.Path, "/"); p != "" {
		return base, nil
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return "", fmt.Errorf("discovering routes: %w", err)
	}
	defer resp.Body.Close()
	// /readyz answers 503 with the same JSON body when degraded — a
	// degraded archive is still followable.
	var rd struct {
		Routes map[string]json.RawMessage `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		return "", fmt.Errorf("decoding /readyz: %w", err)
	}
	if len(rd.Routes) == 0 {
		return "", fmt.Errorf("%s/readyz reports no routes", base)
	}
	routes := make([]string, 0, len(rd.Routes))
	for r := range rd.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	return base + "/" + routes[0], nil
}

// printDayLine prints one rolling line per simulated day barrier.
func printDayLine(an *live.Analyzer) {
	snap := an.Snapshot()
	parts := make([]string, 0, len(snap.Chains))
	for _, c := range snap.Chains {
		parts = append(parts, fmt.Sprintf("%s head=%d txs=%d top5=%.2f h/USD=%.3g",
			c.Chain, c.Head, c.Txs, c.Top5Share, c.HashesPerUSD))
	}
	fmt.Printf("day %3d  %s\n", snap.Days-1, strings.Join(parts, " | "))
}

// printSummary prints the figure-level summary once the feed completes.
func printSummary(an *live.Analyzer) {
	snap := an.Snapshot()
	fmt.Printf("\nrun complete: %d events, %d days, %d chains\n\n",
		snap.Events, snap.Days, len(snap.Chains))
	for _, c := range snap.Chains {
		fmt.Printf("Fig 1  %s blocks %d; window mean delta %.0fs; recovery hour: %d\n",
			c.Chain, c.Blocks, c.WindowMeanDelta, c.RecoveryHour)
	}
	for _, c := range snap.Chains {
		fmt.Printf("Fig 2  %s txs %d; day contract%% %.0f\n", c.Chain, c.Txs, c.DayContractPct)
	}
	for _, p := range snap.Correlations {
		fmt.Printf("Fig 3  hashes/USD correlation %s vs %s: %.4f\n", p.A, p.B, p.Correlation)
	}
	for _, c := range snap.Chains {
		fmt.Printf("Fig 4  echoes into %s: %d (%d same-day)\n", c.Chain, c.Echoes, c.SameDayEchoes)
	}
	for _, c := range snap.Chains {
		fmt.Printf("Fig 5  %s pools %d; top-1 share %.2f; top-5 share %.2f; gini %.2f\n",
			c.Chain, c.Pools, c.Top1Share, c.Top5Share, c.PoolGini)
	}
}

// writeTables writes the analyzer's converged CSV tables into dir.
func writeTables(an *live.Analyzer, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"blocks.csv", an.BlocksCSV()},
		{"txs.csv", an.TxsCSV()},
		{"days.csv", an.DaysCSV()},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
