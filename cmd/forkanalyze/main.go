// Command forkanalyze re-runs the paper's analysis over a previously
// exported ledger (the blocks.csv / txs.csv pair forksim writes) without
// re-simulating — the moral equivalent of the paper's database stage.
// Chain names are recovered from the export itself, so N-way exports
// analyze just like the historical pair.
//
// With -follow it instead attaches to a live forkserve archive and
// replays the measurement feed as it happens: the streaming analyzer
// maintains every O1–O6 observable incrementally, prints a rolling
// per-chain line at each day barrier, and — when the run publishes its
// EOF marker — prints the same figure summary and (with -out) writes
// CSV tables byte-identical to what a batch export of the same run
// would produce.
//
// Usage:
//
//	forksim -days 270 -out results/
//	forkanalyze -dir results/
//	forkserve -days 3 -live &
//	forkanalyze -follow http://localhost:8545 -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"forkwatch/internal/analysis"
	"forkwatch/internal/export"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forkanalyze: ")

	var (
		dir       = flag.String("dir", ".", "directory holding blocks.csv and txs.csv")
		epoch     = flag.Uint64("epoch", 1469020840, "fork unix time (day-0 anchor)")
		dayLength = flag.Uint64("daylen", 86_400, "seconds per simulated day in the export")
		follow    = flag.String("follow", "", "forkserve URL to follow live instead of reading an export (base URL discovers a route via /readyz; include a /route to pin one)")
		out       = flag.String("out", "", "with -follow: directory to write the converged blocks.csv/txs.csv/days.csv into at EOF")
	)
	flag.Parse()

	if *follow != "" {
		if err := followLive(*follow, *out, *epoch); err != nil {
			log.Fatal(err)
		}
		return
	}

	blocksF, err := os.Open(filepath.Join(*dir, "blocks.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer blocksF.Close()
	blocks, err := export.ReadBlocks(blocksF)
	if err != nil {
		log.Fatal(err)
	}
	txsF, err := os.Open(filepath.Join(*dir, "txs.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer txsF.Close()
	txs, err := export.ReadTxs(txsF)
	if err != nil {
		log.Fatal(err)
	}

	// The day table (prices) is optional; with it, Fig 3 reconstructs too.
	var dayRows []export.DayRow
	if daysF, err := os.Open(filepath.Join(*dir, "days.csv")); err == nil {
		dayRows, err = export.ReadDays(daysF)
		daysF.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	col := analysis.NewCollector(*epoch)
	export.ReplayAll(blocks, txs, dayRows, *epoch, *dayLength, col)

	chains := chainOrder(blocks, dayRows)
	if len(chains) == 0 {
		log.Fatal("export holds no blocks for any chain")
	}
	fmt.Printf("loaded %d blocks, %d transactions across %s\n\n",
		len(blocks), len(txs), strings.Join(chains, "/"))

	days := lastDay(blocks, *epoch, *dayLength) + 1
	anchor := chains[0]
	for _, minority := range chains[1:] {
		fmt.Printf("Fig 1  %s blocks/hr first 6h: %.1f;  max mean delta: %.0fs;  recovery hour: %d\n",
			minority,
			analysis.MeanOver(col.BlocksPerHour(minority), 0, 6),
			analysis.MaxOver(col.HourlyMeanDelta(minority), 0, 96),
			col.RecoveryHour(minority, 14, 0.9, 6))
	}
	anchorTx := analysis.MeanOver(col.TxPerDay(anchor), 0, days)
	for _, minority := range chains[1:] {
		minTx := analysis.MeanOver(col.TxPerDay(minority), 0, days)
		fmt.Printf("Fig 2  tx/day %s %.0f, %s %.0f (ratio %.1f:1);  contract%% %s %.0f, %s %.0f\n",
			anchor, anchorTx, minority, minTx, safeRatio(anchorTx, minTx),
			anchor, analysis.MeanOver(col.PctContract(anchor), 0, days),
			minority, analysis.MeanOver(col.PctContract(minority), 0, days))
	}
	echoes := make([]string, len(chains))
	peak := chains[len(chains)-1]
	for i, c := range chains {
		echoes[i] = fmt.Sprintf("into %s: %d", c, col.TotalEchoes(c))
	}
	fmt.Printf("Fig 4  echoes %s; peak %s echo share %.0f%%\n",
		strings.Join(echoes, "; "), peak,
		analysis.MaxOver(col.EchoPct(peak), 0, days))
	for _, c := range chains {
		t5 := col.TopNShare(c, 5)
		fmt.Printf("Fig 5  top-5 pool share %s: mean %.2f; start %.2f -> end %.2f\n",
			c, analysis.MeanOver(t5, 0, days),
			analysis.MeanOver(t5, 0, 10), analysis.MeanOver(t5, days-10, days))
	}
	if len(dayRows) > 0 {
		for i := 0; i < len(chains); i++ {
			for j := i + 1; j < len(chains); j++ {
				fmt.Printf("Fig 3  hashes/USD correlation %s vs %s: %.4f\n",
					chains[i], chains[j], col.PayoffCorrelation(5, chains[i], chains[j]))
			}
		}
	} else {
		fmt.Println("Fig 3  skipped: no days.csv in the export directory")
	}
}

// chainOrder recovers the export's chain names: the day table's column
// order when present (that is the engine's partition order), otherwise
// first-seen order in the block table.
func chainOrder(blocks []export.BlockRow, dayRows []export.DayRow) []string {
	if len(dayRows) > 0 {
		return dayRows[0].Chains
	}
	var out []string
	seen := map[string]bool{}
	for _, b := range blocks {
		if !seen[b.Chain] {
			seen[b.Chain] = true
			out = append(out, b.Chain)
		}
	}
	return out
}

func lastDay(blocks []export.BlockRow, epoch, dayLength uint64) int {
	last := 0
	for _, b := range blocks {
		if b.Time >= epoch {
			if d := int((b.Time - epoch) / dayLength); d > last {
				last = d
			}
		}
	}
	return last
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
