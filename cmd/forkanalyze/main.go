// Command forkanalyze re-runs the paper's analysis over a previously
// exported ledger (the blocks.csv / txs.csv pair forksim writes) without
// re-simulating — the moral equivalent of the paper's database stage.
//
// Usage:
//
//	forksim -days 270 -out results/
//	forkanalyze -dir results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"forkwatch/internal/analysis"
	"forkwatch/internal/export"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forkanalyze: ")

	var (
		dir       = flag.String("dir", ".", "directory holding blocks.csv and txs.csv")
		epoch     = flag.Uint64("epoch", 1469020840, "fork unix time (day-0 anchor)")
		dayLength = flag.Uint64("daylen", 86_400, "seconds per simulated day in the export")
	)
	flag.Parse()

	blocksF, err := os.Open(filepath.Join(*dir, "blocks.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer blocksF.Close()
	blocks, err := export.ReadBlocks(blocksF)
	if err != nil {
		log.Fatal(err)
	}
	txsF, err := os.Open(filepath.Join(*dir, "txs.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer txsF.Close()
	txs, err := export.ReadTxs(txsF)
	if err != nil {
		log.Fatal(err)
	}

	// The day table (prices) is optional; with it, Fig 3 reconstructs too.
	var dayRows []export.DayRow
	if daysF, err := os.Open(filepath.Join(*dir, "days.csv")); err == nil {
		dayRows, err = export.ReadDays(daysF)
		daysF.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	col := analysis.NewCollector(*epoch)
	export.ReplayAll(blocks, txs, dayRows, *epoch, *dayLength, col)

	fmt.Printf("loaded %d blocks, %d transactions\n\n", len(blocks), len(txs))

	days := lastDay(blocks, *epoch, *dayLength) + 1
	fmt.Printf("Fig 1  ETC blocks/hr first 6h: %.1f;  max mean delta: %.0fs;  recovery hour: %d\n",
		analysis.MeanOver(col.BlocksPerHour("ETC"), 0, 6),
		analysis.MaxOver(col.HourlyMeanDelta("ETC"), 0, 96),
		col.RecoveryHour("ETC", 14, 0.9, 6))
	ethTx := col.TxPerDay("ETH")
	etcTx := col.TxPerDay("ETC")
	fmt.Printf("Fig 2  tx/day ETH %.0f, ETC %.0f (ratio %.1f:1);  contract%% ETH %.0f, ETC %.0f\n",
		analysis.MeanOver(ethTx, 0, days), analysis.MeanOver(etcTx, 0, days),
		safeRatio(analysis.MeanOver(ethTx, 0, days), analysis.MeanOver(etcTx, 0, days)),
		analysis.MeanOver(col.PctContract("ETH"), 0, days),
		analysis.MeanOver(col.PctContract("ETC"), 0, days))
	fmt.Printf("Fig 4  echoes into ETC: %d; into ETH: %d; peak ETC echo share %.0f%%\n",
		col.TotalEchoes("ETC"), col.TotalEchoes("ETH"),
		analysis.MaxOver(col.EchoPct("ETC"), 0, days))
	t5e := col.TopNShare("ETH", 5)
	t5c := col.TopNShare("ETC", 5)
	fmt.Printf("Fig 5  top-5 pool share: ETH mean %.2f;  ETC start %.2f -> end %.2f\n",
		analysis.MeanOver(t5e, 0, days),
		analysis.MeanOver(t5c, 0, 10), analysis.MeanOver(t5c, days-10, days))
	if len(dayRows) > 0 {
		fmt.Printf("Fig 3  hashes/USD correlation: %.4f\n", col.PayoffCorrelation(5))
	} else {
		fmt.Println("Fig 3  skipped: no days.csv in the export directory")
	}
}

func lastDay(blocks []export.BlockRow, epoch, dayLength uint64) int {
	last := 0
	for _, b := range blocks {
		if b.Time >= epoch {
			if d := int((b.Time - epoch) / dayLength); d > last {
				last = d
			}
		}
	}
	return last
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
