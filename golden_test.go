package forkwatch_test

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"forkwatch"
)

// loadGolden reads the locked-down digest table that tools/goldengen
// produced before the N-way refactor.
func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile("testdata/golden_twoway.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var digests map[string]string
	if err := json.Unmarshal(raw, &digests); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	if len(digests) == 0 {
		t.Fatal("golden file is empty")
	}
	return digests
}

// TestGoldenTwoWayFigures locks the historical two-way run's figure CSVs
// to the digests captured before the N-way partition refactor: every
// canonical config, at Parallelism 1 and at Parallelism 0 (GOMAXPROCS),
// must reproduce the pre-refactor bytes exactly. Full-fidelity configs
// (including the storage-fault one) are skipped under -short.
func TestGoldenTwoWayFigures(t *testing.T) {
	golden := loadGolden(t)
	for _, gc := range forkwatch.GoldenConfigs() {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			if gc.Full && testing.Short() {
				t.Skip("full-fidelity golden config skipped under -short")
			}
			for _, par := range []int{1, 0} {
				sc := gc.Scenario()
				sc.Parallelism = par
				rep, err := forkwatch.Run(sc)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				figs, err := forkwatch.RenderFigures(rep)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				seen := 0
				for name, data := range figs {
					key := gc.Name + "/" + name
					want, ok := golden[key]
					if !ok {
						t.Errorf("figure %s missing from golden file", key)
						continue
					}
					seen++
					if got := fmt.Sprintf("%x", sha256.Sum256(data)); got != want {
						t.Errorf("parallelism %d: %s drifted from the pre-refactor bytes: digest %s, want %s",
							par, key, got, want)
					}
				}
				// Every golden entry for this config must still be rendered.
				for key := range golden {
					if len(key) > len(gc.Name) && key[:len(gc.Name)+1] == gc.Name+"/" {
						if _, ok := figs[key[len(gc.Name)+1:]]; !ok {
							t.Errorf("golden figure %s no longer rendered", key)
						}
					}
				}
				_ = seen
			}
		})
	}
}
