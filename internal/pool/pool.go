// Package pool models mining-pool populations and their consolidation
// dynamics, reproducing the paper's Figure 5: the fraction of daily blocks
// won by the top 1/3/5 pools on each chain.
//
// The paper observed that (a) ETH's pool concentration was immediately the
// same as pre-fork Ethereum's — the big pools moved over wholesale; (b)
// ETC's top pools initially mined a much smaller share — the big pools had
// left and many small operations remained; and (c) over several months ETC
// converged to the same top-N ratios. We model (c) as preferential
// attachment: each day a fraction of loose miners re-homes to pools with
// probability proportional to pool size, the standard rich-get-richer
// process that produces heavy-tailed (Zipf-like) pool sizes.
package pool

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"forkwatch/internal/keccak"
	"forkwatch/internal/types"
)

// Pool is one mining pool: an identity (its payout address, which is what
// the paper observes in block coinbases) and its share of chain hashrate.
type Pool struct {
	Name    string
	Address types.Address
	// Weight is the pool's fraction of the chain's hashrate; a
	// Population keeps weights summing to 1.
	Weight float64
}

// AddressFor derives a stable payout address from a pool name.
func AddressFor(name string) types.Address {
	h := keccak.Sum256([]byte("pool:" + name))
	return types.BytesToAddress(h[12:])
}

// Population is the set of pools mining one chain.
type Population struct {
	Pools []Pool
}

// NewZipfPopulation creates n pools with sizes following a Zipf law with
// exponent s (size_i ∝ 1/i^s), normalised to sum to 1. Real pool-size
// distributions are heavy-tailed; s≈1 reproduces the pre-fork top-N shares
// the paper reports (top pool ~25-30%, top 5 ~80%).
func NewZipfPopulation(prefix string, n int, s float64) *Population {
	p := &Population{}
	total := 0.0
	for i := 1; i <= n; i++ {
		w := 1 / math.Pow(float64(i), s)
		total += w
		name := fmt.Sprintf("%s-pool-%02d", prefix, i)
		p.Pools = append(p.Pools, Pool{Name: name, Address: AddressFor(name), Weight: w})
	}
	for i := range p.Pools {
		p.Pools[i].Weight /= total
	}
	return p
}

// NewUniformPopulation creates n equal-weight pools: the fragmented
// post-fork ETC starting point (the big pools left; many small ones
// remain).
func NewUniformPopulation(prefix string, n int) *Population {
	p := &Population{}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("%s-pool-%02d", prefix, i)
		p.Pools = append(p.Pools, Pool{Name: name, Address: AddressFor(name), Weight: 1 / float64(n)})
	}
	return p
}

// Weights returns the pools' weight vector (aliases internal state).
func (p *Population) Weights() []float64 {
	w := make([]float64, len(p.Pools))
	for i, pool := range p.Pools {
		w[i] = pool.Weight
	}
	return w
}

// Normalize rescales weights to sum to 1.
func (p *Population) Normalize() {
	total := 0.0
	for _, pool := range p.Pools {
		total += pool.Weight
	}
	if total <= 0 {
		return
	}
	for i := range p.Pools {
		p.Pools[i].Weight /= total
	}
}

// Consolidate advances the population one day of preferential attachment:
// a fraction churn of total weight detaches and re-homes proportionally to
// pool size^alpha (alpha > 0; alpha = 1 is classic rich-get-richer). Noise
// jitters the re-homing so small pools occasionally gain.
//
// cap (> 0) saturates attachment for very large pools: a pool's
// attractiveness is damped by exp(-weight/cap). This models the real,
// documented counter-force — miners avoid pools approaching majority
// hashrate — and is what makes the distribution stationary at ETH-like
// top-N shares instead of collapsing into a single pool. cap <= 0
// disables saturation.
func (p *Population) Consolidate(churn, alpha, cap float64, r *rand.Rand) {
	if len(p.Pools) == 0 || churn <= 0 {
		return
	}
	loose := 0.0
	for i := range p.Pools {
		d := p.Pools[i].Weight * churn
		p.Pools[i].Weight -= d
		loose += d
	}
	// Attachment propensities ∝ weight^alpha with multiplicative noise;
	// the noise is what breaks the symmetric (uniform) starting point.
	prop := make([]float64, len(p.Pools))
	total := 0.0
	for i, pool := range p.Pools {
		prop[i] = math.Pow(pool.Weight+1e-9, alpha) * math.Exp(r.NormFloat64()*0.25)
		if cap > 0 {
			prop[i] *= math.Exp(-pool.Weight / cap)
		}
		total += prop[i]
	}
	for i := range p.Pools {
		p.Pools[i].Weight += loose * prop[i] / total
	}
	p.Normalize()
}

// TopNShare returns the combined weight of the n heaviest pools.
func (p *Population) TopNShare(n int) float64 {
	w := p.Weights()
	sort.Sort(sort.Reverse(sort.Float64Slice(w)))
	if n > len(w) {
		n = len(w)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += w[i]
	}
	return sum
}

// Gini returns the Gini coefficient of the pool weights: 0 is perfect
// equality, values toward 1 mean concentration. The paper's future-work
// question — whether the converged distribution reflects "fundamental
// market trends" — is a question about this statistic's stationary value.
func (p *Population) Gini() float64 {
	w := p.Weights()
	return GiniOf(w)
}

// GiniOf computes the Gini coefficient of any non-negative vector.
func GiniOf(w []float64) float64 {
	n := len(w)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), w...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += v * float64(2*(i+1)-n-1)
		total += v
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// TopNFromCounts computes the paper's actual Figure 5 statistic: the
// fraction of the day's mined blocks attributed (by coinbase address) to
// the n most productive pools that day.
func TopNFromCounts(blocksByPool map[types.Address]int, n int) float64 {
	total := 0
	counts := make([]int, 0, len(blocksByPool))
	for _, c := range blocksByPool {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if n > len(counts) {
		n = len(counts)
	}
	top := 0
	for i := 0; i < n; i++ {
		top += counts[i]
	}
	return float64(top) / float64(total)
}
