package pool

import "fmt"

// Behaviour models a partition's pool-level allegiance: how much of its
// mining population follows price arbitrage versus staying on the chain
// for non-economic reasons. The paper's future-work section asks whether
// ETC's surviving hashrate was profit-rational or ideological; the
// geo-distribution/pool literature (PAPERS.md) observes real pools doing
// both. The behaviour feeds the engine's daily hashrate blend: the
// "sticky" fraction of a partition's share tracks the structural
// schedule and never chases USD-per-hash.
type Behaviour int

const (
	// BehaviourProfitOnly pools follow price arbitrage completely — the
	// paper's Fig 3 equilibrium assumption, and the default.
	BehaviourProfitOnly Behaviour = iota
	// BehaviourIdeological pools never migrate on price: the partition's
	// share follows only the structural schedule (fork exit, rejoin,
	// collapse).
	BehaviourIdeological
	// BehaviourMixed pools split between the two: a configured fraction
	// is ideological, the rest arbitrages.
	BehaviourMixed
)

// Behaviour spec strings (PartitionSpec.Behaviour, the -partitions flag).
const (
	BehaviourProfitOnlyName  = "profit-only"
	BehaviourIdeologicalName = "ideological"
	BehaviourMixedName       = "mixed"
)

// ParseBehaviour maps a spec string to a Behaviour. The empty string is
// the profit-only default so zero-valued PartitionSpecs behave like the
// paper's calibration.
func ParseBehaviour(s string) (Behaviour, error) {
	switch s {
	case "", BehaviourProfitOnlyName:
		return BehaviourProfitOnly, nil
	case BehaviourIdeologicalName:
		return BehaviourIdeological, nil
	case BehaviourMixedName:
		return BehaviourMixed, nil
	}
	return 0, fmt.Errorf("pool: unknown behaviour %q (want %s, %s or %s)",
		s, BehaviourProfitOnlyName, BehaviourIdeologicalName, BehaviourMixedName)
}

// String returns the spec name of the behaviour.
func (b Behaviour) String() string {
	switch b {
	case BehaviourIdeological:
		return BehaviourIdeologicalName
	case BehaviourMixed:
		return BehaviourMixedName
	}
	return BehaviourProfitOnlyName
}

// StickyFraction returns the fraction of the partition's hashrate pinned
// to the structural schedule. mixedShare configures BehaviourMixed; it
// defaults to one half when unset.
func (b Behaviour) StickyFraction(mixedShare float64) float64 {
	switch b {
	case BehaviourIdeological:
		return 1
	case BehaviourMixed:
		if mixedShare <= 0 {
			return 0.5
		}
		if mixedShare > 1 {
			return 1
		}
		return mixedShare
	}
	return 0
}
