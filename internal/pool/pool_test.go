package pool

import (
	"math"
	"math/rand"
	"testing"

	"forkwatch/internal/types"
)

func TestZipfPopulationShape(t *testing.T) {
	p := NewZipfPopulation("eth", 20, 1.0)
	if len(p.Pools) != 20 {
		t.Fatalf("pools = %d", len(p.Pools))
	}
	sum := 0.0
	for i, pool := range p.Pools {
		if pool.Weight <= 0 {
			t.Fatalf("pool %d has weight %v", i, pool.Weight)
		}
		if i > 0 && pool.Weight > p.Pools[i-1].Weight+1e-12 {
			t.Fatal("Zipf weights should be non-increasing")
		}
		sum += pool.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// Zipf s=1, n=20: top-1 ≈ 28%, top-5 ≈ 63% — a concentrated
	// distribution like the paper's ETH panel.
	if top1 := p.TopNShare(1); top1 < 0.2 || top1 > 0.35 {
		t.Errorf("top-1 share = %.3f", top1)
	}
	if top5 := p.TopNShare(5); top5 < 0.5 || top5 > 0.75 {
		t.Errorf("top-5 share = %.3f", top5)
	}
}

func TestUniformPopulation(t *testing.T) {
	p := NewUniformPopulation("etc", 25)
	if got := p.TopNShare(5); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("uniform top-5 = %v, want 0.2", got)
	}
}

func TestAddressForStable(t *testing.T) {
	if AddressFor("x") != AddressFor("x") {
		t.Error("address derivation should be deterministic")
	}
	if AddressFor("x") == AddressFor("y") {
		t.Error("different names should get different addresses")
	}
}

// TestConsolidationConverges: a fragmented population under preferential
// attachment must become concentrated — the paper's ETC convergence
// (observation O6).
func TestConsolidationConverges(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := NewUniformPopulation("etc", 25)
	start5 := p.TopNShare(5)
	for day := 0; day < 200; day++ {
		p.Consolidate(0.15, 1.3, 0.25, r)
	}
	end5 := p.TopNShare(5)
	if end5 <= start5+0.2 {
		t.Errorf("top-5 share did not concentrate: %.3f -> %.3f", start5, end5)
	}
	// The saturation cap keeps the distribution stationary rather than
	// collapsing into a single pool.
	if p.TopNShare(1) > 0.6 {
		t.Errorf("top-1 share %.3f: cap failed to prevent single-pool collapse", p.TopNShare(1))
	}
	// Weights remain a distribution.
	sum := 0.0
	for _, pool := range p.Pools {
		if pool.Weight < 0 {
			t.Fatalf("negative weight %v", pool.Weight)
		}
		sum += pool.Weight
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("weights sum to %v after consolidation", sum)
	}
}

func TestConsolidateNoChurnIsNoOp(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := NewZipfPopulation("x", 10, 1)
	before := p.TopNShare(3)
	p.Consolidate(0, 1, 0.3, r)
	if p.TopNShare(3) != before {
		t.Error("zero churn should not move weights")
	}
}

func TestTopNFromCounts(t *testing.T) {
	counts := map[types.Address]int{
		AddressFor("a"): 50,
		AddressFor("b"): 30,
		AddressFor("c"): 15,
		AddressFor("d"): 5,
	}
	if got := TopNFromCounts(counts, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("top-1 = %v", got)
	}
	if got := TopNFromCounts(counts, 3); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("top-3 = %v", got)
	}
	if got := TopNFromCounts(counts, 10); got != 1 {
		t.Errorf("top-10 should cover everything: %v", got)
	}
	if got := TopNFromCounts(map[types.Address]int{}, 3); got != 0 {
		t.Errorf("empty day = %v", got)
	}
}

func TestGini(t *testing.T) {
	if g := GiniOf([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Errorf("uniform Gini = %v, want 0", g)
	}
	// One pool holds everything: Gini -> (n-1)/n.
	if g := GiniOf([]float64{0, 0, 0, 1}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("degenerate Gini = %v, want 0.75", g)
	}
	if g := GiniOf(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := GiniOf([]float64{0, 0}); g != 0 {
		t.Errorf("zero-total Gini = %v", g)
	}
	// Zipf populations are more concentrated than uniform ones.
	zipf := NewZipfPopulation("z", 20, 1.0).Gini()
	uniform := NewUniformPopulation("u", 20).Gini()
	if zipf <= uniform {
		t.Errorf("Zipf Gini %v should exceed uniform %v", zipf, uniform)
	}
}

// TestConsolidationGiniConverges: ETC's Gini approaches the ETH (Zipf)
// level under the calibrated dynamics.
func TestConsolidationGiniConverges(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	etc := NewUniformPopulation("etc", 25)
	ethGini := NewZipfPopulation("eth", 20, 1.0).Gini()
	start := etc.Gini()
	for day := 0; day < 200; day++ {
		etc.Consolidate(0.15, 1.3, 0.24, r)
	}
	end := etc.Gini()
	if end <= start {
		t.Fatalf("Gini did not rise: %v -> %v", start, end)
	}
	if math.Abs(end-ethGini) > 0.35 {
		t.Errorf("converged Gini %v too far from ETH's %v", end, ethGini)
	}
}
