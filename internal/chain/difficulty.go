package chain

import (
	"math/big"

	"forkwatch/internal/types"
)

// CalcDifficulty implements the Homestead difficulty filter, the mechanism
// behind every panel of the paper's Figure 1:
//
//	diff = parent + parent/2048 * max(1 - (time-parent.time)/10, -clamp)
//
// A block 0–9 seconds after its parent raises difficulty by parent/2048; a
// slower block lowers it by up to clamp*parent/2048 (clamp = 99 in
// Homestead). The clamp is the "cap in the absolute difference" the paper
// cites: when ~90% of ETC's hashpower vanished at the fork, difficulty
// could fall at most ~4.6% per (very slow) block, which is why ETC took
// ~two days to resume the 14-second target rate.
//
// The exponential difficulty bomb is omitted: it contributed under 0.1% of
// difficulty in the measurement window (blocks ~1.9M–3.5M) and does not
// affect any reported dynamics (recorded as a substitution in DESIGN.md).
func CalcDifficulty(cfg *Config, time uint64, parent *Header) *big.Int {
	return NextDifficulty(cfg, time, parent.Time, parent.Number, parent.Difficulty, nil)
}

// NextDifficulty is CalcDifficulty without the Header indirection and with
// an optional destination: when dst is non-nil the result is stored into
// it (and returned), so per-block callers can reuse one scratch big.Int
// instead of allocating millions. The fast path then allocates nothing.
func NextDifficulty(cfg *Config, time, parentTime, parentNumber uint64, parentDiff *big.Int, dst *big.Int) *big.Int {
	// Validation guarantees time > parentTime; guard anyway so a bad
	// caller gets a maximal raise rather than a uint64 wraparound.
	var delta uint64
	if time > parentTime {
		delta = time - parentTime
	}

	// Fast path: every realistic difficulty fits comfortably in an int64
	// (mainnet peaked around 2^47), and the simulator calls this once per
	// block — millions of times per nine-month run — so the filter runs in
	// machine words whenever it can. The bound keeps p plus its ~4.9%
	// maximal step (and a bomb term capped at the same magnitude) far from
	// overflow.
	if pd := parentDiff; pd.IsInt64() &&
		cfg.DifficultyBoundDivisor.IsInt64() && cfg.MinimumDifficulty.IsInt64() {
		p := pd.Int64()
		if p > 0 && p < 1<<61 {
			adjust := 1 - int64(delta/10)
			if adjust < -cfg.DifficultyClampFactor {
				adjust = -cfg.DifficultyClampFactor
			}
			d := p + p/cfg.DifficultyBoundDivisor.Int64()*adjust
			bombOK := true
			if cfg.EnableBomb {
				period := (parentNumber + 1) / 100_000
				if period >= 2 {
					if period-2 < 61 {
						d += int64(1) << (period - 2)
					} else {
						bombOK = false // bomb outgrew the word: big path
					}
				}
			}
			if bombOK {
				if m := cfg.MinimumDifficulty.Int64(); d < m {
					d = m
				}
				if dst == nil {
					return big.NewInt(d)
				}
				return dst.SetInt64(d)
			}
		}
	}

	elapsed := new(big.Int).SetUint64(delta)

	// adjust = max(1 - elapsed/10, -clamp)
	adjust := new(big.Int).Div(elapsed, big.NewInt(10))
	adjust.Sub(big.NewInt(1), adjust)
	clamp := big.NewInt(-cfg.DifficultyClampFactor)
	if adjust.Cmp(clamp) < 0 {
		adjust = clamp
	}

	step := new(big.Int).Div(parentDiff, cfg.DifficultyBoundDivisor)
	diff := new(big.Int).Add(parentDiff, step.Mul(step, adjust))

	// Exponential difficulty bomb ("ice age"): +2^(number/100000 - 2).
	// Off by default — at the fork height (~1.92M, period 19) it adds
	// 2^17 against a ~7e13 difficulty, under a billionth; see
	// TestBombNegligibleInStudyWindow.
	if cfg.EnableBomb {
		period := (parentNumber + 1) / 100_000
		if period >= 2 {
			bomb := new(big.Int).Lsh(big.NewInt(1), uint(period-2))
			diff.Add(diff, bomb)
		}
	}
	out := types.BigMax(diff, cfg.MinimumDifficulty)
	if dst == nil {
		return out
	}
	return dst.Set(out)
}
