package chain

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/types"
)

// donorChain mines a short canonical chain on a pristine store and
// returns it with its WriteChain stream.
func donorChain(t *testing.T) (*Blockchain, []byte) {
	t.Helper()
	bc := newTestChain(t, MainnetLikeConfig())
	nonce := uint64(0)
	for i := 0; i < 6; i++ {
		var txs []*Transaction
		if i%2 == 0 {
			txs = append(txs, transfer(nonce, alice, bob, 1_000, 0))
			nonce++
		}
		mine(t, bc, 13, txs...)
	}
	var buf bytes.Buffer
	if err := bc.WriteChain(&buf); err != nil {
		t.Fatal(err)
	}
	return bc, buf.Bytes()
}

func TestOpenRoundTrip(t *testing.T) {
	kv := db.NewMemDB()
	bc, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), kv)
	if err != nil {
		t.Fatal(err)
	}
	mine(t, bc, 13, transfer(0, alice, bob, 500, 0))
	mine(t, bc, 13)
	mine(t, bc, 13, transfer(1, alice, bob, 250, 0))

	re, err := Open(MainnetLikeConfig(), kv)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if re.Head().Hash() != bc.Head().Hash() {
		t.Fatalf("reopened head %s, want %s", re.Head().Hash(), bc.Head().Hash())
	}
	if re.Genesis().Hash() != bc.Genesis().Hash() {
		t.Fatal("reopened genesis diverged")
	}
	for n := uint64(0); n <= bc.Head().Number(); n++ {
		a, _ := bc.BlockByNumber(n)
		b, ok := re.BlockByNumber(n)
		if !ok || a.Hash() != b.Hash() {
			t.Fatalf("canonical block %d diverged after reopen", n)
		}
		td1, _ := bc.TD(a.Hash())
		td2, _ := re.TD(a.Hash())
		if td1.Cmp(td2) != 0 {
			t.Fatalf("TD at %d diverged after reopen", n)
		}
	}
	// The reopened chain must accept new blocks (head state intact, WAL
	// sequence continues).
	mine(t, re, 13, transfer(2, alice, bob, 100, 0))
}

func TestOpenEmptyStore(t *testing.T) {
	if _, err := Open(MainnetLikeConfig(), db.NewMemDB()); !errors.Is(err, ErrNoChain) {
		t.Fatalf("Open(empty) = %v, want ErrNoChain", err)
	}
}

// TestCrashMidImportRecovers is the crash-restart round trip: kill the
// store at many different write offsets inside an ImportChain, reopen,
// and require that recovery lands exactly on the last durably committed
// head — never a partial block — and that resuming the import converges
// on the donor chain.
func TestCrashMidImportRecovers(t *testing.T) {
	donor, stream := donorChain(t)

	// Measure the import's total write footprint on a clean run.
	calibKV := faultkv.Wrap(db.NewMemDB(), faultkv.Faults{})
	calib, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), calibKV)
	if err != nil {
		t.Fatal(err)
	}
	importStart := calibKV.WriteOps()
	if _, err := calib.ImportChain(bytes.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	totalOps := calibKV.WriteOps() - importStart
	if totalOps < 20 {
		t.Fatalf("import footprint suspiciously small: %d write ops", totalOps)
	}

	for off := uint64(1); off <= totalOps; off += 5 {
		fkv := faultkv.Wrap(db.NewMemDB(), faultkv.Faults{})
		victim, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), fkv)
		if err != nil {
			t.Fatal(err)
		}
		fkv.CrashAtWriteOp(fkv.WriteOps() + off)
		imported, err := victim.ImportChain(bytes.NewReader(stream))
		if err == nil {
			t.Fatalf("off %d: import survived an armed crash", off)
		}
		if uint64(imported) != victim.Head().Number() {
			t.Fatalf("off %d: memory head %d does not match %d acknowledged imports",
				off, victim.Head().Number(), imported)
		}

		fkv.Reopen()
		re, err := Open(MainnetLikeConfig(), fkv)
		if err != nil {
			t.Fatalf("off %d: Open after crash: %v", off, err)
		}
		// The WAL sequence counts commits: genesis is seq 1, every block
		// commit adds one. Recovery must land exactly there.
		if want := re.Store().walSeq - 1; re.Head().Number() != want {
			t.Fatalf("off %d: recovered head %d, WAL says %d commits",
				off, re.Head().Number(), want)
		}
		// The acknowledged imports are a lower bound; the in-flight block
		// may have reached its commit point before the tear.
		if got := re.Head().Number(); got < uint64(imported) || got > uint64(imported)+1 {
			t.Fatalf("off %d: recovered head %d outside [%d, %d]",
				off, got, imported, imported+1)
		}
		// No divergent partial state: every recovered canonical block is
		// the donor's block at that height.
		for n := uint64(0); n <= re.Head().Number(); n++ {
			want, _ := donor.BlockByNumber(n)
			got, ok := re.BlockByNumber(n)
			if !ok || got.Hash() != want.Hash() {
				t.Fatalf("off %d: recovered canon %d diverged from donor", off, n)
			}
		}

		// Resuming the import must converge on the donor head.
		if _, err := re.ImportChain(bytes.NewReader(stream)); err != nil {
			t.Fatalf("off %d: resumed import: %v", off, err)
		}
		if re.Head().Hash() != donor.Head().Hash() {
			t.Fatalf("off %d: resumed head %s, want %s", off, re.Head().Hash(), donor.Head().Hash())
		}
	}
}

// TestWALRedoRepairsTornBatch exercises the store-level protocol: a data
// batch torn after the WAL record landed is finished by RecoverWAL.
func TestWALRedoRepairsTornBatch(t *testing.T) {
	inner := db.NewMemDB()
	fkv := faultkv.Wrap(inner, faultkv.Faults{})
	store := NewStore(fkv)

	wb := store.NewWALBatch()
	h := types.HexToHash("0xabc123")
	store.PutTD(wb, h, big.NewInt(77))
	store.PutStateRoot(wb, h, types.HexToHash("0xdef"))
	store.PutCanon(wb, 9, h)

	// Write op 1 is the WAL record; arm the crash inside the data batch so
	// the record is durable but the apply tears after one operation.
	fkv.CrashAtWriteOp(fkv.WriteOps() + 3)
	err := store.CommitWAL(wb)
	if !errors.Is(err, faultkv.ErrCrashed) {
		t.Fatalf("CommitWAL under tear = %v, want ErrCrashed", err)
	}
	if _, ok, _ := store.CanonHash(9); ok {
		t.Fatal("torn batch applied its last operation")
	}

	fkv.Reopen()
	re := NewStore(fkv)
	if err := re.RecoverWAL(); err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	td, ok, err := re.TD(h)
	if err != nil || !ok || td.Uint64() != 77 {
		t.Fatalf("TD after redo = %v %v %v", td, ok, err)
	}
	if ch, ok, _ := re.CanonHash(9); !ok || ch != h {
		t.Fatal("redo did not finish the torn batch")
	}
	if re.walSeq != store.walSeq {
		t.Fatalf("recovered walSeq %d, committed %d", re.walSeq, store.walSeq)
	}
}

// TestWALTruncatesCorruptRecord: a bit-rotted WAL record is removed
// during recovery, and the (fully applied) store still verifies.
func TestWALTruncatesCorruptRecord(t *testing.T) {
	kv := db.NewMemDB()
	bc, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), kv)
	if err != nil {
		t.Fatal(err)
	}
	mine(t, bc, 13)
	slot := walSlotKey(bc.Store().walSeq % walSlots)
	rec, ok, err := kv.Get(slot)
	if err != nil || !ok {
		t.Fatalf("no WAL record in the live slot: %v %v", ok, err)
	}
	rotted := append([]byte(nil), rec...)
	rotted[len(rotted)/2] ^= 0x40
	if err := kv.Put(slot, rotted); err != nil {
		t.Fatal(err)
	}

	re, err := Open(MainnetLikeConfig(), kv)
	if err != nil {
		t.Fatalf("Open with rotted WAL record: %v", err)
	}
	if re.Head().Hash() != bc.Head().Hash() {
		t.Fatal("head changed although the data was fully applied")
	}
	if ok, _ := kv.Has(slot); ok {
		t.Fatal("corrupt WAL record not truncated")
	}
}

// TestDoubleFaultFallsBackToPreviousHead: the newest commit's batch tears
// AND its WAL record rots. The commit is unrecoverable, but the store
// must still open consistently at the previous head (the documented
// data-loss-not-corruption semantics).
func TestDoubleFaultFallsBackToPreviousHead(t *testing.T) {
	inner := db.NewMemDB()
	fkv := faultkv.Wrap(inner, faultkv.Faults{})
	bc, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), fkv)
	if err != nil {
		t.Fatal(err)
	}
	mine(t, bc, 13)
	prevHead := bc.Head().Hash()

	// Build block 2 by hand so the crash cannot land in BuildBlock.
	blk, err := bc.BuildBlock(pool1, bc.Head().Header.Time+13, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find the WAL record write: crash right after it, tearing the whole
	// data batch (offset past the state-trie batch, probed upward).
	inserted := false
	for off := uint64(1); off < 200; off++ {
		snap := cloneMemDB(t, inner)
		fkv.CrashAtWriteOp(fkv.WriteOps() + off)
		err := bc.InsertBlock(blk)
		fkv.Reopen()
		if err == nil {
			inserted = true
			break
		}
		seq := bc.Store().walSeq
		rec, ok, _ := inner.Get(walSlotKey(seq % walSlots))
		if ok {
			if gotSeq, _, derr := decodeWALRecord(rec); derr == nil && gotSeq == seq && seq >= 3 {
				// The block's WAL record landed but its batch tore: the
				// double-fault setup. Rot the record and recover.
				rec[len(rec)-1] ^= 0x01
				if err := inner.Put(walSlotKey(seq%walSlots), rec); err != nil {
					t.Fatal(err)
				}
				re, err := Open(MainnetLikeConfig(), fkv)
				if err != nil {
					t.Fatalf("off %d: double fault made the store unopenable: %v", off, err)
				}
				if re.Head().Hash() != prevHead {
					t.Fatalf("off %d: double fault recovered to %s, want previous head %s",
						off, re.Head().Hash(), prevHead)
				}
				return
			}
		}
		restoreMemDB(t, inner, snap)
	}
	if inserted {
		t.Skip("no probed offset tore the data batch after the WAL record")
	}
	t.Fatal("never reached the commit point")
}

// TestVerifyHeadDetectsInconsistency: a manufactured store whose head
// marker points at a missing block must surface ErrCorruptStore (the
// resync fallback signal).
func TestVerifyHeadDetectsInconsistency(t *testing.T) {
	kv := db.NewMemDB()
	if err := kv.Put(keyHead, types.HexToHash("0xdead").Bytes()); err != nil {
		t.Fatal(err)
	}
	store := NewStore(kv)
	if err := store.RecoverWAL(); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("RecoverWAL over inconsistent store = %v, want ErrCorruptStore", err)
	}
	if _, err := Open(MainnetLikeConfig(), kv); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("Open over inconsistent store = %v, want ErrCorruptStore", err)
	}
}

// cloneMemDB snapshots every key of a MemDB.
func cloneMemDB(t *testing.T, m *db.MemDB) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, k := range m.Keys() {
		v, ok, err := m.Get(k)
		if err != nil || !ok {
			t.Fatalf("clone read: %v %v", ok, err)
		}
		out[string(k)] = append([]byte(nil), v...)
	}
	return out
}

// restoreMemDB rewinds a MemDB to a snapshot.
func restoreMemDB(t *testing.T, m *db.MemDB, snap map[string][]byte) {
	t.Helper()
	for _, k := range m.Keys() {
		if _, ok := snap[string(k)]; !ok {
			if err := m.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, v := range snap {
		if err := m.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
}
