package chain

import (
	"fmt"
	"math/big"
	"sync"

	"forkwatch/internal/evm"
	"forkwatch/internal/state"
	"forkwatch/internal/types"
)

// txScratch holds the per-transaction big.Int workspace of
// ApplyTransaction. The state mutators and the EVM copy their big.Int
// arguments, so the scratches only need to live for the call; a pool (not
// Processor fields) keeps ApplyTransaction safe under concurrent callers.
type txScratch struct {
	num   big.Int
	gas   big.Int
	money big.Int
}

var txScratchPool = sync.Pool{New: func() any { return new(txScratch) }}

// Processor executes blocks against state: per-transaction gas purchase,
// EVM execution, fee payment and the coinbase reward, plus the DAO
// irregular state change on the supporting chain at the fork block.
type Processor struct {
	cfg *Config
}

// NewProcessor returns a processor for the given rule set.
func NewProcessor(cfg *Config) *Processor { return &Processor{cfg: cfg} }

// ApplyDAOFork performs the irregular state change: every drained
// account's balance moves to the refund contract. Called exactly once, at
// the fork block, on the supporting chain.
func (p *Processor) ApplyDAOFork(st *state.DB) {
	for _, addr := range p.cfg.DAODrainList {
		bal := st.GetBalance(addr)
		if bal.Sign() == 0 {
			continue
		}
		st.SubBalance(addr, bal)
		st.AddBalance(p.cfg.DAORefundContract, bal)
	}
}

// Process executes the block body on st (the parent's state) and returns
// the receipts. st is mutated; the caller commits and checks the root.
func (p *Processor) Process(block *Block, st *state.DB) ([]*Receipt, error) {
	header := block.Header
	num := new(big.Int).SetUint64(header.Number)
	if p.cfg.DAOForkSupport && p.cfg.IsDAOFork(num) {
		p.ApplyDAOFork(st)
	}
	var receipts []*Receipt
	gasPool := header.GasLimit
	for i, tx := range block.Txs {
		rec, used, err := p.ApplyTransaction(tx, st, header, gasPool)
		if err != nil {
			return nil, fmt.Errorf("tx %d (%s): %w", i, tx.Hash(), err)
		}
		gasPool -= used
		receipts = append(receipts, rec)
	}
	// Coinbase reward plus the uncle schedule (uncle miners get the
	// depth-scaled partial reward; the including miner 1/32 per uncle).
	reward := types.BigCopy(p.cfg.BlockReward)
	bonus := p.uncleRewards(header.Number, block.Uncles, func(a types.Address, r *big.Int) {
		st.AddBalance(a, r)
	})
	reward.Add(reward, bonus)
	st.AddBalance(header.Coinbase, reward)
	return receipts, nil
}

// ValidateTx checks a transaction's signature, replay domain and funding
// against the given state without executing it. Used by the tx pool and as
// the first stage of ApplyTransaction.
func (p *Processor) ValidateTx(tx *Transaction, st *state.DB, blockNum *big.Int) error {
	if err := tx.VerifySig(); err != nil {
		return err
	}
	// Replay protection: a chain-bound transaction only executes on its
	// own chain — and only once the chain understands chain ids. Before
	// EIP155Block, chain-bound txs are not yet recognised (mirrors the
	// backwards-compatible rollout the paper describes).
	if tx.ChainID != 0 {
		if !p.cfg.IsEIP155(blockNum) {
			return fmt.Errorf("%w: chain ids not active until block %v", ErrWrongChainID, p.cfg.EIP155Block)
		}
		if tx.ChainID != p.cfg.ChainID {
			return fmt.Errorf("%w: tx bound to %d, chain is %d", ErrWrongChainID, tx.ChainID, p.cfg.ChainID)
		}
	}
	nonce := st.GetNonce(tx.From)
	switch {
	case tx.Nonce < nonce:
		return fmt.Errorf("%w: tx %d, account %d", ErrNonceTooLow, tx.Nonce, nonce)
	case tx.Nonce > nonce:
		return fmt.Errorf("%w: tx %d, account %d", ErrNonceTooHigh, tx.Nonce, nonce)
	}
	if tx.IntrinsicGas() > tx.GasLimit {
		return fmt.Errorf("%w: need %d, limit %d", ErrIntrinsicGas, tx.IntrinsicGas(), tx.GasLimit)
	}
	sc := txScratchPool.Get().(*txScratch)
	cost := tx.CostInto(&sc.money, &sc.gas)
	if st.BalanceCmp(tx.From, cost) < 0 {
		err := fmt.Errorf("%w: have %v, need %v", ErrInsufficientFunds, st.GetBalance(tx.From), tx.Cost())
		txScratchPool.Put(sc)
		return err
	}
	txScratchPool.Put(sc)
	return nil
}

// ApplyTransaction executes one transaction, returning its receipt and the
// gas it consumed from the block gas pool.
// The returned receipt comes from the receipt arena; callers that fully
// consume it (serialize, drop) should hand it back via ReleaseReceipt.
// Every big.Int used for gas accounting is pooled scratch: the state
// mutators and the EVM copy their arguments, so nothing leaks out.
func (p *Processor) ApplyTransaction(tx *Transaction, st *state.DB, header *Header, gasPool uint64) (*Receipt, uint64, error) {
	sc := txScratchPool.Get().(*txScratch)
	defer txScratchPool.Put(sc)
	num := sc.num.SetUint64(header.Number)
	if err := p.ValidateTx(tx, st, num); err != nil {
		return nil, 0, err
	}
	if tx.GasLimit > gasPool {
		return nil, 0, fmt.Errorf("chain: block gas pool exhausted: tx wants %d, pool %d", tx.GasLimit, gasPool)
	}

	// Buy gas up front. The nonce bump for creations happens inside
	// evm.Create (which derives the contract address from it); calls bump
	// it here.
	upfront := sc.money.Mul(tx.GasPrice, sc.gas.SetUint64(tx.GasLimit))
	st.SubBalance(tx.From, upfront)
	if !tx.IsContractCreation() {
		st.SetNonce(tx.From, tx.Nonce+1)
	}

	machine := evm.New(st, evm.Context{
		BlockNumber: num,
		Timestamp:   header.Time,
		Coinbase:    header.Coinbase,
		ChainID:     p.cfg.ChainID,
		Origin:      tx.From,
		GasPrice:    tx.GasPrice,
	})
	gas := tx.GasLimit - tx.IntrinsicGas()

	rec := NewPooledReceipt()
	rec.TxHash = tx.Hash()
	var gasLeft uint64
	var execErr error
	if tx.IsContractCreation() {
		rec.ContractCall = true
		var addr types.Address
		addr, gasLeft, execErr = machine.Create(tx.From, tx.Data, tx.Value, gas)
		rec.ContractAddress = addr
	} else {
		rec.ContractCall = len(st.GetCode(*tx.To)) > 0
		_, gasLeft, execErr = machine.Call(tx.From, *tx.To, tx.Data, tx.Value, gas)
	}
	rec.Status = execErr == nil

	gasUsed := tx.GasLimit - gasLeft
	rec.GasUsed = gasUsed

	// Refund unused gas; pay the fee to the coinbase.
	refund := sc.money.Mul(tx.GasPrice, sc.gas.SetUint64(gasLeft))
	st.AddBalance(tx.From, refund)
	fee := sc.money.Mul(tx.GasPrice, sc.gas.SetUint64(gasUsed))
	st.AddBalance(header.Coinbase, fee)
	return rec, gasUsed, nil
}
