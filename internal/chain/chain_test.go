package chain

import (
	"errors"
	"math/big"
	"testing"

	"forkwatch/internal/types"
)

var (
	alice  = types.HexToAddress("0xa11ce")
	bob    = types.HexToAddress("0xb0b")
	pool1  = types.HexToAddress("0x9001")
	dao    = types.HexToAddress("0xdao")
	refund = types.HexToAddress("0x4ef")
)

func testGenesis() *Genesis {
	return &Genesis{
		Difficulty: big.NewInt(131072 * 4),
		Time:       1_000_000,
		Alloc: map[types.Address]*big.Int{
			alice: new(big.Int).Mul(big.NewInt(1000), Ether),
			dao:   new(big.Int).Mul(big.NewInt(500), Ether),
		},
	}
}

func newTestChain(t *testing.T, cfg *Config) *Blockchain {
	t.Helper()
	bc, err := NewBlockchain(cfg, testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

// mine builds, and inserts, one block at head.Time+interval with txs.
func mine(t *testing.T, bc *Blockchain, interval uint64, txs ...*Transaction) *Block {
	t.Helper()
	b, err := bc.BuildBlock(pool1, bc.Head().Header.Time+interval, txs)
	if err != nil {
		t.Fatalf("BuildBlock: %v", err)
	}
	if err := bc.InsertBlock(b); err != nil {
		t.Fatalf("InsertBlock: %v", err)
	}
	return b
}

func transfer(nonce uint64, from, to types.Address, wei int64, chainID uint64) *Transaction {
	return NewTransaction(nonce, &to, big.NewInt(wei), 21_000, big.NewInt(1), nil).Sign(from, chainID)
}

func TestGenesisDeterministic(t *testing.T) {
	a := newTestChain(t, MainnetLikeConfig())
	b := newTestChain(t, MainnetLikeConfig())
	if a.Genesis().Hash() != b.Genesis().Hash() {
		t.Error("identical genesis specs should hash identically")
	}
	if a.Head().Number() != 0 {
		t.Error("fresh chain head should be genesis")
	}
}

func TestCalcDifficulty(t *testing.T) {
	cfg := MainnetLikeConfig()
	parent := &Header{Time: 1000, Difficulty: big.NewInt(1 << 22)}

	fast := CalcDifficulty(cfg, 1005, parent) // 5s: raise by parent/2048
	wantFast := new(big.Int).Add(parent.Difficulty, new(big.Int).Div(parent.Difficulty, big.NewInt(2048)))
	if fast.Cmp(wantFast) != 0 {
		t.Errorf("fast block difficulty = %v, want %v", fast, wantFast)
	}

	slow := CalcDifficulty(cfg, 1000+25, parent) // 25s: lower by parent/2048
	wantSlow := new(big.Int).Sub(parent.Difficulty, new(big.Int).Div(parent.Difficulty, big.NewInt(2048)))
	if slow.Cmp(wantSlow) != 0 {
		t.Errorf("slow block difficulty = %v, want %v", slow, wantSlow)
	}

	// Very slow block: clamped at -99 steps.
	glacial := CalcDifficulty(cfg, 1000+100_000, parent)
	step := new(big.Int).Div(parent.Difficulty, big.NewInt(2048))
	wantClamp := new(big.Int).Sub(parent.Difficulty, new(big.Int).Mul(step, big.NewInt(99)))
	if glacial.Cmp(wantClamp) != 0 {
		t.Errorf("clamped difficulty = %v, want %v", glacial, wantClamp)
	}

	// Floor at minimum difficulty.
	tiny := &Header{Time: 1000, Difficulty: big.NewInt(131072)}
	floored := CalcDifficulty(cfg, 1000+100_000, tiny)
	if floored.Cmp(cfg.MinimumDifficulty) != 0 {
		t.Errorf("floored difficulty = %v, want %v", floored, cfg.MinimumDifficulty)
	}
}

func TestDifficultyRecoveryShape(t *testing.T) {
	// After a difficulty far above what block times support, consecutive
	// maximally-slow blocks decay difficulty by ~4.83% each: the paper's
	// two-day ETC recovery. Check the decay factor.
	cfg := MainnetLikeConfig()
	h := &Header{Time: 0, Difficulty: big.NewInt(1 << 40)}
	next := CalcDifficulty(cfg, 10_000, h)
	ratio := new(big.Float).Quo(new(big.Float).SetInt(next), new(big.Float).SetInt(h.Difficulty))
	f, _ := ratio.Float64()
	if f < 0.95 || f > 0.953 {
		t.Errorf("max decay ratio = %v, want ~0.9517 (1 - 99/2048)", f)
	}
}

func TestMineTransfersAndReward(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	tx := transfer(0, alice, bob, 1234, 0)
	mine(t, bc, 14, tx)

	st, err := bc.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.GetBalance(bob); got.Int64() != 1234 {
		t.Errorf("bob = %v, want 1234", got)
	}
	// Coinbase got reward + fee (21000 gas at price 1).
	wantPool := new(big.Int).Add(bc.Config().BlockReward, big.NewInt(21_000))
	if got := st.GetBalance(pool1); got.Cmp(wantPool) != 0 {
		t.Errorf("pool = %v, want %v", got, wantPool)
	}
	if st.GetNonce(alice) != 1 {
		t.Error("sender nonce not advanced")
	}
	rec, ok, _ := bc.Receipts(bc.Head().Hash())
	if !ok || len(rec) != 1 {
		t.Fatalf("receipts = %v, %v", rec, ok)
	}
	if !rec[0].Status || rec[0].GasUsed != 21_000 || rec[0].ContractCall {
		t.Errorf("receipt = %+v", rec[0])
	}
}

func TestTxEncodingRoundTrip(t *testing.T) {
	to := bob
	tx := NewTransaction(3, &to, big.NewInt(777), 50_000, big.NewInt(20), []byte{1, 0, 2}).Sign(alice, 61)
	dec, err := DecodeTx(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != tx.Hash() {
		t.Error("decode changed tx hash")
	}
	if err := dec.VerifySig(); err != nil {
		t.Errorf("decoded tx signature invalid: %v", err)
	}
	if dec.From != alice || dec.ChainID != 61 || dec.Nonce != 3 {
		t.Errorf("decoded fields wrong: %+v", dec)
	}
	// Creation tx (nil To) round-trips too.
	create := NewTransaction(0, nil, nil, 100_000, big.NewInt(1), []byte{0x60}).Sign(alice, 0)
	dec2, err := DecodeTx(create.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec2.To != nil {
		t.Error("creation tx recipient should stay nil")
	}
}

func TestTamperedTxRejected(t *testing.T) {
	tx := transfer(0, alice, bob, 10, 0)
	tx.Value = big.NewInt(1_000_000) // tamper after signing
	if err := tx.VerifySig(); err == nil {
		t.Error("tampered tx should fail signature check")
	}
	// And a tampered sender.
	tx2 := transfer(0, alice, bob, 10, 0)
	tx2.From = bob
	if err := tx2.VerifySig(); err == nil {
		t.Error("sender swap should fail signature check")
	}
}

func TestBlockEncodingRoundTrip(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	blk := mine(t, bc, 14, transfer(0, alice, bob, 5, 0))
	dec, err := DecodeBlock(blk.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != blk.Hash() {
		t.Error("block hash changed across encode/decode")
	}
	if len(dec.Txs) != 1 || dec.Txs[0].Hash() != blk.Txs[0].Hash() {
		t.Error("transactions corrupted across encode/decode")
	}
}

func TestHeaderValidation(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	good, err := bc.BuildBlock(pool1, bc.Head().Header.Time+14, nil)
	if err != nil {
		t.Fatal(err)
	}

	wrongDiff := &Block{Header: good.Header.Copy(), Txs: nil}
	wrongDiff.Header.Difficulty = new(big.Int).Add(wrongDiff.Header.Difficulty, big.NewInt(1))
	if err := bc.InsertBlock(wrongDiff); !errors.Is(err, ErrInvalidHeader) {
		t.Errorf("wrong difficulty: err = %v", err)
	}

	stale := &Block{Header: good.Header.Copy(), Txs: nil}
	stale.Header.Time = bc.Genesis().Header.Time // not after parent
	if err := bc.InsertBlock(stale); !errors.Is(err, ErrInvalidHeader) {
		t.Errorf("stale timestamp: err = %v", err)
	}

	badRoot := &Block{Header: good.Header.Copy(), Txs: []*Transaction{transfer(0, alice, bob, 1, 0)}}
	if err := bc.InsertBlock(badRoot); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("bad tx root: err = %v", err)
	}

	orphan := &Block{Header: good.Header.Copy(), Txs: nil}
	orphan.Header.ParentHash = types.HexToHash("0xdead")
	if err := bc.InsertBlock(orphan); !errors.Is(err, ErrUnknownParent) {
		t.Errorf("orphan: err = %v", err)
	}

	if err := bc.InsertBlock(good); err != nil {
		t.Fatalf("good block rejected: %v", err)
	}
	if err := bc.InsertBlock(good); !errors.Is(err, ErrKnownBlock) {
		t.Errorf("duplicate: err = %v", err)
	}

	tampered := &Block{Header: good.Header.Copy(), Txs: nil}
	tampered.Header.StateRoot = types.HexToHash("0xbadbad")
	tampered.Header.Time += 1
	tampered.Header.Difficulty = CalcDifficulty(bc.Config(), tampered.Header.Time, bc.Genesis().Header)
	if err := bc.InsertBlock(tampered); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("bad state root: err = %v", err)
	}
}

func TestForkChoiceHeaviestWins(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	genesis := bc.Genesis()

	// Branch A: one slow block (lower difficulty).
	slowA, err := bc.BuildBlock(pool1, genesis.Header.Time+60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(slowA); err != nil {
		t.Fatal(err)
	}
	if bc.Head().Hash() != slowA.Hash() {
		t.Fatal("first block should become head")
	}

	// Branch B: competing fast block from genesis with higher difficulty.
	fastHeader := &Header{
		ParentHash:  genesis.Hash(),
		Number:      1,
		Time:        genesis.Header.Time + 5,
		Difficulty:  CalcDifficulty(bc.Config(), genesis.Header.Time+5, genesis.Header),
		GasLimit:    bc.Config().GasLimit,
		Coinbase:    bob,
		StateRoot:   genesis.Header.StateRoot, // no txs: only reward changes state
		TxRoot:      TxRoot(nil),
		ReceiptRoot: ReceiptRoot(nil),
		UncleHash:   EmptyUncleHash,
	}
	// Recompute state root with the reward applied.
	st, err := bc.StateAt(genesis.Hash())
	if err != nil {
		t.Fatal(err)
	}
	st.AddBalance(bob, bc.Config().BlockReward)
	root, err := st.Commit()
	if err != nil {
		t.Fatal(err)
	}
	fastHeader.StateRoot = root
	fastB := &Block{Header: fastHeader}
	if err := bc.InsertBlock(fastB); err != nil {
		t.Fatal(err)
	}
	if bc.Head().Hash() != fastB.Hash() {
		t.Error("heavier competing block should win fork choice")
	}
	if got, _ := bc.BlockByNumber(1); got.Hash() != fastB.Hash() {
		t.Error("canonical index not updated after reorg")
	}
}

func TestReplaySemantics(t *testing.T) {
	gen := testGenesis()
	eth, err := NewBlockchain(ETHConfig(100, nil, refund), gen)
	if err != nil {
		t.Fatal(err)
	}
	etc, err := eth.NewSibling(ETCConfig(100), gen)
	if err != nil {
		t.Fatal(err)
	}

	// A legacy (chainID 0) transaction executes on both chains: the
	// paper's rebroadcast vulnerability.
	legacy := transfer(0, alice, bob, 42, 0)
	mineOn := func(bc *Blockchain, txs ...*Transaction) error {
		b, err := bc.BuildBlock(pool1, bc.Head().Header.Time+14, txs)
		if err != nil {
			return err
		}
		return bc.InsertBlock(b)
	}
	if err := mineOn(eth, legacy); err != nil {
		t.Fatalf("legacy tx on ETH: %v", err)
	}
	if err := mineOn(etc, legacy); err != nil {
		t.Fatalf("legacy tx replayed on ETC: %v", err)
	}

	// A chain-bound transaction fails on the other chain once EIP-155 is
	// active there — and is not even recognised before activation.
	eip155 := big.NewInt(2)
	eth.Config().EIP155Block = eip155
	etc.Config().EIP155Block = eip155

	ethOnly := transfer(1, alice, bob, 10, 1) // bound to ETH (chain id 1)
	if err := mineOn(eth, ethOnly); err != nil {
		t.Fatalf("chain-bound tx on its own chain: %v", err)
	}
	if err := mineOn(etc, ethOnly); !errors.Is(err, ErrInvalidBody) && !errors.Is(err, ErrWrongChainID) {
		t.Fatalf("chain-bound tx on other chain: err = %v, want wrong-chain failure", err)
	}
}

func TestDAOForkPartition(t *testing.T) {
	gen := testGenesis()
	const forkBlock = 3
	eth, err := NewBlockchain(ETHConfig(forkBlock, []types.Address{dao}, refund), gen)
	if err != nil {
		t.Fatal(err)
	}
	etc, err := eth.NewSibling(ETCConfig(forkBlock), gen)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Genesis().Hash() != etc.Genesis().Hash() {
		t.Fatal("chains must share genesis")
	}

	// Shared prefix: blocks 1 and 2 are valid on both chains.
	for i := 0; i < 2; i++ {
		b, err := eth.BuildBlock(pool1, eth.Head().Header.Time+14, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := eth.InsertBlock(b); err != nil {
			t.Fatal(err)
		}
		if err := etc.InsertBlock(b); err != nil {
			t.Fatalf("pre-fork block rejected by ETC: %v", err)
		}
	}

	// Fork block: each side builds its own.
	ethFork, err := eth.BuildBlock(pool1, eth.Head().Header.Time+14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(ethFork.Header.Extra) != string(DAOForkExtra) {
		t.Error("ETH fork block should carry the dao-hard-fork marker")
	}
	if err := eth.InsertBlock(ethFork); err != nil {
		t.Fatal(err)
	}
	etcFork, err := etc.BuildBlock(pool1, etc.Head().Header.Time+14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := etc.InsertBlock(etcFork); err != nil {
		t.Fatal(err)
	}

	// Cross-acceptance must fail from the fork height on.
	if err := etc.InsertBlock(ethFork); !errors.Is(err, ErrSideOfPartition) {
		t.Errorf("ETC accepting ETH fork block: err = %v", err)
	}
	if err := eth.InsertBlock(etcFork); !errors.Is(err, ErrSideOfPartition) {
		t.Errorf("ETH accepting ETC fork block: err = %v", err)
	}

	// The irregular state change happened only on ETH.
	ethSt, err := eth.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	etcSt, err := etc.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	if ethSt.GetBalance(dao).Sign() != 0 {
		t.Error("ETH should have drained the DAO account")
	}
	want := new(big.Int).Mul(big.NewInt(500), Ether)
	if ethSt.GetBalance(refund).Cmp(want) != 0 {
		t.Error("ETH refund contract should hold the DAO balance")
	}
	if etcSt.GetBalance(dao).Cmp(want) != 0 {
		t.Error("ETC should keep the DAO balance intact")
	}

	// Fork ids now differ and are incompatible.
	if eth.ForkID().Compatible(etc.ForkID()) {
		t.Error("post-fork fork ids should be incompatible")
	}
}

func TestForkIDCompatibility(t *testing.T) {
	pre := ForkID{}
	ethID := ForkID{DAOForkBlock: 100, DAOForkSupport: true}
	etcID := ForkID{DAOForkBlock: 100, DAOForkSupport: false}
	if !pre.Compatible(ethID) || !pre.Compatible(etcID) {
		t.Error("pre-fork nodes should peer with both sides")
	}
	if ethID.Compatible(etcID) {
		t.Error("opposite sides should not peer")
	}
	if !ethID.Compatible(ethID) {
		t.Error("same side should peer")
	}
}

func TestTxPool(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	pool := NewTxPool(bc)

	tx0 := transfer(0, alice, bob, 1, 0)
	tx2 := transfer(2, alice, bob, 3, 0) // gap at nonce 1
	if err := pool.Add(tx0); err != nil {
		t.Fatal(err)
	}
	if err := pool.Add(tx0); !errors.Is(err, ErrKnownTx) {
		t.Errorf("duplicate add: err = %v", err)
	}
	if err := pool.Add(tx2); err != nil {
		t.Fatalf("future nonce should queue: %v", err)
	}
	if got := pool.Pending(); len(got) != 1 || got[0].Hash() != tx0.Hash() {
		t.Errorf("pending should stop at the nonce gap: %v", got)
	}

	tx1 := transfer(1, alice, bob, 2, 0)
	if err := pool.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if got := pool.Pending(); len(got) != 3 {
		t.Errorf("pending with gap filled = %d txs, want 3", len(got))
	}

	// Unfunded transaction is rejected outright.
	broke := transfer(0, bob, alice, 1, 0)
	if err := pool.Add(broke); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("unfunded add: err = %v", err)
	}

	// Mine the pending txs, then Reset drops them.
	mine(t, bc, 14, pool.Pending()...)
	pool.Reset()
	if pool.Len() != 0 {
		t.Errorf("pool should be empty after reset, has %d", pool.Len())
	}
}

func TestPoolRejectsBadSignature(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	pool := NewTxPool(bc)
	tx := transfer(0, alice, bob, 1, 0)
	tx.Value = big.NewInt(999) // tamper
	if err := pool.Add(tx); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered tx add: err = %v", err)
	}
}

func TestCanonicalBlocksRange(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	for i := 0; i < 5; i++ {
		mine(t, bc, 14)
	}
	blocks := bc.CanonicalBlocks(2, 100)
	if len(blocks) != 4 { // 2,3,4,5
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
	if blocks[0].Number() != 2 || blocks[3].Number() != 5 {
		t.Errorf("range bounds wrong: %d..%d", blocks[0].Number(), blocks[3].Number())
	}
}

func TestContractCallClassification(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	// Deploy a trivial contract, then call it; receipts should classify
	// both as contract transactions, and a plain send as not.
	initCode := []byte{
		0x60, 0x01, // PUSH1 1  (runtime length)
		0x60, 0x00, // PUSH1 0
		0x52,       // MSTORE (stores 0x...01 at mem[0:32])
		0x60, 0x01, // PUSH1 1
		0x60, 0x1f, // PUSH1 31 (return last byte = 0x01? runtime code 0x01... )
		0xf3, // RETURN -> runtime code {0x01}? 0x01 is ADD; fine, never called with args
	}
	create := NewTransaction(0, nil, nil, 200_000, big.NewInt(1), initCode).Sign(alice, 0)
	blk := mine(t, bc, 14, create)
	recs, _, _ := bc.Receipts(blk.Hash())
	if !recs[0].ContractCall {
		t.Error("creation should classify as contract transaction")
	}
	contractAddr := recs[0].ContractAddress
	if contractAddr.IsZero() {
		t.Fatal("creation receipt missing contract address")
	}

	call := NewTransaction(1, &contractAddr, nil, 100_000, big.NewInt(1), nil).Sign(alice, 0)
	send := transfer(2, alice, bob, 5, 0)
	blk2 := mine(t, bc, 14, call, send)
	recs2, _, _ := bc.Receipts(blk2.Hash())
	if !recs2[0].ContractCall {
		t.Error("call to code should classify as contract transaction")
	}
	if recs2[1].ContractCall {
		t.Error("plain send should not classify as contract transaction")
	}
}

// TestDifficultyBomb checks the exponential term activates and grows at
// the right periods when enabled.
func TestDifficultyBomb(t *testing.T) {
	cfg := MainnetLikeConfig()
	cfg.EnableBomb = true
	parent := &Header{Number: 199_999, Time: 1000, Difficulty: big.NewInt(1 << 30)}
	withBomb := CalcDifficulty(cfg, 1014, parent)
	cfg.EnableBomb = false
	without := CalcDifficulty(cfg, 1014, parent)
	// Block 200_000: period 2, bomb = 2^0 = 1.
	diff := new(big.Int).Sub(withBomb, without)
	if diff.Int64() != 1 {
		t.Errorf("bomb at period 2 = %v, want 1", diff)
	}
	cfg.EnableBomb = true
	parent.Number = 999_999 // block 1_000_000: period 10, bomb 2^8
	withBomb = CalcDifficulty(cfg, 1014, parent)
	cfg.EnableBomb = false
	without = CalcDifficulty(cfg, 1014, parent)
	if new(big.Int).Sub(withBomb, without).Int64() != 256 {
		t.Errorf("bomb at period 10 = %v, want 256", new(big.Int).Sub(withBomb, without))
	}
}

// TestBombNegligibleInStudyWindow documents the DESIGN.md substitution:
// across the paper's measurement window (blocks ~1.92M to ~3.5M) the bomb
// contributes far less than 0.1% of difficulty, so the default scenarios
// run without it.
func TestBombNegligibleInStudyWindow(t *testing.T) {
	cfg := MainnetLikeConfig()
	for _, num := range []uint64{1_920_000, 2_500_000, 3_500_000} {
		parent := &Header{Number: num - 1, Time: 1000, Difficulty: big.NewInt(70_000_000_000_000)}
		cfg.EnableBomb = true
		withBomb := CalcDifficulty(cfg, 1014, parent)
		cfg.EnableBomb = false
		without := CalcDifficulty(cfg, 1014, parent)
		bomb := new(big.Float).SetInt(new(big.Int).Sub(withBomb, without))
		rel, _ := new(big.Float).Quo(bomb, new(big.Float).SetInt(without)).Float64()
		if rel > 0.001 {
			t.Errorf("block %d: bomb contributes %.4f%% of difficulty — not negligible", num, rel*100)
		}
	}
}

func TestGasLimitVoting(t *testing.T) {
	// Within bound: fine.
	if err := ValidateGasLimit(4_700_000, 4_700_000); err != nil {
		t.Errorf("equal limits: %v", err)
	}
	bound := uint64(4_700_000)/GasLimitBoundDivisor - 1
	if err := ValidateGasLimit(4_700_000+bound, 4_700_000); err != nil {
		t.Errorf("max upward step: %v", err)
	}
	if err := ValidateGasLimit(4_700_000+bound+1, 4_700_000); err == nil {
		t.Error("over-bound step accepted")
	}
	if err := ValidateGasLimit(MinGasLimit-1, MinGasLimit+10); err == nil {
		t.Error("sub-minimum limit accepted")
	}

	// NextGasLimit converges to the target from below and above.
	limit := uint64(3_000_000)
	steps := 0
	for limit != 4_700_000 {
		next := NextGasLimit(limit, 4_700_000)
		if err := ValidateGasLimit(next, limit); err != nil {
			t.Fatalf("vote produced illegal limit: %v", err)
		}
		if next <= limit {
			t.Fatalf("vote did not move upward: %d -> %d", limit, next)
		}
		limit = next
		if steps++; steps > 10_000 {
			t.Fatal("vote did not converge")
		}
	}
	down := NextGasLimit(5_000_000, 4_700_000)
	if down >= 5_000_000 || down < 4_700_000 {
		t.Errorf("downward vote = %d", down)
	}
}

// TestGasLimitVoteOnChain: a chain whose genesis starts below the target
// walks its gas limit up block by block, and a header jumping the bound
// is rejected.
func TestGasLimitVoteOnChain(t *testing.T) {
	gen := testGenesis()
	bc, err := NewBlockchain(MainnetLikeConfig(), gen)
	if err != nil {
		t.Fatal(err)
	}
	start := bc.Genesis().Header.GasLimit
	b1 := mine(t, bc, 14)
	if b1.Header.GasLimit != start { // genesis already at target
		t.Errorf("limit moved from target: %d -> %d", start, b1.Header.GasLimit)
	}
	// Forge a header that jumps the bound.
	good, err := bc.BuildBlock(pool1, bc.Head().Header.Time+14, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Block{Header: good.Header.Copy()}
	bad.Header.GasLimit = good.Header.GasLimit * 2
	if err := bc.InsertBlock(bad); !errors.Is(err, ErrInvalidHeader) {
		t.Errorf("bound-jumping gas limit: err = %v", err)
	}
}
