package chain

import (
	"bytes"
	"testing"

	"forkwatch/internal/db/dbfs"
	"forkwatch/internal/db/diskdb"
	"forkwatch/internal/db/diskdb/faultfile"
)

// diskStack opens a fresh disk store over a real directory, with the
// faultfile layer (no random plan) in between so tests can count appends
// and arm crashes on the physical medium.
func diskStack(t *testing.T, dir string) (*faultfile.FS, *diskdb.DB) {
	t.Helper()
	osfs, err := dbfs.NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ffs := faultfile.Wrap(osfs, faultfile.Faults{})
	d, err := diskdb.Open(ffs, diskdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ffs, d
}

// TestDiskCrashSweepMidImport is the disk-backend counterpart of
// TestCrashMidImportRecovers, and it is exhaustive: the medium is killed
// at EVERY physical append position inside an ImportChain. Each kill
// tears a random strict prefix of that append onto the real files; the
// restart path (diskdb.Open segment replay + torn-tail truncation, then
// the chain-level WAL redo) must land exactly on the last durably
// committed head — never a partial block — and resuming the import must
// converge on the donor chain.
func TestDiskCrashSweepMidImport(t *testing.T) {
	donor, stream := donorChain(t)

	// Calibrate the import's append footprint on a clean disk run.
	calibFS, calibDB := diskStack(t, t.TempDir())
	calib, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), calibDB)
	if err != nil {
		t.Fatal(err)
	}
	importStart := calibFS.WriteOps()
	if _, err := calib.ImportChain(bytes.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	totalOps := calibFS.WriteOps() - importStart
	calibDB.Close()
	if totalOps < 10 {
		t.Fatalf("import footprint suspiciously small: %d appends", totalOps)
	}

	for off := uint64(1); off <= totalOps; off++ {
		ffs, d := diskStack(t, t.TempDir())
		victim, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), d)
		if err != nil {
			t.Fatal(err)
		}
		ffs.CrashAtWriteOp(ffs.WriteOps() + off)
		imported, err := victim.ImportChain(bytes.NewReader(stream))
		if err == nil {
			t.Fatalf("off %d: import survived an armed crash", off)
		}
		if uint64(imported) != victim.Head().Number() {
			t.Fatalf("off %d: memory head %d does not match %d acknowledged imports",
				off, victim.Head().Number(), imported)
		}

		// The process restarts over the surviving files: close the dead
		// store, clear the crash, replay the segments, then WAL redo.
		d.Close()
		ffs.Reopen()
		d2, err := diskdb.Open(ffs, diskdb.Options{})
		if err != nil {
			t.Fatalf("off %d: diskdb.Open after crash: %v", off, err)
		}
		re, err := Open(MainnetLikeConfig(), d2)
		if err != nil {
			t.Fatalf("off %d: chain.Open after crash: %v", off, err)
		}
		// The WAL sequence counts commits: genesis is seq 1, every block
		// commit adds one. Recovery must land exactly there.
		if want := re.Store().walSeq - 1; re.Head().Number() != want {
			t.Fatalf("off %d: recovered head %d, WAL says %d commits",
				off, re.Head().Number(), want)
		}
		// The acknowledged imports are a lower bound; the in-flight block
		// may have reached its commit point before the tear.
		if got := re.Head().Number(); got < uint64(imported) || got > uint64(imported)+1 {
			t.Fatalf("off %d: recovered head %d outside [%d, %d]",
				off, got, imported, imported+1)
		}
		// No divergent partial state: every recovered canonical block is
		// the donor's block at that height.
		for n := uint64(0); n <= re.Head().Number(); n++ {
			want, _ := donor.BlockByNumber(n)
			got, ok := re.BlockByNumber(n)
			if !ok || got.Hash() != want.Hash() {
				t.Fatalf("off %d: recovered canon %d diverged from donor", off, n)
			}
		}

		// Resuming the import must converge on the donor head.
		if _, err := re.ImportChain(bytes.NewReader(stream)); err != nil {
			t.Fatalf("off %d: resumed import: %v", off, err)
		}
		if re.Head().Hash() != donor.Head().Hash() {
			t.Fatalf("off %d: resumed head %s, want %s", off, re.Head().Hash(), donor.Head().Hash())
		}
		d2.Close()
	}
}

// TestDiskReopenAcrossProcessModel is the plain (no-crash) durability
// round trip on the real filesystem: mine, close cleanly, reopen from
// the directory alone, and keep mining.
func TestDiskReopenAcrossProcessModel(t *testing.T) {
	dir := t.TempDir()
	osfs, err := dbfs.NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := diskdb.Open(osfs, diskdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBlockchainWithDB(MainnetLikeConfig(), testGenesis(), d)
	if err != nil {
		t.Fatal(err)
	}
	mine(t, bc, 13, transfer(0, alice, bob, 500, 0))
	mine(t, bc, 13)
	head := bc.Head().Hash()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	osfs2, err := dbfs.NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := diskdb.Open(osfs2, diskdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	re, err := Open(MainnetLikeConfig(), d2)
	if err != nil {
		t.Fatalf("Open from directory: %v", err)
	}
	if re.Head().Hash() != head {
		t.Fatalf("reopened head %s, want %s", re.Head().Hash(), head)
	}
	mine(t, re, 13, transfer(1, alice, bob, 100, 0))
}
