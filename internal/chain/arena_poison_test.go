package chain

import (
	"bytes"
	"math/big"
	"reflect"
	"testing"

	"forkwatch/internal/types"
)

// Pool poison guards: fill every field of a pooled object with garbage,
// release it, and assert nothing survives into its next life. The
// reflect.NumField pins fail the moment a field is added to a pooled
// struct, forcing the author to extend the matching reset (and these
// tests) — the failure mode they exist for is a new field silently
// leaking across recycles. Named *Guard so the storage-chaos CI sweep
// (`make chaos`, -race) runs them alongside the fault-injection suites
// that hammer the arenas hardest.

func poisonTx(tx *Transaction) {
	to := types.HexToAddress("0xdead")
	tx.Nonce = 0xfeedface
	tx.GasPrice = big.NewInt(0xbad)
	tx.GasLimit = 0xbadbad
	tx.To = &to
	tx.Value = big.NewInt(0xbadf00d)
	tx.Data = []byte{0xde, 0xad, 0xbe, 0xef}
	tx.ChainID = 61
	tx.From = types.HexToAddress("0xattacker")
	tx.SigTag = types.BytesToHash(bytes.Repeat([]byte{0xaa}, 32))
	h := types.BytesToHash(bytes.Repeat([]byte{0xbb}, 32))
	tx.hash.Store(&h)
	tx.sigOK.Store(true)
}

func assertTxZero(t *testing.T, tx *Transaction, when string) {
	t.Helper()
	if tx.Nonce != 0 || tx.GasPrice != nil || tx.GasLimit != 0 || tx.To != nil ||
		tx.Value != nil || tx.Data != nil || tx.ChainID != 0 ||
		tx.From != (types.Address{}) || tx.SigTag != (types.Hash{}) {
		t.Fatalf("%s: payload fields leaked: %+v", when, tx)
	}
	if tx.hash.Load() != nil {
		t.Fatalf("%s: memoized hash leaked", when)
	}
	if tx.sigOK.Load() {
		t.Fatalf("%s: cached signature verdict leaked", when)
	}
}

func TestTransactionPoolPoisonGuard(t *testing.T) {
	if n := reflect.TypeOf(Transaction{}).NumField(); n != 11 {
		t.Fatalf("Transaction has %d fields (expected 11): extend resetForReuse, poisonTx and assertTxZero", n)
	}

	tx := new(Transaction)
	poisonTx(tx)
	tx.resetForReuse()
	assertTxZero(t, tx, "after resetForReuse")

	// Round-trip through the arena: whatever object comes back out must
	// be zero, regardless of which caller poisoned it before release.
	poisonTx(tx)
	ReleaseTransaction(tx)
	got := NewPooledTransaction()
	assertTxZero(t, got, "fresh from arena")

	// A recycled object rebuilt into a new transaction must behave
	// exactly like a never-pooled one: same encoding, same digest, no
	// stale memo or signature verdict shining through.
	to := types.HexToAddress("0xb0b")
	build := func(tx *Transaction) *Transaction {
		tx.Nonce = 3
		tx.To = &to
		tx.Value = big.NewInt(42)
		tx.GasLimit = 21_000
		tx.GasPrice = big.NewInt(7)
		return tx.Sign(types.HexToAddress("0xa11ce"), 0)
	}
	recycled := build(got)
	fresh := build(new(Transaction))
	if recycled.Hash() != fresh.Hash() {
		t.Fatalf("recycled tx hash %s != fresh %s", recycled.Hash(), fresh.Hash())
	}
	if !bytes.Equal(recycled.Encode(), fresh.Encode()) {
		t.Fatal("recycled tx encodes differently from fresh")
	}
	if err := recycled.VerifySig(); err != nil {
		t.Fatalf("recycled tx signature: %v", err)
	}
	ReleaseTransaction(recycled)
}

func TestReceiptPoolPoisonGuard(t *testing.T) {
	if n := reflect.TypeOf(Receipt{}).NumField(); n != 5 {
		t.Fatalf("Receipt has %d fields (expected 5): check ReleaseReceipt's zeroing still covers them", n)
	}
	r := NewPooledReceipt()
	r.TxHash = types.BytesToHash(bytes.Repeat([]byte{0xcc}, 32))
	r.Status = true
	r.GasUsed = 99_999
	r.ContractAddress = types.HexToAddress("0xdead")
	r.ContractCall = true
	ReleaseReceipt(r)
	if got := NewPooledReceipt(); *got != (Receipt{}) {
		t.Fatalf("receipt fields leaked through the arena: %+v", got)
	}
}

func TestHeaderPoolPoisonGuard(t *testing.T) {
	if n := reflect.TypeOf(Header{}).NumField(); n != 15 {
		t.Fatalf("Header has %d fields (expected 15): extend ReleaseHeader and this poison", n)
	}
	h := NewPooledHeader()
	h.ParentHash = types.BytesToHash(bytes.Repeat([]byte{1}, 32))
	h.Coinbase = types.HexToAddress("0x9001")
	h.Number = 123
	h.Time = 456
	h.Difficulty = big.NewInt(789)
	h.GasLimit = 1
	h.GasUsed = 2
	h.StateRoot = types.BytesToHash(bytes.Repeat([]byte{2}, 32))
	h.TxRoot = types.BytesToHash(bytes.Repeat([]byte{3}, 32))
	h.ReceiptRoot = types.BytesToHash(bytes.Repeat([]byte{4}, 32))
	h.Extra = []byte("poison")
	h.UncleHash = types.BytesToHash(bytes.Repeat([]byte{5}, 32))
	h.Nonce = 6
	h.MixDigest = types.BytesToHash(bytes.Repeat([]byte{7}, 32))
	h.Hash() // prime the memo so the release must drop it
	ReleaseHeader(h)

	got := NewPooledHeader()
	if got.ParentHash != (types.Hash{}) || got.Coinbase != (types.Address{}) ||
		got.Number != 0 || got.Time != 0 || got.Difficulty != nil ||
		got.GasLimit != 0 || got.GasUsed != 0 ||
		got.StateRoot != (types.Hash{}) || got.TxRoot != (types.Hash{}) ||
		got.ReceiptRoot != (types.Hash{}) || got.Extra != nil ||
		got.UncleHash != (types.Hash{}) || got.Nonce != 0 || got.MixDigest != (types.Hash{}) {
		t.Fatalf("header fields leaked through the arena: %+v", got)
	}
	if got.hash.Load() != nil {
		t.Fatal("memoized header hash leaked through the arena")
	}
	ReleaseHeader(got)
}
