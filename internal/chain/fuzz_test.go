package chain

import (
	"math/big"
	"testing"

	"forkwatch/internal/types"
)

// FuzzDecodeTx: arbitrary bytes must never panic the transaction decoder,
// and successfully decoded transactions must re-encode stably (hash is a
// fixed point).
func FuzzDecodeTx(f *testing.F) {
	valid := transfer(3, types.HexToAddress("0xaa"), types.HexToAddress("0xbb"), 99, 61)
	f.Add(valid.Encode())
	f.Add([]byte{0xc0})
	f.Add([]byte{0xf8, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTx(data)
		if err != nil {
			return
		}
		re, err := DecodeTx(tx.Encode())
		if err != nil {
			t.Fatalf("re-decode of decoded tx failed: %v", err)
		}
		if re.Hash() != tx.Hash() {
			t.Fatal("tx hash not a fixed point of encode/decode")
		}
	})
}

// FuzzDecodeHeader mirrors FuzzDecodeTx for block headers.
func FuzzDecodeHeader(f *testing.F) {
	h := &Header{
		ParentHash: types.HexToHash("0x01"),
		Number:     7,
		Time:       1_469_020_840,
		Difficulty: big.NewInt(131072),
		GasLimit:   4_700_000,
		Extra:      []byte("dao-hard-fork"),
	}
	f.Add(h.Encode())
	f.Add([]byte{0xc0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		re, err := DecodeHeader(h.Encode())
		if err != nil {
			t.Fatalf("re-decode of decoded header failed: %v", err)
		}
		if re.Hash() != h.Hash() {
			t.Fatal("header hash not a fixed point of encode/decode")
		}
	})
}

// FuzzDecodeBlock mirrors FuzzDecodeTx for whole blocks.
func FuzzDecodeBlock(f *testing.F) {
	blk := &Block{
		Header: &Header{Difficulty: big.NewInt(1), TxRoot: TxRoot(nil)},
		Txs:    []*Transaction{transfer(0, types.HexToAddress("0x01"), types.HexToAddress("0x02"), 1, 0)},
	}
	f.Add(blk.Encode())
	f.Add([]byte{0xc2, 0xc0, 0xc0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlock(data)
		if err != nil {
			return
		}
		re, err := DecodeBlock(b.Encode())
		if err != nil {
			t.Fatalf("re-decode of decoded block failed: %v", err)
		}
		if re.Hash() != b.Hash() {
			t.Fatal("block hash not a fixed point of encode/decode")
		}
	})
}
