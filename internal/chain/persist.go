package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Import lives in import.go: ImportChain pipelines frame decoding and
// memo precaching across a worker pool while insertion stays ordered.

// Chain persistence: the canonical chain streams as consecutive
// length-prefixed RLP blocks, the same format go-ethereum's export/import
// uses in spirit. cmd/forknode nodes can snapshot and restore their
// ledger; tests use it to clone chains.

// ErrImportStopped reports an import aborted on the first rejected block.
var ErrImportStopped = errors.New("chain: import stopped at invalid block")

// maxPersistFrame bounds one stored block (DoS guard on import).
const maxPersistFrame = 16 << 20

// WriteChain streams the canonical chain — blocks 1 through the head — to
// w. Genesis is not written: it is the identity of the chain and must
// match on import.
func (bc *Blockchain) WriteChain(w io.Writer) error {
	head := bc.Head().Number()
	for n := uint64(1); n <= head; n++ {
		b, ok := bc.BlockByNumber(n)
		if !ok {
			return fmt.Errorf("chain: canonical gap at height %d", n)
		}
		enc := b.Encode()
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
	}
	return nil
}
