package chain

import (
	"fmt"
	"math/big"

	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// Uncle (ommer) blocks: Ethereum pays miners of stale competing blocks a
// partial reward when a later block references them, compensating for
// propagation losses. The ledgers the paper exported contain uncles, and
// pool income (Fig 5's "winner" attribution) includes uncle rewards; the
// paper counts canonical blocks, which the analysis layer mirrors, but the
// substrate supports the real rules.

// MaxUncles bounds uncles per block (2).
const MaxUncles = 2

// MaxUncleDepth is how many generations back an uncle's parent may lie (7:
// the uncle itself is at most 6 blocks older than the including block).
const MaxUncleDepth = 7

// EmptyUncleHash is the hash of an empty uncle list: keccak256(rlp([])).
var EmptyUncleHash = func() types.Hash {
	h := keccak.Sum256(rlp.Encode(rlp.List()))
	return types.BytesToHash(h[:])
}()

// CalcUncleHash commits to an uncle-header list.
func CalcUncleHash(uncles []*Header) types.Hash {
	if len(uncles) == 0 {
		return EmptyUncleHash
	}
	items := make([]rlp.Value, len(uncles))
	for i, u := range uncles {
		items[i] = u.RLP()
	}
	h := keccak.Sum256(rlp.Encode(rlp.List(items...)))
	return types.BytesToHash(h[:])
}

// validateUncles enforces the inclusion rules for b's uncles against the
// chain as known at insertion time.
func (bc *Blockchain) validateUncles(b *Block) error {
	if len(b.Uncles) > MaxUncles {
		return fmt.Errorf("%w: %d uncles (max %d)", ErrInvalidBody, len(b.Uncles), MaxUncles)
	}
	if got := CalcUncleHash(b.Uncles); got != b.Header.UncleHash {
		return fmt.Errorf("%w: uncle hash %s, header %s", ErrInvalidBody, got, b.Header.UncleHash)
	}
	if len(b.Uncles) == 0 {
		return nil
	}

	// Collect the ancestor window: the last MaxUncleDepth ancestors and
	// every uncle they already included.
	ancestors := map[types.Hash]bool{}
	included := map[types.Hash]bool{}
	cur := b.Header.ParentHash
	for i := 0; i < MaxUncleDepth; i++ {
		blk, ok := bc.blocks[cur]
		if !ok {
			break
		}
		ancestors[blk.Hash()] = true
		for _, u := range blk.Uncles {
			included[u.Hash()] = true
		}
		if blk.Number() == 0 {
			break
		}
		cur = blk.Header.ParentHash
	}

	seen := map[types.Hash]bool{}
	for i, u := range b.Uncles {
		uh := u.Hash()
		switch {
		case seen[uh]:
			return fmt.Errorf("%w: uncle %d duplicated in block", ErrInvalidBody, i)
		case uh == b.Hash():
			return fmt.Errorf("%w: block includes itself as uncle", ErrInvalidBody)
		case ancestors[uh]:
			return fmt.Errorf("%w: uncle %d is an ancestor", ErrInvalidBody, i)
		case included[uh]:
			return fmt.Errorf("%w: uncle %d already included", ErrInvalidBody, i)
		case !ancestors[u.ParentHash]:
			return fmt.Errorf("%w: uncle %d parent %s not a recent ancestor", ErrInvalidBody, i, u.ParentHash)
		}
		seen[uh] = true

		// The uncle header must itself be consensus-valid relative to
		// its parent.
		parent := bc.blocks[u.ParentHash]
		if u.Number != parent.Number()+1 {
			return fmt.Errorf("%w: uncle %d number %d after parent %d", ErrInvalidBody, i, u.Number, parent.Number())
		}
		if u.Time <= parent.Header.Time {
			return fmt.Errorf("%w: uncle %d timestamp not after parent", ErrInvalidBody, i)
		}
		want := CalcDifficulty(bc.cfg, u.Time, parent.Header)
		if u.Difficulty == nil || u.Difficulty.Cmp(want) != 0 {
			return fmt.Errorf("%w: uncle %d difficulty %v, want %v", ErrInvalidBody, i, u.Difficulty, want)
		}
	}
	return nil
}

// uncleRewards credits uncle miners and the including miner, per the
// Ethereum schedule: an uncle at depth d earns (8-d)/8 of the block
// reward; the nephew earns an extra 1/32 per uncle.
func (p *Processor) uncleRewards(blockNum uint64, uncles []*Header, credit func(types.Address, *big.Int)) *big.Int {
	nephewBonus := new(big.Int)
	for _, u := range uncles {
		r := new(big.Int).Add(new(big.Int).SetUint64(u.Number+8), new(big.Int).Neg(new(big.Int).SetUint64(blockNum)))
		r.Mul(r, p.cfg.BlockReward)
		r.Div(r, big.NewInt(8))
		if r.Sign() > 0 {
			credit(u.Coinbase, r)
		}
		nephewBonus.Add(nephewBonus, new(big.Int).Div(p.cfg.BlockReward, big.NewInt(32)))
	}
	return nephewBonus
}

// CollectUncles returns up to MaxUncles known side-chain headers eligible
// for inclusion in a child of `parent` — what a miner's uncle pool would
// offer.
func (bc *Blockchain) CollectUncles(parentHash types.Hash) []*Header {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	parent, ok := bc.blocks[parentHash]
	if !ok {
		return nil
	}
	ancestors := map[types.Hash]bool{}
	included := map[types.Hash]bool{}
	heights := map[uint64]bool{}
	cur := parentHash
	for i := 0; i < MaxUncleDepth; i++ {
		blk, ok := bc.blocks[cur]
		if !ok {
			break
		}
		ancestors[blk.Hash()] = true
		heights[blk.Number()] = true
		for _, u := range blk.Uncles {
			included[u.Hash()] = true
		}
		if blk.Number() == 0 {
			break
		}
		cur = blk.Header.ParentHash
	}
	var out []*Header
	for h, blk := range bc.blocks {
		if len(out) >= MaxUncles {
			break
		}
		if ancestors[h] || included[h] || blk.Number() > parent.Number() || !heights[blk.Number()] {
			continue
		}
		if !ancestors[blk.Header.ParentHash] {
			continue
		}
		out = append(out, blk.Header)
	}
	return out
}
