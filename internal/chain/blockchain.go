package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"forkwatch/internal/db"
	"forkwatch/internal/state"
	"forkwatch/internal/types"
)

// Insertion errors.
var (
	ErrKnownBlock      = errors.New("chain: block already known")
	ErrUnknownParent   = errors.New("chain: unknown parent")
	ErrInvalidHeader   = errors.New("chain: invalid header")
	ErrInvalidBody     = errors.New("chain: invalid body")
	ErrStateMismatch   = errors.New("chain: state root mismatch")
	ErrSideOfPartition = errors.New("chain: block belongs to the other side of the DAO partition")
	// ErrNoChain reports an Open over a store holding no chain.
	ErrNoChain = errors.New("chain: store holds no chain")
)

// DAOForkExtra is the extra-data marker pro-fork miners stamp on blocks
// around the fork height. The supporting chain requires it; the classic
// chain rejects it — this is the consensus-level partition mechanism.
var DAOForkExtra = []byte("dao-hard-fork")

// DAOForkExtraRange is how many blocks from the fork the marker is
// enforced (10 in Ethereum).
const DAOForkExtraRange = 10

// Genesis specifies block zero.
type Genesis struct {
	// Difficulty seeds the difficulty filter.
	Difficulty *big.Int
	// Time is the genesis timestamp (simulation epoch).
	Time uint64
	// Alloc pre-funds accounts.
	Alloc map[types.Address]*big.Int
	// Code installs pre-deployed contracts (e.g. the DAO).
	Code map[types.Address][]byte
}

// Blockchain is one partition's ledger: block store, state store, total
// difficulty fork choice and the canonical index the analysis layer reads.
// Safe for concurrent use.
//
// Every persistent record — trie nodes, block bodies, receipts, total
// difficulties, the canonical index — lives in one db.KV behind Store.
// Decoded blocks, TDs and state roots are additionally kept in in-memory
// maps: they are read on every validation and fork-choice step, and
// re-decoding them from RLP per access would dominate. Receipts are read
// only by analysis/export, so they live in the KV alone.
type Blockchain struct {
	cfg   *Config
	proc  *Processor
	db    db.KV
	store *Store

	mu         sync.RWMutex
	blocks     map[types.Hash]*Block
	tds        map[types.Hash]*big.Int
	stateRoots map[types.Hash]types.Hash
	canon      map[uint64]types.Hash
	head       *Block
	genesis    *Block
}

// NewBlockchain creates a chain from genesis under the given rules, over a
// fresh default in-memory store.
func NewBlockchain(cfg *Config, gen *Genesis) (*Blockchain, error) {
	return NewBlockchainWithDB(cfg, gen, db.NewMemDB())
}

// NewBlockchainWithDB creates a chain from genesis over the given store
// (the Storage scenario knob plumbs a configured backend through here).
func NewBlockchainWithDB(cfg *Config, gen *Genesis, kv db.KV) (*Blockchain, error) {
	st, err := state.New(types.Hash{}, kv)
	if err != nil {
		return nil, err
	}
	for addr, bal := range gen.Alloc {
		st.SetBalance(addr, bal)
	}
	for addr, code := range gen.Code {
		st.SetCode(addr, code)
	}
	root, err := st.Commit()
	if err != nil {
		return nil, err
	}
	diff := gen.Difficulty
	if diff == nil {
		diff = types.BigCopy(cfg.MinimumDifficulty)
	}
	header := &Header{
		Number:      0,
		Time:        gen.Time,
		Difficulty:  types.BigCopy(diff),
		GasLimit:    cfg.GasLimit,
		StateRoot:   root,
		TxRoot:      TxRoot(nil),
		ReceiptRoot: ReceiptRoot(nil),
		UncleHash:   EmptyUncleHash,
	}
	genesis := &Block{Header: header}
	store := NewStore(kv)
	bc := &Blockchain{
		cfg:        cfg,
		proc:       NewProcessor(cfg),
		db:         kv,
		store:      store,
		blocks:     map[types.Hash]*Block{genesis.Hash(): genesis},
		tds:        map[types.Hash]*big.Int{genesis.Hash(): types.BigCopy(diff)},
		stateRoots: map[types.Hash]types.Hash{genesis.Hash(): root},
		canon:      map[uint64]types.Hash{0: genesis.Hash()},
		head:       genesis,
		genesis:    genesis,
	}
	wb := store.NewWALBatch()
	store.PutBlock(wb, genesis)
	store.PutReceipts(wb, genesis.Hash(), nil)
	store.PutTD(wb, genesis.Hash(), diff)
	store.PutStateRoot(wb, genesis.Hash(), root)
	store.PutCanon(wb, 0, genesis.Hash())
	store.PutHead(wb, genesis.Hash())
	if err := store.CommitWAL(wb); err != nil {
		return nil, err
	}
	return bc, nil
}

// Open reopens an existing chain from its store, running WAL recovery
// first: a torn batch from a crash mid-commit is redone, so the chain
// reopens exactly at its last durably committed head. Returns ErrNoChain
// for a store holding no chain at all (create one with
// NewBlockchainWithDB instead), and an error wrapping ErrCorruptStore
// when recovery cannot restore a consistent chain (the caller falls back
// to re-import or resync).
func Open(cfg *Config, kv db.KV) (*Blockchain, error) {
	store := NewStore(kv)
	if err := store.RecoverWAL(); err != nil {
		return nil, err
	}
	headHash, ok, err := store.Head()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNoChain
	}
	head, ok, err := store.Block(headHash)
	if err != nil || !ok {
		return nil, fmt.Errorf("%w: head block %s unreadable (%v)", ErrCorruptStore, headHash, err)
	}

	bc := &Blockchain{
		cfg:        cfg,
		proc:       NewProcessor(cfg),
		db:         kv,
		store:      store,
		blocks:     make(map[types.Hash]*Block),
		tds:        make(map[types.Hash]*big.Int),
		stateRoots: make(map[types.Hash]types.Hash),
		canon:      make(map[uint64]types.Hash),
	}
	// Rebuild the in-memory indices by walking the canonical chain. Side
	// branches persist in the store but are not re-indexed; they are
	// rediscovered through gossip, like any node restarting from disk.
	var prev *Block
	for n := uint64(0); n <= head.Number(); n++ {
		h, ok, err := store.CanonHash(n)
		if err != nil || !ok {
			return nil, fmt.Errorf("%w: canon index missing height %d (%v)", ErrCorruptStore, n, err)
		}
		b, ok, err := store.Block(h)
		if err != nil || !ok {
			return nil, fmt.Errorf("%w: canonical block %d (%s) unreadable (%v)", ErrCorruptStore, n, h, err)
		}
		if prev != nil && b.Header.ParentHash != prev.Hash() {
			return nil, fmt.Errorf("%w: canon chain broken at height %d", ErrCorruptStore, n)
		}
		td, ok, err := store.TD(h)
		if err != nil || !ok {
			return nil, fmt.Errorf("%w: no TD for canonical block %d (%v)", ErrCorruptStore, n, err)
		}
		root, ok, err := store.StateRoot(h)
		if err != nil || !ok {
			return nil, fmt.Errorf("%w: no state root for canonical block %d (%v)", ErrCorruptStore, n, err)
		}
		bc.blocks[h] = b
		bc.tds[h] = td
		bc.stateRoots[h] = root
		bc.canon[n] = h
		if n == 0 {
			bc.genesis = b
		}
		prev = b
	}
	bc.head = bc.blocks[headHash]
	if bc.head == nil || bc.genesis == nil {
		return nil, fmt.Errorf("%w: head %s not on canonical chain", ErrCorruptStore, headHash)
	}
	// The head state must be openable, or every future insert would fail.
	if _, err := state.New(bc.stateRoots[headHash], kv); err != nil {
		return nil, fmt.Errorf("%w: head state unopenable (%v)", ErrCorruptStore, err)
	}
	return bc, nil
}

// NewSibling creates a second partition sharing this chain's genesis block
// (and therefore its pre-fork state) under different rules. The returned
// chain has its own stores; history built on one side never leaks into the
// other except through explicit block/tx gossip — exactly the paper's
// setting.
func (bc *Blockchain) NewSibling(cfg *Config, gen *Genesis) (*Blockchain, error) {
	sib, err := NewBlockchain(cfg, gen)
	if err != nil {
		return nil, err
	}
	if sib.genesis.Hash() != bc.genesis.Hash() {
		return nil, fmt.Errorf("chain: sibling genesis diverged: %s vs %s", sib.genesis.Hash(), bc.genesis.Hash())
	}
	return sib, nil
}

// Config returns the chain's rule set.
func (bc *Blockchain) Config() *Config { return bc.cfg }

// Processor returns the chain's transaction processor.
func (bc *Blockchain) Processor() *Processor { return bc.proc }

// Genesis returns block zero.
func (bc *Blockchain) Genesis() *Block { return bc.genesis }

// Head returns the current canonical head.
func (bc *Blockchain) Head() *Block {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	return bc.head
}

// ForkID returns the fork id at the current head (for the p2p handshake).
func (bc *Blockchain) ForkID() ForkID {
	return bc.cfg.ForkIDAt(new(big.Int).SetUint64(bc.Head().Number()))
}

// GetBlock returns a block by hash.
func (bc *Blockchain) GetBlock(h types.Hash) (*Block, bool) {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	b, ok := bc.blocks[h]
	return b, ok
}

// HasBlock reports whether the block is known.
func (bc *Blockchain) HasBlock(h types.Hash) bool {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	_, ok := bc.blocks[h]
	return ok
}

// BlockByNumber returns the canonical block at the given height.
func (bc *Blockchain) BlockByNumber(n uint64) (*Block, bool) {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	h, ok := bc.canon[n]
	if !ok {
		return nil, false
	}
	return bc.blocks[h], true
}

// TD returns the total difficulty of a known block.
func (bc *Blockchain) TD(h types.Hash) (*big.Int, bool) {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	td, ok := bc.tds[h]
	if !ok {
		return nil, false
	}
	return types.BigCopy(td), true
}

// Receipts returns the execution receipts of a known block, decoded from
// the KV store. The error reports a failed or corrupt read.
func (bc *Blockchain) Receipts(h types.Hash) ([]*Receipt, bool, error) {
	bc.mu.RLock()
	_, known := bc.blocks[h]
	bc.mu.RUnlock()
	if !known {
		return nil, false, nil
	}
	return bc.store.Receipts(h)
}

// TransactionByHash resolves a transaction through the store's tx index:
// the transaction, the hash and number of the block that included it, and
// its position in that block. ok=false means the hash is unknown.
func (bc *Blockchain) TransactionByHash(h types.Hash) (tx *Transaction, blockHash types.Hash, blockNumber uint64, index uint32, ok bool, err error) {
	t, lk, num, ok, err := bc.store.Transaction(h)
	if err != nil || !ok {
		return nil, types.Hash{}, 0, 0, false, err
	}
	return t, lk.BlockHash, num, lk.Index, true, nil
}

// ReceiptByTxHash resolves a transaction's execution receipt through the
// store's tx index.
func (bc *Blockchain) ReceiptByTxHash(h types.Hash) (r *Receipt, blockHash types.Hash, index uint32, ok bool, err error) {
	rec, lk, ok, err := bc.store.Receipt(h)
	if err != nil || !ok {
		return nil, types.Hash{}, 0, false, err
	}
	return rec, lk.BlockHash, lk.Index, true, nil
}

// Store returns the chain's KV persistence schema (shared with the state
// trie). Export tooling reads blocks and receipts through it.
func (bc *Blockchain) Store() *Store { return bc.store }

// DB returns the backing key-value store.
func (bc *Blockchain) DB() db.KV { return bc.db }

// StorageStats reports the backing store's counters.
func (bc *Blockchain) StorageStats() db.Stats { return bc.db.Stats() }

// StateAt opens the state committed by the given block.
func (bc *Blockchain) StateAt(h types.Hash) (*state.DB, error) {
	bc.mu.RLock()
	root, ok := bc.stateRoots[h]
	bc.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("chain: no state for block %s", h)
	}
	return state.New(root, bc.db)
}

// HeadState opens the state at the canonical head.
func (bc *Blockchain) HeadState() (*state.DB, error) {
	return bc.StateAt(bc.Head().Hash())
}

// InsertBlock validates and executes a block, extends the store, and
// performs total-difficulty fork choice. It returns ErrKnownBlock for
// duplicates and ErrUnknownParent when the parent has not arrived yet
// (callers queue and retry, as gossip is unordered).
func (bc *Blockchain) InsertBlock(b *Block) error {
	hash := b.Hash()

	bc.mu.Lock()
	defer bc.mu.Unlock()

	if _, known := bc.blocks[hash]; known {
		return ErrKnownBlock
	}
	parent, ok := bc.blocks[b.Header.ParentHash]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownParent, b.Header.ParentHash)
	}
	if err := bc.validateHeader(b.Header, parent.Header); err != nil {
		return err
	}
	if err := bc.validateBody(b); err != nil {
		return err
	}

	// Execute on the parent's state.
	parentRoot := bc.stateRoots[parent.Hash()]
	st, err := state.New(parentRoot, bc.db)
	if err != nil {
		return err
	}
	receipts, err := bc.proc.Process(b, st)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidBody, err)
	}
	root, err := st.Commit()
	if err != nil {
		return err
	}
	if root != b.Header.StateRoot {
		return fmt.Errorf("%w: computed %s, header %s", ErrStateMismatch, root, b.Header.StateRoot)
	}
	if got := ReceiptRoot(receipts); got != b.Header.ReceiptRoot {
		return fmt.Errorf("%w: receipt root %s, header %s", ErrInvalidBody, got, b.Header.ReceiptRoot)
	}

	td := new(big.Int).Add(bc.tds[parent.Hash()], b.Header.Difficulty)

	// Stage the block's whole persistence — records, fork choice, head —
	// and commit it through the WAL as one unit, so a crash anywhere in
	// the write either loses the block entirely or leaves a WAL record
	// that reopening redoes (see wal.go).
	wb := bc.store.NewWALBatch()
	bc.store.PutBlock(wb, b)
	bc.store.PutReceipts(wb, hash, receipts)
	bc.store.PutTD(wb, hash, td)
	bc.store.PutStateRoot(wb, hash, root)

	bc.store.PutBlockTxIndices(wb, b)

	newHead := td.Cmp(bc.tds[bc.head.Hash()]) > 0
	var updates map[uint64]types.Hash
	var stale []uint64
	if newHead {
		updates, stale = bc.canonDelta(b)
		for n, h := range updates {
			bc.store.PutCanon(wb, n, h)
			// A reorg adopts previously side-chain blocks: repoint their
			// transactions' lookup entries at the now-canonical copies so
			// the index always resolves along the canonical chain.
			if h != hash {
				if adopted, ok := bc.blocks[h]; ok {
					bc.store.PutBlockTxIndices(wb, adopted)
				}
			}
		}
		for _, n := range stale {
			bc.store.DeleteCanon(wb, n)
		}
		bc.store.PutHead(wb, hash)
	}

	if err := bc.store.CommitWAL(wb); err != nil {
		// Either nothing committed (WAL record never landed) or the store
		// crashed mid-apply; in both cases the in-memory view must not
		// advance — Open rebuilds it from the durable state on reopen.
		return err
	}

	bc.blocks[hash] = b
	bc.stateRoots[hash] = root
	bc.tds[hash] = td
	if newHead {
		for n, h := range updates {
			bc.canon[n] = h
		}
		for _, n := range stale {
			delete(bc.canon, n)
		}
		bc.head = b
	}
	// The receipts are fully serialized into the committed batch; nothing
	// retains the structs.
	ReleaseReceipts(receipts)
	return nil
}

// canonDelta computes the canonical-index rewrite that making b the head
// requires: entries along b's path back to the existing canonical chain,
// plus the stale heights to remove after a reorg to a shorter-but-heavier
// chain. Pure with respect to chain state — the delta is staged into the
// WAL batch first and applied to the in-memory index only after the
// commit succeeds.
func (bc *Blockchain) canonDelta(b *Block) (updates map[uint64]types.Hash, stale []uint64) {
	updates = make(map[uint64]types.Hash)
	cur := b
	for {
		n := cur.Number()
		if bc.canon[n] == cur.Hash() {
			break
		}
		updates[n] = cur.Hash()
		if n == 0 {
			break
		}
		cur = bc.blocks[cur.Header.ParentHash]
	}
	for n := b.Number() + 1; n <= bc.head.Number(); n++ {
		stale = append(stale, n)
	}
	return updates, stale
}

func (bc *Blockchain) validateHeader(h, parent *Header) error {
	if h.Number != parent.Number+1 {
		return fmt.Errorf("%w: number %d after parent %d", ErrInvalidHeader, h.Number, parent.Number)
	}
	if h.Time <= parent.Time {
		return fmt.Errorf("%w: timestamp %d not after parent %d", ErrInvalidHeader, h.Time, parent.Time)
	}
	want := CalcDifficulty(bc.cfg, h.Time, parent)
	if h.Difficulty == nil || h.Difficulty.Cmp(want) != 0 {
		return fmt.Errorf("%w: difficulty %v, want %v", ErrInvalidHeader, h.Difficulty, want)
	}
	if err := ValidateGasLimit(h.GasLimit, parent.GasLimit); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidHeader, err)
	}
	if h.GasUsed > h.GasLimit {
		return fmt.Errorf("%w: gas used %d exceeds limit %d", ErrInvalidHeader, h.GasUsed, h.GasLimit)
	}
	// The DAO partition rule: within the enforcement window after the
	// fork height, the supporting chain requires the marker and the
	// classic chain rejects it.
	if bc.cfg.DAOForkBlock != nil {
		forkNum := bc.cfg.DAOForkBlock.Uint64()
		if h.Number >= forkNum && h.Number < forkNum+DAOForkExtraRange {
			hasMarker := string(h.Extra) == string(DAOForkExtra)
			if bc.cfg.DAOForkSupport && !hasMarker {
				return fmt.Errorf("%w: missing dao-hard-fork extra at block %d", ErrSideOfPartition, h.Number)
			}
			if !bc.cfg.DAOForkSupport && hasMarker {
				return fmt.Errorf("%w: dao-hard-fork extra at block %d", ErrSideOfPartition, h.Number)
			}
		}
	}
	return nil
}

func (bc *Blockchain) validateBody(b *Block) error {
	if got := b.ComputedTxRoot(); got != b.Header.TxRoot {
		return fmt.Errorf("%w: tx root %s, header %s", ErrInvalidBody, got, b.Header.TxRoot)
	}
	if err := bc.validateUncles(b); err != nil {
		return err
	}
	for i, tx := range b.Txs {
		if err := tx.VerifySig(); err != nil {
			return fmt.Errorf("%w: tx %d: %v", ErrInvalidBody, i, err)
		}
	}
	return nil
}

// BuildBlock assembles and executes a block on top of the current head:
// the miner's job, minus the PoW seal. Transactions must already be valid
// in head-state order. The returned block carries correct difficulty, gas
// and roots and is ready for pow.Seal and InsertBlock.
func (bc *Blockchain) BuildBlock(coinbase types.Address, time uint64, txs []*Transaction) (*Block, error) {
	return bc.BuildBlockWithUncles(coinbase, time, txs, nil)
}

// BuildBlockWithUncles is BuildBlock with explicit uncle inclusion (see
// CollectUncles for the miner's candidate set).
func (bc *Blockchain) BuildBlockWithUncles(coinbase types.Address, time uint64, txs []*Transaction, uncles []*Header) (*Block, error) {
	bc.mu.Lock()
	defer bc.mu.Unlock()

	parent := bc.head
	if time <= parent.Header.Time {
		time = parent.Header.Time + 1
	}
	header := &Header{
		ParentHash: parent.Hash(),
		Number:     parent.Number() + 1,
		Time:       time,
		Difficulty: CalcDifficulty(bc.cfg, time, parent.Header),
		GasLimit:   NextGasLimit(parent.Header.GasLimit, bc.cfg.GasLimit),
		Coinbase:   coinbase,
	}
	if bc.cfg.DAOForkBlock != nil && bc.cfg.DAOForkSupport {
		forkNum := bc.cfg.DAOForkBlock.Uint64()
		if header.Number >= forkNum && header.Number < forkNum+DAOForkExtraRange {
			header.Extra = append([]byte(nil), DAOForkExtra...)
		}
	}
	header.UncleHash = CalcUncleHash(uncles)
	block := &Block{Header: header, Txs: txs, Uncles: uncles}

	st, err := state.New(bc.stateRoots[parent.Hash()], bc.db)
	if err != nil {
		return nil, err
	}
	receipts, err := bc.proc.Process(block, st)
	if err != nil {
		return nil, err
	}
	root, err := st.Commit()
	if err != nil {
		return nil, err
	}
	var gasUsed uint64
	for _, r := range receipts {
		gasUsed += r.GasUsed
	}
	header.GasUsed = gasUsed
	header.StateRoot = root
	// Computing the root through the block memoizes it, so InsertBlock's
	// body validation will not rebuild the trie.
	header.TxRoot = block.ComputedTxRoot()
	header.ReceiptRoot = ReceiptRoot(receipts)
	ReleaseReceipts(receipts) // consumed by the root; nothing retains them
	return block, nil
}

// CanonicalBlocks returns the canonical blocks in [from, to] (inclusive,
// clamped to the head). The analysis layer iterates these exactly as the
// paper iterates its exported block table.
func (bc *Blockchain) CanonicalBlocks(from, to uint64) []*Block {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	if to > bc.head.Number() {
		to = bc.head.Number()
	}
	var out []*Block
	for n := from; n <= to; n++ {
		h, ok := bc.canon[n]
		if !ok {
			continue
		}
		out = append(out, bc.blocks[h])
	}
	return out
}

// Length returns the canonical height (head number).
func (bc *Blockchain) Length() uint64 { return bc.Head().Number() }
