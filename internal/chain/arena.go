package chain

import (
	"sync"

	"forkwatch/internal/types"
)

// Pooled allocation arenas (DESIGN.md §15). The simulate path churns
// through millions of transactions, receipts and scratch headers per
// nine-month run; these sync.Pool arenas recycle them with strict
// reset-on-recycle semantics so a recycled object is indistinguishable
// from a zero-value one.
//
// Ownership rules — the pools are safe only because of them:
//
//   - Transactions: only an object that provably has no remaining
//     references may be released. The workload releases fresh (never
//     mined, never echoed) transactions the engine drops; a transaction
//     that was ever mined may sit in another chain's replay queue and is
//     left to the garbage collector.
//   - Receipts: released by the blockchain right after their root is
//     computed and they are staged into the store batch (the store
//     serializes them; nothing retains the structs).
//   - Headers: only pre-execution scratch headers are pooled. Headers
//     that enter a block are immortal chain state and are never released.

var txArena = sync.Pool{New: func() any { return new(Transaction) }}

// NewPooledTransaction returns a reset transaction from the arena.
func NewPooledTransaction() *Transaction {
	return txArena.Get().(*Transaction)
}

// ReleaseTransaction resets tx and returns it to the arena. The caller
// must guarantee no other reference to tx survives.
func ReleaseTransaction(tx *Transaction) {
	tx.resetForReuse()
	txArena.Put(tx)
}

// resetForReuse zeroes every field, including the memoized digest and the
// cached signature verdict. Field-by-field (not a struct copy): the atomic
// members must not be copied over.
func (tx *Transaction) resetForReuse() {
	tx.Nonce = 0
	tx.GasPrice = nil
	tx.GasLimit = 0
	tx.To = nil
	tx.Value = nil
	tx.Data = nil
	tx.ChainID = 0
	tx.From = types.Address{}
	tx.SigTag = types.Hash{}
	tx.hash.Store(nil)
	tx.sigOK.Store(false)
}

var receiptArena = sync.Pool{New: func() any { return new(Receipt) }}

// NewPooledReceipt returns a reset receipt from the arena.
func NewPooledReceipt() *Receipt {
	return receiptArena.Get().(*Receipt)
}

// ReleaseReceipt resets r and returns it to the arena.
func ReleaseReceipt(r *Receipt) {
	*r = Receipt{}
	receiptArena.Put(r)
}

// ReleaseReceipts releases a whole block's receipts.
func ReleaseReceipts(receipts []*Receipt) {
	for _, r := range receipts {
		ReleaseReceipt(r)
	}
}

var headerArena = sync.Pool{New: func() any { return new(Header) }}

// NewPooledHeader returns a reset scratch header from the arena. Use only
// for pre-execution scratch (gas accounting context); never for headers
// that become chain state.
func NewPooledHeader() *Header {
	return headerArena.Get().(*Header)
}

// ReleaseHeader resets h and returns it to the arena.
func ReleaseHeader(h *Header) {
	h.ParentHash = types.Hash{}
	h.Number = 0
	h.Time = 0
	h.Difficulty = nil
	h.GasLimit = 0
	h.GasUsed = 0
	h.Coinbase = types.Address{}
	h.StateRoot = types.Hash{}
	h.TxRoot = types.Hash{}
	h.ReceiptRoot = types.Hash{}
	h.Extra = nil
	h.UncleHash = types.Hash{}
	h.Nonce = 0
	h.MixDigest = types.Hash{}
	h.hash.Store(nil)
	headerArena.Put(h)
}
