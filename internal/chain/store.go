package chain

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"forkwatch/internal/db"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// Store is the KV-backed persistence schema for one chain: blocks,
// receipts, total difficulty, per-block state roots, the canonical number
// index, the head marker and the write-ahead log, all in the same db.KV
// that holds the state trie nodes. Keys are prefixed with a single byte so
// the content-addressed trie namespace (raw 32-byte hashes) can never
// collide with chain records (33- or 9-byte keys).
//
// The Store does no caching and no locking of its own: Blockchain holds
// the lock and keeps decoded blocks in memory; export tooling reads a
// Store directly.
//
// Every getter returns (value, ok, error): ok distinguishes absence, the
// error reports a failed read or a record that failed an integrity check
// (wrapping db.ErrCorrupt). All mutations queue into a caller-owned
// db.Batch — including the canonical index and head marker — so one
// block's whole persistence lands atomically and a torn write is
// repairable from the WAL (see wal.go).
type Store struct {
	kv db.KV
	// walSeq is the sequence number of the newest committed WAL record
	// (see wal.go). Mutated only under the owning Blockchain's lock.
	walSeq uint64
}

// Key prefixes of the chain schema.
const (
	prefixBlock     = 'b' // prefixBlock + hash -> block RLP
	prefixReceipts  = 'r' // prefixReceipts + block hash -> receipt-list RLP
	prefixTD        = 't' // prefixTD + hash -> total difficulty (big-endian bytes)
	prefixStateRoot = 's' // prefixStateRoot + hash -> committed state root
	prefixCanon     = 'n' // prefixCanon + 8-byte BE number -> canonical hash
	prefixWAL       = 'w' // prefixWAL + 8-byte BE seq -> checksummed WAL record
	prefixTxIndex   = 'x' // prefixTxIndex + tx hash -> block hash || 4-byte BE index
)

// keyHead marks the canonical head hash.
var keyHead = []byte("Head")

// NewStore wraps kv with the chain schema.
func NewStore(kv db.KV) *Store { return &Store{kv: kv} }

// KV returns the underlying store (shared with the state trie).
func (s *Store) KV() db.KV { return s.kv }

func hashKey(prefix byte, h types.Hash) []byte {
	k := make([]byte, 1+types.HashLength)
	k[0] = prefix
	copy(k[1:], h.Bytes())
	return k
}

func canonKey(n uint64) []byte {
	k := make([]byte, 9)
	k[0] = prefixCanon
	binary.BigEndian.PutUint64(k[1:], n)
	return k
}

// PutBlock queues the block record under its hash.
func (s *Store) PutBlock(batch db.Batch, b *Block) {
	batch.Put(hashKey(prefixBlock, b.Hash()), b.Encode())
}

// Block reads and decodes a block by hash.
func (s *Store) Block(h types.Hash) (*Block, bool, error) {
	enc, ok, err := s.kv.Get(hashKey(prefixBlock, h))
	if err != nil {
		return nil, false, fmt.Errorf("chain: reading block %s: %w", h, err)
	}
	if !ok {
		return nil, false, nil
	}
	b, err := DecodeBlock(enc)
	if err != nil {
		return nil, false, fmt.Errorf("%w: stored block %s: %v", db.ErrCorrupt, h, err)
	}
	return b, true, nil
}

// HasBlock reports whether a block record exists.
func (s *Store) HasBlock(h types.Hash) (bool, error) {
	return s.kv.Has(hashKey(prefixBlock, h))
}

// PutReceipts queues the receipt list of block h.
func (s *Store) PutReceipts(batch db.Batch, h types.Hash, receipts []*Receipt) {
	payload := 0
	for _, r := range receipts {
		payload += r.EncodedSize()
	}
	dst := rlp.AppendListHeader(make([]byte, 0, rlp.ListSize(payload)), payload)
	for _, r := range receipts {
		dst = r.appendRLP(dst)
	}
	batch.Put(hashKey(prefixReceipts, h), dst)
}

// Receipts reads and decodes the receipt list of block h.
func (s *Store) Receipts(h types.Hash) ([]*Receipt, bool, error) {
	enc, ok, err := s.kv.Get(hashKey(prefixReceipts, h))
	if err != nil {
		return nil, false, fmt.Errorf("chain: reading receipts %s: %w", h, err)
	}
	if !ok {
		return nil, false, nil
	}
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, false, fmt.Errorf("%w: stored receipts %s: %v", db.ErrCorrupt, h, err)
	}
	items, err := v.AsList()
	if err != nil {
		return nil, false, fmt.Errorf("%w: stored receipts %s: %v", db.ErrCorrupt, h, err)
	}
	receipts := make([]*Receipt, 0, len(items))
	for _, it := range items {
		r, err := receiptFromValue(it)
		if err != nil {
			return nil, false, fmt.Errorf("%w: stored receipt in %s: %v", db.ErrCorrupt, h, err)
		}
		receipts = append(receipts, r)
	}
	return receipts, true, nil
}

// PutTD queues the total difficulty of block h.
func (s *Store) PutTD(batch db.Batch, h types.Hash, td *big.Int) {
	batch.Put(hashKey(prefixTD, h), td.Bytes())
}

// TD reads the total difficulty of block h.
func (s *Store) TD(h types.Hash) (*big.Int, bool, error) {
	enc, ok, err := s.kv.Get(hashKey(prefixTD, h))
	if err != nil {
		return nil, false, fmt.Errorf("chain: reading TD %s: %w", h, err)
	}
	if !ok {
		return nil, false, nil
	}
	return new(big.Int).SetBytes(enc), true, nil
}

// PutStateRoot queues the committed state root of block h.
func (s *Store) PutStateRoot(batch db.Batch, h, root types.Hash) {
	batch.Put(hashKey(prefixStateRoot, h), root.Bytes())
}

// StateRoot reads the committed state root of block h.
func (s *Store) StateRoot(h types.Hash) (types.Hash, bool, error) {
	enc, ok, err := s.kv.Get(hashKey(prefixStateRoot, h))
	if err != nil {
		return types.Hash{}, false, fmt.Errorf("chain: reading state root %s: %w", h, err)
	}
	if !ok {
		return types.Hash{}, false, nil
	}
	return types.BytesToHash(enc), true, nil
}

// PutCanon queues the canonical hash for height n. The canonical index
// moves inside the same atomic batch as the block data it points at, so a
// torn write can never expose a canon entry whose block is missing.
func (s *Store) PutCanon(batch db.Batch, n uint64, h types.Hash) {
	batch.Put(canonKey(n), h.Bytes())
}

// DeleteCanon queues removal of the canonical entry for height n (reorg to
// a shorter, heavier chain).
func (s *Store) DeleteCanon(batch db.Batch, n uint64) {
	batch.Delete(canonKey(n))
}

// CanonHash reads the canonical hash at height n.
func (s *Store) CanonHash(n uint64) (types.Hash, bool, error) {
	enc, ok, err := s.kv.Get(canonKey(n))
	if err != nil {
		return types.Hash{}, false, fmt.Errorf("chain: reading canon %d: %w", n, err)
	}
	if !ok {
		return types.Hash{}, false, nil
	}
	return types.BytesToHash(enc), true, nil
}

// PutHead queues h as the canonical head.
func (s *Store) PutHead(batch db.Batch, h types.Hash) {
	batch.Put(keyHead, h.Bytes())
}

// Head reads the canonical head hash.
func (s *Store) Head() (types.Hash, bool, error) {
	enc, ok, err := s.kv.Get(keyHead)
	if err != nil {
		return types.Hash{}, false, fmt.Errorf("chain: reading head: %w", err)
	}
	if !ok {
		return types.Hash{}, false, nil
	}
	return types.BytesToHash(enc), true, nil
}

// TxLookup locates a transaction by hash: the hash of the block that
// included it and the transaction's position in that block. Entries are
// written through the same WAL/batch path as the block itself, so a
// lookup can never race ahead of the block it points at. Lookups replace
// the O(n) canonical-chain scan a serving layer would otherwise need for
// eth_getTransactionByHash / eth_getTransactionReceipt.
type TxLookup struct {
	BlockHash types.Hash
	Index     uint32
}

// PutTxIndex queues the lookup entry of one transaction.
func (s *Store) PutTxIndex(batch db.Batch, txHash, blockHash types.Hash, index uint32) {
	v := make([]byte, types.HashLength+4)
	copy(v, blockHash.Bytes())
	binary.BigEndian.PutUint32(v[types.HashLength:], index)
	batch.Put(hashKey(prefixTxIndex, txHash), v)
}

// PutBlockTxIndices queues lookup entries for every transaction of b.
func (s *Store) PutBlockTxIndices(batch db.Batch, b *Block) {
	h := b.Hash()
	for i, tx := range b.Txs {
		s.PutTxIndex(batch, tx.Hash(), h, uint32(i))
	}
}

// TxIndex reads the lookup entry of a transaction hash.
func (s *Store) TxIndex(txHash types.Hash) (TxLookup, bool, error) {
	enc, ok, err := s.kv.Get(hashKey(prefixTxIndex, txHash))
	if err != nil {
		return TxLookup{}, false, fmt.Errorf("chain: reading tx index %s: %w", txHash, err)
	}
	if !ok {
		return TxLookup{}, false, nil
	}
	if len(enc) != types.HashLength+4 {
		return TxLookup{}, false, fmt.Errorf("%w: tx index %s is %d bytes", db.ErrCorrupt, txHash, len(enc))
	}
	return TxLookup{
		BlockHash: types.BytesToHash(enc[:types.HashLength]),
		Index:     binary.BigEndian.Uint32(enc[types.HashLength:]),
	}, true, nil
}

// Transaction resolves a transaction by hash through the index: the
// transaction itself, its lookup entry, and the containing block's
// number.
func (s *Store) Transaction(txHash types.Hash) (*Transaction, TxLookup, uint64, bool, error) {
	lk, ok, err := s.TxIndex(txHash)
	if err != nil || !ok {
		return nil, TxLookup{}, 0, false, err
	}
	b, ok, err := s.Block(lk.BlockHash)
	if err != nil {
		return nil, TxLookup{}, 0, false, err
	}
	if !ok || int(lk.Index) >= len(b.Txs) {
		return nil, TxLookup{}, 0, false, fmt.Errorf("%w: tx index %s points at %s[%d]", db.ErrCorrupt, txHash, lk.BlockHash, lk.Index)
	}
	return b.Txs[lk.Index], lk, b.Number(), true, nil
}

// Receipt resolves a transaction's receipt by hash through the index.
func (s *Store) Receipt(txHash types.Hash) (*Receipt, TxLookup, bool, error) {
	lk, ok, err := s.TxIndex(txHash)
	if err != nil || !ok {
		return nil, TxLookup{}, false, err
	}
	receipts, ok, err := s.Receipts(lk.BlockHash)
	if err != nil {
		return nil, TxLookup{}, false, err
	}
	if !ok || int(lk.Index) >= len(receipts) {
		return nil, TxLookup{}, false, fmt.Errorf("%w: tx index %s points at receipts %s[%d]", db.ErrCorrupt, txHash, lk.BlockHash, lk.Index)
	}
	return receipts[lk.Index], lk, true, nil
}

// receiptFromValue rebuilds a Receipt from its decoded RLP value.
func receiptFromValue(v rlp.Value) (*Receipt, error) {
	items, err := v.ListOf(5)
	if err != nil {
		return nil, fmt.Errorf("chain: bad receipt structure: %w", err)
	}
	r := &Receipt{}
	b, err := items[0].AsBytes()
	if err != nil {
		return nil, err
	}
	r.TxHash = types.BytesToHash(b)
	status, err := items[1].AsUint()
	if err != nil {
		return nil, err
	}
	r.Status = status == 1
	if r.GasUsed, err = items[2].AsUint(); err != nil {
		return nil, err
	}
	if b, err = items[3].AsBytes(); err != nil {
		return nil, err
	}
	r.ContractAddress = types.BytesToAddress(b)
	call, err := items[4].AsUint()
	if err != nil {
		return nil, err
	}
	r.ContractCall = call == 1
	return r, nil
}

// DecodeReceipt parses a receipt from its RLP encoding (inverse of
// Receipt.Encode).
func DecodeReceipt(enc []byte) (*Receipt, error) {
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("chain: bad receipt encoding: %w", err)
	}
	return receiptFromValue(v)
}
