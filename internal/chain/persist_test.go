package chain

import (
	"bytes"
	"errors"
	"testing"
)

func TestWriteImportChainRoundTrip(t *testing.T) {
	src := newTestChain(t, MainnetLikeConfig())
	for i := 0; i < 10; i++ {
		mine(t, src, 14, transfer(uint64(i), alice, bob, int64(i+1), 0))
	}
	var buf bytes.Buffer
	if err := src.WriteChain(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newTestChain(t, MainnetLikeConfig())
	n, err := dst.ImportChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("imported %d blocks, want 10", n)
	}
	if dst.Head().Hash() != src.Head().Hash() {
		t.Fatal("imported head differs from source")
	}
	// State came along: bob holds 1+2+...+10.
	st, err := dst.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.GetBalance(bob); got.Int64() != 55 {
		t.Errorf("bob after import = %v, want 55", got)
	}
}

func TestImportChainResumesOverOverlap(t *testing.T) {
	src := newTestChain(t, MainnetLikeConfig())
	for i := 0; i < 6; i++ {
		mine(t, src, 14)
	}
	var buf bytes.Buffer
	if err := src.WriteChain(&buf); err != nil {
		t.Fatal(err)
	}
	// Destination already holds the first half.
	dst := newTestChain(t, MainnetLikeConfig())
	var half bytes.Buffer
	if err := src.WriteChain(&half); err != nil {
		t.Fatal(err)
	}
	// Import everything twice: second pass should import nothing new.
	if _, err := dst.ImportChain(&half); err != nil {
		t.Fatal(err)
	}
	n, err := dst.ImportChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("overlap import added %d blocks, want 0", n)
	}
}

func TestImportChainRejectsWrongRules(t *testing.T) {
	// Build past the DAO fork on ETH rules; an ETC-ruled chain must stop
	// at the partition boundary.
	gen := testGenesis()
	eth, err := NewBlockchain(ETHConfig(2, nil, refund), gen)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b, err := eth.BuildBlock(pool1, eth.Head().Header.Time+14, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := eth.InsertBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eth.WriteChain(&buf); err != nil {
		t.Fatal(err)
	}
	etcChain, err := eth.NewSibling(ETCConfig(2), gen)
	if err != nil {
		t.Fatal(err)
	}
	n, err := etcChain.ImportChain(&buf)
	if !errors.Is(err, ErrImportStopped) {
		t.Fatalf("cross-partition import: err = %v", err)
	}
	if n != 1 { // only the shared pre-fork block
		t.Errorf("imported %d blocks before the partition, want 1", n)
	}
}

func TestImportChainGarbage(t *testing.T) {
	dst := newTestChain(t, MainnetLikeConfig())
	if _, err := dst.ImportChain(bytes.NewReader([]byte{0, 0, 0, 3, 1, 2, 3})); !errors.Is(err, ErrImportStopped) {
		t.Errorf("garbage import: err = %v", err)
	}
	if _, err := dst.ImportChain(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); !errors.Is(err, ErrImportStopped) {
		t.Errorf("absurd frame import: err = %v", err)
	}
}
