package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// Transaction is one state transition: a value transfer, contract call or
// contract creation.
//
// Authentication substitution: real Ethereum transactions carry a
// secp256k1 signature from which the sender is recovered; forkwatch
// carries the sender address plus a keccak "signature tag" binding the
// sender to the signed payload. This preserves the property the paper's
// echo analysis depends on — a transaction broadcast on one chain can be
// rebroadcast verbatim on the other and will execute iff the sender's
// nonce/balance still permit — including the EIP-155 fix: when ChainID is
// non-zero the tag covers it, so the other chain rejects the replay.
type Transaction struct {
	Nonce    uint64
	GasPrice *big.Int
	GasLimit uint64
	// To is the recipient; nil creates a contract.
	To    *types.Address
	Value *big.Int
	Data  []byte
	// ChainID is 0 for legacy (replayable) transactions, or the EIP-155
	// chain id the sender bound the transaction to.
	ChainID uint64

	// From is the authenticated sender (see the substitution note).
	From types.Address
	// SigTag binds From to the payload; set by Sign.
	SigTag types.Hash

	// hash memoizes Hash(). A transaction is hashed many times on the hot
	// path — once when mined, once per observer event, and again on every
	// chain it echoes onto — and the identity is stable once signed, so
	// the digest is computed once. Sign drops the memo. atomic.Pointer
	// keeps concurrent readers (both chains replaying the same tx object)
	// race-free.
	hash atomic.Pointer[types.Hash]
	// sigOK latches a successful VerifySig. Only success is cached:
	// verification always recomputes the payload hash until it passes
	// once, so a transaction tampered with after signing still fails.
	sigOK atomic.Bool
}

// Tx errors.
var (
	ErrBadSignature      = errors.New("chain: invalid transaction signature tag")
	ErrWrongChainID      = errors.New("chain: transaction signed for another chain")
	ErrNonceTooLow       = errors.New("chain: nonce too low")
	ErrNonceTooHigh      = errors.New("chain: nonce too high")
	ErrInsufficientFunds = errors.New("chain: insufficient funds for gas * price + value")
	ErrIntrinsicGas      = errors.New("chain: intrinsic gas exceeds gas limit")
	ErrKnownTx           = errors.New("chain: transaction already known")
)

// NewTransaction constructs an unsigned transfer/call transaction.
func NewTransaction(nonce uint64, to *types.Address, value *big.Int, gasLimit uint64, gasPrice *big.Int, data []byte) *Transaction {
	if value == nil {
		value = new(big.Int)
	}
	if gasPrice == nil {
		gasPrice = new(big.Int)
	}
	return &Transaction{
		Nonce:    nonce,
		GasPrice: types.BigCopy(gasPrice),
		GasLimit: gasLimit,
		To:       to,
		Value:    types.BigCopy(value),
		Data:     append([]byte(nil), data...),
	}
}

// Sign authenticates the transaction as coming from `from`, binding it to
// chainID (0 leaves it replayable across the partition).
func (tx *Transaction) Sign(from types.Address, chainID uint64) *Transaction {
	tx.From = from
	tx.ChainID = chainID
	tx.SigTag = tx.sigPayloadHash()
	tx.hash.Store(nil) // identity changed: drop the memoized digest
	tx.sigOK.Store(false)
	return tx
}

// sigPayloadHash covers every signed field, including the sender and the
// chain id (the latter only when non-zero, mirroring EIP-155's
// backwards-compatible encoding).
func (tx *Transaction) sigPayloadHash() types.Hash {
	items := []rlp.Value{
		rlp.Uint(tx.Nonce),
		rlp.BigInt(tx.GasPrice),
		rlp.Uint(tx.GasLimit),
		toValue(tx.To),
		rlp.BigInt(tx.Value),
		rlp.Bytes(tx.Data),
		rlp.Bytes(tx.From.Bytes()),
	}
	if tx.ChainID != 0 {
		items = append(items, rlp.Uint(tx.ChainID))
	}
	h := keccak.Sum256Pooled(rlp.EncodeList(items...))
	return types.BytesToHash(h[:])
}

// VerifySig checks the signature tag. A transaction that has verified once
// skips recomputation on later calls (both chains re-validate the same tx
// object when an echo lands); failures are never cached.
func (tx *Transaction) VerifySig() error {
	if tx.sigOK.Load() {
		return nil
	}
	if tx.SigTag != tx.sigPayloadHash() {
		return ErrBadSignature
	}
	tx.sigOK.Store(true)
	return nil
}

// Hash is the transaction identity: keccak256 of the full RLP encoding,
// memoized after the first call (see the hash field). Replayed
// transactions keep their hash across chains, which is exactly how the
// paper detects echoes.
func (tx *Transaction) Hash() types.Hash {
	if p := tx.hash.Load(); p != nil {
		return *p
	}
	h := keccak.Sum256Pooled(tx.Encode())
	hh := types.BytesToHash(h[:])
	tx.hash.Store(&hh)
	return hh
}

// RLP returns the transaction as a composable RLP value, so containers
// (blocks, receipt lists) can embed it without re-decoding its encoding.
func (tx *Transaction) RLP() rlp.Value {
	return rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.BigInt(tx.GasPrice),
		rlp.Uint(tx.GasLimit),
		toValue(tx.To),
		rlp.BigInt(tx.Value),
		rlp.Bytes(tx.Data),
		rlp.Uint(tx.ChainID),
		rlp.Bytes(tx.From.Bytes()),
		rlp.Bytes(tx.SigTag.Bytes()),
	)
}

// Encode returns the canonical RLP encoding.
func (tx *Transaction) Encode() []byte {
	return rlp.Encode(tx.RLP())
}

// DecodeTx parses a transaction from its RLP encoding.
func DecodeTx(enc []byte) (*Transaction, error) {
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("chain: bad tx encoding: %w", err)
	}
	return txFromValue(v)
}

func txFromValue(v rlp.Value) (*Transaction, error) {
	items, err := v.ListOf(9)
	if err != nil {
		return nil, fmt.Errorf("chain: bad tx structure: %w", err)
	}
	tx := &Transaction{}
	if tx.Nonce, err = items[0].AsUint(); err != nil {
		return nil, err
	}
	if tx.GasPrice, err = items[1].AsBigInt(); err != nil {
		return nil, err
	}
	if tx.GasLimit, err = items[2].AsUint(); err != nil {
		return nil, err
	}
	toBytes, err := items[3].AsBytes()
	if err != nil {
		return nil, err
	}
	switch len(toBytes) {
	case 0:
		tx.To = nil
	case types.AddressLength:
		a := types.BytesToAddress(toBytes)
		tx.To = &a
	default:
		return nil, fmt.Errorf("chain: bad recipient length %d", len(toBytes))
	}
	if tx.Value, err = items[4].AsBigInt(); err != nil {
		return nil, err
	}
	if tx.Data, err = items[5].AsBytes(); err != nil {
		return nil, err
	}
	if tx.ChainID, err = items[6].AsUint(); err != nil {
		return nil, err
	}
	fromB, err := items[7].AsBytes()
	if err != nil {
		return nil, err
	}
	if len(fromB) != types.AddressLength {
		return nil, fmt.Errorf("chain: bad sender length %d", len(fromB))
	}
	tx.From = types.BytesToAddress(fromB)
	tagB, err := items[8].AsBytes()
	if err != nil {
		return nil, err
	}
	tx.SigTag = types.BytesToHash(tagB)
	return tx, nil
}

// IsContractCreation reports whether the transaction deploys a contract.
func (tx *Transaction) IsContractCreation() bool { return tx.To == nil }

// Cost returns value + gasLimit*gasPrice, the sender's maximum outlay.
func (tx *Transaction) Cost() *big.Int {
	cost := new(big.Int).Mul(tx.GasPrice, new(big.Int).SetUint64(tx.GasLimit))
	return cost.Add(cost, tx.Value)
}

// IntrinsicGas is the base cost charged before execution: 21000 plus
// calldata costs (4 per zero byte, 68 per non-zero byte, Homestead).
func (tx *Transaction) IntrinsicGas() uint64 {
	gas := uint64(21_000)
	if tx.IsContractCreation() {
		gas = 53_000
	}
	for _, b := range tx.Data {
		if b == 0 {
			gas += 4
		} else {
			gas += 68
		}
	}
	return gas
}

func toValue(to *types.Address) rlp.Value {
	if to == nil {
		return rlp.Bytes(nil)
	}
	return rlp.Bytes(to.Bytes())
}

// Receipt records the outcome of one executed transaction.
type Receipt struct {
	TxHash          types.Hash
	Status          bool
	GasUsed         uint64
	ContractAddress types.Address // set for creations
	// ContractCall records whether the transaction invoked code (used
	// by the Fig 2 bottom-panel classification).
	ContractCall bool
}

// RLP returns the receipt as a composable RLP value (see Transaction.RLP).
func (r *Receipt) RLP() rlp.Value {
	status := uint64(0)
	if r.Status {
		status = 1
	}
	contract := uint64(0)
	if r.ContractCall {
		contract = 1
	}
	return rlp.List(
		rlp.Bytes(r.TxHash.Bytes()),
		rlp.Uint(status),
		rlp.Uint(r.GasUsed),
		rlp.Bytes(r.ContractAddress.Bytes()),
		rlp.Uint(contract),
	)
}

// Encode returns the canonical RLP encoding of the receipt (committed to
// by the header's receipt root).
func (r *Receipt) Encode() []byte {
	return rlp.Encode(r.RLP())
}
