package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// Transaction is one state transition: a value transfer, contract call or
// contract creation.
//
// Authentication substitution: real Ethereum transactions carry a
// secp256k1 signature from which the sender is recovered; forkwatch
// carries the sender address plus a keccak "signature tag" binding the
// sender to the signed payload. This preserves the property the paper's
// echo analysis depends on — a transaction broadcast on one chain can be
// rebroadcast verbatim on the other and will execute iff the sender's
// nonce/balance still permit — including the EIP-155 fix: when ChainID is
// non-zero the tag covers it, so the other chain rejects the replay.
type Transaction struct {
	Nonce    uint64
	GasPrice *big.Int
	GasLimit uint64
	// To is the recipient; nil creates a contract.
	To    *types.Address
	Value *big.Int
	Data  []byte
	// ChainID is 0 for legacy (replayable) transactions, or the EIP-155
	// chain id the sender bound the transaction to.
	ChainID uint64

	// From is the authenticated sender (see the substitution note).
	From types.Address
	// SigTag binds From to the payload; set by Sign.
	SigTag types.Hash

	// hash memoizes Hash(). A transaction is hashed many times on the hot
	// path — once when mined, once per observer event, and again on every
	// chain it echoes onto — and the identity is stable once signed, so
	// the digest is computed once. Sign drops the memo. atomic.Pointer
	// keeps concurrent readers (both chains replaying the same tx object)
	// race-free.
	hash atomic.Pointer[types.Hash]
	// sigOK latches a successful VerifySig. Only success is cached:
	// verification always recomputes the payload hash until it passes
	// once, so a transaction tampered with after signing still fails.
	sigOK atomic.Bool
}

// Tx errors.
var (
	ErrBadSignature      = errors.New("chain: invalid transaction signature tag")
	ErrWrongChainID      = errors.New("chain: transaction signed for another chain")
	ErrNonceTooLow       = errors.New("chain: nonce too low")
	ErrNonceTooHigh      = errors.New("chain: nonce too high")
	ErrInsufficientFunds = errors.New("chain: insufficient funds for gas * price + value")
	ErrIntrinsicGas      = errors.New("chain: intrinsic gas exceeds gas limit")
	ErrKnownTx           = errors.New("chain: transaction already known")
)

// NewTransaction constructs an unsigned transfer/call transaction.
func NewTransaction(nonce uint64, to *types.Address, value *big.Int, gasLimit uint64, gasPrice *big.Int, data []byte) *Transaction {
	if value == nil {
		value = new(big.Int)
	}
	if gasPrice == nil {
		gasPrice = new(big.Int)
	}
	return &Transaction{
		Nonce:    nonce,
		GasPrice: types.BigCopy(gasPrice),
		GasLimit: gasLimit,
		To:       to,
		Value:    types.BigCopy(value),
		Data:     append([]byte(nil), data...),
	}
}

// Sign authenticates the transaction as coming from `from`, binding it to
// chainID (0 leaves it replayable across the partition).
func (tx *Transaction) Sign(from types.Address, chainID uint64) *Transaction {
	tx.From = from
	tx.ChainID = chainID
	tx.SigTag = tx.sigPayloadHash()
	tx.hash.Store(nil) // identity changed: drop the memoized digest
	tx.sigOK.Store(false)
	return tx
}

// SignLazy records the sender and chain binding but defers the signature
// tag (and therefore the payload keccak) to a later FinishSign. The
// simulation engine uses this to fan signing out across a worker pool
// after the day's deterministic transaction plan is drawn; the transaction
// must not be validated, hashed or broadcast before FinishSign runs.
func (tx *Transaction) SignLazy(from types.Address, chainID uint64) *Transaction {
	tx.From = from
	tx.ChainID = chainID
	tx.SigTag = types.Hash{}
	tx.hash.Store(nil)
	tx.sigOK.Store(false)
	return tx
}

// FinishSign completes a SignLazy by computing the signature tag. It is a
// pure function of the already-frozen fields, so it is safe to call from a
// worker goroutine as long as each transaction is finished exactly once.
//
// Unlike Sign, FinishSign marks verification as proven: the tag was
// derived from the payload by this very call, so the recomputation
// VerifySig would do is vacuously equal. Callers that mutate a
// transaction after FinishSign must re-sign it; Sign keeps the
// recompute-until-proven contract for tamper detection.
func (tx *Transaction) FinishSign() {
	tx.SigTag = tx.sigPayloadHash()
	tx.sigOK.Store(true)
}

// sigPayloadHash covers every signed field, including the sender and the
// chain id (the latter only when non-zero, mirroring EIP-155's
// backwards-compatible encoding). Encoded into a pooled buffer and hashed
// in place: zero allocations.
func (tx *Transaction) sigPayloadHash() types.Hash {
	payload := rlp.UintSize(tx.Nonce) +
		rlp.BigIntSize(tx.GasPrice) +
		rlp.UintSize(tx.GasLimit) +
		toSize(tx.To) +
		rlp.BigIntSize(tx.Value) +
		rlp.BytesSize(tx.Data) +
		1 + types.AddressLength
	if tx.ChainID != 0 {
		payload += rlp.UintSize(tx.ChainID)
	}
	bp := rlp.GetBuf()
	buf := rlp.AppendListHeader(*bp, payload)
	buf = rlp.AppendUint(buf, tx.Nonce)
	buf = rlp.AppendBigInt(buf, tx.GasPrice)
	buf = rlp.AppendUint(buf, tx.GasLimit)
	buf = appendTo(buf, tx.To)
	buf = rlp.AppendBigInt(buf, tx.Value)
	buf = rlp.AppendBytes(buf, tx.Data)
	buf = rlp.AppendBytes(buf, tx.From[:])
	if tx.ChainID != 0 {
		buf = rlp.AppendUint(buf, tx.ChainID)
	}
	h := keccak.Sum256Pooled(buf)
	*bp = buf
	rlp.PutBuf(bp)
	return types.BytesToHash(h[:])
}

// VerifySig checks the signature tag. A transaction that has verified once
// skips recomputation on later calls (both chains re-validate the same tx
// object when an echo lands); failures are never cached.
func (tx *Transaction) VerifySig() error {
	if tx.sigOK.Load() {
		return nil
	}
	if tx.SigTag != tx.sigPayloadHash() {
		return ErrBadSignature
	}
	tx.sigOK.Store(true)
	return nil
}

// Hash is the transaction identity: keccak256 of the full RLP encoding,
// memoized after the first call (see the hash field). Replayed
// transactions keep their hash across chains, which is exactly how the
// paper detects echoes.
func (tx *Transaction) Hash() types.Hash {
	if p := tx.hash.Load(); p != nil {
		return *p
	}
	bp := rlp.GetBuf()
	buf := tx.appendRLP(*bp)
	h := keccak.Sum256Pooled(buf)
	*bp = buf
	rlp.PutBuf(bp)
	hh := types.BytesToHash(h[:])
	tx.hash.Store(&hh)
	return hh
}

// RLP returns the transaction as a composable RLP value, so containers
// (blocks, receipt lists) can embed it without re-decoding its encoding.
func (tx *Transaction) RLP() rlp.Value {
	return rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.BigInt(tx.GasPrice),
		rlp.Uint(tx.GasLimit),
		toValue(tx.To),
		rlp.BigInt(tx.Value),
		rlp.Bytes(tx.Data),
		rlp.Uint(tx.ChainID),
		rlp.Bytes(tx.From.Bytes()),
		rlp.Bytes(tx.SigTag.Bytes()),
	)
}

// EncodedSize returns the exact length of Encode's output.
func (tx *Transaction) EncodedSize() int {
	return rlp.ListSize(tx.payloadSize())
}

func (tx *Transaction) payloadSize() int {
	return rlp.UintSize(tx.Nonce) +
		rlp.BigIntSize(tx.GasPrice) +
		rlp.UintSize(tx.GasLimit) +
		toSize(tx.To) +
		rlp.BigIntSize(tx.Value) +
		rlp.BytesSize(tx.Data) +
		rlp.UintSize(tx.ChainID) +
		1 + types.AddressLength +
		1 + types.HashLength
}

// appendRLP appends the canonical encoding onto dst; identical bytes to
// rlp.Encode(tx.RLP()) with no intermediate Value tree.
func (tx *Transaction) appendRLP(dst []byte) []byte {
	dst = rlp.AppendListHeader(dst, tx.payloadSize())
	dst = rlp.AppendUint(dst, tx.Nonce)
	dst = rlp.AppendBigInt(dst, tx.GasPrice)
	dst = rlp.AppendUint(dst, tx.GasLimit)
	dst = appendTo(dst, tx.To)
	dst = rlp.AppendBigInt(dst, tx.Value)
	dst = rlp.AppendBytes(dst, tx.Data)
	dst = rlp.AppendUint(dst, tx.ChainID)
	dst = rlp.AppendBytes(dst, tx.From[:])
	dst = rlp.AppendBytes(dst, tx.SigTag[:])
	return dst
}

// Encode returns the canonical RLP encoding in one exact-size allocation.
func (tx *Transaction) Encode() []byte {
	return tx.appendRLP(make([]byte, 0, tx.EncodedSize()))
}

// DecodeTx parses a transaction from its RLP encoding.
func DecodeTx(enc []byte) (*Transaction, error) {
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("chain: bad tx encoding: %w", err)
	}
	return txFromValue(v)
}

func txFromValue(v rlp.Value) (*Transaction, error) {
	items, err := v.ListOf(9)
	if err != nil {
		return nil, fmt.Errorf("chain: bad tx structure: %w", err)
	}
	tx := &Transaction{}
	if tx.Nonce, err = items[0].AsUint(); err != nil {
		return nil, err
	}
	if tx.GasPrice, err = items[1].AsBigInt(); err != nil {
		return nil, err
	}
	if tx.GasLimit, err = items[2].AsUint(); err != nil {
		return nil, err
	}
	toBytes, err := items[3].AsBytes()
	if err != nil {
		return nil, err
	}
	switch len(toBytes) {
	case 0:
		tx.To = nil
	case types.AddressLength:
		a := types.BytesToAddress(toBytes)
		tx.To = &a
	default:
		return nil, fmt.Errorf("chain: bad recipient length %d", len(toBytes))
	}
	if tx.Value, err = items[4].AsBigInt(); err != nil {
		return nil, err
	}
	if tx.Data, err = items[5].AsBytes(); err != nil {
		return nil, err
	}
	if tx.ChainID, err = items[6].AsUint(); err != nil {
		return nil, err
	}
	fromB, err := items[7].AsBytes()
	if err != nil {
		return nil, err
	}
	if len(fromB) != types.AddressLength {
		return nil, fmt.Errorf("chain: bad sender length %d", len(fromB))
	}
	tx.From = types.BytesToAddress(fromB)
	tagB, err := items[8].AsBytes()
	if err != nil {
		return nil, err
	}
	tx.SigTag = types.BytesToHash(tagB)
	return tx, nil
}

// IsContractCreation reports whether the transaction deploys a contract.
func (tx *Transaction) IsContractCreation() bool { return tx.To == nil }

// Cost returns value + gasLimit*gasPrice, the sender's maximum outlay.
func (tx *Transaction) Cost() *big.Int {
	cost := new(big.Int).Mul(tx.GasPrice, new(big.Int).SetUint64(tx.GasLimit))
	return cost.Add(cost, tx.Value)
}

// CostInto is Cost computed into caller scratch (dst holds the result, tmp
// is clobbered), allocating nothing on the hot validation path.
func (tx *Transaction) CostInto(dst, tmp *big.Int) *big.Int {
	dst.Mul(tx.GasPrice, tmp.SetUint64(tx.GasLimit))
	return dst.Add(dst, tx.Value)
}

// IntrinsicGas is the base cost charged before execution: 21000 plus
// calldata costs (4 per zero byte, 68 per non-zero byte, Homestead).
func (tx *Transaction) IntrinsicGas() uint64 {
	gas := uint64(21_000)
	if tx.IsContractCreation() {
		gas = 53_000
	}
	for _, b := range tx.Data {
		if b == 0 {
			gas += 4
		} else {
			gas += 68
		}
	}
	return gas
}

func toValue(to *types.Address) rlp.Value {
	if to == nil {
		return rlp.Bytes(nil)
	}
	return rlp.Bytes(to.Bytes())
}

// toSize and appendTo mirror toValue for the append-style encoders.
func toSize(to *types.Address) int {
	if to == nil {
		return 1
	}
	return 1 + types.AddressLength
}

func appendTo(dst []byte, to *types.Address) []byte {
	if to == nil {
		return rlp.AppendBytes(dst, nil)
	}
	return rlp.AppendBytes(dst, to[:])
}

// Receipt records the outcome of one executed transaction.
type Receipt struct {
	TxHash          types.Hash
	Status          bool
	GasUsed         uint64
	ContractAddress types.Address // set for creations
	// ContractCall records whether the transaction invoked code (used
	// by the Fig 2 bottom-panel classification).
	ContractCall bool
}

// RLP returns the receipt as a composable RLP value (see Transaction.RLP).
func (r *Receipt) RLP() rlp.Value {
	status := uint64(0)
	if r.Status {
		status = 1
	}
	contract := uint64(0)
	if r.ContractCall {
		contract = 1
	}
	return rlp.List(
		rlp.Bytes(r.TxHash.Bytes()),
		rlp.Uint(status),
		rlp.Uint(r.GasUsed),
		rlp.Bytes(r.ContractAddress.Bytes()),
		rlp.Uint(contract),
	)
}

func (r *Receipt) payloadSize() int {
	return (1 + types.HashLength) +
		1 + // status: 0 or 1, single byte
		rlp.UintSize(r.GasUsed) +
		(1 + types.AddressLength) +
		1 // contract flag: 0 or 1
}

// EncodedSize returns the exact length of Encode's output.
func (r *Receipt) EncodedSize() int { return rlp.ListSize(r.payloadSize()) }

// appendRLP appends the canonical encoding onto dst; identical bytes to
// rlp.Encode(r.RLP()).
func (r *Receipt) appendRLP(dst []byte) []byte {
	status := uint64(0)
	if r.Status {
		status = 1
	}
	contract := uint64(0)
	if r.ContractCall {
		contract = 1
	}
	dst = rlp.AppendListHeader(dst, r.payloadSize())
	dst = rlp.AppendBytes(dst, r.TxHash[:])
	dst = rlp.AppendUint(dst, status)
	dst = rlp.AppendUint(dst, r.GasUsed)
	dst = rlp.AppendBytes(dst, r.ContractAddress[:])
	dst = rlp.AppendUint(dst, contract)
	return dst
}

// Encode returns the canonical RLP encoding of the receipt (committed to
// by the header's receipt root) in one exact-size allocation.
func (r *Receipt) Encode() []byte {
	return r.appendRLP(make([]byte, 0, r.EncodedSize()))
}
