package chain

import (
	"math/big"
	"testing"

	"forkwatch/internal/types"
)

func benchHeader() *Header {
	return &Header{
		ParentHash: types.BytesToHash([]byte{1}),
		Coinbase:   types.BytesToAddress([]byte{2}),
		Number:     1920001,
		Time:       1469020840,
		Difficulty: big.NewInt(62413376722602),
		GasLimit:   4712388,
		GasUsed:    21000,
		Extra:      []byte("forkwatch"),
		Nonce:      0xdeadbeef,
	}
}

// BenchmarkHeaderHashMemoized measures repeated Hash() calls on one sealed
// header — after the first call the memo makes this a pointer load.
func BenchmarkHeaderHashMemoized(b *testing.B) {
	h := benchHeader()
	h.Hash() // prime the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Hash()
	}
}

// BenchmarkHeaderHashCold measures the un-memoized cost (fresh header each
// iteration): RLP encode + pooled keccak.
func BenchmarkHeaderHashCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := benchHeader()
		b.StartTimer()
		h.Hash()
	}
}

// BenchmarkTxHashMemoized measures the fast-mode hot path: a signed
// transaction hashed once per observer event.
func BenchmarkTxHashMemoized(b *testing.B) {
	from := types.BytesToAddress([]byte{7})
	to := types.BytesToAddress([]byte{9})
	tx := NewTransaction(1, &to, big.NewInt(1), 21000, big.NewInt(20_000_000_000), nil).Sign(from, 1)
	tx.Hash()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Hash()
	}
}
