package chain

import "fmt"

// Gas-limit voting: Ethereum has no fixed block gas limit — each miner may
// move it by at most parent/1024 per block, so the network "votes" it
// toward whatever the miners target. The September–October 2016 DoS
// attacks (which led to the ETH gas-repricing fork the paper mentions in
// §2.1) were fought partly by miners voting the limit down.

// GasLimitBoundDivisor bounds the per-block gas limit step (1024).
const GasLimitBoundDivisor = 1024

// MinGasLimit floors the gas limit (5000).
const MinGasLimit = 5000

// ValidateGasLimit checks the consensus bound on a child's gas limit.
func ValidateGasLimit(limit, parentLimit uint64) error {
	if limit < MinGasLimit {
		return fmt.Errorf("gas limit %d below minimum %d", limit, MinGasLimit)
	}
	bound := parentLimit/GasLimitBoundDivisor - 1
	var diff uint64
	if limit > parentLimit {
		diff = limit - parentLimit
	} else {
		diff = parentLimit - limit
	}
	if diff > bound {
		return fmt.Errorf("gas limit %d out of bounds (parent %d ± %d)", limit, parentLimit, bound)
	}
	return nil
}

// NextGasLimit returns the limit a miner voting toward target would put in
// its next block: the largest legal step in the target's direction.
func NextGasLimit(parentLimit, target uint64) uint64 {
	step := parentLimit/GasLimitBoundDivisor - 1
	switch {
	case parentLimit < target:
		next := parentLimit + step
		if next > target {
			next = target
		}
		return next
	case parentLimit > target:
		next := parentLimit - step
		if next < target {
			next = target
		}
		if next < MinGasLimit {
			next = MinGasLimit
		}
		return next
	default:
		return parentLimit
	}
}
