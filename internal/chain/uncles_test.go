package chain

import (
	"errors"
	"math/big"
	"testing"

	"forkwatch/internal/types"
)

// TestEmptyUncleHashVector pins the empty uncle hash to Ethereum's actual
// constant — a cross-check of the whole RLP+Keccak stack.
func TestEmptyUncleHashVector(t *testing.T) {
	want := types.HexToHash("0x1dcc4de8dec75d7aab85b567b6ccd41ad312451b948a7413f0a142fd40d49347")
	if EmptyUncleHash != want {
		t.Fatalf("EmptyUncleHash = %s, want %s", EmptyUncleHash, want)
	}
	if CalcUncleHash(nil) != want {
		t.Fatal("CalcUncleHash(nil) should be the empty uncle hash")
	}
}

// buildUncleScenario mines a main chain and one competing sibling at
// height 1 (the uncle candidate).
func buildUncleScenario(t *testing.T) (*Blockchain, *Block) {
	t.Helper()
	bc := newTestChain(t, MainnetLikeConfig())
	genesis := bc.Genesis()

	// Canonical block 1 (faster, heavier).
	main1, err := bc.BuildBlock(pool1, genesis.Header.Time+5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(main1); err != nil {
		t.Fatal(err)
	}

	// Competing sibling at height 1 by another miner: the uncle.
	uncleMiner := types.HexToAddress("0x07c1e")
	st, err := bc.StateAt(genesis.Hash())
	if err != nil {
		t.Fatal(err)
	}
	st.AddBalance(uncleMiner, bc.Config().BlockReward)
	root, err := st.Commit()
	if err != nil {
		t.Fatal(err)
	}
	uncleHeader := &Header{
		ParentHash:  genesis.Hash(),
		Number:      1,
		Time:        genesis.Header.Time + 20, // slower sibling
		Difficulty:  CalcDifficulty(bc.Config(), genesis.Header.Time+20, genesis.Header),
		GasLimit:    bc.Config().GasLimit,
		Coinbase:    uncleMiner,
		StateRoot:   root,
		TxRoot:      TxRoot(nil),
		ReceiptRoot: ReceiptRoot(nil),
		UncleHash:   EmptyUncleHash,
	}
	uncleBlock := &Block{Header: uncleHeader}
	if err := bc.InsertBlock(uncleBlock); err != nil {
		t.Fatal(err)
	}
	// Fork choice keeps main1 (heavier).
	if bc.Head().Hash() != main1.Hash() {
		t.Fatal("sibling should not win fork choice")
	}
	return bc, uncleBlock
}

func TestUncleInclusionAndRewards(t *testing.T) {
	bc, uncleBlock := buildUncleScenario(t)
	uncles := bc.CollectUncles(bc.Head().Hash())
	if len(uncles) != 1 || uncles[0].Hash() != uncleBlock.Hash() {
		t.Fatalf("CollectUncles = %v", uncles)
	}

	b2, err := bc.BuildBlockWithUncles(pool1, bc.Head().Header.Time+14, nil, uncles)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Header.UncleHash == EmptyUncleHash {
		t.Fatal("uncle hash not set")
	}
	if err := bc.InsertBlock(b2); err != nil {
		t.Fatalf("block with uncle rejected: %v", err)
	}

	st, err := bc.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	// Uncle at height 1 included at height 2: reward*(1+8-2)/8 = 7/8 R.
	r := bc.Config().BlockReward
	wantUncle := new(big.Int).Div(new(big.Int).Mul(r, big.NewInt(7)), big.NewInt(8))
	if got := st.GetBalance(uncleBlock.Header.Coinbase); got.Cmp(wantUncle) != 0 {
		t.Errorf("uncle miner got %v, want %v", got, wantUncle)
	}
	// Including miner: 2 block rewards (blocks 1 and 2) + R/32.
	wantPool := new(big.Int).Mul(r, big.NewInt(2))
	wantPool.Add(wantPool, new(big.Int).Div(r, big.NewInt(32)))
	if got := st.GetBalance(pool1); got.Cmp(wantPool) != 0 {
		t.Errorf("including miner got %v, want %v", got, wantPool)
	}

	// Round trip: the block with uncles survives encode/decode.
	dec, err := DecodeBlock(b2.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Uncles) != 1 || dec.Uncles[0].Hash() != uncleBlock.Hash() {
		t.Error("uncles corrupted across encode/decode")
	}
	if dec.Hash() != b2.Hash() {
		t.Error("block hash changed across encode/decode")
	}
}

func TestUncleValidationRejections(t *testing.T) {
	bc, uncleBlock := buildUncleScenario(t)
	head := bc.Head()

	build := func(uncles []*Header) *Block {
		t.Helper()
		b, err := bc.BuildBlockWithUncles(pool1, head.Header.Time+14, nil, uncles)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Ancestor as uncle.
	ancestor := build([]*Header{head.Header})
	if err := bc.InsertBlock(ancestor); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("ancestor uncle: err = %v", err)
	}

	// Duplicated uncle within one block.
	dup := build([]*Header{uncleBlock.Header, uncleBlock.Header})
	if err := bc.InsertBlock(dup); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("duplicate uncle: err = %v", err)
	}

	// Too many uncles.
	three := build([]*Header{uncleBlock.Header, head.Header, bc.Genesis().Header})
	if err := bc.InsertBlock(three); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("three uncles: err = %v", err)
	}

	// Mismatched uncle hash (tampered after build).
	good := build([]*Header{uncleBlock.Header})
	tampered := &Block{Header: good.Header.Copy(), Txs: good.Txs}
	// Header still commits to one uncle, but the body has none.
	if err := bc.InsertBlock(tampered); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("uncle hash mismatch: err = %v", err)
	}

	// The well-formed one is accepted.
	if err := bc.InsertBlock(good); err != nil {
		t.Fatalf("valid uncle rejected: %v", err)
	}

	// Double inclusion across blocks: a later block cannot include the
	// same uncle again.
	again, err := bc.BuildBlockWithUncles(pool1, bc.Head().Header.Time+14, nil, []*Header{uncleBlock.Header})
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(again); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("re-included uncle: err = %v", err)
	}
	// And CollectUncles no longer offers it.
	if left := bc.CollectUncles(bc.Head().Hash()); len(left) != 0 {
		t.Errorf("CollectUncles still offers included uncle: %v", left)
	}
}

func TestUncleTooDeep(t *testing.T) {
	bc, uncleBlock := buildUncleScenario(t)
	// Mine past the depth window.
	for i := 0; i < MaxUncleDepth; i++ {
		mine(t, bc, 14)
	}
	deep, err := bc.BuildBlockWithUncles(pool1, bc.Head().Header.Time+14, nil, []*Header{uncleBlock.Header})
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(deep); !errors.Is(err, ErrInvalidBody) {
		t.Errorf("too-deep uncle: err = %v", err)
	}
	if left := bc.CollectUncles(bc.Head().Hash()); len(left) != 0 {
		t.Errorf("CollectUncles offers too-deep uncle: %v", left)
	}
}
