package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pipelined chain import. Decoding a block and warming the memos body
// validation reads — the header hash, each transaction's keccak hash and
// signature check, the transaction trie root — is pure CPU work on
// immutable data, so it fans out across a bounded worker pool while the
// canonical write path (InsertBlock: state execution, WAL commit, canon
// index) stays strictly ordered on the caller's goroutine. The worker
// count follows GOMAXPROCS; one worker degenerates to the serial loop.

// precacheShard is how many transactions one precache task warms; small
// enough to spread a single large block across workers, large enough
// that task dispatch doesn't dominate for typical blocks.
const precacheShard = 32

// importLookahead bounds how many decoded-but-uninserted blocks the
// pipeline holds: enough to keep workers busy while the consumer
// executes, without buffering a whole chain in memory.
const importLookahead = 4

// importPool is the shared bounded worker pool behind block precaching
// and the import pipeline. Workers start lazily on first use and then
// idle on the task channel for the life of the process (the
// senderCacher pattern: the pool is cheaper to keep than to rebuild per
// import, and idle goroutines cost nothing).
var importPool = &workerPool{size: runtime.GOMAXPROCS(0)}

type workerPool struct {
	size  int
	once  sync.Once
	tasks chan func()
}

func (p *workerPool) run(f func()) {
	p.once.Do(func() {
		if p.size < 1 {
			p.size = 1
		}
		p.tasks = make(chan func(), p.size)
		for i := 0; i < p.size; i++ {
			go func() {
				for task := range p.tasks {
					task()
				}
			}()
		}
	})
	p.tasks <- f
}

// warmBlock computes, on the calling goroutine, every memo InsertBlock's
// validation reads: header hash, per-transaction hashes and signature
// latches, and the transaction root. Failed signature checks are left
// for validateBody to re-verify and report.
func warmBlock(b *Block) {
	b.Header.Hash()
	for _, tx := range b.Txs {
		tx.Hash()
		_ = tx.VerifySig()
	}
	b.ComputedTxRoot()
}

// PrecacheBlock warms a block's validation memos ahead of InsertBlock,
// sharding the per-transaction work (keccak hashes, signature checks)
// across the shared worker pool and blocking until the block is warm.
// All memos are atomic, so racing a precache against a concurrent reader
// is safe. Deliberately NOT called from inside pool tasks — a task that
// waits on sub-tasks in the same pool can deadlock; pipeline workers use
// warmBlock inline instead.
func PrecacheBlock(b *Block) {
	var wg sync.WaitGroup
	txs := b.Txs
	for start := 0; start < len(txs); start += precacheShard {
		end := start + precacheShard
		if end > len(txs) {
			end = len(txs)
		}
		shard := txs[start:end]
		wg.Add(1)
		importPool.run(func() {
			defer wg.Done()
			for _, tx := range shard {
				tx.Hash()
				_ = tx.VerifySig()
			}
		})
	}
	b.Header.Hash()
	wg.Wait()
	// The tx root trie build is not sharded (the trie is sequential) but
	// runs after the tx encodings are hot.
	b.ComputedTxRoot()
}

// importJob carries one frame through the pipeline in stream order.
type importJob struct {
	blk   *Block
	ready chan struct{} // closed by the worker when blk/decodeErr are set

	decodeErr error // malformed frame: aborts the import as ErrImportStopped
	ioErr     error // truncated stream: returned unwrapped, like the serial path
}

// ImportChain reads blocks from r and inserts them in order, returning
// the number of newly imported blocks. Already-known blocks are skipped;
// the first otherwise-invalid block aborts with ErrImportStopped
// (wrapping the cause).
//
// Frames are decoded and precached by a worker pool running ahead of the
// insert loop; insertion order, error positions and error identities are
// exactly those of a serial import.
func (bc *Blockchain) ImportChain(r io.Reader) (int, error) {
	return bc.ImportChainWorkers(r, runtime.GOMAXPROCS(0))
}

// ImportChainWorkers is ImportChain with an explicit decode worker
// count; workers <= 1 selects the serial loop.
func (bc *Blockchain) ImportChainWorkers(r io.Reader, workers int) (int, error) {
	if workers <= 1 {
		return bc.importSerial(r)
	}

	jobs := make(chan *importJob, importLookahead)
	var stop atomic.Bool // consumer aborted: producer drains out

	go func() {
		defer close(jobs)
		for {
			job := &importJob{ready: make(chan struct{})}
			var lenBuf [4]byte
			if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
				if err == io.EOF {
					return
				}
				job.ioErr = err
				close(job.ready)
				jobs <- job
				return
			}
			size := binary.BigEndian.Uint32(lenBuf[:])
			if size > maxPersistFrame {
				job.decodeErr = fmt.Errorf("block frame of %d bytes", size)
				close(job.ready)
				jobs <- job
				return
			}
			enc := make([]byte, size)
			if _, err := io.ReadFull(r, enc); err != nil {
				job.ioErr = err
				close(job.ready)
				jobs <- job
				return
			}
			importPool.run(func() {
				defer close(job.ready)
				blk, err := DecodeBlock(enc)
				if err != nil {
					job.decodeErr = err
					return
				}
				warmBlock(blk)
				job.blk = blk
			})
			jobs <- job
			if stop.Load() {
				return
			}
		}
	}()

	// Unblock and drain the producer on early exit so its goroutine and
	// in-flight workers can finish.
	defer func() {
		stop.Store(true)
		for range jobs {
		}
	}()

	imported := 0
	for job := range jobs {
		<-job.ready
		switch {
		case job.ioErr != nil:
			return imported, job.ioErr
		case job.decodeErr != nil:
			return imported, fmt.Errorf("%w: %v", ErrImportStopped, job.decodeErr)
		}
		switch err := bc.InsertBlock(job.blk); {
		case err == nil:
			imported++
		case errors.Is(err, ErrKnownBlock):
			// resuming over an overlap: fine
		default:
			return imported, fmt.Errorf("%w: block %d: %v", ErrImportStopped, job.blk.Number(), err)
		}
	}
	return imported, nil
}

// importSerial is the single-threaded import loop: the reference
// semantics the pipeline reproduces, and the path taken on one CPU.
func (bc *Blockchain) importSerial(r io.Reader) (int, error) {
	imported := 0
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return imported, nil
			}
			return imported, err
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size > maxPersistFrame {
			return imported, fmt.Errorf("%w: block frame of %d bytes", ErrImportStopped, size)
		}
		enc := make([]byte, size)
		if _, err := io.ReadFull(r, enc); err != nil {
			return imported, err
		}
		blk, err := DecodeBlock(enc)
		if err != nil {
			return imported, fmt.Errorf("%w: %v", ErrImportStopped, err)
		}
		switch err := bc.InsertBlock(blk); {
		case err == nil:
			imported++
		case errors.Is(err, ErrKnownBlock):
			// resuming over an overlap: fine
		default:
			return imported, fmt.Errorf("%w: block %d: %v", ErrImportStopped, blk.Number(), err)
		}
	}
}
