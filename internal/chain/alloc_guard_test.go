package chain

import (
	"math/big"
	"testing"

	"forkwatch/internal/state"
	"forkwatch/internal/types"
)

// skipUnderRace skips allocation-count assertions when the race detector
// is compiled in: its instrumentation allocates, so counts are only
// meaningful in plain builds (which is what the CI bench job runs).
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

// Allocation guards for the engine's hottest per-block operations. The
// order-of-magnitude speedup of the simulation engine rests on these
// paths staying (near-)allocation-free; testing.AllocsPerRun pins each
// one so an accidental big.Int copy, escaped scratch buffer or dropped
// pool doesn't quietly reappear and only surface as a slow benchmark.

// TestNextDifficultyAllocFree: with a caller-provided destination, the
// difficulty filter must not allocate at all on realistic inputs (the
// int64 fast path), across raise, clamp-limited drop and floor regimes.
func TestNextDifficultyAllocFree(t *testing.T) {
	skipUnderRace(t)
	cfg := MainnetLikeConfig()
	parentDiff := big.NewInt(62_413_376_722_602)
	dst := new(big.Int)
	for _, delta := range []uint64{1, 14, 200, 10_000} {
		delta := delta
		allocs := testing.AllocsPerRun(200, func() {
			NextDifficulty(cfg, 1_469_020_840+delta, 1_469_020_840, 1_920_000, parentDiff, dst)
		})
		if allocs != 0 {
			t.Errorf("NextDifficulty(delta=%d) allocates %.1f/op, want 0", delta, allocs)
		}
	}
}

// TestTxAppendRLPAllocFree: encoding a signed transaction into a
// presized buffer must be zero-alloc, and Encode exactly the one
// exact-size output slice.
func TestTxAppendRLPAllocFree(t *testing.T) {
	skipUnderRace(t)
	to := types.HexToAddress("0xb0b")
	tx := NewTransaction(7, &to, big.NewInt(1_000), 21_000, big.NewInt(20_000_000_000), nil).
		Sign(types.HexToAddress("0xa11ce"), 1)
	buf := make([]byte, 0, tx.EncodedSize())
	if allocs := testing.AllocsPerRun(200, func() {
		buf = tx.appendRLP(buf[:0])
	}); allocs != 0 {
		t.Errorf("appendRLP into presized buffer allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_ = tx.Encode()
	}); allocs != 1 {
		t.Errorf("Encode allocates %.1f/op, want exactly the output slice", allocs)
	}
}

// TestApplyTransactionAllocBudget bounds a plain value transfer through
// the processor. Journal closures and state-object bookkeeping make true
// zero impossible, but the pooled scratch big.Ints, pooled receipts and
// memoized hashes keep the count small and stable; the budget has head
// room for runtime variation, not for a new per-tx allocation source
// (pre-PR-10 this path was ~60/op).
func TestApplyTransactionAllocBudget(t *testing.T) {
	skipUnderRace(t)
	cfg := MainnetLikeConfig()
	p := NewProcessor(cfg)
	st := state.NewEmpty()
	from := types.HexToAddress("0xa11ce")
	to := types.HexToAddress("0xb0b")
	st.AddBalance(from, new(big.Int).Mul(big.NewInt(1000), Ether))

	// Pre-EIP155 signature: the mainnet-like config has no EIP155Block,
	// so replay-domain ids are not yet valid.
	tx := NewTransaction(0, &to, big.NewInt(1_000), 21_000, big.NewInt(1), nil).Sign(from, 0)
	tx.Hash() // memoized: priced once, not per apply
	header := &Header{
		Coinbase:   types.HexToAddress("0x9001"),
		Number:     1_920_001,
		Time:       1_469_020_840,
		Difficulty: big.NewInt(131072),
		GasLimit:   cfg.GasLimit,
	}

	// Warm the receipt/scratch pools before measuring.
	for i := 0; i < 3; i++ {
		st.SetNonce(from, 0)
		rec, _, err := p.ApplyTransaction(tx, st, header, cfg.GasLimit)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseReceipt(rec)
	}

	const budget = 30
	allocs := testing.AllocsPerRun(100, func() {
		st.SetNonce(from, 0) // rewind so the same tx revalidates
		rec, _, err := p.ApplyTransaction(tx, st, header, cfg.GasLimit)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseReceipt(rec)
	})
	if allocs > budget {
		t.Errorf("ApplyTransaction allocates %.1f/op, budget %d", allocs, budget)
	}
}
