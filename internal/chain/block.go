package chain

import (
	"fmt"
	"math/big"
	"sync/atomic"

	"forkwatch/internal/db"
	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/trie"
	"forkwatch/internal/types"
)

// Header carries a block's consensus fields.
type Header struct {
	ParentHash types.Hash
	Number     uint64
	// Time is the miner-declared unix timestamp; the difficulty filter
	// keys off the delta to the parent (paper Fig 1, bottom panel).
	Time       uint64
	Difficulty *big.Int
	GasLimit   uint64
	GasUsed    uint64
	// Coinbase receives the block reward; for pool-mined blocks it is
	// the pool address, which is how the paper attributes blocks to
	// pools (Fig 5).
	Coinbase  types.Address
	StateRoot types.Hash
	TxRoot    types.Hash
	// ReceiptRoot commits to the execution receipts, so peers can prove
	// outcomes (e.g. the contract-call classification) against the
	// header.
	ReceiptRoot types.Hash
	// Extra tags the software/fork the miner ran (the DAO fork blocks
	// famously carried "dao-hard-fork").
	Extra []byte
	// UncleHash commits to the block's uncle-header list (see uncles.go).
	UncleHash types.Hash
	// Nonce and MixDigest are the simulated PoW seal (see pow package).
	Nonce     uint64
	MixDigest types.Hash

	// hash memoizes Hash(). Headers are immutable once sealed — the miner
	// only calls SealHash before sealing, so the full-encoding hash is
	// computed at most once and then shared. atomic.Pointer keeps the memo
	// race-safe for concurrent p2p readers hashing the same header.
	hash atomic.Pointer[types.Hash]
}

// sealFields returns the RLP field list the PoW seal commits to: every
// header field except the seal itself (Nonce, MixDigest). SealHash and
// Encode share this single source of field order.
func (h *Header) sealFields() []rlp.Value {
	return []rlp.Value{
		rlp.Bytes(h.ParentHash.Bytes()),
		rlp.Uint(h.Number),
		rlp.Uint(h.Time),
		rlp.BigInt(h.Difficulty),
		rlp.Uint(h.GasLimit),
		rlp.Uint(h.GasUsed),
		rlp.Bytes(h.Coinbase.Bytes()),
		rlp.Bytes(h.StateRoot.Bytes()),
		rlp.Bytes(h.TxRoot.Bytes()),
		rlp.Bytes(h.ReceiptRoot.Bytes()),
		rlp.Bytes(h.Extra),
		rlp.Bytes(h.UncleHash.Bytes()),
	}
}

// sealPayloadSize and appendSealFields are the append-style twins of
// sealFields; they must stay field-for-field identical to it.
func (h *Header) sealPayloadSize() int {
	return (1 + types.HashLength) + // ParentHash
		rlp.UintSize(h.Number) +
		rlp.UintSize(h.Time) +
		rlp.BigIntSize(h.Difficulty) +
		rlp.UintSize(h.GasLimit) +
		rlp.UintSize(h.GasUsed) +
		(1 + types.AddressLength) + // Coinbase
		3*(1+types.HashLength) + // StateRoot, TxRoot, ReceiptRoot
		rlp.BytesSize(h.Extra) +
		(1 + types.HashLength) // UncleHash
}

func (h *Header) appendSealFields(dst []byte) []byte {
	dst = rlp.AppendBytes(dst, h.ParentHash[:])
	dst = rlp.AppendUint(dst, h.Number)
	dst = rlp.AppendUint(dst, h.Time)
	dst = rlp.AppendBigInt(dst, h.Difficulty)
	dst = rlp.AppendUint(dst, h.GasLimit)
	dst = rlp.AppendUint(dst, h.GasUsed)
	dst = rlp.AppendBytes(dst, h.Coinbase[:])
	dst = rlp.AppendBytes(dst, h.StateRoot[:])
	dst = rlp.AppendBytes(dst, h.TxRoot[:])
	dst = rlp.AppendBytes(dst, h.ReceiptRoot[:])
	dst = rlp.AppendBytes(dst, h.Extra)
	dst = rlp.AppendBytes(dst, h.UncleHash[:])
	return dst
}

// SealHash is the hash the PoW seal commits to (header without the seal
// fields). Not memoized: it is only hashed during mining, before the
// header is final. Encoded into a pooled buffer: zero allocations.
func (h *Header) SealHash() types.Hash {
	bp := rlp.GetBuf()
	buf := rlp.AppendListHeader(*bp, h.sealPayloadSize())
	buf = h.appendSealFields(buf)
	sum := keccak.Sum256Pooled(buf)
	*bp = buf
	rlp.PutBuf(bp)
	return types.BytesToHash(sum[:])
}

// Hash is the block identity: keccak256 of the full header encoding,
// memoized after the first call. Callers must not mutate a header after
// hashing it; mutation flows go through Copy, which drops the memo.
func (h *Header) Hash() types.Hash {
	if p := h.hash.Load(); p != nil {
		return *p
	}
	bp := rlp.GetBuf()
	buf := h.appendRLP(*bp)
	sum := keccak.Sum256Pooled(buf)
	*bp = buf
	rlp.PutBuf(bp)
	hh := types.BytesToHash(sum[:])
	h.hash.Store(&hh)
	return hh
}

// RLP returns the header as a composable RLP value, so containers (block
// encodings, uncle lists) can embed it without re-decoding its encoding.
func (h *Header) RLP() rlp.Value {
	return rlp.List(append(h.sealFields(), rlp.Uint(h.Nonce), rlp.Bytes(h.MixDigest.Bytes()))...)
}

// EncodedSize returns the exact length of Encode's output.
func (h *Header) EncodedSize() int {
	return rlp.ListSize(h.payloadSize())
}

func (h *Header) payloadSize() int {
	return h.sealPayloadSize() + rlp.UintSize(h.Nonce) + (1 + types.HashLength)
}

// appendRLP appends the canonical encoding onto dst; identical bytes to
// rlp.Encode(h.RLP()).
func (h *Header) appendRLP(dst []byte) []byte {
	dst = rlp.AppendListHeader(dst, h.payloadSize())
	dst = h.appendSealFields(dst)
	dst = rlp.AppendUint(dst, h.Nonce)
	dst = rlp.AppendBytes(dst, h.MixDigest[:])
	return dst
}

// Encode returns the canonical RLP encoding of the header in one
// exact-size allocation.
func (h *Header) Encode() []byte {
	return h.appendRLP(make([]byte, 0, h.EncodedSize()))
}

// DecodeHeader parses a header from its RLP encoding.
func DecodeHeader(enc []byte) (*Header, error) {
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("chain: bad header encoding: %w", err)
	}
	return headerFromValue(v)
}

func headerFromValue(v rlp.Value) (*Header, error) {
	items, err := v.ListOf(14)
	if err != nil {
		return nil, fmt.Errorf("chain: bad header structure: %w", err)
	}
	h := &Header{}
	get := func(i int) ([]byte, error) { return items[i].AsBytes() }
	b, err := get(0)
	if err != nil {
		return nil, err
	}
	h.ParentHash = types.BytesToHash(b)
	if h.Number, err = items[1].AsUint(); err != nil {
		return nil, err
	}
	if h.Time, err = items[2].AsUint(); err != nil {
		return nil, err
	}
	if h.Difficulty, err = items[3].AsBigInt(); err != nil {
		return nil, err
	}
	if h.GasLimit, err = items[4].AsUint(); err != nil {
		return nil, err
	}
	if h.GasUsed, err = items[5].AsUint(); err != nil {
		return nil, err
	}
	if b, err = get(6); err != nil {
		return nil, err
	}
	h.Coinbase = types.BytesToAddress(b)
	if b, err = get(7); err != nil {
		return nil, err
	}
	h.StateRoot = types.BytesToHash(b)
	if b, err = get(8); err != nil {
		return nil, err
	}
	h.TxRoot = types.BytesToHash(b)
	if b, err = get(9); err != nil {
		return nil, err
	}
	h.ReceiptRoot = types.BytesToHash(b)
	if h.Extra, err = get(10); err != nil {
		return nil, err
	}
	if b, err = get(11); err != nil {
		return nil, err
	}
	h.UncleHash = types.BytesToHash(b)
	if h.Nonce, err = items[12].AsUint(); err != nil {
		return nil, err
	}
	if b, err = get(13); err != nil {
		return nil, err
	}
	h.MixDigest = types.BytesToHash(b)
	return h, nil
}

// Copy returns a deep copy of the header. The copy is built field by
// field — never by dereferencing the receiver — so the hash memo (which
// embeds a lock-free atomic) stays behind: the caller gets a header it may
// freely mutate and re-hash.
func (h *Header) Copy() *Header {
	return &Header{
		ParentHash:  h.ParentHash,
		Number:      h.Number,
		Time:        h.Time,
		Difficulty:  types.BigCopy(h.Difficulty),
		GasLimit:    h.GasLimit,
		GasUsed:     h.GasUsed,
		Coinbase:    h.Coinbase,
		StateRoot:   h.StateRoot,
		TxRoot:      h.TxRoot,
		ReceiptRoot: h.ReceiptRoot,
		Extra:       append([]byte(nil), h.Extra...),
		UncleHash:   h.UncleHash,
		Nonce:       h.Nonce,
		MixDigest:   h.MixDigest,
	}
}

// Block is a header plus its transaction list and uncle headers.
type Block struct {
	Header *Header
	Txs    []*Transaction
	Uncles []*Header

	// txRoot memoizes ComputedTxRoot(). The transaction list is immutable
	// once the block is built, and the root is a Merkle-Patricia trie
	// build — by far the most expensive part of body validation — so it is
	// computed at most once: the miner warms it in BuildBlock, the import
	// pipeline warms it in a worker, and validateBody reads the memo.
	txRoot atomic.Pointer[types.Hash]
}

// Hash returns the block's identity (the header hash).
func (b *Block) Hash() types.Hash { return b.Header.Hash() }

// ComputedTxRoot returns the Merkle-Patricia root over the block's
// transaction list, memoized after the first call. Callers must not
// mutate Txs after calling it.
func (b *Block) ComputedTxRoot() types.Hash {
	if p := b.txRoot.Load(); p != nil {
		return *p
	}
	root := TxRoot(b.Txs)
	b.txRoot.Store(&root)
	return root
}

// Number returns the block height.
func (b *Block) Number() uint64 { return b.Header.Number }

// Encode returns the RLP encoding of the whole block, composed from the
// parts' append-encoders directly into one exact-size buffer (no decode
// round-trips, nothing to fail).
func (b *Block) Encode() []byte {
	txPayload := 0
	for _, tx := range b.Txs {
		txPayload += tx.EncodedSize()
	}
	unclePayload := 0
	for _, u := range b.Uncles {
		unclePayload += u.EncodedSize()
	}
	payload := b.Header.EncodedSize() + rlp.ListSize(txPayload) + rlp.ListSize(unclePayload)
	dst := make([]byte, 0, rlp.ListSize(payload))
	dst = rlp.AppendListHeader(dst, payload)
	dst = b.Header.appendRLP(dst)
	dst = rlp.AppendListHeader(dst, txPayload)
	for _, tx := range b.Txs {
		dst = tx.appendRLP(dst)
	}
	dst = rlp.AppendListHeader(dst, unclePayload)
	for _, u := range b.Uncles {
		dst = u.appendRLP(dst)
	}
	return dst
}

// DecodeBlock parses a block from its RLP encoding.
func DecodeBlock(enc []byte) (*Block, error) {
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("chain: bad block encoding: %w", err)
	}
	items, err := v.ListOf(3)
	if err != nil {
		return nil, fmt.Errorf("chain: bad block structure: %w", err)
	}
	h, err := headerFromValue(items[0])
	if err != nil {
		return nil, err
	}
	txItems, err := items[1].AsList()
	if err != nil {
		return nil, err
	}
	blk := &Block{Header: h}
	for _, tv := range txItems {
		tx, err := txFromValue(tv)
		if err != nil {
			return nil, err
		}
		blk.Txs = append(blk.Txs, tx)
	}
	uncleItems, err := items[2].AsList()
	if err != nil {
		return nil, err
	}
	for _, uv := range uncleItems {
		u, err := headerFromValue(uv)
		if err != nil {
			return nil, err
		}
		blk.Uncles = append(blk.Uncles, u)
	}
	return blk, nil
}

// ReceiptRoot computes the Merkle-Patricia root over the receipt list,
// keyed by RLP(index) as in Ethereum. The trie is built over a throwaway
// ephemeral store: only the root survives the call.
func ReceiptRoot(receipts []*Receipt) types.Hash {
	tr := trie.NewEmpty(db.NewEphemeral())
	var kb [9]byte
	for i, r := range receipts {
		key := rlp.AppendUint(kb[:0], uint64(i))
		if err := tr.Update(key, r.Encode()); err != nil {
			panic(err) // fresh ephemeral store: no faults, nothing to resolve
		}
	}
	root, err := tr.Hash()
	if err != nil {
		panic(err) // ephemeral batch writes cannot fail
	}
	return root
}

// TxRoot computes the Merkle-Patricia root over the transaction list,
// keyed by RLP(index) as in Ethereum. Uses an ephemeral store like
// ReceiptRoot.
func TxRoot(txs []*Transaction) types.Hash {
	tr := trie.NewEmpty(db.NewEphemeral())
	var kb [9]byte
	for i, tx := range txs {
		key := rlp.AppendUint(kb[:0], uint64(i))
		if err := tr.Update(key, tx.Encode()); err != nil {
			panic(err) // fresh ephemeral store: no faults, nothing to resolve
		}
	}
	root, err := tr.Hash()
	if err != nil {
		panic(err) // ephemeral batch writes cannot fail
	}
	return root
}
