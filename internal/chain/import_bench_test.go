package chain

import (
	"bytes"
	"fmt"
	"testing"
)

// buildBenchExport mines a chain with transfer traffic and returns its
// export stream.
func buildBenchExport(b *testing.B, blocks, txsPer int) []byte {
	b.Helper()
	bc, err := NewBlockchain(MainnetLikeConfig(), testGenesis())
	if err != nil {
		b.Fatal(err)
	}
	nonce := uint64(0)
	for i := 0; i < blocks; i++ {
		txs := make([]*Transaction, txsPer)
		for j := range txs {
			txs[j] = transfer(nonce, alice, bob, 1, 0)
			nonce++
		}
		blk, err := bc.BuildBlock(pool1, bc.Head().Header.Time+14, txs)
		if err != nil {
			b.Fatal(err)
		}
		if err := bc.InsertBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := bc.WriteChain(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkImportChainWorkers measures the pipelined import at different
// decode/precache worker counts; workers=1 is the serial reference. The
// insert path (state execution, WAL commit) stays ordered in every
// variant, so the delta isolates the fanned-out decode + keccak +
// signature + tx-root work.
func BenchmarkImportChainWorkers(b *testing.B) {
	enc := buildBenchExport(b, 50, 20)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(enc)))
			for i := 0; i < b.N; i++ {
				dst, err := NewBlockchain(MainnetLikeConfig(), testGenesis())
				if err != nil {
					b.Fatal(err)
				}
				n, err := dst.ImportChainWorkers(bytes.NewReader(enc), workers)
				if err != nil {
					b.Fatal(err)
				}
				if n != 50 {
					b.Fatalf("imported %d blocks, want 50", n)
				}
			}
		})
	}
}
