package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"forkwatch/internal/db"
	"forkwatch/internal/rlp"
	"forkwatch/internal/trie"
)

// Write-ahead log: the crash-consistency protocol of the chain store.
//
// Problem: one block's persistence spans many keys (block body, receipts,
// total difficulty, state root, canonical index entries, the head marker).
// A batch write of those keys is atomic on a healthy device, but a crash
// mid-write (a torn batch, see db/faultkv) can leave any subset applied —
// a head marker pointing at a missing block, a canonical index entry for
// a body that never landed.
//
// Protocol, per committed block:
//
//  1. The state trie batch commits first (state.DB.Commit). Trie nodes
//     are content-addressed, so a tear here leaves only invisible garbage
//     — no chain record references the new root yet.
//  2. The block's chain records are staged in a WALBatch, then the whole
//     operation list is written as ONE checksummed record under a WAL
//     slot key with a single Put. Puts are atomic even on a torn device,
//     so this write is THE commit point: the block is committed iff its
//     WAL record is durable.
//  3. The staged operations are applied through a normal (best-effort
//     atomic) batch. A tear here is repaired on reopen by redoing the WAL
//     record — every operation is a blind write, so redo is idempotent.
//  4. After the batch applies, a single Put advances the applied
//     watermark ('w'+'a' -> seq). Recovery redoes the newest valid record
//     only when the watermark lags it; a record wholly applied before its
//     at-rest copy bit-rotted is thereby never "repaired" backwards by
//     replaying its predecessor.
//
// The log is a two-slot ring ('w'+0, 'w'+1): record seq lands in slot
// seq%2, naturally pruning the record before last by overwrite. Recovery
// (RecoverWAL) reads both slots, redoes the newest valid record (older
// records are necessarily fully applied already), truncates (deletes)
// records that fail their checksum, and then verifies the head invariant. A store that is still inconsistent after
// redo — only possible under double faults like bit-rot of the newest WAL
// record on top of a torn batch — surfaces ErrCorruptStore, and the
// caller falls back to re-import/resync.
//
// Record layout: 4-byte big-endian CRC-32 (IEEE) over the payload,
// followed by the payload: RLP [seq, [[key, value, del], ...]].

// ErrCorruptStore reports a chain store that WAL recovery cannot repair:
// the surviving records are inconsistent (missing bodies, broken canon
// links, unreadable head). The only way forward is re-import or resync.
var ErrCorruptStore = errors.New("chain: store corrupt beyond WAL recovery")

// walSlots is the ring size: the live record plus its predecessor.
const walSlots = 2

func walSlotKey(slot uint64) []byte {
	return []byte{prefixWAL, byte(slot)}
}

// keyWALApplied is the applied watermark: the highest seq whose batch has
// fully applied, as 8 big-endian bytes.
var keyWALApplied = []byte{prefixWAL, 'a'}

// walOp is one staged store mutation.
type walOp struct {
	Key   []byte
	Value []byte
	Del   bool
}

// WALBatch stages one block's chain records for a WAL-protected commit.
// It implements db.Batch so the Store.Put* helpers queue into it, but the
// staged operations only reach the device through Store.CommitWAL.
type WALBatch struct {
	ops  []walOp
	size int
}

// NewWALBatch returns an empty staging batch.
func (s *Store) NewWALBatch() *WALBatch { return &WALBatch{} }

// Put implements db.Batch.
func (b *WALBatch) Put(key, value []byte) {
	b.ops = append(b.ops, walOp{Key: append([]byte(nil), key...), Value: value})
	b.size += len(value)
}

// Delete implements db.Batch.
func (b *WALBatch) Delete(key []byte) {
	b.ops = append(b.ops, walOp{Key: append([]byte(nil), key...), Del: true})
}

// Len implements db.Batch.
func (b *WALBatch) Len() int { return len(b.ops) }

// ValueSize implements db.Batch.
func (b *WALBatch) ValueSize() int { return b.size }

// Reset implements db.Batch.
func (b *WALBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// Write implements db.Batch. Staged batches must go through
// Store.CommitWAL, which owns the commit protocol.
func (b *WALBatch) Write() error {
	return errors.New("chain: WALBatch must be committed via Store.CommitWAL")
}

// CommitWAL runs the commit protocol for the staged operations: write the
// checksummed WAL record (the atomic commit point), then apply the
// operations.
//
// A nil return means the block is durably committed AND fully applied. An
// error before the record landed means nothing committed. An error after
// — reported as committed-but-torn via the underlying crash error — means
// the commit is durable and RecoverWAL will finish applying it on reopen.
func (s *Store) CommitWAL(b *WALBatch) error {
	seq := s.walSeq + 1
	rec := encodeWALRecord(seq, b.ops)
	if err := s.kv.Put(walSlotKey(seq%walSlots), rec); err != nil {
		return fmt.Errorf("chain: writing WAL record %d: %w", seq, err)
	}
	s.walSeq = seq

	batch := s.kv.NewBatch()
	for _, op := range b.ops {
		if op.Del {
			batch.Delete(op.Key)
		} else {
			batch.Put(op.Key, op.Value)
		}
	}
	if err := batch.Write(); err != nil {
		return fmt.Errorf("chain: applying WAL record %d (committed, recoverable): %w", seq, err)
	}
	if err := s.putApplied(seq); err != nil {
		// The record is durable and applied; only the watermark lagged. A
		// reopen redoes the record, which is idempotent.
		return fmt.Errorf("chain: advancing WAL watermark to %d (committed, recoverable): %w", seq, err)
	}
	return nil
}

func (s *Store) putApplied(seq uint64) error {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], seq)
	return s.kv.Put(keyWALApplied, enc[:])
}

// RecoverWAL repairs the store after a crash: records failing their
// checksum are truncated, the newest valid record is redone (idempotent
// blind writes) if the applied watermark lags it, and the head invariant
// is verified. Returns ErrCorruptStore when the store remains
// inconsistent after redo.
//
// Only the newest record is ever a redo candidate: commits are
// serialized, and a torn apply crashes the store, so any older record's
// batch must have fully applied before the newer commit began. The
// watermark guards the converse hazard — a record wholly applied whose
// at-rest copy then bit-rotted must not be "repaired" backwards by
// replaying its surviving predecessor.
func (s *Store) RecoverWAL() error {
	type slotRec struct {
		seq uint64
		ops []walOp
	}
	var recs []slotRec
	for slot := uint64(0); slot < walSlots; slot++ {
		enc, ok, err := s.kv.Get(walSlotKey(slot))
		if err != nil {
			return fmt.Errorf("chain: reading WAL slot %d: %w", slot, err)
		}
		if !ok {
			continue
		}
		seq, ops, err := decodeWALRecord(enc)
		if err != nil {
			// Bit-rot in a WAL record: truncate it. If it was the newest
			// record and its batch tore, the head check below catches the
			// inconsistency.
			if derr := s.kv.Delete(walSlotKey(slot)); derr != nil {
				return fmt.Errorf("chain: truncating WAL slot %d: %w", slot, derr)
			}
			continue
		}
		recs = append(recs, slotRec{seq: seq, ops: ops})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })

	var applied uint64
	if enc, ok, err := s.kv.Get(keyWALApplied); err != nil {
		return fmt.Errorf("chain: reading WAL watermark: %w", err)
	} else if ok && len(enc) == 8 {
		applied = binary.BigEndian.Uint64(enc)
	}

	s.walSeq = applied
	if len(recs) > 0 {
		newest := recs[len(recs)-1]
		if newest.seq > applied {
			batch := s.kv.NewBatch()
			for _, op := range newest.ops {
				if op.Del {
					batch.Delete(op.Key)
				} else {
					batch.Put(op.Key, op.Value)
				}
			}
			if err := batch.Write(); err != nil {
				return fmt.Errorf("chain: redoing WAL record %d: %w", newest.seq, err)
			}
			if err := s.putApplied(newest.seq); err != nil {
				return fmt.Errorf("chain: advancing WAL watermark to %d: %w", newest.seq, err)
			}
		}
		if newest.seq > s.walSeq {
			s.walSeq = newest.seq
		}
	}
	return s.verifyHead()
}

// verifyHead checks the durable head invariant after recovery: the head
// marker resolves to a decodable block whose canonical index entry, state
// root record and committed state trie root are all present.
func (s *Store) verifyHead() error {
	headHash, ok, err := s.Head()
	if err != nil {
		return err
	}
	if !ok {
		return nil // empty store: nothing committed, nothing to verify
	}
	head, ok, err := s.Block(headHash)
	if err != nil || !ok {
		return fmt.Errorf("%w: head block %s unreadable (%v)", ErrCorruptStore, headHash, err)
	}
	canon, ok, err := s.CanonHash(head.Number())
	if err != nil || !ok || canon != headHash {
		return fmt.Errorf("%w: canon index at %d does not match head %s (%v)", ErrCorruptStore, head.Number(), headHash, err)
	}
	root, ok, err := s.StateRoot(headHash)
	if err != nil || !ok {
		return fmt.Errorf("%w: no state root for head %s (%v)", ErrCorruptStore, headHash, err)
	}
	// An empty trie stores no root node (its EmptyRoot is implicit), so
	// only non-empty states are probed.
	if !root.IsZero() && root != trie.EmptyRoot {
		hasRoot, err := s.kv.Has(root.Bytes())
		if err != nil {
			return fmt.Errorf("chain: probing head state root: %w", err)
		}
		if !hasRoot {
			return fmt.Errorf("%w: head state root %s missing from store", ErrCorruptStore, root)
		}
	}
	return nil
}

// encodeWALRecord serialises one record: crc32(payload) || payload with
// payload = RLP [seq, [[key, value, del], ...]].
func encodeWALRecord(seq uint64, ops []walOp) []byte {
	items := make([]rlp.Value, len(ops))
	for i, op := range ops {
		del := uint64(0)
		if op.Del {
			del = 1
		}
		items[i] = rlp.List(rlp.Bytes(op.Key), rlp.Bytes(op.Value), rlp.Uint(del))
	}
	payload := rlp.EncodeList(rlp.Uint(seq), rlp.List(items...))
	rec := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(rec, crc32.ChecksumIEEE(payload))
	copy(rec[4:], payload)
	return rec
}

// decodeWALRecord inverts encodeWALRecord, failing (with db.ErrCorrupt)
// on checksum or structure mismatch.
func decodeWALRecord(enc []byte) (uint64, []walOp, error) {
	if len(enc) < 4 {
		return 0, nil, fmt.Errorf("%w: WAL record of %d bytes", db.ErrCorrupt, len(enc))
	}
	payload := enc[4:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(enc) {
		return 0, nil, fmt.Errorf("%w: WAL record checksum mismatch", db.ErrCorrupt)
	}
	v, err := rlp.Decode(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: WAL record payload: %v", db.ErrCorrupt, err)
	}
	items, err := v.ListOf(2)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: WAL record structure: %v", db.ErrCorrupt, err)
	}
	seq, err := items[0].AsUint()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: WAL record seq: %v", db.ErrCorrupt, err)
	}
	opItems, err := items[1].AsList()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: WAL record ops: %v", db.ErrCorrupt, err)
	}
	ops := make([]walOp, 0, len(opItems))
	for _, it := range opItems {
		f, err := it.ListOf(3)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: WAL op structure: %v", db.ErrCorrupt, err)
		}
		key, err := f[0].AsBytes()
		if err != nil {
			return 0, nil, fmt.Errorf("%w: WAL op key: %v", db.ErrCorrupt, err)
		}
		val, err := f[1].AsBytes()
		if err != nil {
			return 0, nil, fmt.Errorf("%w: WAL op value: %v", db.ErrCorrupt, err)
		}
		del, err := f[2].AsUint()
		if err != nil || del > 1 {
			return 0, nil, fmt.Errorf("%w: WAL op del flag: %v", db.ErrCorrupt, err)
		}
		ops = append(ops, walOp{Key: key, Value: val, Del: del == 1})
	}
	return seq, ops, nil
}
