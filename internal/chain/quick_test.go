package chain

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"forkwatch/internal/types"
)

// quickTx generates structurally valid random transactions for
// property-based tests.
func quickTx(r *rand.Rand) *Transaction {
	var to *types.Address
	if r.Intn(4) > 0 {
		a := types.BytesToAddress([]byte{byte(r.Intn(256)), byte(r.Intn(256))})
		to = &a
	}
	data := make([]byte, r.Intn(64))
	r.Read(data)
	tx := NewTransaction(
		uint64(r.Intn(1000)),
		to,
		big.NewInt(r.Int63n(1_000_000)),
		21_000+uint64(r.Intn(500_000)),
		big.NewInt(1+r.Int63n(100)),
		data,
	)
	from := types.BytesToAddress([]byte{0xee, byte(r.Intn(256))})
	chainID := uint64(0)
	if r.Intn(2) == 1 {
		chainID = uint64(1 + r.Intn(100))
	}
	return tx.Sign(from, chainID)
}

// Property: transaction encode/decode is the identity (same hash, same
// fields, signature still valid).
func TestQuickTxRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tx := quickTx(r)
		dec, err := DecodeTx(tx.Encode())
		if err != nil {
			t.Fatalf("decode: %v (%+v)", err, tx)
		}
		if dec.Hash() != tx.Hash() {
			t.Fatal("hash changed across encode/decode")
		}
		if err := dec.VerifySig(); err != nil {
			t.Fatalf("signature broken across encode/decode: %v", err)
		}
		if !reflect.DeepEqual(dec.Value, tx.Value) || dec.Nonce != tx.Nonce || dec.ChainID != tx.ChainID {
			t.Fatal("fields changed across encode/decode")
		}
	}
}

// Property: header encode/decode is the identity on the hash.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(parent types.Hash, num, tm, gasUsed uint64, coinbase types.Address, diff uint32, extra []byte) bool {
		h := &Header{
			ParentHash: parent,
			Number:     num,
			Time:       tm,
			Difficulty: big.NewInt(int64(diff) + 1),
			GasLimit:   4_700_000,
			GasUsed:    gasUsed,
			Coinbase:   coinbase,
			StateRoot:  parent,
			TxRoot:     parent,
			Extra:      extra,
			Nonce:      num ^ tm,
			MixDigest:  parent,
		}
		dec, err := DecodeHeader(h.Encode())
		if err != nil {
			return false
		}
		return dec.Hash() == h.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the difficulty filter is monotone in the parent difficulty
// and anti-monotone in the elapsed time, and never goes below the
// minimum.
func TestQuickDifficultyProperties(t *testing.T) {
	cfg := MainnetLikeConfig()
	f := func(d1, d2 uint32, delta1, delta2 uint16) bool {
		base := int64(200_000)
		pa := &Header{Time: 1000, Difficulty: big.NewInt(base + int64(d1))}
		pb := &Header{Time: 1000, Difficulty: big.NewInt(base + int64(d1) + int64(d2) + 1)}
		tm := uint64(1001 + delta1)

		// Monotone in parent difficulty.
		da := CalcDifficulty(cfg, tm, pa)
		db := CalcDifficulty(cfg, tm, pb)
		if da.Cmp(db) > 0 {
			return false
		}
		// Anti-monotone in elapsed time.
		later := tm + uint64(delta2)
		dLater := CalcDifficulty(cfg, later, pa)
		if dLater.Cmp(da) > 0 {
			return false
		}
		// Floor.
		return da.Cmp(cfg.MinimumDifficulty) >= 0 && dLater.Cmp(cfg.MinimumDifficulty) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TxRoot is order-sensitive (it commits to position) and
// deterministic.
func TestQuickTxRootProperties(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		n := 2 + r.Intn(6)
		txs := make([]*Transaction, n)
		for j := range txs {
			txs[j] = quickTx(r)
		}
		root1 := TxRoot(txs)
		root2 := TxRoot(txs)
		if root1 != root2 {
			t.Fatal("TxRoot not deterministic")
		}
		// Swap two distinct transactions: the root must change.
		if txs[0].Hash() != txs[1].Hash() {
			swapped := append([]*Transaction(nil), txs...)
			swapped[0], swapped[1] = swapped[1], swapped[0]
			if TxRoot(swapped) == root1 {
				t.Fatal("TxRoot insensitive to ordering")
			}
		}
	}
	if TxRoot(nil) != TxRoot([]*Transaction{}) {
		t.Fatal("empty tx root should be stable")
	}
}

// Property: mining a block with no transactions changes exactly one
// balance (the coinbase) by exactly the reward.
func TestQuickEmptyBlockConservation(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	for i := 0; i < 20; i++ {
		cb := types.BytesToAddress([]byte{0x90, byte(i)})
		before, err := bc.HeadState()
		if err != nil {
			t.Fatal(err)
		}
		beforeBal := before.GetBalance(cb)
		b, err := bc.BuildBlock(cb, bc.Head().Header.Time+uint64(5+i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := bc.InsertBlock(b); err != nil {
			t.Fatal(err)
		}
		after, err := bc.HeadState()
		if err != nil {
			t.Fatal(err)
		}
		gain := new(big.Int).Sub(after.GetBalance(cb), beforeBal)
		if gain.Cmp(bc.Config().BlockReward) != 0 {
			t.Fatalf("coinbase gained %v, want %v", gain, bc.Config().BlockReward)
		}
	}
}
