// Package chain implements the blockchain substrate both partitions run
// on: blocks, transactions, the Homestead difficulty-adjustment rule,
// transaction execution, total-difficulty fork choice and a transaction
// pool.
//
// The ETH/ETC split is expressed entirely through Config: both chains
// share a genesis and a common prefix; at DAOForkBlock the chain with
// DAOForkSupport=true applies the irregular state change (and marks its
// fork id), while the other keeps the attacker's balances. EIP155Block
// retrofits replay protection, which is what eventually suppresses the
// echo traffic of Fig 4.
package chain

import (
	"math/big"

	"forkwatch/internal/types"
)

// Ether is the base currency unit in wei.
var Ether = new(big.Int).Exp(big.NewInt(10), big.NewInt(18), nil)

// Config selects the consensus rules of one partition.
type Config struct {
	// Name labels the chain in analysis output ("ETH", "ETC").
	Name string
	// ChainID is the EIP-155 replay-protection domain (1 for ETH, 61
	// for ETC).
	ChainID uint64

	// TargetBlockTime is the block interval the difficulty filter aims
	// for, 14 seconds in Ethereum (the paper quotes 14s).
	TargetBlockTime uint64
	// DifficultyBoundDivisor caps the per-block difficulty step (2048).
	DifficultyBoundDivisor *big.Int
	// MinimumDifficulty floors the difficulty (131072).
	MinimumDifficulty *big.Int
	// DifficultyClampFactor is the largest downward adjustment multiple
	// (99 in Homestead: max decrease is 99/2048 per block). The ablation
	// bench varies this; see DESIGN.md §5.
	DifficultyClampFactor int64
	// EnableBomb adds the exponential "ice age" term to the difficulty.
	// Disabled by default: it is provably negligible over the paper's
	// measurement window (see TestBombNegligibleInStudyWindow).
	EnableBomb bool

	// BlockReward is the coinbase subsidy per block (5 ether at the
	// fork).
	BlockReward *big.Int
	// GasLimit is the gas-limit *target* miners vote toward. Per block
	// the limit may move by at most parent/GasLimitBoundDivisor, as in
	// Ethereum; BuildBlock walks it toward this target.
	GasLimit uint64

	// DAOForkBlock is the height of the DAO hard fork; nil disables it.
	DAOForkBlock *big.Int
	// DAOForkSupport selects the pro-fork rules (ETH) when true, the
	// classic rules (ETC) when false. Chains with different support
	// flags at the fork block refuse each other's blocks from that
	// height on.
	DAOForkSupport bool
	// DAODrainList enumerates the accounts whose balances the
	// supporting chain moves to DAORefundContract at the fork block.
	DAODrainList []types.Address
	// DAORefundContract receives the drained balances.
	DAORefundContract types.Address

	// EIP155Block activates chain-id replay protection; nil disables.
	// (ETH: Spurious Dragon, Nov 2016; ETC: Jan 13 2017, per the paper.)
	EIP155Block *big.Int
}

// MainnetLikeConfig returns the shared pre-fork rule set. Callers derive
// the two partitions with ETHConfig/ETCConfig.
func MainnetLikeConfig() *Config {
	return &Config{
		Name:                   "PRE",
		ChainID:                1,
		TargetBlockTime:        14,
		DifficultyBoundDivisor: big.NewInt(2048),
		MinimumDifficulty:      big.NewInt(131072),
		DifficultyClampFactor:  99,
		BlockReward:            new(big.Int).Mul(big.NewInt(5), Ether),
		GasLimit:               4_700_000,
	}
}

// PartitionConfig derives one partition's rule set from the shared
// pre-fork rules: every partition forks at daoForkBlock, and the support
// flag decides whether the irregular state change applies (drain and
// refund are only wired into supporting chains). ETHConfig and ETCConfig
// are the two historical instantiations.
func PartitionConfig(name string, chainID uint64, daoForkBlock uint64, support bool, drain []types.Address, refund types.Address) *Config {
	c := MainnetLikeConfig()
	c.Name = name
	c.ChainID = chainID
	c.DAOForkBlock = new(big.Int).SetUint64(daoForkBlock)
	c.DAOForkSupport = support
	if support {
		c.DAODrainList = drain
		c.DAORefundContract = refund
	}
	return c
}

// ETHConfig returns the pro-fork (Ethereum) rule set.
func ETHConfig(daoForkBlock uint64, drain []types.Address, refund types.Address) *Config {
	return PartitionConfig("ETH", 1, daoForkBlock, true, drain, refund)
}

// ETCConfig returns the anti-fork (Ethereum Classic) rule set.
func ETCConfig(daoForkBlock uint64) *Config {
	return PartitionConfig("ETC", 61, daoForkBlock, false, nil, types.Address{})
}

// IsDAOFork reports whether num is the DAO fork block.
func (c *Config) IsDAOFork(num *big.Int) bool {
	return c.DAOForkBlock != nil && c.DAOForkBlock.Cmp(num) == 0
}

// PastDAOFork reports whether num is at or beyond the DAO fork block.
func (c *Config) PastDAOFork(num *big.Int) bool {
	return c.DAOForkBlock != nil && c.DAOForkBlock.Cmp(num) <= 0
}

// IsEIP155 reports whether replay protection is active at num.
func (c *Config) IsEIP155(num *big.Int) bool {
	return c.EIP155Block != nil && c.EIP155Block.Cmp(num) <= 0
}

// ForkID summarises the rule set a peer enforces at its head; the p2p
// status handshake compares fork ids and drops peers on the other side of
// the partition (the mechanism behind the paper's observation O1).
type ForkID struct {
	DAOForkBlock   uint64
	DAOForkSupport bool
}

// ForkIDAt returns the chain's fork id given its head number.
func (c *Config) ForkIDAt(head *big.Int) ForkID {
	if c.DAOForkBlock == nil || c.DAOForkBlock.Cmp(head) > 0 {
		// Not yet at the fork: still compatible with both sides.
		return ForkID{}
	}
	return ForkID{DAOForkBlock: c.DAOForkBlock.Uint64(), DAOForkSupport: c.DAOForkSupport}
}

// Compatible reports whether two fork ids can stay peered.
func (f ForkID) Compatible(o ForkID) bool {
	if f.DAOForkBlock == 0 || o.DAOForkBlock == 0 {
		return true // at least one side has not reached the fork
	}
	return f == o
}
