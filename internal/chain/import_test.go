package chain

import (
	"bytes"
	"errors"
	"testing"
)

// exportTestChain builds a chain with traffic and returns its export
// stream alongside the source.
func exportTestChain(t *testing.T, blocks int) (*Blockchain, []byte) {
	t.Helper()
	src := newTestChain(t, MainnetLikeConfig())
	for i := 0; i < blocks; i++ {
		mine(t, src, 14, transfer(uint64(i), alice, bob, int64(i+1), 0))
	}
	var buf bytes.Buffer
	if err := src.WriteChain(&buf); err != nil {
		t.Fatal(err)
	}
	return src, buf.Bytes()
}

func TestImportChainWorkersMatchesSerial(t *testing.T) {
	src, enc := exportTestChain(t, 12)
	for _, workers := range []int{1, 2, 4, 8} {
		dst := newTestChain(t, MainnetLikeConfig())
		n, err := dst.ImportChainWorkers(bytes.NewReader(enc), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != 12 {
			t.Fatalf("workers=%d imported %d blocks, want 12", workers, n)
		}
		if dst.Head().Hash() != src.Head().Hash() {
			t.Fatalf("workers=%d: imported head differs from source", workers)
		}
	}
}

func TestImportChainWorkersErrorPosition(t *testing.T) {
	_, enc := exportTestChain(t, 8)
	// Corrupt the last frame's payload: flipping trailing bytes breaks the
	// final block's RLP or its validation, after 7 clean imports.
	corrupt := append([]byte(nil), enc...)
	for i := len(corrupt) - 8; i < len(corrupt); i++ {
		corrupt[i] ^= 0xff
	}
	serialDst := newTestChain(t, MainnetLikeConfig())
	serialN, serialErr := serialDst.ImportChainWorkers(bytes.NewReader(corrupt), 1)
	pipeDst := newTestChain(t, MainnetLikeConfig())
	pipeN, pipeErr := pipeDst.ImportChainWorkers(bytes.NewReader(corrupt), 4)
	if (serialErr == nil) != (pipeErr == nil) {
		t.Fatalf("serial err %v vs pipeline err %v", serialErr, pipeErr)
	}
	if serialErr == nil {
		t.Fatal("corrupted stream imported cleanly")
	}
	if !errors.Is(pipeErr, ErrImportStopped) && pipeErr.Error() != serialErr.Error() {
		t.Fatalf("pipeline error %v, want ErrImportStopped or the serial error %v", pipeErr, serialErr)
	}
	if serialN != pipeN {
		t.Fatalf("serial imported %d before failing, pipeline %d", serialN, pipeN)
	}
}

func TestImportChainWorkersTruncatedStream(t *testing.T) {
	_, enc := exportTestChain(t, 6)
	// Cut the stream mid-frame: both paths should surface the raw read
	// error (not ErrImportStopped) after the same number of imports.
	cut := enc[:len(enc)-5]
	serialDst := newTestChain(t, MainnetLikeConfig())
	serialN, serialErr := serialDst.ImportChainWorkers(bytes.NewReader(cut), 1)
	pipeDst := newTestChain(t, MainnetLikeConfig())
	pipeN, pipeErr := pipeDst.ImportChainWorkers(bytes.NewReader(cut), 4)
	if serialErr == nil || pipeErr == nil {
		t.Fatalf("truncated stream: serial err %v, pipeline err %v", serialErr, pipeErr)
	}
	if errors.Is(pipeErr, ErrImportStopped) {
		t.Fatalf("truncation misreported as invalid block: %v", pipeErr)
	}
	if serialN != pipeN {
		t.Fatalf("serial imported %d before truncation, pipeline %d", serialN, pipeN)
	}
}

func TestImportChainWorkersGarbage(t *testing.T) {
	dst := newTestChain(t, MainnetLikeConfig())
	if _, err := dst.ImportChainWorkers(bytes.NewReader([]byte{0, 0, 0, 3, 1, 2, 3}), 4); !errors.Is(err, ErrImportStopped) {
		t.Errorf("garbage import: err = %v", err)
	}
	if _, err := dst.ImportChainWorkers(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), 4); !errors.Is(err, ErrImportStopped) {
		t.Errorf("absurd frame import: err = %v", err)
	}
}

func TestPrecacheBlockWarmsMemos(t *testing.T) {
	src, _ := exportTestChain(t, 3)
	b, ok := src.BlockByNumber(2)
	if !ok {
		t.Fatal("missing block 2")
	}
	PrecacheBlock(b)
	if got := b.ComputedTxRoot(); got != b.Header.TxRoot {
		t.Fatalf("precached tx root %x, header says %x", got, b.Header.TxRoot)
	}
	for _, tx := range b.Txs {
		if err := tx.VerifySig(); err != nil {
			t.Fatalf("precached tx failed verify: %v", err)
		}
	}
}
