//go:build !race

package chain

const raceEnabled = false
