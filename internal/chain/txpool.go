package chain

import (
	"math/big"
	"sort"
	"sync"

	"forkwatch/internal/types"
)

// TxPool holds pending transactions for one chain and selects executable
// ones for block building. Replayed (echoed) transactions enter a chain
// through this pool exactly like native ones — if the sender's nonce and
// balance on *this* chain still admit the transaction, it is accepted,
// which is the vulnerability the paper quantifies in Fig 4.
type TxPool struct {
	bc *Blockchain

	mu      sync.Mutex
	pending map[types.Address][]*Transaction // per sender, nonce-sorted
	known   map[types.Hash]bool
}

// NewTxPool returns an empty pool bound to bc.
func NewTxPool(bc *Blockchain) *TxPool {
	return &TxPool{
		bc:      bc,
		pending: make(map[types.Address][]*Transaction),
		known:   make(map[types.Hash]bool),
	}
}

// Add validates tx against the head state and queues it. Transactions with
// future nonces are queued; stale or unfunded ones are rejected.
func (p *TxPool) Add(tx *Transaction) error {
	p.mu.Lock()
	defer p.mu.Unlock()

	hash := tx.Hash()
	if p.known[hash] {
		return ErrKnownTx
	}
	st, err := p.bc.HeadState()
	if err != nil {
		return err
	}
	headNum := new(big.Int).SetUint64(p.bc.Head().Number() + 1)
	proc := p.bc.Processor()
	if err := proc.ValidateTx(tx, st, headNum); err != nil {
		// Future nonces are admissible in the pool; everything else is
		// not.
		if tx.Nonce > st.GetNonce(tx.From) && tx.VerifySig() == nil {
			// fall through to queueing
		} else {
			return err
		}
	}
	p.known[hash] = true
	list := append(p.pending[tx.From], tx)
	sort.Slice(list, func(i, j int) bool { return list[i].Nonce < list[j].Nonce })
	p.pending[tx.From] = list
	return nil
}

// Has reports whether the pool has seen the transaction.
func (p *TxPool) Has(h types.Hash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.known[h]
}

// Len returns the number of queued transactions.
func (p *TxPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, l := range p.pending {
		n += len(l)
	}
	return n
}

// Pending returns an executable transaction sequence for the next block:
// per sender, consecutive nonces starting at the account nonce, stopping
// when the cumulative gas limit would overflow the block. Senders are
// visited in deterministic address order so simulation runs reproduce.
func (p *TxPool) Pending() []*Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()

	st, err := p.bc.HeadState()
	if err != nil {
		return nil
	}
	headNum := new(big.Int).SetUint64(p.bc.Head().Number() + 1)
	proc := p.bc.Processor()

	senders := make([]types.Address, 0, len(p.pending))
	for a := range p.pending {
		senders = append(senders, a)
	}
	sort.Slice(senders, func(i, j int) bool {
		return string(senders[i].Bytes()) < string(senders[j].Bytes())
	})

	var out []*Transaction
	gasLeft := p.bc.Config().GasLimit
	for _, sender := range senders {
		nonce := st.GetNonce(sender)
		for _, tx := range p.pending[sender] {
			if tx.Nonce < nonce {
				continue // stale, removed on next Reset
			}
			if tx.Nonce > nonce {
				break // gap
			}
			if err := proc.ValidateTx(tx, st, headNum); err != nil {
				break
			}
			if tx.GasLimit > gasLeft {
				break
			}
			out = append(out, tx)
			gasLeft -= tx.GasLimit
			nonce++
			// Track the spend so later txs from the same sender are
			// validated against remaining funds.
			st.SubBalance(sender, types.BigMin(tx.Cost(), st.GetBalance(sender)))
			st.SetNonce(sender, nonce)
		}
	}
	return out
}

// Reset drops transactions that became invalid after a new head: executed
// nonces and transactions that no longer validate (e.g. replays after
// EIP-155 activation).
func (p *TxPool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()

	st, err := p.bc.HeadState()
	if err != nil {
		return
	}
	for sender, list := range p.pending {
		nonce := st.GetNonce(sender)
		kept := list[:0]
		for _, tx := range list {
			if tx.Nonce >= nonce {
				kept = append(kept, tx)
			} else {
				delete(p.known, tx.Hash())
			}
		}
		if len(kept) == 0 {
			delete(p.pending, sender)
		} else {
			p.pending[sender] = kept
		}
	}
}
