package chain

import (
	"testing"

	"forkwatch/internal/db"
	"forkwatch/internal/types"
)

func TestTxIndexLookup(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	tx0 := transfer(0, alice, bob, 10, 0)
	tx1 := transfer(1, alice, bob, 20, 0)
	b1 := mine(t, bc, 14, tx0)
	b2 := mine(t, bc, 14, tx1)

	got, blockHash, num, idx, ok, err := bc.TransactionByHash(tx1.Hash())
	if err != nil || !ok {
		t.Fatalf("TransactionByHash: ok=%v err=%v", ok, err)
	}
	if blockHash != b2.Hash() || num != 2 || idx != 0 {
		t.Fatalf("lookup = (%s, %d, %d), want (%s, 2, 0)", blockHash, num, idx, b2.Hash())
	}
	if got.Hash() != tx1.Hash() {
		t.Fatalf("resolved wrong transaction: %s", got.Hash())
	}

	rec, rBlock, rIdx, ok, err := bc.ReceiptByTxHash(tx0.Hash())
	if err != nil || !ok {
		t.Fatalf("ReceiptByTxHash: ok=%v err=%v", ok, err)
	}
	if rBlock != b1.Hash() || rIdx != 0 || rec.TxHash != tx0.Hash() {
		t.Fatalf("receipt lookup = (%s, %d, %s)", rBlock, rIdx, rec.TxHash)
	}

	if _, _, _, _, ok, err := bc.TransactionByHash(types.HexToHash("0xdead")); ok || err != nil {
		t.Fatalf("unknown hash: ok=%v err=%v", ok, err)
	}
}

// TestTxIndexSurvivesReopen checks the index is written through the same
// durable path as the block: a store reopened via Open still resolves it.
func TestTxIndexSurvivesReopen(t *testing.T) {
	cfg := MainnetLikeConfig()
	kv := db.NewMemDB()
	bc, err := NewBlockchainWithDB(cfg, testGenesis(), kv)
	if err != nil {
		t.Fatal(err)
	}
	tx := transfer(0, alice, bob, 10, 0)
	b := mine(t, bc, 14, tx)

	re, err := Open(cfg, kv)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_, blockHash, num, _, ok, err := re.TransactionByHash(tx.Hash())
	if err != nil || !ok {
		t.Fatalf("lookup after reopen: ok=%v err=%v", ok, err)
	}
	if blockHash != b.Hash() || num != 1 {
		t.Fatalf("lookup after reopen = (%s, %d)", blockHash, num)
	}
}

// TestTxIndexReorgRepoints checks that adopting a heavier side chain
// repoints lookups of transactions included on both branches at their
// canonical copies.
func TestTxIndexReorgRepoints(t *testing.T) {
	bc := newTestChain(t, MainnetLikeConfig())
	genesis := bc.Genesis()
	tx := transfer(0, alice, bob, 10, 0)

	// Canonical branch: one slow block carrying tx.
	slow, err := bc.BuildBlock(pool1, genesis.Header.Time+60, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(slow); err != nil {
		t.Fatal(err)
	}
	_, blockHash, _, _, ok, err := bc.TransactionByHash(tx.Hash())
	if err != nil || !ok || blockHash != slow.Hash() {
		t.Fatalf("pre-reorg lookup = (%s, %v, %v), want %s", blockHash, ok, err, slow.Hash())
	}

	// Heavier side branch: two fast blocks, the first carrying the same
	// transaction. Building needs the side-chain parent state, so build
	// against a twin chain sharing genesis, then feed the blocks in.
	twin := newTestChain(t, MainnetLikeConfig())
	fastA, err := twin.BuildBlock(pool1, genesis.Header.Time+10, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.InsertBlock(fastA); err != nil {
		t.Fatal(err)
	}
	fastB, err := twin.BuildBlock(pool1, fastA.Header.Time+10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(fastA); err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(fastB); err != nil {
		t.Fatal(err)
	}
	if bc.Head().Hash() != fastB.Hash() {
		t.Fatalf("reorg did not happen: head %s", bc.Head().Hash())
	}

	var num uint64
	_, blockHash, num, _, ok, err = bc.TransactionByHash(tx.Hash())
	if err != nil || !ok {
		t.Fatalf("post-reorg lookup: ok=%v err=%v", ok, err)
	}
	if blockHash != fastA.Hash() || num != 1 {
		t.Fatalf("post-reorg lookup = (%s, %d), want (%s, 1)", blockHash, num, fastA.Hash())
	}
}
