package sim

import (
	"math"
	"strings"
	"testing"
)

// threeSpecs returns a valid three-way partition list for mutation-based
// Validate cases.
func threeSpecs() []PartitionSpec {
	return []PartitionSpec{
		{Name: "ONE", ChainID: 1, DAOSupport: true, Price0: 10, RallyShare: 1,
			PrimaryFraction: 0.5, TxPerDay: 200, EIP155Day: -1, Pools: 20, PoolAlpha: 1, PoolCap: 0.24},
		{Name: "TWO", ChainID: 2, ShareAtFork: 0.2, RejoinShare: 0.05, RejoinTauDays: 10,
			Behaviour: "mixed", IdeologicalShare: 0.5, Price0: 5, RallyShare: 1,
			PrimaryFraction: 0.3, TxPerDay: 80, EIP155Day: -1, Pools: 15, PoolChurn: 0.1, PoolAlpha: 1.2, PoolCap: 0.24},
		{Name: "TRI", ChainID: 3, ShareAtFork: 0.1, CollapseDay: 20, CollapseTauDays: 4,
			Behaviour: "ideological", Price0: 2, RallyShare: 1,
			PrimaryFraction: 0.1, TxPerDay: 40, EIP155Day: -1, Pools: 10, PoolAlpha: 1.3, PoolCap: 0.3},
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(sc *Scenario)
		wantErr string // empty = must pass
	}{
		{name: "legacy two-way default passes", mutate: func(sc *Scenario) {}},
		{name: "three-way passes", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
		}},
		{name: "negative days", mutate: func(sc *Scenario) {
			sc.Days = -1
		}, wantErr: "Days"},
		{name: "zero day length", mutate: func(sc *Scenario) {
			sc.DayLength = 0
		}, wantErr: "DayLength"},
		{name: "bad name", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[1].Name = "two"
		}, wantErr: "name must match"},
		{name: "duplicate name", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[2].Name = "TWO"
		}, wantErr: "duplicate name"},
		{name: "zero chain id", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[0].ChainID = 0
		}, wantErr: "ChainID must be nonzero"},
		{name: "duplicate chain id", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[2].ChainID = 2
		}, wantErr: "already used"},
		{name: "share outside range", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[1].ShareAtFork = 1.5
		}, wantErr: "ShareAtFork"},
		{name: "non-anchor shares exceed one", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[1].ShareAtFork = 0.7
			sc.Partitions[2].ShareAtFork = 0.6
		}, wantErr: "sum"},
		{name: "anchor share not residual", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[0].ShareAtFork = 0.5 // residual is 0.7
		}, wantErr: "anchor"},
		{name: "anchor share exactly residual passes", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[0].ShareAtFork = 0.7
		}},
		{name: "negative weight", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[0].EconomicWeight = -1
		}, wantErr: "EconomicWeight"},
		{name: "negative rejoin", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[1].RejoinShare = -0.1
		}, wantErr: "rejoin"},
		{name: "negative collapse tau", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[2].CollapseTauDays = -1
		}, wantErr: "collapse"},
		{name: "unknown behaviour", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[1].Behaviour = "vengeful"
		}, wantErr: "behaviour"},
		{name: "ideological share outside range", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[1].IdeologicalShare = 2
		}, wantErr: "IdeologicalShare"},
		{name: "primary fractions exceed one", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[0].PrimaryFraction = 0.9
			sc.Partitions[1].PrimaryFraction = 0.9
		}, wantErr: "PrimaryFraction sum"},
		{name: "negative tx rate", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[2].TxPerDay = -1
		}, wantErr: "TxPerDay"},
		{name: "no pools", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Partitions[0].Pools = 0
		}, wantErr: "Pools"},
		{name: "crash names unknown chain", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Crashes = []CrashSpec{{Chain: "NOPE", Day: 0, Block: 1, Op: 1}}
		}, wantErr: "unknown chain"},
		{name: "crash names known chain passes", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Crashes = []CrashSpec{{Chain: "TRI", Day: 0, Block: 1, Op: 1}}
		}},
		{name: "negative crash day", mutate: func(sc *Scenario) {
			sc.Partitions = threeSpecs()
			sc.Crashes = []CrashSpec{{Chain: "TRI", Day: -1, Block: 1, Op: 1}}
		}, wantErr: "crash spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScenario(1, 10)
			tc.mutate(sc)
			err := sc.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestParsePartitionSpecs(t *testing.T) {
	specs, err := ParsePartitionSpecs(
		"MAIN:weight=0.7,txperday=400,dao=true; CLASSIC:share=0.3,weight=0.3,behaviour=mixed,ideological=0.4,rejoin=0.05,rejointau=10,chainid=61,pools=25,churn=0.15,alpha=1.3,lag=30")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	m, c := specs[0], specs[1]
	if m.Name != "MAIN" || m.EconomicWeight != 0.7 || m.TxPerDay != 400 || !m.DAOSupport || m.ChainID != 1 {
		t.Errorf("MAIN = %+v", m)
	}
	if c.Name != "CLASSIC" || c.ShareAtFork != 0.3 || c.Behaviour != "mixed" ||
		c.IdeologicalShare != 0.4 || c.RejoinShare != 0.05 || c.RejoinTauDays != 10 ||
		c.ChainID != 61 || c.Pools != 25 || c.PoolChurn != 0.15 || c.PoolAlpha != 1.3 || c.PoolLagDays != 30 {
		t.Errorf("CLASSIC = %+v", c)
	}
	// Defaults fill in what the spec string leaves unset.
	if c.Price0 != 1 || c.EIP155Day != -1 || c.PoolCap != 0.24 {
		t.Errorf("CLASSIC defaults = %+v", c)
	}
	// Parsed specs must validate as a scenario.
	sc := NewScenario(1, 5)
	sc.Partitions = specs
	if err := sc.Validate(); err != nil {
		t.Errorf("parsed specs do not validate: %v", err)
	}

	for _, bad := range []string{
		"MAIN:weight",           // no value
		"MAIN:bogus=1",          // unknown key
		"MAIN:share=notanumber", // unparsable value
	} {
		if _, err := ParsePartitionSpecs(bad); err == nil {
			t.Errorf("ParsePartitionSpecs(%q) = nil error", bad)
		}
	}
	if specs, err := ParsePartitionSpecs("  "); err != nil || specs != nil {
		t.Errorf("blank spec = %v, %v", specs, err)
	}
}

// TestStructHashratesMatchesLegacy pins the N-way structural schedule to
// the legacy two-way Hashrates for the synthesised historical pair: the
// byte-identity of old seeds depends on it.
func TestStructHashratesMatchesLegacy(t *testing.T) {
	sc := NewScenario(42, 300)
	specs := sc.PartitionSpecs()
	for day := 0; day < 300; day++ {
		eth, etc := sc.Hashrates(day)
		hr := sc.StructHashrates(day, specs)
		if len(hr) != 2 {
			t.Fatalf("day %d: %d partitions", day, len(hr))
		}
		if hr[0] != eth || hr[1] != etc {
			t.Fatalf("day %d: StructHashrates = (%g, %g), legacy = (%g, %g)", day, hr[0], hr[1], eth, etc)
		}
	}
}

// TestStructHashratesCollapse checks the collapse curve: the partition's
// structural share decays to zero after CollapseDay and the anchor
// absorbs it.
func TestStructHashratesCollapse(t *testing.T) {
	sc := NewScenario(1, 60)
	sc.ZcashLaunchDay = 0 // isolate the collapse
	sc.ETHGrowthPerDay = 0
	sc.Partitions = threeSpecs()
	specs := sc.PartitionSpecs()

	before := sc.StructHashrates(19, specs)
	if before[2] <= 0 {
		t.Fatalf("TRI has no hashrate before its collapse: %v", before)
	}
	after := sc.StructHashrates(50, specs)
	if frac := after[2] / sc.TotalHashrate; frac > 1e-3 {
		t.Errorf("TRI still holds %.4f of hashrate 30 days after collapse", frac)
	}
	if after[0] <= before[0] {
		t.Errorf("anchor did not absorb the collapsed share: %g -> %g", before[0], after[0])
	}
	sum := 0.0
	for _, h := range after {
		sum += h
	}
	if math.Abs(sum-sc.TotalHashrate) > 1e-3*sc.TotalHashrate {
		t.Errorf("total hashrate not conserved: %g vs %g", sum, sc.TotalHashrate)
	}
}

func TestRegistry(t *testing.T) {
	reg, err := NewRegistry(threeSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 {
		t.Fatalf("Len = %d", reg.Len())
	}
	if got := reg.Names(); got[0] != "ONE" || got[1] != "TWO" || got[2] != "TRI" {
		t.Fatalf("Names = %v", got)
	}
	if i, ok := reg.Index("TRI"); !ok || i != 2 {
		t.Fatalf("Index(TRI) = %d, %v", i, ok)
	}
	if _, ok := reg.Index("NOPE"); ok {
		t.Fatal("Index(NOPE) resolved")
	}
	if _, err := NewRegistry(nil); err == nil {
		t.Fatal("empty registry accepted")
	}
	dup := threeSpecs()
	dup[1].Name = "ONE"
	if _, err := NewRegistry(dup); err == nil {
		t.Fatal("duplicate registry accepted")
	}
}

// TestMatrixCells checks the scenario matrix: nine cells (three grids x
// three behaviour models), each a valid two-partition scenario wired to
// the cell's behaviour.
func TestMatrixCells(t *testing.T) {
	cells := MatrixCells(3, 12)
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(cells))
	}
	seen := map[string]bool{}
	for _, cell := range cells {
		key := cell.Grid + "/" + cell.Behaviour
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
		if err := cell.Scenario.Validate(); err != nil {
			t.Errorf("cell %s invalid: %v", key, err)
		}
		if got := cell.Scenario.Partitions[1].Behaviour; got != cell.Behaviour {
			t.Errorf("cell %s minority behaviour = %q", key, got)
		}
		if cell.Scenario.Days != 12 || cell.Scenario.Seed != 3 {
			t.Errorf("cell %s did not inherit seed/days", key)
		}
	}
}
