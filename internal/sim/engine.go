package sim

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"slices"
	"strings"
	"sync"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/db/dbfs"
	"forkwatch/internal/db/diskdb"
	"forkwatch/internal/db/diskdb/faultfile"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/market"
	"forkwatch/internal/pool"
	"forkwatch/internal/pow"
	"forkwatch/internal/prng"
	"forkwatch/internal/types"
)

// TxInfo describes one mined transaction to observers.
type TxInfo struct {
	Hash       types.Hash
	From       types.Address
	Contract   bool
	ChainBound bool
}

// BlockEvent is emitted for every mined block.
//
// Events are pooled: the engine recycles each event (including its
// Difficulty big.Int and Txs backing array) after the day barrier that
// delivered it. Observers that retain anything past OnBlock must copy it
// (types.BigCopy for Difficulty, a fresh slice for Txs); observers that
// aggregate in place need no changes.
type BlockEvent struct {
	Chain      string
	Day        int
	Number     uint64
	Time       uint64
	Delta      uint64
	Difficulty *big.Int
	Coinbase   types.Address
	Txs        []TxInfo

	// diffBuf backs Difficulty so a recycled event reuses one big.Int
	// instead of copying the head difficulty per block.
	diffBuf big.Int
}

// PartitionDay is one partition's slice of a DayEvent, in partition
// order.
type PartitionDay struct {
	Name       string
	USD        float64
	Hashrate   float64
	Difficulty *big.Int
}

// DayEvent is emitted at the end of each simulated day: one entry per
// partition, in partition order.
type DayEvent struct {
	Day        int
	Partitions []PartitionDay
}

// Partition returns the named partition's slice of the day, or nil.
func (ev *DayEvent) Partition(name string) *PartitionDay {
	for i := range ev.Partitions {
		if ev.Partitions[i].Name == name {
			return &ev.Partitions[i]
		}
	}
	return nil
}

// Observer receives simulation events; the analysis package implements it.
type Observer interface {
	OnBlock(*BlockEvent)
	OnDay(*DayEvent)
}

// Engine runs one N-way fork scenario.
//
// Parallel model (DESIGN.md §10): the partitions only couple through
// day-granular processes — hashrate migration, price arbitrage, and the
// echo attacker whose rebroadcasts surface on the other chains the NEXT
// day. Within a day each partition's mining is a closed system over its
// own state and its own seed-derived random streams (keyed on the
// partition NAME, never the slot), so the engine steps partitions on
// separate goroutines between day barriers when Scenario.Parallelism
// allows. All cross-chain effects (echo decisions, observer event
// delivery, the market/arbitrage step) happen single-threaded at the
// barrier in partition order, which is why serial and parallel runs
// produce byte-identical output.
type Engine struct {
	sc  *Scenario
	reg *Registry

	// Workload is the shared traffic model; Prices the per-partition
	// daily USD series, aligned with the partition order. Exported for
	// the façade, serve and tests.
	Workload *Workload
	Prices   [][]float64

	parts []*partition
	// shares is the arbitrage state: each partition's share of total
	// hashrate. The last component is always the residual 1 - sum(rest).
	shares    []float64
	observers []Observer
}

// partition is everything one chain's goroutine owns while stepping a
// day: ledger, sampler and pool streams, the pending transaction queue,
// the storage stack, and the day's buffered output (events, crash
// flags). Nothing in here is shared with the other partitions.
type partition struct {
	idx    int
	name   string
	spec   PartitionSpec
	ledger Ledger

	sampler *pow.Sampler
	poolR   *rand.Rand
	pools   *pool.Population

	// sticky is the behaviour model's pinned fraction (see
	// pool.Behaviour.StickyFraction), resolved once at build time.
	sticky float64

	// pending carries unmined submissions across days; pendBuf is its
	// backing buffer, compacted to the front on every enqueue so the day
	// loop's consumption doesn't slide through an ever-growing array.
	pending []txPlan
	pendBuf []txPlan

	// storage is the chain's storage stack for fault injection and crash
	// recovery; nil in ModeFast.
	storage *chainStorage

	// crashFired marks scheduled crash specs this partition has armed
	// (indexed like Scenario.Crashes; only specs naming this chain ever
	// fire here). Partition-local so arming needs no locks.
	crashFired []bool

	// Per-day inputs and outputs, set before / drained after the barrier.
	hashrate float64
	eipDay   int
	events   []*BlockEvent

	// evFree holds delivered events for reuse; the day barrier refills it
	// after the observers have seen the day's blocks (DESIGN.md §15).
	evFree []*BlockEvent
	// txScratch and freshScratch carry one block's candidate transactions
	// (and their arena-freshness) from the pending queue into MineBlock;
	// reused every block.
	txScratch    []*chain.Transaction
	freshScratch []bool
}

// diffLender is the sim-internal side door both ledgers implement: it
// lends the live head-difficulty big.Int so per-block events can copy it
// into their own buffers without an allocation. Borrowers must not hold
// the reference across a head change.
type diffLender interface{ headDiffRef() *big.Int }

// dayArena is implemented by ledgers that carve per-day scratch (the fast
// ledger's included-transaction arena); the engine resets it at the day
// barrier once echoes and observers are done with the day's slices.
type dayArena interface{ resetDayArena() }

// chainStorage is one chain's storage stack: the KV the Blockchain uses
// (retry-wrapped when faults are on), the fault injector inside it, and
// whether the store has died beyond recovery.
//
// At most one injector is non-nil, matching the backend: faultkv tears
// logical batches inside the in-memory stores, faultfile tears physical
// appends on the medium under the disk store. Both expose the same
// deterministic crash/arm/journal surface, which the methods below
// unify for the engine.
type chainStorage struct {
	cfg    *chain.Config
	kv     db.KV
	faults *faultkv.KV   // logical injection (mem/cached backends)
	ffs    *faultfile.FS // physical injection (disk backend)
	// coal batches a whole day of block commits into one backend write
	// (flushed at the end of stepDay). Only installed when the scenario
	// injects no storage faults and schedules no crashes: recovery
	// semantics need per-block durability, coalescing trades exactly
	// that away.
	coal *db.Coalescer
	// reopenDisk rebuilds the disk store over the surviving medium after a
	// crash: close the dead store, re-run diskdb.Open's recovery scan with
	// injection paused, re-wrap in the retry policy. Nil unless ffs is set.
	reopenDisk func() (db.KV, error)
	// dead marks a store WAL recovery could not repair. The chain stops
	// mining — the partition behaves as if its miners departed — while
	// day events keep flowing.
	dead bool
}

// injecting reports whether any fault injector is wired in.
func (s *chainStorage) injecting() bool { return s.faults != nil || s.ffs != nil }

// crashed reports whether the store's medium is dead and needs a restart.
func (s *chainStorage) crashed() bool {
	switch {
	case s.faults != nil:
		return s.faults.Crashed()
	case s.ffs != nil:
		return s.ffs.Crashed()
	}
	return false
}

// enable toggles random fault injection (armed crashes stay armed).
func (s *chainStorage) enable(on bool) {
	if s.faults != nil {
		s.faults.SetEnabled(on)
	}
	if s.ffs != nil {
		s.ffs.SetEnabled(on)
	}
}

// armCrash arms the injector so the (op+1)-th write from now tears
// mid-commit and kills the store.
func (s *chainStorage) armCrash(op uint64) {
	switch {
	case s.faults != nil:
		s.faults.CrashAtWriteOp(s.faults.WriteOps() + 1 + op)
	case s.ffs != nil:
		s.ffs.CrashAtWriteOp(s.ffs.WriteOps() + 1 + op)
	}
}

// journalLen counts the fault events the injector has recorded.
func (s *chainStorage) journalLen() int {
	n := 0
	if s.faults != nil {
		n += len(s.faults.Journal())
	}
	if s.ffs != nil {
		n += len(s.ffs.Journal())
	}
	return n
}

// restart models the node process coming back up over the surviving
// medium: the injector's crash flag clears, and for the disk backend the
// store is reopened — diskdb.Open truncates the torn tail and drops
// uncommitted batch groups. The chain-level WAL redo on top (chain.Open)
// is the caller's job.
func (s *chainStorage) restart() error {
	switch {
	case s.faults != nil:
		s.faults.Reopen()
	case s.ffs != nil:
		s.ffs.Reopen()
		kv, err := s.reopenDisk()
		if err != nil {
			return err
		}
		s.kv = kv
	}
	return nil
}

// fileFaults translates the scenario's logical fault plan (faultkv rates
// against a KV) into the physical plan the disk medium runs (faultfile
// rates against the file API): read/write error and bit-rot rates carry
// over, and the logical batch-tear rate becomes both a transient
// short-write rate (truncate-repair + retry) and a crashing torn-append
// rate (restart + recovery), so the disk chaos runs exercise strictly
// more failure modes than the mem runs at the same knob settings. The
// seed is offset per chain so the partitions' fault streams stay
// decorrelated, mirroring the faultkv path.
func fileFaults(f faultkv.Faults, chainIdx int64) faultfile.Faults {
	return faultfile.Faults{
		Seed:           f.Seed + chainIdx,
		ReadErrRate:    f.ReadErrRate,
		WriteErrRate:   f.WriteErrRate,
		ShortWriteRate: f.TornBatchRate,
		TornWriteRate:  f.TornBatchRate,
		CorruptRate:    f.CorruptRate,
		StallEvery:     f.StallEvery,
		Stall:          f.Stall,
	}
}

// New builds an engine (ledgers, workload, pools, prices) from a
// scenario, after validating it.
func New(sc *Scenario) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	reg, err := sc.Registry()
	if err != nil {
		return nil, err
	}
	specs := reg.Specs()
	k := reg.Len()

	w := NewWorkload(sc)
	gen := w.Genesis()

	cfgs := make([]*chain.Config, k)
	for i, sp := range specs {
		cfgs[i] = sp.ChainConfig(w.DAODrainList(), DAORefundAddress)
	}

	ledgers := make([]Ledger, k)
	storage := make([]*chainStorage, k)
	switch sc.Mode {
	case ModeFast:
		for i := range specs {
			ledgers[i] = NewFastLedger(cfgs[i], gen)
		}
		// Fast-mode blocks are not retained anywhere, so the echo flush
		// may recycle mined transactions with no surviving references.
		w.recycleMined = true
	case ModeFull:
		// Each chain gets its own store opened from the same config:
		// partitions never share storage, only gossip — the disk backend
		// keeps each chain in its own DataDir subdirectory. When the
		// scenario injects storage faults or crashes, the stack per chain
		// is backend -> injector -> retry (transient absorption): faultkv
		// tears logical batches inside the in-memory backends, faultfile
		// tears physical appends under the disk backend. Injection is held
		// off until after the genesis bootstrap.
		attempts := sc.StorageRetryAttempts
		if attempts <= 0 {
			attempts = db.DefaultRetryAttempts
			if sc.Storage.Backend == db.BackendDisk {
				// One durable append draws the write-error rate twice
				// (Append, then Sync), so per-attempt failure is
				// 1-(1-p)^2 instead of p; double the budget to keep the
				// exhaustion probability in the same regime as faultkv.
				attempts *= 2
			}
		}
		mkStack := func(idx int64, name string) (*chainStorage, error) {
			cfg := sc.Storage
			if cfg.Backend == db.BackendDisk {
				cfg.DataDir = ChainDataDir(cfg.DataDir, name)
			}
			if !sc.StorageFaults.Enabled() && len(sc.Crashes) == 0 {
				kv, err := db.Open(cfg)
				if err != nil {
					return nil, err
				}
				coal := db.NewCoalescer(kv)
				return &chainStorage{kv: coal, coal: coal}, nil
			}
			if cfg.Backend == db.BackendDisk {
				if err := cfg.Validate(); err != nil {
					return nil, err
				}
				osfs, err := dbfs.NewOSFS(cfg.DataDir)
				if err != nil {
					return nil, err
				}
				ffs := faultfile.Wrap(osfs, fileFaults(sc.StorageFaults, idx))
				ffs.SetEnabled(false)
				var cur *diskdb.DB
				openDisk := func() (db.KV, error) {
					if cur != nil {
						cur.Close()
						cur = nil
					}
					d, err := diskdb.Open(ffs, diskdb.Options{})
					if err != nil {
						return nil, err
					}
					cur = d
					return db.NewRetry(d, attempts), nil
				}
				kv, err := openDisk()
				if err != nil {
					return nil, err
				}
				return &chainStorage{kv: kv, ffs: ffs, reopenDisk: func() (db.KV, error) {
					// The recovery scan must see the medium's true bytes:
					// pause injection around it, resume at a deterministic
					// point so fault timelines stay replayable.
					ffs.SetEnabled(false)
					defer ffs.SetEnabled(true)
					return openDisk()
				}}, nil
			}
			kv, err := db.Open(cfg)
			if err != nil {
				return nil, err
			}
			f := sc.StorageFaults
			f.Seed += idx // decorrelate the chains' fault streams
			fkv := faultkv.Wrap(kv, f)
			fkv.SetEnabled(false)
			return &chainStorage{kv: db.NewRetry(fkv, attempts), faults: fkv}, nil
		}
		for i, sp := range specs {
			stg, err := mkStack(int64(i), sp.Name)
			if err != nil {
				return nil, err
			}
			stg.cfg = cfgs[i]
			led, err := NewFullLedgerWithDB(cfgs[i], gen, prng.New(sc.Seed, "seal", sp.Name), stg.kv)
			if err != nil {
				return nil, err
			}
			stg.enable(true)
			ledgers[i] = led
			storage[i] = stg
		}
	default:
		return nil, fmt.Errorf("sim: unknown mode %d", sc.Mode)
	}

	mp := sc.Market
	if mp.Days < sc.Days {
		mp.Days = sc.Days
	}
	chainsMP := make([]market.ChainParams, k)
	for i, sp := range specs {
		chainsMP[i] = sp.marketParams()
	}
	prices := market.GenerateSeries(mp, chainsMP, prng.New(sc.Seed, "market"))

	e := &Engine{
		sc:       sc,
		reg:      reg,
		Workload: w,
		Prices:   prices,
		shares:   make([]float64, k),
		parts:    make([]*partition, k),
	}
	rest := 0.0
	for i := 1; i < k; i++ {
		e.shares[i] = specs[i].ShareAtFork
		rest += e.shares[i]
	}
	e.shares[0] = 1 - rest
	for i, sp := range specs {
		lower := strings.ToLower(sp.Name)
		var pools *pool.Population
		if sp.PoolZipf > 0 {
			pools = pool.NewZipfPopulation(lower, sp.Pools, sp.PoolZipf)
		} else {
			pools = pool.NewUniformPopulation(lower, sp.Pools)
		}
		e.parts[i] = &partition{
			idx:        i,
			name:       sp.Name,
			spec:       sp,
			ledger:     ledgers[i],
			sampler:    pow.NewPartitionSampler(sc.Seed, sp.Name),
			poolR:      prng.New(sc.Seed, "pool", sp.Name),
			pools:      pools,
			sticky:     sp.stickyFraction(),
			storage:    storage[i],
			crashFired: make([]bool, len(sc.Crashes)),
			eipDay:     sp.EIP155Day,
		}
	}
	return e, nil
}

// AddObserver registers an observer for block and day events.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// Registry returns the engine's partition registry.
func (e *Engine) Registry() *Registry { return e.reg }

// PartitionNames returns the partition names in order.
func (e *Engine) PartitionNames() []string { return e.reg.Names() }

// Ledgers returns every partition's ledger in partition order.
func (e *Engine) Ledgers() []Ledger {
	out := make([]Ledger, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.ledger
	}
	return out
}

// LedgerAt returns the i-th partition's ledger.
func (e *Engine) LedgerAt(i int) Ledger { return e.parts[i].ledger }

// Ledger returns the named partition's ledger, or nil.
func (e *Engine) Ledger(name string) Ledger {
	if i, ok := e.reg.Index(name); ok {
		return e.parts[i].ledger
	}
	return nil
}

// StorageStats sums the storage counters of every chain's key-value
// store. ModeFast ledgers have no store, so the sum is zero there.
func (e *Engine) StorageStats() db.Stats {
	var s db.Stats
	for _, p := range e.parts {
		if fl, ok := p.ledger.(*FullLedger); ok {
			s = s.Add(fl.BC.StorageStats())
		}
	}
	return s
}

// CrashesFired reports how many scheduled CrashSpecs have been armed so
// far; chaos tests assert the crash path was actually exercised.
func (e *Engine) CrashesFired() int {
	n := 0
	for _, p := range e.parts {
		for _, fired := range p.crashFired {
			if fired {
				n++
			}
		}
	}
	return n
}

// StorageFaultEvents reports how many storage faults (injected errors,
// torn batches or appends, crashes, reopens) the chains' stores have
// logged. Zero when no StorageFaults are configured or in ModeFast.
func (e *Engine) StorageFaultEvents() int {
	n := 0
	for _, p := range e.parts {
		if p.storage != nil {
			n += p.storage.journalLen()
		}
	}
	return n
}

// Run simulates sc.Days days. Day 0 begins at the fork moment: all
// ledgers share genesis (the pre-fork ledger) and block 1 is the fork
// block on each side.
//
// Each day: the serial prologue computes prices and the hashrate split
// and pins EIP-155 activation; then every partition steps (pool
// consolidation, traffic generation, mining) — concurrently when the
// resolved parallelism is at least 2, inline otherwise, over the same
// per-partition streams either way; then the serial barrier flushes the
// echo attacker, delivers buffered block events in partition order, and
// emits the day event.
func (e *Engine) Run() error {
	alloc := market.Allocator{Elasticity: e.sc.ArbitrageElasticity}
	concurrent := e.sc.ResolveParallelism() >= 2
	specs := e.reg.Specs()
	k := len(e.parts)
	for day := 0; day < e.sc.Days; day++ {
		// Hashrate: the structural schedule sets the total (growth +
		// Zcash event) and dominates the split in the chaotic weeks
		// right after the fork; price arbitrage takes over with weight
		// 1-exp(-day/tau), which is what equalises USD-per-hash across
		// the chains (Fig 3). Each partition's behaviour model pins its
		// sticky fraction to the structural schedule even after the
		// handover. The last partition always holds the residual share,
		// exactly as the two-way engine's scalar state did.
		hr := e.sc.StructHashrates(day, specs)
		total := 0.0
		for _, h := range hr {
			total += h
		}
		wStruct := 1.0
		if e.sc.StructuralBlendTauDays > 0 {
			wStruct = math.Exp(-float64(day) / e.sc.StructuralBlendTauDays)
		}
		den := 0.0
		for i, sp := range specs {
			den += sp.economicWeight() * e.Prices[i][day]
		}
		rest := 0.0
		for i := 0; i < k-1; i++ {
			structShare := hr[i] / total
			priceShare := e.shares[i]
			if den > 0 {
				target := specs[i].economicWeight() * e.Prices[i][day] / den
				priceShare = alloc.StepToward(e.shares[i], target)
			}
			mobile := priceShare
			if s := e.parts[i].sticky; s > 0 {
				mobile = s*structShare + (1-s)*priceShare
			}
			e.shares[i] = wStruct*structShare + (1-wStruct)*mobile
			rest += e.shares[i]
		}
		resid := 1 - rest
		// The residual partition's behaviour model still binds: its sticky
		// fraction pins it toward its structural share, and the stepped
		// partitions scale to keep the total at one. Profit-only residuals
		// (sticky zero — including the legacy historical pair) skip this
		// entirely, leaving the two-way arithmetic untouched.
		if s := e.parts[k-1].sticky; s > 0 && rest > 0 {
			structShare := hr[k-1] / total
			resid = s*structShare + (1-s)*resid
			scale := (1 - resid) / rest
			for i := 0; i < k-1; i++ {
				e.shares[i] *= scale
			}
		}
		e.shares[k-1] = resid
		for i, p := range e.parts {
			p.hashrate = total * e.shares[i]
		}

		// Replay protection activation: pin the EIP-155 block to the
		// chain's next height the day it ships.
		for _, p := range e.parts {
			if day == p.eipDay && p.eipDay >= 0 {
				p.ledger.Config().EIP155Block = new(big.Int).SetUint64(p.ledger.HeadNumber() + 1)
			}
		}

		// Step every partition through the day.
		if concurrent {
			var wg sync.WaitGroup
			errs := make([]error, k)
			for _, p := range e.parts {
				wg.Add(1)
				go func(p *partition) {
					defer wg.Done()
					errs[p.idx] = e.stepDay(day, p)
				}(p)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
		} else {
			for _, p := range e.parts {
				if err := e.stepDay(day, p); err != nil {
					return err
				}
			}
		}

		// Day barrier: cross-chain effects in fixed order.
		e.Workload.FlushEchoes()
		for _, p := range e.parts {
			for _, ev := range p.events {
				for _, o := range e.observers {
					o.OnBlock(ev)
				}
			}
			// Observers are done with the day's events and (via
			// FlushEchoes above) with the day's included-tx slices:
			// recycle both.
			p.evFree = append(p.evFree, p.events...)
			p.events = p.events[:0]
			if a, ok := p.ledger.(dayArena); ok {
				a.resetDayArena()
			}
		}

		ev := &DayEvent{Day: day, Partitions: make([]PartitionDay, k)}
		for i, p := range e.parts {
			ev.Partitions[i] = PartitionDay{
				Name:       p.name,
				USD:        e.Prices[i][day],
				Hashrate:   p.hashrate,
				Difficulty: p.ledger.HeadDifficulty(),
			}
		}
		for _, o := range e.observers {
			o.OnDay(ev)
		}
	}
	return nil
}

// stepDay advances one partition through one day: pool consolidation,
// traffic generation, mining. Runs on the partition's goroutine in
// parallel mode; touches only partition-local state and the workload's
// slot for this chain.
func (e *Engine) stepDay(day int, p *partition) error {
	// Pool consolidation (Fig 5): each partition's churn starts once its
	// configured lag has passed (the historical calibration: ETH stable
	// from day one, ETC consolidating after the dust settled).
	if day >= p.spec.PoolLagDays {
		p.pools.Consolidate(p.spec.PoolChurn, p.spec.PoolAlpha, p.spec.PoolCap, p.poolR)
	}

	// Traffic for the day: draw the deterministic plan single-threaded on
	// this partition's streams, then fan the signature keccaks — the only
	// order-independent part — across workers before anything validates.
	plans := e.Workload.DayTraffic(day, p.name, p.ledger, p.eipDay)
	e.finishSigning(plans)
	p.enqueue(plans)

	if err := e.mineDay(day, p); err != nil {
		return err
	}
	// One backend write for the whole day's block commits (fault-free
	// full mode only; see chainStorage.coal).
	if p.storage != nil && p.storage.coal != nil {
		if err := p.storage.coal.Flush(); err != nil {
			return fmt.Errorf("sim: %s day %d storage flush: %w", p.name, day, err)
		}
	}
	return nil
}

// signFanoutMin is the plan size below which the fan-out overhead beats
// the keccak savings and signing stays inline.
const signFanoutMin = 256

// finishSigning completes the lazy signatures of a day's fresh
// transactions. Each FinishSign is a pure function of its own transaction,
// so the work splits into chunks with no effect on ordering or RNG
// streams — serial and parallel runs stay byte-identical. Inline when the
// scenario is serial or the batch is small.
func (e *Engine) finishSigning(plans []txPlan) {
	if e.sc.ResolveParallelism() < 2 || len(plans) < signFanoutMin {
		for i := range plans {
			if plans[i].fresh {
				plans[i].tx.FinishSign()
			}
		}
		return
	}
	workers := e.sc.ResolveParallelism()
	chunk := (len(plans) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(plans); start += chunk {
		end := min(start+chunk, len(plans))
		wg.Add(1)
		go func(ps []txPlan) {
			defer wg.Done()
			for i := range ps {
				if ps[i].fresh {
					ps[i].tx.FinishSign()
				}
			}
		}(plans[start:end])
	}
	wg.Wait()
}

// recoverMine handles a MineBlock failure on a chain wired for storage
// faults. If the store crashed (torn batch or scheduled kill), it models
// the node restarting: reopen the medium, run WAL recovery via
// chain.Open, and either adopt the in-flight block — it reached its WAL
// commit point before the tear — or re-mine it with identical inputs,
// which deterministically reproduces the same block, so downstream
// figures are unaffected by the crash. A store that recovery reports as
// corrupt beyond repair retires the chain (dead=true): the partition
// loses its miners for the rest of the run, day events keep flowing.
//
// Returns the included transactions, whether a block was produced, and
// a fatal error. Errors that are not storage crashes surface unchanged.
func (e *Engine) recoverMine(led Ledger, stg *chainStorage, mineErr error, t uint64, coinbase types.Address, txs []*chain.Transaction) ([]*chain.Transaction, bool, error) {
	fl, isFull := led.(*FullLedger)
	if stg == nil || !stg.injecting() || !isFull || !stg.crashed() {
		return nil, false, mineErr
	}
	preHead := fl.HeadNumber() // memory never advances past the last durable commit
	const maxRestarts = 3      // random faults can crash the retry too
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if err := stg.restart(); err != nil {
			stg.dead = true
			return nil, false, nil
		}
		bc, err := chain.Open(stg.cfg, stg.kv)
		if err != nil {
			stg.dead = true
			return nil, false, nil
		}
		fl.BC = bc
		if bc.Head().Number() == preHead+1 {
			// The in-flight block committed durably before the crash;
			// recovery finished applying it. Adopt it instead of
			// re-mining: its transactions are the included set.
			return bc.Head().Txs, true, nil
		}
		included, err := fl.MineBlock(t, coinbase, txs)
		if err == nil {
			return included, true, nil
		}
		if !stg.crashed() {
			return nil, false, err
		}
	}
	stg.dead = true
	return nil, false, nil
}

func (p *partition) enqueue(plans []txPlan) {
	// Compact leftovers to the front of the backing buffer (overlapping
	// copy is fine), then append the day's plans.
	merged := append(p.pendBuf[:0], p.pending...)
	merged = append(merged, plans...)
	p.pending = merged
	p.pendBuf = merged[:0:cap(merged)]
	// Stable sort fixes the order, so any stable algorithm gives the same
	// queue; the generic form skips sort.SliceStable's reflection.
	slices.SortStableFunc(p.pending, func(a, b txPlan) int {
		switch {
		case a.second < b.second:
			return -1
		case a.second > b.second:
			return 1
		}
		return 0
	})
}

// mineDay advances one chain from the start to the end of the day,
// sampling block intervals from the difficulty/hashrate process and
// including pending transactions as their submission times pass. Block
// events are buffered on the partition and delivered at the day barrier.
func (e *Engine) mineDay(day int, p *partition) error {
	if p.storage != nil && p.storage.dead {
		return nil // storage died beyond recovery: the chain's miners departed
	}
	led := p.ledger
	dayStart := e.sc.Epoch + uint64(day)*e.sc.DayLength
	dayEnd := dayStart + e.sc.DayLength
	t := led.HeadTime()
	if t < dayStart {
		t = dayStart
	}
	weights := p.pools.Weights()
	totalWeight := 0.0
	for _, w := range weights {
		totalWeight += w
	}
	lender, _ := led.(diffLender)
	blockIdx := 0

	for {
		interval := p.sampler.BlockIntervalFloat(led.HeadDifficultyFloat(), p.hashrate)
		t += interval
		if t >= dayEnd {
			return nil
		}
		// Submissions whose time has passed become the block body. The
		// batch lives in per-partition scratch: no ledger retains it
		// (FastLedger copies into its arena, FullLedger rebuilds its own
		// included slice).
		queue := p.pending
		daySecond := t - dayStart
		cut := 0
		for cut < len(queue) && queue[cut].second <= daySecond {
			cut++
		}
		var txs []*chain.Transaction
		var fresh []bool
		if cut > 0 {
			txs = p.txScratch[:0]
			fresh = p.freshScratch[:0]
			for i := 0; i < cut; i++ {
				txs = append(txs, queue[i].tx)
				fresh = append(fresh, queue[i].fresh)
			}
			p.txScratch, p.freshScratch = txs, fresh
			p.pending = queue[cut:]
		}

		var coinbase types.Address
		if winner := p.sampler.WinnerIndexTotal(weights, totalWeight); winner >= 0 {
			coinbase = p.pools.Pools[winner].Address
		}

		// A scheduled crash for this block arms the injector so the store
		// dies mid-commit; recovery below reopens and resumes.
		if p.storage != nil && p.storage.injecting() {
			for i, cs := range e.sc.Crashes {
				if !p.crashFired[i] && cs.Chain == p.name && cs.Day == day && cs.Block == blockIdx {
					p.crashFired[i] = true
					p.storage.armCrash(cs.Op)
				}
			}
		}

		parentTime := led.HeadTime()
		included, err := led.MineBlock(t, coinbase, txs)
		if err != nil {
			var mined bool
			included, mined, err = e.recoverMine(led, p.storage, err, t, coinbase, txs)
			if err != nil {
				return fmt.Errorf("sim: mining %s day %d: %w", p.name, day, err)
			}
			if !mined {
				return nil // chain retired (unrecoverable storage)
			}
		}
		blockIdx++
		e.Workload.ObserveMined(p.name, included)

		// Fresh transactions that were dropped (invalid nonce, out of
		// funds, out of gas) were never mined anywhere and never echoed,
		// so nothing else can reference them: recycle them into the
		// transaction arena. included is an in-order subsequence of txs.
		if len(txs) > 0 {
			j := 0
			for i, tx := range txs {
				if j < len(included) && included[j] == tx {
					j++
					continue
				}
				if fresh[i] {
					chain.ReleaseTransaction(tx)
				}
			}
		}

		if len(e.observers) > 0 {
			var ev *BlockEvent
			if n := len(p.evFree); n > 0 {
				ev, p.evFree = p.evFree[n-1], p.evFree[:n-1]
			} else {
				ev = new(BlockEvent)
			}
			ev.Chain = p.name
			ev.Day = day
			ev.Number = led.HeadNumber()
			ev.Time = t
			ev.Delta = t - parentTime
			if lender != nil {
				ev.Difficulty = ev.diffBuf.Set(lender.headDiffRef())
			} else {
				ev.Difficulty = ev.diffBuf.Set(led.HeadDifficulty())
			}
			ev.Coinbase = coinbase
			ev.Txs = ev.Txs[:0]
			for _, tx := range included {
				ev.Txs = append(ev.Txs, TxInfo{
					Hash:       tx.Hash(),
					From:       tx.From,
					Contract:   tx.To == nil || len(tx.Data) > 0,
					ChainBound: tx.ChainID != 0,
				})
			}
			p.events = append(p.events, ev)
		}
	}
}
