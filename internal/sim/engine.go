package sim

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/market"
	"forkwatch/internal/pool"
	"forkwatch/internal/pow"
	"forkwatch/internal/types"
)

// TxInfo describes one mined transaction to observers.
type TxInfo struct {
	Hash       types.Hash
	From       types.Address
	Contract   bool
	ChainBound bool
}

// BlockEvent is emitted for every mined block.
type BlockEvent struct {
	Chain      string
	Day        int
	Number     uint64
	Time       uint64
	Delta      uint64
	Difficulty *big.Int
	Coinbase   types.Address
	Txs        []TxInfo
}

// DayEvent is emitted at the end of each simulated day.
type DayEvent struct {
	Day                      int
	ETHUSD, ETCUSD           float64
	ETHHashrate, ETCHashrate float64
	ETHDifficulty            *big.Int
	ETCDifficulty            *big.Int
}

// Observer receives simulation events; the analysis package implements it.
type Observer interface {
	OnBlock(*BlockEvent)
	OnDay(*DayEvent)
}

// Engine runs one two-partition fork scenario.
type Engine struct {
	sc      *Scenario
	r       *rand.Rand
	sampler *pow.Sampler

	ETH, ETC Ledger
	Workload *Workload

	ethPools, etcPools *pool.Population
	Prices             market.Series

	ethShare  float64 // arbitrage state: ETH's share of hashrate
	observers []Observer

	// pending carries unmined submissions across days, per chain.
	pending map[string][]txPlan

	// storage tracks each full-fidelity chain's storage stack for fault
	// injection and crash recovery; empty in ModeFast.
	storage map[string]*chainStorage
	// firedCrashes marks scheduled crash specs that have been armed.
	firedCrashes map[int]bool
}

// chainStorage is one chain's storage stack: the KV the Blockchain uses
// (retry-wrapped when faults are on), the fault injector inside it, and
// whether the store has died beyond recovery.
type chainStorage struct {
	cfg    *chain.Config
	kv     db.KV
	faults *faultkv.KV // nil when no injection is configured
	// dead marks a store WAL recovery could not repair. The chain stops
	// mining — the partition behaves as if its miners departed — while
	// day events keep flowing.
	dead bool
}

// New builds an engine (ledgers, workload, pools, prices) from a scenario.
func New(sc *Scenario) (*Engine, error) {
	r := rand.New(rand.NewSource(sc.Seed))
	w := NewWorkload(sc, rand.New(rand.NewSource(sc.Seed+1)))
	gen := w.Genesis()

	ethCfg := chain.ETHConfig(1, w.DAODrainList(), DAORefundAddress)
	etcCfg := chain.ETCConfig(1)

	var eth, etc Ledger
	storage := map[string]*chainStorage{}
	switch sc.Mode {
	case ModeFast:
		eth = NewFastLedger(ethCfg, gen)
		etc = NewFastLedger(etcCfg, gen)
	case ModeFull:
		// Each chain gets its own store opened from the same config:
		// partitions never share storage, only gossip. When the scenario
		// injects storage faults or crashes, the stack per chain is
		// backend -> faultkv (injection) -> retry (transient absorption),
		// with injection held off until after the genesis bootstrap.
		mkStack := func(seedOff int64) (db.KV, *faultkv.KV, error) {
			kv, err := db.Open(sc.Storage)
			if err != nil {
				return nil, nil, err
			}
			if !sc.StorageFaults.Enabled() && len(sc.Crashes) == 0 {
				return kv, nil, nil
			}
			f := sc.StorageFaults
			f.Seed += seedOff // decorrelate the two chains' fault streams
			fkv := faultkv.Wrap(kv, f)
			fkv.SetEnabled(false)
			attempts := sc.StorageRetryAttempts
			if attempts <= 0 {
				attempts = db.DefaultRetryAttempts
			}
			return db.NewRetry(fkv, attempts), fkv, nil
		}
		ethKV, ethF, err := mkStack(0)
		if err != nil {
			return nil, err
		}
		etcKV, etcF, err := mkStack(1)
		if err != nil {
			return nil, err
		}
		eth, err = NewFullLedgerWithDB(ethCfg, gen, rand.New(rand.NewSource(sc.Seed+2)), ethKV)
		if err != nil {
			return nil, err
		}
		etc, err = NewFullLedgerWithDB(etcCfg, gen, rand.New(rand.NewSource(sc.Seed+3)), etcKV)
		if err != nil {
			return nil, err
		}
		if ethF != nil {
			ethF.SetEnabled(true)
		}
		if etcF != nil {
			etcF.SetEnabled(true)
		}
		storage["ETH"] = &chainStorage{cfg: ethCfg, kv: ethKV, faults: ethF}
		storage["ETC"] = &chainStorage{cfg: etcCfg, kv: etcKV, faults: etcF}
	default:
		return nil, fmt.Errorf("sim: unknown mode %d", sc.Mode)
	}

	mp := sc.Market
	if mp.Days < sc.Days {
		mp.Days = sc.Days
	}
	prices := market.GeneratePrices(mp, rand.New(rand.NewSource(sc.Seed+4)))

	return &Engine{
		sc:           sc,
		r:            r,
		sampler:      pow.NewSampler(rand.New(rand.NewSource(sc.Seed + 5))),
		ETH:          eth,
		ETC:          etc,
		Workload:     w,
		ethPools:     pool.NewZipfPopulation("eth", sc.ETHPools, sc.ETHPoolZipf),
		etcPools:     pool.NewUniformPopulation("etc", sc.ETCPools),
		Prices:       prices,
		ethShare:     1 - sc.ETCShareAtFork,
		pending:      map[string][]txPlan{},
		storage:      storage,
		firedCrashes: map[int]bool{},
	}, nil
}

// AddObserver registers an observer for block and day events.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// StorageStats sums the storage counters of both chains' key-value stores.
// ModeFast ledgers have no store, so the sum is zero there.
func (e *Engine) StorageStats() db.Stats {
	var s db.Stats
	if fl, ok := e.ETH.(*FullLedger); ok {
		s = s.Add(fl.BC.StorageStats())
	}
	if fl, ok := e.ETC.(*FullLedger); ok {
		s = s.Add(fl.BC.StorageStats())
	}
	return s
}

// CrashesFired reports how many scheduled CrashSpecs have been armed so
// far; chaos tests assert the crash path was actually exercised.
func (e *Engine) CrashesFired() int {
	n := 0
	for _, fired := range e.firedCrashes {
		if fired {
			n++
		}
	}
	return n
}

// StorageFaultEvents reports how many storage faults (injected errors,
// torn batches, crashes, reopens) the chains' stores have logged.
// Zero when no StorageFaults are configured or in ModeFast.
func (e *Engine) StorageFaultEvents() int {
	n := 0
	for _, stg := range e.storage {
		if stg.faults != nil {
			n += len(stg.faults.Journal())
		}
	}
	return n
}

// Run simulates sc.Days days. Day 0 begins at the fork moment: the two
// ledgers share genesis (the pre-fork ledger) and block 1 is the fork
// block on each side.
func (e *Engine) Run() error {
	alloc := market.Allocator{Elasticity: e.sc.ArbitrageElasticity}
	for day := 0; day < e.sc.Days; day++ {
		ethUSD := e.Prices.ETHUSD[day]
		etcUSD := e.Prices.ETCUSD[day]

		// Hashrate: the structural schedule sets the total (growth +
		// Zcash event) and dominates the split in the chaotic weeks
		// right after the fork; price arbitrage takes over with weight
		// 1-exp(-day/tau), which is what equalises USD-per-hash across
		// the chains (Fig 3).
		ethStruct, etcStruct := e.sc.Hashrates(day)
		total := ethStruct + etcStruct
		structShare := ethStruct / total
		priceShare := alloc.Step(e.ethShare, ethUSD, etcUSD)
		wStruct := 1.0
		if e.sc.StructuralBlendTauDays > 0 {
			wStruct = math.Exp(-float64(day) / e.sc.StructuralBlendTauDays)
		}
		e.ethShare = wStruct*structShare + (1-wStruct)*priceShare
		ethHash := total * e.ethShare
		etcHash := total * (1 - e.ethShare)

		// Replay protection activation: pin the EIP-155 block to the
		// chain's next height the day it ships.
		if day == e.sc.EIP155DayETH && e.sc.EIP155DayETH >= 0 {
			e.ETH.Config().EIP155Block = new(big.Int).SetUint64(e.ETH.HeadNumber() + 1)
		}
		if day == e.sc.EIP155DayETC && e.sc.EIP155DayETC >= 0 {
			e.ETC.Config().EIP155Block = new(big.Int).SetUint64(e.ETC.HeadNumber() + 1)
		}

		// Pool consolidation (Fig 5): ETH is immediately stable; ETC
		// begins consolidating once the dust settles.
		e.ethPools.Consolidate(e.sc.ETHPoolChurn, 1.0, e.sc.ETCPoolCap, e.r)
		if day >= e.sc.PoolConsolidationLagDays {
			e.etcPools.Consolidate(e.sc.ETCPoolChurn, e.sc.ETCPoolAlpha, e.sc.ETCPoolCap, e.r)
		}

		// Traffic for the day.
		e.enqueue("ETH", e.Workload.DayTraffic(day, "ETH", e.ETH, e.sc.EIP155DayETH))
		e.enqueue("ETC", e.Workload.DayTraffic(day, "ETC", e.ETC, e.sc.EIP155DayETC))

		// Mine both chains through the day.
		if err := e.mineDay(day, "ETH", e.ETH, ethHash, e.ethPools); err != nil {
			return err
		}
		if err := e.mineDay(day, "ETC", e.ETC, etcHash, e.etcPools); err != nil {
			return err
		}

		ev := &DayEvent{
			Day:           day,
			ETHUSD:        ethUSD,
			ETCUSD:        etcUSD,
			ETHHashrate:   ethHash,
			ETCHashrate:   etcHash,
			ETHDifficulty: e.ETH.HeadDifficulty(),
			ETCDifficulty: e.ETC.HeadDifficulty(),
		}
		for _, o := range e.observers {
			o.OnDay(ev)
		}
	}
	return nil
}

// recoverMine handles a MineBlock failure on a chain wired for storage
// faults. If the store crashed (torn batch or scheduled kill), it models
// the node restarting: reopen the medium, run WAL recovery via
// chain.Open, and either adopt the in-flight block — it reached its WAL
// commit point before the tear — or re-mine it with identical inputs,
// which deterministically reproduces the same block, so downstream
// figures are unaffected by the crash. A store that recovery reports as
// corrupt beyond repair retires the chain (dead=true): the partition
// loses its miners for the rest of the run, day events keep flowing.
//
// Returns the included transactions, whether a block was produced, and
// a fatal error. Errors that are not storage crashes surface unchanged.
func (e *Engine) recoverMine(led Ledger, stg *chainStorage, mineErr error, t uint64, coinbase types.Address, txs []*chain.Transaction) ([]*chain.Transaction, bool, error) {
	fl, isFull := led.(*FullLedger)
	if stg == nil || stg.faults == nil || !isFull || !stg.faults.Crashed() {
		return nil, false, mineErr
	}
	preHead := fl.HeadNumber() // memory never advances past the last durable commit
	const maxRestarts = 3      // random faults can crash the retry too
	for attempt := 0; attempt < maxRestarts; attempt++ {
		stg.faults.Reopen()
		bc, err := chain.Open(stg.cfg, stg.kv)
		if err != nil {
			stg.dead = true
			return nil, false, nil
		}
		fl.BC = bc
		if bc.Head().Number() == preHead+1 {
			// The in-flight block committed durably before the crash;
			// recovery finished applying it. Adopt it instead of
			// re-mining: its transactions are the included set.
			return bc.Head().Txs, true, nil
		}
		included, err := fl.MineBlock(t, coinbase, txs)
		if err == nil {
			return included, true, nil
		}
		if !stg.faults.Crashed() {
			return nil, false, err
		}
	}
	stg.dead = true
	return nil, false, nil
}

func (e *Engine) enqueue(chainName string, plans []txPlan) {
	e.pending[chainName] = append(e.pending[chainName], plans...)
	sort.SliceStable(e.pending[chainName], func(i, j int) bool {
		return e.pending[chainName][i].second < e.pending[chainName][j].second
	})
}

// mineDay advances one chain from the start to the end of the day,
// sampling block intervals from the difficulty/hashrate process and
// including pending transactions as their submission times pass.
func (e *Engine) mineDay(day int, chainName string, led Ledger, hashrate float64, pools *pool.Population) error {
	stg := e.storage[chainName]
	if stg != nil && stg.dead {
		return nil // storage died beyond recovery: the chain's miners departed
	}
	dayStart := e.sc.Epoch + uint64(day)*e.sc.DayLength
	dayEnd := dayStart + e.sc.DayLength
	t := led.HeadTime()
	if t < dayStart {
		t = dayStart
	}
	weights := pools.Weights()
	blockIdx := 0

	for {
		interval := e.sampler.BlockInterval(led.HeadDifficulty(), hashrate)
		t += interval
		if t >= dayEnd {
			return nil
		}
		// Submissions whose time has passed become the block body.
		queue := e.pending[chainName]
		daySecond := t - dayStart
		cut := 0
		for cut < len(queue) && queue[cut].second <= daySecond {
			cut++
		}
		var txs []*chain.Transaction
		if cut > 0 {
			txs = make([]*chain.Transaction, cut)
			for i := 0; i < cut; i++ {
				txs[i] = queue[i].tx
			}
			e.pending[chainName] = queue[cut:]
		}

		var coinbase types.Address
		if winner := e.sampler.WinnerIndex(weights); winner >= 0 {
			coinbase = pools.Pools[winner].Address
		}

		// A scheduled crash for this block arms the injector so the store
		// dies mid-commit; recovery below reopens and resumes.
		if stg != nil && stg.faults != nil {
			for i, cs := range e.sc.Crashes {
				if !e.firedCrashes[i] && cs.Chain == chainName && cs.Day == day && cs.Block == blockIdx {
					e.firedCrashes[i] = true
					stg.faults.CrashAtWriteOp(stg.faults.WriteOps() + 1 + cs.Op)
				}
			}
		}

		parentTime := led.HeadTime()
		included, err := led.MineBlock(t, coinbase, txs)
		if err != nil {
			var mined bool
			included, mined, err = e.recoverMine(led, stg, err, t, coinbase, txs)
			if err != nil {
				return fmt.Errorf("sim: mining %s day %d: %w", chainName, day, err)
			}
			if !mined {
				return nil // chain retired (unrecoverable storage)
			}
		}
		blockIdx++
		e.Workload.ObserveMined(chainName, included)

		if len(e.observers) > 0 {
			ev := &BlockEvent{
				Chain:      chainName,
				Day:        day,
				Number:     led.HeadNumber(),
				Time:       t,
				Delta:      t - parentTime,
				Difficulty: led.HeadDifficulty(),
				Coinbase:   coinbase,
			}
			if len(included) > 0 {
				ev.Txs = make([]TxInfo, len(included))
				for i, tx := range included {
					ev.Txs[i] = TxInfo{
						Hash:       tx.Hash(),
						From:       tx.From,
						Contract:   tx.To == nil || len(tx.Data) > 0,
						ChainBound: tx.ChainID != 0,
					}
				}
			}
			for _, o := range e.observers {
				o.OnBlock(ev)
			}
		}
	}
}
