package sim

import (
	"path/filepath"
	"strings"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/prng"
)

// ChainDataDir returns the subdirectory of a scenario's DataDir holding
// one chain's disk segments. The engine keeps the partitions' stores
// apart — they share gossip, never storage — and a restart must resolve
// the same layout to reopen them.
func ChainDataDir(root, chainName string) string {
	return filepath.Join(root, strings.ToLower(chainName))
}

// PartitionChainConfigs builds every partition's chain config exactly as
// New does, in partition order, so a restarting process can reopen
// persisted chains under identical consensus rules without running the
// simulation.
func PartitionChainConfigs(sc *Scenario) []*chain.Config {
	w := NewWorkload(sc)
	specs := sc.PartitionSpecs()
	out := make([]*chain.Config, len(specs))
	for i, sp := range specs {
		out[i] = sp.ChainConfig(w.DAODrainList(), DAORefundAddress)
	}
	return out
}

// OpenFullLedger reopens a full-fidelity ledger over a store that already
// holds a chain: chain.Open replays the WAL and adopts the persisted
// head instead of writing a genesis. The ledger is wired with the same
// seed-derived seal stream New would hand it, so a process that reopens
// and keeps mining continues the deterministic sequence.
func OpenFullLedger(cfg *chain.Config, sc *Scenario, chainName string, kv db.KV) (*FullLedger, error) {
	bc, err := chain.Open(cfg, kv)
	if err != nil {
		return nil, err
	}
	return &FullLedger{BC: bc, r: prng.New(sc.Seed, "seal", chainName)}, nil
}
