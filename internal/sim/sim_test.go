package sim

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"forkwatch/internal/chain"
	"forkwatch/internal/types"
)

var (
	alice = types.HexToAddress("0xa11ce")
	bob   = types.HexToAddress("0xb0b")
	miner = types.HexToAddress("0x31")
)

func testGenesis() *chain.Genesis {
	return &chain.Genesis{
		Difficulty: big.NewInt(1 << 20),
		Time:       1_469_020_840,
		Alloc: map[types.Address]*big.Int{
			alice: new(big.Int).Mul(big.NewInt(100), chain.Ether),
			bob:   new(big.Int).Mul(big.NewInt(100), chain.Ether),
		},
	}
}

func transfer(nonce uint64, from, to types.Address, wei int64, chainID uint64) *chain.Transaction {
	return chain.NewTransaction(nonce, &to, big.NewInt(wei), 21_000, big.NewInt(1), nil).Sign(from, chainID)
}

func TestFastLedgerBasics(t *testing.T) {
	led := NewFastLedger(chain.MainnetLikeConfig(), testGenesis())
	if led.HeadNumber() != 0 || led.HeadTime() != 1_469_020_840 {
		t.Fatalf("bad genesis head: %d @ %d", led.HeadNumber(), led.HeadTime())
	}
	tx := transfer(0, alice, bob, 1000, 0)
	included, err := led.MineBlock(led.HeadTime()+14, miner, []*chain.Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if len(included) != 1 {
		t.Fatalf("included %d txs", len(included))
	}
	if led.NonceOf(alice) != 1 {
		t.Error("nonce not advanced")
	}
	wantBob := new(big.Int).Add(new(big.Int).Mul(big.NewInt(100), chain.Ether), big.NewInt(1000))
	if led.BalanceOf(bob).Cmp(wantBob) != 0 {
		t.Errorf("bob balance = %v", led.BalanceOf(bob))
	}
	// Coinbase got reward + fee.
	wantMiner := new(big.Int).Add(led.Config().BlockReward, big.NewInt(21_000))
	if led.BalanceOf(miner).Cmp(wantMiner) != 0 {
		t.Errorf("miner balance = %v, want %v", led.BalanceOf(miner), wantMiner)
	}
}

func TestFastLedgerValidation(t *testing.T) {
	led := NewFastLedger(chain.MainnetLikeConfig(), testGenesis())
	// Nonce gap.
	if err := led.ValidateTx(transfer(5, alice, bob, 1, 0)); !errors.Is(err, chain.ErrNonceTooHigh) {
		t.Errorf("future nonce: %v", err)
	}
	// Unknown sender has no funds.
	ghost := types.HexToAddress("0x60057")
	if err := led.ValidateTx(transfer(0, ghost, bob, 1, 0)); !errors.Is(err, chain.ErrInsufficientFunds) {
		t.Errorf("unfunded: %v", err)
	}
	// Chain-bound tx before EIP-155 activation.
	if err := led.ValidateTx(transfer(0, alice, bob, 1, 1)); !errors.Is(err, chain.ErrWrongChainID) {
		t.Errorf("pre-activation chain id: %v", err)
	}
	// After activation: correct id passes, wrong id fails.
	led.Config().EIP155Block = big.NewInt(0)
	if err := led.ValidateTx(transfer(0, alice, bob, 1, led.Config().ChainID)); err != nil {
		t.Errorf("bound tx on own chain: %v", err)
	}
	if err := led.ValidateTx(transfer(0, alice, bob, 1, 999)); !errors.Is(err, chain.ErrWrongChainID) {
		t.Errorf("bound tx for other chain: %v", err)
	}
	// Tampered signature.
	bad := transfer(0, alice, bob, 1, 0)
	bad.Value = big.NewInt(7)
	if err := led.ValidateTx(bad); !errors.Is(err, chain.ErrBadSignature) {
		t.Errorf("tampered: %v", err)
	}
}

func TestFastLedgerDAOFork(t *testing.T) {
	gen := testGenesis()
	dao := DAOAddress(0)
	gen.Alloc[dao] = big.NewInt(1_000_000)
	cfg := chain.ETHConfig(1, []types.Address{dao}, DAORefundAddress)
	led := NewFastLedger(cfg, gen)
	if _, err := led.MineBlock(led.HeadTime()+14, miner, nil); err != nil {
		t.Fatal(err)
	}
	if led.BalanceOf(dao).Sign() != 0 {
		t.Error("DAO not drained at fork block")
	}
	if led.BalanceOf(DAORefundAddress).Int64() != 1_000_000 {
		t.Error("refund contract did not receive the drain")
	}
	// The non-supporting chain keeps the balance.
	etc := NewFastLedger(chain.ETCConfig(1), gen)
	if _, err := etc.MineBlock(etc.HeadTime()+14, miner, nil); err != nil {
		t.Fatal(err)
	}
	if etc.BalanceOf(dao).Int64() != 1_000_000 {
		t.Error("ETC should keep the DAO balance")
	}
}

func TestFastLedgerDifficultyMatchesConsensusRule(t *testing.T) {
	cfg := chain.MainnetLikeConfig()
	led := NewFastLedger(cfg, testGenesis())
	parent := &chain.Header{Time: led.HeadTime(), Difficulty: led.HeadDifficulty()}
	tm := led.HeadTime() + 5
	want := chain.CalcDifficulty(cfg, tm, parent)
	led.MineBlock(tm, miner, nil)
	if led.HeadDifficulty().Cmp(want) != 0 {
		t.Errorf("difficulty %v, want %v", led.HeadDifficulty(), want)
	}
}

// TestLedgerConformance drives the fast and full ledgers with an identical
// block/transaction script — including replays, chain binding, nonce gaps
// and underfunded senders — and requires identical inclusion decisions and
// account outcomes. This is what licenses using the fast ledger for the
// nine-month experiments.
func TestLedgerConformance(t *testing.T) {
	gen := testGenesis()
	dao := DAOAddress(0)
	gen.Alloc[dao] = big.NewInt(5_000_000)
	cfgFast := chain.ETHConfig(1, []types.Address{dao}, DAORefundAddress)
	cfgFull := chain.ETHConfig(1, []types.Address{dao}, DAORefundAddress)
	cfgFast.EIP155Block = big.NewInt(5)
	cfgFull.EIP155Block = big.NewInt(5)

	fast := NewFastLedger(cfgFast, gen)
	full, err := NewFullLedger(cfgFull, gen, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}

	carol := types.HexToAddress("0xca401")
	script := [][]*chain.Transaction{
		{transfer(0, alice, bob, 100, 0)},
		{transfer(1, alice, carol, 50, 0), transfer(0, bob, carol, 25, 0)},
		{transfer(3, alice, bob, 1, 0)},    // nonce gap: dropped
		{transfer(0, carol, bob, 1000, 0)}, // carol has 75 wei minus nothing... underfunded for gas
		{transfer(2, alice, bob, 10, 1)},   // chain-bound before activation: dropped (block 5 activates)
		{transfer(2, alice, bob, 10, 1)},   // now valid (block 6? activation at 5)
		{transfer(3, alice, bob, 10, 999)}, // wrong chain id: dropped
		{transfer(3, alice, bob, 10, 0)},   // legacy still fine
		{transfer(0, carol, bob, 1, 1-1)},  // carol small spend, maybe funded
	}
	tm := gen.Time
	for i, txs := range script {
		tm += 14
		fastInc, err := fast.MineBlock(tm, miner, txs)
		if err != nil {
			t.Fatalf("block %d fast: %v", i, err)
		}
		fullInc, err := full.MineBlock(tm, miner, txs)
		if err != nil {
			t.Fatalf("block %d full: %v", i, err)
		}
		if len(fastInc) != len(fullInc) {
			t.Fatalf("block %d: fast included %d, full %d", i, len(fastInc), len(fullInc))
		}
		for j := range fastInc {
			if fastInc[j].Hash() != fullInc[j].Hash() {
				t.Fatalf("block %d tx %d: inclusion order diverged", i, j)
			}
		}
		if fast.HeadDifficulty().Cmp(full.HeadDifficulty()) != 0 {
			t.Fatalf("block %d: difficulty diverged: %v vs %v", i, fast.HeadDifficulty(), full.HeadDifficulty())
		}
		if fast.HeadNumber() != full.HeadNumber() || fast.HeadTime() != full.HeadTime() {
			t.Fatalf("block %d: head metadata diverged", i)
		}
	}
	for _, a := range []types.Address{alice, bob, carol, dao, DAORefundAddress, miner} {
		if fast.NonceOf(a) != full.NonceOf(a) {
			t.Errorf("nonce diverged for %s: %d vs %d", a, fast.NonceOf(a), full.NonceOf(a))
		}
		if fast.BalanceOf(a).Cmp(full.BalanceOf(a)) != 0 {
			t.Errorf("balance diverged for %s: %v vs %v", a, fast.BalanceOf(a), full.BalanceOf(a))
		}
	}
}

// shortScenario returns a small, fast scenario for engine tests.
func shortScenario(seed int64, days int, mode Mode) *Scenario {
	sc := NewScenario(seed, days)
	sc.Mode = mode
	sc.DayLength = 3600 // 1-hour days keep block counts small
	sc.Users = 50
	sc.ETHTxPerDay = 40
	sc.ETCTxPerDay = 15
	return sc
}

type countingObserver struct {
	blocks     map[string]int
	days       int
	lastNumber map[string]uint64
	badDelta   int
	badNumber  int
}

func newCountingObserver() *countingObserver {
	return &countingObserver{blocks: map[string]int{}, lastNumber: map[string]uint64{}}
}

func (c *countingObserver) OnBlock(ev *BlockEvent) {
	c.blocks[ev.Chain]++
	if ev.Delta == 0 {
		c.badDelta++
	}
	if ev.Number != c.lastNumber[ev.Chain]+1 {
		c.badNumber++
	}
	c.lastNumber[ev.Chain] = ev.Number
}

func (c *countingObserver) OnDay(ev *DayEvent) { c.days++ }

func TestEngineFastRun(t *testing.T) {
	sc := shortScenario(7, 3, ModeFast)
	eng, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	obs := newCountingObserver()
	eng.AddObserver(obs)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.days != 3 {
		t.Errorf("day events = %d, want 3", obs.days)
	}
	if obs.blocks["ETH"] == 0 || obs.blocks["ETC"] == 0 {
		t.Errorf("no blocks mined: %v", obs.blocks)
	}
	// ETH mines at roughly the target rate; ETC is collapsed on day 0-2.
	if obs.blocks["ETC"] >= obs.blocks["ETH"]/4 {
		t.Errorf("ETC should be collapsed right after the fork: ETH=%d ETC=%d",
			obs.blocks["ETH"], obs.blocks["ETC"])
	}
	if obs.badDelta > 0 || obs.badNumber > 0 {
		t.Errorf("event invariants violated: %d zero deltas, %d non-monotone numbers",
			obs.badDelta, obs.badNumber)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() (int, int) {
		sc := shortScenario(42, 3, ModeFast)
		eng, err := New(sc)
		if err != nil {
			t.Fatal(err)
		}
		obs := newCountingObserver()
		eng.AddObserver(obs)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return obs.blocks["ETH"], obs.blocks["ETC"]
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", e1, c1, e2, c2)
	}
}

func TestEngineSeedsDiffer(t *testing.T) {
	blockCount := func(seed int64) int {
		sc := shortScenario(seed, 2, ModeFast)
		eng, _ := New(sc)
		obs := newCountingObserver()
		eng.AddObserver(obs)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return obs.blocks["ETH"]*100000 + obs.blocks["ETC"]
	}
	if blockCount(1) == blockCount(2) && blockCount(3) == blockCount(4) {
		t.Error("different seeds produced identical runs twice; RNG plumbing suspect")
	}
}

// TestEngineFullMode runs the engine against real blockchains and verifies
// the ledgers stay consensus-valid (InsertBlock would fail otherwise) and
// that the DAO fork diverged the two chains' states.
func TestEngineFullMode(t *testing.T) {
	sc := shortScenario(5, 2, ModeFull)
	eng, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	obs := newCountingObserver()
	eng.AddObserver(obs)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	ethBC := eng.Ledger("ETH").(*FullLedger).BC
	etcBC := eng.Ledger("ETC").(*FullLedger).BC
	if ethBC.Genesis().Hash() != etcBC.Genesis().Hash() {
		t.Error("chains must share genesis")
	}
	if ethBC.Head().Number() == 0 {
		t.Error("ETH chain did not advance")
	}
	ethSt, err := ethBC.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	etcSt, err := etcBC.HeadState()
	if err != nil {
		t.Fatal(err)
	}
	dao := DAOAddress(0)
	if ethSt.GetBalance(dao).Sign() != 0 {
		t.Error("ETH should have drained the DAO in full mode")
	}
	if etcSt.GetBalance(dao).Sign() == 0 {
		t.Error("ETC should keep the DAO balance in full mode")
	}
	// Fork blocks carry/omit the marker respectively.
	ethFork, _ := ethBC.BlockByNumber(1)
	etcFork, _ := etcBC.BlockByNumber(1)
	if string(ethFork.Header.Extra) != string(chain.DAOForkExtra) {
		t.Error("ETH fork block missing marker")
	}
	if string(etcFork.Header.Extra) == string(chain.DAOForkExtra) {
		t.Error("ETC fork block should not carry the marker")
	}
}

func TestScenarioHashrates(t *testing.T) {
	sc := NewScenario(1, 270)
	eth0, etc0 := sc.Hashrates(0)
	if etc0/(eth0+etc0) > 0.05 {
		t.Errorf("day-0 ETC share too high: %v", etc0/(eth0+etc0))
	}
	// Rejoin raises the ETC share over two weeks.
	_, etc14 := sc.Hashrates(14)
	if etc14 <= etc0 {
		t.Error("ETC hashrate should rise as miners rejoin")
	}
	// Zcash launch dips the total.
	ethBefore, etcBefore := sc.Hashrates(sc.ZcashLaunchDay - 1)
	ethAfter, etcAfter := sc.Hashrates(sc.ZcashLaunchDay)
	if ethAfter+etcAfter >= ethBefore+etcBefore {
		t.Error("Zcash launch should dip total hashrate")
	}
	// Long-run growth.
	eth270, _ := sc.Hashrates(269)
	if eth270 < 5*eth0 {
		t.Errorf("ETH hashrate should grow several-fold: %v -> %v", eth0, eth270)
	}
}

func TestForkRaceShareDrivesLength(t *testing.T) {
	cfg := chain.MainnetLikeConfig()
	r := rand.New(rand.NewSource(9))
	// ETH-like: large, well-monitored network — the laggard subgroup
	// notices within a couple of hours. ETC-like: small network, slower
	// operational reaction. These are the E3 calibrations (§2.1's 86 vs
	// 3,583 blocks).
	ethLike := &ForkRace{
		Config: cfg, TotalHashrate: 5e12,
		MinorityShare: 0.2, NoticeMeanSeconds: 2 * 3600,
	}
	etcLike := &ForkRace{
		Config: cfg, TotalHashrate: 5e11,
		MinorityShare: 0.30, NoticeMeanSeconds: 20 * 3600,
	}
	ethLen := ethLike.RunMean(50, r)
	etcLen := etcLike.RunMean(50, r)
	if etcLen < 10*ethLen {
		t.Errorf("small-network fork should sustain far longer: ETH-like %.0f vs ETC-like %.0f", ethLen, etcLen)
	}
	// Rough magnitudes: tens-to-low-hundreds vs thousands of blocks.
	if ethLen > 500 {
		t.Errorf("ETH-like fork too long: %.0f blocks", ethLen)
	}
	if etcLen < 1000 {
		t.Errorf("ETC-like fork too short: %.0f blocks", etcLen)
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0, 5, 100, 1200} {
		const n = 3000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(r, lambda)
		}
		mean := float64(sum) / n
		if lambda == 0 && mean != 0 {
			t.Error("lambda 0 should always be 0")
		}
		if lambda > 0 && (mean < lambda*0.93 || mean > lambda*1.07) {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

// TestCalibrationShortTerm guards the Fig 1 / E2 calibration: the default
// scenario must keep reproducing the paper's headline shapes — a near-dead
// ETC in the first hours, deltas over 1,200s, recovery on the order of
// one-to-two days, an unaffected ETH.
func TestCalibrationShortTerm(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run takes ~300ms")
	}
	sc := NewScenario(1, 4) // 4 real days
	eng, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	type hourStats struct {
		blocks   map[string][]int
		maxDelta uint64
	}
	stats := hourStats{blocks: map[string][]int{}}
	obs := observerFunc{
		onBlock: func(ev *BlockEvent) {
			h := int((ev.Time - sc.Epoch) / 3600)
			s := stats.blocks[ev.Chain]
			for len(s) <= h {
				s = append(s, 0)
			}
			s[h]++
			stats.blocks[ev.Chain] = s
			if ev.Chain == "ETC" && ev.Delta > stats.maxDelta {
				stats.maxDelta = ev.Delta
			}
		},
	}
	eng.AddObserver(&obs)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	etc := stats.blocks["ETC"]
	eth := stats.blocks["ETH"]
	early := 0
	for h := 0; h < 6 && h < len(etc); h++ {
		early += etc[h]
	}
	if early > 60 { // target rate would be ~1540 blocks in 6 hours
		t.Errorf("ETC not collapsed after the fork: %d blocks in 6h", early)
	}
	if stats.maxDelta < 1200 {
		t.Errorf("max ETC delta %ds; the paper observed spikes over 1200s", stats.maxDelta)
	}
	// ETH hums along at roughly the target rate from hour zero.
	if eth[0] < 150 || eth[0] > 400 {
		t.Errorf("ETH first hour = %d blocks, expected near 257", eth[0])
	}
	// By day 3-4 ETC is producing at a healthy rate again.
	lateStart := 3 * 24
	late := 0
	n := 0
	for h := lateStart; h < lateStart+12 && h < len(etc); h++ {
		late += etc[h]
		n++
	}
	if n > 0 && late/n < 180 {
		t.Errorf("ETC day-4 rate = %d blocks/hr, expected recovery toward 257", late/n)
	}
}

// observerFunc adapts closures to the Observer interface.
type observerFunc struct {
	onBlock func(*BlockEvent)
	onDay   func(*DayEvent)
}

func (o *observerFunc) OnBlock(ev *BlockEvent) {
	if o.onBlock != nil {
		o.onBlock(ev)
	}
}
func (o *observerFunc) OnDay(ev *DayEvent) {
	if o.onDay != nil {
		o.onDay(ev)
	}
}
