package sim

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"forkwatch/internal/chain"
	"forkwatch/internal/market"
	"forkwatch/internal/pool"
	"forkwatch/internal/types"
)

// PartitionSpec describes one named partition of an N-way fork: its chain
// rules, its hashrate share at the fork moment, the economics that move
// miners toward or away from it, and its workload and mining-pool
// population. Scenario.Partitions holds one spec per partition; when the
// list is empty the scenario resolves to the paper's historical two-way
// split synthesised from the legacy scalar knobs (see LegacyPartitions).
//
// The partition at index 0 is the anchor: its hashrate share is always
// the residual 1 - sum(others), which is how the two-way engine always
// treated the majority chain. Its ShareAtFork must therefore be zero
// (meaning "the rest") or spell the residual out exactly.
type PartitionSpec struct {
	// Name labels the partition everywhere: analysis buckets, export
	// rows, RPC routes (/<lowercase name>) and PRNG stream derivation —
	// which is why two-way seeds stay byte-identical across the N-way
	// engine: the streams key on the name, not the slot. Uppercase
	// alphanumeric, starting with a letter.
	Name string
	// ChainID is the partition's EIP-155 replay domain; must be unique.
	ChainID uint64
	// DAOSupport selects the pro-fork rules (the irregular state change
	// applies at the fork block).
	DAOSupport bool

	// ShareAtFork is the fraction of total hashrate mining this partition
	// the moment the fork activates. Ignored for the anchor (index 0),
	// which takes the residual.
	ShareAtFork float64
	// EconomicWeight scales the partition's USD price in the arbitrage
	// target: miners chase weight*price, so a chain the market values
	// can hold hashrate beyond its raw price. Zero means 1.
	EconomicWeight float64
	// RejoinShare is additional total-hashrate share returning to the
	// partition after the fork, with exponential time constant
	// RejoinTauDays (the paper's two-week ETC rejoin).
	RejoinShare   float64
	RejoinTauDays float64
	// CollapseDay, when positive, starts an exponential decay of the
	// partition's structural share toward zero with time constant
	// CollapseTauDays (zero tau collapses instantly): the partition dies
	// and its miners migrate to the survivors.
	CollapseDay     int
	CollapseTauDays float64
	// Behaviour is the pool behaviour model: "profit-only" (default),
	// "ideological" or "mixed" — how much of the partition's hashrate
	// chases USD-per-hash versus staying put (pool.Behaviour).
	Behaviour string
	// IdeologicalShare is the sticky fraction under the mixed behaviour
	// (default one half).
	IdeologicalShare float64

	// Price0, DriftEdge and RallyShare parameterise the partition's leg
	// of the coupled price walk (market.ChainParams).
	Price0     float64
	DriftEdge  float64
	RallyShare float64

	// PrimaryFraction is the share of users who participate only in this
	// partition; users not claimed by any partition transact on all of
	// them.
	PrimaryFraction float64
	// TxPerDay is the partition's base daily transaction rate.
	TxPerDay float64
	// Speculation opts the partition into the scenario's speculative
	// traffic ramp (SpeculationStartDay/SpeculationFactor).
	Speculation bool
	// EIP155Day is the day replay protection activates; negative never.
	EIP155Day int

	// Pools configures the mining-pool population: PoolZipf > 0 starts
	// from a Zipf size distribution with that exponent, otherwise the
	// population starts uniform. PoolChurn/PoolAlpha/PoolCap drive daily
	// preferential-attachment consolidation once PoolLagDays have passed.
	Pools       int
	PoolZipf    float64
	PoolChurn   float64
	PoolAlpha   float64
	PoolCap     float64
	PoolLagDays int
}

// partitionNameRE is the partition name grammar: uppercase alphanumeric,
// leading letter, at most 16 characters. The constraints keep names
// round-trippable through the lowercase forms used for RPC routes, disk
// subdirectories, CSV headers and address-derivation tags.
var partitionNameRE = regexp.MustCompile(`^[A-Z][A-Z0-9]{0,15}$`)

// behaviour resolves the spec's pool behaviour model.
func (p PartitionSpec) behaviour() (pool.Behaviour, error) {
	return pool.ParseBehaviour(p.Behaviour)
}

// stickyFraction is the fraction of the partition's hashrate pinned to
// the structural schedule by its behaviour model.
func (p PartitionSpec) stickyFraction() float64 {
	b, err := p.behaviour()
	if err != nil {
		return 0
	}
	return b.StickyFraction(p.IdeologicalShare)
}

// economicWeight returns the arbitrage weight with its default applied.
func (p PartitionSpec) economicWeight() float64 {
	if p.EconomicWeight == 0 {
		return 1
	}
	return p.EconomicWeight
}

// structuralShare returns the partition's structural hashrate share on
// day t (anchor partitions are handled by the caller as the residual).
func (p PartitionSpec) structuralShare(t float64, day int) float64 {
	s := p.ShareAtFork
	if p.RejoinTauDays > 0 {
		s += p.RejoinShare * (1 - math.Exp(-t/p.RejoinTauDays))
	}
	if p.CollapseDay > 0 && day >= p.CollapseDay {
		if p.CollapseTauDays > 0 {
			s *= math.Exp(-(t - float64(p.CollapseDay)) / p.CollapseTauDays)
		} else {
			s = 0
		}
	}
	return s
}

// marketParams maps the spec onto its leg of the coupled price walk.
func (p PartitionSpec) marketParams() market.ChainParams {
	return market.ChainParams{Price0: p.Price0, DriftEdge: p.DriftEdge, RallyShare: p.RallyShare}
}

// ChainConfig builds the partition's consensus rules. Every partition
// forks at block 1 from the shared genesis; drain and refund apply only
// under DAOSupport.
func (p PartitionSpec) ChainConfig(drain []types.Address, refund types.Address) *chain.Config {
	return chain.PartitionConfig(p.Name, p.ChainID, 1, p.DAOSupport, drain, refund)
}

// Registry is the partition registry: the resolved, validated spec list
// and the index ↔ name mapping every layer shares. No layer downstream
// of the registry assumes k=2.
type Registry struct {
	specs  []PartitionSpec
	byName map[string]int
}

// NewRegistry builds a registry over a resolved spec list. The caller is
// expected to have validated the scenario; NewRegistry only enforces the
// invariants it needs for the mapping itself (non-empty, unique names).
func NewRegistry(specs []PartitionSpec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: partition list is empty")
	}
	byName := make(map[string]int, len(specs))
	for i, sp := range specs {
		if _, dup := byName[sp.Name]; dup {
			return nil, fmt.Errorf("sim: duplicate partition name %q", sp.Name)
		}
		byName[sp.Name] = i
	}
	return &Registry{specs: specs, byName: byName}, nil
}

// Len returns the partition count.
func (r *Registry) Len() int { return len(r.specs) }

// Specs returns the spec list in partition order (do not mutate).
func (r *Registry) Specs() []PartitionSpec { return r.specs }

// Spec returns the i-th partition's spec.
func (r *Registry) Spec(i int) PartitionSpec { return r.specs[i] }

// Index maps a partition name to its slot.
func (r *Registry) Index(name string) (int, bool) {
	i, ok := r.byName[name]
	return i, ok
}

// Names returns the partition names in order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.specs))
	for i, sp := range r.specs {
		out[i] = sp.Name
	}
	return out
}

// PartitionSpecs resolves the scenario's partition list: the explicit
// Partitions field when set, otherwise the legacy two-way synthesis.
func (sc *Scenario) PartitionSpecs() []PartitionSpec {
	if len(sc.Partitions) > 0 {
		return sc.Partitions
	}
	return sc.LegacyPartitions()
}

// Registry resolves and indexes the scenario's partitions.
func (sc *Scenario) Registry() (*Registry, error) {
	return NewRegistry(sc.PartitionSpecs())
}

// PartitionNames returns the resolved partition names in order.
func (sc *Scenario) PartitionNames() []string {
	specs := sc.PartitionSpecs()
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.Name
	}
	return out
}

// StructHashrates returns every partition's structural hashrate on the
// given day — the schedule of fork exit, rejoin, collapse, exogenous
// growth and the Zcash event, before price arbitrage. The anchor (index
// 0) takes the residual share.
func (sc *Scenario) StructHashrates(day int, specs []PartitionSpec) []float64 {
	t := float64(day)
	shares := make([]float64, len(specs))
	rest := 0.0
	for i := 1; i < len(specs); i++ {
		s := specs[i].structuralShare(t, day)
		shares[i] = s
		rest += s
	}
	shares[0] = 1 - rest
	growth := math.Pow(1+sc.ETHGrowthPerDay, t)
	zcash := 1.0
	if sc.ZcashLaunchDay > 0 && day >= sc.ZcashLaunchDay {
		dt := t - float64(sc.ZcashLaunchDay)
		zcash = 1 - sc.ZcashPull*math.Exp(-dt/sc.ZcashReturnTauDays)
	}
	total := sc.TotalHashrate * growth * zcash
	out := make([]float64, len(specs))
	for i := range specs {
		out[i] = total * shares[i]
	}
	return out
}

// Validate cross-checks the scenario's partition specs and the fields
// that couple to them. It mirrors db.Config.Validate: every violation is
// reported with the offending field, and the zero-configured legacy
// scenario always passes.
func (sc *Scenario) Validate() error {
	if sc.Days < 0 {
		return fmt.Errorf("sim: Days %d is negative", sc.Days)
	}
	if sc.DayLength == 0 {
		return fmt.Errorf("sim: DayLength must be positive")
	}
	specs := sc.PartitionSpecs()
	if len(specs) == 0 {
		return fmt.Errorf("sim: partition list is empty")
	}
	names := make(map[string]bool, len(specs))
	chainIDs := make(map[uint64]string, len(specs))
	shareSum := 0.0
	primarySum := 0.0
	weightSum := 0.0
	for i, sp := range specs {
		where := fmt.Sprintf("sim: partition %d (%q)", i, sp.Name)
		if !partitionNameRE.MatchString(sp.Name) {
			return fmt.Errorf("%s: name must match %s", where, partitionNameRE)
		}
		if names[sp.Name] {
			return fmt.Errorf("%s: duplicate name", where)
		}
		names[sp.Name] = true
		if sp.ChainID == 0 {
			return fmt.Errorf("%s: ChainID must be nonzero", where)
		}
		if prev, dup := chainIDs[sp.ChainID]; dup {
			return fmt.Errorf("%s: ChainID %d already used by %q", where, sp.ChainID, prev)
		}
		chainIDs[sp.ChainID] = sp.Name
		if sp.ShareAtFork < 0 || sp.ShareAtFork > 1 {
			return fmt.Errorf("%s: ShareAtFork %g outside [0,1]", where, sp.ShareAtFork)
		}
		if i > 0 {
			shareSum += sp.ShareAtFork
		}
		if sp.EconomicWeight < 0 {
			return fmt.Errorf("%s: EconomicWeight %g is negative", where, sp.EconomicWeight)
		}
		weightSum += sp.economicWeight()
		if sp.RejoinShare < 0 || sp.RejoinTauDays < 0 {
			return fmt.Errorf("%s: rejoin curve (share %g, tau %g) must be non-negative", where, sp.RejoinShare, sp.RejoinTauDays)
		}
		if sp.CollapseDay < 0 || sp.CollapseTauDays < 0 {
			return fmt.Errorf("%s: collapse (day %d, tau %g) must be non-negative", where, sp.CollapseDay, sp.CollapseTauDays)
		}
		if _, err := sp.behaviour(); err != nil {
			return fmt.Errorf("%s: %w", where, err)
		}
		if sp.IdeologicalShare < 0 || sp.IdeologicalShare > 1 {
			return fmt.Errorf("%s: IdeologicalShare %g outside [0,1]", where, sp.IdeologicalShare)
		}
		if sp.PrimaryFraction < 0 || sp.PrimaryFraction > 1 {
			return fmt.Errorf("%s: PrimaryFraction %g outside [0,1]", where, sp.PrimaryFraction)
		}
		primarySum += sp.PrimaryFraction
		if sp.TxPerDay < 0 {
			return fmt.Errorf("%s: TxPerDay %g is negative", where, sp.TxPerDay)
		}
		if sp.Pools < 1 {
			return fmt.Errorf("%s: Pools %d (need at least one)", where, sp.Pools)
		}
	}
	const tol = 1e-9
	if shareSum > 1+tol {
		return fmt.Errorf("sim: non-anchor ShareAtFork sum %g exceeds 1", shareSum)
	}
	if anchor := specs[0].ShareAtFork; anchor != 0 && math.Abs(anchor-(1-shareSum)) > tol {
		return fmt.Errorf("sim: anchor ShareAtFork %g is neither 0 (auto) nor the residual %g", anchor, 1-shareSum)
	}
	if weightSum <= 0 {
		return fmt.Errorf("sim: economic weights sum to %g (need > 0)", weightSum)
	}
	if primarySum > 1+tol {
		return fmt.Errorf("sim: PrimaryFraction sum %g exceeds 1", primarySum)
	}
	for i, cs := range sc.Crashes {
		if !names[cs.Chain] {
			return fmt.Errorf("sim: crash spec %d names unknown chain %q (have %s)", i, cs.Chain, strings.Join(sortedNames(names), ", "))
		}
		if cs.Day < 0 || cs.Block < 0 {
			return fmt.Errorf("sim: crash spec %d: day %d / block %d must be non-negative", i, cs.Day, cs.Block)
		}
	}
	return nil
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParsePartitionSpecs parses the -partitions flag grammar: partitions
// separated by ';', each NAME[:key=value,...]. Example:
//
//	MAIN:weight=0.7,txperday=400;CLASSIC:share=0.3,weight=0.3,behaviour=mixed,rejoin=0.05,rejointau=10
//
// Keys: share, weight, rejoin, rejointau, collapseday, collapsetau,
// behaviour, ideological, price0, driftedge, rallyshare, primary,
// txperday, speculation, eip155, chainid, dao, pools, zipf, churn,
// alpha, cap, lag. Unset keys default to a neutral spec (chain id
// index+1, weight 1, price0 1, 20 uniform pools, EIP-155 never).
func ParsePartitionSpecs(s string) ([]PartitionSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []PartitionSpec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		name = strings.ToUpper(strings.TrimSpace(name))
		sp := DefaultPartitionSpec(name, len(out))
		if strings.TrimSpace(rest) != "" {
			for _, kv := range strings.Split(rest, ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("sim: partition %q: bad key=value %q", name, kv)
				}
				if err := sp.set(strings.ToLower(strings.TrimSpace(key)), strings.TrimSpace(val)); err != nil {
					return nil, fmt.Errorf("sim: partition %q: %w", name, err)
				}
			}
		}
		out = append(out, sp)
	}
	return out, nil
}

// DefaultPartitionSpec returns a neutral spec for a parsed partition:
// every knob that must be positive gets a sane default, everything else
// stays zero. idx is the partition's position, used for the default
// chain id.
func DefaultPartitionSpec(name string, idx int) PartitionSpec {
	return PartitionSpec{
		Name:       name,
		ChainID:    uint64(idx + 1),
		DAOSupport: idx == 0, // the anchor keeps the pro-fork rules by default
		Price0:     1,
		TxPerDay:   100,
		EIP155Day:  -1,
		Pools:      20,
		PoolAlpha:  1,
		PoolCap:    0.24,
	}
}

// set applies one key=value of the -partitions grammar.
func (p *PartitionSpec) set(key, val string) error {
	f := func() (float64, error) { return strconv.ParseFloat(val, 64) }
	i := func() (int, error) { return strconv.Atoi(val) }
	b := func() (bool, error) { return strconv.ParseBool(val) }
	var err error
	switch key {
	case "share":
		p.ShareAtFork, err = f()
	case "weight":
		p.EconomicWeight, err = f()
	case "rejoin":
		p.RejoinShare, err = f()
	case "rejointau":
		p.RejoinTauDays, err = f()
	case "collapseday":
		p.CollapseDay, err = i()
	case "collapsetau":
		p.CollapseTauDays, err = f()
	case "behaviour", "behavior":
		p.Behaviour = val
	case "ideological":
		p.IdeologicalShare, err = f()
	case "price0":
		p.Price0, err = f()
	case "driftedge":
		p.DriftEdge, err = f()
	case "rallyshare":
		p.RallyShare, err = f()
	case "primary":
		p.PrimaryFraction, err = f()
	case "txperday":
		p.TxPerDay, err = f()
	case "speculation":
		p.Speculation, err = b()
	case "eip155":
		p.EIP155Day, err = i()
	case "chainid":
		var id uint64
		id, err = strconv.ParseUint(val, 10, 64)
		p.ChainID = id
	case "dao":
		p.DAOSupport, err = b()
	case "pools":
		p.Pools, err = i()
	case "zipf":
		p.PoolZipf, err = f()
	case "churn":
		p.PoolChurn, err = f()
	case "alpha":
		p.PoolAlpha, err = f()
	case "cap":
		p.PoolCap, err = f()
	case "lag":
		p.PoolLagDays, err = i()
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	if err != nil {
		return fmt.Errorf("key %q: bad value %q", key, val)
	}
	return nil
}
