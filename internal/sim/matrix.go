package sim

import "forkwatch/internal/pool"

// MatrixCell is one cell of the scenario-matrix sweep: a hashrate/
// economic-weight grid point crossed with a pool behaviour model for the
// minority partition. The sweep asks the question the paper's future
// work poses — when does a minority fork survive? — across regimes where
// hashrate and economic value agree, disagree, or disagree violently.
type MatrixCell struct {
	// Grid names the hashrate/economics regime: "aligned" (the market
	// values the majority chain), "conflict" (the market values the
	// minority), "extreme" (a sliver of hashrate holds nearly all the
	// economic weight).
	Grid string
	// Behaviour is the minority partition's pool behaviour model.
	Behaviour string
	// Scenario is the ready-to-run configuration for the cell.
	Scenario *Scenario
}

// matrixGrid is one hashrate/economics regime of the sweep.
type matrixGrid struct {
	name               string
	minorityHash       float64
	majorityEconWeight float64
	minorityEconWeight float64
}

// matrixGrids spans agreement, disagreement and extreme disagreement
// between where the hashrate sits and where the economic value sits.
var matrixGrids = []matrixGrid{
	{name: "aligned", minorityHash: 0.3, majorityEconWeight: 0.7, minorityEconWeight: 0.3},
	{name: "conflict", minorityHash: 0.3, majorityEconWeight: 0.3, minorityEconWeight: 0.7},
	{name: "extreme", minorityHash: 0.05, majorityEconWeight: 0.05, minorityEconWeight: 0.95},
}

// MatrixCells builds the full sweep: every grid regime crossed with
// every minority behaviour model, 9 cells. Each cell is a fast-mode
// two-partition scenario (named MAJ and MIN) over the given seed and
// horizon; both partitions start from the same price so the economic
// weights alone steer arbitrage.
func MatrixCells(seed int64, days int) []MatrixCell {
	behaviours := []string{
		pool.BehaviourProfitOnlyName,
		pool.BehaviourIdeologicalName,
		pool.BehaviourMixedName,
	}
	var cells []MatrixCell
	for _, g := range matrixGrids {
		for _, b := range behaviours {
			sc := NewScenario(seed, days)
			sc.Partitions = []PartitionSpec{
				{
					Name:            "MAJ",
					ChainID:         1,
					DAOSupport:      true,
					EconomicWeight:  g.majorityEconWeight,
					Price0:          10,
					RallyShare:      1,
					PrimaryFraction: 0.55,
					TxPerDay:        300 * (1 - g.minorityHash),
					Speculation:     true,
					EIP155Day:       -1,
					Pools:           20,
					PoolZipf:        1.0,
					PoolAlpha:       1.0,
					PoolCap:         0.24,
				},
				{
					Name:             "MIN",
					ChainID:          2,
					ShareAtFork:      g.minorityHash,
					EconomicWeight:   g.minorityEconWeight,
					RejoinShare:      0.05,
					RejoinTauDays:    10,
					Behaviour:        b,
					IdeologicalShare: 0.5,
					Price0:           10,
					RallyShare:       1,
					PrimaryFraction:  0.25,
					TxPerDay:         300 * g.minorityHash,
					EIP155Day:        -1,
					Pools:            25,
					PoolChurn:        0.15,
					PoolAlpha:        1.3,
					PoolCap:          0.24,
					PoolLagDays:      30,
				},
			}
			cells = append(cells, MatrixCell{Grid: g.name, Behaviour: b, Scenario: sc})
		}
	}
	return cells
}
