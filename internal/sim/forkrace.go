package sim

import (
	"math/big"
	"math/rand"

	"forkwatch/internal/chain"
	"forkwatch/internal/pow"
)

// ForkRace models experiment E3: the *transient* forks the paper contrasts
// in §2.1 — ETH's November 2016 gas-repricing fork resolved after 86
// blocks, while ETC's January 2017 fork lasted 3,583 blocks, "likely due
// to ETC's smaller network size, so any subgroup working on a fork was
// more noticeable".
//
// The model: at the upgrade height a laggard subgroup with `minorityShare`
// of the hashrate keeps mining the old rules. Its branch produces blocks
// under the real difficulty-adjustment rule (slow at first — the branch
// inherits the full network's difficulty — then recovering as the filter
// adapts to the smaller hashrate). The laggards abandon the branch when
// they notice they have forked off, after an exponentially distributed
// operational delay with mean `noticeMeanSeconds`. The returned count is
// the losing branch's length.
//
// The paper's contrast falls out of the share: in a large, well-run
// network the non-upgraded remainder is a sliver of hashrate (its branch
// crawls and dies short), while in a small network a single large pool
// can be the laggard, sustaining thousands of blocks over the same
// wall-clock attention span.
type ForkRace struct {
	// Config supplies the difficulty rules.
	Config *chain.Config
	// TotalHashrate is the network hashrate at the fork height; the
	// pre-fork difficulty is TotalHashrate * TargetBlockTime.
	TotalHashrate float64
	// MinorityShare is the laggard fraction of hashrate.
	MinorityShare float64
	// NoticeMeanSeconds is the mean of the exponential delay before the
	// laggards abandon their branch.
	NoticeMeanSeconds float64
}

// Run simulates one fork and returns the losing branch's block count and
// its duration in seconds.
func (f *ForkRace) Run(r *rand.Rand) (blocks int, seconds uint64) {
	sampler := pow.NewSampler(r)
	diff0 := new(big.Int).SetInt64(int64(f.TotalHashrate * float64(f.Config.TargetBlockTime)))
	head := &chain.Header{Time: 0, Difficulty: diff0}

	deadline := uint64(r.ExpFloat64() * f.NoticeMeanSeconds)
	hashrate := f.TotalHashrate * f.MinorityShare

	t := uint64(0)
	for {
		interval := sampler.BlockInterval(head.Difficulty, hashrate)
		t += interval
		if t > deadline {
			return blocks, t
		}
		next := &chain.Header{
			Time:       t,
			Difficulty: chain.CalcDifficulty(f.Config, t, head),
		}
		head = next
		blocks++
	}
}

// RunMean averages the branch length over n simulated forks.
func (f *ForkRace) RunMean(n int, r *rand.Rand) float64 {
	if n <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		b, _ := f.Run(r)
		total += b
	}
	return float64(total) / float64(n)
}
