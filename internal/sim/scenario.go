package sim

import (
	"fmt"
	"math"
	"math/big"
	"runtime"
	"strconv"
	"strings"

	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/market"
	"forkwatch/internal/types"
)

// Mode selects the ledger fidelity (see the package comment).
type Mode int

// Ledger fidelities.
const (
	// ModeFast simulates headers and accounts; default for long runs.
	ModeFast Mode = iota
	// ModeFull materialises real blocks with EVM execution and state
	// roots.
	ModeFull
)

// Scenario configures one fork simulation. NewScenario fills the
// calibration the experiments use; tests and ablations override fields.
type Scenario struct {
	// Seed drives every stochastic component; equal seeds reproduce runs
	// bit for bit.
	Seed int64
	// Mode selects ledger fidelity.
	Mode Mode
	// Days simulated, starting at the fork moment (day 0).
	Days int
	// DayLength is the simulated seconds per "day" (86400 by default).
	// Tests shrink it to exercise the full-fidelity mode cheaply; all
	// daily rates (transactions, consolidation, prices) are per
	// DayLength.
	DayLength uint64
	// Epoch is the unix time of the fork (2016-07-20 13:20:40 UTC).
	Epoch uint64
	// Storage selects the key-value backend each full-fidelity chain
	// persists through (trie nodes, blocks, receipts). The zero value is
	// the default sharded in-memory store; ModeFast keeps no chain
	// storage and ignores it.
	Storage db.Config
	// StorageFaults injects deterministic storage faults into every
	// full-fidelity chain's store (ModeFast ignores it). The ETC chain's
	// fault stream runs on Seed+1 so the two partitions fail
	// independently. Injection is disabled around genesis bootstrap,
	// which has no recovery path.
	StorageFaults faultkv.Faults
	// StorageRetryAttempts bounds transient storage-fault retries
	// (db.Retry); zero means db.DefaultRetryAttempts.
	StorageRetryAttempts int
	// Crashes schedules storage crashes (ModeFull only): each spec kills
	// one chain's store mid-commit, after which the engine reopens it,
	// runs WAL recovery and resumes mining. A store that recovery cannot
	// repair retires the chain for the rest of the run, like a mining
	// population departing (O1/O2).
	Crashes []CrashSpec

	// Parallelism caps how many goroutines the engine uses to step the
	// partitions between day barriers: 0 means GOMAXPROCS, 1 forces
	// the serial fallback, >=2 steps partitions concurrently. Output is
	// byte-identical across all settings — every stochastic component
	// draws from its own seed-derived stream (internal/prng), so
	// scheduling never reorders draws (DESIGN.md §10).
	Parallelism int

	// Partitions lists the named partitions of the fork. Empty means the
	// historical two-way ETH/ETC split synthesised from the scalar
	// calibration below (LegacyPartitions); setting it explicitly turns
	// the scenario into an N-way experiment — see DESIGN.md §12 and
	// Scenario.Validate for the cross-field rules.
	Partitions []PartitionSpec

	// TotalHashrate is the combined network hashrate at the fork, in
	// hashes/second. Genesis difficulty is calibrated so the pre-fork
	// network produced 14-second blocks.
	TotalHashrate float64
	// ETCShareAtFork is the fraction of hashrate that stays on ETC the
	// moment the fork activates (the paper's drastic partition: ~3%,
	// producing the ~90% node loss and near-zero block rate).
	ETCShareAtFork float64
	// RejoinShare is the additional total-hashrate fraction that returns
	// to ETC over the weeks after the fork (the paper's two-week
	// mirror-image difficulty shift), with exponential time constant
	// RejoinTauDays.
	RejoinShare   float64
	RejoinTauDays float64
	// ETHGrowthPerDay is the exogenous daily growth of ETH-side
	// hashrate over the long term (observation O3: ETH difficulty grew
	// roughly 10x over 9 months).
	ETHGrowthPerDay float64
	// ZcashLaunchDay and ZcashPull model the late-October Zcash launch:
	// up to ZcashPull of total hashrate leaves both chains, returning
	// over ZcashReturnTauDays (the Fig 3 dip and rally).
	ZcashLaunchDay     int
	ZcashPull          float64
	ZcashReturnTauDays float64
	// ArbitrageElasticity couples the two chains' hashrate split to
	// prices (market.Allocator).
	ArbitrageElasticity float64

	// Market generates daily USD prices.
	Market market.Params

	// Users is the size of the pre-fork account population.
	Users int
	// UserFunds is each user's pre-fork balance in wei.
	UserFunds *big.Int
	// SplitFraction is the share of users who protect themselves by
	// moving funds to chain-specific addresses shortly after the fork.
	SplitFraction float64
	// PrimaryETHFraction / PrimaryETCFraction divide users into
	// single-chain populations; the remainder transacts on both. The
	// paper notes "many users simply picked one of the two networks to
	// participate in and ignored the other" — those users' other-chain
	// nonces only advance through replays, which is why echo streams
	// stay alive for months (Fig 4).
	PrimaryETHFraction, PrimaryETCFraction float64
	// ETHTxPerDay and ETCTxPerDay are base daily transaction rates
	// (Poisson means). The paper's ratio is ~2.5:1, rising to ~5:1 in
	// March 2017; SpeculationStartDay and SpeculationFactor implement
	// the rise.
	ETHTxPerDay, ETCTxPerDay float64
	SpeculationStartDay      int
	SpeculationFactor        float64
	// ContractFraction is the share of transactions that are contract
	// calls (Fig 2, bottom: ~30-40% on both chains).
	ContractFraction float64
	// ReplayProbability is the chance a replayable mined transaction is
	// rebroadcast onto the other chain the next day (attackers plus
	// accidental rebroadcasters).
	ReplayProbability float64
	// EIP155DayETH / EIP155DayETC are the days replay protection
	// activates (ETH: Spurious Dragon ~day 125; ETC: Jan 13 2017 ~day
	// 177). Negative disables.
	EIP155DayETH, EIP155DayETC int
	// ChainIDAdoptionTauDays is how quickly users adopt chain-bound
	// transactions once available.
	ChainIDAdoptionTauDays float64
	// ChainIDAdoptionMax is the fraction of users who ever adopt replay
	// protection; the rest run legacy wallets forever. This is why the
	// paper still observed hundreds of daily echoes at the end of its
	// study window, months after chain ids shipped.
	ChainIDAdoptionMax float64

	// Pool model: counts and dynamics (Fig 5).
	ETHPools, ETCPools       int
	ETHPoolZipf              float64
	ETCPoolChurn             float64
	ETCPoolAlpha             float64
	ETCPoolCap               float64
	ETHPoolChurn             float64
	PoolConsolidationLagDays int

	// StructuralBlendTauDays controls how quickly the hashrate split
	// hands over from the structural fork-exit schedule to pure price
	// arbitrage (see Engine.Run).
	StructuralBlendTauDays float64

	// DAO fork plumbing.
	DAOAccounts int
	DAOFunds    *big.Int
}

// CrashSpec schedules one storage crash: the store of the partition
// named Chain is killed Op write operations into the persistence of the
// Block-th block (0-based) it mines on Day. The tear lands somewhere in
// that block's commit — the state-trie batch, the WAL record or the data
// batch, depending on Op — exercising every recovery path.
type CrashSpec struct {
	Chain string
	Day   int
	Block int
	Op    uint64
}

// ParseCrashSpecs parses a comma-separated crash schedule, the format
// behind cmd/forksim's -crash flag. Each element is chain:day:block:op,
// e.g. "ETH:1:3:40,ETC:2:0:5" — kill the ETH store 40 write ops into its
// 4th block on day 1, and the ETC store on the first write of its first
// block on day 2.
func ParseCrashSpecs(spec string) ([]CrashSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []CrashSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("sim: bad crash spec %q (want chain:day:block:op)", part)
		}
		chain := strings.ToUpper(strings.TrimSpace(fields[0]))
		if !partitionNameRE.MatchString(chain) {
			return nil, fmt.Errorf("sim: bad crash spec chain %q (want a partition name)", fields[0])
		}
		day, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil || day < 0 {
			return nil, fmt.Errorf("sim: bad crash spec day %q", fields[1])
		}
		block, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil || block < 0 {
			return nil, fmt.Errorf("sim: bad crash spec block %q", fields[2])
		}
		op, err := strconv.ParseUint(strings.TrimSpace(fields[3]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sim: bad crash spec op %q", fields[3])
		}
		out = append(out, CrashSpec{Chain: chain, Day: day, Block: block, Op: op})
	}
	return out, nil
}

// NewScenario returns the calibrated default scenario over the given
// horizon.
func NewScenario(seed int64, days int) *Scenario {
	return &Scenario{
		Seed:      seed,
		Mode:      ModeFast,
		Days:      days,
		DayLength: 86_400,
		Epoch:     1469020840,

		TotalHashrate:       5e12, // 5 TH/s, mid-2016 scale
		ETCShareAtFork:      0.015,
		RejoinShare:         0.08,
		RejoinTauDays:       10,
		ETHGrowthPerDay:     0.007, // several-fold over 9 months (O3)
		ZcashLaunchDay:      100,
		ZcashPull:           0.25,
		ZcashReturnTauDays:  25,
		ArbitrageElasticity: 0.1,

		Market: market.DefaultParams(days),

		Users:                  400,
		UserFunds:              new(big.Int).Mul(big.NewInt(1000), big.NewInt(1e18)),
		SplitFraction:          0.4,
		PrimaryETHFraction:     0.55,
		PrimaryETCFraction:     0.25,
		ETHTxPerDay:            400,
		ETCTxPerDay:            110,
		SpeculationStartDay:    240,
		SpeculationFactor:      2.0,
		ContractFraction:       0.35,
		ReplayProbability:      0.5,
		EIP155DayETH:           125,
		EIP155DayETC:           177,
		ChainIDAdoptionTauDays: 30,
		ChainIDAdoptionMax:     0.8,

		ETHPools:                 20,
		ETCPools:                 25,
		ETHPoolZipf:              1.0,
		ETCPoolChurn:             0.15,
		ETCPoolAlpha:             1.3,
		ETCPoolCap:               0.24,
		ETHPoolChurn:             0, // ETH's distribution was stable from day one (O6)
		PoolConsolidationLagDays: 30,

		StructuralBlendTauDays: 20,

		DAOAccounts: 4,
		DAOFunds:    new(big.Int).Mul(big.NewInt(3_000_000), big.NewInt(1e18)),
	}
}

// ResolveParallelism returns the effective engine worker count:
// Parallelism when positive, otherwise GOMAXPROCS.
func (sc *Scenario) ResolveParallelism() int {
	if sc.Parallelism > 0 {
		return sc.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// GenesisDifficulty returns the difficulty at which the pre-fork network
// produced blocks at the target rate.
func (sc *Scenario) GenesisDifficulty() *big.Int {
	d := sc.TotalHashrate * 14
	bi, _ := big.NewFloat(d).Int(nil)
	return bi
}

// Hashrates returns the (ETH, ETC) hashrate on the given day before
// arbitrage adjustment: the structural schedule of fork exit, rejoin,
// exogenous growth and the Zcash event.
func (sc *Scenario) Hashrates(day int) (eth, etc float64) {
	t := float64(day)
	etcShare := sc.ETCShareAtFork
	if sc.RejoinTauDays > 0 {
		etcShare += sc.RejoinShare * (1 - math.Exp(-t/sc.RejoinTauDays))
	}
	growth := math.Pow(1+sc.ETHGrowthPerDay, t)
	zcash := 1.0
	if sc.ZcashLaunchDay > 0 && day >= sc.ZcashLaunchDay {
		dt := t - float64(sc.ZcashLaunchDay)
		zcash = 1 - sc.ZcashPull*math.Exp(-dt/sc.ZcashReturnTauDays)
	}
	total := sc.TotalHashrate * growth * zcash
	return total * (1 - etcShare), total * etcShare
}

// DAOAddress returns the i-th DAO account address.
func DAOAddress(i int) types.Address {
	return types.BytesToAddress([]byte{0xda, 0x00, byte(i)})
}

// DAORefundAddress is where the supporting chain moves the DAO balances.
var DAORefundAddress = types.BytesToAddress([]byte{0xbb, 0x90, 0x44})

// UserAddress returns the i-th pre-fork user address.
func UserAddress(i int) types.Address {
	return types.BytesToAddress([]byte{0xee, byte(i >> 8), byte(i)})
}

// ContractAddress returns the i-th pre-deployed contract address.
func ContractAddress(i int) types.Address {
	return types.BytesToAddress([]byte{0xcc, 0x00, byte(i)})
}
