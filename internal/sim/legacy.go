package sim

// Legacy two-way partition synthesis. This file is the one place in the
// simulation core that still spells out "ETH" and "ETC": it maps the
// historical scalar knobs on Scenario onto the N-way PartitionSpec list,
// so a scenario with no explicit Partitions reproduces the paper's
// July-2016 split byte for byte. tools/partitionlint allowlists this
// file; the literals are banned everywhere else in the core.

// LegacyPartitions synthesises the historical ETH/ETC pair from the
// scenario's scalar calibration. The mapping is exact: every per-chain
// constant the two-way engine consumed appears here with the same value,
// and partition 0 (the anchor) takes the residual hashrate share just as
// the scalar ethShare always did.
func (sc *Scenario) LegacyPartitions() []PartitionSpec {
	return []PartitionSpec{
		{
			Name:            "ETH",
			ChainID:         1,
			DAOSupport:      true,
			EconomicWeight:  1,
			Price0:          sc.Market.ETH0,
			DriftEdge:       sc.Market.ETHEdge,
			RallyShare:      1,
			PrimaryFraction: sc.PrimaryETHFraction,
			TxPerDay:        sc.ETHTxPerDay,
			Speculation:     true,
			EIP155Day:       sc.EIP155DayETH,
			Pools:           sc.ETHPools,
			PoolZipf:        sc.ETHPoolZipf,
			PoolChurn:       sc.ETHPoolChurn,
			PoolAlpha:       1.0,
			PoolCap:         sc.ETCPoolCap,
			PoolLagDays:     0,
		},
		{
			Name:            "ETC",
			ChainID:         61,
			DAOSupport:      false,
			ShareAtFork:     sc.ETCShareAtFork,
			EconomicWeight:  1,
			RejoinShare:     sc.RejoinShare,
			RejoinTauDays:   sc.RejoinTauDays,
			Price0:          sc.Market.ETC0,
			DriftEdge:       0,
			RallyShare:      sc.Market.RallyETCShare,
			PrimaryFraction: sc.PrimaryETCFraction,
			TxPerDay:        sc.ETCTxPerDay,
			EIP155Day:       sc.EIP155DayETC,
			Pools:           sc.ETCPools,
			PoolChurn:       sc.ETCPoolChurn,
			PoolAlpha:       sc.ETCPoolAlpha,
			PoolCap:         sc.ETCPoolCap,
			PoolLagDays:     sc.PoolConsolidationLagDays,
		},
	}
}
