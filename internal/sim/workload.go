package sim

import (
	"math"
	"math/big"
	"math/rand"

	"forkwatch/internal/chain"
	"forkwatch/internal/keccak"
	"forkwatch/internal/types"
)

// gasPrice used by all workload transactions (20 gwei).
var workloadGasPrice = big.NewInt(20_000_000_000)

// transferValue is the standard payment size (0.01 ether).
var transferValue = big.NewInt(10_000_000_000_000_000)

// Workload generates the daily transaction traffic of both chains: user
// payments and contract calls, the fund-splitting behaviour of cautious
// users, gradual chain-id adoption, and the rebroadcast ("echo") attacker
// of the paper's Figure 4.
type Workload struct {
	sc *Scenario
	r  *rand.Rand

	users     []*simUser
	active    map[string][]*simUser // users transacting on each chain
	contracts []types.Address

	// nextNonce tracks nonces handed out today, per chain; re-synced
	// from the ledger at each day start (dropped transactions release
	// their nonces overnight).
	nextNonce map[string]map[types.Address]uint64

	// replayQueue holds mined replayable transactions awaiting
	// rebroadcast on the other chain (keyed by destination chain name).
	replayQueue map[string][]*chain.Transaction
	replayed    map[types.Hash]bool
	// mirrored marks senders whose replayable stream an attacker
	// rebroadcasts wholesale; decided marks senders already sampled.
	// Mirroring whole senders (not individual transactions) is what
	// keeps nonces aligned across chains and makes echoes persist for
	// months, as Fig 4 shows.
	mirrored map[types.Address]bool
}

type simUser struct {
	common   types.Address
	split    bool
	splitDay int
	ethAddr  types.Address
	etcAddr  types.Address
	// primary is "ETH", "ETC" or "BOTH": the network(s) the user
	// participates in.
	primary string
	// legacy users never adopt chain-bound transactions.
	legacy bool
	// splitDone per chain name.
	splitDone map[string]bool
	// adoptedChainID per chain name: whether the user switched to
	// replay-protected transactions.
	adopted map[string]bool
}

// NewWorkload builds the user population from the scenario.
func NewWorkload(sc *Scenario, r *rand.Rand) *Workload {
	w := &Workload{
		sc:          sc,
		r:           r,
		nextNonce:   map[string]map[types.Address]uint64{},
		replayQueue: map[string][]*chain.Transaction{},
		replayed:    map[types.Hash]bool{},
		mirrored:    map[types.Address]bool{},
	}
	for i := 0; i < sc.Users; i++ {
		u := &simUser{
			common:    UserAddress(i),
			splitDone: map[string]bool{},
			adopted:   map[string]bool{},
		}
		switch roll := r.Float64(); {
		case roll < sc.PrimaryETHFraction:
			u.primary = "ETH"
		case roll < sc.PrimaryETHFraction+sc.PrimaryETCFraction:
			u.primary = "ETC"
		default:
			u.primary = "BOTH"
		}
		u.legacy = r.Float64() >= sc.ChainIDAdoptionMax
		if r.Float64() < sc.SplitFraction {
			u.split = true
			u.splitDay = 1 + r.Intn(14) // users react over the first two weeks
			u.ethAddr = deriveAddr(u.common, "eth")
			u.etcAddr = deriveAddr(u.common, "etc")
		}
		w.users = append(w.users, u)
	}
	w.active = map[string][]*simUser{}
	for _, u := range w.users {
		if u.primary == "ETH" || u.primary == "BOTH" {
			w.active["ETH"] = append(w.active["ETH"], u)
		}
		if u.primary == "ETC" || u.primary == "BOTH" {
			w.active["ETC"] = append(w.active["ETC"], u)
		}
	}
	for i := 0; i < 4; i++ {
		w.contracts = append(w.contracts, ContractAddress(i))
	}
	return w
}

func deriveAddr(base types.Address, tag string) types.Address {
	h := keccak.Sum256(append(base.Bytes(), tag...))
	return types.BytesToAddress(h[12:])
}

// Genesis returns the allocation shared by both chains: user balances,
// DAO accounts and marker contracts.
func (w *Workload) Genesis() *chain.Genesis {
	gen := &chain.Genesis{
		Difficulty: w.sc.GenesisDifficulty(),
		Time:       w.sc.Epoch,
		Alloc:      map[types.Address]*big.Int{},
		Code:       map[types.Address][]byte{},
	}
	for _, u := range w.users {
		gen.Alloc[u.common] = types.BigCopy(w.sc.UserFunds)
	}
	for i := 0; i < w.sc.DAOAccounts; i++ {
		gen.Alloc[DAOAddress(i)] = types.BigCopy(w.sc.DAOFunds)
	}
	// Marker contracts: a single SSTORE so calls execute successfully
	// under the full EVM.
	code := []byte{
		0x60, 0x01, // PUSH1 1
		0x60, 0x00, // PUSH1 0
		0x55, // SSTORE
		0x00, // STOP
	}
	for _, c := range w.contracts {
		gen.Code[c] = code
	}
	return gen
}

// DAODrainList returns the accounts the supporting chain drains.
func (w *Workload) DAODrainList() []types.Address {
	var out []types.Address
	for i := 0; i < w.sc.DAOAccounts; i++ {
		out = append(out, DAOAddress(i))
	}
	return out
}

// txPlan is a transaction with its submission second within the day.
type txPlan struct {
	tx     *chain.Transaction
	second uint64
}

// DayTraffic generates the submission plan for one chain for one day,
// including queued rebroadcasts. eipActive reports whether chain-bound
// transactions are accepted on that chain today; ledger supplies nonces
// and balances.
func (w *Workload) DayTraffic(day int, chainName string, led Ledger, eipDay int) []txPlan {
	if w.nextNonce[chainName] == nil {
		w.nextNonce[chainName] = map[types.Address]uint64{}
	}
	// Release yesterday's unconfirmed nonces: the ledger is the truth.
	w.nextNonce[chainName] = map[types.Address]uint64{}

	var plans []txPlan

	// 1. Queued rebroadcasts (the echo traffic). Submission seconds
	// spread over the day but preserve queue order: the rebroadcaster
	// replays each sender's stream in nonce order, or the chain breaks.
	if q := w.replayQueue[chainName]; len(q) > 0 {
		step := w.sc.DayLength / uint64(len(q)+1)
		if step == 0 {
			step = 1
		}
		for i, tx := range q {
			plans = append(plans, txPlan{tx: tx, second: uint64(i+1) * step})
		}
		w.replayQueue[chainName] = nil
	}

	// 2. Fund-splitting transactions. Users only split chains they
	// participate in; a "picked one network" user leaves the other
	// chain's copy of their funds at the vulnerable common address.
	for _, u := range w.active[chainName] {
		if !u.split || u.splitDone[chainName] || day < u.splitDay {
			continue
		}
		dest := u.ethAddr
		if chainName == "ETC" {
			dest = u.etcAddr
		}
		bal := led.BalanceOf(u.common)
		// Keep a gas cushion behind.
		cushion := new(big.Int).Mul(workloadGasPrice, big.NewInt(10*21_000))
		value := new(big.Int).Sub(bal, cushion)
		if value.Sign() <= 0 {
			u.splitDone[chainName] = true
			continue
		}
		nonce := w.claimNonce(chainName, led, u.common)
		tx := chain.NewTransaction(nonce, &dest, value, 21_000, workloadGasPrice, nil)
		// Pre-EIP-155 there is nothing to bind to; the split tx itself
		// is replayable — the hazard the paper describes.
		tx.Sign(u.common, w.chainIDFor(day, chainName, eipDay, u))
		u.splitDone[chainName] = true
		plans = append(plans, txPlan{tx: tx, second: uint64(w.r.Int63n(int64(w.sc.DayLength)))})
	}

	// 3. Regular traffic.
	rate := w.sc.ETHTxPerDay
	if chainName == "ETC" {
		rate = w.sc.ETCTxPerDay
	}
	if w.sc.SpeculationFactor > 1 && day >= w.sc.SpeculationStartDay && chainName == "ETH" {
		ramp := math.Min(1, float64(day-w.sc.SpeculationStartDay)/30)
		rate *= 1 + (w.sc.SpeculationFactor-1)*ramp
	}
	n := poisson(w.r, rate)
	// Submission seconds are monotone per sender so a sender's nonces
	// arrive in order (real wallets serialise; out-of-order nonces would
	// be queued by real tx pools rather than dropped).
	lastSecond := map[types.Address]uint64{}
	population := w.active[chainName]
	if len(population) == 0 {
		return plans
	}
	for i := 0; i < n; i++ {
		u := population[w.r.Intn(len(population))]
		from := w.senderFor(u, chainName)
		var tx *chain.Transaction
		if w.r.Float64() < w.sc.ContractFraction {
			to := w.contracts[w.r.Intn(len(w.contracts))]
			data := []byte{0xab, 0x01, 0x02, 0x03}
			tx = chain.NewTransaction(w.claimNonce(chainName, led, from), &to, nil, 120_000, workloadGasPrice, data)
		} else {
			peer := population[w.r.Intn(len(population))]
			to := w.senderFor(peer, chainName)
			tx = chain.NewTransaction(w.claimNonce(chainName, led, from), &to, transferValue, 21_000, workloadGasPrice, nil)
		}
		tx.Sign(from, w.chainIDFor(day, chainName, eipDay, u))
		second := uint64(w.r.Int63n(int64(w.sc.DayLength)))
		if prev, ok := lastSecond[from]; ok && second <= prev {
			second = prev + 1
		}
		lastSecond[from] = second
		plans = append(plans, txPlan{tx: tx, second: second})
	}
	return plans
}

// senderFor picks the address a user transacts from on the given chain.
func (w *Workload) senderFor(u *simUser, chainName string) types.Address {
	if u.split && u.splitDone[chainName] {
		if chainName == "ETC" {
			return u.etcAddr
		}
		return u.ethAddr
	}
	return u.common
}

// chainIDFor decides whether the user binds the transaction to the chain.
func (w *Workload) chainIDFor(day int, chainName string, eipDay int, u *simUser) uint64 {
	if eipDay < 0 || day < eipDay || u.legacy {
		return 0
	}
	if !u.adopted[chainName] {
		// Adoption ramps in exponentially after activation.
		p := 1 - math.Exp(-float64(day-eipDay)/w.sc.ChainIDAdoptionTauDays)
		if w.r.Float64() >= p {
			return 0
		}
		u.adopted[chainName] = true
	}
	if chainName == "ETC" {
		return 61
	}
	return 1
}

func (w *Workload) claimNonce(chainName string, led Ledger, addr types.Address) uint64 {
	m := w.nextNonce[chainName]
	n, ok := m[addr]
	if !ok || n < led.NonceOf(addr) {
		n = led.NonceOf(addr)
	}
	m[addr] = n + 1
	return n
}

// ObserveMined feeds mined transactions back: replayable ones may be
// queued for rebroadcast on the other chain (tomorrow's echoes).
func (w *Workload) ObserveMined(chainName string, txs []*chain.Transaction) {
	other := "ETC"
	if chainName == "ETC" {
		other = "ETH"
	}
	for _, tx := range txs {
		if tx.ChainID != 0 {
			continue // replay-protected
		}
		h := tx.Hash()
		if w.replayed[h] {
			continue
		}
		on, decided := w.mirrored[tx.From]
		if !decided {
			on = w.r.Float64() < w.sc.ReplayProbability
			w.mirrored[tx.From] = on
		}
		if on {
			w.replayed[h] = true
			w.replayQueue[other] = append(w.replayQueue[other], tx)
		}
	}
}

// poisson draws a Poisson variate via Knuth's method (rates here are a
// few hundred, where this is fast and exact).
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// For large rates, split to keep the product in float range.
	if lambda > 500 {
		return poisson(r, lambda/2) + poisson(r, lambda/2)
	}
	limit := math.Exp(-lambda)
	n := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}
