package sim

import (
	"math"
	"math/big"
	"math/rand"
	"strings"

	"forkwatch/internal/chain"
	"forkwatch/internal/keccak"
	"forkwatch/internal/prng"
	"forkwatch/internal/types"
)

// gasPrice used by all workload transactions (20 gwei).
var workloadGasPrice = big.NewInt(20_000_000_000)

// transferValue is the standard payment size (0.01 ether).
var transferValue = big.NewInt(10_000_000_000_000_000)

// zeroValue is the shared zero-wei operand of contract calls.
var zeroValue = new(big.Int)

// contractCallData is the fixed calldata of every marker-contract call.
//
// These three are shared by pointer across every workload transaction
// (DESIGN.md §15): nothing downstream mutates a transaction's operands —
// state and the EVM copy amounts before arithmetic — and the arena reset
// drops the references without touching the shared values.
var contractCallData = []byte{0xab, 0x01, 0x02, 0x03}

// Workload generates the daily transaction traffic of every partition:
// user payments and contract calls, the fund-splitting behaviour of
// cautious users, gradual chain-id adoption, and the rebroadcast
// ("echo") attacker of the paper's Figure 4.
//
// Concurrency model: all per-chain state (traffic RNG, nonce tracking,
// replay queues, the day's mined batches) lives in chainTraffic slots, and
// the per-user flags are slices indexed by chain slot, so DayTraffic and
// ObserveMined for different chains never write the same memory and may
// run on separate goroutines. Anything that couples the chains — the echo
// attacker's mirror decisions — is deferred to FlushEchoes, which the
// engine calls single-threaded at the day barrier.
type Workload struct {
	sc    *Scenario
	specs []PartitionSpec

	users     []*simUser
	active    [][]*simUser // users transacting on each chain, by slot
	contracts []types.Address

	chains  []*chainTraffic
	chainIx map[string]int

	// echoR drives the rebroadcast attacker's per-sender mirror decisions.
	// It is consumed only inside FlushEchoes — partitions in order, each
	// in block order — so its draw sequence is identical no matter how the
	// partition goroutines interleaved during the day.
	echoR *rand.Rand

	// replayed marks transactions already queued for rebroadcast; mirrored
	// marks senders whose replayable stream an attacker rebroadcasts
	// wholesale. Mirroring whole senders (not individual transactions) is
	// what keeps nonces aligned across chains and makes echoes persist for
	// months, as Fig 4 shows. Both maps are only touched at the barrier.
	replayed map[types.Hash]bool
	mirrored map[types.Address]bool

	// recycleMined lets FlushEchoes return mined transactions that
	// provably have no remaining references — chain-bound ones, and legacy
	// ones whose sender the attacker declined to mirror — to the arena.
	// Only the fast ledger qualifies: full-mode blocks retain their
	// transactions for serving and re-validation.
	recycleMined bool
}

// chainTraffic is one chain's slice of workload state, owned by that
// chain's partition goroutine between day barriers.
type chainTraffic struct {
	idx  int
	name string

	// chainID, txPerDay and speculation come from the partition's spec:
	// the replay domain for chain-bound signatures, the base Poisson
	// rate, and whether the speculative ramp applies.
	chainID     uint64
	txPerDay    float64
	speculation bool

	// r is the chain's private traffic stream (prng.Derive over the
	// scenario seed and the chain name): submission times, recipient
	// picks, adoption rolls.
	r *rand.Rand

	// nextNonce tracks nonces handed out today; cleared and re-synced from
	// the ledger at each day start (dropped transactions release their
	// nonces overnight).
	nextNonce map[types.Address]uint64

	// lastSecond tracks each sender's latest submission second within the
	// current DayTraffic call, cleared per day; keeps nonces in order.
	lastSecond map[types.Address]uint64

	// plans is the reusable DayTraffic output buffer; the engine copies
	// the plans into its pending queue before the next day's call.
	plans []txPlan

	// replayQueue holds mined replayable transactions awaiting rebroadcast
	// on THIS chain. Filled by FlushEchoes at the barrier, drained by
	// DayTraffic the next day.
	replayQueue []*chain.Transaction

	// mined accumulates the day's included transactions per block, in
	// block order; FlushEchoes drains it at the barrier.
	mined [][]*chain.Transaction
}

type simUser struct {
	common   types.Address
	split    bool
	splitDay int
	// splitAddr is the user's chain-specific address per chain slot,
	// derived from the lowercase partition name.
	splitAddr []types.Address
	// primaryIdx is the slot of the only network the user participates
	// in, or -1 for users active on every partition.
	primaryIdx int
	// legacy users never adopt chain-bound transactions.
	legacy bool
	// splitDone per chain slot. Distinct elements of a slice are
	// race-free where distinct map keys are not, and a user active on
	// several chains is written by several partition goroutines.
	splitDone []bool
	// adopted per chain slot: whether the user switched to
	// replay-protected transactions.
	adopted []bool
}

// NewWorkload builds the user population from the scenario. Every
// stochastic component gets its own stream derived from the scenario seed
// (internal/prng): the population itself, each chain's traffic, and the
// echo attacker — which is what keeps runs byte-identical between the
// serial and parallel engines. The streams key on partition names, so
// the historical two-way population is unchanged under the N-way engine.
func NewWorkload(sc *Scenario) *Workload {
	specs := sc.PartitionSpecs()
	k := len(specs)
	r := prng.New(sc.Seed, "workload")
	w := &Workload{
		sc:       sc,
		specs:    specs,
		active:   make([][]*simUser, k),
		chains:   make([]*chainTraffic, k),
		chainIx:  make(map[string]int, k),
		echoR:    prng.New(sc.Seed, "echo"),
		replayed: map[types.Hash]bool{},
		mirrored: map[types.Address]bool{},
	}
	for i, sp := range specs {
		w.chains[i] = &chainTraffic{
			idx:         i,
			name:        sp.Name,
			chainID:     sp.ChainID,
			txPerDay:    sp.TxPerDay,
			speculation: sp.Speculation,
			r:           prng.New(sc.Seed, "traffic", sp.Name),
			nextNonce:   map[types.Address]uint64{},
			lastSecond:  map[types.Address]uint64{},
		}
		w.chainIx[sp.Name] = i
	}
	for i := 0; i < sc.Users; i++ {
		u := &simUser{
			common:     UserAddress(i),
			primaryIdx: -1,
			splitDone:  make([]bool, k),
			adopted:    make([]bool, k),
		}
		// One roll against the cumulative primary fractions, in partition
		// order; users past the sum participate everywhere.
		roll := r.Float64()
		cum := 0.0
		for j, sp := range specs {
			cum += sp.PrimaryFraction
			if roll < cum {
				u.primaryIdx = j
				break
			}
		}
		u.legacy = r.Float64() >= sc.ChainIDAdoptionMax
		if r.Float64() < sc.SplitFraction {
			u.split = true
			u.splitDay = 1 + r.Intn(14) // users react over the first two weeks
			u.splitAddr = make([]types.Address, k)
			for j, sp := range specs {
				u.splitAddr[j] = deriveAddr(u.common, strings.ToLower(sp.Name))
			}
		}
		w.users = append(w.users, u)
	}
	for _, u := range w.users {
		for j := range specs {
			if u.primaryIdx == j || u.primaryIdx == -1 {
				w.active[j] = append(w.active[j], u)
			}
		}
	}
	for i := 0; i < 4; i++ {
		w.contracts = append(w.contracts, ContractAddress(i))
	}
	return w
}

func deriveAddr(base types.Address, tag string) types.Address {
	h := keccak.Sum256(append(base.Bytes(), tag...))
	return types.BytesToAddress(h[12:])
}

// Genesis returns the allocation shared by all chains: user balances,
// DAO accounts and marker contracts.
func (w *Workload) Genesis() *chain.Genesis {
	gen := &chain.Genesis{
		Difficulty: w.sc.GenesisDifficulty(),
		Time:       w.sc.Epoch,
		Alloc:      map[types.Address]*big.Int{},
		Code:       map[types.Address][]byte{},
	}
	for _, u := range w.users {
		gen.Alloc[u.common] = types.BigCopy(w.sc.UserFunds)
	}
	for i := 0; i < w.sc.DAOAccounts; i++ {
		gen.Alloc[DAOAddress(i)] = types.BigCopy(w.sc.DAOFunds)
	}
	// Marker contracts: a single SSTORE so calls execute successfully
	// under the full EVM.
	code := []byte{
		0x60, 0x01, // PUSH1 1
		0x60, 0x00, // PUSH1 0
		0x55, // SSTORE
		0x00, // STOP
	}
	for _, c := range w.contracts {
		gen.Code[c] = code
	}
	return gen
}

// DAODrainList returns the accounts the supporting chain drains.
func (w *Workload) DAODrainList() []types.Address {
	var out []types.Address
	for i := 0; i < w.sc.DAOAccounts; i++ {
		out = append(out, DAOAddress(i))
	}
	return out
}

// txPlan is a transaction with its submission second within the day.
// fresh marks transactions minted by this DayTraffic call (arena-backed,
// lazily signed) as opposed to echoes replayed from another chain; the
// engine finishes fresh signatures before mining and may recycle fresh
// transactions that are dropped without ever being mined.
type txPlan struct {
	tx     *chain.Transaction
	second uint64
	fresh  bool
}

// DayTraffic generates the submission plan for one chain for one day,
// including queued rebroadcasts. eipDay is the day chain-bound
// transactions activate on that chain; ledger supplies nonces and
// balances. Safe to call concurrently for different chains: it only
// touches the named chain's slot.
func (w *Workload) DayTraffic(day int, chainName string, led Ledger, eipDay int) []txPlan {
	ct := w.chains[w.chainIx[chainName]]
	// Release yesterday's unconfirmed nonces: the ledger is the truth.
	// The maps and the plan buffer are cleared in place, not reallocated.
	clear(ct.nextNonce)
	clear(ct.lastSecond)
	plans := ct.plans[:0]
	defer func() { ct.plans = plans }()

	// 1. Queued rebroadcasts (the echo traffic). Submission seconds
	// spread over the day but preserve queue order: the rebroadcaster
	// replays each sender's stream in nonce order, or the chain breaks.
	if q := ct.replayQueue; len(q) > 0 {
		step := w.sc.DayLength / uint64(len(q)+1)
		if step == 0 {
			step = 1
		}
		for i, tx := range q {
			plans = append(plans, txPlan{tx: tx, second: uint64(i+1) * step})
		}
		ct.replayQueue = ct.replayQueue[:0]
	}

	// 2. Fund-splitting transactions. Users only split chains they
	// participate in; a "picked one network" user leaves the other
	// chains' copies of their funds at the vulnerable common address.
	for _, u := range w.active[ct.idx] {
		if !u.split || u.splitDone[ct.idx] || day < u.splitDay {
			continue
		}
		bal := led.BalanceOf(u.common)
		// Keep a gas cushion behind.
		cushion := new(big.Int).Mul(workloadGasPrice, big.NewInt(10*21_000))
		value := new(big.Int).Sub(bal, cushion)
		if value.Sign() <= 0 {
			u.splitDone[ct.idx] = true
			continue
		}
		tx := chain.NewPooledTransaction()
		tx.Nonce = ct.claimNonce(led, u.common)
		tx.To = &u.splitAddr[ct.idx]
		tx.Value = value
		tx.GasLimit = 21_000
		tx.GasPrice = workloadGasPrice
		// Pre-EIP-155 there is nothing to bind to; the split tx itself
		// is replayable — the hazard the paper describes.
		tx.SignLazy(u.common, w.chainIDFor(ct, day, eipDay, u))
		u.splitDone[ct.idx] = true
		plans = append(plans, txPlan{tx: tx, second: uint64(ct.r.Int63n(int64(w.sc.DayLength))), fresh: true})
	}

	// 3. Regular traffic.
	rate := ct.txPerDay
	if w.sc.SpeculationFactor > 1 && day >= w.sc.SpeculationStartDay && ct.speculation {
		ramp := math.Min(1, float64(day-w.sc.SpeculationStartDay)/30)
		rate *= 1 + (w.sc.SpeculationFactor-1)*ramp
	}
	n := poisson(ct.r, rate)
	// Submission seconds are monotone per sender so a sender's nonces
	// arrive in order (real wallets serialise; out-of-order nonces would
	// be queued by real tx pools rather than dropped).
	lastSecond := ct.lastSecond
	population := w.active[ct.idx]
	if len(population) == 0 {
		return plans
	}
	for i := 0; i < n; i++ {
		u := population[ct.r.Intn(len(population))]
		from := senderFor(u, ct.idx)
		tx := chain.NewPooledTransaction()
		if ct.r.Float64() < w.sc.ContractFraction {
			tx.Nonce = ct.claimNonce(led, from)
			tx.To = &w.contracts[ct.r.Intn(len(w.contracts))]
			tx.Value = zeroValue
			tx.GasLimit = 120_000
			tx.GasPrice = workloadGasPrice
			tx.Data = contractCallData
		} else {
			peer := population[ct.r.Intn(len(population))]
			tx.Nonce = ct.claimNonce(led, from)
			tx.To = senderPtr(peer, ct.idx)
			tx.Value = transferValue
			tx.GasLimit = 21_000
			tx.GasPrice = workloadGasPrice
		}
		tx.SignLazy(from, w.chainIDFor(ct, day, eipDay, u))
		second := uint64(ct.r.Int63n(int64(w.sc.DayLength)))
		if prev, ok := lastSecond[from]; ok && second <= prev {
			second = prev + 1
		}
		lastSecond[from] = second
		plans = append(plans, txPlan{tx: tx, second: second, fresh: true})
	}
	return plans
}

// senderFor picks the address a user transacts from on the given chain.
func senderFor(u *simUser, idx int) types.Address {
	if u.split && u.splitDone[idx] {
		return u.splitAddr[idx]
	}
	return u.common
}

// senderPtr is senderFor without the copy: it points into the user's own
// address storage, which is immutable once the population is built, so
// transactions can share it as their To field.
func senderPtr(u *simUser, idx int) *types.Address {
	if u.split && u.splitDone[idx] {
		return &u.splitAddr[idx]
	}
	return &u.common
}

// chainIDFor decides whether the user binds the transaction to the chain,
// drawing adoption rolls from the chain's own stream.
func (w *Workload) chainIDFor(ct *chainTraffic, day, eipDay int, u *simUser) uint64 {
	if eipDay < 0 || day < eipDay || u.legacy {
		return 0
	}
	if !u.adopted[ct.idx] {
		// Adoption ramps in exponentially after activation.
		p := 1 - math.Exp(-float64(day-eipDay)/w.sc.ChainIDAdoptionTauDays)
		if ct.r.Float64() >= p {
			return 0
		}
		u.adopted[ct.idx] = true
	}
	return ct.chainID
}

func (ct *chainTraffic) claimNonce(led Ledger, addr types.Address) uint64 {
	n, ok := ct.nextNonce[addr]
	if !ok || n < led.NonceOf(addr) {
		n = led.NonceOf(addr)
	}
	ct.nextNonce[addr] = n + 1
	return n
}

// ObserveMined records a mined block's included transactions for the
// rebroadcast attacker. Only the calling chain's slot is appended to, so
// partitions may call it concurrently; the echo decisions themselves —
// which couple the chains — happen in FlushEchoes at the day barrier.
func (w *Workload) ObserveMined(chainName string, txs []*chain.Transaction) {
	if len(txs) == 0 {
		return
	}
	ct := w.chains[w.chainIx[chainName]]
	ct.mined = append(ct.mined, txs)
}

// FlushEchoes runs the rebroadcast attacker over the day's mined
// transactions: partitions in order, each in block order — a fixed
// sequence regardless of how the partition goroutines interleaved during
// the day, which keeps the echo stream's draws deterministic. Replayable
// transactions from mirrored senders are queued for rebroadcast on every
// OTHER chain (one attacker decision covers all of them); DayTraffic
// drains the queues tomorrow, so deferring the decisions to the barrier
// changes nothing downstream.
func (w *Workload) FlushEchoes() {
	for _, ct := range w.chains {
		for _, txs := range ct.mined {
			for _, tx := range txs {
				if tx.ChainID != 0 {
					// Replay-protected: can never surface on another
					// chain, so once mined nothing references it again.
					if w.recycleMined {
						chain.ReleaseTransaction(tx)
					}
					continue
				}
				h := tx.Hash()
				if w.replayed[h] {
					// An echo completing its tour; copies may still sit
					// in other chains' replay queues, so never recycle.
					continue
				}
				on, decided := w.mirrored[tx.From]
				if !decided {
					on = w.echoR.Float64() < w.sc.ReplayProbability
					w.mirrored[tx.From] = on
				}
				if on {
					w.replayed[h] = true
					for _, other := range w.chains {
						if other != ct {
							other.replayQueue = append(other.replayQueue, tx)
						}
					}
				} else if w.recycleMined {
					// The attacker never mirrors this sender: the tx was
					// mined here and will exist nowhere else.
					chain.ReleaseTransaction(tx)
				}
			}
		}
		ct.mined = ct.mined[:0]
	}
}

// poisson draws a Poisson variate via Knuth's method (rates here are a
// few hundred, where this is fast and exact).
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// For large rates, split to keep the product in float range.
	if lambda > 500 {
		return poisson(r, lambda/2) + poisson(r, lambda/2)
	}
	limit := math.Exp(-lambda)
	n := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}
