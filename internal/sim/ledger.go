// Package sim composes the substrates — chain, pow, market, pool and a
// user/attacker workload — into the two-partition fork scenario the paper
// measures, and streams per-block and per-day events to observers (the
// analysis package implements one).
//
// Two ledger fidelities share the same consensus rules (chain.Config and
// chain.CalcDifficulty) and the same transaction objects:
//
//   - Full: real chain.Blockchain blocks — EVM execution, state roots,
//     PoW seals. Used by short-horizon runs, the examples, and E1/E3.
//   - Fast: header-and-account simulation for nine-month horizons
//     (~3.3M blocks), where trie commits per block would dominate.
//     Difficulty, timestamps, nonce/balance/replay semantics are
//     identical; EVM execution is skipped (contract transactions are
//     carried and flagged, not executed). A conformance test pins the
//     fast ledger to the full one block for block.
package sim

import (
	"fmt"
	"math/big"
	"math/rand"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/pow"
	"forkwatch/internal/types"
)

// Ledger is the per-chain surface the engine mines against.
//
// Ledgers are not safe for concurrent use; the engine gives each
// partition exclusive ownership of its ledger between day barriers, so
// the two chains can be stepped on separate goroutines without locks.
type Ledger interface {
	// Config returns the chain's rule set.
	Config() *chain.Config
	// Head returns the current height, head timestamp and difficulty of
	// the next block mined at the head timestamp + target.
	HeadNumber() uint64
	// HeadTime returns the head block's timestamp.
	HeadTime() uint64
	// HeadDifficulty returns the head block's difficulty.
	HeadDifficulty() *big.Int
	// HeadDifficultyFloat returns types.BigToFloat64 of the head
	// difficulty without copying the big.Int — the sampler's hot input,
	// consumed once per block attempt.
	HeadDifficultyFloat() float64
	// ValidateTx checks a transaction against the head state exactly as
	// consensus would.
	ValidateTx(tx *chain.Transaction) error
	// MineBlock appends a block at the given timestamp, including as
	// many of txs as remain valid when applied in order. It returns the
	// included transactions.
	MineBlock(time uint64, coinbase types.Address, txs []*chain.Transaction) ([]*chain.Transaction, error)
	// NonceOf returns the head-state nonce of an account.
	NonceOf(a types.Address) uint64
	// BalanceOf returns the head-state balance of an account.
	BalanceOf(a types.Address) *big.Int
}

// fastAccount is the fast ledger's view of one account.
type fastAccount struct {
	nonce   uint64
	balance *big.Int
}

// FastLedger simulates headers and account balances under the full
// difficulty and replay rules, without EVM execution or tries.
//
// Per-block and per-transaction arithmetic runs entirely in reusable
// scratch space (DESIGN.md §15): the difficulty double-buffers through
// diffScratch, fees and costs accumulate in dedicated big.Ints, and the
// included-transaction slices of a day's blocks are carved out of one
// arena the engine resets at the day barrier. None of this is visible to
// callers — the ledger is single-goroutine by contract.
type FastLedger struct {
	cfg      *chain.Config
	number   uint64
	time     uint64
	diff     *big.Int
	accounts map[types.Address]*fastAccount
	// contracts marks addresses that carry code, for receipt-style
	// classification of calls.
	contracts map[types.Address]bool

	// diffFloat caches types.BigToFloat64(diff), refreshed on every head
	// change; the sampler reads it once per block attempt.
	diffFloat float64
	// diffScratch is the spare head-difficulty buffer NextDifficulty
	// writes into before the swap.
	diffScratch *big.Int
	numScratch  big.Int // block-number scratch for rule checks
	feeScratch  big.Int // per-transaction fee accumulation
	costScratch big.Int // CostInto destination
	costTmp     big.Int // CostInto clobber
	// incArena backs MineBlock's included-transaction slices for the
	// current day; resetDayArena truncates it at the day barrier.
	incArena []*chain.Transaction
}

// NewFastLedger creates a fast ledger from a genesis spec.
func NewFastLedger(cfg *chain.Config, gen *chain.Genesis) *FastLedger {
	l := &FastLedger{
		cfg:         cfg,
		time:        gen.Time,
		diff:        types.BigCopy(gen.Difficulty),
		diffScratch: new(big.Int),
		accounts:    make(map[types.Address]*fastAccount),
		contracts:   make(map[types.Address]bool),
	}
	if l.diff == nil {
		l.diff = types.BigCopy(cfg.MinimumDifficulty)
	}
	l.diffFloat = types.BigToFloat64(l.diff)
	for addr, bal := range gen.Alloc {
		l.accounts[addr] = &fastAccount{balance: types.BigCopy(bal)}
	}
	for addr := range gen.Code {
		l.contracts[addr] = true
		if _, ok := l.accounts[addr]; !ok {
			l.accounts[addr] = &fastAccount{balance: new(big.Int)}
		}
	}
	return l
}

// Config implements Ledger.
func (l *FastLedger) Config() *chain.Config { return l.cfg }

// HeadNumber implements Ledger.
func (l *FastLedger) HeadNumber() uint64 { return l.number }

// HeadTime implements Ledger.
func (l *FastLedger) HeadTime() uint64 { return l.time }

// HeadDifficulty implements Ledger.
func (l *FastLedger) HeadDifficulty() *big.Int { return types.BigCopy(l.diff) }

// HeadDifficultyFloat implements Ledger.
func (l *FastLedger) HeadDifficultyFloat() float64 { return l.diffFloat }

// headDiffRef lends out the live head-difficulty big.Int; sim-internal
// readers must copy (big.Int.Set) before the next MineBlock.
func (l *FastLedger) headDiffRef() *big.Int { return l.diff }

// resetDayArena recycles the day's included-transaction backing; the
// engine calls it at the day barrier once every borrower is done.
func (l *FastLedger) resetDayArena() { l.incArena = l.incArena[:0] }

// IsContract reports whether the address carries code.
func (l *FastLedger) IsContract(a types.Address) bool { return l.contracts[a] }

func (l *FastLedger) account(a types.Address) *fastAccount {
	acct, ok := l.accounts[a]
	if !ok {
		acct = &fastAccount{balance: new(big.Int)}
		l.accounts[a] = acct
	}
	return acct
}

// NonceOf implements Ledger.
func (l *FastLedger) NonceOf(a types.Address) uint64 {
	if acct, ok := l.accounts[a]; ok {
		return acct.nonce
	}
	return 0
}

// BalanceOf implements Ledger.
func (l *FastLedger) BalanceOf(a types.Address) *big.Int {
	if acct, ok := l.accounts[a]; ok {
		return types.BigCopy(acct.balance)
	}
	return new(big.Int)
}

// ValidateTx mirrors chain.Processor.ValidateTx against the fast state.
// Allocation-free on the accept path: number, cost and balance checks run
// in ledger scratch space.
func (l *FastLedger) ValidateTx(tx *chain.Transaction) error {
	_, err := l.validateTx(tx)
	return err
}

// validateTx is ValidateTx returning the sender's account record, so the
// mining loop gets the one map lookup all its checks and debits share.
func (l *FastLedger) validateTx(tx *chain.Transaction) (*fastAccount, error) {
	if err := tx.VerifySig(); err != nil {
		return nil, err
	}
	if tx.ChainID != 0 {
		if !l.cfg.IsEIP155(l.numScratch.SetUint64(l.number + 1)) {
			return nil, fmt.Errorf("%w: chain ids not active", chain.ErrWrongChainID)
		}
		if tx.ChainID != l.cfg.ChainID {
			return nil, fmt.Errorf("%w: tx bound to %d, chain is %d", chain.ErrWrongChainID, tx.ChainID, l.cfg.ChainID)
		}
	}
	sender := l.accounts[tx.From]
	var nonce uint64
	if sender != nil {
		nonce = sender.nonce
	}
	switch {
	case tx.Nonce < nonce:
		return nil, fmt.Errorf("%w: tx %d, account %d", chain.ErrNonceTooLow, tx.Nonce, nonce)
	case tx.Nonce > nonce:
		return nil, fmt.Errorf("%w: tx %d, account %d", chain.ErrNonceTooHigh, tx.Nonce, nonce)
	}
	if tx.IntrinsicGas() > tx.GasLimit {
		return nil, chain.ErrIntrinsicGas
	}
	cost := tx.CostInto(&l.costScratch, &l.costTmp)
	if sender == nil || sender.balance.Cmp(cost) < 0 {
		return nil, chain.ErrInsufficientFunds
	}
	return sender, nil
}

// ApplyDAOFork mirrors the irregular state change for fast-mode chains.
func (l *FastLedger) ApplyDAOFork() {
	for _, addr := range l.cfg.DAODrainList {
		acct := l.account(addr)
		if acct.balance.Sign() == 0 {
			continue
		}
		refund := l.account(l.cfg.DAORefundContract)
		refund.balance.Add(refund.balance, acct.balance)
		acct.balance = new(big.Int)
	}
}

// MineBlock implements Ledger: advances the head, applies valid
// transactions (intrinsic gas only — no EVM), pays fees and the reward.
func (l *FastLedger) MineBlock(time uint64, coinbase types.Address, txs []*chain.Transaction) ([]*chain.Transaction, error) {
	if time <= l.time {
		time = l.time + 1
	}
	// Double-buffer the difficulty: NextDifficulty writes the child value
	// into diffScratch, then the buffers swap so the old head big.Int
	// becomes the next call's scratch. No allocation either way.
	next := chain.NextDifficulty(l.cfg, time, l.time, l.number, l.diff, l.diffScratch)
	l.diffScratch, l.diff = l.diff, next
	l.diffFloat = types.BigToFloat64(l.diff)
	l.time = time
	l.number++

	if l.cfg.DAOForkSupport && l.cfg.IsDAOFork(l.numScratch.SetUint64(l.number)) {
		l.ApplyDAOFork()
	}

	start := len(l.incArena)
	gasPool := l.cfg.GasLimit
	// One coinbase lookup per block: account pointers stay valid while
	// the map grows underneath.
	cb := l.account(coinbase)
	for _, tx := range txs {
		sender, err := l.validateTx(tx)
		if err != nil {
			continue
		}
		gasUsed := tx.IntrinsicGas()
		if gasUsed > gasPool {
			continue
		}
		gasPool -= gasUsed
		fee := l.feeScratch.SetUint64(gasUsed)
		fee.Mul(fee, tx.GasPrice)
		sender.nonce = tx.Nonce + 1
		sender.balance.Sub(sender.balance, tx.Value)
		sender.balance.Sub(sender.balance, fee)
		if tx.To != nil {
			rcpt := l.account(*tx.To)
			rcpt.balance.Add(rcpt.balance, tx.Value)
		}
		cb.balance.Add(cb.balance, fee)
		l.incArena = append(l.incArena, tx)
	}
	cb.balance.Add(cb.balance, l.cfg.BlockReward)
	if len(l.incArena) == start {
		return nil, nil
	}
	// Full-capacity slice so a later append for another block cannot
	// clobber this one's tail.
	included := l.incArena[start:len(l.incArena):len(l.incArena)]
	return included, nil
}

// FullLedger adapts a real chain.Blockchain (with PoW seals) to the Ledger
// interface. The seal RNG r is owned by the ledger's partition goroutine;
// the engine hands each chain its own seed-derived stream (prng.New with
// a "seal"/<chain> label path) so concurrent partitions never share it.
type FullLedger struct {
	BC *chain.Blockchain
	r  *rand.Rand

	numScratch big.Int // block-number scratch for rule checks
}

// NewFullLedger creates a full-fidelity ledger from a genesis spec over a
// fresh default in-memory store.
func NewFullLedger(cfg *chain.Config, gen *chain.Genesis, r *rand.Rand) (*FullLedger, error) {
	return NewFullLedgerWithDB(cfg, gen, r, db.NewMemDB())
}

// NewFullLedgerWithDB creates a full-fidelity ledger persisting through the
// given store (the Scenario.Storage knob arrives here).
func NewFullLedgerWithDB(cfg *chain.Config, gen *chain.Genesis, r *rand.Rand, kv db.KV) (*FullLedger, error) {
	bc, err := chain.NewBlockchainWithDB(cfg, gen, kv)
	if err != nil {
		return nil, err
	}
	return &FullLedger{BC: bc, r: r}, nil
}

// Config implements Ledger.
func (l *FullLedger) Config() *chain.Config { return l.BC.Config() }

// HeadNumber implements Ledger.
func (l *FullLedger) HeadNumber() uint64 { return l.BC.Head().Number() }

// HeadTime implements Ledger.
func (l *FullLedger) HeadTime() uint64 { return l.BC.Head().Header.Time }

// HeadDifficulty implements Ledger.
func (l *FullLedger) HeadDifficulty() *big.Int {
	return types.BigCopy(l.BC.Head().Header.Difficulty)
}

// HeadDifficultyFloat implements Ledger.
func (l *FullLedger) HeadDifficultyFloat() float64 {
	return types.BigToFloat64(l.BC.Head().Header.Difficulty)
}

// headDiffRef lends out the head block's difficulty; sim-internal readers
// must copy (big.Int.Set) before the head moves.
func (l *FullLedger) headDiffRef() *big.Int { return l.BC.Head().Header.Difficulty }

// ValidateTx implements Ledger.
func (l *FullLedger) ValidateTx(tx *chain.Transaction) error {
	st, err := l.BC.HeadState()
	if err != nil {
		return err
	}
	return l.BC.Processor().ValidateTx(tx, st, l.numScratch.SetUint64(l.HeadNumber()+1))
}

// NonceOf implements Ledger.
func (l *FullLedger) NonceOf(a types.Address) uint64 {
	st, err := l.BC.HeadState()
	if err != nil {
		return 0
	}
	return st.GetNonce(a)
}

// BalanceOf implements Ledger.
func (l *FullLedger) BalanceOf(a types.Address) *big.Int {
	st, err := l.BC.HeadState()
	if err != nil {
		return new(big.Int)
	}
	return st.GetBalance(a)
}

// MineBlock implements Ledger: filters the transactions against evolving
// head state, builds, seals and inserts a real block.
func (l *FullLedger) MineBlock(time uint64, coinbase types.Address, txs []*chain.Transaction) ([]*chain.Transaction, error) {
	st, err := l.BC.HeadState()
	if err != nil {
		return nil, err
	}
	proc := l.BC.Processor()
	header := chain.NewPooledHeader() // scratch header for pre-execution
	header.Number = l.HeadNumber() + 1
	header.Time = time
	header.GasLimit = l.Config().GasLimit
	header.Coinbase = coinbase
	defer chain.ReleaseHeader(header)
	// included is NOT arena-backed: BuildBlock retains the slice inside
	// the block it assembles.
	var included []*chain.Transaction
	gasPool := l.Config().GasLimit
	for _, tx := range txs {
		rec, used, err := proc.ApplyTransaction(tx, st, header, gasPool)
		if err != nil {
			continue
		}
		chain.ReleaseReceipt(rec) // pre-execution receipt, never serialized
		gasPool -= used
		included = append(included, tx)
	}
	block, err := l.BC.BuildBlock(coinbase, time, included)
	if err != nil {
		return nil, err
	}
	pow.Seal(block.Header, l.r)
	if err := l.BC.InsertBlock(block); err != nil {
		return nil, err
	}
	return included, nil
}
