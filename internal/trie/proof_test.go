package trie

import (
	"forkwatch/internal/db"

	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"forkwatch/internal/types"
)

func provableTrie(t *testing.T, n int) (*Trie, map[string]string) {
	t.Helper()
	tr := NewEmpty(db.NewMemDB())
	pairs := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%d", i*i+1)
		pairs[k] = v
		mustUpdate(t, tr, k, v)
	}
	return tr, pairs
}

func TestProveAndVerifyPresent(t *testing.T) {
	tr, pairs := provableTrie(t, 200)
	root := mustHash(t, tr)
	for k, v := range pairs {
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%q): %v", k, err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("VerifyProof(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("proof for %q yielded %q, want %q", k, got, v)
		}
	}
}

func TestProveAbsent(t *testing.T) {
	tr, _ := provableTrie(t, 50)
	root := mustHash(t, tr)
	for _, k := range []string{"missing", "key-9999", "key-000", "key-00000"} {
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%q): %v", k, err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("VerifyProof absent (%q): %v", k, err)
		}
		if got != nil {
			t.Fatalf("absent key %q proved value %q", k, got)
		}
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	tr, _ := provableTrie(t, 100)
	root := mustHash(t, tr)
	key := []byte("key-0042")
	proof, err := tr.Prove(key)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of each element in turn: every mutation must fail.
	for i := range proof {
		tampered := make([][]byte, len(proof))
		for j := range proof {
			tampered[j] = append([]byte(nil), proof[j]...)
		}
		tampered[i][len(tampered[i])/2] ^= 0x01
		if _, err := VerifyProof(root, key, tampered); err == nil {
			t.Fatalf("tampered element %d accepted", i)
		}
	}
	// Truncated proof must fail.
	if len(proof) > 1 {
		if _, err := VerifyProof(root, key, proof[:len(proof)-1]); err == nil {
			t.Fatal("truncated proof accepted")
		}
	}
	// Wrong root must fail.
	if _, err := VerifyProof(types.HexToHash("0xbad"), key, proof); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestVerifyProofWrongKey(t *testing.T) {
	tr, pairs := provableTrie(t, 100)
	root := mustHash(t, tr)
	proof, err := tr.Prove([]byte("key-0042"))
	if err != nil {
		t.Fatal(err)
	}
	// Verifying a different key against this proof is sound only in two
	// ways: it may prove that key too (siblings embedded in a shared
	// branch node are legitimately covered), in which case the value
	// must be the trie's real value; or it fails/proves nothing. It must
	// never yield a wrong value.
	for _, other := range []string{"key-0043", "key-0099", "zzz-unrelated"} {
		got, err := VerifyProof(root, []byte(other), proof)
		if err != nil {
			continue // proof does not cover this key: fine
		}
		if got != nil && string(got) != pairs[other] {
			t.Fatalf("proof yielded wrong value for %q: %q (want %q)", other, got, pairs[other])
		}
	}
}

func TestProveEmptyTrie(t *testing.T) {
	tr := NewEmpty(db.NewMemDB())
	proof, err := tr.Prove([]byte("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if proof != nil {
		t.Fatalf("empty trie should produce empty proof, got %d elements", len(proof))
	}
	got, err := VerifyProof(EmptyRoot, []byte("anything"), nil)
	if err != nil || got != nil {
		t.Fatalf("empty-root verification: %v, %q", err, got)
	}
	if _, err := VerifyProof(types.HexToHash("0x01"), []byte("k"), nil); err == nil {
		t.Fatal("empty proof for non-empty root accepted")
	}
}

// TestProofRandomized cross-checks proofs against the map model under a
// random keyspace with shared prefixes (exercising embedded nodes).
func TestProofRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := NewEmpty(db.NewMemDB())
	model := map[string][]byte{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("p%d", r.Intn(500))
		v := []byte(fmt.Sprintf("v%d", r.Intn(1_000_000)))
		model[k] = v
		if err := tr.Update([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	root := mustHash(t, tr)
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("p%d", r.Intn(600)) // includes absent keys
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%q): %v", k, err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("VerifyProof(%q): %v", k, err)
		}
		if !bytes.Equal(got, model[k]) {
			t.Fatalf("key %q: proof yielded %q, model %q", k, got, model[k])
		}
	}
}
