// Package trie implements the hexary Merkle-Patricia trie that Ethereum
// uses for its state, transaction and receipt roots.
//
// forkwatch needs real state roots for two reasons. First, the ETH/ETC
// partition is *defined* by state divergence from a shared prefix: both
// ledgers commit to their account state per block, and the DAO fork is an
// irregular state change that makes the two roots diverge forever. Second,
// the echo analysis (paper Fig 4) depends on replayed transactions being
// valid or invalid against each chain's *own* state, which the state
// package evaluates on top of this trie.
//
// The node model follows the yellow paper: branch nodes (17 slots), short
// nodes carrying a hex-prefix-compacted key fragment (leaf or extension),
// and hash references for nodes whose RLP encoding is 32 bytes or longer.
// Nodes shorter than 32 bytes embed inline in their parent, as per the
// specification.
package trie

import (
	"bytes"
	"errors"
	"fmt"

	"forkwatch/internal/db"
	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// ErrMissingNode reports a hash reference that cannot be resolved in the
// backing database (a corrupted or incomplete trie).
var ErrMissingNode = errors.New("trie: missing node")

// Node kinds. fullNode is a 17-slot branch; shortNode is a leaf (value
// child) or extension (branch child) holding a nibble-key fragment;
// hashNode refers to a node stored in the Database; valueNode is a stored
// value.
type node interface{}

type fullNode struct {
	children [17]node
}

type shortNode struct {
	key []byte // nibbles, with terminator for leaves
	val node
}

type (
	hashNode  []byte
	valueNode []byte
)

// EmptyRoot is the root hash of an empty trie: keccak256(rlp("")).
var EmptyRoot = types.HexToHash("56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421")

// Trie is a mutable Merkle-Patricia trie over a db.KV node store. Nodes
// are content-addressed: the store key is the node's Keccak-256 hash, the
// value its RLP encoding. The zero value is not usable; construct with New.
type Trie struct {
	db   db.KV
	root node
}

// New opens the trie rooted at root inside kv. A zero or EmptyRoot hash
// yields an empty trie. The root node itself is resolved lazily.
func New(root types.Hash, kv db.KV) (*Trie, error) {
	t := &Trie{db: kv}
	if root.IsZero() || root == EmptyRoot {
		return t, nil
	}
	ok, err := kv.Has(root.Bytes())
	if err != nil {
		return nil, fmt.Errorf("trie: probing root %s: %w", root, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: root %s", ErrMissingNode, root)
	}
	t.root = hashNode(root.Bytes())
	return t, nil
}

// NewEmpty returns an empty trie over kv.
func NewEmpty(kv db.KV) *Trie {
	t, _ := New(types.Hash{}, kv)
	return t
}

// Get returns the value stored under key, or nil when absent.
func (t *Trie) Get(key []byte) ([]byte, error) {
	v, newRoot, err := t.get(t.root, keybytesToHex(key), 0)
	if err != nil {
		return nil, err
	}
	t.root = newRoot
	return v, nil
}

func (t *Trie) get(n node, key []byte, pos int) ([]byte, node, error) {
	switch n := n.(type) {
	case nil:
		return nil, nil, nil
	case valueNode:
		return n, n, nil
	case *shortNode:
		if len(key)-pos < len(n.key) || !bytes.Equal(n.key, key[pos:pos+len(n.key)]) {
			return nil, n, nil
		}
		v, newChild, err := t.get(n.val, key, pos+len(n.key))
		if err != nil {
			return nil, n, err
		}
		n.val = newChild
		return v, n, nil
	case *fullNode:
		v, newChild, err := t.get(n.children[key[pos]], key, pos+1)
		if err != nil {
			return nil, n, err
		}
		n.children[key[pos]] = newChild
		return v, n, nil
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil, n, err
		}
		return t.get(resolved, key, pos)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// Update stores value under key; an empty value deletes the key.
func (t *Trie) Update(key, value []byte) error {
	k := keybytesToHex(key)
	if len(value) == 0 {
		newRoot, _, err := t.delete(t.root, k)
		if err != nil {
			return err
		}
		t.root = newRoot
		return nil
	}
	newRoot, err := t.insert(t.root, k, valueNode(append([]byte(nil), value...)))
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// Delete removes key from the trie. Deleting an absent key is a no-op.
func (t *Trie) Delete(key []byte) error {
	return t.Update(key, nil)
}

func (t *Trie) insert(n node, key []byte, value node) (node, error) {
	if len(key) == 0 {
		return value, nil
	}
	switch n := n.(type) {
	case nil:
		return &shortNode{key: append([]byte(nil), key...), val: value}, nil

	case *shortNode:
		match := prefixLen(key, n.key)
		if match == len(n.key) {
			child, err := t.insert(n.val, key[match:], value)
			if err != nil {
				return nil, err
			}
			return &shortNode{key: n.key, val: child}, nil
		}
		// Split: branch at the first diverging nibble.
		branch := &fullNode{}
		var err error
		branch.children[n.key[match]], err = t.insert(nil, n.key[match+1:], n.val)
		if err != nil {
			return nil, err
		}
		branch.children[key[match]], err = t.insert(nil, key[match+1:], value)
		if err != nil {
			return nil, err
		}
		if match == 0 {
			return branch, nil
		}
		return &shortNode{key: append([]byte(nil), key[:match]...), val: branch}, nil

	case *fullNode:
		child, err := t.insert(n.children[key[0]], key[1:], value)
		if err != nil {
			return nil, err
		}
		cp := *n
		cp.children[key[0]] = child
		return &cp, nil

	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil, err
		}
		return t.insert(resolved, key, value)

	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// delete returns the new node and whether the trie changed.
func (t *Trie) delete(n node, key []byte) (node, bool, error) {
	switch n := n.(type) {
	case nil:
		return nil, false, nil

	case *shortNode:
		match := prefixLen(key, n.key)
		if match < len(n.key) {
			return n, false, nil // key not present
		}
		if match == len(key) {
			return nil, true, nil // exact leaf removal
		}
		child, changed, err := t.delete(n.val, key[len(n.key):])
		if err != nil || !changed {
			return n, changed, err
		}
		if child == nil {
			return nil, true, nil
		}
		if sn, ok := child.(*shortNode); ok {
			// Merge consecutive short nodes.
			return &shortNode{key: concat(n.key, sn.key), val: sn.val}, true, nil
		}
		return &shortNode{key: n.key, val: child}, true, nil

	case *fullNode:
		child, changed, err := t.delete(n.children[key[0]], key[1:])
		if err != nil || !changed {
			return n, changed, err
		}
		cp := *n
		cp.children[key[0]] = child

		// Count remaining children; collapse when only one remains.
		pos := -1
		count := 0
		for i, c := range cp.children {
			if c != nil {
				count++
				pos = i
			}
		}
		if count > 1 {
			return &cp, true, nil
		}
		if pos == 16 {
			// Only the branch value remains: becomes a terminating
			// short node.
			return &shortNode{key: []byte{16}, val: cp.children[16]}, true, nil
		}
		// One child branch remains: fold it into a short node,
		// resolving through hash references.
		only := cp.children[pos]
		if hn, ok := only.(hashNode); ok {
			resolved, err := t.resolve(hn)
			if err != nil {
				return nil, false, err
			}
			only = resolved
		}
		if sn, ok := only.(*shortNode); ok {
			return &shortNode{key: concat([]byte{byte(pos)}, sn.key), val: sn.val}, true, nil
		}
		return &shortNode{key: []byte{byte(pos)}, val: only}, true, nil

	case valueNode:
		return nil, true, nil

	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil, false, err
		}
		return t.delete(resolved, key)

	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

func (t *Trie) resolve(h hashNode) (node, error) {
	// Nodes are content-addressed, so every read is integrity-checked
	// against its key. A mismatch is re-read a few times first: read-path
	// bit-rot (a flipped bit on the wire or in a failing controller)
	// heals on a re-read, while at-rest corruption does not and surfaces
	// as db.ErrCorrupt.
	const rereads = 3
	var enc []byte
	for attempt := 0; ; attempt++ {
		var ok bool
		var err error
		enc, ok, err = t.db.Get(h)
		if err != nil {
			return nil, fmt.Errorf("trie: reading node %x: %w", []byte(h), err)
		}
		if !ok {
			return nil, fmt.Errorf("%w: %x", ErrMissingNode, []byte(h))
		}
		sum := keccak.Sum256Pooled(enc)
		if bytes.Equal(sum[:], h) {
			break
		}
		if attempt >= rereads {
			return nil, fmt.Errorf("%w: trie node %x fails its content hash", db.ErrCorrupt, []byte(h))
		}
	}
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("trie: corrupt node %x: %w", []byte(h), err)
	}
	return decodeNode(v)
}

// Hash computes the root hash of the trie, committing every node of 32+
// encoded bytes into the store through one atomic batch. The trie remains
// usable afterwards. A storage error leaves the store unchanged (the batch
// is atomic) and the computed root uncommitted.
func (t *Trie) Hash() (types.Hash, error) {
	batch := t.db.NewBatch()
	root := t.CommitTo(batch)
	if err := batch.Write(); err != nil {
		return types.Hash{}, fmt.Errorf("trie: committing nodes: %w", err)
	}
	return root, nil
}

// CommitTo computes the root hash, queuing every node of 32+ encoded bytes
// into the given batch instead of writing the store directly. The caller
// owns the batch: nothing is persisted until batch.Write, which lets one
// batch carry several tries (state.DB commits every storage trie, the
// account trie and contract code in a single write).
func (t *Trie) CommitTo(batch db.Batch) types.Hash {
	if t.root == nil {
		return EmptyRoot
	}
	ref := t.commit(t.root, batch)
	switch ref := ref.(type) {
	case hashNode:
		return types.BytesToHash(ref)
	default:
		// Whole trie encodes under 32 bytes: hash the encoding itself.
		enc := appendNode(make([]byte, 0, nodeSize(t.root)), t.root)
		h := keccak.Sum256Pooled(enc)
		batch.Put(h[:], enc)
		return types.BytesToHash(h[:])
	}
}

// commit returns the reference form of n (hashNode when the encoding is
// >= 32 bytes, otherwise the node itself) and queues hashed encodings.
func (t *Trie) commit(n node, batch db.Batch) node {
	switch n := n.(type) {
	case *shortNode:
		childRef := t.commit(n.val, batch)
		collapsed := &shortNode{key: n.key, val: childRef}
		return t.store(collapsed, batch)
	case *fullNode:
		collapsed := &fullNode{}
		for i, c := range n.children {
			if c == nil {
				continue
			}
			collapsed.children[i] = t.commit(c, batch)
		}
		return t.store(collapsed, batch)
	case hashNode, valueNode, nil:
		return n
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

func (t *Trie) store(n node, batch db.Batch) node {
	size := nodeSize(n)
	if size < 32 {
		return n
	}
	// Encoded directly into an exact-size buffer: the batch aliases the
	// value until Write (and the db cache can retain it past that), so
	// this allocation is owned by the store, never pooled.
	enc := appendNode(make([]byte, 0, size), n)
	h := keccak.Sum256Pooled(enc)
	batch.Put(h[:], enc)
	return hashNode(h[:])
}

// nodeSize returns the exact RLP-encoded length of n — the byte count
// appendNode will emit. Computing the size first lets store allocate the
// final buffer once and skip encoding sub-32-byte nodes entirely (they
// re-encode inline inside their parent).
func nodeSize(n node) int {
	switch n := n.(type) {
	case nil:
		return 1
	case valueNode:
		return rlp.BytesSize(n)
	case hashNode:
		return rlp.BytesSize(n)
	case *shortNode:
		payload := compactSize(n.key) + nodeSize(n.val)
		return rlp.ListSize(payload)
	case *fullNode:
		payload := 0
		for _, c := range n.children {
			payload += nodeSize(c)
		}
		return rlp.ListSize(payload)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// appendNode appends the RLP encoding of n to dst — the allocation-free
// replacement for rlp.Encode(encodeNode(n)) on the commit path. Child
// references must already be collapsed (hashNode for >= 32-byte children),
// which commit guarantees.
func appendNode(dst []byte, n node) []byte {
	switch n := n.(type) {
	case nil:
		return append(dst, 0x80)
	case valueNode:
		return rlp.AppendBytes(dst, n)
	case hashNode:
		return rlp.AppendBytes(dst, n)
	case *shortNode:
		payload := compactSize(n.key) + nodeSize(n.val)
		dst = rlp.AppendListHeader(dst, payload)
		dst = appendCompact(dst, n.key)
		return appendNode(dst, n.val)
	case *fullNode:
		payload := 0
		for _, c := range n.children {
			payload += nodeSize(c)
		}
		dst = rlp.AppendListHeader(dst, payload)
		for _, c := range n.children {
			dst = appendNode(dst, c)
		}
		return dst
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// compactSize returns the RLP-encoded length of the hex-prefix compaction
// of the nibble key (the string appendCompact emits, prefix included). The
// one-byte compact form is always just the flag nibble pair, which is at
// most 0x3f and therefore encodes as itself.
func compactSize(hex []byte) int {
	n := len(hex)
	if hasTerm(hex) {
		n--
	}
	kl := n/2 + 1
	if kl == 1 {
		return 1
	}
	return rlp.StringSize(kl)
}

// appendCompact appends the RLP string encoding of hexToCompact(hex)
// without materializing the intermediate compact buffer.
func appendCompact(dst, hex []byte) []byte {
	first := byte(0)
	if hasTerm(hex) {
		first = 1 << 5
		hex = hex[:len(hex)-1]
	}
	kl := len(hex)/2 + 1
	if len(hex)%2 == 1 {
		first |= 1<<4 | hex[0]
		hex = hex[1:]
	}
	if kl > 1 {
		dst = rlp.AppendStringHeader(dst, kl)
	}
	dst = append(dst, first)
	for i := 0; i < len(hex); i += 2 {
		dst = append(dst, hex[i]<<4|hex[i+1])
	}
	return dst
}

// encodeNode maps a node to its RLP Value. Child references become either
// the 32-byte hash string or the embedded sub-encoding.
func encodeNode(n node) rlp.Value {
	switch n := n.(type) {
	case nil:
		return rlp.Bytes(nil)
	case valueNode:
		return rlp.Bytes(n)
	case hashNode:
		return rlp.Bytes(n)
	case *shortNode:
		return rlp.List(rlp.Bytes(hexToCompact(n.key)), encodeNode(n.val))
	case *fullNode:
		items := make([]rlp.Value, 17)
		for i, c := range n.children {
			items[i] = encodeNode(c)
		}
		return rlp.List(items...)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// decodeNode rebuilds a node from its decoded RLP Value.
func decodeNode(v rlp.Value) (node, error) {
	items, err := v.AsList()
	if err != nil {
		return nil, fmt.Errorf("trie: node must be a list: %w", err)
	}
	switch len(items) {
	case 2:
		keyBytes, err := items[0].AsBytes()
		if err != nil {
			return nil, err
		}
		key := compactToHex(keyBytes)
		if hasTerm(key) {
			val, err := items[1].AsBytes()
			if err != nil {
				return nil, err
			}
			return &shortNode{key: key, val: valueNode(val)}, nil
		}
		child, err := decodeRef(items[1])
		if err != nil {
			return nil, err
		}
		return &shortNode{key: key, val: child}, nil
	case 17:
		fn := &fullNode{}
		for i := 0; i < 16; i++ {
			child, err := decodeRef(items[i])
			if err != nil {
				return nil, err
			}
			fn.children[i] = child
		}
		valBytes, err := items[16].AsBytes()
		if err != nil {
			return nil, err
		}
		if len(valBytes) > 0 {
			fn.children[16] = valueNode(valBytes)
		}
		return fn, nil
	default:
		return nil, fmt.Errorf("trie: invalid node arity %d", len(items))
	}
}

// decodeRef interprets a child slot: empty string = nil, 32-byte string =
// hash reference, embedded list = inline node.
func decodeRef(v rlp.Value) (node, error) {
	if v.IsList {
		return decodeNode(v)
	}
	b, _ := v.AsBytes()
	switch len(b) {
	case 0:
		return nil, nil
	case 32:
		return hashNode(append([]byte(nil), b...)), nil
	default:
		return nil, fmt.Errorf("trie: invalid node reference of %d bytes", len(b))
	}
}

// Nibble-key helpers.

// keybytesToHex expands a byte key into nibbles plus the 0x10 terminator.
func keybytesToHex(key []byte) []byte {
	out := make([]byte, len(key)*2+1)
	for i, b := range key {
		out[i*2] = b / 16
		out[i*2+1] = b % 16
	}
	out[len(out)-1] = 16
	return out
}

// hexToCompact applies hex-prefix encoding: flag nibble carrying oddness
// and leaf/extension kind, then packed nibbles.
func hexToCompact(hex []byte) []byte {
	terminator := byte(0)
	if hasTerm(hex) {
		terminator = 1
		hex = hex[:len(hex)-1]
	}
	buf := make([]byte, len(hex)/2+1)
	buf[0] = terminator << 5
	if len(hex)%2 == 1 {
		buf[0] |= 1 << 4
		buf[0] |= hex[0]
		hex = hex[1:]
	}
	for i := 0; i < len(hex); i += 2 {
		buf[i/2+1] = hex[i]<<4 | hex[i+1]
	}
	return buf
}

// compactToHex inverts hexToCompact.
func compactToHex(compact []byte) []byte {
	if len(compact) == 0 {
		return nil
	}
	base := make([]byte, 0, len(compact)*2)
	for _, b := range compact {
		base = append(base, b/16, b%16)
	}
	// base[0] is the flag nibble; base[1] is either padding or the first
	// key nibble depending on the odd bit.
	flags := base[0]
	skip := 2 - flags&1
	base = base[skip:]
	if flags&2 != 0 {
		base = append(base, 16)
	}
	return base
}

func hasTerm(hex []byte) bool {
	return len(hex) > 0 && hex[len(hex)-1] == 16
}

func prefixLen(a, b []byte) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

func concat(a, b []byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
