package trie

import (
	"forkwatch/internal/db"
	"forkwatch/internal/rlp"

	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"forkwatch/internal/types"
)

func newTestTrie(t *testing.T) *Trie {
	t.Helper()
	return NewEmpty(db.NewMemDB())
}

func mustUpdate(t *testing.T, tr *Trie, key, val string) {
	t.Helper()
	if err := tr.Update([]byte(key), []byte(val)); err != nil {
		t.Fatalf("Update(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, tr *Trie, key string) []byte {
	t.Helper()
	v, err := tr.Get([]byte(key))
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return v
}

// mustHash commits the trie and returns its root, failing the test on a
// storage error (fault-free stores never produce one).
func mustHash(tb testing.TB, tr *Trie) types.Hash {
	tb.Helper()
	root, err := tr.Hash()
	if err != nil {
		tb.Fatal(err)
	}
	return root
}

func TestEmptyTrieRoot(t *testing.T) {
	tr := newTestTrie(t)
	if got := mustHash(t, tr); got != EmptyRoot {
		t.Errorf("empty root = %s, want %s", got, EmptyRoot)
	}
}

// TestKnownRoot checks the canonical three-key vector used across
// Ethereum implementations.
func TestKnownRoot(t *testing.T) {
	tr := newTestTrie(t)
	mustUpdate(t, tr, "doe", "reindeer")
	mustUpdate(t, tr, "dog", "puppy")
	mustUpdate(t, tr, "dogglesworth", "cat")
	want := types.HexToHash("0x8aad789dff2f538bca5d8ea56e8abe10f4c7ba3a5dea95fea4cd6e7c3a1168d3")
	if got := mustHash(t, tr); got != want {
		t.Errorf("root = %s, want %s", got, want)
	}
}

func TestGetUpdateDelete(t *testing.T) {
	tr := newTestTrie(t)
	if v := mustGet(t, tr, "missing"); v != nil {
		t.Errorf("missing key returned %q", v)
	}
	mustUpdate(t, tr, "alpha", "1")
	mustUpdate(t, tr, "alphabet", "2")
	mustUpdate(t, tr, "beta", "3")
	if got := mustGet(t, tr, "alpha"); string(got) != "1" {
		t.Errorf("alpha = %q", got)
	}
	if got := mustGet(t, tr, "alphabet"); string(got) != "2" {
		t.Errorf("alphabet = %q", got)
	}
	mustUpdate(t, tr, "alpha", "overwritten")
	if got := mustGet(t, tr, "alpha"); string(got) != "overwritten" {
		t.Errorf("alpha after overwrite = %q", got)
	}
	if err := tr.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if v := mustGet(t, tr, "alpha"); v != nil {
		t.Errorf("deleted key still present: %q", v)
	}
	if got := mustGet(t, tr, "alphabet"); string(got) != "2" {
		t.Errorf("sibling lost after delete: %q", got)
	}
}

func TestDeleteRestoresEmptyRoot(t *testing.T) {
	tr := newTestTrie(t)
	keys := []string{"doe", "dog", "dogglesworth", "horse", "x"}
	for i, k := range keys {
		mustUpdate(t, tr, k, fmt.Sprintf("value-%d", i))
	}
	for _, k := range keys {
		if err := tr.Delete([]byte(k)); err != nil {
			t.Fatalf("Delete(%q): %v", k, err)
		}
	}
	if got := mustHash(t, tr); got != EmptyRoot {
		t.Errorf("root after deleting all keys = %s, want empty root", got)
	}
}

func TestDeleteAbsentKeyIsNoOp(t *testing.T) {
	tr := newTestTrie(t)
	mustUpdate(t, tr, "dog", "puppy")
	before := mustHash(t, tr)
	if err := tr.Delete([]byte("cat")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("do")); err != nil { // prefix of existing key
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("dogs")); err != nil { // extension of existing key
		t.Fatal(err)
	}
	if got := mustHash(t, tr); got != before {
		t.Errorf("root changed by absent-key deletes: %s vs %s", got, before)
	}
}

func TestOrderIndependence(t *testing.T) {
	pairs := map[string]string{
		"doe": "reindeer", "dog": "puppy", "dogglesworth": "cat",
		"horse": "stallion", "shaman": "horse", "do": "verb",
		"ether": "wookiedoo", "": "emptykeyvalue",
	}
	var roots []types.Hash
	for seed := 0; seed < 5; seed++ {
		tr := newTestTrie(t)
		keys := make([]string, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		r := rand.New(rand.NewSource(int64(seed)))
		r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			mustUpdate(t, tr, k, pairs[k])
		}
		roots = append(roots, mustHash(t, tr))
	}
	for i := 1; i < len(roots); i++ {
		if roots[i] != roots[0] {
			t.Errorf("insertion order changed root: %s vs %s", roots[i], roots[0])
		}
	}
}

func TestReopenFromCommittedRoot(t *testing.T) {
	store := db.NewMemDB()
	tr := NewEmpty(store)
	pairs := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("account-%03d", i)
		v := fmt.Sprintf("balance-%d", i*i)
		pairs[k] = v
		if err := tr.Update([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	root := mustHash(t, tr)

	reopened, err := New(root, store)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k, v := range pairs {
		got, err := reopened.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q) after reopen: %v", k, err)
		}
		if string(got) != v {
			t.Errorf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	// Mutating the reopened trie must produce the same root as mutating
	// the original.
	if err := reopened.Update([]byte("account-050"), []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update([]byte("account-050"), []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if mustHash(t, reopened) != mustHash(t, tr) {
		t.Error("reopened trie diverged from original after identical update")
	}
}

func TestMissingRoot(t *testing.T) {
	if _, err := New(types.HexToHash("0x1234"), db.NewMemDB()); err == nil {
		t.Error("expected error opening trie at unknown root")
	}
}

// TestModelConformance drives the trie with random operations against a
// plain map model and compares contents and roots across two
// differently-ordered replays.
func TestModelConformance(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := newTestTrie(t)
	model := map[string]string{}

	randKey := func() string {
		// Small keyspace to force collisions, splits and deletes of
		// shared prefixes.
		return fmt.Sprintf("k%d", r.Intn(200))
	}
	for step := 0; step < 5000; step++ {
		k := randKey()
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", r.Intn(1_000_000))
			model[k] = v
			if err := tr.Update([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d: Update: %v", step, err)
			}
		case 2:
			delete(model, k)
			if err := tr.Delete([]byte(k)); err != nil {
				t.Fatalf("step %d: Delete: %v", step, err)
			}
		}
		if step%500 == 0 {
			tr.Hash() // interleave commits with mutation
		}
	}
	for k, v := range model {
		got, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Errorf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	// Rebuild from the model in map order; roots must match.
	rebuilt := newTestTrie(t)
	for k, v := range model {
		if err := rebuilt.Update([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if mustHash(t, rebuilt) != mustHash(t, tr) {
		t.Error("rebuilt trie root differs from mutated trie root")
	}
}

func TestHexCompactRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		n := r.Intn(20)
		hexKey := make([]byte, n)
		for j := range hexKey {
			hexKey[j] = byte(r.Intn(16))
		}
		if r.Intn(2) == 0 {
			hexKey = append(hexKey, 16)
		}
		got := compactToHex(hexToCompact(hexKey))
		if !bytes.Equal(got, hexKey) && !(len(hexKey) == 0 && len(got) == 0) {
			t.Fatalf("round trip failed: %v -> %v", hexKey, got)
		}
	}
}

func TestLargeValues(t *testing.T) {
	tr := newTestTrie(t)
	big := bytes.Repeat([]byte{0xaa}, 1000)
	mustUpdate(t, tr, "big", string(big))
	if got := mustGet(t, tr, "big"); !bytes.Equal(got, big) {
		t.Errorf("large value corrupted: %d bytes", len(got))
	}
	tr.Hash()
	if got := mustGet(t, tr, "big"); !bytes.Equal(got, big) {
		t.Errorf("large value corrupted after commit: %d bytes", len(got))
	}
}

func BenchmarkTrieInsert1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewEmpty(db.NewMemDB())
		for j := 0; j < 1000; j++ {
			key := fmt.Sprintf("account-%04d", j)
			if err := tr.Update([]byte(key), []byte("value")); err != nil {
				b.Fatal(err)
			}
		}
		tr.Hash()
	}
}

// TestAppendNodeMatchesModel pins the append-style commit encoder to the
// auditable rlp.Value model (encodeNode): for every node shape reachable
// by committing a randomized trie, appendNode must emit exactly the bytes
// of rlp.Encode(encodeNode(n)) and nodeSize must predict their length.
// The walk re-resolves every stored node so branch, extension, leaf and
// embedded-child shapes are all exercised.
func TestAppendNodeMatchesModel(t *testing.T) {
	kv := db.NewMemDB()
	tr := NewEmpty(kv)
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 600; i++ {
		key := make([]byte, 1+r.Intn(6))
		r.Read(key)
		val := make([]byte, 1+r.Intn(60))
		r.Read(val)
		if err := tr.Update(key, val); err != nil {
			t.Fatal(err)
		}
	}
	root := mustHash(t, tr)

	var walk func(n node)
	checked := 0
	walk = func(n node) {
		want := rlp.Encode(encodeNode(n))
		got := appendNode(nil, n)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendNode mismatch for %T:\n got %x\nwant %x", n, got, want)
		}
		if size := nodeSize(n); size != len(want) {
			t.Fatalf("nodeSize(%T) = %d, want %d", n, size, len(want))
		}
		checked++
		switch n := n.(type) {
		case *shortNode:
			walk(n.val)
		case *fullNode:
			for _, c := range n.children {
				if c != nil {
					walk(c)
				}
			}
		case hashNode:
			resolved, err := tr.resolve(n)
			if err != nil {
				t.Fatal(err)
			}
			walk(resolved)
		}
	}
	walk(hashNode(root.Bytes()))
	if checked < 100 {
		t.Fatalf("walk only reached %d nodes; trie too shallow to be a meaningful check", checked)
	}
}
