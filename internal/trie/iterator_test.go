package trie

import (
	"bytes"

	"forkwatch/internal/db"

	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func collect(t *testing.T, tr *Trie) map[string]string {
	t.Helper()
	got := map[string]string{}
	it := tr.NewIterator()
	var prev string
	first := true
	for it.Next() {
		k := string(it.Key())
		if _, dup := got[k]; dup {
			t.Fatalf("iterator yielded %q twice", k)
		}
		if !first && k <= prev {
			t.Fatalf("iterator out of order: %q after %q", k, prev)
		}
		first = false
		prev = k
		got[k] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestIteratorEmpty(t *testing.T) {
	tr := NewEmpty(db.NewMemDB())
	if tr.NewIterator().Next() {
		t.Error("empty trie iterator yielded a pair")
	}
}

func TestIteratorYieldsAllPairsInOrder(t *testing.T) {
	tr := NewEmpty(db.NewMemDB())
	want := map[string]string{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", r.Intn(2_000))
		v := fmt.Sprintf("v%d", i)
		want[k] = v
		mustUpdate(t, tr, k, v)
	}
	// Prefix keys force branch-value ordering ("ab" before "abc").
	want["k1"] = "short"
	mustUpdate(t, tr, "k1", "short")
	want["k1x"] = "longer"
	mustUpdate(t, tr, "k1x", "longer")

	got := collect(t, tr)
	if len(got) != len(want) {
		t.Fatalf("iterator yielded %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestIteratorAfterCommitAndReopen(t *testing.T) {
	store := db.NewMemDB()
	tr := NewEmpty(store)
	keys := []string{"alpha", "beta", "gamma", "alphabet", "a"}
	for i, k := range keys {
		mustUpdate(t, tr, k, fmt.Sprintf("v%d", i))
	}
	root := mustHash(t, tr)
	reopened, err := New(root, store)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, reopened)
	if len(got) != len(keys) {
		t.Fatalf("reopened iterator yielded %d pairs, want %d", len(got), len(keys))
	}
	// Sorted order check against an explicit sort.
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	it := reopened.NewIterator()
	for _, want := range sorted {
		if !it.Next() {
			t.Fatalf("iterator ended before %q", want)
		}
		if string(it.Key()) != want {
			t.Fatalf("iterator key %q, want %q", it.Key(), want)
		}
	}
}

func TestIteratorMissingNodeSurfacesError(t *testing.T) {
	store := db.NewMemDB()
	tr := NewEmpty(store)
	for i := 0; i < 100; i++ {
		mustUpdate(t, tr, fmt.Sprintf("key-%03d", i), "value-values-value")
	}
	root := mustHash(t, tr)
	// Corrupt the database: drop one interior node.
	for _, k := range store.Keys() {
		if !bytes.Equal(k, root.Bytes()) {
			store.Delete(k)
			break
		}
	}
	reopened, err := New(root, store)
	if err != nil {
		t.Fatal(err)
	}
	it := reopened.NewIterator()
	for it.Next() {
	}
	if it.Err() == nil {
		t.Error("iterator over corrupt trie should surface an error")
	}
}
