package trie

import (
	"encoding/binary"
	"testing"

	"forkwatch/internal/db"
)

// benchEntries returns n hash-shaped keys with short values, the shape of
// an account-trie update set.
func benchEntries(n int) ([][]byte, [][]byte) {
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 32)
		binary.BigEndian.PutUint64(k, uint64(i)*0x9e3779b97f4a7c15)
		keys[i] = k
		v := make([]byte, 40)
		binary.BigEndian.PutUint64(v, uint64(i))
		vals[i] = v
	}
	return keys, vals
}

// BenchmarkTrieCommit measures building a 256-entry trie and committing it
// through a single batch into the sharded store — the per-block cost of a
// full-mode state commit.
func BenchmarkTrieCommit(b *testing.B) {
	keys, vals := benchEntries(256)
	store := db.NewMemDB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewEmpty(store)
		for j := range keys {
			tr.Update(keys[j], vals[j])
		}
		batch := store.NewBatch()
		tr.CommitTo(batch)
		batch.Write()
	}
}

// BenchmarkTrieHash measures hashing (commit into a throwaway batch) the
// same trie without mutating the backing store between iterations.
func BenchmarkTrieHash(b *testing.B) {
	keys, vals := benchEntries(256)
	store := db.NewMemDB()
	tr := NewEmpty(store)
	for j := range keys {
		tr.Update(keys[j], vals[j])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Hash()
	}
}

// BenchmarkTrieGetCommitted measures reads that resolve nodes through the
// store after a commit.
func BenchmarkTrieGetCommitted(b *testing.B) {
	keys, vals := benchEntries(256)
	store := db.NewMemDB()
	tr := NewEmpty(store)
	for j := range keys {
		tr.Update(keys[j], vals[j])
	}
	root := mustHash(b, tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reopened, err := New(root, store)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reopened.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
