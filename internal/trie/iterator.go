package trie

import "fmt"

// Iterator walks every (key, value) pair of the trie in lexicographic key
// order — the primitive behind state dumps and export-style full scans.
// The trie must not be mutated while iterating.
type Iterator struct {
	t     *Trie
	stack []iterFrame
	key   []byte
	value []byte
	err   error
}

type iterFrame struct {
	n node
	// prefix is the nibble path to this node.
	prefix []byte
	// childIdx is the next branch slot to visit (full nodes only).
	childIdx int
}

// NewIterator returns an iterator positioned before the first pair.
func (t *Trie) NewIterator() *Iterator {
	it := &Iterator{t: t}
	if t.root != nil {
		it.stack = append(it.stack, iterFrame{n: t.root})
	}
	return it
}

// Next advances to the next pair, reporting whether one exists. On
// resolution failure it stops and Err returns the cause.
func (it *Iterator) Next() bool {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		switch n := top.n.(type) {
		case hashNode:
			resolved, err := it.t.resolve(n)
			if err != nil {
				it.err = err
				return false
			}
			top.n = resolved

		case valueNode:
			key := top.prefix
			it.stack = it.stack[:len(it.stack)-1]
			if !hasTerm(key) {
				it.err = fmt.Errorf("trie: value at non-terminated path %v", key)
				return false
			}
			kb, err := hexToKeybytes(key[:len(key)-1])
			if err != nil {
				it.err = err
				return false
			}
			it.key = kb
			it.value = append([]byte(nil), n...)
			return true

		case *shortNode:
			child := iterFrame{n: n.val, prefix: concat(top.prefix, n.key)}
			it.stack[len(it.stack)-1] = child

		case *fullNode:
			// Visit the branch's own value (slot 16) before its
			// children: "ab" sorts before "abc".
			advanced := false
			for i := top.childIdx; i < 17; i++ {
				slot := branchOrder[i]
				if n.children[slot] == nil {
					continue
				}
				top.childIdx = i + 1
				prefix := concat(top.prefix, []byte{byte(slot)})
				it.stack = append(it.stack, iterFrame{n: n.children[slot], prefix: prefix})
				advanced = true
				break
			}
			if !advanced {
				it.stack = it.stack[:len(it.stack)-1]
			}

		default:
			it.err = fmt.Errorf("trie: unknown node %T in iterator", n)
			return false
		}
	}
	return false
}

// Key returns the current key (valid until the next call to Next).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.value }

// Err returns the error that stopped iteration, if any.
func (it *Iterator) Err() error { return it.err }

// branchOrder visits the terminator slot (16) before the nibble slots so
// iteration is lexicographic.
var branchOrder = [17]int{16, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// hexToKeybytes packs even-length nibbles back into bytes. Keys written
// through Update always have whole bytes; an odd path can only come from a
// corrupt (e.g. bit-rotted) stored trie, so it surfaces as an error rather
// than a panic.
func hexToKeybytes(hex []byte) ([]byte, error) {
	if len(hex)%2 != 0 {
		return nil, fmt.Errorf("trie: odd nibble path of length %d", len(hex))
	}
	out := make([]byte, len(hex)/2)
	for i := range out {
		out[i] = hex[i*2]<<4 | hex[i*2+1]
	}
	return out, nil
}
