package trie

import (
	"bytes"
	"errors"
	"fmt"

	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// Merkle proofs: the mechanism light clients use to verify one account or
// storage slot against a state root without holding the trie. A proof is
// the list of RLP node encodings along the path from the root to the key;
// each element's Keccak-256 is committed to by its parent (or, for the
// first element, by the root hash itself), so the verifier needs nothing
// but the root.

// ErrBadProof reports a proof that does not verify against the root.
var ErrBadProof = errors.New("trie: invalid Merkle proof")

// Prove returns the Merkle proof for key: the encodings of every stored
// (hash-referenced) node on the path from the root. The trie is committed
// first. Works for absent keys too (the proof then shows the divergence).
func (t *Trie) Prove(key []byte) ([][]byte, error) {
	root, err := t.Hash() // commits all nodes
	if err != nil {
		return nil, err
	}
	if root == EmptyRoot {
		return nil, nil
	}
	var proof [][]byte
	want := root
	nibbles := keybytesToHex(key)
	for {
		enc, ok, err := t.db.Get(want.Bytes())
		if err != nil {
			return nil, fmt.Errorf("trie: reading proof node %s: %w", want, err)
		}
		if !ok {
			return nil, fmt.Errorf("%w: missing node %s", ErrMissingNode, want)
		}
		proof = append(proof, enc)
		v, err := rlp.Decode(enc)
		if err != nil {
			return nil, err
		}
		n, err := decodeNode(v)
		if err != nil {
			return nil, err
		}
		// Walk within this encoding (embedded sub-nodes included) until
		// we terminate or cross into the next hash-referenced node.
		ref, rest, err := walkEncoded(n, nibbles)
		if err != nil {
			return nil, err
		}
		if ref == nil {
			return proof, nil // found, or proven absent
		}
		want = types.BytesToHash(ref)
		nibbles = rest
	}
}

// walkEncoded descends within one encoded node (following embedded
// children in place) and returns the next hash reference to follow, or
// nil when the walk terminated (value found or key proven absent).
func walkEncoded(n node, nibbles []byte) (ref hashNode, rest []byte, err error) {
	for {
		next, remaining, err := descend(n, nibbles)
		if err != nil {
			return nil, nil, err
		}
		switch nx := next.(type) {
		case nil, valueNode:
			return nil, nil, nil
		case hashNode:
			return nx, remaining, nil
		default:
			n = nx
			nibbles = remaining
		}
	}
}

// descend takes one step from n along nibbles, returning the next node
// (which may be nil for absence, a valueNode for a hit, a hashNode
// reference, or an embedded node) and the remaining nibbles.
func descend(n node, nibbles []byte) (node, []byte, error) {
	switch n := n.(type) {
	case *shortNode:
		if len(nibbles) < len(n.key) || !bytes.Equal(n.key, nibbles[:len(n.key)]) {
			return nil, nil, nil // key diverges: absent
		}
		rest := nibbles[len(n.key):]
		if v, ok := n.val.(valueNode); ok {
			if len(rest) == 0 {
				return v, nil, nil
			}
			return nil, nil, nil
		}
		return n.val, rest, nil
	case *fullNode:
		if len(nibbles) == 0 {
			return nil, nil, fmt.Errorf("%w: key exhausted at branch", ErrBadProof)
		}
		return n.children[nibbles[0]], nibbles[1:], nil
	default:
		return nil, nil, fmt.Errorf("%w: unexpected node %T", ErrBadProof, n)
	}
}

// VerifyProof checks a Merkle proof against a root hash and returns the
// proven value (nil when the proof shows the key is absent).
func VerifyProof(root types.Hash, key []byte, proof [][]byte) ([]byte, error) {
	if len(proof) == 0 {
		if root == EmptyRoot || root.IsZero() {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: empty proof for non-empty root", ErrBadProof)
	}
	nibbles := keybytesToHex(key)
	want := root
	for i, enc := range proof {
		sum := keccak.Sum256(enc)
		if types.BytesToHash(sum[:]) != want {
			return nil, fmt.Errorf("%w: element %d hash mismatch", ErrBadProof, i)
		}
		v, err := rlp.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("%w: element %d: %v", ErrBadProof, i, err)
		}
		n, err := decodeNode(v)
		if err != nil {
			return nil, fmt.Errorf("%w: element %d: %v", ErrBadProof, i, err)
		}
		for {
			next, rest, err := descend(n, nibbles)
			if err != nil {
				return nil, err
			}
			switch nx := next.(type) {
			case nil:
				if i != len(proof)-1 {
					return nil, fmt.Errorf("%w: absence before proof end", ErrBadProof)
				}
				return nil, nil
			case valueNode:
				if i != len(proof)-1 {
					return nil, fmt.Errorf("%w: value before proof end", ErrBadProof)
				}
				return append([]byte(nil), nx...), nil
			case hashNode:
				want = types.BytesToHash(nx)
				nibbles = rest
			default:
				n = nx
				nibbles = rest
				continue
			}
			break
		}
	}
	return nil, fmt.Errorf("%w: proof ended at a hash reference", ErrBadProof)
}
