package keccak

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer vectors for legacy Keccak-256 / Keccak-512 (Ethereum
// padding), cross-checked against go-ethereum and the Keccak reference
// implementation.
var kat256 = []struct {
	in  string
	out string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"},
	{"The quick brown fox jumps over the lazy dog",
		"4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
	{"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"},
}

var kat512 = []struct {
	in  string
	out string
}{
	{"", "0eab42de4c3ceb9235fc91acffe746b29c29a8c366b7c60e4e67c466f36a4304c00fa9caf9d87976ba469bcbe06713b435f091ef2769fb160cdab33d3670680e"},
	{"abc", "18587dc2ea106b9a1563e32b3312421ca164c7f1f07bc922a9c83d77cea3a1e5d0c69910739025372dc14ac9642629379540c17e2a65b19d77aa511a9d00bb96"},
}

func TestSum256KnownAnswers(t *testing.T) {
	for _, tc := range kat256 {
		got := Sum256([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.out {
			t.Errorf("Sum256(%q) = %x, want %s", tc.in, got, tc.out)
		}
	}
}

func TestSum512KnownAnswers(t *testing.T) {
	for _, tc := range kat512 {
		got := Sum512([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.out {
			t.Errorf("Sum512(%q) = %x, want %s", tc.in, got, tc.out)
		}
	}
}

// TestWriteChunking verifies the digest is independent of how input is
// split across Write calls, including splits straddling the rate boundary.
func TestWriteChunking(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := Sum256(data)
	for _, chunk := range []int{1, 3, 8, 135, 136, 137, 500} {
		h := New256()
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[i:end])
		}
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("chunk=%d digest mismatch: %x vs %x", chunk, got, want)
		}
	}
}

// TestSumDoesNotConsumeState verifies Sum can be called repeatedly and
// interleaved with Write.
func TestSumDoesNotConsumeState(t *testing.T) {
	h := New256()
	h.Write([]byte("ab"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated Sum differs: %x vs %x", first, second)
	}
	h.Write([]byte("c"))
	want := Sum256([]byte("abc"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("Sum after interleaved Write = %x, want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	h := New256()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("digest after Reset = %x, want %x", got, want)
	}
}

func TestSizes(t *testing.T) {
	if got := New256().Size(); got != 32 {
		t.Errorf("New256().Size() = %d, want 32", got)
	}
	if got := New512().Size(); got != 64 {
		t.Errorf("New512().Size() = %d, want 64", got)
	}
	if got := New256().BlockSize(); got != 136 {
		t.Errorf("New256().BlockSize() = %d, want 136", got)
	}
	if got := New512().BlockSize(); got != 72 {
		t.Errorf("New512().BlockSize() = %d, want 72", got)
	}
}

// TestQuickDeterministic property: hashing is deterministic and one-shot
// Sum256 matches the streaming writer for arbitrary inputs.
func TestQuickDeterministic(t *testing.T) {
	f := func(data []byte) bool {
		one := Sum256(data)
		h := New256()
		h.Write(data)
		return bytes.Equal(one[:], h.Sum(nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAvalanche property: flipping one bit of a non-empty input
// changes the digest.
func TestQuickAvalanche(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		orig := Sum256(data)
		mut := append([]byte(nil), data...)
		mut[int(pos)%len(mut)] ^= 1
		flipped := Sum256(mut)
		return orig != flipped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSum256_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
