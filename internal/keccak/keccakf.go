// Unrolled Keccak-f[1600] permutation. The straightforward spec loops in
// this package's first implementation spent most of their time on modulo
// index arithmetic, bounds checks and a full 25-lane temporary copy per
// round; profiles of the nine-month figure benchmarks attributed ~40% of
// total CPU to the permutation. This version keeps all 25 lanes in local
// variables across the 24 rounds with every step index-resolved at compile
// time. The schedule below is generated mechanically from the same
// reference formulas (theta, rho, pi, chi, iota) and is bit-identical to
// the loop form.

package keccak

import "math/bits"

// keccakF1600 applies the 24-round Keccak-f[1600] permutation in place.
func keccakF1600(a *[25]uint64) {
	a0 := a[0]
	a1 := a[1]
	a2 := a[2]
	a3 := a[3]
	a4 := a[4]
	a5 := a[5]
	a6 := a[6]
	a7 := a[7]
	a8 := a[8]
	a9 := a[9]
	a10 := a[10]
	a11 := a[11]
	a12 := a[12]
	a13 := a[13]
	a14 := a[14]
	a15 := a[15]
	a16 := a[16]
	a17 := a[17]
	a18 := a[18]
	a19 := a[19]
	a20 := a[20]
	a21 := a[21]
	a22 := a[22]
	a23 := a[23]
	a24 := a[24]

	for round := 0; round < 24; round++ {
		// theta
		c0 := a0 ^ a5 ^ a10 ^ a15 ^ a20
		c1 := a1 ^ a6 ^ a11 ^ a16 ^ a21
		c2 := a2 ^ a7 ^ a12 ^ a17 ^ a22
		c3 := a3 ^ a8 ^ a13 ^ a18 ^ a23
		c4 := a4 ^ a9 ^ a14 ^ a19 ^ a24
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		a0 ^= d0
		a1 ^= d1
		a2 ^= d2
		a3 ^= d3
		a4 ^= d4
		a5 ^= d0
		a6 ^= d1
		a7 ^= d2
		a8 ^= d3
		a9 ^= d4
		a10 ^= d0
		a11 ^= d1
		a12 ^= d2
		a13 ^= d3
		a14 ^= d4
		a15 ^= d0
		a16 ^= d1
		a17 ^= d2
		a18 ^= d3
		a19 ^= d4
		a20 ^= d0
		a21 ^= d1
		a22 ^= d2
		a23 ^= d3
		a24 ^= d4

		// rho and pi
		b0 := a0
		b16 := bits.RotateLeft64(a5, 36)
		b7 := bits.RotateLeft64(a10, 3)
		b23 := bits.RotateLeft64(a15, 41)
		b14 := bits.RotateLeft64(a20, 18)
		b10 := bits.RotateLeft64(a1, 1)
		b1 := bits.RotateLeft64(a6, 44)
		b17 := bits.RotateLeft64(a11, 10)
		b8 := bits.RotateLeft64(a16, 45)
		b24 := bits.RotateLeft64(a21, 2)
		b20 := bits.RotateLeft64(a2, 62)
		b11 := bits.RotateLeft64(a7, 6)
		b2 := bits.RotateLeft64(a12, 43)
		b18 := bits.RotateLeft64(a17, 15)
		b9 := bits.RotateLeft64(a22, 61)
		b5 := bits.RotateLeft64(a3, 28)
		b21 := bits.RotateLeft64(a8, 55)
		b12 := bits.RotateLeft64(a13, 25)
		b3 := bits.RotateLeft64(a18, 21)
		b19 := bits.RotateLeft64(a23, 56)
		b15 := bits.RotateLeft64(a4, 27)
		b6 := bits.RotateLeft64(a9, 20)
		b22 := bits.RotateLeft64(a14, 39)
		b13 := bits.RotateLeft64(a19, 8)
		b4 := bits.RotateLeft64(a24, 14)

		// chi
		a0 = b0 ^ (^b1 & b2)
		a1 = b1 ^ (^b2 & b3)
		a2 = b2 ^ (^b3 & b4)
		a3 = b3 ^ (^b4 & b0)
		a4 = b4 ^ (^b0 & b1)
		a5 = b5 ^ (^b6 & b7)
		a6 = b6 ^ (^b7 & b8)
		a7 = b7 ^ (^b8 & b9)
		a8 = b8 ^ (^b9 & b5)
		a9 = b9 ^ (^b5 & b6)
		a10 = b10 ^ (^b11 & b12)
		a11 = b11 ^ (^b12 & b13)
		a12 = b12 ^ (^b13 & b14)
		a13 = b13 ^ (^b14 & b10)
		a14 = b14 ^ (^b10 & b11)
		a15 = b15 ^ (^b16 & b17)
		a16 = b16 ^ (^b17 & b18)
		a17 = b17 ^ (^b18 & b19)
		a18 = b18 ^ (^b19 & b15)
		a19 = b19 ^ (^b15 & b16)
		a20 = b20 ^ (^b21 & b22)
		a21 = b21 ^ (^b22 & b23)
		a22 = b22 ^ (^b23 & b24)
		a23 = b23 ^ (^b24 & b20)
		a24 = b24 ^ (^b20 & b21)

		// iota
		a0 ^= roundConstants[round]
	}

	a[0] = a0
	a[1] = a1
	a[2] = a2
	a[3] = a3
	a[4] = a4
	a[5] = a5
	a[6] = a6
	a[7] = a7
	a[8] = a8
	a[9] = a9
	a[10] = a10
	a[11] = a11
	a[12] = a12
	a[13] = a13
	a[14] = a14
	a[15] = a15
	a[16] = a16
	a[17] = a17
	a[18] = a18
	a[19] = a19
	a[20] = a20
	a[21] = a21
	a[22] = a22
	a[23] = a23
	a[24] = a24
}
