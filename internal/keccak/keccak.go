// Package keccak implements the Keccak sponge function family as used by
// Ethereum: legacy Keccak-256 and Keccak-512 (pre-FIPS-202 0x01 domain
// padding). Transaction hashes, block hashes, trie keys and contract
// storage slots in forkwatch are all Keccak-256 digests, exactly as in the
// ledgers the paper exported, so cross-chain joins on hash behave
// identically.
//
// The permutation Keccak-f[1600] is implemented from the reference
// specification (Bertoni, Daemen, Peeters, Van Assche). No external
// dependencies are used.
package keccak

import (
	"encoding/binary"
	"hash"
	"sync"
)

// Size256 is the digest length of Keccak-256 in bytes.
const Size256 = 32

// Size512 is the digest length of Keccak-512 in bytes.
const Size512 = 64

const (
	rate256 = 136 // sponge rate for 256-bit digests (1088 bits)
	rate512 = 72  // sponge rate for 512-bit digests (576 bits)

	// domainKeccak is the legacy Keccak padding byte used by Ethereum
	// (FIPS-202 SHA-3 would use 0x06 instead).
	domainKeccak = 0x01
)

// roundConstants for the iota step of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// state is the 5x5 lane matrix of Keccak-f[1600], flattened in the
// x + 5y order used by the specification.
type state struct {
	a      [25]uint64
	buf    [rate256]byte // input buffer, sized for the largest rate
	n      int           // bytes buffered
	rate   int
	size   int
	domain byte
}

// New256 returns a hash.Hash computing the legacy Keccak-256 digest.
func New256() hash.Hash { return &state{rate: rate256, size: Size256, domain: domainKeccak} }

// New512 returns a hash.Hash computing the legacy Keccak-512 digest.
func New512() hash.Hash { return &state{rate: rate512, size: Size512, domain: domainKeccak} }

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [Size256]byte {
	var out [Size256]byte
	d := state{rate: rate256, size: Size256, domain: domainKeccak}
	d.Write(data)
	d.checkSum(out[:])
	return out
}

// pool256 recycles sponge states for Sum256Pooled. A sponge is ~350 bytes
// of pure state; hot paths (trie commits hash every node, header/tx
// hashing) reuse one per P instead of zeroing a fresh state per call.
var pool256 = sync.Pool{
	New: func() any {
		return &state{rate: rate256, size: Size256, domain: domainKeccak}
	},
}

// Sum256Pooled returns the Keccak-256 digest of data using a pooled
// sponge. Identical output to Sum256; preferred in hot paths.
func Sum256Pooled(data []byte) [Size256]byte {
	d := pool256.Get().(*state)
	d.Reset()
	d.Write(data)
	var out [Size256]byte
	d.checkSum(out[:])
	pool256.Put(d)
	return out
}

// Sum512 returns the Keccak-512 digest of data.
func Sum512(data []byte) [Size512]byte {
	var out [Size512]byte
	d := state{rate: rate512, size: Size512, domain: domainKeccak}
	d.Write(data)
	d.checkSum(out[:])
	return out
}

// Reset clears the sponge state for reuse.
func (d *state) Reset() {
	d.a = [25]uint64{}
	d.n = 0
}

// Size returns the digest length in bytes.
func (d *state) Size() int { return d.size }

// BlockSize returns the sponge rate in bytes.
func (d *state) BlockSize() int { return d.rate }

// Write absorbs more data into the sponge. It never returns an error.
func (d *state) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		n := copy(d.buf[d.n:d.rate], p)
		d.n += n
		p = p[n:]
		if d.n == d.rate {
			d.absorb(d.buf[:d.rate])
			d.n = 0
		}
	}
	return written, nil
}

// Sum appends the digest to b without disturbing the running state.
func (d *state) Sum(b []byte) []byte {
	dup := *d
	out := make([]byte, d.size)
	dup.checkSum(out)
	return append(b, out...)
}

// checkSum pads, finalizes and squeezes the digest into out, consuming the
// receiver's state.
func (d *state) checkSum(out []byte) {
	// Multi-rate padding: domain byte, zeroes, final 0x80 (possibly the
	// same byte when only one padding position remains).
	d.buf[d.n] = d.domain
	for i := d.n + 1; i < d.rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.rate-1] |= 0x80
	d.absorb(d.buf[:d.rate])

	// Squeeze. Both supported digest sizes fit inside a single rate
	// block, so one extraction suffices.
	for i := 0; i+8 <= d.size; i += 8 {
		binary.LittleEndian.PutUint64(out[i:], d.a[i/8])
	}
}

// absorb XORs a full rate block into the state and applies Keccak-f[1600].
func (d *state) absorb(block []byte) {
	for i := 0; i < len(block)/8; i++ {
		d.a[i] ^= binary.LittleEndian.Uint64(block[i*8:])
	}
	keccakF1600(&d.a)
}

// The permutation itself lives in keccakf.go (unrolled).
