package prng

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, "pow", "ETH")
	b := Derive(42, "pow", "ETH")
	if a != b {
		t.Fatalf("same inputs diverged: %d vs %d", a, b)
	}
}

func TestDeriveSeparatesStreams(t *testing.T) {
	seen := map[int64][]string{}
	cases := [][]string{
		{"pow", "ETH"}, {"pow", "ETC"},
		{"traffic", "ETH"}, {"traffic", "ETC"},
		{"pool", "ETH"}, {"pool", "ETC"},
		{"echo"}, {"market"}, {"workload"},
		// Concatenation ambiguities must not collide.
		{"po", "wETH"}, {"powE", "TH"}, {"powETH"},
	}
	for _, labels := range cases {
		d := Derive(1, labels...)
		if prev, ok := seen[d]; ok {
			t.Fatalf("label paths %v and %v collide on %d", prev, labels, d)
		}
		seen[d] = labels
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	// Adjacent seeds — the common user choice — must land in unrelated
	// streams for every label path.
	for seed := int64(0); seed < 100; seed++ {
		if Derive(seed, "pow", "ETH") == Derive(seed+1, "pow", "ETH") {
			t.Fatalf("seeds %d and %d collide", seed, seed+1)
		}
	}
}

func TestNewStreamsIndependent(t *testing.T) {
	// The two partitions' streams should not be shifted copies of each
	// other: compare a window of draws at several offsets.
	eth := New(7, "pow", "ETH")
	etc := New(7, "pow", "ETC")
	ethDraws := make([]uint64, 64)
	etcDraws := make([]uint64, 64)
	for i := range ethDraws {
		ethDraws[i] = eth.Uint64()
		etcDraws[i] = etc.Uint64()
	}
	for lag := 0; lag < 8; lag++ {
		matches := 0
		for i := 0; i+lag < len(ethDraws); i++ {
			if ethDraws[i+lag] == etcDraws[i] {
				matches++
			}
		}
		if matches > 0 {
			t.Fatalf("streams share %d draws at lag %d", matches, lag)
		}
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := SplitMix64(0x123456789abcdef)
	for bit := 0; bit < 64; bit += 7 {
		flipped := SplitMix64(0x123456789abcdef ^ (1 << bit))
		diff := 0
		for x := base ^ flipped; x != 0; x &= x - 1 {
			diff++
		}
		if diff < 16 || diff > 48 {
			t.Errorf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}
