// Package prng derives independent deterministic random streams from a
// single scenario seed.
//
// The simulation engine steps its two partitions on separate goroutines
// between day barriers, so the partitions must never contend for one
// shared rand.Rand: the interleaving of draws would depend on the
// scheduler and the run would stop being reproducible. Instead every
// stochastic component gets its own stream, keyed by the scenario seed
// plus a label path ("pow/ETH", "traffic/ETC", ...). Derive folds the
// labels into the seed through SplitMix64, whose output function is a
// bijective avalanche mixer: nearby seeds and nearby labels land in
// statistically unrelated streams, and equal (seed, labels) inputs always
// produce the same stream — which is what keeps figure CSVs byte-identical
// between the serial and parallel engines.
package prng

import "math/rand"

// splitmix64 constants (Steele, Lea, Flood: "Fast splittable
// pseudorandom number generators", OOPSLA 2014).
const (
	golden  = 0x9e3779b97f4a7c15
	mixerA  = 0xbf58476d1ce4e5b9
	mixerB  = 0x94d049bb133111eb
	strSeed = 0x51_7f_c3_a7 // arbitrary non-zero basis for label folding
)

// SplitMix64 advances x by the golden-gamma increment and returns the
// mixed output: one step of the splitmix64 generator.
func SplitMix64(x uint64) uint64 {
	x += golden
	z := x
	z = (z ^ (z >> 30)) * mixerA
	z = (z ^ (z >> 27)) * mixerB
	return z ^ (z >> 31)
}

// foldString mixes a label into the state one byte at a time, each byte
// followed by a full SplitMix64 avalanche so "ab"/"ba" and "a","b"/"ab"
// diverge.
func foldString(x uint64, s string) uint64 {
	x = SplitMix64(x ^ strSeed)
	for i := 0; i < len(s); i++ {
		x = SplitMix64(x ^ uint64(s[i]))
	}
	return SplitMix64(x ^ uint64(len(s)))
}

// Derive returns a stream seed for the given root seed and label path.
// Equal inputs give equal outputs; any change to the seed or any label
// yields an unrelated stream. The result is safe to hand to
// rand.NewSource.
func Derive(seed int64, labels ...string) int64 {
	x := SplitMix64(uint64(seed))
	for _, l := range labels {
		x = foldString(x, l)
	}
	// rand.NewSource ignores the sign bit's meaning but keep the value
	// positive-friendly by using the mixed word as-is: every bit is
	// already uniformly distributed.
	return int64(x)
}

// New returns a math/rand generator over the derived stream. The
// generator is NOT safe for concurrent use — that is the point: each
// goroutine owns its stream exclusively.
func New(seed int64, labels ...string) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, labels...)))
}
