package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"forkwatch/internal/export"
	"forkwatch/internal/live/feed"
	"forkwatch/internal/sim"
)

// threePartScenario is a small fast-mode three-partition run with
// enough cross-partition traffic to produce echoes.
func threePartScenario(seed int64, days, parallelism int) *sim.Scenario {
	sc := sim.NewScenario(seed, days)
	sc.DayLength = 3600
	sc.Users = 30
	sc.Parallelism = parallelism
	sc.Partitions = []sim.PartitionSpec{
		{Name: "ONE", ChainID: 1, DAOSupport: true, Price0: 10, RallyShare: 1,
			PrimaryFraction: 0.5, TxPerDay: 30, EIP155Day: -1, Pools: 20, PoolAlpha: 1, PoolCap: 0.24},
		{Name: "TWO", ChainID: 2, ShareAtFork: 0.2, Price0: 5, RallyShare: 1,
			PrimaryFraction: 0.3, TxPerDay: 12, EIP155Day: -1, Pools: 15, PoolAlpha: 1.2, PoolCap: 0.24},
		{Name: "TRI", ChainID: 3, ShareAtFork: 0.1, Price0: 2, RallyShare: 1,
			PrimaryFraction: 0.1, TxPerDay: 8, EIP155Day: -1, Pools: 10, PoolAlpha: 1.3, PoolCap: 0.3},
	}
	return sc
}

// batchCSVs runs the batch exporter over a Recorder's capture.
func batchCSVs(t *testing.T, rec *export.Recorder) (blocks, txs, days []byte) {
	t.Helper()
	var b, x, d bytes.Buffer
	if err := export.WriteBlocks(&b, rec.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteTxs(&x, rec.Txs); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteDays(&d, rec.Days); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), x.Bytes(), d.Bytes()
}

func diffLine(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d lines", len(la), len(lb))
}

// TestInProcessConvergence attaches both the batch Recorder and the
// live analyzer to the same engine and asserts the streamed CSV tables
// are byte-identical to the batch export — at parallelism 1 and N.
func TestInProcessConvergence(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			sc := threePartScenario(11, 3, par)
			eng, err := sim.New(sc)
			if err != nil {
				t.Fatal(err)
			}
			rec := &export.Recorder{}
			an := NewAnalyzer(sc.Epoch, Options{})
			eng.AddObserver(rec)
			eng.AddObserver(an)
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if len(rec.Blocks) == 0 || len(rec.Txs) == 0 || len(rec.Days) == 0 {
				t.Fatal("recorder captured nothing")
			}
			wb, wx, wd := batchCSVs(t, rec)
			if got := an.BlocksCSV(); !bytes.Equal(got, wb) {
				t.Errorf("blocks diverge: %s", diffLine(got, wb))
			}
			if got := an.TxsCSV(); !bytes.Equal(got, wx) {
				t.Errorf("txs diverge: %s", diffLine(got, wx))
			}
			if got := an.DaysCSV(); !bytes.Equal(got, wd) {
				t.Errorf("days diverge: %s", diffLine(got, wd))
			}
			snap := an.Snapshot()
			if len(snap.Chains) != 3 {
				t.Fatalf("snapshot chains = %d", len(snap.Chains))
			}
			var echoes uint64
			for _, c := range snap.Chains {
				if c.Blocks == 0 {
					t.Errorf("chain %s saw no blocks", c.Chain)
				}
				echoes += c.Echoes
			}
			if echoes == 0 {
				t.Error("no cross-partition echoes observed (scenario should produce some)")
			}
			if len(snap.Correlations) != 3 {
				t.Errorf("pair correlations = %d, want 3", len(snap.Correlations))
			}
		})
	}
}

// TestWireRoundTripConvergence pushes every event through a JSON
// marshal/unmarshal cycle — the wire — into a second analyzer, and
// asserts it converges byte-identically with the in-process one.
func TestWireRoundTripConvergence(t *testing.T) {
	sc := threePartScenario(12, 2, 2)
	eng, err := sim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	rec := &export.Recorder{}
	plane := NewPlane(sc.Epoch, Options{}, nil)
	eng.AddObserver(rec)
	eng.AddObserver(plane)

	sub := plane.Feed.SubscribePush(feed.StreamEvents, "", 1<<20)
	remote := NewAnalyzer(sc.Epoch, Options{})
	done := make(chan error, 1)
	go func() {
		for ev := range sub.C {
			raw, err := json.Marshal(ev)
			if err != nil {
				done <- err
				return
			}
			var wire feed.Event
			if err := json.Unmarshal(raw, &wire); err != nil {
				done <- err
				return
			}
			if err := remote.Apply(wire); err != nil {
				done <- err
				return
			}
			if wire.Kind == feed.KindEOF {
				done <- nil
				return
			}
		}
		done <- fmt.Errorf("feed closed before EOF")
	}()

	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	plane.Complete()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("events dropped on an unbounded-enough buffer: %d", sub.Dropped())
	}

	wb, wx, wd := batchCSVs(t, rec)
	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{
		{"blocks", remote.BlocksCSV(), wb},
		{"txs", remote.TxsCSV(), wx},
		{"days", remote.DaysCSV(), wd},
	} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s diverge over the wire: %s", cmp.name, diffLine(cmp.got, cmp.want))
		}
	}
	// The remote snapshot must agree with the local one on the derived
	// observables too (it re-derives echoes rather than trusting them).
	local, dist := plane.Analyzer.Snapshot(), remote.Snapshot()
	for i := range local.Chains {
		if local.Chains[i].Echoes != dist.Chains[i].Echoes ||
			local.Chains[i].SameDayEchoes != dist.Chains[i].SameDayEchoes {
			t.Errorf("chain %s echo counts diverge: local %+v remote %+v",
				local.Chains[i].Chain, local.Chains[i], dist.Chains[i])
		}
	}
	if !dist.Complete {
		t.Error("remote analyzer missed EOF")
	}
}

// TestEchoSetEviction bounds the first-seen set: evictions advance and
// the set never exceeds its cap.
func TestEchoSetEviction(t *testing.T) {
	an := NewAnalyzer(0, Options{EchoSetCap: 4})
	for n := uint64(0); n < 10; n++ {
		an.ApplyHead(&feed.HeadEvent{
			Chain: "ONE", Number: n, Time: 1000 + n, Difficulty: "1",
			Txs: []feed.TxInfo{{Hash: fmt.Sprintf("0x%02x", n), From: "0xaa"}},
		})
	}
	snap := an.Snapshot()
	if snap.EchoSetSize > 4 {
		t.Errorf("echo set size = %d, cap 4", snap.EchoSetSize)
	}
	if snap.EchoSetEvictions != 6 {
		t.Errorf("evictions = %d, want 6", snap.EchoSetEvictions)
	}
}
