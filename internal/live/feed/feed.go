// Package feed is the wire layer of the live measurement plane: a
// wire-codable Event model carrying exactly what the engine's
// day-barrier observer delivery carries (heads with their mined
// transactions, per-day economics), in the same total order, plus the
// Feed broker — a bounded replay ring with cursor-resumable reads
// (long-poll) and push subscriptions with a drop-oldest policy for slow
// subscribers, metered through internal/metrics.
//
// It is deliberately a leaf package (no internal/export dependency) so
// the RPC serving layer can import it; the analyzer that turns events
// into observables and byte-exact CSVs lives one level up in
// internal/live.
package feed

import (
	"fmt"
	"math/big"

	"forkwatch/internal/sim"
)

// Event kinds.
const (
	KindHead = "head" // one mined block, with its transactions
	KindDay  = "day"  // end-of-day economics, one entry per partition
	KindEcho = "echo" // analyzer-derived cross-partition echo candidate
	KindEOF  = "eof"  // the run completed; no further events follow
)

// Stream names for subscriptions.
const (
	StreamEvents   = "events"        // the full firehose (heads + days + echoes)
	StreamNewHeads = "newHeads"      // head events, filtered to the route's chain
	StreamNewDays  = "newDays"       // day events
	StreamEchoes   = "pendingEchoes" // analyzer-derived echo candidates
)

// ValidStream reports whether name is a subscribable stream.
func ValidStream(name string) bool {
	switch name {
	case StreamEvents, StreamNewHeads, StreamNewDays, StreamEchoes:
		return true
	}
	return false
}

// Event is one entry in the measurement feed. Exactly one of Head, Day
// and Echo is set, per Kind; Seq is the feed's global sequence number,
// assigned at publish.
type Event struct {
	Seq  uint64     `json:"seq"`
	Kind string     `json:"kind"`
	Head *HeadEvent `json:"head,omitempty"`
	Day  *DayEvent  `json:"day,omitempty"`
	Echo *EchoEvent `json:"echo,omitempty"`
}

// TxInfo is the wire form of one mined transaction. Hash and From are
// 0x-hex so the event JSON-round-trips exactly.
type TxInfo struct {
	Hash       string `json:"hash"`
	From       string `json:"from"`
	Contract   bool   `json:"contract,omitempty"`
	ChainBound bool   `json:"chainBound,omitempty"`
}

// HeadEvent is the wire form of sim.BlockEvent. Difficulty is a decimal
// string (big.Int round-trips exactly through it).
type HeadEvent struct {
	Chain      string   `json:"chain"`
	Day        int      `json:"day"`
	Number     uint64   `json:"number"`
	Time       uint64   `json:"timestamp"`
	Delta      uint64   `json:"delta"`
	Difficulty string   `json:"difficulty"`
	Coinbase   string   `json:"coinbase"`
	Txs        []TxInfo `json:"txs,omitempty"`
}

// PartitionDay is one partition's slice of a DayEvent. USD and Hashrate
// round-trip exactly: encoding/json emits the shortest representation
// that parses back to the same float64.
type PartitionDay struct {
	Chain      string  `json:"chain"`
	USD        float64 `json:"usd"`
	Hashrate   float64 `json:"hashrate"`
	Difficulty string  `json:"difficulty"`
}

// DayEvent is the wire form of sim.DayEvent: per-partition economics in
// partition order.
type DayEvent struct {
	Day        int            `json:"day"`
	Partitions []PartitionDay `json:"partitions"`
}

// EchoEvent is an analyzer-derived cross-partition echo candidate: a
// transaction hash seen mined on a second chain after first appearing
// on another (the paper's O5 join, streamed).
type EchoEvent struct {
	Hash       string `json:"hash"`
	From       string `json:"from"`
	FirstChain string `json:"firstChain"`
	FirstDay   int    `json:"firstDay"`
	Chain      string `json:"chain"`
	Day        int    `json:"day"`
	SameDay    bool   `json:"sameDay"`
}

// HeadFromSim converts an engine block event to its wire form.
func HeadFromSim(ev *sim.BlockEvent) *HeadEvent {
	h := &HeadEvent{
		Chain:      ev.Chain,
		Day:        ev.Day,
		Number:     ev.Number,
		Time:       ev.Time,
		Delta:      ev.Delta,
		Difficulty: ev.Difficulty.String(),
		Coinbase:   ev.Coinbase.Hex(),
	}
	if len(ev.Txs) > 0 {
		h.Txs = make([]TxInfo, len(ev.Txs))
		for i, tx := range ev.Txs {
			h.Txs[i] = TxInfo{
				Hash:       tx.Hash.Hex(),
				From:       tx.From.Hex(),
				Contract:   tx.Contract,
				ChainBound: tx.ChainBound,
			}
		}
	}
	return h
}

// DayFromSim converts an engine day event to its wire form.
func DayFromSim(ev *sim.DayEvent) *DayEvent {
	d := &DayEvent{Day: ev.Day, Partitions: make([]PartitionDay, len(ev.Partitions))}
	for i, pd := range ev.Partitions {
		d.Partitions[i] = PartitionDay{
			Chain:      pd.Name,
			USD:        pd.USD,
			Hashrate:   pd.Hashrate,
			Difficulty: pd.Difficulty.String(),
		}
	}
	return d
}

// ParseDifficulty recovers the big.Int behind a wire difficulty string
// (zero when unparsable).
func ParseDifficulty(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return new(big.Int)
	}
	return v
}

// Match reports whether an event belongs to a stream. chainFilter
// restricts newHeads to one chain ("" passes all); EOF reaches every
// stream so any follower learns the run ended.
func Match(stream, chainFilter string, ev Event) bool {
	if ev.Kind == KindEOF {
		return true
	}
	switch stream {
	case StreamEvents:
		return true
	case StreamNewHeads:
		return ev.Kind == KindHead && (chainFilter == "" || ev.Head.Chain == chainFilter)
	case StreamNewDays:
		return ev.Kind == KindDay
	case StreamEchoes:
		return ev.Kind == KindEcho
	}
	return false
}

// Validate checks an event's shape (wire consumers call it before Apply).
func (ev Event) Validate() error {
	switch ev.Kind {
	case KindHead:
		if ev.Head == nil {
			return fmt.Errorf("live: head event %d has no head payload", ev.Seq)
		}
	case KindDay:
		if ev.Day == nil {
			return fmt.Errorf("live: day event %d has no day payload", ev.Seq)
		}
	case KindEcho:
		if ev.Echo == nil {
			return fmt.Errorf("live: echo event %d has no echo payload", ev.Seq)
		}
	case KindEOF:
	default:
		return fmt.Errorf("live: unknown event kind %q (seq %d)", ev.Kind, ev.Seq)
	}
	return nil
}
