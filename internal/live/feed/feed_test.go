package feed

import (
	"testing"

	"forkwatch/internal/metrics"
)

// TestFeedCursorResumeAndGap exercises the replay ring: resuming from a
// cursor, and gap detection once the cursor falls off the ring.
func TestFeedCursorResumeAndGap(t *testing.T) {
	f := NewFeed(nil, 8)
	head := func(n uint64) Event {
		return Event{Kind: KindHead, Head: &HeadEvent{Chain: "ONE", Number: n, Difficulty: "1"}}
	}
	for n := uint64(0); n < 4; n++ {
		f.Publish(head(n))
	}
	evs, next, gap := f.ReadSince(StreamEvents, "", 0, 0)
	if gap || len(evs) != 4 || next != 4 {
		t.Fatalf("read = %d events, next %d, gap %v", len(evs), next, gap)
	}
	// Resume from the returned cursor: nothing new.
	evs, next2, gap := f.ReadSince(StreamEvents, "", next, 0)
	if len(evs) != 0 || next2 != next || gap {
		t.Fatalf("resume read = %d events, next %d", len(evs), next2)
	}
	// Overflow the ring: cursor 0 is now behind the ring start.
	for n := uint64(4); n < 20; n++ {
		f.Publish(head(n))
	}
	evs, _, gap = f.ReadSince(StreamEvents, "", 0, 0)
	if !gap {
		t.Fatal("expected gap after ring overflow")
	}
	if len(evs) != 8 {
		t.Fatalf("post-gap read = %d events, want the ring's 8", len(evs))
	}

	// Poll subscriptions resume server-side.
	id, cur := f.SubscribePoll(StreamNewHeads, "ONE", nil)
	if cur != 20 {
		t.Fatalf("fresh subscription cursor = %d", cur)
	}
	f.Publish(head(20))
	evs, cur, gap, lag, ok := f.Poll(id, 10)
	if !ok || gap || len(evs) != 1 || cur != 21 || lag != 0 {
		t.Fatalf("poll = %d events, cursor %d, gap %v, lag %d, ok %v", len(evs), cur, gap, lag, ok)
	}
	if !f.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
	if _, _, _, _, ok := f.Poll(id, 10); ok {
		t.Fatal("poll after unsubscribe should fail")
	}
}

// TestSlowSubscriberDropOldest pins the drop-oldest policy: a full push
// buffer loses its OLDEST events, the drop counter advances, and the
// publisher never blocks.
func TestSlowSubscriberDropOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFeed(reg, 64)
	sub := f.SubscribePush(StreamNewHeads, "", 4)
	for n := uint64(0); n < 10; n++ {
		f.Publish(Event{Kind: KindHead, Head: &HeadEvent{Chain: "ONE", Number: n, Difficulty: "1"}})
	}
	if got := sub.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// The 4 buffered events are the NEWEST ones, in order.
	for want := uint64(6); want < 10; want++ {
		ev := <-sub.C
		if ev.Head.Number != want {
			t.Fatalf("buffered head = %d, want %d", ev.Head.Number, want)
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap["live.events_dropped"].(uint64); v != 6 {
		t.Errorf("live.events_dropped = %v", snap["live.events_dropped"])
	}
	if v, _ := snap["live.subscribers"].(int64); v != 1 {
		t.Errorf("live.subscribers = %v", snap["live.subscribers"])
	}
	sub.Close()
	if v, _ := reg.Snapshot()["live.subscribers"].(int64); v != 0 {
		t.Errorf("live.subscribers after close = %v", v)
	}
}

// TestFeedLagGauge checks the per-stream lag gauge tracks the worst
// consumer backlog.
func TestFeedLagGauge(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFeed(reg, 64)
	id, _ := f.SubscribePoll(StreamEvents, "", nil)
	for n := uint64(0); n < 5; n++ {
		f.Publish(Event{Kind: KindHead, Head: &HeadEvent{Chain: "ONE", Number: n, Difficulty: "1"}})
	}
	snap := reg.Snapshot()
	if v, _ := snap["live.events.lag"].(float64); v != 5 {
		t.Errorf("live.events.lag = %v, want 5", snap["live.events.lag"])
	}
	if _, _, _, _, ok := f.Poll(id, 100); !ok {
		t.Fatal("poll failed")
	}
	if v, _ := reg.Snapshot()["live.events.lag"].(float64); v != 0 {
		t.Errorf("lag after drain = %v", v)
	}
}

// TestMatchAndValidate pins the stream-matching and validation tables.
func TestMatchAndValidate(t *testing.T) {
	h := Event{Kind: KindHead, Head: &HeadEvent{Chain: "ONE"}}
	d := Event{Kind: KindDay, Day: &DayEvent{}}
	e := Event{Kind: KindEcho, Echo: &EchoEvent{}}
	eof := Event{Kind: KindEOF}
	cases := []struct {
		stream, chain string
		ev            Event
		want          bool
	}{
		{StreamEvents, "", h, true},
		{StreamEvents, "", d, true},
		{StreamNewHeads, "", h, true},
		{StreamNewHeads, "ONE", h, true},
		{StreamNewHeads, "TWO", h, false},
		{StreamNewHeads, "", d, false},
		{StreamNewDays, "", d, true},
		{StreamNewDays, "", h, false},
		{StreamEchoes, "", e, true},
		{StreamEchoes, "", h, false},
		{StreamEchoes, "", eof, true},
		{StreamNewHeads, "TWO", eof, true},
	}
	for i, c := range cases {
		if got := Match(c.stream, c.chain, c.ev); got != c.want {
			t.Errorf("case %d: Match(%s,%s,%s) = %v", i, c.stream, c.chain, c.ev.Kind, got)
		}
	}
	if err := (Event{Kind: KindHead}).Validate(); err == nil {
		t.Error("head without payload should not validate")
	}
	if err := (Event{Kind: "nope"}).Validate(); err == nil {
		t.Error("unknown kind should not validate")
	}
	if !ValidStream(StreamEchoes) || ValidStream("bogus") {
		t.Error("ValidStream table wrong")
	}
}
