package feed

import (
	"sync"
	"time"

	"forkwatch/internal/metrics"
)

// Sub is a push subscription: matching events arrive on C in sequence
// order. When the subscriber falls behind and C fills, the feed drops
// the OLDEST buffered event to make room (and counts it in
// live.events_dropped) — a slow reader sees a gap in Seq, never a stall
// of the publisher.
type Sub struct {
	ID     uint64
	Stream string
	Chain  string
	C      chan Event

	feed    *Feed
	dropped uint64
}

// Close detaches the subscription. C is closed; pending events are lost.
func (s *Sub) Close() {
	if s.feed != nil {
		s.feed.closePush(s.ID)
	}
}

// Dropped returns how many events this subscription lost to the
// drop-oldest policy.
func (s *Sub) Dropped() uint64 {
	if s.feed == nil {
		return 0
	}
	s.feed.mu.Lock()
	defer s.feed.mu.Unlock()
	return s.dropped
}

// pollSub is a stateful cursor held server-side for fork_subscribe
// clients.
type pollSub struct {
	stream   string
	chain    string
	cursor   uint64
	lastSeen time.Time
}

// pollIdleTimeout is how long a poll subscription may go unqueried
// before the feed sweeps it (a crashed long-poll client must not pin a
// cursor forever).
const pollIdleTimeout = 5 * time.Minute

// Feed is the broker between the event source (engine observer or
// replica relay) and its consumers. It keeps a bounded contiguous
// replay ring of recent events, so reads are cursor-resumable: a
// consumer that missed deliveries — long-poll over a lossy transport,
// a slow push subscriber — re-reads from its cursor. Only when the
// cursor has fallen off the ring does the consumer see a gap.
type Feed struct {
	mu     sync.Mutex
	reg    *metrics.Registry
	ring   []Event // events [start, next), contiguous
	cap    int
	start  uint64
	next   uint64
	wake   chan struct{} // closed and replaced on every publish
	closed bool

	pushSubs map[uint64]*Sub
	polls    map[uint64]*pollSub
	nextID   uint64

	subscribers *metrics.Gauge
	published   *metrics.Counter
	dropped     *metrics.Counter
	lagStreams  map[string]bool
}

// NewFeed returns a feed with a replay ring of ringSize events, metered
// through reg (nil means a private registry).
func NewFeed(reg *metrics.Registry, ringSize int) *Feed {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if ringSize <= 0 {
		ringSize = 1 << 16
	}
	f := &Feed{
		reg:        reg,
		cap:        ringSize,
		wake:       make(chan struct{}),
		pushSubs:   map[uint64]*Sub{},
		polls:      map[uint64]*pollSub{},
		lagStreams: map[string]bool{},
	}
	f.subscribers = reg.Gauge("live.subscribers")
	f.published = reg.Counter("live.events")
	f.dropped = reg.Counter("live.events_dropped")
	return f
}

// Registry returns the metrics registry the feed reports into.
func (f *Feed) Registry() *metrics.Registry { return f.reg }

// Seq returns the next sequence number to be assigned — the cursor a
// new consumer starts from to see only future events.
func (f *Feed) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Publish appends one event to the feed, assigns its sequence number,
// and delivers it to matching push subscribers.
func (f *Feed) Publish(ev Event) uint64 {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return f.next
	}
	ev.Seq = f.next
	f.next++
	f.ring = append(f.ring, ev)
	if len(f.ring) > f.cap {
		trim := len(f.ring) - f.cap
		f.ring = append(f.ring[:0:0], f.ring[trim:]...)
		f.start += uint64(trim)
	}
	f.published.Inc()

	for _, s := range f.pushSubs {
		if !Match(s.Stream, s.Chain, ev) {
			continue
		}
		for {
			select {
			case s.C <- ev:
			default:
				// Buffer full: drop the oldest buffered event and retry,
				// so the subscriber keeps up with the present at the cost
				// of a gap it can detect (and replay via ReadSince).
				select {
				case <-s.C:
					s.dropped++
					f.dropped.Inc()
				default:
				}
				continue
			}
			break
		}
	}

	// Sweep poll cursors nobody has queried in a long time.
	now := time.Now()
	for id, p := range f.polls {
		if now.Sub(p.lastSeen) > pollIdleTimeout {
			delete(f.polls, id)
			f.subscribers.Add(-1)
		}
	}

	wake := f.wake
	f.wake = make(chan struct{})
	f.mu.Unlock()
	close(wake)
	return ev.Seq
}

// WaitChan returns a channel that is closed once an event at or past
// cursor exists (immediately if one already does, or the feed closed).
func (f *Feed) WaitChan(cursor uint64) <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next > cursor || f.closed {
		done := make(chan struct{})
		close(done)
		return done
	}
	return f.wake
}

// ReadSince returns up to max events matching (stream, chain) with
// Seq >= cursor, the cursor to resume from, and whether the read
// skipped a gap (cursor older than the ring). It never blocks.
func (f *Feed) ReadSince(stream, chain string, cursor uint64, max int) (events []Event, next uint64, gap bool) {
	if max <= 0 {
		max = 256
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if cursor < f.start {
		gap = true
		cursor = f.start
	}
	next = cursor
	for next < f.next && len(events) < max {
		ev := f.ring[next-f.start]
		next++
		if Match(stream, chain, ev) {
			events = append(events, ev)
		}
	}
	return events, next, gap
}

// SubscribePoll registers a server-side cursor for a long-poll client
// and returns its id. from picks the starting cursor (nil means "now").
func (f *Feed) SubscribePoll(stream, chain string, from *uint64) (id, cursor uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	id = f.nextID
	cursor = f.next
	if from != nil {
		cursor = *from
	}
	f.polls[id] = &pollSub{stream: stream, chain: chain, cursor: cursor, lastSeen: time.Now()}
	f.subscribers.Add(1)
	f.ensureLagGauge(stream)
	return id, cursor
}

// Poll advances a poll subscription: up to max matching events from its
// cursor, the new cursor, whether a gap was skipped, and the lag still
// buffered behind it. ok is false when the id is unknown (expired or
// never subscribed).
func (f *Feed) Poll(id uint64, max int) (events []Event, cursor uint64, gap bool, lag uint64, ok bool) {
	f.mu.Lock()
	p, ok := f.polls[id]
	if !ok {
		f.mu.Unlock()
		return nil, 0, false, 0, false
	}
	stream, chain, cur := p.stream, p.chain, p.cursor
	p.lastSeen = time.Now()
	f.mu.Unlock()

	events, cursor, gap = f.ReadSince(stream, chain, cur, max)

	f.mu.Lock()
	if p2, still := f.polls[id]; still {
		p2.cursor = cursor
		p2.lastSeen = time.Now()
	}
	if f.next > cursor {
		lag = f.next - cursor
	}
	f.mu.Unlock()
	return events, cursor, gap, lag, true
}

// Unsubscribe drops a poll subscription. It reports whether the id was
// live.
func (f *Feed) Unsubscribe(id uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.polls[id]; !ok {
		return false
	}
	delete(f.polls, id)
	f.subscribers.Add(-1)
	return true
}

// SubscribePush attaches a push subscription with the given buffer
// size, delivering from "now".
func (f *Feed) SubscribePush(stream, chain string, buffer int) *Sub {
	if buffer <= 0 {
		buffer = 64
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	s := &Sub{ID: f.nextID, Stream: stream, Chain: chain, C: make(chan Event, buffer), feed: f}
	f.pushSubs[s.ID] = s
	f.subscribers.Add(1)
	f.ensureLagGauge(stream)
	return s
}

func (f *Feed) closePush(id uint64) {
	f.mu.Lock()
	s, ok := f.pushSubs[id]
	if ok {
		delete(f.pushSubs, id)
		f.subscribers.Add(-1)
	}
	f.mu.Unlock()
	if ok {
		close(s.C)
	}
}

// ensureLagGauge registers live.<stream>.lag on first subscription to a
// stream: the worst backlog (events published but not yet consumed)
// across that stream's subscribers. Caller holds f.mu.
func (f *Feed) ensureLagGauge(stream string) {
	if f.lagStreams[stream] {
		return
	}
	f.lagStreams[stream] = true
	f.reg.GaugeFunc("live."+stream+".lag", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		var worst uint64
		for _, p := range f.polls {
			if p.stream == stream && f.next > p.cursor && f.next-p.cursor > worst {
				worst = f.next - p.cursor
			}
		}
		for _, s := range f.pushSubs {
			if s.Stream == stream && uint64(len(s.C)) > worst {
				worst = uint64(len(s.C))
			}
		}
		return float64(worst)
	})
}

// Close ends the feed: future publishes are no-ops, waiters wake, and
// push channels close.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	wake := f.wake
	f.wake = make(chan struct{})
	subs := make([]*Sub, 0, len(f.pushSubs))
	for _, s := range f.pushSubs {
		subs = append(subs, s)
	}
	f.pushSubs = map[uint64]*Sub{}
	f.subscribers.Add(-int64(len(subs) + len(f.polls)))
	f.polls = map[uint64]*pollSub{}
	f.mu.Unlock()
	close(wake)
	for _, s := range subs {
		close(s.C)
	}
}
