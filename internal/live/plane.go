package live

import (
	"forkwatch/internal/live/feed"
	"forkwatch/internal/metrics"
	"forkwatch/internal/sim"
)

// Plane bundles a Feed and an Analyzer into the live measurement plane
// attached to a serving stack: one sim.Observer that both publishes the
// wire feed and keeps the rolling observables, sharing a single code
// path with over-the-wire consumers.
type Plane struct {
	Feed     *feed.Feed
	Analyzer *Analyzer
}

// NewPlane builds a plane metered through reg.
func NewPlane(epoch uint64, opts Options, reg *metrics.Registry) *Plane {
	opts = opts.withDefaults()
	p := &Plane{
		Feed:     feed.NewFeed(reg, opts.RingSize),
		Analyzer: NewAnalyzer(epoch, opts),
	}
	// Derived echo candidates go back out on the feed so pendingEchoes
	// subscribers see the join as it happens. The sink runs under the
	// analyzer lock; Feed.Publish takes only the feed lock (acyclic).
	p.Analyzer.SetEchoSink(func(e feed.EchoEvent) {
		ev := e
		p.Feed.Publish(feed.Event{Kind: feed.KindEcho, Echo: &ev})
	})
	return p
}

// OnBlock implements sim.Observer: publish the head, then fold it into
// the analyzer (which may publish derived echoes).
func (p *Plane) OnBlock(ev *sim.BlockEvent) {
	h := feed.HeadFromSim(ev)
	p.Feed.Publish(feed.Event{Kind: feed.KindHead, Head: h})
	p.Analyzer.ApplyHead(h)
}

// OnDay implements sim.Observer.
func (p *Plane) OnDay(ev *sim.DayEvent) {
	d := feed.DayFromSim(ev)
	p.Feed.Publish(feed.Event{Kind: feed.KindDay, Day: d})
	p.Analyzer.ApplyDay(d)
}

// PublishHead feeds a head that did not come from an engine observer —
// the replica tier relays heads from its follow loop through this.
func (p *Plane) PublishHead(h *feed.HeadEvent) {
	p.Feed.Publish(feed.Event{Kind: feed.KindHead, Head: h})
	p.Analyzer.ApplyHead(h)
}

// PublishDay is the day-event counterpart of PublishHead.
func (p *Plane) PublishDay(d *feed.DayEvent) {
	p.Feed.Publish(feed.Event{Kind: feed.KindDay, Day: d})
	p.Analyzer.ApplyDay(d)
}

// Complete marks the run finished and publishes the EOF marker.
func (p *Plane) Complete() {
	p.Analyzer.MarkComplete()
	p.Feed.Publish(feed.Event{Kind: feed.KindEOF})
}
