// Package live is the streaming measurement plane: the batch pipeline
// (simulate, then export CSVs and run the analysis offline) turned into
// an online one, the way live network-measurement studies watch chain
// and client diversity from a continuous crawl instead of a post-hoc
// database pass.
//
// The wire Event model and the Feed broker live in the leaf subpackage
// internal/live/feed (so the RPC layer can import them without cycling
// through internal/export). This package adds the Analyzer — consuming
// events in-process as a sim.Observer or over the wire via Apply, and
// maintaining every O1–O6 observable incrementally while appending the
// block/tx/day CSV tables with the exact formatting of internal/export,
// so its end-of-run output is byte-identical to the batch export — and
// the Plane bundling a Feed with an Analyzer behind one observer.
//
// The convergence guarantee rests on ordering: the engine delivers
// events at the day barrier in fixed partition order (the same property
// that makes serial and parallel runs byte-identical), the Feed assigns
// sequence numbers in publish order, and any consumer that applies
// events in sequence order therefore reconstructs the batch byte
// stream — even over a lossy transport, because cursors make every
// dropped delivery retryable.
package live

import (
	"bytes"
	"encoding/csv"
	"math"
	"sync"

	"forkwatch/internal/export"
	"forkwatch/internal/live/feed"
	"forkwatch/internal/pool"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

// Options tunes the analyzer and the feed built around it. The zero
// value picks defaults sized for month-scale scenarios.
type Options struct {
	// DifficultyWindow is how many recent blocks per chain feed the O2
	// windowed difficulty/delta view (default 256).
	DifficultyWindow int
	// EchoSetCap bounds the tx-hash sliding set behind the O5 echo join:
	// beyond it the oldest first-seen entries are evicted FIFO, trading
	// long-range echo detection for bounded memory (default 1<<20).
	EchoSetCap int
	// RewardEther is the block reward used for hashes-per-USD (default 5,
	// the paper's pre-Byzantium reward).
	RewardEther float64
	// RingSize bounds the feed's replay ring (default 1<<16).
	RingSize int
}

func (o Options) withDefaults() Options {
	if o.DifficultyWindow <= 0 {
		o.DifficultyWindow = 256
	}
	if o.EchoSetCap <= 0 {
		o.EchoSetCap = 1 << 20
	}
	if o.RewardEther <= 0 {
		o.RewardEther = 5
	}
	if o.RingSize <= 0 {
		o.RingSize = 1 << 16
	}
	return o
}

// headCoinbase recovers the coinbase address behind a wire head event.
func headCoinbase(h *feed.HeadEvent) types.Address { return types.HexToAddress(h.Coinbase) }

// winEntry is one block in the O2 sliding window.
type winEntry struct {
	delta uint64
	diff  float64
}

// hourBucket is one chain-hour of the O1 census.
type hourBucket struct {
	blocks   int
	sumDelta float64
}

// chainState is one chain's incremental observable state.
type chainState struct {
	name     string
	head     uint64
	headTime uint64
	headDiff float64
	blocks   uint64
	txs      uint64

	hours []hourBucket // full hourly census (O(hours), not O(blocks))

	win     []winEntry // O2 ring
	winNext int
	winLen  int

	curDay      int
	dayBlocks   int
	dayTxs      int
	dayContract int
	dayEchoes   int
	byPool      map[types.Address]int // current day's coinbase counts (O6)

	echoes        uint64
	sameDayEchoes uint64

	usd      float64 // from the latest day event
	hashrate float64
	dayDiff  float64
}

// seenRec is one entry in the bounded first-seen tx-hash set.
type seenRec struct {
	chain string
	day   int
}

// pairCorr accumulates an online Pearson correlation between two chains'
// daily hashes-per-USD series (the headline of Fig 3 / O3).
type pairCorr struct {
	a, b                  string
	n                     int
	sx, sy, sxx, syy, sxy float64
}

func (p *pairCorr) add(x, y float64) {
	p.n++
	p.sx += x
	p.sy += y
	p.sxx += x * x
	p.syy += y * y
	p.sxy += x * y
}

func (p *pairCorr) corr() float64 {
	if p.n == 0 {
		return 0
	}
	n := float64(p.n)
	cov := p.sxy - p.sx*p.sy/n
	vx := p.sxx - p.sx*p.sx/n
	vy := p.syy - p.sy*p.sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// csvBuf is an append-only CSV table.
type csvBuf struct {
	buf         bytes.Buffer
	w           *csv.Writer
	wroteHeader bool
}

func (c *csvBuf) init() {
	if c.w == nil {
		c.w = csv.NewWriter(&c.buf)
	}
}

func (c *csvBuf) write(rec []string) {
	c.init()
	_ = c.w.Write(rec)
	c.w.Flush()
}

// Analyzer consumes the event stream and maintains every O1–O6
// observable incrementally, while appending the export CSV tables with
// byte-identical formatting. Feed it in-process as a sim.Observer, or
// over the wire with Apply; both run the same code path.
type Analyzer struct {
	mu    sync.Mutex
	epoch uint64
	opts  Options

	order  []string
	chains map[string]*chainState

	blocksCSV csvBuf
	txsCSV    csvBuf
	daysCSV   csvBuf

	seen      map[string]seenRec
	seenQ     []string // FIFO eviction order for the bounded set
	evictions uint64

	pairs []*pairCorr

	days     int
	events   uint64
	complete bool

	sink func(feed.EchoEvent)
}

// NewAnalyzer returns an analyzer for a run anchored at epoch (the fork
// unix time; hour buckets key on it).
func NewAnalyzer(epoch uint64, opts Options) *Analyzer {
	a := &Analyzer{
		epoch:  epoch,
		opts:   opts.withDefaults(),
		chains: map[string]*chainState{},
		seen:   map[string]seenRec{},
	}
	a.blocksCSV.write(export.BlockHeader())
	a.txsCSV.write(export.TxHeader())
	return a
}

// SetEchoSink installs a callback invoked (under the analyzer lock) for
// every derived echo candidate; the Plane wires it into the feed.
func (a *Analyzer) SetEchoSink(fn func(feed.EchoEvent)) {
	a.mu.Lock()
	a.sink = fn
	a.mu.Unlock()
}

// OnBlock implements sim.Observer (the in-process hook on the engine's
// day-barrier delivery).
func (a *Analyzer) OnBlock(ev *sim.BlockEvent) { a.ApplyHead(feed.HeadFromSim(ev)) }

// OnDay implements sim.Observer.
func (a *Analyzer) OnDay(ev *sim.DayEvent) { a.ApplyDay(feed.DayFromSim(ev)) }

// Apply consumes one wire event. Echo events are skipped — the analyzer
// derives its own join from heads, so a wire consumer converges without
// trusting upstream derivations. EOF marks the run complete.
func (a *Analyzer) Apply(ev feed.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	switch ev.Kind {
	case feed.KindHead:
		a.ApplyHead(ev.Head)
	case feed.KindDay:
		a.ApplyDay(ev.Day)
	case feed.KindEOF:
		a.MarkComplete()
	}
	return nil
}

// MarkComplete records that the run's event stream ended.
func (a *Analyzer) MarkComplete() {
	a.mu.Lock()
	a.complete = true
	a.mu.Unlock()
}

func (a *Analyzer) chain(name string) *chainState {
	cs, ok := a.chains[name]
	if !ok {
		cs = &chainState{
			name:   name,
			curDay: -1,
			byPool: map[types.Address]int{},
			win:    make([]winEntry, a.opts.DifficultyWindow),
		}
		a.chains[name] = cs
		a.order = append(a.order, name)
	}
	return cs
}

// ApplyHead folds one head event into every observable and appends its
// block/tx CSV rows.
func (a *Analyzer) ApplyHead(h *feed.HeadEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	diff := feed.ParseDifficulty(h.Difficulty)
	coinbase := headCoinbase(h)

	// CSV convergence: reproduce exactly what export.Recorder captures
	// from the same event (zero block hash — events carry none — and the
	// 0/1 chain-bound marker in place of the per-chain EIP-155 id).
	a.blocksCSV.write(export.EncodeBlockRow(export.BlockRow{
		Chain:      h.Chain,
		Number:     h.Number,
		Time:       h.Time,
		Difficulty: diff,
		Coinbase:   coinbase,
		TxCount:    len(h.Txs),
	}))
	for _, tx := range h.Txs {
		row := export.TxRow{
			Chain:       h.Chain,
			BlockNumber: h.Number,
			BlockTime:   h.Time,
			Hash:        types.HexToHash(tx.Hash),
			From:        types.HexToAddress(tx.From),
			Contract:    tx.Contract,
		}
		if tx.ChainBound {
			row.ChainID = 1
		}
		a.txsCSV.write(export.EncodeTxRow(row))
	}

	cs := a.chain(h.Chain)
	cs.head = h.Number
	cs.headTime = h.Time
	cs.headDiff = types.BigToFloat64(diff)
	cs.blocks++

	// O1: hourly census (mirrors analysis.Collector's epoch guard).
	if h.Time >= a.epoch {
		hr := int((h.Time - a.epoch) / 3600)
		for len(cs.hours) <= hr {
			cs.hours = append(cs.hours, hourBucket{})
		}
		cs.hours[hr].blocks++
		cs.hours[hr].sumDelta += float64(h.Delta)
	}

	// O2: sliding difficulty/delta window.
	cs.win[cs.winNext] = winEntry{delta: h.Delta, diff: cs.headDiff}
	cs.winNext = (cs.winNext + 1) % len(cs.win)
	if cs.winLen < len(cs.win) {
		cs.winLen++
	}

	// Day roll: heads arrive per chain in nondecreasing day order (the
	// barrier delivers whole days), so a day change resets the day scope.
	if h.Day != cs.curDay {
		cs.curDay = h.Day
		cs.dayBlocks = 0
		cs.dayTxs = 0
		cs.dayContract = 0
		cs.dayEchoes = 0
		cs.byPool = map[types.Address]int{}
	}
	cs.dayBlocks++
	cs.byPool[coinbase]++

	for _, tx := range h.Txs {
		cs.txs++
		cs.dayTxs++
		if tx.Contract {
			cs.dayContract++
		}
		// O5: bounded first-seen join on tx hash (analysis.Collector's
		// semantics — the echo counts on the receiving chain; only the
		// first sighting is remembered).
		if prev, ok := a.seen[tx.Hash]; ok && prev.chain != h.Chain {
			cs.echoes++
			cs.dayEchoes++
			same := prev.day == h.Day
			if same {
				cs.sameDayEchoes++
			}
			if a.sink != nil {
				a.sink(feed.EchoEvent{
					Hash:       tx.Hash,
					From:       tx.From,
					FirstChain: prev.chain,
					FirstDay:   prev.day,
					Chain:      h.Chain,
					Day:        h.Day,
					SameDay:    same,
				})
			}
		} else if !ok {
			a.seen[tx.Hash] = seenRec{chain: h.Chain, day: h.Day}
			a.seenQ = append(a.seenQ, tx.Hash)
			if len(a.seenQ) > a.opts.EchoSetCap {
				evict := a.seenQ[0]
				a.seenQ = a.seenQ[1:]
				delete(a.seen, evict)
				a.evictions++
			}
		}
	}
}

// ApplyDay folds one day event in: the day CSV row, per-chain economics
// and the online payoff correlations.
func (a *Analyzer) ApplyDay(d *feed.DayEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	row := export.DayRow{
		Day:      d.Day,
		Chains:   make([]string, len(d.Partitions)),
		USD:      make([]float64, len(d.Partitions)),
		Hashrate: make([]float64, len(d.Partitions)),
	}
	hpu := make([]float64, len(d.Partitions))
	for i, pd := range d.Partitions {
		row.Chains[i] = pd.Chain
		row.USD[i] = pd.USD
		row.Hashrate[i] = pd.Hashrate
		cs := a.chain(pd.Chain)
		cs.usd = pd.USD
		cs.hashrate = pd.Hashrate
		cs.dayDiff = types.BigToFloat64(feed.ParseDifficulty(pd.Difficulty))
		if pd.USD > 0 {
			hpu[i] = cs.dayDiff / a.opts.RewardEther / pd.USD
		}
	}
	if !a.daysCSV.wroteHeader {
		a.daysCSV.write(export.DayHeader(row.Chains))
		a.daysCSV.wroteHeader = true
		for i := 0; i < len(d.Partitions); i++ {
			for j := i + 1; j < len(d.Partitions); j++ {
				a.pairs = append(a.pairs, &pairCorr{a: d.Partitions[i].Chain, b: d.Partitions[j].Chain})
			}
		}
	}
	a.daysCSV.write(export.EncodeDayRow(row))
	k := 0
	for i := 0; i < len(d.Partitions); i++ {
		for j := i + 1; j < len(d.Partitions); j++ {
			if k < len(a.pairs) {
				a.pairs[k].add(hpu[i], hpu[j])
			}
			k++
		}
	}
	if d.Day+1 > a.days {
		a.days = d.Day + 1
	}
}

// Events returns how many events the analyzer has applied.
func (a *Analyzer) Events() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}

// BlocksCSV returns the block table accumulated so far — at end of run,
// byte-identical to export.WriteBlocks over a Recorder's rows.
func (a *Analyzer) BlocksCSV() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.blocksCSV.buf.Bytes()...)
}

// TxsCSV returns the transaction table accumulated so far.
func (a *Analyzer) TxsCSV() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.txsCSV.buf.Bytes()...)
}

// DaysCSV returns the day table accumulated so far. With no day events
// observed it is the header-only table WriteDays emits for zero rows.
func (a *Analyzer) DaysCSV() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.daysCSV.wroteHeader {
		var empty csvBuf
		empty.write(export.DayHeader(nil))
		return empty.buf.Bytes()
	}
	return append([]byte(nil), a.daysCSV.buf.Bytes()...)
}

// ChainLive is one chain's rolling O1–O6 view.
type ChainLive struct {
	Chain    string `json:"chain"`
	Head     uint64 `json:"head"`
	HeadTime uint64 `json:"headTime"`
	Day      int    `json:"day"`
	Blocks   uint64 `json:"blocks"`
	Txs      uint64 `json:"txs"`

	BlocksLastHour  int     `json:"blocksLastHour"`
	RecoveryHour    int     `json:"recoveryHour"`
	WindowBlocks    int     `json:"windowBlocks"`
	WindowMeanDelta float64 `json:"windowMeanDelta"`
	WindowMeanDiff  float64 `json:"windowMeanDifficulty"`
	Difficulty      float64 `json:"difficulty"`

	USD          float64 `json:"usd"`
	Hashrate     float64 `json:"hashrate"`
	HashesPerUSD float64 `json:"hashesPerUSD"`

	DayTxs         int     `json:"dayTxs"`
	DayContractPct float64 `json:"dayContractPct"`

	DayEchoes     int    `json:"dayEchoes"`
	Echoes        uint64 `json:"echoes"`
	SameDayEchoes uint64 `json:"sameDayEchoes"`

	Pools     int     `json:"pools"`
	Top1Share float64 `json:"top1Share"`
	Top5Share float64 `json:"top5Share"`
	PoolGini  float64 `json:"poolGini"`
}

// PairCorrelation is one chain pair's rolling hashes-per-USD Pearson
// correlation.
type PairCorrelation struct {
	A           string  `json:"a"`
	B           string  `json:"b"`
	Correlation float64 `json:"hashesPerUSDCorrelation"`
}

// Snapshot is the fork_liveSnapshot payload: the rolling view of every
// observable, per chain in partition (first-seen) order.
type Snapshot struct {
	Events           uint64            `json:"events"`
	Days             int               `json:"days"`
	Complete         bool              `json:"complete"`
	Chains           []ChainLive       `json:"chains"`
	Correlations     []PairCorrelation `json:"correlations,omitempty"`
	EchoSetSize      int               `json:"echoSetSize"`
	EchoSetEvictions uint64            `json:"echoSetEvictions"`
}

// Snapshot returns the current rolling view.
func (a *Analyzer) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := Snapshot{
		Events:           a.events,
		Days:             a.days,
		Complete:         a.complete,
		EchoSetSize:      len(a.seen),
		EchoSetEvictions: a.evictions,
	}
	for _, name := range a.order {
		cs := a.chains[name]
		cl := ChainLive{
			Chain:         name,
			Head:          cs.head,
			HeadTime:      cs.headTime,
			Day:           cs.curDay,
			Blocks:        cs.blocks,
			Txs:           cs.txs,
			Difficulty:    cs.headDiff,
			USD:           cs.usd,
			Hashrate:      cs.hashrate,
			DayTxs:        cs.dayTxs,
			DayEchoes:     cs.dayEchoes,
			Echoes:        cs.echoes,
			SameDayEchoes: cs.sameDayEchoes,
			RecoveryHour:  recoveryHour(cs.hours, 14, 0.9, 6),
		}
		if len(cs.hours) > 0 {
			cl.BlocksLastHour = cs.hours[len(cs.hours)-1].blocks
		}
		cl.WindowBlocks = cs.winLen
		if cs.winLen > 0 {
			var sd, sf float64
			for i := 0; i < cs.winLen; i++ {
				sd += float64(cs.win[i].delta)
				sf += cs.win[i].diff
			}
			cl.WindowMeanDelta = sd / float64(cs.winLen)
			cl.WindowMeanDiff = sf / float64(cs.winLen)
		}
		if cs.usd > 0 {
			cl.HashesPerUSD = cs.dayDiff / a.opts.RewardEther / cs.usd
		}
		if cs.dayTxs > 0 {
			cl.DayContractPct = 100 * float64(cs.dayContract) / float64(cs.dayTxs)
		}
		cl.Pools = len(cs.byPool)
		cl.Top1Share = pool.TopNFromCounts(cs.byPool, 1)
		cl.Top5Share = pool.TopNFromCounts(cs.byPool, 5)
		w := make([]float64, 0, len(cs.byPool))
		for _, n := range cs.byPool {
			w = append(w, float64(n))
		}
		cl.PoolGini = pool.GiniOf(w)
		out.Chains = append(out.Chains, cl)
	}
	for _, p := range a.pairs {
		out.Correlations = append(out.Correlations, PairCorrelation{A: p.a, B: p.b, Correlation: p.corr()})
	}
	return out
}

// recoveryHour mirrors analysis.Collector.RecoveryHour over the hourly
// census: the first hour whose block rate sustainably reached frac of
// the target rate, or -1.
func recoveryHour(hours []hourBucket, targetBlockTime, frac float64, sustain int) int {
	want := frac * 3600 / targetBlockTime
	run := 0
	for h := 0; h < len(hours); h++ {
		if float64(hours[h].blocks) >= want {
			run++
			if run >= sustain {
				return h - sustain + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}
