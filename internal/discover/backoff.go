package discover

import "time"

// DialBackoff returns how long to wait before redialing a node after its
// fails-th consecutive failure: exponential in the failure count, clamped
// to max, with a deterministic per-node jitter factor in [0.75, 1.25)
// derived from the node id. Deterministic jitter keeps fault-injection
// runs reproducible while still de-synchronizing redial storms across
// nodes (every node backs off on a slightly different schedule).
func DialBackoff(id NodeID, fails int, base, max time.Duration) time.Duration {
	if fails <= 0 || base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < fails; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if max > 0 && d > max {
		d = max
	}
	// Jitter factor from two id bytes: [0.75, 1.25).
	frac := float64(uint16(id[2])<<8|uint16(id[3])) / 65536
	d = time.Duration(float64(d) * (0.75 + frac/2))
	if max > 0 && d > max {
		d = max
	}
	return d
}
