package discover

import (
	"sort"
)

// FindNodeFunc asks a remote node for its neighbors closest to target. An
// error marks the node unreachable (offline, or it refused us — e.g. a
// fork-id mismatch at the application layer).
type FindNodeFunc func(n Node, target NodeID) ([]Node, error)

// CrawlResult summarises one sweep of the network.
type CrawlResult struct {
	// Reachable holds every node that answered at least one query.
	Reachable []Node
	// Unreachable holds nodes that were advertised but failed to answer.
	Unreachable []Node
	// Queries counts FindNode calls issued.
	Queries int
}

// Crawl walks the network from the seed nodes, querying every discovered
// node for its neighbors until no new nodes appear — the standard
// census technique behind "node count" measurements like the paper's
// observation O1. maxQueries bounds the sweep (0 = unbounded).
func Crawl(seeds []Node, find FindNodeFunc, maxQueries int) CrawlResult {
	var res CrawlResult
	seen := make(map[NodeID]Node)
	reachable := make(map[NodeID]bool)
	queried := make(map[NodeID]bool)

	queue := append([]Node(nil), seeds...)
	for _, s := range seeds {
		seen[s.ID] = s
	}
	for len(queue) > 0 {
		if maxQueries > 0 && res.Queries >= maxQueries {
			break
		}
		n := queue[0]
		queue = queue[1:]
		if queried[n.ID] {
			continue
		}
		queried[n.ID] = true
		res.Queries++

		// Ask for neighbors of the node's own ID: returns its buckets'
		// closest view, enough to enumerate connected components.
		neighbors, err := find(n, n.ID)
		if err != nil {
			continue
		}
		reachable[n.ID] = true
		for _, nb := range neighbors {
			if _, ok := seen[nb.ID]; !ok {
				seen[nb.ID] = nb
				queue = append(queue, nb)
			}
		}
	}
	for id, n := range seen {
		if reachable[id] {
			res.Reachable = append(res.Reachable, n)
		} else {
			res.Unreachable = append(res.Unreachable, n)
		}
	}
	sort.Slice(res.Reachable, func(i, j int) bool {
		return string(res.Reachable[i].ID[:]) < string(res.Reachable[j].ID[:])
	})
	sort.Slice(res.Unreachable, func(i, j int) bool {
		return string(res.Unreachable[i].ID[:]) < string(res.Unreachable[j].ID[:])
	})
	return res
}

// Lookup performs an iterative Kademlia lookup for the target from the
// seed nodes, returning the k closest reachable nodes found.
func Lookup(target NodeID, seeds []Node, find FindNodeFunc, k int) []Node {
	seen := make(map[NodeID]Node)
	queried := make(map[NodeID]bool)
	var pool []Node
	for _, s := range seeds {
		seen[s.ID] = s
		pool = append(pool, s)
	}
	sortByDist := func() {
		sort.Slice(pool, func(i, j int) bool {
			return DistCmp(target, pool[i].ID, pool[j].ID) < 0
		})
	}
	for {
		sortByDist()
		// Query the closest unqueried node; stop when the k closest have
		// all been queried.
		var next *Node
		limit := k
		if limit > len(pool) {
			limit = len(pool)
		}
		for i := 0; i < limit; i++ {
			if !queried[pool[i].ID] {
				next = &pool[i]
				break
			}
		}
		if next == nil {
			break
		}
		queried[next.ID] = true
		neighbors, err := find(*next, target)
		if err != nil {
			continue
		}
		for _, nb := range neighbors {
			if _, ok := seen[nb.ID]; !ok {
				seen[nb.ID] = nb
				pool = append(pool, nb)
			}
		}
	}
	sortByDist()
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}
