// Package discover implements a Kademlia-style node table and an
// iterative network crawler.
//
// The paper (§2.2) notes Ethereum uses Kademlia's XOR-metric peer
// discovery, and its observation O1 — ETC lost ~90% of its nodes at the
// fork — is a *crawl* measurement: you count the nodes you can reach that
// speak your fork. forkwatch reproduces that measurement: p2p nodes keep a
// Table, answer FindNode queries, and the Crawler walks the network
// counting reachable nodes per fork id (experiment E1).
package discover

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"forkwatch/internal/types"
)

// IDLength is the byte length of a NodeID.
const IDLength = 32

// BucketSize is Kademlia's k parameter: entries per distance bucket.
const BucketSize = 16

// NodeID identifies a node in the XOR metric space.
type NodeID [IDLength]byte

// Node is a discoverable network endpoint.
type Node struct {
	ID NodeID
	// Addr is the dialable address ("host:port" for TCP servers, a
	// registry key for in-memory transports).
	Addr string
}

// RandomID draws a uniformly random NodeID from r.
func RandomID(r *rand.Rand) NodeID {
	var id NodeID
	r.Read(id[:])
	return id
}

// IDFromHash converts a hash (e.g. keccak of a name) into a NodeID.
func IDFromHash(h types.Hash) NodeID { return NodeID(h) }

// LogDist returns the logarithmic XOR distance between two IDs: the index
// of the highest differing bit, 0 for equal IDs.
func LogDist(a, b NodeID) int {
	for i := 0; i < IDLength; i++ {
		x := a[i] ^ b[i]
		if x != 0 {
			return (IDLength-i)*8 - bits.LeadingZeros8(x)
		}
	}
	return 0
}

// DistCmp compares the XOR distances of a and b to target: -1 if a is
// closer, +1 if b is closer, 0 if equidistant.
func DistCmp(target, a, b NodeID) int {
	for i := 0; i < IDLength; i++ {
		da := a[i] ^ target[i]
		db := b[i] ^ target[i]
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		}
	}
	return 0
}

// Table is a set of known nodes organised into XOR-distance buckets around
// a local ID. Safe for concurrent use.
type Table struct {
	self Node

	mu      sync.RWMutex
	buckets [IDLength*8 + 1][]Node
	byID    map[NodeID]Node
}

// NewTable returns an empty table centred on self.
func NewTable(self Node) *Table {
	return &Table{self: self, byID: make(map[NodeID]Node)}
}

// Self returns the local node.
func (t *Table) Self() Node { return t.self }

// Add inserts or refreshes a node. Full buckets drop the newcomer
// (simplified from Kademlia's ping-evict rule). The local node is never
// stored. Reports whether the node is in the table afterwards.
func (t *Table) Add(n Node) bool {
	if n.ID == t.self.ID {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.byID[n.ID]; ok {
		if old.Addr != n.Addr {
			// Refresh the address in place.
			b := t.buckets[LogDist(t.self.ID, n.ID)]
			for i := range b {
				if b[i].ID == n.ID {
					b[i] = n
				}
			}
			t.byID[n.ID] = n
		}
		return true
	}
	d := LogDist(t.self.ID, n.ID)
	if len(t.buckets[d]) >= BucketSize {
		return false
	}
	t.buckets[d] = append(t.buckets[d], n)
	t.byID[n.ID] = n
	return true
}

// Remove deletes a node (e.g. after a failed dial).
func (t *Table) Remove(id NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return
	}
	delete(t.byID, id)
	d := LogDist(t.self.ID, id)
	b := t.buckets[d]
	for i := range b {
		if b[i].ID == id {
			t.buckets[d] = append(b[:i], b[i+1:]...)
			return
		}
	}
}

// Len returns the number of stored nodes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byID)
}

// Closest returns up to n stored nodes closest to target in XOR distance.
func (t *Table) Closest(target NodeID, n int) []Node {
	t.mu.RLock()
	all := make([]Node, 0, len(t.byID))
	for _, node := range t.byID {
		all = append(all, node)
	}
	t.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if c := DistCmp(target, all[i].ID, all[j].ID); c != 0 {
			return c < 0
		}
		// Tie-break on ID for determinism.
		return string(all[i].ID[:]) < string(all[j].ID[:])
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// All returns every stored node (deterministic order).
func (t *Table) All() []Node {
	t.mu.RLock()
	defer t.mu.RUnlock()
	all := make([]Node, 0, len(t.byID))
	for _, node := range t.byID {
		all = append(all, node)
	}
	sort.Slice(all, func(i, j int) bool { return string(all[i].ID[:]) < string(all[j].ID[:]) })
	return all
}
