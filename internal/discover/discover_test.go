package discover

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func rid(seed int64) NodeID {
	return RandomID(rand.New(rand.NewSource(seed)))
}

func TestLogDist(t *testing.T) {
	var a, b NodeID
	if LogDist(a, b) != 0 {
		t.Error("equal ids should have distance 0")
	}
	b[0] = 0x80 // top bit differs
	if got := LogDist(a, b); got != 256 {
		t.Errorf("top-bit distance = %d, want 256", got)
	}
	var c NodeID
	c[31] = 1 // lowest bit differs
	if got := LogDist(a, c); got != 1 {
		t.Errorf("bottom-bit distance = %d, want 1", got)
	}
}

// Property: LogDist is symmetric and satisfies the XOR-metric triangle
// relation d(a,c) <= max(d(a,b), d(b,c)).
func TestQuickLogDistProperties(t *testing.T) {
	f := func(a, b, c NodeID) bool {
		if LogDist(a, b) != LogDist(b, a) {
			return false
		}
		dac := LogDist(a, c)
		dab := LogDist(a, b)
		dbc := LogDist(b, c)
		maxD := dab
		if dbc > maxD {
			maxD = dbc
		}
		return dac <= maxD
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistCmp(t *testing.T) {
	target := rid(1)
	a, b := rid(2), rid(3)
	if DistCmp(target, a, a) != 0 {
		t.Error("same node should be equidistant")
	}
	if DistCmp(target, a, b) != -DistCmp(target, b, a) {
		t.Error("DistCmp should be antisymmetric")
	}
	if DistCmp(target, target, a) != -1 {
		t.Error("target itself is closest")
	}
}

func TestTableAddRemove(t *testing.T) {
	self := Node{ID: rid(0), Addr: "self"}
	tab := NewTable(self)
	if tab.Add(self) {
		t.Error("table must not store the local node")
	}
	n1 := Node{ID: rid(1), Addr: "n1"}
	if !tab.Add(n1) {
		t.Error("fresh add should succeed")
	}
	if !tab.Add(n1) {
		t.Error("re-add of known node should report presence")
	}
	if tab.Len() != 1 {
		t.Errorf("len = %d, want 1", tab.Len())
	}
	// Address refresh.
	tab.Add(Node{ID: n1.ID, Addr: "n1-new"})
	if got := tab.All()[0].Addr; got != "n1-new" {
		t.Errorf("address not refreshed: %s", got)
	}
	tab.Remove(n1.ID)
	if tab.Len() != 0 {
		t.Error("remove failed")
	}
	tab.Remove(n1.ID) // idempotent
}

func TestTableBucketCap(t *testing.T) {
	self := Node{ID: NodeID{}, Addr: "self"}
	tab := NewTable(self)
	// Fill one bucket: ids sharing the same top differing bit.
	added := 0
	for i := 0; i < 100; i++ {
		var id NodeID
		id[0] = 0x80 // all in bucket 256
		id[31] = byte(i + 1)
		if tab.Add(Node{ID: id, Addr: fmt.Sprintf("n%d", i)}) {
			added++
		}
	}
	if added != BucketSize {
		t.Errorf("bucket accepted %d nodes, want %d", added, BucketSize)
	}
}

func TestClosest(t *testing.T) {
	self := Node{ID: rid(0)}
	tab := NewTable(self)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		tab.Add(Node{ID: RandomID(r), Addr: fmt.Sprintf("n%d", i)})
	}
	target := RandomID(r)
	got := tab.Closest(target, 10)
	if len(got) != 10 {
		t.Fatalf("Closest returned %d nodes", len(got))
	}
	// Verify ordering and that nothing in the table is closer than the
	// returned worst.
	for i := 1; i < len(got); i++ {
		if DistCmp(target, got[i-1].ID, got[i].ID) > 0 {
			t.Fatal("Closest result not sorted by distance")
		}
	}
	worst := got[len(got)-1]
	inResult := make(map[NodeID]bool)
	for _, n := range got {
		inResult[n.ID] = true
	}
	for _, n := range tab.All() {
		if !inResult[n.ID] && DistCmp(target, n.ID, worst.ID) < 0 {
			t.Fatal("a closer node was omitted from Closest")
		}
	}
}

// staticNet is a synthetic network for crawl/lookup tests: adjacency by
// table.
type staticNet struct {
	tables map[NodeID]*Table
	dead   map[NodeID]bool
}

func newStaticNet(r *rand.Rand, n int) (*staticNet, []Node) {
	net := &staticNet{tables: make(map[NodeID]*Table), dead: make(map[NodeID]bool)}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: RandomID(r), Addr: fmt.Sprintf("n%d", i)}
	}
	for i, n := range nodes {
		tab := NewTable(n)
		// Ring plus random shortcuts: connected.
		tab.Add(nodes[(i+1)%len(nodes)])
		tab.Add(nodes[(i+len(nodes)-1)%len(nodes)])
		for j := 0; j < 3; j++ {
			tab.Add(nodes[r.Intn(len(nodes))])
		}
		net.tables[n.ID] = tab
	}
	return net, nodes
}

func (s *staticNet) find(n Node, target NodeID) ([]Node, error) {
	if s.dead[n.ID] {
		return nil, fmt.Errorf("node %x offline", n.ID[:4])
	}
	return s.tables[n.ID].Closest(target, BucketSize), nil
}

func TestCrawlFullCensus(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	net, nodes := newStaticNet(r, 60)
	res := Crawl(nodes[:1], net.find, 0)
	if len(res.Reachable) != 60 {
		t.Errorf("crawl found %d of 60 nodes", len(res.Reachable))
	}
	if res.Queries == 0 {
		t.Error("crawl issued no queries")
	}
}

func TestCrawlCountsUnreachable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	net, nodes := newStaticNet(r, 40)
	// Kill 30 of 40 nodes: the crawl should report them unreachable —
	// the paper's O1 measurement shape (90% loss at the fork).
	for _, n := range nodes[10:] {
		net.dead[n.ID] = true
	}
	res := Crawl(nodes[:1], net.find, 0)
	if len(res.Reachable) != 10 {
		t.Errorf("reachable = %d, want 10", len(res.Reachable))
	}
	if len(res.Unreachable) == 0 {
		t.Error("dead nodes should be reported unreachable")
	}
}

func TestCrawlQueryBudget(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	net, nodes := newStaticNet(r, 50)
	res := Crawl(nodes[:1], net.find, 5)
	if res.Queries > 5 {
		t.Errorf("crawl exceeded budget: %d queries", res.Queries)
	}
}

func TestLookupFindsClosest(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	net, nodes := newStaticNet(r, 80)
	target := RandomID(r)
	got := Lookup(target, nodes[:2], net.find, 5)
	if len(got) != 5 {
		t.Fatalf("lookup returned %d nodes", len(got))
	}
	// The lookup's best answer should be at least as close as the best
	// seed (it must make progress through the network).
	if DistCmp(target, got[0].ID, nodes[0].ID) > 0 && DistCmp(target, got[0].ID, nodes[1].ID) > 0 {
		t.Error("lookup did not improve on the seeds")
	}
}

// TestDialBackoff pins the redial schedule: exponential growth in the
// failure count, clamped to max, jittered deterministically per node.
func TestDialBackoff(t *testing.T) {
	id := rid(7)
	base := 100 * time.Millisecond
	max := 2 * time.Second

	if got := DialBackoff(id, 0, base, max); got != 0 {
		t.Errorf("zero failures: backoff = %v, want 0", got)
	}
	if got := DialBackoff(id, 3, 0, max); got != 0 {
		t.Errorf("disabled base: backoff = %v, want 0", got)
	}

	// Deterministic: same inputs, same delay.
	if DialBackoff(id, 2, base, max) != DialBackoff(id, 2, base, max) {
		t.Error("backoff is not deterministic")
	}

	// Exponential growth up to the clamp, always within the jitter band
	// [0.75, 1.25) of the nominal doubling, never above max.
	prev := time.Duration(0)
	for fails := 1; fails <= 10; fails++ {
		d := DialBackoff(id, fails, base, max)
		nominal := base << uint(fails-1)
		if nominal > max {
			nominal = max
		}
		lo := time.Duration(float64(nominal) * 0.75)
		if d < lo || d > max {
			t.Errorf("fails=%d: backoff %v outside [%v, %v]", fails, d, lo, max)
		}
		if d < prev && d < max*3/4 {
			t.Errorf("fails=%d: backoff shrank %v -> %v before the clamp", fails, prev, d)
		}
		prev = d
	}

	// Jitter de-synchronizes nodes: among many ids the same failure count
	// must produce more than one distinct delay.
	seen := make(map[time.Duration]bool)
	for seed := int64(0); seed < 16; seed++ {
		seen[DialBackoff(rid(seed), 1, base, max)] = true
	}
	if len(seen) < 2 {
		t.Error("per-node jitter produced identical backoffs across nodes")
	}
}
