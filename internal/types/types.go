// Package types holds the primitive value types shared by every forkwatch
// substrate: 32-byte hashes, 20-byte addresses, hex encoding helpers, and
// big-integer convenience wrappers.
//
// The types mirror their Ethereum counterparts closely enough that the
// analysis layer can join ledgers on transaction hashes exactly as the
// paper's database pipeline does.
package types

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
)

// HashLength is the byte length of a Hash.
const HashLength = 32

// AddressLength is the byte length of an Address.
const AddressLength = 20

// Hash is a 32-byte Keccak-256 digest identifying blocks, transactions and
// trie nodes.
type Hash [HashLength]byte

// Address is a 20-byte account identifier (the low 20 bytes of the
// Keccak-256 hash of a public key, as in Ethereum).
type Address [AddressLength]byte

// BytesToHash converts b to a Hash, left-padding with zeroes when b is
// shorter than 32 bytes and keeping the rightmost 32 bytes when longer.
func BytesToHash(b []byte) Hash {
	var h Hash
	h.SetBytes(b)
	return h
}

// SetBytes sets the hash to the value of b, applying the same padding and
// truncation rules as BytesToHash.
func (h *Hash) SetBytes(b []byte) {
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
}

// Bytes returns the hash as a byte slice.
func (h Hash) Bytes() []byte { return h[:] }

// Big returns the hash interpreted as a big-endian unsigned integer.
func (h Hash) Big() *big.Int { return new(big.Int).SetBytes(h[:]) }

// Hex returns the 0x-prefixed hexadecimal encoding of the hash.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer, returning the hex encoding.
func (h Hash) String() string { return h.Hex() }

// IsZero reports whether every byte of the hash is zero.
func (h Hash) IsZero() bool { return h == Hash{} }

// HexToHash parses a 0x-prefixed (or bare) hex string into a Hash.
// Short inputs are left-padded; invalid hex yields the zero hash.
func HexToHash(s string) Hash { return BytesToHash(fromHex(s)) }

// BytesToAddress converts b to an Address with the same padding and
// truncation rules as BytesToHash.
func BytesToAddress(b []byte) Address {
	var a Address
	a.SetBytes(b)
	return a
}

// SetBytes sets the address to the value of b.
func (a *Address) SetBytes(b []byte) {
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
}

// Bytes returns the address as a byte slice.
func (a Address) Bytes() []byte { return a[:] }

// Hash returns the address left-padded to 32 bytes, as used for trie keys.
func (a Address) Hash() Hash { return BytesToHash(a[:]) }

// Hex returns the 0x-prefixed hexadecimal encoding of the address.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer, returning the hex encoding.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether every byte of the address is zero.
func (a Address) IsZero() bool { return a == Address{} }

// HexToAddress parses a 0x-prefixed (or bare) hex string into an Address.
func HexToAddress(s string) Address { return BytesToAddress(fromHex(s)) }

func fromHex(s string) []byte {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil
	}
	return b
}

// Big math helpers. The chain's difficulty arithmetic works on *big.Int so
// nine simulated months of difficulty growth cannot overflow.

// Big constructs a big.Int from an int64.
func Big(v int64) *big.Int { return big.NewInt(v) }

// BigCopy returns a defensive copy of v (nil stays nil).
func BigCopy(v *big.Int) *big.Int {
	if v == nil {
		return nil
	}
	return new(big.Int).Set(v)
}

// BigMax returns the larger of a and b.
func BigMax(a, b *big.Int) *big.Int {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// BigMin returns the smaller of a and b.
func BigMin(a, b *big.Int) *big.Int {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// BigToFloat64 converts v to a float64. Values that fit in an int64 (every
// realistic difficulty) convert without touching big.Float; larger values
// fall back to the rounding big.Float path.
func BigToFloat64(v *big.Int) float64 {
	if v.IsInt64() {
		return float64(v.Int64())
	}
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}

// ErrValueTooLarge reports a big.Int that does not fit the requested
// fixed-size integer type.
var ErrValueTooLarge = errors.New("types: value does not fit target type")

// BigToUint64 converts v to a uint64, returning ErrValueTooLarge when v is
// negative or exceeds 64 bits.
func BigToUint64(v *big.Int) (uint64, error) {
	if v.Sign() < 0 || v.BitLen() > 64 {
		return 0, fmt.Errorf("%w: %s", ErrValueTooLarge, v)
	}
	return v.Uint64(), nil
}
