package types

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestBytesToHashPadding(t *testing.T) {
	h := BytesToHash([]byte{0xab, 0xcd})
	want := "0x000000000000000000000000000000000000000000000000000000000000abcd"
	if h.Hex() != want {
		t.Errorf("short input: got %s, want %s", h.Hex(), want)
	}
	long := make([]byte, 40)
	long[39] = 0x11
	h = BytesToHash(long)
	if h[31] != 0x11 || h[0] != 0 {
		t.Errorf("long input should keep rightmost bytes: %s", h)
	}
}

func TestHexToHashRoundTrip(t *testing.T) {
	in := "0x1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
	h := HexToHash(in)
	if h.Hex() != in {
		t.Errorf("round trip failed: %s != %s", h.Hex(), in)
	}
	if HexToHash("zznothex") != (Hash{}) {
		t.Error("invalid hex should yield zero hash")
	}
}

func TestHashBig(t *testing.T) {
	h := BytesToHash([]byte{0x01, 0x00})
	if h.Big().Int64() != 256 {
		t.Errorf("Big() = %v, want 256", h.Big())
	}
}

func TestAddressConversions(t *testing.T) {
	a := HexToAddress("0xdeadbeef")
	if a.Hex() != "0x00000000000000000000000000000000deadbeef" {
		t.Errorf("unexpected address hex %s", a.Hex())
	}
	if a.IsZero() {
		t.Error("non-zero address reported zero")
	}
	if !(Address{}).IsZero() {
		t.Error("zero address not reported zero")
	}
	if got := a.Hash(); got[31] != 0xef || got[11] != 0 {
		t.Errorf("Address.Hash padding wrong: %s", got)
	}
}

func TestBigHelpers(t *testing.T) {
	a, b := Big(3), Big(7)
	if BigMax(a, b).Int64() != 7 || BigMin(a, b).Int64() != 3 {
		t.Error("BigMax/BigMin wrong")
	}
	c := BigCopy(a)
	c.SetInt64(99)
	if a.Int64() != 3 {
		t.Error("BigCopy aliases its input")
	}
	if BigCopy(nil) != nil {
		t.Error("BigCopy(nil) should be nil")
	}
}

func TestBigToUint64(t *testing.T) {
	if v, err := BigToUint64(Big(42)); err != nil || v != 42 {
		t.Errorf("BigToUint64(42) = %d, %v", v, err)
	}
	if _, err := BigToUint64(Big(-1)); err == nil {
		t.Error("negative value should error")
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 64)
	if _, err := BigToUint64(huge); err == nil {
		t.Error("2^64 should error")
	}
}

// Property: BytesToHash . Bytes is the identity on 32-byte inputs.
func TestQuickHashRoundTrip(t *testing.T) {
	f := func(h Hash) bool { return BytesToHash(h.Bytes()) == h }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HexToHash . Hex is the identity.
func TestQuickHexRoundTrip(t *testing.T) {
	f := func(h Hash) bool { return HexToHash(h.Hex()) == h }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: address conversion keeps the low 20 bytes of any hash.
func TestQuickAddressTruncation(t *testing.T) {
	f := func(h Hash) bool {
		a := BytesToAddress(h.Bytes())
		for i := 0; i < AddressLength; i++ {
			if a[i] != h[i+12] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
