// Package state implements the Ethereum-style account state database on
// top of the Merkle-Patricia trie: balances, nonces, contract code and
// contract storage, with journaled snapshots and trie commits.
//
// The fork scenario depends on three properties of this layer:
//
//   - Both chains start from the same committed pre-fork root; ETH then
//     applies the DAO irregular state change, after which the roots
//     diverge permanently (the partition of the paper's title).
//   - Replayed ("echoed") transactions succeed or fail against each
//     chain's own nonces and balances, which drives the Fig 4 dynamics.
//   - Snapshots/reverts give the EVM call semantics the DAO reentrancy
//     example needs.
package state

import (
	"fmt"
	"math/big"
	"sort"

	"forkwatch/internal/db"
	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/trie"
	"forkwatch/internal/types"
)

// EmptyCodeHash is the Keccak-256 hash of empty code.
var EmptyCodeHash = types.BytesToHash(func() []byte { h := keccak.Sum256(nil); return h[:] }())

// Account is the RLP-encoded per-address record stored in the state trie:
// the quadruple of the yellow paper.
type Account struct {
	Nonce       uint64
	Balance     *big.Int
	StorageRoot types.Hash
	CodeHash    types.Hash
}

func (a *Account) encode() []byte {
	return rlp.EncodeList(
		rlp.Uint(a.Nonce),
		rlp.BigInt(a.Balance),
		rlp.Bytes(a.StorageRoot.Bytes()),
		rlp.Bytes(a.CodeHash.Bytes()),
	)
}

// appendTo appends the account's RLP encoding to dst — byte-identical to
// encode (the conformance test pins this), minus its allocations.
// Trie.Update copies values, so Commit encodes every account into one
// reusable scratch buffer.
func (a *Account) appendTo(dst []byte) []byte {
	const hashStr = 1 + types.HashLength // header byte + 32-byte payload
	payload := rlp.UintSize(a.Nonce) + rlp.BigIntSize(a.Balance) + 2*hashStr
	dst = rlp.AppendListHeader(dst, payload)
	dst = rlp.AppendUint(dst, a.Nonce)
	dst = rlp.AppendBigInt(dst, a.Balance)
	dst = rlp.AppendBytes(dst, a.StorageRoot[:])
	return rlp.AppendBytes(dst, a.CodeHash[:])
}

func decodeAccount(enc []byte) (*Account, error) {
	v, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("state: corrupt account: %w", err)
	}
	items, err := v.ListOf(4)
	if err != nil {
		return nil, fmt.Errorf("state: corrupt account: %w", err)
	}
	nonce, err := items[0].AsUint()
	if err != nil {
		return nil, err
	}
	bal, err := items[1].AsBigInt()
	if err != nil {
		return nil, err
	}
	rootB, err := items[2].AsBytes()
	if err != nil {
		return nil, err
	}
	codeB, err := items[3].AsBytes()
	if err != nil {
		return nil, err
	}
	return &Account{
		Nonce:       nonce,
		Balance:     bal,
		StorageRoot: types.BytesToHash(rootB),
		CodeHash:    types.BytesToHash(codeB),
	}, nil
}

// stateObject is the in-memory working copy of one account.
type stateObject struct {
	addr    types.Address
	account Account
	code    []byte
	// storage caches loaded slots; dirtyStorage the pending writes.
	storage      map[types.Hash]types.Hash
	dirtyStorage map[types.Hash]types.Hash
	deleted      bool
	exists       bool // account existed in trie or was created
}

// DB is a mutable account state over a db.KV node store. It is not safe
// for concurrent use; each chain (and each EVM execution) owns its own DB.
type DB struct {
	db      db.KV
	tr      *trie.Trie
	objects map[types.Address]*stateObject
	// code store: code is content-addressed and shared across copies.
	codes   map[types.Hash][]byte
	journal []journalEntry
	// dbErr records the first storage fault hit by a getter. The getter
	// surface (GetBalance, GetState, ...) is called from EVM execution and
	// cannot return errors, so faults are recorded here and surfaced by
	// Commit — the transition that observed broken reads never persists.
	dbErr error
	// encBuf is Commit's reusable account-encoding scratch (Trie.Update
	// copies the value, so one buffer serves every account in a commit).
	encBuf []byte
}

// setError records the first storage fault observed by a getter.
func (s *DB) setError(err error) {
	if s.dbErr == nil {
		s.dbErr = err
	}
}

// Error returns the first storage fault recorded by a getter, if any.
func (s *DB) Error() error { return s.dbErr }

// journalEntry undoes one state mutation on revert.
type journalEntry func()

// New opens the state at the given root. The zero hash opens empty state.
func New(root types.Hash, kv db.KV) (*DB, error) {
	tr, err := trie.New(root, kv)
	if err != nil {
		return nil, err
	}
	return &DB{
		db:      kv,
		tr:      tr,
		objects: make(map[types.Address]*stateObject),
		codes:   make(map[types.Hash][]byte),
	}, nil
}

// NewEmpty returns empty state over a fresh in-memory database.
func NewEmpty() *DB {
	s, err := New(types.Hash{}, db.NewMemDB())
	if err != nil {
		panic(err) // empty root over MemDB cannot fail
	}
	return s
}

// Database returns the backing node store (shared with copies).
func (s *DB) Database() db.KV { return s.db }

func (s *DB) getObject(addr types.Address) *stateObject {
	if obj, ok := s.objects[addr]; ok {
		if obj.deleted || !obj.exists {
			return nil
		}
		return obj
	}
	enc, err := s.tr.Get(addrKey(addr))
	if err != nil {
		// Record the fault and report the account absent; Commit will
		// refuse to persist a transition built on this read.
		s.setError(fmt.Errorf("state: reading account %s: %w", addr, err))
		return nil
	}
	if len(enc) == 0 {
		obj := newObject(addr)
		obj.exists = false
		s.objects[addr] = obj
		return nil
	}
	acct, err := decodeAccount(enc)
	if err != nil {
		s.setError(fmt.Errorf("%w: account %s: %v", db.ErrCorrupt, addr, err))
		return nil
	}
	obj := newObject(addr)
	obj.account = *acct
	obj.exists = true
	s.objects[addr] = obj
	return obj
}

func newObject(addr types.Address) *stateObject {
	return &stateObject{
		addr:         addr,
		account:      Account{Balance: new(big.Int), StorageRoot: trie.EmptyRoot, CodeHash: EmptyCodeHash},
		storage:      make(map[types.Hash]types.Hash),
		dirtyStorage: make(map[types.Hash]types.Hash),
	}
}

// getOrCreate returns the object for addr, creating a fresh account if
// absent (journaled).
func (s *DB) getOrCreate(addr types.Address) *stateObject {
	if obj := s.getObject(addr); obj != nil {
		return obj
	}
	obj, ok := s.objects[addr]
	if !ok || obj.deleted {
		obj = newObject(addr)
		s.objects[addr] = obj
	}
	wasDeleted, wasExists := obj.deleted, obj.exists
	obj.deleted, obj.exists = false, true
	s.journal = append(s.journal, func() { obj.deleted, obj.exists = wasDeleted, wasExists })
	return obj
}

// Exist reports whether addr has an account in the state.
func (s *DB) Exist(addr types.Address) bool {
	return s.getObject(addr) != nil
}

// GetBalance returns addr's balance (zero for absent accounts).
func (s *DB) GetBalance(addr types.Address) *big.Int {
	if obj := s.getObject(addr); obj != nil {
		return types.BigCopy(obj.account.Balance)
	}
	return new(big.Int)
}

// BalanceCmp compares addr's balance to x without copying it — the
// allocation-free form of GetBalance(addr).Cmp(x) for hot validation.
func (s *DB) BalanceCmp(addr types.Address, x *big.Int) int {
	if obj := s.getObject(addr); obj != nil {
		return obj.account.Balance.Cmp(x)
	}
	if x.Sign() > 0 {
		return -1
	}
	if x.Sign() < 0 {
		return 1
	}
	return 0
}

// AddBalance credits amount to addr, creating the account if needed.
func (s *DB) AddBalance(addr types.Address, amount *big.Int) {
	if amount.Sign() < 0 {
		panic("state: AddBalance with negative amount")
	}
	obj := s.getOrCreate(addr)
	prev := types.BigCopy(obj.account.Balance)
	s.journal = append(s.journal, func() { obj.account.Balance = prev })
	obj.account.Balance = new(big.Int).Add(obj.account.Balance, amount)
}

// SubBalance debits amount from addr. The caller must have checked funds;
// driving the balance negative panics.
func (s *DB) SubBalance(addr types.Address, amount *big.Int) {
	if amount.Sign() < 0 {
		panic("state: SubBalance with negative amount")
	}
	obj := s.getOrCreate(addr)
	if obj.account.Balance.Cmp(amount) < 0 {
		panic(fmt.Sprintf("state: balance underflow for %s", addr))
	}
	prev := types.BigCopy(obj.account.Balance)
	s.journal = append(s.journal, func() { obj.account.Balance = prev })
	obj.account.Balance = new(big.Int).Sub(obj.account.Balance, amount)
}

// SetBalance forces addr's balance to amount. Used by the DAO irregular
// state change and by genesis allocation.
func (s *DB) SetBalance(addr types.Address, amount *big.Int) {
	obj := s.getOrCreate(addr)
	prev := types.BigCopy(obj.account.Balance)
	s.journal = append(s.journal, func() { obj.account.Balance = prev })
	obj.account.Balance = types.BigCopy(amount)
}

// GetNonce returns addr's nonce.
func (s *DB) GetNonce(addr types.Address) uint64 {
	if obj := s.getObject(addr); obj != nil {
		return obj.account.Nonce
	}
	return 0
}

// SetNonce sets addr's nonce.
func (s *DB) SetNonce(addr types.Address, nonce uint64) {
	obj := s.getOrCreate(addr)
	prev := obj.account.Nonce
	s.journal = append(s.journal, func() { obj.account.Nonce = prev })
	obj.account.Nonce = nonce
}

// GetCode returns the contract code at addr (nil for plain accounts).
func (s *DB) GetCode(addr types.Address) []byte {
	obj := s.getObject(addr)
	if obj == nil || obj.account.CodeHash == EmptyCodeHash {
		return nil
	}
	if obj.code != nil {
		return obj.code
	}
	if code, ok := s.codes[obj.account.CodeHash]; ok {
		obj.code = code
		return code
	}
	// Code lives in the node store, content-addressed.
	enc, ok, err := s.db.Get(obj.account.CodeHash.Bytes())
	if err != nil {
		s.setError(fmt.Errorf("state: reading code %s: %w", obj.account.CodeHash, err))
		return nil
	}
	if ok {
		obj.code = enc
		return enc
	}
	return nil
}

// SetCode installs contract code at addr.
func (s *DB) SetCode(addr types.Address, code []byte) {
	obj := s.getOrCreate(addr)
	prevHash, prevCode := obj.account.CodeHash, obj.code
	s.journal = append(s.journal, func() { obj.account.CodeHash, obj.code = prevHash, prevCode })
	h := keccak.Sum256(code)
	obj.account.CodeHash = types.BytesToHash(h[:])
	obj.code = append([]byte(nil), code...)
	s.codes[obj.account.CodeHash] = obj.code
}

// GetCodeHash returns the code hash of addr (EmptyCodeHash when absent).
func (s *DB) GetCodeHash(addr types.Address) types.Hash {
	if obj := s.getObject(addr); obj != nil {
		return obj.account.CodeHash
	}
	return EmptyCodeHash
}

// GetState returns the storage slot `key` of contract addr.
func (s *DB) GetState(addr types.Address, key types.Hash) types.Hash {
	obj := s.getObject(addr)
	if obj == nil {
		return types.Hash{}
	}
	if v, ok := obj.dirtyStorage[key]; ok {
		return v
	}
	if v, ok := obj.storage[key]; ok {
		return v
	}
	v := s.loadSlot(obj, key)
	obj.storage[key] = v
	return v
}

func (s *DB) loadSlot(obj *stateObject, key types.Hash) types.Hash {
	if obj.account.StorageRoot == trie.EmptyRoot {
		return types.Hash{}
	}
	st, err := trie.New(obj.account.StorageRoot, s.db)
	if err != nil {
		s.setError(fmt.Errorf("state: opening storage of %s: %w", obj.addr, err))
		return types.Hash{}
	}
	enc, err := st.Get(slotKey(key))
	if err != nil {
		s.setError(fmt.Errorf("state: reading slot %s of %s: %w", key, obj.addr, err))
		return types.Hash{}
	}
	if len(enc) == 0 {
		return types.Hash{}
	}
	v, err := rlp.Decode(enc)
	if err != nil {
		s.setError(fmt.Errorf("%w: slot %s of %s: %v", db.ErrCorrupt, key, obj.addr, err))
		return types.Hash{}
	}
	b, err := v.AsBytes()
	if err != nil {
		s.setError(fmt.Errorf("%w: slot %s of %s: %v", db.ErrCorrupt, key, obj.addr, err))
		return types.Hash{}
	}
	return types.BytesToHash(b)
}

// SetState writes storage slot `key` of contract addr (journaled).
func (s *DB) SetState(addr types.Address, key, value types.Hash) {
	obj := s.getOrCreate(addr)
	prev, hadPrev := obj.dirtyStorage[key]
	s.journal = append(s.journal, func() {
		if hadPrev {
			obj.dirtyStorage[key] = prev
		} else {
			delete(obj.dirtyStorage, key)
		}
	})
	obj.dirtyStorage[key] = value
}

// Snapshot returns an identifier for the current state to revert to.
func (s *DB) Snapshot() int { return len(s.journal) }

// RevertToSnapshot undoes every mutation made after the snapshot was
// taken.
func (s *DB) RevertToSnapshot(id int) {
	if id < 0 || id > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot id %d (journal %d)", id, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i]()
	}
	s.journal = s.journal[:id]
}

// Commit flushes all dirty objects into the tries, stores code, clears the
// journal and returns the new state root. All writes — every storage trie,
// contract code blobs and the account trie itself — land in one db.Batch,
// so the store sees a block's state transition atomically (nothing is
// persisted if an intermediate step errors).
//
// A storage fault observed by any getter since the last Commit (see
// setError) also fails the commit: a transition computed over broken reads
// must never persist.
func (s *DB) Commit() (types.Hash, error) {
	if s.dbErr != nil {
		return types.Hash{}, s.dbErr
	}
	batch := s.db.NewBatch()
	// Deterministic iteration keeps commits reproducible.
	addrs := make([]types.Address, 0, len(s.objects))
	for a := range s.objects {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i].Bytes()) < string(addrs[j].Bytes())
	})
	for _, addr := range addrs {
		obj := s.objects[addr]
		if obj.deleted || !obj.exists {
			if obj.deleted {
				if err := s.tr.Delete(addrKey(addr)); err != nil {
					return types.Hash{}, err
				}
			}
			continue
		}
		if err := s.commitStorage(obj, batch); err != nil {
			return types.Hash{}, err
		}
		if obj.account.CodeHash != EmptyCodeHash && obj.code != nil {
			batch.Put(obj.account.CodeHash.Bytes(), obj.code)
		}
		s.encBuf = obj.account.appendTo(s.encBuf[:0])
		if err := s.tr.Update(addrKey(addr), s.encBuf); err != nil {
			return types.Hash{}, err
		}
	}
	if s.dbErr != nil {
		// A getter tripped during the flush (storage-trie reads above).
		return types.Hash{}, s.dbErr
	}
	s.journal = nil
	root := s.tr.CommitTo(batch)
	if err := batch.Write(); err != nil {
		return types.Hash{}, fmt.Errorf("state: committing: %w", err)
	}
	return root, nil
}

func (s *DB) commitStorage(obj *stateObject, batch db.Batch) error {
	if len(obj.dirtyStorage) == 0 {
		return nil
	}
	st, err := trie.New(obj.account.StorageRoot, s.db)
	if err != nil {
		return err
	}
	keys := make([]types.Hash, 0, len(obj.dirtyStorage))
	for k := range obj.dirtyStorage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return string(keys[i].Bytes()) < string(keys[j].Bytes())
	})
	for _, k := range keys {
		v := obj.dirtyStorage[k]
		obj.storage[k] = v
		if v.IsZero() {
			if err := st.Delete(slotKey(k)); err != nil {
				return err
			}
			continue
		}
		// Values are stored RLP-encoded with leading zeroes trimmed,
		// as Ethereum does.
		trimmed := new(big.Int).SetBytes(v.Bytes()).Bytes()
		if err := st.Update(slotKey(k), rlp.Encode(rlp.Bytes(trimmed))); err != nil {
			return err
		}
	}
	obj.dirtyStorage = make(map[types.Hash]types.Hash)
	obj.account.StorageRoot = st.CommitTo(batch)
	return nil
}

// Copy returns an independent state sharing the same backing database.
// Used at the fork block to hand each chain its own state head. Copying
// commits first, so it can fail on a storage fault.
func (s *DB) Copy() (*DB, error) {
	root, err := s.Commit()
	if err != nil {
		return nil, err
	}
	cp, err := New(root, s.db)
	if err != nil {
		return nil, err
	}
	for h, c := range s.codes {
		cp.codes[h] = c
	}
	return cp, nil
}

// addrKey is the secure-trie key for an address: keccak256(addr).
func addrKey(addr types.Address) []byte {
	h := keccak.Sum256(addr.Bytes())
	return h[:]
}

// slotKey is the secure-trie key for a storage slot: keccak256(slot).
func slotKey(key types.Hash) []byte {
	h := keccak.Sum256(key.Bytes())
	return h[:]
}
