package state

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"forkwatch/internal/db"
	"forkwatch/internal/types"
)

func addr(b byte) types.Address { return types.BytesToAddress([]byte{b}) }

func TestBalanceLifecycle(t *testing.T) {
	s := NewEmpty()
	a := addr(1)
	if s.Exist(a) {
		t.Error("fresh state should have no accounts")
	}
	if s.GetBalance(a).Sign() != 0 {
		t.Error("absent account balance should be zero")
	}
	s.AddBalance(a, big.NewInt(100))
	if !s.Exist(a) {
		t.Error("AddBalance should create the account")
	}
	s.SubBalance(a, big.NewInt(30))
	if got := s.GetBalance(a); got.Int64() != 70 {
		t.Errorf("balance = %v, want 70", got)
	}
	// Returned balance must be a copy.
	s.GetBalance(a).SetInt64(999)
	if got := s.GetBalance(a); got.Int64() != 70 {
		t.Errorf("balance aliased: %v", got)
	}
}

func TestSubBalanceUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on balance underflow")
		}
	}()
	s := NewEmpty()
	s.SubBalance(addr(1), big.NewInt(1))
}

func TestNonce(t *testing.T) {
	s := NewEmpty()
	a := addr(2)
	if s.GetNonce(a) != 0 {
		t.Error("fresh nonce should be 0")
	}
	s.SetNonce(a, 5)
	if s.GetNonce(a) != 5 {
		t.Error("nonce not persisted")
	}
}

func TestCode(t *testing.T) {
	s := NewEmpty()
	a := addr(3)
	if s.GetCode(a) != nil {
		t.Error("absent account should have nil code")
	}
	if s.GetCodeHash(a) != EmptyCodeHash {
		t.Error("absent account code hash should be EmptyCodeHash")
	}
	code := []byte{0x60, 0x00, 0x60, 0x00}
	s.SetCode(a, code)
	if got := s.GetCode(a); string(got) != string(code) {
		t.Errorf("code = %x", got)
	}
	if s.GetCodeHash(a) == EmptyCodeHash {
		t.Error("code hash should change after SetCode")
	}
}

func TestStorage(t *testing.T) {
	s := NewEmpty()
	a := addr(4)
	k := types.HexToHash("0x01")
	v := types.HexToHash("0xdeadbeef")
	if !s.GetState(a, k).IsZero() {
		t.Error("unset slot should be zero")
	}
	s.SetState(a, k, v)
	if s.GetState(a, k) != v {
		t.Error("slot not set")
	}
	s.SetState(a, k, types.Hash{}) // clear
	if !s.GetState(a, k).IsZero() {
		t.Error("cleared slot should be zero")
	}
}

func TestSnapshotRevert(t *testing.T) {
	s := NewEmpty()
	a, b := addr(5), addr(6)
	s.AddBalance(a, big.NewInt(100))
	snap := s.Snapshot()

	s.SubBalance(a, big.NewInt(40))
	s.AddBalance(b, big.NewInt(40))
	s.SetNonce(a, 1)
	s.SetState(a, types.HexToHash("0x01"), types.HexToHash("0x02"))
	s.SetCode(b, []byte{1, 2, 3})

	s.RevertToSnapshot(snap)

	if got := s.GetBalance(a); got.Int64() != 100 {
		t.Errorf("a balance after revert = %v, want 100", got)
	}
	if got := s.GetBalance(b); got.Sign() != 0 {
		t.Errorf("b balance after revert = %v, want 0", got)
	}
	if s.GetNonce(a) != 0 {
		t.Error("nonce not reverted")
	}
	if !s.GetState(a, types.HexToHash("0x01")).IsZero() {
		t.Error("storage not reverted")
	}
	if s.GetCode(b) != nil {
		t.Error("code not reverted")
	}
	if s.Exist(b) {
		t.Error("account creation not reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := NewEmpty()
	a := addr(7)
	s.AddBalance(a, big.NewInt(10))
	outer := s.Snapshot()
	s.AddBalance(a, big.NewInt(10))
	inner := s.Snapshot()
	s.AddBalance(a, big.NewInt(10))
	s.RevertToSnapshot(inner)
	if got := s.GetBalance(a); got.Int64() != 20 {
		t.Errorf("after inner revert = %v, want 20", got)
	}
	s.RevertToSnapshot(outer)
	if got := s.GetBalance(a); got.Int64() != 10 {
		t.Errorf("after outer revert = %v, want 10", got)
	}
}

func TestCommitAndReopen(t *testing.T) {
	store := db.NewMemDB()
	s, err := New(types.Hash{}, store)
	if err != nil {
		t.Fatal(err)
	}
	a := addr(8)
	s.AddBalance(a, big.NewInt(12345))
	s.SetNonce(a, 7)
	s.SetCode(a, []byte{0xfe, 0xed})
	s.SetState(a, types.HexToHash("0x11"), types.HexToHash("0x22"))
	root, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}

	re, err := New(root, store)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.GetBalance(a); got.Int64() != 12345 {
		t.Errorf("balance after reopen = %v", got)
	}
	if re.GetNonce(a) != 7 {
		t.Error("nonce lost across commit")
	}
	if got := re.GetCode(a); string(got) != "\xfe\xed" {
		t.Errorf("code lost across commit: %x", got)
	}
	if re.GetState(a, types.HexToHash("0x11")) != types.HexToHash("0x22") {
		t.Error("storage lost across commit")
	}
}

func TestCommitDeterministicRoot(t *testing.T) {
	build := func(seed int64) types.Hash {
		s := NewEmpty()
		r := rand.New(rand.NewSource(seed))
		order := r.Perm(50)
		for _, i := range order {
			a := addr(byte(i + 1))
			s.AddBalance(a, big.NewInt(int64(i*1000+1)))
			s.SetNonce(a, uint64(i))
		}
		root, err := s.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return root
	}
	if build(1) != build(99) {
		t.Error("commit root depends on mutation order of distinct accounts")
	}
}

// TestForkDivergence models the DAO fork: copy the state, apply the
// irregular state change on one side only, and check the roots diverge
// while the untouched side matches the original.
func TestForkDivergence(t *testing.T) {
	shared := NewEmpty()
	dao := addr(0xda)
	attacker := addr(0xa7)
	shared.AddBalance(dao, big.NewInt(1_000_000))
	shared.AddBalance(attacker, big.NewInt(50))
	preForkRoot, err := shared.Commit()
	if err != nil {
		t.Fatal(err)
	}

	eth, err := shared.Copy()
	if err != nil {
		t.Fatal(err)
	}
	etc, err := shared.Copy()
	if err != nil {
		t.Fatal(err)
	}

	// ETH side: move the DAO balance to a refund address.
	refund := addr(0x99)
	drained := eth.GetBalance(dao)
	eth.SubBalance(dao, drained)
	eth.AddBalance(refund, drained)
	ethRoot, err := eth.Commit()
	if err != nil {
		t.Fatal(err)
	}
	etcRoot, err := etc.Commit()
	if err != nil {
		t.Fatal(err)
	}

	if ethRoot == etcRoot {
		t.Error("fork should diverge the roots")
	}
	if etcRoot != preForkRoot {
		t.Error("untouched chain root should match pre-fork root")
	}
	if eth.GetBalance(refund).Int64() != 1_000_000 {
		t.Error("irregular state change lost funds")
	}
	if etc.GetBalance(dao).Int64() != 1_000_000 {
		t.Error("ETC should keep the original DAO balance")
	}
}

func TestCopyIsolation(t *testing.T) {
	s := NewEmpty()
	a := addr(9)
	s.AddBalance(a, big.NewInt(100))
	cp, err := s.Copy()
	if err != nil {
		t.Fatal(err)
	}
	cp.AddBalance(a, big.NewInt(900))
	if got := s.GetBalance(a); got.Int64() != 100 {
		t.Errorf("copy mutated original: %v", got)
	}
	if got := cp.GetBalance(a); got.Int64() != 1000 {
		t.Errorf("copy balance = %v, want 1000", got)
	}
}

func TestRevertInvalidSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid snapshot id")
		}
	}()
	NewEmpty().RevertToSnapshot(5)
}

func BenchmarkCommit100Accounts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewEmpty()
		for j := 0; j < 100; j++ {
			s.AddBalance(addr(byte(j)), big.NewInt(int64(j+1)))
		}
		if _, err := s.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAccountAppendToMatchesEncode pins the scratch-buffer account encoder
// to the rlp.Value model across the value shapes that change the encoding:
// zero/small/large nonces and balances, empty and set roots/code hashes.
func TestAccountAppendToMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []Account{
		{Balance: new(big.Int)},
		{Nonce: 1, Balance: big.NewInt(1)},
		{Nonce: 127, Balance: big.NewInt(127)},
		{Nonce: 128, Balance: big.NewInt(128)},
		{Nonce: ^uint64(0), Balance: new(big.Int).Lsh(big.NewInt(1), 255)},
	}
	for i := 0; i < 200; i++ {
		a := Account{
			Nonce:   r.Uint64() >> uint(r.Intn(64)),
			Balance: new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), uint(1+r.Intn(256)))),
		}
		r.Read(a.StorageRoot[:])
		r.Read(a.CodeHash[:])
		cases = append(cases, a)
	}
	scratch := make([]byte, 0, 128)
	for i, a := range cases {
		want := a.encode()
		got := a.appendTo(scratch[:0])
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: appendTo = %x, encode = %x", i, got, want)
		}
		dec, err := decodeAccount(got)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if dec.Nonce != a.Nonce || dec.Balance.Cmp(a.Balance) != 0 ||
			dec.StorageRoot != a.StorageRoot || dec.CodeHash != a.CodeHash {
			t.Fatalf("case %d: round-trip mismatch: %+v vs %+v", i, dec, a)
		}
	}
}
