package export

import (
	"bytes"
	"math/big"
	"net/http/httptest"
	"testing"

	"forkwatch/internal/chain"
	"forkwatch/internal/rpc"
	"forkwatch/internal/types"
)

// TestFromRPCMatchesFromStore is the round-trip guarantee: rows sourced
// over the JSON-RPC archive endpoint serialise byte-identically to rows
// read straight from the KV store — hex quantities, big difficulties and
// the receipt-joined contract flag all survive the wire.
func TestFromRPCMatchesFromStore(t *testing.T) {
	sender := types.HexToAddress("0xa11ce")
	contract := types.HexToAddress("0xc0de")
	gen := &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_000_000,
		Alloc: map[types.Address]*big.Int{
			sender: new(big.Int).Mul(big.NewInt(10), chain.Ether),
		},
		Code: map[types.Address][]byte{
			contract: {0x60, 0x60, 0x60},
		},
	}
	bc, err := chain.NewBlockchain(chain.MainnetLikeConfig(), gen)
	if err != nil {
		t.Fatal(err)
	}
	to := types.HexToAddress("0xb0b")
	mk := func(nonce uint64, dst types.Address) *chain.Transaction {
		return chain.NewTransaction(nonce, &dst, big.NewInt(5), 50_000, big.NewInt(1), nil).Sign(sender, 0)
	}
	// Block 1: plain transfer + contract call; block 2: empty; block 3:
	// one more transfer.
	for i, txs := range [][]*chain.Transaction{
		{mk(0, to), mk(1, contract)},
		nil,
		{mk(2, to)},
	} {
		blk, err := bc.BuildBlock(types.HexToAddress("0x9001"), bc.Head().Header.Time+uint64(14+i), txs)
		if err != nil {
			t.Fatal(err)
		}
		if err := bc.InsertBlock(blk); err != nil {
			t.Fatal(err)
		}
	}

	srv := rpc.NewServer(rpc.ServerConfig{Workers: 2})
	defer srv.Close()
	srv.RegisterChain(rpc.NewBackend("ETH", bc))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	fromStoreBlocks, fromStoreTxs, err := FromStore("ETH", bc.Store())
	if err != nil {
		t.Fatalf("FromStore: %v", err)
	}
	fromRPCBlocks, fromRPCTxs, err := FromRPC("ETH", rpc.NewClient(ts.URL+"/eth", nil))
	if err != nil {
		t.Fatalf("FromRPC: %v", err)
	}

	if len(fromRPCTxs) != 3 {
		t.Fatalf("FromRPC txs = %d, want 3", len(fromRPCTxs))
	}
	if !fromRPCTxs[1].Contract {
		t.Error("contract-call tx should carry the receipt's contract flag")
	}

	var storeB, rpcB, storeT, rpcT bytes.Buffer
	if err := WriteBlocks(&storeB, fromStoreBlocks); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlocks(&rpcB, fromRPCBlocks); err != nil {
		t.Fatal(err)
	}
	if err := WriteTxs(&storeT, fromStoreTxs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTxs(&rpcT, fromRPCTxs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeB.Bytes(), rpcB.Bytes()) {
		t.Errorf("block CSVs differ:\nstore:\n%s\nrpc:\n%s", storeB.String(), rpcB.String())
	}
	if !bytes.Equal(storeT.Bytes(), rpcT.Bytes()) {
		t.Errorf("tx CSVs differ:\nstore:\n%s\nrpc:\n%s", storeT.String(), rpcT.String())
	}
}
