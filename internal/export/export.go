// Package export persists ledgers to CSV — the equivalent of the paper's
// §3.1 pipeline, which dumped every block and transaction from its two
// full nodes into a database and ran the analysis offline. cmd/forksim
// exports simulated ledgers; cmd/forkanalyze reloads exports and re-runs
// the full figure pipeline without re-simulating.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"forkwatch/internal/chain"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

// BlockRow is one exported block record.
type BlockRow struct {
	Chain      string
	Number     uint64
	Hash       types.Hash
	Time       uint64
	Difficulty *big.Int
	Coinbase   types.Address
	TxCount    int
}

// TxRow is one exported transaction record.
type TxRow struct {
	Chain       string
	BlockNumber uint64
	BlockTime   uint64
	Hash        types.Hash
	From        types.Address
	Nonce       uint64
	ChainID     uint64
	Contract    bool
}

// blockHeader is the CSV header of the block table.
var blockHeader = []string{"chain", "number", "hash", "time", "difficulty", "coinbase", "txcount"}

// txHeader is the CSV header of the transaction table.
var txHeader = []string{"chain", "block", "blocktime", "hash", "from", "nonce", "chainid", "contract"}

// BlockHeader returns the block-table CSV header.
func BlockHeader() []string { return blockHeader }

// TxHeader returns the transaction-table CSV header.
func TxHeader() []string { return txHeader }

// EncodeBlockRow renders one block row exactly as WriteBlocks does — the
// shared formatting layer that lets the streaming analyzer's CSVs
// converge byte-identically with the batch export.
func EncodeBlockRow(r BlockRow) []string {
	return []string{
		r.Chain,
		strconv.FormatUint(r.Number, 10),
		r.Hash.Hex(),
		strconv.FormatUint(r.Time, 10),
		r.Difficulty.String(),
		r.Coinbase.Hex(),
		strconv.Itoa(r.TxCount),
	}
}

// EncodeTxRow renders one transaction row exactly as WriteTxs does.
func EncodeTxRow(r TxRow) []string {
	return []string{
		r.Chain,
		strconv.FormatUint(r.BlockNumber, 10),
		strconv.FormatUint(r.BlockTime, 10),
		r.Hash.Hex(),
		r.From.Hex(),
		strconv.FormatUint(r.Nonce, 10),
		strconv.FormatUint(r.ChainID, 10),
		strconv.FormatBool(r.Contract),
	}
}

// WriteBlocks writes block rows as CSV.
func WriteBlocks(w io.Writer, rows []BlockRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(blockHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(EncodeBlockRow(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTxs writes transaction rows as CSV.
func WriteTxs(w io.Writer, rows []TxRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(txHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(EncodeTxRow(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadBlocks parses a block CSV.
func ReadBlocks(r io.Reader) ([]BlockRow, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("export: empty block table")
	}
	if err := checkHeader(recs[0], blockHeader); err != nil {
		return nil, err
	}
	rows := make([]BlockRow, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != len(blockHeader) {
			return nil, fmt.Errorf("export: block row %d has %d fields", i+1, len(rec))
		}
		num, err := strconv.ParseUint(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("export: block row %d number: %w", i+1, err)
		}
		tm, err := strconv.ParseUint(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("export: block row %d time: %w", i+1, err)
		}
		diff, ok := new(big.Int).SetString(rec[4], 10)
		if !ok {
			return nil, fmt.Errorf("export: block row %d difficulty %q", i+1, rec[4])
		}
		txc, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("export: block row %d txcount: %w", i+1, err)
		}
		rows = append(rows, BlockRow{
			Chain:      rec[0],
			Number:     num,
			Hash:       types.HexToHash(rec[2]),
			Time:       tm,
			Difficulty: diff,
			Coinbase:   types.HexToAddress(rec[5]),
			TxCount:    txc,
		})
	}
	return rows, nil
}

// ReadTxs parses a transaction CSV.
func ReadTxs(r io.Reader) ([]TxRow, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("export: empty tx table")
	}
	if err := checkHeader(recs[0], txHeader); err != nil {
		return nil, err
	}
	rows := make([]TxRow, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != len(txHeader) {
			return nil, fmt.Errorf("export: tx row %d has %d fields", i+1, len(rec))
		}
		blockNum, err := strconv.ParseUint(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("export: tx row %d block: %w", i+1, err)
		}
		blockTime, err := strconv.ParseUint(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("export: tx row %d blocktime: %w", i+1, err)
		}
		nonce, err := strconv.ParseUint(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("export: tx row %d nonce: %w", i+1, err)
		}
		chainID, err := strconv.ParseUint(rec[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("export: tx row %d chainid: %w", i+1, err)
		}
		contract, err := strconv.ParseBool(rec[7])
		if err != nil {
			return nil, fmt.Errorf("export: tx row %d contract: %w", i+1, err)
		}
		rows = append(rows, TxRow{
			Chain:       rec[0],
			BlockNumber: blockNum,
			BlockTime:   blockTime,
			Hash:        types.HexToHash(rec[3]),
			From:        types.HexToAddress(rec[4]),
			Nonce:       nonce,
			ChainID:     chainID,
			Contract:    contract,
		})
	}
	return rows, nil
}

func checkHeader(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("export: header %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("export: header %v, want %v", got, want)
		}
	}
	return nil
}

// FromBlockchain extracts rows from a full ledger's canonical chain
// (blocks 1..head; genesis carries no transactions).
func FromBlockchain(name string, bc *chain.Blockchain) ([]BlockRow, []TxRow) {
	var blocks []BlockRow
	var txs []TxRow
	for _, b := range bc.CanonicalBlocks(1, bc.Head().Number()) {
		blocks = append(blocks, BlockRow{
			Chain:      name,
			Number:     b.Number(),
			Hash:       b.Hash(),
			Time:       b.Header.Time,
			Difficulty: b.Header.Difficulty,
			Coinbase:   b.Header.Coinbase,
			TxCount:    len(b.Txs),
		})
		receipts, _, _ := bc.Receipts(b.Hash())
		for i, tx := range b.Txs {
			row := TxRow{
				Chain:       name,
				BlockNumber: b.Number(),
				BlockTime:   b.Header.Time,
				Hash:        tx.Hash(),
				From:        tx.From,
				Nonce:       tx.Nonce,
				ChainID:     tx.ChainID,
			}
			if receipts != nil && i < len(receipts) {
				row.Contract = receipts[i].ContractCall
			}
			txs = append(txs, row)
		}
	}
	return blocks, txs
}

// FromStore extracts rows directly from a chain's KV persistence schema,
// walking the stored canonical index from block 1 to the stored head: the
// offline counterpart of FromBlockchain, needing no live Blockchain (or
// its in-memory caches), only the store.
func FromStore(name string, st *chain.Store) ([]BlockRow, []TxRow, error) {
	headHash, ok, err := st.Head()
	if err != nil {
		return nil, nil, fmt.Errorf("export: reading head marker: %w", err)
	}
	if !ok {
		return nil, nil, fmt.Errorf("export: store has no head marker")
	}
	head, ok, err := st.Block(headHash)
	if err != nil {
		return nil, nil, fmt.Errorf("export: reading head block: %w", err)
	}
	if !ok {
		return nil, nil, fmt.Errorf("export: head block %s missing from store", headHash)
	}
	var blocks []BlockRow
	var txs []TxRow
	for n := uint64(1); n <= head.Number(); n++ {
		h, ok, err := st.CanonHash(n)
		if err != nil {
			return nil, nil, fmt.Errorf("export: reading canon index %d: %w", n, err)
		}
		if !ok {
			continue
		}
		b, ok, err := st.Block(h)
		if err != nil {
			return nil, nil, fmt.Errorf("export: reading canonical block %d: %w", n, err)
		}
		if !ok {
			return nil, nil, fmt.Errorf("export: canonical block %d (%s) missing from store", n, h)
		}
		blocks = append(blocks, BlockRow{
			Chain:      name,
			Number:     b.Number(),
			Hash:       b.Hash(),
			Time:       b.Header.Time,
			Difficulty: b.Header.Difficulty,
			Coinbase:   b.Header.Coinbase,
			TxCount:    len(b.Txs),
		})
		receipts, _, err := st.Receipts(h)
		if err != nil {
			return nil, nil, fmt.Errorf("export: reading receipts of block %d: %w", n, err)
		}
		for i, tx := range b.Txs {
			row := TxRow{
				Chain:       name,
				BlockNumber: b.Number(),
				BlockTime:   b.Header.Time,
				Hash:        tx.Hash(),
				From:        tx.From,
				Nonce:       tx.Nonce,
				ChainID:     tx.ChainID,
			}
			if receipts != nil && i < len(receipts) {
				row.Contract = receipts[i].ContractCall
			}
			txs = append(txs, row)
		}
	}
	return blocks, txs, nil
}

// Recorder is a sim.Observer that captures rows during a simulation run,
// in either ledger mode.
type Recorder struct {
	Blocks []BlockRow
	Txs    []TxRow
	Days   []DayRow
}

// OnBlock implements sim.Observer.
func (rec *Recorder) OnBlock(ev *sim.BlockEvent) {
	rec.Blocks = append(rec.Blocks, BlockRow{
		Chain:      ev.Chain,
		Number:     ev.Number,
		Time:       ev.Time,
		// The event is pooled and its Difficulty buffer is recycled at the
		// day barrier; a retaining observer must copy it.
		Difficulty: types.BigCopy(ev.Difficulty),
		Coinbase:   ev.Coinbase,
		TxCount:    len(ev.Txs),
	})
	for _, tx := range ev.Txs {
		row := TxRow{
			Chain:       ev.Chain,
			BlockNumber: ev.Number,
			BlockTime:   ev.Time,
			Hash:        tx.Hash,
			From:        tx.From,
			Contract:    tx.Contract,
		}
		if tx.ChainBound {
			row.ChainID = 1 // the exact id is a per-chain constant
		}
		rec.Txs = append(rec.Txs, row)
	}
}

// OnDay implements sim.Observer.
func (rec *Recorder) OnDay(ev *sim.DayEvent) {
	row := DayRow{
		Day:      ev.Day,
		Chains:   make([]string, len(ev.Partitions)),
		USD:      make([]float64, len(ev.Partitions)),
		Hashrate: make([]float64, len(ev.Partitions)),
	}
	for i, pd := range ev.Partitions {
		row.Chains[i] = pd.Name
		row.USD[i] = pd.USD
		row.Hashrate[i] = pd.Hashrate
	}
	rec.Days = append(rec.Days, row)
}

// DayRow is one exported day record (prices and hashrates — the
// "coinmarketcap join" of the paper's pipeline): parallel slices in
// partition order.
type DayRow struct {
	Day      int
	Chains   []string
	USD      []float64
	Hashrate []float64
}

// Value returns the row's (usd, hashrate) for a chain; zeros if absent.
func (r DayRow) Value(chain string) (usd, hashrate float64) {
	for i, c := range r.Chains {
		if c == chain {
			return r.USD[i], r.Hashrate[i]
		}
	}
	return 0, 0
}

// dayHeader builds the day-table CSV header for a chain list: "day", the
// per-chain usd columns, then the per-chain hashrate columns — for the
// historical pair exactly the legacy "day,ethusd,etcusd,ethhashrate,
// etchashrate" layout.
func dayHeader(chains []string) []string {
	out := []string{"day"}
	for _, c := range chains {
		out = append(out, strings.ToLower(c)+"usd")
	}
	for _, c := range chains {
		out = append(out, strings.ToLower(c)+"hashrate")
	}
	return out
}

// DayHeader returns the day-table CSV header for a chain list.
func DayHeader(chains []string) []string { return dayHeader(chains) }

// EncodeDayRow renders one day row exactly as WriteDays does.
func EncodeDayRow(r DayRow) []string {
	rec := []string{strconv.Itoa(r.Day)}
	for _, v := range r.USD {
		rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, v := range r.Hashrate {
		rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return rec
}

// WriteDays writes day rows as CSV. All rows must share one chain list
// (one simulation's partitions).
func WriteDays(w io.Writer, rows []DayRow) error {
	cw := csv.NewWriter(w)
	var chains []string
	if len(rows) > 0 {
		chains = rows[0].Chains
	}
	if err := cw.Write(dayHeader(chains)); err != nil {
		return err
	}
	for i, r := range rows {
		if len(r.Chains) != len(chains) || len(r.USD) != len(chains) || len(r.Hashrate) != len(chains) {
			return fmt.Errorf("export: day row %d has %d chains, want %d", i, len(r.Chains), len(chains))
		}
		if err := cw.Write(EncodeDayRow(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDays parses a day CSV, recovering the chain list from the header's
// <chain>usd / <chain>hashrate column pairs.
func ReadDays(r io.Reader) ([]DayRow, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("export: empty day table")
	}
	header := recs[0]
	if len(header) < 1 || header[0] != "day" || len(header)%2 == 0 {
		return nil, fmt.Errorf("export: bad day header %v", header)
	}
	k := (len(header) - 1) / 2
	chains := make([]string, k)
	for i := 0; i < k; i++ {
		u := header[1+i]
		h := header[1+k+i]
		name := strings.TrimSuffix(u, "usd")
		if name == u || strings.TrimSuffix(h, "hashrate") != name {
			return nil, fmt.Errorf("export: bad day header %v: columns %q/%q", header, u, h)
		}
		chains[i] = strings.ToUpper(name)
	}
	rows := make([]DayRow, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("export: day row %d has %d fields", i+1, len(rec))
		}
		day, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("export: day row %d: %w", i+1, err)
		}
		vals := make([]float64, 2*k)
		for j := range vals {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("export: day row %d field %d: %w", i+1, j+1, err)
			}
			vals[j] = v
		}
		rows = append(rows, DayRow{Day: day, Chains: chains, USD: vals[:k], Hashrate: vals[k : 2*k]})
	}
	return rows, nil
}

// Replay feeds exported rows back through a sim.Observer (typically the
// analysis collector), reconstructing block events in time order. Day
// indices derive from epoch and dayLength. Per-chain deltas are recomputed
// from consecutive block times.
func Replay(blocks []BlockRow, txs []TxRow, epoch uint64, dayLength uint64, obs sim.Observer) {
	// Interleave by mining time: echo detection is first-seen ordering
	// across chains, so replay must present blocks globally in time
	// order, exactly as the live simulation did.
	sort.SliceStable(blocks, func(i, j int) bool {
		if blocks[i].Time != blocks[j].Time {
			return blocks[i].Time < blocks[j].Time
		}
		if blocks[i].Chain != blocks[j].Chain {
			return blocks[i].Chain < blocks[j].Chain
		}
		return blocks[i].Number < blocks[j].Number
	})
	txByBlock := make(map[string][]TxRow)
	for _, t := range txs {
		key := t.Chain + "#" + strconv.FormatUint(t.BlockNumber, 10)
		txByBlock[key] = append(txByBlock[key], t)
	}
	lastTime := map[string]uint64{}
	for _, b := range blocks {
		prev, ok := lastTime[b.Chain]
		if !ok {
			prev = epoch
		}
		lastTime[b.Chain] = b.Time
		ev := &sim.BlockEvent{
			Chain:      b.Chain,
			Day:        int((b.Time - epoch) / dayLength),
			Number:     b.Number,
			Time:       b.Time,
			Delta:      b.Time - prev,
			Difficulty: b.Difficulty,
			Coinbase:   b.Coinbase,
		}
		key := b.Chain + "#" + strconv.FormatUint(b.Number, 10)
		for _, t := range txByBlock[key] {
			ev.Txs = append(ev.Txs, sim.TxInfo{
				Hash:       t.Hash,
				From:       t.From,
				Contract:   t.Contract,
				ChainBound: t.ChainID != 0,
			})
		}
		obs.OnBlock(ev)
	}
}

// ReplayAll replays block/tx rows and then synthesises the per-day events
// (prices from the day table; difficulty from each chain's last block of
// the day), so an analysis collector reconstructs every figure — Fig 3
// included — from a pure export.
func ReplayAll(blocks []BlockRow, txs []TxRow, days []DayRow, epoch, dayLength uint64, obs sim.Observer) {
	Replay(blocks, txs, epoch, dayLength, obs)

	// Chain order: the day table's partition order when present, with any
	// chains appearing only in the block table appended first-seen.
	var chains []string
	seen := map[string]bool{}
	if len(days) > 0 {
		for _, c := range days[0].Chains {
			chains = append(chains, c)
			seen[c] = true
		}
	}
	for _, b := range blocks {
		if !seen[b.Chain] {
			seen[b.Chain] = true
			chains = append(chains, b.Chain)
		}
	}

	// Last difficulty per (chain, day), carried forward over empty days.
	lastDiff := map[string]map[int]*big.Int{}
	carry := map[string]*big.Int{}
	for _, c := range chains {
		lastDiff[c] = map[int]*big.Int{}
		carry[c] = new(big.Int)
	}
	maxDay := 0
	for _, b := range blocks {
		if b.Time < epoch {
			continue
		}
		d := int((b.Time - epoch) / dayLength)
		lastDiff[b.Chain][d] = b.Difficulty
		if d > maxDay {
			maxDay = d
		}
	}
	diffAt := func(chain string, d int) *big.Int {
		if v, ok := lastDiff[chain][d]; ok {
			carry[chain] = v
		}
		return carry[chain]
	}
	dayRow := make(map[int]DayRow, len(days))
	for _, r := range days {
		dayRow[r.Day] = r
		if r.Day > maxDay {
			maxDay = r.Day
		}
	}
	for d := 0; d <= maxDay; d++ {
		r := dayRow[d]
		ev := &sim.DayEvent{Day: d, Partitions: make([]sim.PartitionDay, len(chains))}
		for i, c := range chains {
			usd, hashrate := r.Value(c)
			ev.Partitions[i] = sim.PartitionDay{
				Name:       c,
				USD:        usd,
				Hashrate:   hashrate,
				Difficulty: diffAt(c, d),
			}
		}
		obs.OnDay(ev)
	}
}
