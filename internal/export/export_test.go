package export

import (
	"bytes"
	"math/big"
	"reflect"
	"strings"
	"testing"

	"forkwatch/internal/chain"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

func sampleBlocks() []BlockRow {
	return []BlockRow{
		{Chain: "ETH", Number: 1, Hash: types.HexToHash("0x01"), Time: 1000,
			Difficulty: big.NewInt(131072), Coinbase: types.HexToAddress("0xaa"), TxCount: 2},
		{Chain: "ETH", Number: 2, Hash: types.HexToHash("0x02"), Time: 1014,
			Difficulty: big.NewInt(131136), Coinbase: types.HexToAddress("0xbb"), TxCount: 0},
	}
}

func sampleTxs() []TxRow {
	return []TxRow{
		{Chain: "ETH", BlockNumber: 1, BlockTime: 1000, Hash: types.HexToHash("0xt1"),
			From: types.HexToAddress("0xee"), Nonce: 0, ChainID: 0, Contract: false},
		{Chain: "ETH", BlockNumber: 1, BlockTime: 1000, Hash: types.HexToHash("0xt2"),
			From: types.HexToAddress("0xee"), Nonce: 1, ChainID: 1, Contract: true},
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlocks(&buf, sampleBlocks()); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadBlocks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleBlocks()
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := range rows {
		if rows[i].Chain != want[i].Chain || rows[i].Number != want[i].Number ||
			rows[i].Hash != want[i].Hash || rows[i].Time != want[i].Time ||
			rows[i].Difficulty.Cmp(want[i].Difficulty) != 0 ||
			rows[i].Coinbase != want[i].Coinbase || rows[i].TxCount != want[i].TxCount {
			t.Errorf("row %d mismatch: %+v vs %+v", i, rows[i], want[i])
		}
	}
}

func TestTxsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTxs(&buf, sampleTxs()); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadTxs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleTxs()
	for i := range rows {
		if rows[i] != want[i] {
			t.Errorf("row %d mismatch: %+v vs %+v", i, rows[i], want[i])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := ReadBlocks(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadBlocks(strings.NewReader("wrong,header\n")); err == nil {
		t.Error("wrong header should fail")
	}
	bad := "chain,number,hash,time,difficulty,coinbase,txcount\nETH,notanumber,0x,0,1,0x,0\n"
	if _, err := ReadBlocks(strings.NewReader(bad)); err == nil {
		t.Error("bad number should fail")
	}
	if _, err := ReadTxs(strings.NewReader("x\n")); err == nil {
		t.Error("bad tx header should fail")
	}
}

func TestFromBlockchain(t *testing.T) {
	gen := &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_000_000,
		Alloc: map[types.Address]*big.Int{
			types.HexToAddress("0xa11ce"): new(big.Int).Mul(big.NewInt(10), chain.Ether),
		},
	}
	bc, err := chain.NewBlockchain(chain.MainnetLikeConfig(), gen)
	if err != nil {
		t.Fatal(err)
	}
	to := types.HexToAddress("0xb0b")
	tx := chain.NewTransaction(0, &to, big.NewInt(5), 21_000, big.NewInt(1), nil).
		Sign(types.HexToAddress("0xa11ce"), 0)
	blk, err := bc.BuildBlock(types.HexToAddress("0x9001"), gen.Time+14, []*chain.Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(blk); err != nil {
		t.Fatal(err)
	}
	blocks, txs := FromBlockchain("ETH", bc)
	if len(blocks) != 1 || len(txs) != 1 {
		t.Fatalf("rows = %d blocks, %d txs", len(blocks), len(txs))
	}
	if blocks[0].Hash != blk.Hash() || txs[0].Hash != tx.Hash() {
		t.Error("exported hashes do not match the chain")
	}
}

// collectorStub counts replayed events.
type collectorStub struct {
	blocks int
	txs    int
	echo   map[types.Hash]int
	deltas []uint64
	days   []int
}

func (c *collectorStub) OnBlock(ev *sim.BlockEvent) {
	c.blocks++
	c.txs += len(ev.Txs)
	c.deltas = append(c.deltas, ev.Delta)
	c.days = append(c.days, ev.Day)
	for _, tx := range ev.Txs {
		if c.echo == nil {
			c.echo = map[types.Hash]int{}
		}
		c.echo[tx.Hash]++
	}
}
func (c *collectorStub) OnDay(*sim.DayEvent) {}

func TestReplayReconstructsEvents(t *testing.T) {
	blocks := []BlockRow{
		{Chain: "ETH", Number: 2, Time: 1028, Difficulty: big.NewInt(2)},
		{Chain: "ETH", Number: 1, Time: 1014, Difficulty: big.NewInt(1)},
		{Chain: "ETC", Number: 1, Time: 90_000, Difficulty: big.NewInt(3)},
	}
	txs := []TxRow{
		{Chain: "ETH", BlockNumber: 1, Hash: types.HexToHash("0xt1")},
		{Chain: "ETC", BlockNumber: 1, Hash: types.HexToHash("0xt1")},
	}
	stub := &collectorStub{}
	Replay(blocks, txs, 1000, 86_400, stub)
	if stub.blocks != 3 || stub.txs != 2 {
		t.Fatalf("replayed %d blocks, %d txs", stub.blocks, stub.txs)
	}
	// Replay interleaves globally by time — ETH@1014, ETH@1028,
	// ETC@90000 — with per-chain deltas recomputed from consecutive
	// times (first block measured from the epoch).
	if stub.deltas[0] != 14 || stub.deltas[1] != 14 || stub.deltas[2] != 89_000 {
		t.Errorf("deltas = %v", stub.deltas)
	}
	// ETH blocks land on day 0; the ETC block at t=90000 on day 1.
	if stub.days[0] != 0 || stub.days[2] != 1 {
		t.Errorf("days = %v", stub.days)
	}
	if stub.echo[types.HexToHash("0xt1")] != 2 {
		t.Error("echoed tx should appear twice")
	}
}

// TestRecorderEndToEnd runs a short sim with a Recorder, exports, reloads
// and replays into a stub, checking counts survive the full round trip.
func TestRecorderEndToEnd(t *testing.T) {
	sc := sim.NewScenario(3, 2)
	sc.DayLength = 3600
	sc.Users = 30
	sc.ETHTxPerDay = 20
	sc.ETCTxPerDay = 8
	eng, err := sim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	eng.AddObserver(rec)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) == 0 {
		t.Fatal("recorder captured nothing")
	}

	var bbuf, tbuf bytes.Buffer
	if err := WriteBlocks(&bbuf, rec.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := WriteTxs(&tbuf, rec.Txs); err != nil {
		t.Fatal(err)
	}
	blocks, err := ReadBlocks(&bbuf)
	if err != nil {
		t.Fatal(err)
	}
	txs, err := ReadTxs(&tbuf)
	if err != nil {
		t.Fatal(err)
	}
	stub := &collectorStub{}
	Replay(blocks, txs, sc.Epoch, sc.DayLength, stub)
	if stub.blocks != len(rec.Blocks) {
		t.Errorf("replayed %d blocks, recorded %d", stub.blocks, len(rec.Blocks))
	}
	if stub.txs != len(rec.Txs) {
		t.Errorf("replayed %d txs, recorded %d", stub.txs, len(rec.Txs))
	}
}

func TestDaysRoundTrip(t *testing.T) {
	chains := []string{"ETH", "ETC"}
	rows := []DayRow{
		{Day: 0, Chains: chains, USD: []float64{12, 1.2}, Hashrate: []float64{4.9e12, 1e11}},
		{Day: 1, Chains: chains, USD: []float64{12.5, 1.1}, Hashrate: []float64{4.8e12, 2e11}},
	}
	var buf bytes.Buffer
	if err := WriteDays(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDays(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip returned %d rows", len(got))
	}
	for i, row := range got {
		if row.Day != rows[i].Day ||
			!reflect.DeepEqual(row.Chains, rows[i].Chains) ||
			!reflect.DeepEqual(row.USD, rows[i].USD) ||
			!reflect.DeepEqual(row.Hashrate, rows[i].Hashrate) {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, row, rows[i])
		}
	}
	if _, err := ReadDays(strings.NewReader("bad\n")); err == nil {
		t.Error("bad header should fail")
	}
}

// dayCollector records replayed day events.
type dayCollector struct {
	collectorStub
	days []*sim.DayEvent
}

func (d *dayCollector) OnDay(ev *sim.DayEvent) { d.days = append(d.days, ev) }

func TestReplayAllSynthesisesDayEvents(t *testing.T) {
	blocks := []BlockRow{
		{Chain: "ETH", Number: 1, Time: 1014, Difficulty: big.NewInt(100)},
		{Chain: "ETH", Number: 2, Time: 1028, Difficulty: big.NewInt(110)},
		{Chain: "ETC", Number: 1, Time: 1050, Difficulty: big.NewInt(9)},
		{Chain: "ETH", Number: 3, Time: 90_000, Difficulty: big.NewInt(120)},
	}
	chains := []string{"ETH", "ETC"}
	days := []DayRow{
		{Day: 0, Chains: chains, USD: []float64{12, 1.2}, Hashrate: []float64{0, 0}},
		{Day: 1, Chains: chains, USD: []float64{13, 1.3}, Hashrate: []float64{0, 0}},
	}
	col := &dayCollector{}
	ReplayAll(blocks, nil, days, 1000, 86_400, col)
	if len(col.days) != 2 {
		t.Fatalf("day events = %d, want 2", len(col.days))
	}
	d0eth, d0etc := col.days[0].Partition("ETH"), col.days[0].Partition("ETC")
	if d0eth == nil || d0etc == nil {
		t.Fatalf("day 0 missing partitions: %+v", col.days[0])
	}
	if d0eth.USD != 12 || d0eth.Difficulty.Int64() != 110 || d0etc.Difficulty.Int64() != 9 {
		t.Errorf("day 0 = %+v", col.days[0])
	}
	// Day 1: ETH difficulty from its block; ETC carries day 0 forward.
	d1eth, d1etc := col.days[1].Partition("ETH"), col.days[1].Partition("ETC")
	if d1eth.Difficulty.Int64() != 120 || d1etc.Difficulty.Int64() != 9 || d1etc.USD != 1.3 {
		t.Errorf("day 1 = %+v", col.days[1])
	}
}
