package export

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"forkwatch/internal/rpc"
	"forkwatch/internal/types"
)

// wireBlock mirrors the eth_getBlockByNumber result shape (full txs).
type wireBlock struct {
	Number       string   `json:"number"`
	Hash         string   `json:"hash"`
	Timestamp    string   `json:"timestamp"`
	Difficulty   string   `json:"difficulty"`
	Miner        string   `json:"miner"`
	Transactions []wireTx `json:"transactions"`
}

// wireTx mirrors the transaction object inside a full block.
type wireTx struct {
	Hash    string `json:"hash"`
	From    string `json:"from"`
	Nonce   string `json:"nonce"`
	ChainID string `json:"chainId"`
}

// wireReceipt mirrors the eth_getTransactionReceipt result shape.
type wireReceipt struct {
	TxHash       string `json:"transactionHash"`
	ContractCall bool   `json:"contractCall"`
}

func wireUint(s, what string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("export: bad %s quantity %q: %w", what, s, err)
	}
	return v, nil
}

func wireBig(s, what string) (*big.Int, error) {
	v, ok := new(big.Int).SetString(strings.TrimPrefix(s, "0x"), 16)
	if !ok {
		return nil, fmt.Errorf("export: bad %s quantity %q", what, s)
	}
	return v, nil
}

// FromRPC extracts rows over a chain's JSON-RPC endpoint — the same
// "dump every block and transaction" pipeline as FromStore, but run
// remotely the way the paper drove its two full nodes. The output is
// byte-identical to FromStore over the same chain: blocks 1..head in
// order, receipts joined per transaction for the contract-call flag.
// Receipts are fetched as one batch per block to amortise round trips.
func FromRPC(name string, cl *rpc.Client) ([]BlockRow, []TxRow, error) {
	var headHex string
	if err := cl.Call(&headHex, "eth_blockNumber"); err != nil {
		return nil, nil, fmt.Errorf("export: eth_blockNumber: %w", err)
	}
	head, err := wireUint(headHex, "head")
	if err != nil {
		return nil, nil, err
	}
	var blocks []BlockRow
	var txs []TxRow
	for n := uint64(1); n <= head; n++ {
		var blk *wireBlock
		if err := cl.Call(&blk, "eth_getBlockByNumber", fmt.Sprintf("0x%x", n), true); err != nil {
			return nil, nil, fmt.Errorf("export: eth_getBlockByNumber(%d): %w", n, err)
		}
		if blk == nil {
			// Absent canonical entry: FromStore skips these too.
			continue
		}
		num, err := wireUint(blk.Number, "block number")
		if err != nil {
			return nil, nil, err
		}
		tm, err := wireUint(blk.Timestamp, "timestamp")
		if err != nil {
			return nil, nil, err
		}
		diff, err := wireBig(blk.Difficulty, "difficulty")
		if err != nil {
			return nil, nil, err
		}
		blocks = append(blocks, BlockRow{
			Chain:      name,
			Number:     num,
			Hash:       types.HexToHash(blk.Hash),
			Time:       tm,
			Difficulty: diff,
			Coinbase:   types.HexToAddress(blk.Miner),
			TxCount:    len(blk.Transactions),
		})
		if len(blk.Transactions) == 0 {
			continue
		}
		recs := make([]*wireReceipt, len(blk.Transactions))
		elems := make([]rpc.BatchElem, len(blk.Transactions))
		for i, tx := range blk.Transactions {
			elems[i] = rpc.BatchElem{
				Method: "eth_getTransactionReceipt",
				Params: []any{tx.Hash},
				Result: &recs[i],
			}
		}
		if err := cl.Batch(elems); err != nil {
			return nil, nil, fmt.Errorf("export: receipt batch for block %d: %w", n, err)
		}
		for i, tx := range blk.Transactions {
			if elems[i].Err != nil {
				return nil, nil, fmt.Errorf("export: receipt of %s: %w", tx.Hash, elems[i].Err)
			}
			nonce, err := wireUint(tx.Nonce, "nonce")
			if err != nil {
				return nil, nil, err
			}
			chainID, err := wireUint(tx.ChainID, "chainId")
			if err != nil {
				return nil, nil, err
			}
			row := TxRow{
				Chain:       name,
				BlockNumber: num,
				BlockTime:   tm,
				Hash:        types.HexToHash(tx.Hash),
				From:        types.HexToAddress(tx.From),
				Nonce:       nonce,
				ChainID:     chainID,
			}
			if recs[i] != nil {
				row.Contract = recs[i].ContractCall
			}
			txs = append(txs, row)
		}
	}
	return blocks, txs, nil
}
