// Package market models the economic coupling between the two partitions:
// daily USD exchange rates for ETH and ETC and the hashrate arbitrage that
// the paper's Figure 3 shows operating efficiently.
//
// Substitution (DESIGN.md §2): the paper joins its ledgers with
// coinmarketcap daily price data, which is unavailable offline. We generate
// prices from a coupled geometric random walk — one shared market factor
// plus per-chain idiosyncratic noise and the two exogenous events the
// paper identifies (the Zcash launch pulling miners away in late October
// 2016, and the March 2017 ETH rally) — and implement the arbitrage
// mechanism the paper hypothesises: miners shift hashrate toward the chain
// paying more USD per hash, equalising expected hashes-per-USD.
package market

import (
	"math"
	"math/big"
	"math/rand"
)

// Params configures the price generator.
type Params struct {
	// Days is the number of daily samples to generate.
	Days int
	// ETH0 and ETC0 are the day-0 USD prices (post-fork: ~$12 / ~$1).
	ETH0, ETC0 float64
	// SharedVol is the daily volatility of the common market factor;
	// IdioVol the per-chain idiosyncratic volatility. SharedVol >>
	// IdioVol keeps the two prices strongly coupled, as observed.
	SharedVol, IdioVol float64
	// Drift is the common daily log drift.
	Drift float64
	// ETHEdge is an extra daily ETH log drift over the whole horizon:
	// ETH's market value pulled away from ETC's throughout the study
	// window (observation O3's divergence), which via arbitrage is what
	// keeps ETC's hashrate roughly flat while ETH's grows.
	ETHEdge float64

	// RallyStartDay begins the March-2017 rally (≈ day 240 after the
	// July 20 2016 fork); RallyDrift is the extra daily ETH log drift
	// during it. Zero disables. RallyETCShare is the fraction of the
	// rally drift ETC also enjoys (the whole market rose in March 2017,
	// ETH just rose faster), which keeps the end-of-study difficulty
	// ratio near the paper's ~10x instead of letting arbitrage strip
	// ETC bare.
	RallyStartDay int
	RallyDrift    float64
	RallyETCShare float64
}

// DefaultParams returns the calibration used by the Fig 2/3 scenarios.
func DefaultParams(days int) Params {
	return Params{
		Days:          days,
		ETH0:          12.0,
		ETC0:          1.2,
		SharedVol:     0.03,
		IdioVol:       0.01,
		Drift:         0.001,
		ETHEdge:       0.0015,
		RallyStartDay: 240,
		RallyDrift:    0.03,
		RallyETCShare: 0.6,
	}
}

// ChainParams configures one partition's leg of the coupled price walk.
// The legacy two-way calibration maps onto two entries: the pro-fork
// chain gets {ETH0, ETHEdge, 1} and the classic chain {ETC0, 0,
// RallyETCShare}.
type ChainParams struct {
	// Price0 is the day-0 USD price.
	Price0 float64
	// DriftEdge is extra daily log drift on top of the shared Drift.
	DriftEdge float64
	// RallyShare is the fraction of RallyDrift this chain enjoys.
	RallyShare float64
}

// Series holds aligned daily price samples.
type Series struct {
	ETHUSD []float64
	ETCUSD []float64
}

// GenerateSeries draws every partition's daily USD price from the coupled
// walk: one shared market factor per day, then one idiosyncratic draw per
// chain in list order. The returned slice aligns with chains; element i
// holds p.Days samples. The per-day draw order (shared, then each chain)
// is part of the deterministic contract — reordering it would change
// byte-identical outputs.
func GenerateSeries(p Params, chains []ChainParams, r *rand.Rand) [][]float64 {
	out := make([][]float64, len(chains))
	cur := make([]float64, len(chains))
	for i, c := range chains {
		out[i] = make([]float64, p.Days)
		cur[i] = c.Price0
	}
	for d := 0; d < p.Days; d++ {
		for i := range chains {
			out[i][d] = cur[i]
		}
		shared := r.NormFloat64() * p.SharedVol
		for i, c := range chains {
			drift := p.Drift + c.DriftEdge
			if p.RallyDrift != 0 && d >= p.RallyStartDay {
				drift += p.RallyDrift * c.RallyShare
			}
			cur[i] *= math.Exp(drift + shared + r.NormFloat64()*p.IdioVol)
		}
	}
	return out
}

// LegacyChainParams maps Params' two-way calibration onto the ChainParams
// list GenerateSeries consumes: the pro-fork leg first, the classic leg
// second.
func LegacyChainParams(p Params) []ChainParams {
	return []ChainParams{
		{Price0: p.ETH0, DriftEdge: p.ETHEdge, RallyShare: 1},
		{Price0: p.ETC0, DriftEdge: 0, RallyShare: p.RallyETCShare},
	}
}

// GeneratePrices draws the legacy two-way Series from the coupled walk.
func GeneratePrices(p Params, r *rand.Rand) Series {
	s := GenerateSeries(p, LegacyChainParams(p), r)
	return Series{ETHUSD: s[0], ETCUSD: s[1]}
}

// HashesPerUSD is the paper's Figure 3 statistic: the expected number of
// hashes a miner computes to earn one USD — difficulty divided by the
// block reward in ether, divided by the USD price of one ether.
func HashesPerUSD(difficulty *big.Int, rewardEther, usdPrice float64) float64 {
	if usdPrice <= 0 || rewardEther <= 0 {
		return math.Inf(1)
	}
	d, _ := new(big.Float).SetInt(difficulty).Float64()
	return d / rewardEther / usdPrice
}

// Allocator nudges the cross-chain hashrate split toward the arbitrage
// fixed point where USD-per-hash is equal on both chains.
type Allocator struct {
	// Elasticity in (0,1] is the fraction of the gap to equilibrium
	// closed per day. The paper's near-identical curves correspond to a
	// high effective elasticity; the ablation bench sweeps it.
	Elasticity float64
}

// Step returns the new ETH share of the mobile hashrate pool.
//
// At difficulty equilibrium each chain's difficulty is proportional to its
// hashrate, so expected USD/hash on chain i is proportional to
// price_i/share_i. Equal returns therefore mean share_i ∝ price_i: the
// equilibrium ETH share is ethUSD/(ethUSD+etcUSD) (equal block rewards on
// both chains). We move the current share toward it by Elasticity.
func (a Allocator) Step(currentETHShare, ethUSD, etcUSD float64) float64 {
	if ethUSD <= 0 && etcUSD <= 0 {
		return currentETHShare
	}
	return a.StepToward(currentETHShare, ethUSD/(ethUSD+etcUSD))
}

// StepToward moves a share toward an arbitrary target by Elasticity,
// clamped to [0,1] — the N-way engine computes each partition's target
// share (economic-weighted price over the weighted total) and steps every
// non-anchor component with this.
func (a Allocator) StepToward(current, target float64) float64 {
	next := current + a.Elasticity*(target-current)
	return clamp01(next)
}

// Correlation returns the Pearson correlation of two equal-length series;
// the Fig 3 bench reports it for the two hashes/USD curves.
func Correlation(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return math.NaN()
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
