package market

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func TestGeneratePricesBasics(t *testing.T) {
	p := DefaultParams(300)
	s := GeneratePrices(p, rand.New(rand.NewSource(1)))
	if len(s.ETHUSD) != 300 || len(s.ETCUSD) != 300 {
		t.Fatalf("series lengths %d/%d", len(s.ETHUSD), len(s.ETCUSD))
	}
	if s.ETHUSD[0] != p.ETH0 || s.ETCUSD[0] != p.ETC0 {
		t.Error("day 0 should be the initial prices")
	}
	for d := 0; d < 300; d++ {
		if s.ETHUSD[d] <= 0 || s.ETCUSD[d] <= 0 {
			t.Fatalf("non-positive price on day %d", d)
		}
	}
}

func TestGeneratePricesDeterministic(t *testing.T) {
	p := DefaultParams(100)
	a := GeneratePrices(p, rand.New(rand.NewSource(7)))
	b := GeneratePrices(p, rand.New(rand.NewSource(7)))
	for d := range a.ETHUSD {
		if a.ETHUSD[d] != b.ETHUSD[d] || a.ETCUSD[d] != b.ETCUSD[d] {
			t.Fatal("same seed should reproduce prices")
		}
	}
}

func TestRallyRaisesETH(t *testing.T) {
	p := DefaultParams(300)
	p.SharedVol, p.IdioVol, p.Drift, p.ETHEdge = 0, 0, 0, 0 // isolate the rally term
	p.RallyETCShare = 0
	s := GeneratePrices(p, rand.New(rand.NewSource(1)))
	if s.ETHUSD[239] != p.ETH0 {
		t.Error("ETH should be flat before the rally")
	}
	if s.ETHUSD[299] <= s.ETHUSD[239]*2 {
		t.Errorf("rally too weak: %v -> %v", s.ETHUSD[239], s.ETHUSD[299])
	}
	if s.ETCUSD[299] != p.ETC0 {
		t.Error("rally should not move ETC when RallyETCShare is 0")
	}
	// With a shared rally, ETC rises too — but less than ETH.
	p.RallyETCShare = 0.6
	s = GeneratePrices(p, rand.New(rand.NewSource(1)))
	if s.ETCUSD[299] <= p.ETC0 {
		t.Error("shared rally should lift ETC")
	}
	if s.ETCUSD[299]/p.ETC0 >= s.ETHUSD[299]/p.ETH0 {
		t.Error("ETH should outpace ETC during the rally")
	}
}

// TestPricesCorrelated: shared volatility dominates, so daily log returns
// of the two chains must be strongly correlated — the market coupling the
// paper's Fig 3 relies on.
func TestPricesCorrelated(t *testing.T) {
	p := DefaultParams(270)
	p.RallyDrift = 0
	s := GeneratePrices(p, rand.New(rand.NewSource(3)))
	rets := func(xs []float64) []float64 {
		out := make([]float64, len(xs)-1)
		for i := 1; i < len(xs); i++ {
			out[i-1] = math.Log(xs[i] / xs[i-1])
		}
		return out
	}
	c := Correlation(rets(s.ETHUSD), rets(s.ETCUSD))
	if c < 0.8 {
		t.Errorf("return correlation = %.3f, want > 0.8", c)
	}
}

func TestHashesPerUSD(t *testing.T) {
	// difficulty 70e12, 5 ether reward, $14: 1e12 hashes per USD.
	d := new(big.Int).Mul(big.NewInt(70), big.NewInt(1e12))
	got := HashesPerUSD(d, 5, 14)
	if math.Abs(got-1e12)/1e12 > 1e-9 {
		t.Errorf("HashesPerUSD = %g, want 1e12", got)
	}
	if !math.IsInf(HashesPerUSD(d, 5, 0), 1) {
		t.Error("zero price should be +Inf")
	}
}

func TestAllocatorConvergesToPriceShare(t *testing.T) {
	a := Allocator{Elasticity: 0.3}
	share := 0.5
	for i := 0; i < 100; i++ {
		share = a.Step(share, 12, 1.2) // target 12/13.2 ≈ 0.909
	}
	want := 12.0 / 13.2
	if math.Abs(share-want) > 1e-6 {
		t.Errorf("share = %.4f, want %.4f", share, want)
	}
}

func TestAllocatorClamps(t *testing.T) {
	a := Allocator{Elasticity: 5} // over-aggressive
	if s := a.Step(0.9, 1, 0); s > 1 || s < 0 {
		t.Errorf("share %v out of range", s)
	}
	if s := a.Step(0.5, 0, 0); s != 0.5 {
		t.Errorf("degenerate prices should not move the share: %v", s)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if c := Correlation(x, x); math.Abs(c-1) > 1e-12 {
		t.Errorf("self correlation = %v", c)
	}
	y := []float64{4, 3, 2, 1}
	if c := Correlation(x, y); math.Abs(c+1) > 1e-12 {
		t.Errorf("anti correlation = %v", c)
	}
	if !math.IsNaN(Correlation(x, []float64{1, 1, 1, 1})) {
		t.Error("constant series should yield NaN")
	}
	if !math.IsNaN(Correlation(x, x[:2])) {
		t.Error("mismatched lengths should yield NaN")
	}
}
