package rpc

import (
	"testing"
	"time"
)

// TestBreakerTripAndRecover walks the full state machine on a hand-driven
// clock: closed until the threshold, open for the cooldown, a single
// half-open probe, and both probe outcomes.
func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	// Closed: failures below the threshold keep allowing.
	b.Fail()
	b.Fail()
	if !b.Allow() || b.Open() {
		t.Fatal("breaker opened below its threshold")
	}
	// A success resets the streak.
	b.Success()
	b.Fail()
	b.Fail()
	if b.Open() {
		t.Fatal("success did not reset the failure streak")
	}
	// Third consecutive failure trips it.
	b.Fail()
	if !b.Open() || b.Allow() {
		t.Fatal("threshold failures did not open the breaker")
	}

	// Cooldown: still shedding just before it elapses.
	now = now.Add(time.Second - time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted work inside the cooldown")
	}
	// After the cooldown exactly one probe goes through.
	now = now.Add(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	// Failed probe: re-open for a fresh cooldown.
	b.Fail()
	if b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	now = now.Add(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the probe after the second cooldown")
	}
	// Successful probe closes it.
	b.Success()
	if b.Open() || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestBreakerDisabled: a non-positive threshold disables the breaker
// entirely (and a nil breaker behaves the same, so unregistered routes
// need no special-casing).
func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, time.Second)
	for i := 0; i < 100; i++ {
		b.Fail()
	}
	if !b.Allow() || b.Open() {
		t.Fatal("disabled breaker opened")
	}
	var nilB *Breaker
	nilB.Fail()
	nilB.Success()
	if !nilB.Allow() || nilB.Open() {
		t.Fatal("nil breaker did not pass through")
	}
}
