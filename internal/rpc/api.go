package rpc

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/types"
)

// Backend serves one chain's archive API over its Blockchain (and, for
// the cross-chain fork_* joins, the peer backends of the other
// partitions). All reads go through the Blockchain's own locks and the
// KV-backed Store; storage failures surface as *Error with
// ErrCodeStorage.
type Backend struct {
	name  string
	bc    *chain.Blockchain
	peers []*Backend
	live  *LiveSource
}

// NewBackend wraps one chain for serving. name is the chain label used
// in routes and metrics.
func NewBackend(name string, bc *chain.Blockchain) *Backend {
	return &Backend{name: name, bc: bc}
}

// AddPeer links another partition's backend, enabling the cross-chain
// join behind fork_echoCandidates. Call for every ordered pair; echo
// responses join against peers in registration order.
func (b *Backend) AddPeer(peer *Backend) { b.peers = append(b.peers, peer) }

// SetPeer links a single peer backend, replacing any existing links —
// the two-way convenience over AddPeer.
func (b *Backend) SetPeer(peer *Backend) { b.peers = []*Backend{peer} }

// Name returns the chain label.
func (b *Backend) Name() string { return b.name }

// Chain returns the served blockchain.
func (b *Backend) Chain() *chain.Blockchain { return b.bc }

// Generation identifies the current head for cache tagging. Any block
// commit changes it, so a response cached under an old generation can
// never be served after the head advances.
func (b *Backend) Generation() uint64 { return b.bc.Head().Number() }

// maxWindow bounds the fork_* range scans: an archive query over more
// canonical blocks than this is rejected with InvalidParams rather than
// holding a worker for an unbounded walk.
const maxWindow = 100_000

// method is one RPC method implementation.
type method func(ctx context.Context, b *Backend, params []json.RawMessage) (any, *Error)

// methods is the dispatch table. Entries are cacheable — results are
// pure functions of (chain state at generation, params) — unless they
// also appear in uncacheable (the live/subscription methods, whose
// results change independently of the head).
var methods = map[string]method{
	"eth_blockNumber":           ethBlockNumber,
	"eth_getBlockByNumber":      ethGetBlockByNumber,
	"eth_getBlockByHash":        ethGetBlockByHash,
	"eth_getTransactionByHash":  ethGetTransactionByHash,
	"eth_getTransactionReceipt": ethGetTransactionReceipt,
	"eth_getBalance":            ethGetBalance,
	"eth_getTransactionCount":   ethGetTransactionCount,
	"fork_difficultyWindow":     forkDifficultyWindow,
	"fork_echoCandidates":       forkEchoCandidates,
	"fork_poolShares":           forkPoolShares,
}

// Methods lists the served method names (for smoke tooling).
func Methods() []string {
	out := make([]string, 0, len(methods))
	for name := range methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- hex quantity/data helpers (Ethereum JSON-RPC conventions) ---

// encUint encodes a quantity as minimal 0x-hex.
func encUint(v uint64) string { return fmt.Sprintf("0x%x", v) }

// encBig encodes a big quantity as minimal 0x-hex.
func encBig(v *big.Int) string {
	if v == nil || v.Sign() == 0 {
		return "0x0"
	}
	return "0x" + v.Text(16)
}

// encBytes encodes data bytes as 0x-hex.
func encBytes(b []byte) string { return "0x" + hex.EncodeToString(b) }

func decodeParam(raw json.RawMessage, into any, what string) *Error {
	if err := json.Unmarshal(raw, into); err != nil {
		return Errf(ErrCodeInvalidParams, "bad %s: %v", what, err)
	}
	return nil
}

// parseQuantity decodes a 0x-hex quantity parameter.
func parseQuantity(raw json.RawMessage, what string) (uint64, *Error) {
	var s string
	if err := decodeParam(raw, &s, what); err != nil {
		return 0, err
	}
	if !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "0X") {
		return 0, Errf(ErrCodeInvalidParams, "bad %s: quantity %q must be 0x-prefixed hex", what, s)
	}
	var v uint64
	if _, err := fmt.Sscanf(strings.ToLower(s[2:]), "%x", &v); err != nil || s[2:] == "" {
		return 0, Errf(ErrCodeInvalidParams, "bad %s: quantity %q", what, s)
	}
	return v, nil
}

// parseHash decodes a 32-byte 0x-hex hash parameter.
func parseHash(raw json.RawMessage, what string) (types.Hash, *Error) {
	var s string
	if err := decodeParam(raw, &s, what); err != nil {
		return types.Hash{}, err
	}
	b, err := decodeHexData(s, types.HashLength)
	if err != nil {
		return types.Hash{}, Errf(ErrCodeInvalidParams, "bad %s: %v", what, err)
	}
	return types.BytesToHash(b), nil
}

// parseAddress decodes a 20-byte 0x-hex address parameter.
func parseAddress(raw json.RawMessage, what string) (types.Address, *Error) {
	var s string
	if err := decodeParam(raw, &s, what); err != nil {
		return types.Address{}, err
	}
	b, err := decodeHexData(s, types.AddressLength)
	if err != nil {
		return types.Address{}, Errf(ErrCodeInvalidParams, "bad %s: %v", what, err)
	}
	return types.BytesToAddress(b), nil
}

func decodeHexData(s string, wantLen int) ([]byte, error) {
	if !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "0X") {
		return nil, fmt.Errorf("%q must be 0x-prefixed hex", s)
	}
	b, err := hex.DecodeString(s[2:])
	if err != nil {
		return nil, fmt.Errorf("%q: %v", s, err)
	}
	if len(b) != wantLen {
		return nil, fmt.Errorf("%q is %d bytes, want %d", s, len(b), wantLen)
	}
	return b, nil
}

// resolveBlockTag maps a block parameter ("latest", "earliest" or a
// 0x-hex number) to the canonical block it names.
func resolveBlockTag(b *Backend, raw json.RawMessage) (*chain.Block, *Error) {
	var s string
	if err := decodeParam(raw, &s, "block parameter"); err != nil {
		return nil, err
	}
	switch s {
	case "latest", "pending":
		return b.bc.Head(), nil
	case "earliest":
		return b.bc.Genesis(), nil
	}
	n, perr := parseQuantity(raw, "block number")
	if perr != nil {
		return nil, perr
	}
	blk, ok := b.bc.BlockByNumber(n)
	if !ok {
		return nil, Errf(ErrCodeNotFound, "block %d not found", n)
	}
	return blk, nil
}

// storageErr wraps a failed store read as a typed JSON-RPC error. Corrupt
// records and injected I/O faults both land here — never a panic. A store
// that degraded to read-only (diskdb after an unrepairable medium error)
// is tagged so clients can tell "retry later" from "writes are gone for
// good, reads still serve".
func storageErr(err error) *Error {
	e := Errf(ErrCodeStorage, "storage error: %v", err)
	switch {
	case errors.Is(err, db.ErrReadOnly):
		e.Data = "read-only"
	case db.IsTransient(err):
		e.Data = "transient"
	}
	return e
}

// needParams enforces an exact parameter count.
func needParams(params []json.RawMessage, n int, sig string) *Error {
	if len(params) != n {
		return Errf(ErrCodeInvalidParams, "want %d params (%s), got %d", n, sig, len(params))
	}
	return nil
}

// --- block/tx/receipt JSON shapes ---

// rpcBlock is the wire form of a block (Ethereum field names).
type rpcBlock struct {
	Number          string   `json:"number"`
	Hash            string   `json:"hash"`
	ParentHash      string   `json:"parentHash"`
	Timestamp       string   `json:"timestamp"`
	Difficulty      string   `json:"difficulty"`
	TotalDifficulty string   `json:"totalDifficulty,omitempty"`
	GasLimit        string   `json:"gasLimit"`
	GasUsed         string   `json:"gasUsed"`
	Miner           string   `json:"miner"`
	ExtraData       string   `json:"extraData"`
	StateRoot       string   `json:"stateRoot"`
	TxRoot          string   `json:"transactionsRoot"`
	ReceiptsRoot    string   `json:"receiptsRoot"`
	UncleHash       string   `json:"sha3Uncles"`
	Transactions    []any    `json:"transactions"`
	Uncles          []string `json:"uncles"`
}

// rpcTx is the wire form of a transaction.
type rpcTx struct {
	Hash        string  `json:"hash"`
	Nonce       string  `json:"nonce"`
	BlockHash   string  `json:"blockHash"`
	BlockNumber string  `json:"blockNumber"`
	TxIndex     string  `json:"transactionIndex"`
	From        string  `json:"from"`
	To          *string `json:"to"`
	Value       string  `json:"value"`
	Gas         string  `json:"gas"`
	GasPrice    string  `json:"gasPrice"`
	Input       string  `json:"input"`
	ChainID     string  `json:"chainId"`
}

// rpcReceipt is the wire form of a receipt.
type rpcReceipt struct {
	TxHash          string  `json:"transactionHash"`
	TxIndex         string  `json:"transactionIndex"`
	BlockHash       string  `json:"blockHash"`
	BlockNumber     string  `json:"blockNumber"`
	Status          string  `json:"status"`
	GasUsed         string  `json:"gasUsed"`
	ContractAddress *string `json:"contractAddress"`
	// ContractCall is forkwatch's Fig 2 classification: whether the
	// transaction invoked code.
	ContractCall bool `json:"contractCall"`
}

func marshalTx(tx *chain.Transaction, blockHash types.Hash, blockNumber uint64, index uint32) *rpcTx {
	out := &rpcTx{
		Hash:        tx.Hash().Hex(),
		Nonce:       encUint(tx.Nonce),
		BlockHash:   blockHash.Hex(),
		BlockNumber: encUint(blockNumber),
		TxIndex:     encUint(uint64(index)),
		From:        tx.From.Hex(),
		Value:       encBig(tx.Value),
		Gas:         encUint(tx.GasLimit),
		GasPrice:    encBig(tx.GasPrice),
		Input:       encBytes(tx.Data),
		ChainID:     encUint(tx.ChainID),
	}
	if tx.To != nil {
		to := tx.To.Hex()
		out.To = &to
	}
	return out
}

func marshalBlock(b *Backend, blk *chain.Block, fullTxs bool) *rpcBlock {
	h := blk.Header
	out := &rpcBlock{
		Number:       encUint(h.Number),
		Hash:         blk.Hash().Hex(),
		ParentHash:   h.ParentHash.Hex(),
		Timestamp:    encUint(h.Time),
		Difficulty:   encBig(h.Difficulty),
		GasLimit:     encUint(h.GasLimit),
		GasUsed:      encUint(h.GasUsed),
		Miner:        h.Coinbase.Hex(),
		ExtraData:    encBytes(h.Extra),
		StateRoot:    h.StateRoot.Hex(),
		TxRoot:       h.TxRoot.Hex(),
		ReceiptsRoot: h.ReceiptRoot.Hex(),
		UncleHash:    h.UncleHash.Hex(),
		Transactions: make([]any, 0, len(blk.Txs)),
		Uncles:       make([]string, 0, len(blk.Uncles)),
	}
	if td, ok := b.bc.TD(blk.Hash()); ok {
		out.TotalDifficulty = encBig(td)
	}
	for i, tx := range blk.Txs {
		if fullTxs {
			out.Transactions = append(out.Transactions, marshalTx(tx, blk.Hash(), h.Number, uint32(i)))
		} else {
			out.Transactions = append(out.Transactions, tx.Hash().Hex())
		}
	}
	for _, u := range blk.Uncles {
		out.Uncles = append(out.Uncles, u.Hash().Hex())
	}
	return out
}

// --- eth_* methods ---

func ethBlockNumber(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 0, "none"); err != nil {
		return nil, err
	}
	return encUint(b.bc.Head().Number()), nil
}

func ethGetBlockByNumber(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 2, "blockNumber, fullTransactions"); err != nil {
		return nil, err
	}
	var full bool
	if err := decodeParam(params[1], &full, "fullTransactions flag"); err != nil {
		return nil, err
	}
	blk, perr := resolveBlockTag(b, params[0])
	if perr != nil {
		if perr.Code == ErrCodeNotFound {
			return nil, nil // Ethereum convention: null for absent blocks
		}
		return nil, perr
	}
	return marshalBlock(b, blk, full), nil
}

func ethGetBlockByHash(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 2, "blockHash, fullTransactions"); err != nil {
		return nil, err
	}
	h, perr := parseHash(params[0], "block hash")
	if perr != nil {
		return nil, perr
	}
	var full bool
	if err := decodeParam(params[1], &full, "fullTransactions flag"); err != nil {
		return nil, err
	}
	blk, ok := b.bc.GetBlock(h)
	if !ok {
		// The in-memory index holds the canonical chain plus gossiped
		// side blocks; fall back to the store for anything else.
		sblk, sok, err := b.bc.Store().Block(h)
		if err != nil {
			return nil, storageErr(err)
		}
		if !sok {
			return nil, nil
		}
		blk = sblk
	}
	return marshalBlock(b, blk, full), nil
}

func ethGetTransactionByHash(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 1, "transactionHash"); err != nil {
		return nil, err
	}
	h, perr := parseHash(params[0], "transaction hash")
	if perr != nil {
		return nil, perr
	}
	tx, blockHash, blockNumber, index, ok, err := b.bc.TransactionByHash(h)
	if err != nil {
		return nil, storageErr(err)
	}
	if !ok {
		return nil, nil
	}
	return marshalTx(tx, blockHash, blockNumber, index), nil
}

func ethGetTransactionReceipt(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 1, "transactionHash"); err != nil {
		return nil, err
	}
	h, perr := parseHash(params[0], "transaction hash")
	if perr != nil {
		return nil, perr
	}
	rec, blockHash, index, ok, err := b.bc.ReceiptByTxHash(h)
	if err != nil {
		return nil, storageErr(err)
	}
	if !ok {
		return nil, nil
	}
	blk, ok := b.bc.GetBlock(blockHash)
	var blockNumber uint64
	if ok {
		blockNumber = blk.Number()
	}
	status := "0x0"
	if rec.Status {
		status = "0x1"
	}
	out := &rpcReceipt{
		TxHash:       rec.TxHash.Hex(),
		TxIndex:      encUint(uint64(index)),
		BlockHash:    blockHash.Hex(),
		BlockNumber:  encUint(blockNumber),
		Status:       status,
		GasUsed:      encUint(rec.GasUsed),
		ContractCall: rec.ContractCall,
	}
	if !rec.ContractAddress.IsZero() {
		addr := rec.ContractAddress.Hex()
		out.ContractAddress = &addr
	}
	return out, nil
}

// stateQuery resolves the at-block state behind eth_getBalance and
// eth_getTransactionCount through the state trie.
func stateQuery(b *Backend, params []json.RawMessage, read func(st stateReader, addr types.Address) any) (any, *Error) {
	addr, perr := parseAddress(params[0], "address")
	if perr != nil {
		return nil, perr
	}
	blk, perr := resolveBlockTag(b, params[1])
	if perr != nil {
		return nil, perr
	}
	st, err := b.bc.StateAt(blk.Hash())
	if err != nil {
		return nil, storageErr(err)
	}
	out := read(st, addr)
	// Trie reads report device failures via the state's sticky error, not
	// a panic: surface them as a typed storage error.
	if err := st.Error(); err != nil {
		return nil, storageErr(err)
	}
	return out, nil
}

// stateReader is the slice of state.DB the queries need (kept narrow so
// tests can fake it).
type stateReader interface {
	GetBalance(types.Address) *big.Int
	GetNonce(types.Address) uint64
}

func ethGetBalance(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 2, "address, block"); err != nil {
		return nil, err
	}
	return stateQuery(b, params, func(st stateReader, addr types.Address) any {
		return encBig(st.GetBalance(addr))
	})
}

func ethGetTransactionCount(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if err := needParams(params, 2, "address, block"); err != nil {
		return nil, err
	}
	return stateQuery(b, params, func(st stateReader, addr types.Address) any {
		return encUint(st.GetNonce(addr))
	})
}

// --- fork_* methods (the paper's analysis primitives) ---

// parseWindow decodes and clamps a [from, to] canonical-block window.
func parseWindow(b *Backend, params []json.RawMessage) (from, to uint64, err *Error) {
	if perr := needParams(params, 2, "fromBlock, toBlock"); perr != nil {
		return 0, 0, perr
	}
	from, err = parseQuantity(params[0], "fromBlock")
	if err != nil {
		return 0, 0, err
	}
	to, err = parseQuantity(params[1], "toBlock")
	if err != nil {
		return 0, 0, err
	}
	if to < from {
		return 0, 0, Errf(ErrCodeInvalidParams, "window [%d, %d] is inverted", from, to)
	}
	if to-from+1 > maxWindow {
		return 0, 0, Errf(ErrCodeInvalidParams, "window of %d blocks exceeds limit %d", to-from+1, maxWindow)
	}
	if head := b.bc.Head().Number(); to > head {
		to = head
	}
	return from, to, nil
}

// forkDifficultyWindow returns the difficulty trajectory over a canonical
// window: the raw series behind the paper's Fig 1/2 difficulty panels
// (the two-week mirror-image shift after the partition).
func forkDifficultyWindow(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	from, to, perr := parseWindow(b, params)
	if perr != nil {
		return nil, perr
	}
	type point struct {
		Number     string `json:"number"`
		Timestamp  string `json:"timestamp"`
		Difficulty string `json:"difficulty"`
	}
	blocks := b.bc.CanonicalBlocks(from, to)
	out := make([]point, 0, len(blocks))
	for _, blk := range blocks {
		out = append(out, point{
			Number:     encUint(blk.Number()),
			Timestamp:  encUint(blk.Header.Time),
			Difficulty: encBig(blk.Header.Difficulty),
		})
	}
	return map[string]any{"chain": b.name, "points": out}, nil
}

// forkEchoCandidates joins this chain's canonical window against every
// other partition's tx index on transaction hash: transactions mined on
// more than one chain (the paper's O5 "echoes", its replay-attack
// measurement). Each echo entry names the peer it was found on; with a
// single peer the response matches the historical two-way shape plus a
// "peer" field per entry.
func forkEchoCandidates(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	if len(b.peers) == 0 {
		return nil, Errf(ErrCodeInternal, "no peer chain configured for cross-chain join")
	}
	from, to, perr := parseWindow(b, params)
	if perr != nil {
		return nil, perr
	}
	type echo struct {
		Hash        string `json:"hash"`
		From        string `json:"from"`
		Peer        string `json:"peer"`
		BlockNumber string `json:"blockNumber"`
		PeerBlock   string `json:"peerBlockNumber"`
	}
	peerNames := make([]string, len(b.peers))
	for i, p := range b.peers {
		peerNames[i] = p.name
	}
	out := []echo{}
	for _, blk := range b.bc.CanonicalBlocks(from, to) {
		for _, tx := range blk.Txs {
			for _, peer := range b.peers {
				lk, ok, err := peer.bc.Store().TxIndex(tx.Hash())
				if err != nil {
					return nil, storageErr(err)
				}
				if !ok {
					continue
				}
				peerBlk, ok := peer.bc.GetBlock(lk.BlockHash)
				if !ok {
					continue
				}
				out = append(out, echo{
					Hash:        tx.Hash().Hex(),
					From:        tx.From.Hex(),
					Peer:        peer.name,
					BlockNumber: encUint(blk.Number()),
					PeerBlock:   encUint(peerBlk.Number()),
				})
			}
		}
	}
	return map[string]any{"chain": b.name, "peers": peerNames, "echoes": out}, nil
}

// forkPoolShares attributes a canonical window's blocks to coinbase
// addresses and returns each miner's share, largest first — the paper's
// Fig 5 pool-concentration measurement (O6).
func forkPoolShares(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	from, to, perr := parseWindow(b, params)
	if perr != nil {
		return nil, perr
	}
	counts := map[types.Address]int{}
	total := 0
	for _, blk := range b.bc.CanonicalBlocks(from, to) {
		counts[blk.Header.Coinbase]++
		total++
	}
	type share struct {
		Miner  string  `json:"miner"`
		Blocks int     `json:"blocks"`
		Share  float64 `json:"share"`
	}
	out := make([]share, 0, len(counts))
	for addr, n := range counts {
		s := share{Miner: addr.Hex(), Blocks: n}
		if total > 0 {
			s.Share = float64(n) / float64(total)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocks != out[j].Blocks {
			return out[i].Blocks > out[j].Blocks
		}
		return out[i].Miner < out[j].Miner
	})
	return map[string]any{"chain": b.name, "totalBlocks": total, "pools": out}, nil
}
