package rpc

import (
	"container/list"
	"sync"
)

// respCache is a generation-tagged LRU over marshalled results, one per
// method. Keys are the canonical request encoding (Request.CacheKey);
// every entry is tagged with the chain-head generation current when it
// was filled. Lookups require an exact generation match, so advancing the
// head invalidates every prior entry at once — stale answers become
// unreachable and age out through normal LRU eviction. This is what makes
// it safe to cache even eth_blockNumber: a request that starts after a
// block commit observes the new generation and can only miss.
type respCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key    string
	gen    uint64
	result []byte // marshalled JSON result
}

// newRespCache returns an LRU holding up to capacity entries; capacity
// <= 0 disables caching (every lookup misses, stores are dropped).
func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result for (key, gen), if present.
func (c *respCache) get(key string, gen uint64) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		// A head advance outdated this entry; drop it eagerly so the
		// slot is reusable immediately.
		c.order.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.result, true
}

// put stores a result under (key, gen), evicting the least recently used
// entry on overflow.
func (c *respCache) put(key string, gen uint64, result []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen = gen
		ent.result = result
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, gen: gen, result: result})
	c.items[key] = el
	for c.order.Len() > c.cap {
		old := c.order.Back()
		c.order.Remove(old)
		delete(c.items, old.Value.(*cacheEntry).key)
	}
}

// len returns the number of live entries (for metrics).
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
