package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Client is a minimal JSON-RPC 2.0 HTTP client for one endpoint (one
// chain). It is safe for concurrent use; ids are allocated atomically.
type Client struct {
	endpoint string
	hc       *http.Client
	nextID   atomic.Int64
}

// NewClient builds a client for endpoint (e.g. "http://127.0.0.1:8545/eth").
// A nil httpClient uses a dedicated client with a 30s timeout.
func NewClient(endpoint string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{endpoint: endpoint, hc: httpClient}
}

// Endpoint returns the target URL.
func (c *Client) Endpoint() string { return c.endpoint }

// Call invokes method with params and decodes the result into out (out
// may be nil to discard). A JSON-RPC error comes back as *Error; a
// transport failure as a plain error.
func (c *Client) Call(out any, method string, params ...any) error {
	id := c.nextID.Add(1)
	req, err := buildRequest(id, method, params)
	if err != nil {
		return err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	raw, status, err := c.post(body)
	if err != nil {
		return err
	}
	if status == http.StatusTooManyRequests {
		return &Error{Code: ErrCodeOverloaded, Message: "server overloaded (HTTP 429)"}
	}
	var resp clientResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("decoding response (HTTP %d): %w", status, err)
	}
	return resp.unpack(out)
}

// BatchElem is one call in a batch: method, params and a destination for
// the result. After Batch returns, Err holds the per-call outcome.
type BatchElem struct {
	Method string
	Params []any
	Result any
	Err    error
}

// Batch sends all elems as a single JSON-RPC batch and fills each elem's
// Result/Err. The returned error covers transport-level failures only.
func (c *Client) Batch(elems []BatchElem) error {
	if len(elems) == 0 {
		return nil
	}
	reqs := make([]*Request, len(elems))
	byID := make(map[string]int, len(elems))
	for i := range elems {
		id := c.nextID.Add(1)
		req, err := buildRequest(id, elems[i].Method, elems[i].Params)
		if err != nil {
			return err
		}
		reqs[i] = req
		byID[string(req.ID)] = i
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return err
	}
	raw, status, err := c.post(body)
	if err != nil {
		return err
	}
	if status == http.StatusTooManyRequests {
		overload := &Error{Code: ErrCodeOverloaded, Message: "server overloaded (HTTP 429)"}
		for i := range elems {
			elems[i].Err = overload
		}
		return nil
	}
	var resps []clientResponse
	if err := json.Unmarshal(raw, &resps); err != nil {
		return fmt.Errorf("decoding batch response (HTTP %d): %w", status, err)
	}
	seen := make(map[int]bool, len(resps))
	for i := range resps {
		idx, ok := byID[string(bytes.TrimSpace(resps[i].ID))]
		if !ok {
			continue
		}
		seen[idx] = true
		elems[idx].Err = resps[i].unpack(elems[idx].Result)
	}
	for i := range elems {
		if !seen[i] && elems[i].Err == nil {
			elems[i].Err = fmt.Errorf("no response for batch element %d (%s)", i, elems[i].Method)
		}
	}
	return nil
}

// clientResponse keeps Result raw so callers decode into their own type.
// Staleness mirrors the server's degraded-mode envelope extension.
type clientResponse struct {
	JSONRPC   string          `json:"jsonrpc"`
	ID        json.RawMessage `json:"id"`
	Result    json.RawMessage `json:"result"`
	Error     *Error          `json:"error"`
	Staleness *uint64         `json:"staleness"`
}

func (r *clientResponse) unpack(out any) error {
	if r.Error != nil {
		return r.Error
	}
	if out == nil {
		return nil
	}
	if len(r.Result) == 0 {
		return fmt.Errorf("response carries neither result nor error")
	}
	return json.Unmarshal(r.Result, out)
}

func buildRequest(id int64, method string, params []any) (*Request, error) {
	req := &Request{
		JSONRPC: Version,
		ID:      json.RawMessage(fmt.Sprintf("%d", id)),
		Method:  method,
	}
	for _, p := range params {
		enc, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("marshalling param for %s: %w", method, err)
		}
		req.Params = append(req.Params, json.RawMessage(enc))
	}
	return req, nil
}

func (c *Client) post(body []byte) (raw []byte, status int, err error) {
	resp, err := c.hc.Post(c.endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return raw, resp.StatusCode, nil
}
