package rpc

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter: each client key (the
// remote host) owns a bucket refilled at rate tokens/second up to burst.
// A request that finds the bucket empty is shed at the transport with
// 429 + Retry-After. Buckets idle past the reap horizon are dropped so an
// address churn (load generators, NAT pools) cannot grow the table
// without bound.
type rateLimiter struct {
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	lastGC  time.Time
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// reapAfter is how long an untouched bucket survives.
const reapAfter = 5 * time.Minute

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow consumes one token from key's bucket, reporting whether the
// request may proceed and, when shed, the suggested retry delay.
func (l *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if now.Sub(l.lastGC) > reapAfter {
		l.lastGC = now
		for k, v := range l.buckets {
			if now.Sub(v.last) > reapAfter {
				delete(l.buckets, k)
			}
		}
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		if wait < time.Second {
			wait = time.Second
		}
		return false, wait
	}
	b.tokens--
	return true, 0
}
