// Package rpc is forkwatch's serving layer: a from-scratch JSON-RPC 2.0
// server (HTTP transport, batch requests, typed errors) exposing an
// Ethereum-flavoured archive API over the KV-backed chain store, one
// endpoint per chain — the way the paper ran a paired ETH and ETC node
// and "export[ed] every block and transaction to a database" through
// their RPC interfaces.
//
// Production-shape internals, not a toy mux:
//
//   - a bounded worker pool with queue-depth backpressure: when the queue
//     is full the transport answers 429 with Retry-After instead of
//     letting goroutines pile up;
//   - per-method LRU response caches keyed on the canonical request
//     encoding and tagged with the chain's head generation, so a head
//     advance invalidates every cached answer at once;
//   - token-bucket rate limiting per client;
//   - request timeouts and body/batch size limits, so a stalled storage
//     read can never hang a client;
//   - an internal/metrics registry (per-method counters and latency
//     histograms, queue gauges, cache hit/miss, storage db.Stats)
//     surfaced at /debug/metrics.
//
// Storage faults surface as typed JSON-RPC errors (ErrCodeStorage), never
// panics: the backends thread every store error up through the codec.
package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the fixed JSON-RPC protocol version.
const Version = "2.0"

// JSON-RPC 2.0 error codes (spec section 5.1) plus forkwatch's
// implementation-defined server errors in the -32000..-32099 range.
const (
	ErrCodeParse          = -32700
	ErrCodeInvalidRequest = -32600
	ErrCodeMethodNotFound = -32601
	ErrCodeInvalidParams  = -32602
	ErrCodeInternal       = -32603

	// ErrCodeNotFound reports a block/state the archive does not have.
	ErrCodeNotFound = -32001
	// ErrCodeStorage reports a failed or corrupt read from the chain's
	// key-value store (the faultkv chaos path lands here).
	ErrCodeStorage = -32010
	// ErrCodeTimeout reports a request that exceeded the server's
	// execution deadline (e.g. behind a stalled storage device).
	ErrCodeTimeout = -32011
	// ErrCodeOverloaded reports a request shed inside a batch when the
	// server is saturated (whole-request shedding uses HTTP 429).
	ErrCodeOverloaded = -32012
	// ErrCodeUnavailable reports a request shed by an open circuit
	// breaker: the route's storage or sync path is failing repeatedly and
	// the server answers immediately instead of grinding against it. The
	// Data member carries "circuit-open".
	ErrCodeUnavailable = -32013
)

// Error is a typed JSON-RPC error object.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
	Data    any    `json:"data,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

// Errf formats a typed error.
func Errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Request is one JSON-RPC call as decoded from the wire. ID is the raw
// id token (number, string or null); a nil ID marks a notification,
// which executes but gets no response object.
type Request struct {
	JSONRPC string            `json:"jsonrpc"`
	ID      json.RawMessage   `json:"id,omitempty"`
	Method  string            `json:"method"`
	Params  []json.RawMessage `json:"params,omitempty"`
}

// Response is one JSON-RPC response object. Staleness is forkwatch's
// degraded-mode extension: a replica serving more than its staleness
// bound behind the primary tags every response with how many blocks it
// lags instead of silently answering from an old head. Healthy serving
// omits the member, so a caught-up replica's responses stay byte-
// identical to the primary's.
type Response struct {
	JSONRPC   string          `json:"jsonrpc"`
	ID        json.RawMessage `json:"id"`
	Result    any             `json:"result,omitempty"`
	Error     *Error          `json:"error,omitempty"`
	Staleness *uint64         `json:"staleness,omitempty"`
}

// reply builds a success response for req.
func reply(id json.RawMessage, result any) *Response {
	return &Response{JSONRPC: Version, ID: normalizeID(id), Result: result}
}

// replyErr builds an error response for req.
func replyErr(id json.RawMessage, err *Error) *Response {
	return &Response{JSONRPC: Version, ID: normalizeID(id), Error: err}
}

// normalizeID maps a missing id to explicit null so the marshalled
// response always carries the member, as the spec requires.
func normalizeID(id json.RawMessage) json.RawMessage {
	if len(id) == 0 {
		return json.RawMessage("null")
	}
	return id
}

// rawRequest mirrors Request but keeps params unsplit, so a non-array
// params member is rejected with InvalidParams rather than a decode
// failure that would mask the request id.
type rawRequest struct {
	JSONRPC *string         `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  *string         `json:"method"`
	Params  json.RawMessage `json:"params"`
}

// DecodeRequests parses one HTTP body into its calls. isBatch reports
// whether the body was a JSON array (the response must then be an array
// too). A top-level syntax error returns *Error with ErrCodeParse; a
// structurally invalid single request returns ErrCodeInvalidRequest.
// Individual bad entries inside a batch do NOT fail the whole batch:
// they come back as Request values with a non-nil decodeErr recorded via
// the returned errs slice (indexed like the requests).
func DecodeRequests(body []byte, maxBatch int) (reqs []Request, errs []*Error, isBatch bool, topErr *Error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, nil, false, Errf(ErrCodeInvalidRequest, "empty request body")
	}
	if trimmed[0] == '[' {
		var raws []json.RawMessage
		if err := json.Unmarshal(trimmed, &raws); err != nil {
			return nil, nil, false, Errf(ErrCodeParse, "parse error: %v", err)
		}
		if len(raws) == 0 {
			return nil, nil, true, Errf(ErrCodeInvalidRequest, "empty batch")
		}
		if maxBatch > 0 && len(raws) > maxBatch {
			return nil, nil, true, Errf(ErrCodeInvalidRequest, "batch of %d exceeds limit %d", len(raws), maxBatch)
		}
		reqs = make([]Request, len(raws))
		errs = make([]*Error, len(raws))
		for i, raw := range raws {
			reqs[i], errs[i] = decodeOne(raw)
		}
		return reqs, errs, true, nil
	}
	req, err := decodeOne(trimmed)
	if err != nil && err.Code == ErrCodeParse {
		return nil, nil, false, err
	}
	return []Request{req}, []*Error{err}, false, nil
}

// decodeOne parses and validates a single call object.
func decodeOne(raw json.RawMessage) (Request, *Error) {
	var rr rawRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil {
		// Distinguish syntax errors from structural ones: a syntax error
		// means we may not even know the id.
		var syn *json.SyntaxError
		if errors.As(err, &syn) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return Request{}, Errf(ErrCodeParse, "parse error: %v", err)
		}
		return Request{ID: rr.ID}, Errf(ErrCodeInvalidRequest, "invalid request: %v", err)
	}
	req := Request{ID: rr.ID}
	if rr.JSONRPC == nil || *rr.JSONRPC != Version {
		return req, Errf(ErrCodeInvalidRequest, `invalid request: jsonrpc member must be "2.0"`)
	}
	req.JSONRPC = *rr.JSONRPC
	if rr.Method == nil || *rr.Method == "" {
		return req, Errf(ErrCodeInvalidRequest, "invalid request: missing method")
	}
	req.Method = *rr.Method
	if len(rr.Params) > 0 && !bytes.Equal(bytes.TrimSpace(rr.Params), []byte("null")) {
		if err := json.Unmarshal(rr.Params, &req.Params); err != nil {
			return req, Errf(ErrCodeInvalidParams, "params must be a JSON array: %v", err)
		}
	}
	if len(req.ID) > 0 {
		// The id must be a string, number or null — not an object/array.
		idTrim := bytes.TrimSpace(req.ID)
		if idTrim[0] == '{' || idTrim[0] == '[' {
			return Request{}, Errf(ErrCodeInvalidRequest, "invalid request: id must be a string, number or null")
		}
	}
	return req, nil
}

// IsNotification reports whether the call carries no id (fire-and-forget
// per the spec: executed, but excluded from the response).
func (r *Request) IsNotification() bool { return len(r.ID) == 0 }

// CacheKey is the canonical request encoding used as the response-cache
// key: method plus compacted params JSON. Two requests differing only in
// whitespace or member order inside the envelope share a key; params are
// compared textually after compaction.
func (r *Request) CacheKey() string {
	var b bytes.Buffer
	b.WriteString(r.Method)
	b.WriteByte(0)
	for _, p := range r.Params {
		var c bytes.Buffer
		if err := json.Compact(&c, p); err == nil {
			b.Write(c.Bytes())
		} else {
			b.Write(p)
		}
		b.WriteByte(0)
	}
	return b.String()
}
