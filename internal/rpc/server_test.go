package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/types"
)

var (
	alice = types.HexToAddress("0xa11ce")
	bob   = types.HexToAddress("0xb0b")
	pool1 = types.HexToAddress("0x9001")
	pool2 = types.HexToAddress("0x9002")
)

func testGenesis() *chain.Genesis {
	return &chain.Genesis{
		Difficulty: big.NewInt(131072 * 4),
		Time:       1_000_000,
		Alloc: map[types.Address]*big.Int{
			alice: new(big.Int).Mul(big.NewInt(1000), chain.Ether),
		},
	}
}

func transfer(nonce uint64, from, to types.Address, wei int64, chainID uint64) *chain.Transaction {
	return chain.NewTransaction(nonce, &to, big.NewInt(wei), 21_000, big.NewInt(1), nil).Sign(from, chainID)
}

func mine(t *testing.T, bc *chain.Blockchain, coinbase types.Address, txs ...*chain.Transaction) *chain.Block {
	t.Helper()
	b, err := bc.BuildBlock(coinbase, bc.Head().Header.Time+13, txs)
	if err != nil {
		t.Fatalf("BuildBlock: %v", err)
	}
	if err := bc.InsertBlock(b); err != nil {
		t.Fatalf("InsertBlock: %v", err)
	}
	return b
}

// newTestPair builds two paired chains (the two partitions) sharing a
// genesis and a replayed transaction, plus a server mounting both.
func newTestPair(t *testing.T) (*chain.Blockchain, *chain.Blockchain, *Server) {
	t.Helper()
	cfg := chain.MainnetLikeConfig()
	eth, err := chain.NewBlockchain(cfg, testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	etc, err := chain.NewBlockchain(cfg, testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	// Pre-EIP155 signatures (chainID 0) are valid on both partitions —
	// exactly the replay condition the paper measured.
	const chainID = 0
	// The same signed transfer lands on both chains: an O5 echo.
	echoTx := transfer(0, alice, bob, 7_000, chainID)
	mine(t, eth, pool1, echoTx)
	mine(t, eth, pool1, transfer(1, alice, bob, 1_000, chainID))
	mine(t, eth, pool2)
	mine(t, etc, pool2, echoTx)

	srv := NewServer(ServerConfig{Workers: 4})
	t.Cleanup(srv.Close)
	beEth := NewBackend("ETH", eth)
	beEtc := NewBackend("ETC", etc)
	beEth.SetPeer(beEtc)
	beEtc.SetPeer(beEth)
	srv.RegisterChain(beEth)
	srv.RegisterChain(beEtc)
	return eth, etc, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func hexToUint(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		t.Fatalf("bad hex quantity %q: %v", s, err)
	}
	return v
}

func TestEndToEndMethods(t *testing.T) {
	eth, _, srv := newTestPair(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL+"/eth", nil)

	var headHex string
	if err := cl.Call(&headHex, "eth_blockNumber"); err != nil {
		t.Fatalf("eth_blockNumber: %v", err)
	}
	if got := hexToUint(t, headHex); got != 3 {
		t.Fatalf("blockNumber = %d, want 3", got)
	}

	var blk map[string]any
	if err := cl.Call(&blk, "eth_getBlockByNumber", "0x1", true); err != nil {
		t.Fatalf("eth_getBlockByNumber: %v", err)
	}
	if blk["number"] != "0x1" {
		t.Fatalf("block number field = %v", blk["number"])
	}
	txs := blk["transactions"].([]any)
	if len(txs) != 1 {
		t.Fatalf("block 1 carries %d txs, want 1", len(txs))
	}
	txObj := txs[0].(map[string]any)
	txHash := txObj["hash"].(string)

	var byHash map[string]any
	if err := cl.Call(&byHash, "eth_getBlockByHash", blk["hash"], false); err != nil {
		t.Fatalf("eth_getBlockByHash: %v", err)
	}
	if byHash["hash"] != blk["hash"] {
		t.Fatalf("byHash mismatch: %v vs %v", byHash["hash"], blk["hash"])
	}
	if _, ok := byHash["transactions"].([]any)[0].(string); !ok {
		t.Fatal("fullTransactions=false should return hash strings")
	}

	var tx map[string]any
	if err := cl.Call(&tx, "eth_getTransactionByHash", txHash); err != nil {
		t.Fatalf("eth_getTransactionByHash: %v", err)
	}
	if tx["blockNumber"] != "0x1" || tx["hash"] != txHash {
		t.Fatalf("tx lookup mismatch: %v", tx)
	}

	var rec map[string]any
	if err := cl.Call(&rec, "eth_getTransactionReceipt", txHash); err != nil {
		t.Fatalf("eth_getTransactionReceipt: %v", err)
	}
	if rec["transactionHash"] != txHash || rec["status"] != "0x1" {
		t.Fatalf("receipt mismatch: %v", rec)
	}

	var missing *map[string]any
	if err := cl.Call(&missing, "eth_getTransactionByHash", types.Hash{0xde, 0xad}.Hex()); err != nil {
		t.Fatalf("absent tx should be null result, got %v", err)
	}
	if missing != nil {
		t.Fatalf("absent tx = %v, want null", missing)
	}

	var bal string
	if err := cl.Call(&bal, "eth_getBalance", bob.Hex(), "latest"); err != nil {
		t.Fatalf("eth_getBalance: %v", err)
	}
	if hexToUint(t, bal) != 8_000 {
		t.Fatalf("bob balance = %s, want 0x1f40", bal)
	}
	// At block 1 only the first transfer has landed.
	if err := cl.Call(&bal, "eth_getBalance", bob.Hex(), "0x1"); err != nil {
		t.Fatalf("eth_getBalance at block: %v", err)
	}
	if hexToUint(t, bal) != 7_000 {
		t.Fatalf("bob balance at 1 = %s, want 0x1b58", bal)
	}

	var nonce string
	if err := cl.Call(&nonce, "eth_getTransactionCount", alice.Hex(), "latest"); err != nil {
		t.Fatalf("eth_getTransactionCount: %v", err)
	}
	if hexToUint(t, nonce) != 2 {
		t.Fatalf("alice nonce = %s, want 0x2", nonce)
	}

	var window struct {
		Points []struct{ Number, Difficulty string } `json:"points"`
	}
	if err := cl.Call(&window, "fork_difficultyWindow", "0x0", "0x3"); err != nil {
		t.Fatalf("fork_difficultyWindow: %v", err)
	}
	if len(window.Points) != 4 {
		t.Fatalf("window points = %d, want 4", len(window.Points))
	}

	var echoes struct {
		Echoes []struct{ Hash, BlockNumber, PeerBlockNumber string } `json:"echoes"`
	}
	if err := cl.Call(&echoes, "fork_echoCandidates", "0x1", "0x3"); err != nil {
		t.Fatalf("fork_echoCandidates: %v", err)
	}
	if len(echoes.Echoes) != 1 || echoes.Echoes[0].Hash != txHash {
		t.Fatalf("echo join = %+v, want the replayed tx %s", echoes.Echoes, txHash)
	}

	var pools struct {
		TotalBlocks int `json:"totalBlocks"`
		Pools       []struct {
			Miner  string  `json:"miner"`
			Blocks int     `json:"blocks"`
			Share  float64 `json:"share"`
		} `json:"pools"`
	}
	if err := cl.Call(&pools, "fork_poolShares", "0x1", "0x3"); err != nil {
		t.Fatalf("fork_poolShares: %v", err)
	}
	if pools.TotalBlocks != 3 || len(pools.Pools) != 2 {
		t.Fatalf("pool shares = %+v", pools)
	}
	if pools.Pools[0].Miner != pool1.Hex() || pools.Pools[0].Blocks != 2 {
		t.Fatalf("dominant pool = %+v, want %s with 2 blocks", pools.Pools[0], pool1.Hex())
	}

	// The second chain serves independently.
	cl2 := NewClient(ts.URL+"/etc", nil)
	if err := cl2.Call(&headHex, "eth_blockNumber"); err != nil {
		t.Fatalf("etc eth_blockNumber: %v", err)
	}
	if hexToUint(t, headHex) != 1 {
		t.Fatalf("etc head = %s, want 0x1", headHex)
	}

	_ = eth
}

func TestBatchAndNotifications(t *testing.T) {
	_, _, srv := newTestPair(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `[
		{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]},
		{"jsonrpc":"2.0","method":"eth_blockNumber","params":[]},
		{"jsonrpc":"2.0","id":"two","method":"nope"},
		{"bogus":true}
	]`
	resp, raw := postJSON(t, ts.URL+"/eth", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch HTTP status = %d", resp.StatusCode)
	}
	var out []Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("batch response is not an array: %v\n%s", err, raw)
	}
	// Notification excluded: 3 responses for 4 calls.
	if len(out) != 3 {
		t.Fatalf("batch replies = %d, want 3 (notification skipped)", len(out))
	}
	if out[0].Error != nil || out[0].Result == nil {
		t.Fatalf("call 1 should succeed: %+v", out[0])
	}
	if out[1].Error == nil || out[1].Error.Code != ErrCodeMethodNotFound {
		t.Fatalf("call 3 should be method-not-found: %+v", out[1])
	}
	if out[2].Error == nil || out[2].Error.Code != ErrCodeInvalidRequest {
		t.Fatalf("call 4 should be invalid-request: %+v", out[2])
	}

	// All-notification batches produce 204 No Content.
	resp, _ = postJSON(t, ts.URL+"/eth", `[{"jsonrpc":"2.0","method":"eth_blockNumber","params":[]}]`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("notification-only batch status = %d, want 204", resp.StatusCode)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, _, srv := newTestPair(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/eth"

	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"syntax", `{"jsonrpc":"2.0","id":1,`, ErrCodeParse},
		{"empty body", ``, ErrCodeInvalidRequest},
		{"empty batch", `[]`, ErrCodeInvalidRequest},
		{"wrong version", `{"jsonrpc":"1.0","id":1,"method":"eth_blockNumber"}`, ErrCodeInvalidRequest},
		{"missing method", `{"jsonrpc":"2.0","id":1}`, ErrCodeInvalidRequest},
		{"object params", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":{}}`, ErrCodeInvalidParams},
		{"object id", `{"jsonrpc":"2.0","id":{},"method":"eth_blockNumber"}`, ErrCodeInvalidRequest},
		{"unknown method", `{"jsonrpc":"2.0","id":1,"method":"eth_mystery","params":[]}`, ErrCodeMethodNotFound},
		{"bad hash param", `{"jsonrpc":"2.0","id":1,"method":"eth_getTransactionByHash","params":["0x12"]}`, ErrCodeInvalidParams},
		{"param count", `{"jsonrpc":"2.0","id":1,"method":"eth_getBalance","params":[]}`, ErrCodeInvalidParams},
		{"inverted window", `{"jsonrpc":"2.0","id":1,"method":"fork_poolShares","params":["0x5","0x1"]}`, ErrCodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, url, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HTTP status = %d, want 200 with JSON-RPC error", resp.StatusCode)
			}
			var out Response
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("bad response: %v\n%s", err, raw)
			}
			if out.Error == nil || out.Error.Code != tc.wantCode {
				t.Fatalf("error = %+v, want code %d", out.Error, tc.wantCode)
			}
		})
	}

	// Non-POST and unknown routes are plain HTTP errors.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/btc", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown chain status = %d, want 404", resp.StatusCode)
	}
}

func TestCacheInvalidationOnHeadAdvance(t *testing.T) {
	eth, _, srv := newTestPair(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL+"/eth", nil)

	var first, second, third string
	if err := cl.Call(&first, "eth_blockNumber"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Call(&second, "eth_blockNumber"); err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("repeated call disagrees: %s vs %s", first, second)
	}
	hits := srv.Registry().Counter("rpc.eth.eth_blockNumber.cache_hits").Value()
	if hits == 0 {
		t.Fatal("second identical call should hit the response cache")
	}

	mine(t, eth, pool1)
	if err := cl.Call(&third, "eth_blockNumber"); err != nil {
		t.Fatal(err)
	}
	if hexToUint(t, third) != hexToUint(t, first)+1 {
		t.Fatalf("post-advance blockNumber = %s, want %s+1 (stale cache?)", third, first)
	}
}

func TestRateLimiting(t *testing.T) {
	eth, err := chain.NewBlockchain(chain.MainnetLikeConfig(), testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Workers: 2, RatePerSec: 0.001, RateBurst: 2})
	defer srv.Close()
	srv.RegisterChain(NewBackend("ETH", eth))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, ts.URL+"/eth", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d, want 200", i, resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/eth", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

func TestQueueBackpressure(t *testing.T) {
	eth, err := chain.NewBlockchain(chain.MainnetLikeConfig(), testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Workers: 1, QueueDepth: 1, RequestTimeout: 300 * time.Millisecond})
	srv.RegisterChain(NewBackend("ETH", eth))
	// Stop the workers: jobs queue but never drain, so the queue slot
	// stays occupied and the next request must be shed.
	srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies the single queue slot, then times out with a JSON-RPC
		// timeout error (the transport must never hang).
		resp, raw := postJSON(t, ts.URL+"/eth", body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued request status = %d", resp.StatusCode)
			return
		}
		var out Response
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Errorf("queued request response: %v", err)
			return
		}
		if out.Error == nil || out.Error.Code != ErrCodeTimeout {
			t.Errorf("queued request error = %+v, want timeout", out.Error)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the first request take the slot

	resp, _ := postJSON(t, ts.URL+"/eth", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}
	wg.Wait()
}

// TestNoStaleHeadUnderConcurrentMining is the staleness invariant test:
// 50 client goroutines hammer eth_blockNumber (and friends) while the
// head keeps advancing. Any response observed after block N commits must
// report a head >= the number read before the request was issued — the
// generation-tagged cache may never serve a pre-advance answer to a
// post-advance request.
func TestNoStaleHeadUnderConcurrentMining(t *testing.T) {
	cfg := chain.MainnetLikeConfig()
	eth, err := chain.NewBlockchain(cfg, testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Workers: 8, QueueDepth: 4096, RequestTimeout: 10 * time.Second})
	defer srv.Close()
	srv.RegisterChain(NewBackend("ETH", eth))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		clients = 50
		rounds  = 20
		blocks  = 30
	)
	stop := make(chan struct{})
	var minerWG sync.WaitGroup
	minerWG.Add(1)
	go func() {
		defer minerWG.Done()
		for i := 0; i < blocks; i++ {
			b, err := eth.BuildBlock(pool1, eth.Head().Header.Time+13, nil)
			if err != nil {
				t.Errorf("BuildBlock: %v", err)
				return
			}
			if err := eth.InsertBlock(b); err != nil {
				t.Errorf("InsertBlock: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := NewClient(ts.URL+"/eth", &http.Client{Timeout: 10 * time.Second})
			for i := 0; i < rounds; i++ {
				// Head number observed BEFORE issuing the request: the
				// response may never be older than this.
				before := eth.Head().Number()
				var hex string
				if err := cl.Call(&hex, "eth_blockNumber"); err != nil {
					t.Errorf("eth_blockNumber: %v", err)
					return
				}
				got, err := strconv.ParseUint(strings.TrimPrefix(hex, "0x"), 16, 64)
				if err != nil {
					t.Errorf("bad quantity %q", hex)
					return
				}
				if got < before {
					t.Errorf("STALE response: blockNumber=%d but head was already %d", got, before)
					return
				}
				// Mix in a cached-window method to churn the caches.
				if i%5 == 0 {
					var out map[string]any
					if err := cl.Call(&out, "fork_poolShares", "0x0", fmt.Sprintf("0x%x", before)); err != nil {
						t.Errorf("fork_poolShares: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	minerWG.Wait()
	<-stop
}

// TestChaosFaultyStorage hammers a server whose chain sits on a fault-
// injecting KV with a 20% read-error rate: every single response must be
// well-formed JSON-RPC (result or typed error object), with zero panics
// and zero hung requests.
func TestChaosFaultyStorage(t *testing.T) {
	inner := db.NewMemDB()
	fkv := faultkv.Wrap(inner, faultkv.Faults{
		Seed:        42,
		ReadErrRate: 0.20,
	})
	fkv.SetEnabled(false) // build the fixture cleanly
	cfg := chain.MainnetLikeConfig()
	eth, err := chain.NewBlockchainWithDB(cfg, testGenesis(), fkv)
	if err != nil {
		t.Fatal(err)
	}
	var txHashes []string
	for i := 0; i < 10; i++ {
		tx := transfer(uint64(i), alice, bob, 1_000, 0)
		mine(t, eth, pool1, tx)
		txHashes = append(txHashes, tx.Hash().Hex())
	}
	fkv.SetEnabled(true) // chaos on

	srv := NewServer(ServerConfig{Workers: 4, QueueDepth: 1024, RequestTimeout: 5 * time.Second})
	defer srv.Close()
	srv.RegisterChain(NewBackend("ETH", eth))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bodies := []string{
		`{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`,
		`{"jsonrpc":"2.0","id":2,"method":"eth_getBlockByNumber","params":["0x5",true]}`,
		fmt.Sprintf(`{"jsonrpc":"2.0","id":3,"method":"eth_getTransactionByHash","params":[%q]}`, txHashes[3]),
		fmt.Sprintf(`{"jsonrpc":"2.0","id":4,"method":"eth_getTransactionReceipt","params":[%q]}`, txHashes[7]),
		fmt.Sprintf(`{"jsonrpc":"2.0","id":5,"method":"eth_getBalance","params":[%q,"latest"]}`, bob.Hex()),
		`{"jsonrpc":"2.0","id":6,"method":"fork_poolShares","params":["0x0","0xa"]}`,
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var storageErrs, successes int
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 8 * time.Second}
			for i := 0; i < 40; i++ {
				body := bodies[(c+i)%len(bodies)]
				resp, err := hc.Post(ts.URL+"/eth", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("transport error (hung request?): %v", err)
					return
				}
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					continue // shed load is an acceptable outcome
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("HTTP %d under chaos: %s", resp.StatusCode, buf.String())
					return
				}
				var out Response
				if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
					t.Errorf("malformed response under chaos: %v\n%s", err, buf.String())
					return
				}
				if out.JSONRPC != Version {
					t.Errorf("response missing jsonrpc version: %s", buf.String())
					return
				}
				hasResult := out.Result != nil
				hasError := out.Error != nil
				if hasResult == hasError && !hasResult {
					// Null results (absent tx/block) marshal with neither
					// member set in our Response struct; re-check raw.
					if !bytes.Contains(buf.Bytes(), []byte(`"result"`)) &&
						!bytes.Contains(buf.Bytes(), []byte(`"error"`)) {
						t.Errorf("response carries neither result nor error: %s", buf.String())
						return
					}
				}
				mu.Lock()
				if hasError {
					switch out.Error.Code {
					case ErrCodeStorage, ErrCodeTimeout, ErrCodeNotFound, ErrCodeInternal:
						storageErrs++
					default:
						mu.Unlock()
						t.Errorf("unexpected error code %d under chaos: %s", out.Error.Code, out.Error.Message)
						return
					}
				} else {
					successes++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	t.Logf("chaos run: %d successes, %d typed storage/timeout errors", successes, storageErrs)
	if storageErrs == 0 {
		t.Error("20% read faults should surface at least one typed storage error")
	}
	if successes == 0 {
		t.Error("some requests should still succeed under 20% faults")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, srv := newTestPair(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Generate a little traffic first.
	postJSON(t, ts.URL+"/eth", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`)

	resp, raw := postJSON(t, ts.URL+"/debug/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{
		"rpc.eth.eth_blockNumber.requests",
		"rpc.eth.eth_blockNumber.latency",
		"storage.eth.reads",
		"storage.etc.reads",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
}

func TestClientBatch(t *testing.T) {
	_, _, srv := newTestPair(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL+"/eth", nil)

	var head string
	var blk map[string]any
	elems := []BatchElem{
		{Method: "eth_blockNumber", Result: &head},
		{Method: "eth_getBlockByNumber", Params: []any{"0x1", false}, Result: &blk},
		{Method: "eth_nothing"},
	}
	if err := cl.Batch(elems); err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if elems[0].Err != nil || head == "" {
		t.Fatalf("batch elem 0: err=%v head=%q", elems[0].Err, head)
	}
	if elems[1].Err != nil || blk["number"] != "0x1" {
		t.Fatalf("batch elem 1: err=%v blk=%v", elems[1].Err, blk)
	}
	var rpcErr *Error
	if elems[2].Err == nil || !errorsAs(elems[2].Err, &rpcErr) || rpcErr.Code != ErrCodeMethodNotFound {
		t.Fatalf("batch elem 2: err=%v, want method-not-found", elems[2].Err)
	}
}

// errorsAs is a tiny local wrapper to keep the test imports tidy.
func errorsAs(err error, target *(*Error)) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}
