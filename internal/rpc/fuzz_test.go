package rpc

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the JSON-RPC request
// decoder: it must never panic, and whatever it accepts must satisfy the
// decoder's own invariants (version pinned, method non-empty, errs slice
// aligned with reqs, notifications id-free).
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`,
		`{"jsonrpc":"2.0","id":"abc","method":"eth_getBlockByNumber","params":["0x1",true]}`,
		`{"jsonrpc":"2.0","method":"notify_me"}`,
		`[{"jsonrpc":"2.0","id":1,"method":"a"},{"jsonrpc":"2.0","id":2,"method":"b"}]`,
		`[]`,
		`[1,2,3]`,
		`{"jsonrpc":"1.0","id":1,"method":"x"}`,
		`{"jsonrpc":"2.0","id":{},"method":"x"}`,
		`{"jsonrpc":"2.0","id":1,"method":"x","params":{"a":1}}`,
		`{"jsonrpc":"2.0","id":1,"method":"x","params":null}`,
		`{"jsonrpc":"2.0","id":1,`,
		`null`,
		``,
		"\x00\x01\x02",
		`{"jsonrpc":"2.0","id":1,"method":"x","extra":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		reqs, errs, isBatch, topErr := DecodeRequests(body, 64)
		if topErr != nil {
			if len(reqs) != 0 {
				t.Fatalf("top-level error must not come with requests: %v", topErr)
			}
			return
		}
		if len(errs) != len(reqs) {
			t.Fatalf("errs (%d) misaligned with reqs (%d)", len(errs), len(reqs))
		}
		if !isBatch && len(reqs) != 1 {
			t.Fatalf("non-batch decoded to %d requests", len(reqs))
		}
		for i, req := range reqs {
			if errs[i] != nil {
				if errs[i].Code == 0 || errs[i].Message == "" {
					t.Fatalf("entry %d: untyped decode error %+v", i, errs[i])
				}
				continue
			}
			if req.JSONRPC != Version {
				t.Fatalf("entry %d: accepted version %q", i, req.JSONRPC)
			}
			if req.Method == "" {
				t.Fatalf("entry %d: accepted empty method", i)
			}
			if len(req.ID) > 0 && !json.Valid(req.ID) {
				t.Fatalf("entry %d: invalid id token %q", i, req.ID)
			}
			// The cache key must be deterministic and never panic.
			if k1, k2 := req.CacheKey(), req.CacheKey(); k1 != k2 {
				t.Fatalf("entry %d: unstable cache key", i)
			}
		}
	})
}
