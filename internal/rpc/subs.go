// Subscription and live-measurement RPC: the fork_live* namespace and
// the fork_subscribe family, backed by a feed.Feed attached to the
// route's backend. Two transports share the feed's cursor-resumable
// reads:
//
//   - long-poll: fork_subscribe registers a server-side cursor;
//     fork_pollSubscription advances it, optionally waiting briefly for
//     new events. Polls are plain POST calls, so they survive lossy
//     transports — a dropped response is just re-polled, and the cursor
//     guarantees no event is missed until it falls off the replay ring
//     (which the client sees as an explicit gap flag).
//   - persistent streams: GET /<route>/stream holds the connection open
//     and pushes newline-delimited JSON notifications as events arrive
//     (the WebSocket-style transport, without a WebSocket dependency).
//
// Live methods are uncacheable — their results move independently of
// the chain head — and bypass the storage breaker, since they never
// touch the store.
package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"forkwatch/internal/live/feed"
)

// LiveSource is what a backend needs to answer live/subscription
// methods: the event feed and a snapshot source for fork_liveSnapshot.
type LiveSource struct {
	Feed     *feed.Feed
	Snapshot func() any
}

// SetLive attaches the live measurement plane to this backend's route.
// Routes without one answer live methods with ErrCodeUnavailable.
func (b *Backend) SetLive(src *LiveSource) { b.live = src }

// Live returns the attached live source, or nil.
func (b *Backend) Live() *LiveSource { return b.live }

// uncacheable marks methods the server must not cache or breaker-gate.
var uncacheable = map[string]bool{
	"fork_subscribe":        true,
	"fork_unsubscribe":      true,
	"fork_pollSubscription": true,
	"fork_liveEvents":       true,
	"fork_liveSnapshot":     true,
}

func init() {
	methods["fork_subscribe"] = forkSubscribe
	methods["fork_unsubscribe"] = forkUnsubscribe
	methods["fork_pollSubscription"] = forkPollSubscription
	methods["fork_liveEvents"] = forkLiveEvents
	methods["fork_liveSnapshot"] = forkLiveSnapshot
}

// maxPollWait caps how long fork_pollSubscription may hold a worker
// waiting for events. Long-poll clients loop; the cap keeps a crowd of
// idle subscribers from starving the worker pool.
const maxPollWait = 250 * time.Millisecond

// maxPollBatch caps the events returned per poll/read.
const maxPollBatch = 4096

func liveFor(b *Backend) (*LiveSource, *Error) {
	if b.live == nil || b.live.Feed == nil {
		return nil, Errf(ErrCodeUnavailable, "live plane not attached on %s", b.name)
	}
	return b.live, nil
}

// liveChainFilter returns the chain filter a stream carries on this
// route: newHeads is scoped to the route's own chain, the rest are
// global.
func liveChainFilter(b *Backend, stream string) string {
	if stream == feed.StreamNewHeads {
		return b.name
	}
	return ""
}

// subscribeResult is the fork_subscribe payload.
type subscribeResult struct {
	Subscription string `json:"subscription"`
	Stream       string `json:"stream"`
	Cursor       uint64 `json:"cursor"`
}

// forkSubscribe registers a long-poll subscription:
// params [stream, optional fromCursor]. The returned cursor is where
// the subscription starts (now, unless fromCursor rewinds it).
func forkSubscribe(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	src, rpcErr := liveFor(b)
	if rpcErr != nil {
		return nil, rpcErr
	}
	if len(params) < 1 || len(params) > 2 {
		return nil, Errf(ErrCodeInvalidParams, "fork_subscribe takes (stream[, fromCursor])")
	}
	var stream string
	if err := decodeParam(params[0], &stream, "stream"); err != nil {
		return nil, err
	}
	if !feed.ValidStream(stream) {
		return nil, Errf(ErrCodeInvalidParams, "unknown stream %q", stream)
	}
	var from *uint64
	if len(params) == 2 {
		var v uint64
		if err := decodeParam(params[1], &v, "fromCursor"); err != nil {
			return nil, err
		}
		from = &v
	}
	id, cursor := src.Feed.SubscribePoll(stream, liveChainFilter(b, stream), from)
	return subscribeResult{Subscription: encUint(id), Stream: stream, Cursor: cursor}, nil
}

// forkUnsubscribe drops a subscription: params [subscriptionID].
func forkUnsubscribe(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	src, rpcErr := liveFor(b)
	if rpcErr != nil {
		return nil, rpcErr
	}
	if err := needParams(params, 1, "fork_unsubscribe(subscription)"); err != nil {
		return nil, err
	}
	id, err := parseQuantity(params[0], "subscription")
	if err != nil {
		return nil, err
	}
	return src.Feed.Unsubscribe(id), nil
}

// pollResult is the fork_pollSubscription / fork_liveEvents payload.
type pollResult struct {
	Events []feed.Event `json:"events"`
	Cursor uint64       `json:"cursor"`
	Gap    bool         `json:"gap"`
	Lag    uint64       `json:"lag,omitempty"`
	Seq    uint64       `json:"seq,omitempty"`
}

// forkPollSubscription advances a subscription's cursor:
// params [subscriptionID, optional max, optional waitMs]. With waitMs
// it long-polls — briefly (capped server-side) — when no event is
// pending.
func forkPollSubscription(ctx context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	src, rpcErr := liveFor(b)
	if rpcErr != nil {
		return nil, rpcErr
	}
	if len(params) < 1 || len(params) > 3 {
		return nil, Errf(ErrCodeInvalidParams, "fork_pollSubscription takes (subscription[, max[, waitMs]])")
	}
	id, err := parseQuantity(params[0], "subscription")
	if err != nil {
		return nil, err
	}
	max := 0
	if len(params) >= 2 {
		if err := decodeParam(params[1], &max, "max"); err != nil {
			return nil, err
		}
	}
	if max <= 0 || max > maxPollBatch {
		max = maxPollBatch
	}
	waitMs := 0
	if len(params) == 3 {
		if err := decodeParam(params[2], &waitMs, "waitMs"); err != nil {
			return nil, err
		}
	}
	events, cursor, gap, lag, ok := src.Feed.Poll(id, max)
	if !ok {
		return nil, Errf(ErrCodeNotFound, "unknown subscription %s (expired?)", encUint(id))
	}
	if len(events) == 0 && waitMs > 0 {
		wait := time.Duration(waitMs) * time.Millisecond
		if wait > maxPollWait {
			wait = maxPollWait
		}
		timer := time.NewTimer(wait)
		select {
		case <-src.Feed.WaitChan(cursor):
		case <-timer.C:
		case <-ctx.Done():
		}
		timer.Stop()
		events, cursor, gap, lag, ok = src.Feed.Poll(id, max)
		if !ok {
			return nil, Errf(ErrCodeNotFound, "unknown subscription %s (expired?)", encUint(id))
		}
	}
	if events == nil {
		events = []feed.Event{}
	}
	return pollResult{Events: events, Cursor: cursor, Gap: gap, Lag: lag}, nil
}

// forkLiveEvents is the stateless read: params [stream, cursor,
// optional max]. No server-side registration — the client owns the
// cursor, so the call is idempotent and safe to retry over lossy
// transports.
func forkLiveEvents(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	src, rpcErr := liveFor(b)
	if rpcErr != nil {
		return nil, rpcErr
	}
	if len(params) < 2 || len(params) > 3 {
		return nil, Errf(ErrCodeInvalidParams, "fork_liveEvents takes (stream, cursor[, max])")
	}
	var stream string
	if err := decodeParam(params[0], &stream, "stream"); err != nil {
		return nil, err
	}
	if !feed.ValidStream(stream) {
		return nil, Errf(ErrCodeInvalidParams, "unknown stream %q", stream)
	}
	var cursor uint64
	if err := decodeParam(params[1], &cursor, "cursor"); err != nil {
		return nil, err
	}
	max := 0
	if len(params) == 3 {
		if err := decodeParam(params[2], &max, "max"); err != nil {
			return nil, err
		}
	}
	if max <= 0 || max > maxPollBatch {
		max = maxPollBatch
	}
	events, next, gap := src.Feed.ReadSince(stream, liveChainFilter(b, stream), cursor, max)
	if events == nil {
		events = []feed.Event{}
	}
	return pollResult{Events: events, Cursor: next, Gap: gap, Seq: src.Feed.Seq()}, nil
}

// forkLiveSnapshot returns the rolling O1–O6 view: params [].
func forkLiveSnapshot(_ context.Context, b *Backend, params []json.RawMessage) (any, *Error) {
	src, rpcErr := liveFor(b)
	if rpcErr != nil {
		return nil, rpcErr
	}
	if src.Snapshot == nil {
		return nil, Errf(ErrCodeUnavailable, "live snapshots not available on %s", b.name)
	}
	if err := needParams(params, 0, "fork_liveSnapshot()"); err != nil {
		return nil, err
	}
	return src.Snapshot(), nil
}

// streamNotification is one NDJSON line on /<route>/stream.
type streamNotification struct {
	JSONRPC string       `json:"jsonrpc"`
	Method  string       `json:"method"`
	Params  streamParams `json:"params"`
}

type streamParams struct {
	Stream    string      `json:"stream"`
	Event     *feed.Event `json:"event,omitempty"`
	Gap       bool        `json:"gap,omitempty"`
	Cursor    uint64      `json:"cursor"`
	Staleness *uint64     `json:"staleness,omitempty"`
}

// serveStream is the persistent transport: GET /<route>/stream?stream=
// newHeads&cursor=N pushes matching events as newline-delimited JSON
// until the run's EOF, the client hangs up, or the server drains. It
// runs on the HTTP handler goroutine — NOT the bounded worker pool — so
// a thousand idle streams cost goroutines, not workers; drainCh (not
// the inflight count) tears them down at shutdown.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, route string, be *Backend) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "streams are GET", http.StatusMethodNotAllowed)
		return
	}
	src := be.Live()
	if src == nil || src.Feed == nil {
		http.Error(w, "live plane not attached", http.StatusNotFound)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	stream := r.URL.Query().Get("stream")
	if stream == "" {
		stream = feed.StreamNewHeads
	}
	if !feed.ValidStream(stream) {
		http.Error(w, fmt.Sprintf("unknown stream %q", stream), http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by transport", http.StatusNotImplemented)
		return
	}
	cursor := src.Feed.Seq()
	if q := r.URL.Query().Get("cursor"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad cursor", http.StatusBadRequest)
			return
		}
		cursor = v
	}
	chainFilter := liveChainFilter(be, stream)

	subs := s.reg.Gauge("feed.subscribers")
	subs.Add(1)
	defer subs.Add(-1)
	s.reg.Counter("rpc." + route + ".streams").Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	// Header line: the negotiated stream and starting cursor, so the
	// client can resume on reconnect.
	_ = enc.Encode(streamParams{Stream: stream, Cursor: cursor})
	flusher.Flush()

	for {
		events, next, gap := src.Feed.ReadSince(stream, chainFilter, cursor, maxPollBatch)
		var staleness *uint64
		if fn := s.stalenessFor(route); fn != nil {
			if lag, degraded := fn(); degraded {
				staleness = &lag
			}
		}
		if gap {
			if err := enc.Encode(streamNotification{
				JSONRPC: "2.0", Method: "fork_subscription",
				Params: streamParams{Stream: stream, Gap: true, Cursor: next, Staleness: staleness},
			}); err != nil {
				return
			}
		}
		done := false
		for i := range events {
			ev := &events[i]
			if err := enc.Encode(streamNotification{
				JSONRPC: "2.0", Method: "fork_subscription",
				Params: streamParams{Stream: stream, Event: ev, Cursor: ev.Seq + 1, Staleness: staleness},
			}); err != nil {
				return
			}
			if ev.Kind == feed.KindEOF {
				done = true
			}
		}
		if len(events) > 0 || gap {
			flusher.Flush()
		}
		if done {
			return
		}
		cursor = next
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		case <-s.stopped:
			return
		case <-src.Feed.WaitChan(cursor):
		}
	}
}
