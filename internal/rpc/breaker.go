package rpc

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker guarding a flaky
// dependency (a failing store, an unreachable sync peer). Closed, it
// passes every attempt through and counts consecutive failures; once
// Threshold failures accumulate it opens and sheds every attempt for
// Cooldown without touching the dependency; after the cooldown one probe
// attempt is let through half-open — its outcome decides between closing
// again and another full cooldown.
//
// The breaker only counts what callers report: feed it dependency
// failures (storage errors, dial errors), not caller mistakes (invalid
// params), or it will open against healthy infrastructure.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook; nil = time.Now

	mu       sync.Mutex
	fails    int       // consecutive failures while closed
	openedAt time.Time // zero = closed
	probing  bool      // half-open probe in flight
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and shedding for cooldown before probing. A threshold <= 0
// returns a disabled breaker that always allows and never opens.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Allow reports whether an attempt may proceed. While open it returns
// false until the cooldown elapses, then admits exactly one half-open
// probe; the probe's Success/Fail settles the state.
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	if b.clock().Sub(b.openedAt) < b.cooldown {
		return false
	}
	if b.probing {
		return false // one probe at a time
	}
	b.probing = true
	return true
}

// Success reports a completed attempt: resets the failure streak and
// closes the breaker if the attempt was the half-open probe.
func (b *Breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.openedAt = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// Fail reports a dependency failure. Reaching the threshold — or failing
// the half-open probe — (re)opens the breaker for a fresh cooldown.
func (b *Breaker) Fail() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openedAt.IsZero() {
		// Failed probe (or a straggler from before the trip): restart the
		// cooldown from now.
		b.openedAt = b.clock()
		b.probing = false
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openedAt = b.clock()
		b.fails = 0
	}
}

// Open reports whether the breaker is currently shedding.
func (b *Breaker) Open() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openedAt.IsZero() && b.clock().Sub(b.openedAt) < b.cooldown
}
