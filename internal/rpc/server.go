package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forkwatch/internal/metrics"
)

// ServerConfig tunes the serving layer. The zero value picks production
// defaults sized for an in-memory archive.
type ServerConfig struct {
	// Workers is the size of the execution pool (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; a full queue sheds
	// load with 429 + Retry-After (default 256).
	QueueDepth int
	// RequestTimeout bounds one HTTP request end to end — queue wait plus
	// execution. A request that cannot finish (stalled storage) gets a
	// typed timeout error instead of hanging (default 5s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the calls per batch request (default 64).
	MaxBatch int
	// CacheEntries is the per-method response-cache capacity (default
	// 4096; negative disables caching).
	CacheEntries int
	// RatePerSec is the per-client token refill rate (0 = unlimited).
	RatePerSec float64
	// RateBurst is the per-client bucket size (default 2×RatePerSec).
	RateBurst int
	// BreakerThreshold is how many consecutive storage failures on one
	// route trip its circuit breaker; while open the route sheds with a
	// typed ErrCodeUnavailable instead of grinding against a failing
	// store (default 8; negative disables the breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before letting a
	// single half-open probe through (default 2s).
	BreakerCooldown time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// before giving up on them (default 5s).
	DrainTimeout time.Duration
	// Registry receives the server's metrics (default: a fresh registry).
	Registry *metrics.Registry
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RatePerSec)
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// job is one HTTP request's worth of calls travelling through the pool.
type job struct {
	ctx   context.Context
	be    *Backend
	reqs  []Request
	errs  []*Error
	batch bool
	done  chan []byte // marshalled response body; nil = no content
}

// Server routes per-chain JSON-RPC endpoints plus /debug/metrics over a
// shared bounded worker pool. Create with NewServer, register chains,
// then serve it as an http.Handler.
type Server struct {
	cfg     ServerConfig
	reg     *metrics.Registry
	limiter *rateLimiter

	mu       sync.RWMutex
	chains   map[string]*Backend // route ("eth") -> backend
	caches   map[string]*respCache
	breakers map[string]*Breaker      // route -> storage circuit breaker
	stale    map[string]StalenessFunc // route -> degraded-mode staleness source

	draining atomic.Bool
	inflight atomic.Int64

	jobs      chan *job
	stopOnce  sync.Once
	stopped   chan struct{}
	drainOnce sync.Once
	drainCh   chan struct{} // closed when Drain starts; wakes stream handlers
	wg        sync.WaitGroup
}

// StalenessFunc reports how far one route's chain trails the head it
// follows and whether that lag crosses the degraded line. The serving
// path samples it per response: degraded routes tag every response with
// the lag (see Response.Staleness) and flip the /readyz verdict.
type StalenessFunc func() (lag uint64, degraded bool)

// NewServer builds the server and starts its worker pool. Call Close to
// stop the workers.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		limiter:  newRateLimiter(cfg.RatePerSec, cfg.RateBurst),
		chains:   map[string]*Backend{},
		caches:   map[string]*respCache{},
		breakers: map[string]*Breaker{},
		stale:    map[string]StalenessFunc{},
		jobs:     make(chan *job, cfg.QueueDepth),
		stopped:  make(chan struct{}),
		drainCh:  make(chan struct{}),
	}
	// Pre-register the replica-tier metrics so /debug/metrics always
	// carries them: a standalone primary reports zeroes, a replica (or a
	// failover client sharing the registry) moves them.
	s.reg.Counter("rpc.failovers")
	s.reg.Counter("rpc.hedged")
	s.reg.Gauge("serve.degraded").Set(0)
	s.reg.Gauge("sync.lag_blocks").Set(0)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the worker pool. In-flight jobs finish; queued jobs are
// answered with an overloaded error.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.wg.Wait()
}

// RegisterChain mounts a backend at /<lowercase name> (e.g. "ETH" →
// /eth). It also wires the chain's storage counters into the metrics
// snapshot.
func (s *Server) RegisterChain(be *Backend) {
	route := strings.ToLower(be.Name())
	s.mu.Lock()
	s.chains[route] = be
	br, hasBreaker := s.breakers[route]
	if !hasBreaker {
		br = NewBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)
		s.breakers[route] = br
	}
	s.mu.Unlock()
	if !hasBreaker {
		s.reg.GaugeFunc("rpc."+route+".breaker_open", func() float64 {
			if br.Open() {
				return 1
			}
			return 0
		})
	}
	bc := be.Chain()
	prefix := "storage." + route + "."
	s.reg.GaugeFunc(prefix+"reads", func() float64 { return float64(bc.StorageStats().Reads) })
	s.reg.GaugeFunc(prefix+"writes", func() float64 { return float64(bc.StorageStats().Writes) })
	s.reg.GaugeFunc(prefix+"entries", func() float64 { return float64(bc.StorageStats().Entries) })
	s.reg.GaugeFunc(prefix+"hit_rate", func() float64 { return bc.StorageStats().HitRate() })
	s.reg.GaugeFunc(prefix+"repairs", func() float64 { return float64(bc.StorageStats().Repairs) })
	s.reg.GaugeFunc("rpc."+route+".cache_entries", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		n := 0
		for key, c := range s.caches {
			if strings.HasPrefix(key, route+".") {
				n += c.len()
			}
		}
		return float64(n)
	})
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// SetStaleness installs a route's staleness source (replicas wire their
// sync-lag tracker here). A nil fn removes it.
func (s *Server) SetStaleness(route string, fn StalenessFunc) {
	s.mu.Lock()
	if fn == nil {
		delete(s.stale, route)
	} else {
		s.stale[route] = fn
	}
	s.mu.Unlock()
}

// stalenessFor returns the route's staleness source, or nil.
func (s *Server) stalenessFor(route string) StalenessFunc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stale[route]
}

// breakerFor returns the route's circuit breaker (nil for unregistered
// routes; a nil Breaker always allows).
func (s *Server) breakerFor(route string) *Breaker {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.breakers[route]
}

// Drain stops accepting chain requests (503 + Retry-After) and waits up
// to DrainTimeout for the in-flight ones to finish, so a shutdown never
// tears a response mid-write. /healthz, /readyz and /debug/metrics keep
// answering — orchestration needs them during the drain. Idempotent.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.reg.Gauge("serve.draining").Set(1)
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// routeHealth is one route's entry in the /readyz report.
type routeHealth struct {
	Degraded  bool   `json:"degraded"`
	Staleness uint64 `json:"staleness"`
}

// Readiness is the /readyz payload: Ready is true only when the server
// is not draining and no route is degraded (stale beyond its bound or
// shedding through an open breaker).
type Readiness struct {
	Ready    bool                   `json:"ready"`
	Draining bool                   `json:"draining"`
	Routes   map[string]routeHealth `json:"routes"`
}

// CheckReadiness evaluates the current readiness verdict.
func (s *Server) CheckReadiness() Readiness {
	rd := Readiness{Ready: true, Draining: s.draining.Load(), Routes: map[string]routeHealth{}}
	if rd.Draining {
		rd.Ready = false
	}
	s.mu.RLock()
	routes := make([]string, 0, len(s.chains))
	for route := range s.chains {
		routes = append(routes, route)
	}
	s.mu.RUnlock()
	for _, route := range routes {
		h := routeHealth{}
		if fn := s.stalenessFor(route); fn != nil {
			h.Staleness, h.Degraded = fn()
		}
		if br := s.breakerFor(route); br.Open() {
			h.Degraded = true
		}
		if h.Degraded {
			rd.Ready = false
		}
		rd.Routes[route] = h
	}
	return rd
}

// cacheFor returns the per-(chain, method) response cache.
func (s *Server) cacheFor(route, method string) *respCache {
	key := route + "." + method
	s.mu.RLock()
	c, ok := s.caches[key]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.caches[key]; ok {
		return c
	}
	c = newRespCache(s.cfg.CacheEntries)
	s.caches[key] = c
	return c
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch path := strings.Trim(r.URL.Path, "/"); path {
	case "debug/metrics":
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
		return
	case "healthz":
		fmt.Fprintln(w, "ok")
		return
	case "readyz":
		rd := s.CheckReadiness()
		status := http.StatusOK
		if !rd.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, rd)
		return
	default:
		// /<route>/stream is the persistent subscription transport; the
		// bare route is the POST JSON-RPC endpoint.
		if route, ok := strings.CutSuffix(path, "/stream"); ok {
			s.mu.RLock()
			be, found := s.chains[route]
			s.mu.RUnlock()
			if !found {
				http.NotFound(w, r)
				return
			}
			s.serveStream(w, r, route, be)
			return
		}
		s.mu.RLock()
		be, ok := s.chains[path]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		s.serveChain(w, r, path, be)
	}
}

func (s *Server) serveChain(w http.ResponseWriter, r *http.Request, route string, be *Backend) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "JSON-RPC requires POST", http.StatusMethodNotAllowed)
		return
	}
	// Draining: refuse new work before touching the queue, finish what is
	// already in flight (tracked below).
	if s.draining.Load() {
		s.reg.Counter("rpc." + route + ".drained").Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.reg.Counter("rpc." + route + ".http_requests").Inc()

	// Per-client token bucket: shed before reading the body.
	client := clientKey(r)
	if ok, retry := s.limiter.allow(client); !ok {
		s.reg.Counter("rpc." + route + ".ratelimited").Inc()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds()+0.5)))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}

	body := make([]byte, 0, 512)
	limited := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := make([]byte, 4096)
	for {
		n, err := limited.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			if err.Error() == "http: request body too large" {
				s.reg.Counter("rpc." + route + ".oversized").Inc()
				http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
				return
			}
			break
		}
	}

	reqs, errs, isBatch, topErr := DecodeRequests(body, s.cfg.MaxBatch)
	if topErr != nil {
		s.reg.Counter("rpc." + route + ".malformed").Inc()
		writeJSON(w, http.StatusOK, replyErr(nil, topErr))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	j := &job{ctx: ctx, be: be, reqs: reqs, errs: errs, batch: isBatch, done: make(chan []byte, 1)}

	// Queue-depth backpressure: a full queue answers 429 immediately
	// rather than parking the connection.
	select {
	case s.jobs <- j:
		s.reg.Gauge("rpc.queue_depth").Set(int64(len(s.jobs)))
	default:
		s.reg.Counter("rpc." + route + ".shed").Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server saturated, retry later", http.StatusTooManyRequests)
		return
	}

	select {
	case resp := <-j.done:
		if resp == nil {
			w.WriteHeader(http.StatusNoContent) // batch of notifications
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(resp)
	case <-ctx.Done():
		// The worker may still be grinding behind a stalled store; the
		// client gets a well-formed timeout error regardless. The
		// buffered done channel lets the worker finish without leaking.
		s.reg.Counter("rpc." + route + ".timeouts").Inc()
		writeJSON(w, http.StatusOK, s.timeoutBody(reqs, isBatch))
	}
}

// timeoutBody builds the timeout response mirroring the request shape.
func (s *Server) timeoutBody(reqs []Request, isBatch bool) any {
	if !isBatch {
		var id json.RawMessage
		if len(reqs) > 0 {
			id = reqs[0].ID
		}
		return replyErr(id, Errf(ErrCodeTimeout, "request timed out after %s", s.cfg.RequestTimeout))
	}
	out := make([]*Response, 0, len(reqs))
	for _, req := range reqs {
		if req.IsNotification() {
			continue
		}
		out = append(out, replyErr(req.ID, Errf(ErrCodeTimeout, "request timed out after %s", s.cfg.RequestTimeout)))
	}
	return out
}

// worker drains the job queue, executing each HTTP request's calls in
// order and handing the marshalled body back to the transport goroutine.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case j := <-s.jobs:
			s.reg.Gauge("rpc.queue_depth").Set(int64(len(s.jobs)))
			j.done <- s.process(j)
		}
	}
}

// process executes one job and marshals the response body (nil when the
// request was only notifications).
func (s *Server) process(j *job) []byte {
	route := strings.ToLower(j.be.Name())
	responses := make([]*Response, 0, len(j.reqs))
	for i, req := range j.reqs {
		// Abandoned by the transport already? Stop burning the worker.
		select {
		case <-j.ctx.Done():
			if !req.IsNotification() {
				responses = append(responses, replyErr(req.ID, Errf(ErrCodeTimeout, "request timed out")))
			}
			continue
		default:
		}
		if j.errs != nil && j.errs[i] != nil {
			// A malformed call is never a valid notification: it always
			// gets an error response (id null when undeterminable).
			responses = append(responses, replyErr(req.ID, j.errs[i]))
			continue
		}
		resp := s.call(j.ctx, route, j.be, &req)
		if req.IsNotification() {
			continue
		}
		responses = append(responses, resp)
	}
	if len(responses) == 0 {
		return nil
	}
	var body any = responses
	if !j.batch {
		body = responses[0]
	}
	enc, err := json.Marshal(body)
	if err != nil {
		enc, _ = json.Marshal(replyErr(nil, Errf(ErrCodeInternal, "marshalling response: %v", err)))
	}
	return enc
}

// call executes one request against a backend, consulting the
// generation-tagged response cache.
func (s *Server) call(ctx context.Context, route string, be *Backend, req *Request) *Response {
	mName := "rpc." + route + "." + req.Method
	start := time.Now()
	s.reg.Counter(mName + ".requests").Inc()
	defer s.reg.Histogram(mName + ".latency").ObserveSince(start)

	fn, ok := methods[req.Method]
	if !ok {
		s.reg.Counter(mName + ".errors").Inc()
		return s.tagStaleness(route, replyErr(req.ID, Errf(ErrCodeMethodNotFound, "method %q not found", req.Method)))
	}

	// Live/subscription methods bypass the cache AND the breaker: their
	// results move independently of the head (so generation tagging would
	// serve stale cursors), and they never touch storage (so a tripped
	// breaker says nothing about them).
	if uncacheable[req.Method] {
		result, rpcErr := safeCall(ctx, fn, be, req.Params)
		if rpcErr != nil {
			s.reg.Counter(mName + ".errors").Inc()
			return s.tagStaleness(route, replyErr(req.ID, rpcErr))
		}
		enc, err := json.Marshal(result)
		if err != nil {
			s.reg.Counter(mName + ".errors").Inc()
			return s.tagStaleness(route, replyErr(req.ID, Errf(ErrCodeInternal, "marshalling result: %v", err)))
		}
		return s.tagStaleness(route, reply(req.ID, json.RawMessage(enc)))
	}

	// The generation is read BEFORE executing: if the head advances while
	// we compute, the entry lands under the older generation, where no
	// post-advance request will look. See respCache.
	gen := be.Generation()
	cache := s.cacheFor(route, req.Method)
	key := req.CacheKey()
	if raw, ok := cache.get(key, gen); ok {
		s.reg.Counter(mName + ".cache_hits").Inc()
		return s.tagStaleness(route, reply(req.ID, json.RawMessage(raw)))
	}
	s.reg.Counter(mName + ".cache_misses").Inc()

	// Cache misses hit storage: behind an open circuit breaker they are
	// shed with a typed error instead of grinding a failing store (cache
	// hits above still serve — they cost the store nothing).
	br := s.breakerFor(route)
	if !br.Allow() {
		s.reg.Counter(mName + ".errors").Inc()
		s.reg.Counter("rpc." + route + ".breaker_shed").Inc()
		e := Errf(ErrCodeUnavailable, "storage circuit open on %s, retry after cooldown", route)
		e.Data = "circuit-open"
		return s.tagStaleness(route, replyErr(req.ID, e))
	}

	result, rpcErr := safeCall(ctx, fn, be, req.Params)
	if rpcErr != nil {
		// Only dependency failures feed the breaker; caller mistakes
		// (bad params, unknown blocks) say nothing about the store.
		if rpcErr.Code == ErrCodeStorage {
			br.Fail()
		} else {
			br.Success()
		}
		s.reg.Counter(mName + ".errors").Inc()
		return s.tagStaleness(route, replyErr(req.ID, rpcErr))
	}
	br.Success()
	enc, err := json.Marshal(result)
	if err != nil {
		s.reg.Counter(mName + ".errors").Inc()
		return s.tagStaleness(route, replyErr(req.ID, Errf(ErrCodeInternal, "marshalling result: %v", err)))
	}
	cache.put(key, gen, enc)
	return s.tagStaleness(route, reply(req.ID, json.RawMessage(enc)))
}

// tagStaleness stamps a degraded route's lag onto the response envelope.
// The response cache stores result bytes only, so the tag is computed
// fresh per request: a replica that catches back up immediately stops
// tagging, and its responses return to byte-identical with the primary.
func (s *Server) tagStaleness(route string, resp *Response) *Response {
	if fn := s.stalenessFor(route); fn != nil {
		if lag, degraded := fn(); degraded {
			resp.Staleness = &lag
		}
	}
	return resp
}

// safeCall runs a method behind a panic fence: whatever a backend or a
// corrupt store does, the client sees a typed internal error, never a
// torn-down connection.
func safeCall(ctx context.Context, fn method, be *Backend, params []json.RawMessage) (result any, rpcErr *Error) {
	defer func() {
		if r := recover(); r != nil {
			result, rpcErr = nil, Errf(ErrCodeInternal, "internal error: %v", r)
		}
	}()
	return fn(ctx, be, params)
}

// clientKey derives the rate-limit bucket key from the remote address.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
