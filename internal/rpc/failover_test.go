package rpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// rpcStub serves a canned JSON-RPC response (or HTTP failure) and counts
// hits.
type rpcStub struct {
	status int
	body   string
	delay  time.Duration
	hits   atomic.Int64
}

func (s *rpcStub) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		if s.status != http.StatusOK {
			w.WriteHeader(s.status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, s.body)
	}
}

const okBody = `{"jsonrpc":"2.0","id":1,"result":"0x2a"}`

func newFC(t *testing.T, cfg FailoverConfig) *FailoverClient {
	t.Helper()
	fc, err := NewFailoverClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fc.Close)
	return fc
}

// TestFailoverSwitchesEndpoints: a draining first endpoint is skipped
// over; the healthy second answers; the outcome records the failover.
func TestFailoverSwitchesEndpoints(t *testing.T) {
	bad := &rpcStub{status: http.StatusServiceUnavailable}
	good := &rpcStub{status: http.StatusOK, body: okBody}
	s1 := httptest.NewServer(bad.handler())
	defer s1.Close()
	s2 := httptest.NewServer(good.handler())
	defer s2.Close()

	fc := newFC(t, FailoverConfig{Endpoints: []string{s1.URL + "/eth", s2.URL + "/eth"}})
	var hex string
	out, err := fc.Call(&hex, "eth_blockNumber")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if hex != "0x2a" {
		t.Fatalf("result %q", hex)
	}
	if out.Class != ClassOK || out.Failovers != 1 || out.Endpoint != s2.URL+"/eth" {
		t.Fatalf("outcome %+v, want ok after 1 failover to the good endpoint", out)
	}

	// The draining endpoint is now marked down: the next request goes to
	// the healthy one first, no failover needed.
	out, err = fc.Call(&hex, "eth_blockNumber")
	if err != nil || out.Failovers != 0 {
		t.Fatalf("second call did not prefer the healthy endpoint: %+v err %v", out, err)
	}
	st := fc.Stats()
	if st.Requests != 2 || st.Failovers != 1 || st.ByClass[ClassOK] != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFailoverClassifiesTypedErrors: every typed server error lands in
// its documented class, and infrastructure classes fail over while
// caller-fault classes do not.
func TestFailoverClassifiesTypedErrors(t *testing.T) {
	cases := []struct {
		code      int
		data      string
		wantClass string
		failsOver bool
	}{
		{ErrCodeStorage, "read-only", ClassReadOnly, true},
		{ErrCodeStorage, "transient", ClassStorage, true},
		{ErrCodeTimeout, "", ClassTimeout, true},
		{ErrCodeOverloaded, "", ClassOverloaded, true},
		{ErrCodeUnavailable, "circuit-open", ClassCircuitOpen, true},
		{ErrCodeInvalidParams, "", ClassRPCError, false},
	}
	for _, tc := range cases {
		body := fmt.Sprintf(`{"jsonrpc":"2.0","id":1,"error":{"code":%d,"message":"boom"`, tc.code)
		if tc.data != "" {
			body += fmt.Sprintf(`,"data":%q`, tc.data)
		}
		body += `}}`
		erring := &rpcStub{status: http.StatusOK, body: body}
		good := &rpcStub{status: http.StatusOK, body: okBody}
		s1 := httptest.NewServer(erring.handler())
		s2 := httptest.NewServer(good.handler())
		fc := newFC(t, FailoverConfig{Endpoints: []string{s1.URL + "/eth", s2.URL + "/eth"}})

		var hex string
		out, err := fc.Call(&hex, "eth_blockNumber")
		if tc.failsOver {
			if err != nil || out.Failovers != 1 || out.Class != ClassOK {
				t.Errorf("code %d: outcome %+v err %v, want failover to success", tc.code, out, err)
			}
			if st := fc.Stats(); st.ByClass[tc.wantClass] != 0 {
				// Per-request tallies record the FINAL class; the
				// intermediate classification is visible through the
				// endpoint state instead.
				t.Errorf("code %d: intermediate class %q tallied as final", tc.code, tc.wantClass)
			}
		} else {
			rpcErr, ok := err.(*Error)
			if !ok || rpcErr.Code != tc.code || out.Class != tc.wantClass || out.Failovers != 0 {
				t.Errorf("code %d: outcome %+v err %v, want class %q with no failover", tc.code, out, err, tc.wantClass)
			}
			if erring.hits.Load() == 0 || good.hits.Load() != 0 {
				t.Errorf("code %d: caller-fault error leaked to the second endpoint", tc.code)
			}
		}
		s1.Close()
		s2.Close()
		fc.Close()
	}
}

// TestFailoverAllEndpointsFail: when every endpoint fails the final
// class is reported honestly (no invented success).
func TestFailoverAllEndpointsFail(t *testing.T) {
	b1 := &rpcStub{status: http.StatusServiceUnavailable}
	b2 := &rpcStub{status: http.StatusServiceUnavailable}
	s1 := httptest.NewServer(b1.handler())
	defer s1.Close()
	s2 := httptest.NewServer(b2.handler())
	defer s2.Close()
	fc := newFC(t, FailoverConfig{Endpoints: []string{s1.URL + "/eth", s2.URL + "/eth"}})

	var hex string
	out, err := fc.Call(&hex, "eth_blockNumber")
	if err == nil {
		t.Fatal("call against all-down endpoints succeeded")
	}
	if out.Class != ClassDraining || out.Failovers != 1 {
		t.Fatalf("outcome %+v, want draining after exhausting both endpoints", out)
	}
	if st := fc.Stats(); st.ByClass[ClassDraining] != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFailoverDegradedTag: a staleness-tagged success is surfaced as
// ClassDegraded with the lag, and still decodes the result.
func TestFailoverDegradedTag(t *testing.T) {
	stale := &rpcStub{status: http.StatusOK,
		body: `{"jsonrpc":"2.0","id":1,"result":"0x2a","staleness":17}`}
	s1 := httptest.NewServer(stale.handler())
	defer s1.Close()
	fc := newFC(t, FailoverConfig{Endpoints: []string{s1.URL + "/eth"}})

	var hex string
	out, err := fc.Call(&hex, "eth_blockNumber")
	if err != nil || hex != "0x2a" {
		t.Fatalf("degraded call: %v %q", err, hex)
	}
	if out.Class != ClassDegraded || !out.Tagged || out.Staleness != 17 {
		t.Fatalf("outcome %+v, want degraded with staleness 17", out)
	}
}

// TestFailoverProtocolViolation: a 200 with a non-JSON-RPC body is a
// protocol violation, never silently treated as data.
func TestFailoverProtocolViolation(t *testing.T) {
	garbage := &rpcStub{status: http.StatusOK, body: `<html>ok</html>`}
	s1 := httptest.NewServer(garbage.handler())
	defer s1.Close()
	fc := newFC(t, FailoverConfig{Endpoints: []string{s1.URL + "/eth"}})

	var hex string
	out, err := fc.Call(&hex, "eth_blockNumber")
	if err == nil || out.Class != ClassProtocol {
		t.Fatalf("outcome %+v err %v, want a protocol violation", out, err)
	}
}

// TestFailoverHedging: when the preferred endpoint stalls past the hedge
// delay, the request is hedged to the next endpoint and its answer wins.
func TestFailoverHedging(t *testing.T) {
	slow := &rpcStub{status: http.StatusOK, body: okBody, delay: 400 * time.Millisecond}
	fast := &rpcStub{status: http.StatusOK, body: okBody}
	s1 := httptest.NewServer(slow.handler())
	defer s1.Close()
	s2 := httptest.NewServer(fast.handler())
	defer s2.Close()
	fc := newFC(t, FailoverConfig{
		Endpoints:  []string{s1.URL + "/eth", s2.URL + "/eth"},
		HedgeDelay: 20 * time.Millisecond,
	})

	var hex string
	start := time.Now()
	out, err := fc.Call(&hex, "eth_blockNumber")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !out.Hedged || out.Endpoint != s2.URL+"/eth" {
		t.Fatalf("outcome %+v, want the hedged fast endpoint to win", out)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("hedged call took %v; it waited for the slow endpoint", elapsed)
	}
	if st := fc.Stats(); st.Hedged != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFailoverHealthLoop: the background /readyz poll demotes a
// not-ready endpoint so requests prefer the ready one without having to
// fail first.
func TestFailoverHealthLoop(t *testing.T) {
	mux1 := http.NewServeMux()
	notReady := rpcStub{status: http.StatusOK, body: okBody}
	mux1.Handle("/eth", notReady.handler())
	mux1.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]bool{"ready": false})
	})
	mux2 := http.NewServeMux()
	ready := rpcStub{status: http.StatusOK, body: okBody}
	mux2.Handle("/eth", ready.handler())
	mux2.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]bool{"ready": true})
	})
	s1 := httptest.NewServer(mux1)
	defer s1.Close()
	s2 := httptest.NewServer(mux2)
	defer s2.Close()

	fc := newFC(t, FailoverConfig{
		Endpoints:      []string{s1.URL + "/eth", s2.URL + "/eth"},
		HealthInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(2 * time.Second)
	for fc.eps[0].state.Load() != epDegraded && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fc.eps[0].state.Load() != epDegraded {
		t.Fatal("health loop never demoted the not-ready endpoint")
	}

	var hex string
	out, err := fc.Call(&hex, "eth_blockNumber")
	if err != nil || out.Endpoint != s2.URL+"/eth" || out.Failovers != 0 {
		t.Fatalf("outcome %+v err %v, want the ready endpoint preferred without failover", out, err)
	}
	if notReady.hits.Load() != 0 {
		t.Fatal("request was sent to the endpoint the health loop demoted")
	}
}
