package rpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forkwatch/internal/metrics"
)

// Failure classes a failover client assigns to request outcomes. Load
// generators report per-class counts; the client uses them to steer
// endpoint selection.
const (
	ClassOK          = "ok"           // success from a healthy endpoint
	ClassDegraded    = "degraded"     // success tagged with a staleness field
	ClassTimeout     = "timeout"      // transport timeout or -32011
	ClassOverloaded  = "overloaded"   // HTTP 429 or -32012
	ClassReadOnly    = "read_only"    // -32010 with data "read-only"
	ClassStorage     = "storage"      // other -32010 storage failures
	ClassCircuitOpen = "circuit_open" // -32013 (open circuit breaker)
	ClassDraining    = "draining"     // HTTP 503 (drain or not ready)
	ClassRPCError    = "rpc_error"    // other JSON-RPC errors (caller's fault)
	ClassTransport   = "transport"    // connection-level failure
	ClassProtocol    = "protocol"     // malformed / spec-violating response
)

// retryableClass reports whether an outcome justifies trying another
// endpoint: infrastructure failures do, deterministic answers (success,
// degraded-but-correct success, invalid params) do not.
func retryableClass(class string) bool {
	switch class {
	case ClassOK, ClassDegraded, ClassRPCError:
		return false
	}
	return true
}

// endpoint health states, ordered by dial preference.
const (
	epHealthy int32 = iota
	epDegraded
	epDown
)

// FailoverConfig configures a FailoverClient.
type FailoverConfig struct {
	// Endpoints are same-chain replica endpoints (full chain URLs, e.g.
	// "http://127.0.0.1:8546/eth") in preference order.
	Endpoints []string
	// HTTPClient is shared by all endpoints (default: 10s timeout).
	HTTPClient *http.Client
	// HedgeDelay, when > 0, fires the same request at the next-best
	// endpoint if the first has not answered within the delay; the first
	// usable response wins (tail-latency insurance under faults).
	HedgeDelay time.Duration
	// HealthInterval, when > 0, polls every endpoint's /readyz in the
	// background so failover decisions do not wait for a request to fail.
	HealthInterval time.Duration
	// Registry, when set, receives rpc.failovers / rpc.hedged counters
	// (point it at a served registry to surface them at /debug/metrics).
	Registry *metrics.Registry
	// Logf receives debug lines.
	Logf func(format string, args ...any)
}

// FailoverStats is a snapshot of a client's outcome tallies.
type FailoverStats struct {
	Requests  uint64            `json:"requests"`
	Failovers uint64            `json:"failovers"`
	Hedged    uint64            `json:"hedged"`
	ByClass   map[string]uint64 `json:"by_class"`
}

// Outcome describes how one request was ultimately answered.
type Outcome struct {
	// Endpoint is the URL that produced the final answer.
	Endpoint string
	// Class is the final outcome class (Class* constants).
	Class string
	// Staleness is the response's staleness tag (valid when Tagged).
	Staleness uint64
	Tagged    bool
	// Failovers counts endpoint switches made for this request.
	Failovers int
	// Hedged reports whether a hedge request was fired.
	Hedged bool
}

// fepState is one endpoint's live health record.
type fepState struct {
	url      string
	readyURL string
	state    atomic.Int32
}

// FailoverClient is a health-checking, hedging, failing-over JSON-RPC
// client for a set of replicas serving the same chain: requests go to
// the healthiest endpoint first, infrastructure failures (transport
// errors, 429/503, typed storage/timeout/breaker errors) move on to the
// next, and slow answers are optionally hedged. Responses tagged with a
// staleness field are surfaced as ClassDegraded, never hidden.
type FailoverClient struct {
	cfg    FailoverConfig
	hc     *http.Client
	eps    []*fepState
	nextID atomic.Int64

	mu    sync.Mutex
	stats FailoverStats

	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewFailoverClient builds a client over cfg.Endpoints (at least one).
// Call Close to stop the background health loop.
func NewFailoverClient(cfg FailoverConfig) (*FailoverClient, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("rpc: failover client needs at least one endpoint")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &FailoverClient{
		cfg:  cfg,
		hc:   cfg.HTTPClient,
		quit: make(chan struct{}),
	}
	c.stats.ByClass = map[string]uint64{}
	for _, ep := range cfg.Endpoints {
		c.eps = append(c.eps, &fepState{url: ep, readyURL: readyURL(ep)})
	}
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// readyURL rewrites a chain endpoint to its server's /readyz.
func readyURL(endpoint string) string {
	u, err := url.Parse(endpoint)
	if err != nil {
		return strings.TrimRight(endpoint, "/") + "/readyz"
	}
	u.Path = "/readyz"
	u.RawQuery = ""
	return u.String()
}

// Close stops the health loop.
func (c *FailoverClient) Close() {
	c.closeOnce.Do(func() { close(c.quit) })
	c.wg.Wait()
}

// Stats returns a copy of the outcome tallies.
func (c *FailoverClient) Stats() FailoverStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.ByClass = make(map[string]uint64, len(c.stats.ByClass))
	for k, v := range c.stats.ByClass {
		out.ByClass[k] = v
	}
	return out
}

// healthLoop polls every endpoint's /readyz: unreachable marks it down,
// not-ready marks it degraded, ready marks it healthy. Request outcomes
// update the same states in between polls.
func (c *FailoverClient) healthLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-ticker.C:
		}
		for _, ep := range c.eps {
			resp, err := c.hc.Get(ep.readyURL)
			if err != nil {
				ep.state.Store(epDown)
				continue
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				ep.state.Store(epHealthy)
			default:
				ep.state.Store(epDegraded)
			}
		}
	}
}

// order snapshots the endpoints sorted healthiest-first; config order
// breaks ties, and even down endpoints stay in as a last resort.
func (c *FailoverClient) order() []*fepState {
	out := append([]*fepState(nil), c.eps...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].state.Load() < out[j].state.Load()
	})
	return out
}

func (c *FailoverClient) count(name string) {
	if c.cfg.Registry != nil {
		c.cfg.Registry.Counter(name).Inc()
	}
}

// attemptResult carries one endpoint's answer back to Do.
type attemptResult struct {
	ep        *fepState
	raw       []byte
	class     string
	staleness *uint64
}

// Do posts one single-request JSON-RPC body, failing over and hedging
// across the endpoint set. It returns the winning endpoint's raw
// response body (nil when every endpoint failed at the transport level)
// and the outcome. Batch bodies are the caller's affair — Do does not
// split them across endpoints.
func (c *FailoverClient) Do(body []byte) ([]byte, Outcome) {
	eps := c.order()
	out := Outcome{}
	results := make(chan attemptResult, len(eps))
	inflight, next := 0, 0
	launch := func() {
		ep := eps[next]
		next++
		inflight++
		go func() {
			raw, class, st := c.attempt(ep, body)
			results <- attemptResult{ep: ep, raw: raw, class: class, staleness: st}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 && len(eps) > 1 {
		timer := time.NewTimer(c.cfg.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var last attemptResult
	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if next < len(eps) {
				out.Hedged = true
				c.count("rpc.hedged")
				launch()
			}
		case res := <-results:
			inflight--
			c.noteEndpoint(res)
			if !retryableClass(res.class) {
				c.finish(&out, res)
				return res.raw, out
			}
			last = res
			if inflight == 0 && next < len(eps) {
				out.Failovers++
				c.count("rpc.failovers")
				launch()
			}
		}
	}
	// Every endpoint failed; report the last failure honestly.
	c.finish(&out, last)
	return last.raw, out
}

// finish folds the winning attempt into the outcome and the tallies.
func (c *FailoverClient) finish(out *Outcome, res attemptResult) {
	if res.ep != nil {
		out.Endpoint = res.ep.url
	}
	out.Class = res.class
	if res.staleness != nil {
		out.Tagged = true
		out.Staleness = *res.staleness
	}
	c.mu.Lock()
	c.stats.Requests++
	c.stats.Failovers += uint64(out.Failovers)
	if out.Hedged {
		c.stats.Hedged++
	}
	c.stats.ByClass[res.class]++
	c.mu.Unlock()
}

// noteEndpoint folds one attempt's class into the endpoint's health.
func (c *FailoverClient) noteEndpoint(res attemptResult) {
	switch res.class {
	case ClassOK, ClassRPCError:
		res.ep.state.Store(epHealthy)
	case ClassTransport, ClassDraining:
		res.ep.state.Store(epDown)
	default:
		res.ep.state.Store(epDegraded)
	}
}

// attempt posts body to one endpoint and classifies the response.
func (c *FailoverClient) attempt(ep *fepState, body []byte) (raw []byte, class string, staleness *uint64) {
	resp, err := c.hc.Post(ep.url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		if isTimeout(err) {
			return nil, ClassTimeout, nil
		}
		return nil, ClassTransport, nil
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, ClassTransport, nil
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return raw, ClassOverloaded, nil
	case http.StatusServiceUnavailable:
		return raw, ClassDraining, nil
	default:
		return raw, ClassProtocol, nil
	}
	var cr clientResponse
	if err := json.Unmarshal(raw, &cr); err != nil || cr.JSONRPC != Version {
		return raw, ClassProtocol, nil
	}
	if cr.Error != nil {
		return raw, classifyError(cr.Error), cr.Staleness
	}
	if len(cr.Result) == 0 {
		return raw, ClassProtocol, nil
	}
	if cr.Staleness != nil {
		return raw, ClassDegraded, cr.Staleness
	}
	return raw, ClassOK, nil
}

// classifyError maps a typed JSON-RPC error to its failure class.
func classifyError(e *Error) string {
	switch e.Code {
	case ErrCodeStorage:
		if s, ok := e.Data.(string); ok && s == "read-only" {
			return ClassReadOnly
		}
		return ClassStorage
	case ErrCodeTimeout:
		return ClassTimeout
	case ErrCodeOverloaded:
		return ClassOverloaded
	case ErrCodeUnavailable:
		return ClassCircuitOpen
	default:
		return ClassRPCError
	}
}

// isTimeout reports whether a transport error was a timeout.
func isTimeout(err error) bool {
	type timeouter interface{ Timeout() bool }
	for e := err; e != nil; {
		if t, ok := e.(timeouter); ok && t.Timeout() {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	return strings.Contains(err.Error(), "Client.Timeout")
}

// Call is the typed convenience on top of Do: it builds the request,
// fails over, and decodes the result into out (nil discards). The
// returned Outcome reports which endpoint answered and how degraded the
// answer is; the error is *Error for JSON-RPC failures, a plain error
// for transport-level exhaustion.
func (c *FailoverClient) Call(out any, method string, params ...any) (Outcome, error) {
	id := c.nextID.Add(1)
	req, err := buildRequest(id, method, params)
	if err != nil {
		return Outcome{}, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return Outcome{}, err
	}
	raw, outc := c.Do(body)
	if raw == nil {
		return outc, fmt.Errorf("rpc: every endpoint failed (last class %q)", outc.Class)
	}
	switch outc.Class {
	case ClassOK, ClassDegraded:
		var cr clientResponse
		if err := json.Unmarshal(raw, &cr); err != nil {
			return outc, fmt.Errorf("rpc: decoding response: %w", err)
		}
		return outc, cr.unpack(out)
	default:
		var cr clientResponse
		if err := json.Unmarshal(raw, &cr); err == nil && cr.Error != nil {
			return outc, cr.Error
		}
		return outc, fmt.Errorf("rpc: request failed with class %q", outc.Class)
	}
}
