// Package analysis computes the statistics behind every figure of the
// paper from a stream of simulation (or replayed ledger) events: block
// rates, difficulty and inter-block deltas (Fig 1/2), transaction volumes
// and contract fractions (Fig 2), hashes-per-USD (Fig 3), cross-chain
// rebroadcast "echoes" (Fig 4) and mining-pool concentration (Fig 5).
//
// It mirrors the paper's own pipeline: every block and transaction lands
// in per-hour and per-day buckets keyed by chain, and echoes are detected
// by joining the two ledgers on transaction hash with first-seen ordering,
// exactly as §3.3 describes.
package analysis

import (
	"forkwatch/internal/market"
	"forkwatch/internal/pool"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

// HourBucket aggregates one chain-hour.
type HourBucket struct {
	Blocks    int
	SumDiff   float64
	SumDelta  float64
	LastDelta uint64
}

// DayBucket aggregates one chain-day.
type DayBucket struct {
	Blocks      int
	Txs         int
	ContractTxs int
	// Echoes counts transactions first seen on the other chain.
	Echoes int
	// SameDayEchoes counts echoes mined on both chains the same day.
	SameDayEchoes int
	// ByPool attributes the day's blocks to coinbase addresses (Fig 5).
	ByPool map[types.Address]int
	// Price and difficulty snapshots from the day event.
	USD        float64
	Difficulty float64
	Hashrate   float64
}

type txSeen struct {
	chain string
	day   int
}

// chainSeries bundles one chain's bucket slices so the per-block hot path
// resolves the chain name once instead of once per bucket access.
type chainSeries struct {
	hourly []*HourBucket
	daily  []*DayBucket
}

// Collector implements sim.Observer and accumulates every figure's series.
type Collector struct {
	epoch  uint64
	series map[string]*chainSeries
	seen   map[types.Hash]txSeen
	days   int
}

// NewCollector returns a collector for a run starting at the given epoch.
func NewCollector(epoch uint64) *Collector {
	return &Collector{
		epoch:  epoch,
		series: map[string]*chainSeries{},
		seen:   map[types.Hash]txSeen{},
	}
}

func (c *Collector) chain(chain string) *chainSeries {
	cs, ok := c.series[chain]
	if !ok {
		cs = &chainSeries{}
		c.series[chain] = cs
	}
	return cs
}

func (cs *chainSeries) hour(h int) *HourBucket {
	for len(cs.hourly) <= h {
		cs.hourly = append(cs.hourly, &HourBucket{})
	}
	return cs.hourly[h]
}

func (cs *chainSeries) day(d int) *DayBucket {
	for len(cs.daily) <= d {
		cs.daily = append(cs.daily, &DayBucket{ByPool: map[types.Address]int{}})
	}
	return cs.daily[d]
}

func (c *Collector) hourly(chain string) []*HourBucket {
	if cs, ok := c.series[chain]; ok {
		return cs.hourly
	}
	return nil
}

func (c *Collector) daily(chain string) []*DayBucket {
	if cs, ok := c.series[chain]; ok {
		return cs.daily
	}
	return nil
}

// OnBlock implements sim.Observer.
func (c *Collector) OnBlock(ev *sim.BlockEvent) {
	if ev.Time < c.epoch {
		return
	}
	cs := c.chain(ev.Chain)
	h := int((ev.Time - c.epoch) / 3600)
	hb := cs.hour(h)
	hb.Blocks++
	d := types.BigToFloat64(ev.Difficulty)
	hb.SumDiff += d
	hb.SumDelta += float64(ev.Delta)
	hb.LastDelta = ev.Delta

	db := cs.day(ev.Day)
	db.Blocks++
	db.ByPool[ev.Coinbase]++
	for _, tx := range ev.Txs {
		db.Txs++
		if tx.Contract {
			db.ContractTxs++
		}
		if tx.ChainBound {
			// Replay-protected transactions cannot appear on another
			// chain (the binding is part of the hash), so they can
			// neither be echoes nor echo originals: skip the join.
			continue
		}
		if prev, ok := c.seen[tx.Hash]; ok && prev.chain != ev.Chain {
			db.Echoes++
			if prev.day == ev.Day {
				db.SameDayEchoes++
			}
		} else if !ok {
			c.seen[tx.Hash] = txSeen{chain: ev.Chain, day: ev.Day}
		}
	}
}

// OnDay implements sim.Observer.
func (c *Collector) OnDay(ev *sim.DayEvent) {
	if ev.Day+1 > c.days {
		c.days = ev.Day + 1
	}
	for _, pd := range ev.Partitions {
		b := c.chain(pd.Name).day(ev.Day)
		b.USD = pd.USD
		b.Hashrate = pd.Hashrate
		b.Difficulty = types.BigToFloat64(pd.Difficulty)
	}
}

// Days returns the number of observed days: day events when the collector
// was driven by a live simulation, otherwise (e.g. replaying an export,
// which has no day events) the extent of the per-day block buckets.
func (c *Collector) Days() int {
	days := c.days
	for _, cs := range c.series {
		if len(cs.daily) > days {
			days = len(cs.daily)
		}
	}
	return days
}

// Hours returns the number of observed hours for a chain.
func (c *Collector) Hours(chain string) int { return len(c.hourly(chain)) }

// BlocksPerHour returns the Fig 1 (top) series for a chain.
func (c *Collector) BlocksPerHour(chain string) []float64 {
	out := make([]float64, len(c.hourly(chain)))
	for i, b := range c.hourly(chain) {
		out[i] = float64(b.Blocks)
	}
	return out
}

// HourlyMeanDifficulty returns the Fig 1 (middle) series: the mean block
// difficulty per hour (0 for empty hours carries the previous value).
func (c *Collector) HourlyMeanDifficulty(chain string) []float64 {
	out := make([]float64, len(c.hourly(chain)))
	prev := 0.0
	for i, b := range c.hourly(chain) {
		if b.Blocks > 0 {
			prev = b.SumDiff / float64(b.Blocks)
		}
		out[i] = prev
	}
	return out
}

// HourlyMeanDelta returns the Fig 1 (bottom) series: the mean inter-block
// time per hour in seconds.
func (c *Collector) HourlyMeanDelta(chain string) []float64 {
	out := make([]float64, len(c.hourly(chain)))
	prev := 0.0
	for i, b := range c.hourly(chain) {
		if b.Blocks > 0 {
			prev = b.SumDelta / float64(b.Blocks)
		}
		out[i] = prev
	}
	return out
}

// DailyDifficulty returns the Fig 2 (top) series.
func (c *Collector) DailyDifficulty(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		out[i] = c.daily(chain)[i].Difficulty
	}
	return out
}

// DailyHashrate returns the chain's allocated hashrate per day, from the
// day events — the series behind the matrix sweep's share columns.
func (c *Collector) DailyHashrate(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		out[i] = c.daily(chain)[i].Hashrate
	}
	return out
}

// TxPerDay returns the Fig 2 (middle) series.
func (c *Collector) TxPerDay(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		out[i] = float64(c.daily(chain)[i].Txs)
	}
	return out
}

// PctContract returns the Fig 2 (bottom) series: percent of the day's
// transactions that were contract calls.
func (c *Collector) PctContract(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		b := c.daily(chain)[i]
		if b.Txs > 0 {
			out[i] = 100 * float64(b.ContractTxs) / float64(b.Txs)
		}
	}
	return out
}

// HashesPerUSD returns the Fig 3 series for a chain: expected hashes to
// earn one USD, from the daily difficulty, reward and price.
func (c *Collector) HashesPerUSD(chain string, rewardEther float64) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		b := c.daily(chain)[i]
		if b.USD > 0 {
			out[i] = b.Difficulty / rewardEther / b.USD
		}
	}
	return out
}

// PayoffCorrelation returns the Pearson correlation of two chains'
// hashes-per-USD series — the headline of Fig 3, computed for the
// historical pair and for every ordered pair in N-way runs.
func (c *Collector) PayoffCorrelation(rewardEther float64, chainA, chainB string) float64 {
	return market.Correlation(
		c.HashesPerUSD(chainA, rewardEther),
		c.HashesPerUSD(chainB, rewardEther),
	)
}

// EchoesPerDay returns the Fig 4 (bottom) series for a chain: the number
// of that day's transactions first seen on the other chain.
func (c *Collector) EchoesPerDay(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		out[i] = float64(c.daily(chain)[i].Echoes)
	}
	return out
}

// EchoPct returns the Fig 4 (top) series: echoes as a percentage of the
// chain's daily transactions.
func (c *Collector) EchoPct(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		b := c.daily(chain)[i]
		if b.Txs > 0 {
			out[i] = 100 * float64(b.Echoes) / float64(b.Txs)
		}
	}
	return out
}

// SameDayEchoesPerDay returns the Fig 4 "Same time" series: echoes whose
// original and rebroadcast both mined within the same day.
func (c *Collector) SameDayEchoesPerDay(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		out[i] = float64(c.daily(chain)[i].SameDayEchoes)
	}
	return out
}

// TotalEchoes sums echo counts per chain direction: the value for chain
// "ETC" counts transactions that appeared on ETH first and echoed into
// ETC.
func (c *Collector) TotalEchoes(chain string) int {
	total := 0
	for _, b := range c.daily(chain) {
		total += b.Echoes
	}
	return total
}

// TopNShare returns the Fig 5 series for a chain: the fraction of each
// day's blocks mined by the n most productive pools that day.
func (c *Collector) TopNShare(chain string, n int) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		out[i] = pool.TopNFromCounts(c.daily(chain)[i].ByPool, n)
	}
	return out
}

// PoolGini returns the daily Gini coefficient of the chain's block
// production across pools — a single-number view of Fig 5's concentration,
// and the natural statistic for the paper's closing question about
// whether pool distributions reflect fundamental market trends.
func (c *Collector) PoolGini(chain string) []float64 {
	days := c.Days()
	out := make([]float64, days)
	for i := 0; i < days && i < len(c.daily(chain)); i++ {
		counts := c.daily(chain)[i].ByPool
		w := make([]float64, 0, len(counts))
		for _, n := range counts {
			w = append(w, float64(n))
		}
		out[i] = pool.GiniOf(w)
	}
	return out
}

// RecoveryHour returns the first hour (since the fork) at which the
// chain's block rate sustainably reached frac of the target rate
// (86400/14/24 ≈ 257 blocks/hour at target), where "sustainably" means
// the rate stays at or above that level for `sustain` consecutive hours.
// Returns -1 if never. This is experiment E2: the paper measured ~2 days
// for ETC.
func (c *Collector) RecoveryHour(chain string, targetBlockTime float64, frac float64, sustain int) int {
	rate := c.BlocksPerHour(chain)
	want := frac * 3600 / targetBlockTime
	run := 0
	for h := 0; h < len(rate); h++ {
		if rate[h] >= want {
			run++
			if run >= sustain {
				return h - sustain + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// MeanOver returns the mean of series[from:to] (clamped); a convenience
// for reporting.
func MeanOver(series []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(series) {
		to = len(series)
	}
	if to <= from {
		return 0
	}
	sum := 0.0
	for _, v := range series[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

// MaxOver returns the maximum of series[from:to] (clamped).
func MaxOver(series []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(series) {
		to = len(series)
	}
	max := 0.0
	for _, v := range series[from:to] {
		if v > max {
			max = v
		}
	}
	return max
}
