package analysis

import (
	"math"
	"math/big"
	"testing"

	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

const epoch = 1_000_000

func blockEv(chain string, day int, time uint64, delta uint64, diff int64, pool byte, txs ...sim.TxInfo) *sim.BlockEvent {
	return &sim.BlockEvent{
		Chain:      chain,
		Day:        day,
		Time:       time,
		Delta:      delta,
		Difficulty: big.NewInt(diff),
		Coinbase:   types.BytesToAddress([]byte{pool}),
		Txs:        txs,
	}
}

func tx(id byte, contract bool) sim.TxInfo {
	return sim.TxInfo{Hash: types.BytesToHash([]byte{id}), Contract: contract}
}

func TestHourlyBuckets(t *testing.T) {
	c := NewCollector(epoch)
	c.OnBlock(blockEv("ETH", 0, epoch+10, 14, 100, 1))
	c.OnBlock(blockEv("ETH", 0, epoch+30, 20, 200, 1))
	c.OnBlock(blockEv("ETH", 0, epoch+3700, 30, 300, 1)) // hour 1

	bph := c.BlocksPerHour("ETH")
	if len(bph) != 2 || bph[0] != 2 || bph[1] != 1 {
		t.Errorf("blocks per hour = %v", bph)
	}
	diff := c.HourlyMeanDifficulty("ETH")
	if diff[0] != 150 || diff[1] != 300 {
		t.Errorf("hourly difficulty = %v", diff)
	}
	delta := c.HourlyMeanDelta("ETH")
	if delta[0] != 17 || delta[1] != 30 {
		t.Errorf("hourly delta = %v", delta)
	}
}

func TestEmptyHourCarriesPrevious(t *testing.T) {
	c := NewCollector(epoch)
	c.OnBlock(blockEv("ETC", 0, epoch+10, 14, 100, 1))
	c.OnBlock(blockEv("ETC", 0, epoch+2*3600+10, 7200, 50, 1)) // hour 2; hour 1 empty
	diff := c.HourlyMeanDifficulty("ETC")
	if diff[1] != 100 {
		t.Errorf("empty hour should carry previous difficulty: %v", diff)
	}
	if c.BlocksPerHour("ETC")[1] != 0 {
		t.Error("empty hour should have zero blocks")
	}
}

func TestDailyAggregates(t *testing.T) {
	c := NewCollector(epoch)
	c.OnBlock(blockEv("ETH", 0, epoch+10, 14, 100, 1, tx(1, false), tx(2, true)))
	c.OnBlock(blockEv("ETH", 1, epoch+90_000, 14, 100, 2, tx(3, true)))
	c.OnDay(dayEv(0, 12, 1.2, big.NewInt(1000), big.NewInt(100)))
	c.OnDay(dayEv(1, 13, 1.1, big.NewInt(1100), big.NewInt(90)))

	if c.Days() != 2 {
		t.Fatalf("days = %d", c.Days())
	}
	if got := c.TxPerDay("ETH"); got[0] != 2 || got[1] != 1 {
		t.Errorf("tx per day = %v", got)
	}
	if got := c.PctContract("ETH"); got[0] != 50 || got[1] != 100 {
		t.Errorf("pct contract = %v", got)
	}
	if got := c.DailyDifficulty("ETH"); got[0] != 1000 || got[1] != 1100 {
		t.Errorf("daily difficulty = %v", got)
	}
}

func TestEchoDetection(t *testing.T) {
	c := NewCollector(epoch)
	// tx 1 mined on ETH day 0, echoed into ETC day 1.
	c.OnBlock(blockEv("ETH", 0, epoch+10, 14, 100, 1, tx(1, false)))
	c.OnBlock(blockEv("ETC", 1, epoch+86_500, 14, 100, 1, tx(1, false)))
	// tx 2 mined on ETC day 1, echoed into ETH day 1 (same day).
	c.OnBlock(blockEv("ETC", 1, epoch+86_600, 14, 100, 1, tx(2, false)))
	c.OnBlock(blockEv("ETH", 1, epoch+86_700, 14, 100, 1, tx(2, false)))
	// tx 3 unique to ETH.
	c.OnBlock(blockEv("ETH", 1, epoch+86_800, 14, 100, 1, tx(3, false)))
	c.OnDay(dayEv(0, 0, 0, big.NewInt(1), big.NewInt(1)))
	c.OnDay(dayEv(1, 0, 0, big.NewInt(1), big.NewInt(1)))

	if got := c.EchoesPerDay("ETC"); got[0] != 0 || got[1] != 1 {
		t.Errorf("ETC echoes = %v", got)
	}
	if got := c.EchoesPerDay("ETH"); got[1] != 1 {
		t.Errorf("ETH echoes = %v", got)
	}
	if c.TotalEchoes("ETC") != 1 || c.TotalEchoes("ETH") != 1 {
		t.Errorf("totals = %d/%d", c.TotalEchoes("ETC"), c.TotalEchoes("ETH"))
	}
	// Echo percentage: ETH day 1 had 2 txs, 1 echo.
	if got := c.EchoPct("ETH"); got[1] != 50 {
		t.Errorf("ETH echo pct = %v", got)
	}
	// A re-appearance on the same chain is not an echo.
	c.OnBlock(blockEv("ETH", 1, epoch+86_900, 14, 100, 1, tx(3, false)))
	if c.TotalEchoes("ETH") != 1 {
		t.Error("same-chain duplicate counted as echo")
	}
}

func TestHashesPerUSDAndCorrelation(t *testing.T) {
	c := NewCollector(epoch)
	for d := 0; d < 10; d++ {
		c.OnDay(dayEv(d, 10, 1, big.NewInt(int64(1000*(d+1))), big.NewInt(int64(100*(d+1)))))
	}
	eth := c.HashesPerUSD("ETH", 5)
	etc := c.HashesPerUSD("ETC", 5)
	// D/(5*P): identical by construction → correlation 1.
	for d := 0; d < 10; d++ {
		if math.Abs(eth[d]-etc[d]) > 1e-9 {
			t.Fatalf("day %d: %v vs %v", d, eth[d], etc[d])
		}
	}
	if corr := c.PayoffCorrelation(5, "ETH", "ETC"); math.Abs(corr-1) > 1e-9 {
		t.Errorf("correlation = %v", corr)
	}
}

func TestTopNShare(t *testing.T) {
	c := NewCollector(epoch)
	// Day 0: pool 1 mines 3 blocks, pool 2 mines 1.
	for i := 0; i < 3; i++ {
		c.OnBlock(blockEv("ETH", 0, epoch+uint64(i*20+10), 14, 100, 1))
	}
	c.OnBlock(blockEv("ETH", 0, epoch+100, 14, 100, 2))
	c.OnDay(dayEv(0, 0, 0, big.NewInt(1), big.NewInt(1)))
	if got := c.TopNShare("ETH", 1); got[0] != 0.75 {
		t.Errorf("top-1 = %v", got)
	}
	if got := c.TopNShare("ETH", 2); got[0] != 1 {
		t.Errorf("top-2 = %v", got)
	}
}

func TestRecoveryHour(t *testing.T) {
	c := NewCollector(epoch)
	// Hours 0-9: 10 blocks/hour (collapsed); hours 10-19: 250/hour.
	for h := 0; h < 20; h++ {
		n := 10
		if h >= 10 {
			n = 250
		}
		for i := 0; i < n; i++ {
			c.OnBlock(blockEv("ETC", 0, epoch+uint64(h)*3600+uint64(i), 14, 100, 1))
		}
	}
	if got := c.RecoveryHour("ETC", 14, 0.9, 3); got != 10 {
		t.Errorf("recovery hour = %d, want 10", got)
	}
	if got := c.RecoveryHour("ETC", 1, 0.9, 3); got != -1 {
		t.Errorf("unreachable target should be -1, got %d", got)
	}
}

func TestMeanMaxOver(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if MeanOver(s, 0, 4) != 2.5 {
		t.Error("mean wrong")
	}
	if MeanOver(s, -5, 99) != 2.5 {
		t.Error("clamping wrong")
	}
	if MeanOver(s, 3, 3) != 0 {
		t.Error("empty range should be 0")
	}
	if MaxOver(s, 1, 3) != 3 {
		t.Error("max wrong")
	}
}

// TestEndToEndWithEngine runs a short simulation and sanity-checks the
// collector sees a consistent world.
func TestEndToEndWithEngine(t *testing.T) {
	sc := sim.NewScenario(11, 2)
	sc.DayLength = 3600
	sc.Users = 40
	sc.ETHTxPerDay = 30
	sc.ETCTxPerDay = 10
	eng, err := sim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(sc.Epoch)
	eng.AddObserver(c)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Days() != 2 {
		t.Fatalf("days = %d", c.Days())
	}
	ethTx := MeanOver(c.TxPerDay("ETH"), 0, 2)
	if ethTx <= 0 {
		t.Error("no ETH transactions observed")
	}
	if got := c.DailyDifficulty("ETH"); got[1] <= 0 {
		t.Error("difficulty series empty")
	}
}

func TestSameDayEchoes(t *testing.T) {
	c := NewCollector(epoch)
	// tx 1: cross-chain same day. tx 2: next-day echo.
	c.OnBlock(blockEv("ETH", 0, epoch+10, 14, 100, 1, tx(1, false)))
	c.OnBlock(blockEv("ETC", 0, epoch+20, 14, 100, 1, tx(1, false)))
	c.OnBlock(blockEv("ETH", 0, epoch+30, 14, 100, 1, tx(2, false)))
	c.OnBlock(blockEv("ETC", 1, epoch+90_000, 14, 100, 1, tx(2, false)))
	c.OnDay(dayEv(0, 0, 0, big.NewInt(1), big.NewInt(1)))
	c.OnDay(dayEv(1, 0, 0, big.NewInt(1), big.NewInt(1)))

	same := c.SameDayEchoesPerDay("ETC")
	if same[0] != 1 || same[1] != 0 {
		t.Errorf("same-day echoes = %v", same)
	}
	all := c.EchoesPerDay("ETC")
	if all[0] != 1 || all[1] != 1 {
		t.Errorf("echoes = %v", all)
	}
}

func TestPoolGiniSeries(t *testing.T) {
	c := NewCollector(epoch)
	// Day 0: perfectly equal pools; day 1: one pool dominates.
	c.OnBlock(blockEv("ETH", 0, epoch+10, 14, 100, 1))
	c.OnBlock(blockEv("ETH", 0, epoch+20, 14, 100, 2))
	for i := 0; i < 9; i++ {
		c.OnBlock(blockEv("ETH", 1, epoch+86_400+uint64(i*20)+10, 14, 100, 1))
	}
	c.OnBlock(blockEv("ETH", 1, epoch+88_000, 14, 100, 2))
	c.OnDay(dayEv(0, 0, 0, big.NewInt(1), big.NewInt(1)))
	c.OnDay(dayEv(1, 0, 0, big.NewInt(1), big.NewInt(1)))
	g := c.PoolGini("ETH")
	if g[0] != 0 {
		t.Errorf("equal-day Gini = %v, want 0", g[0])
	}
	if g[1] <= g[0] {
		t.Errorf("concentrated day should have higher Gini: %v", g)
	}
}

// dayEv builds a two-partition day event in the engine's partition order.
func dayEv(day int, ethUSD, etcUSD float64, ethDiff, etcDiff *big.Int) *sim.DayEvent {
	return &sim.DayEvent{Day: day, Partitions: []sim.PartitionDay{
		{Name: "ETH", USD: ethUSD, Difficulty: ethDiff},
		{Name: "ETC", USD: etcUSD, Difficulty: etcDiff},
	}}
}
