package p2p

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/rlp"
)

// securePair returns two ends of an established secure channel over
// net.Pipe.
func securePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := SecureServer(b)
		ch <- res{c, err}
	}()
	client, err := SecureClient(a)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	server := <-ch
	if server.err != nil {
		t.Fatalf("server handshake: %v", server.err)
	}
	return client, server.conn
}

func TestSecureEcho(t *testing.T) {
	client, server := securePair(t)
	defer client.Close()
	defer server.Close()

	msgs := [][]byte{
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 10_000), // multi-read frame
		[]byte(""),
		[]byte("final"),
	}
	go func() {
		for _, m := range msgs {
			if len(m) == 0 {
				continue
			}
			client.Write(m)
		}
	}()
	for _, want := range msgs {
		if len(want) == 0 {
			continue
		}
		got := make([]byte, len(want))
		if _, err := io.ReadFull(server, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("echo mismatch: %d bytes vs %d", len(got), len(want))
		}
	}
}

func TestSecureBidirectional(t *testing.T) {
	client, server := securePair(t)
	defer client.Close()
	defer server.Close()
	go server.Write([]byte("from-server"))
	go client.Write([]byte("from-client"))
	buf := make([]byte, 11)
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "from-server" {
		t.Fatalf("client read %q, %v", buf, err)
	}
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "from-client" {
		t.Fatalf("server read %q, %v", buf, err)
	}
}

// TestSecureCiphertextOnWire verifies the plaintext never crosses the
// underlying connection.
func TestSecureCiphertextOnWire(t *testing.T) {
	rawA, rawB := net.Pipe()
	// tap records everything the client writes to the wire.
	tap := &tapConn{Conn: rawA}
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := SecureServer(rawB)
		ch <- res{c, err}
	}()
	client, err := SecureClient(tap)
	if err != nil {
		t.Fatal(err)
	}
	server := <-ch
	if server.err != nil {
		t.Fatal(server.err)
	}
	secret := []byte("extremely-secret-payload-watch-me")
	go client.Write(secret)
	buf := make([]byte, len(secret))
	if _, err := io.ReadFull(server.conn, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.captured, secret) {
		t.Fatal("plaintext visible on the wire")
	}
}

type tapConn struct {
	net.Conn
	captured []byte
}

func (c *tapConn) Write(p []byte) (int, error) {
	c.captured = append(c.captured, p...)
	return c.Conn.Write(p)
}

// TestSecureTamperDetected flips a ciphertext bit in flight; the reader
// must reject the frame.
func TestSecureTamperDetected(t *testing.T) {
	rawA, rawB := net.Pipe()
	flipper := &flipConn{Conn: rawA}
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := SecureServer(rawB)
		ch <- res{c, err}
	}()
	client, err := SecureClient(flipper)
	if err != nil {
		t.Fatal(err)
	}
	server := <-ch
	if server.err != nil {
		t.Fatal(server.err)
	}
	flipper.arm = true // start corrupting after the handshake
	go client.Write([]byte("payload"))
	buf := make([]byte, 7)
	_, err = server.conn.Read(buf)
	if !errors.Is(err, ErrFrameTag) {
		t.Fatalf("tampered frame read: err = %v, want ErrFrameTag", err)
	}
}

type flipConn struct {
	net.Conn
	arm bool
}

func (c *flipConn) Write(p []byte) (int, error) {
	if c.arm && len(p) > 6 {
		q := append([]byte(nil), p...)
		q[5] ^= 0x01 // inside the ciphertext (after the 4-byte length)
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

// TestSecureServersInterop runs the full p2p stack over the secure
// transport: two servers, block gossip end to end.
func TestSecureServersInterop(t *testing.T) {
	mem := NewMemNet()
	newSecureNode := func(name string, bc *chain.Blockchain) (*Server, *ChainBackend) {
		backend := NewChainBackend(bc)
		srv := NewServer(Config{
			Self:      discover.Node{ID: nodeID(name), Addr: name},
			NetworkID: 1,
			Backend:   backend,
			Dialer:    SecureDialer(mem),
		})
		ln, err := mem.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(SecureListener(ln))
		t.Cleanup(srv.Close)
		return srv, backend
	}
	a, aBackend := newSecureNode("sec-a", newChain(t, chain.MainnetLikeConfig()))
	b, _ := newSecureNode("sec-b", newChain(t, chain.MainnetLikeConfig()))
	_ = aBackend

	if err := b.Connect(a.Self()); err != nil {
		t.Fatalf("secure connect: %v", err)
	}
	waitFor(t, "secure peering", func() bool {
		return a.PeerCount() == 1 && b.PeerCount() == 1
	})
}

// TestSecureMismatchFails: a plaintext client against a secure server (and
// vice versa) must not complete a protocol handshake.
func TestSecureMismatchFails(t *testing.T) {
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := SecureServer(b)
		done <- err
	}()
	// Plaintext status bytes arrive where a key exchange was expected.
	go WriteMsg(a, MsgStatus, rlp.List(rlp.Uint(1)))
	if err := <-done; err == nil {
		t.Fatal("secure server accepted a plaintext peer")
	}
	a.Close()
	b.Close()
}
