package p2p

import (
	"fmt"
	"time"

	"forkwatch/internal/discover"
)

// Probe is a lightweight handshake-only client used by the crawler
// (experiment E1): it presents a chosen identity and fork id, completes
// the status exchange, asks one FindNode question and disconnects.
//
// A probe presenting the ETC fork id is refused by ETH nodes and vice
// versa, so a crawl "as ETC" counts exactly the nodes still reachable in
// the ETC network — the measurement behind the paper's ~90% node-loss
// observation.
type Probe struct {
	// Self is the identity the probe presents.
	Self discover.Node
	// Status is the chain summary the probe claims (genesis, fork id,
	// head). Typically copied from a reference node on the desired fork.
	Status Status
	// Dialer reaches the network.
	Dialer Dialer
	// Timeout bounds each probe exchange.
	Timeout time.Duration
}

// ProbeResult is one successful probe exchange.
type ProbeResult struct {
	// Remote is the status the target presented.
	Remote Status
	// Neighbors is the target's answer to FindNode(target.ID).
	Neighbors []discover.Node
}

// Run probes one node: handshake, FindNode, disconnect.
func (p *Probe) Run(target discover.Node) (*ProbeResult, error) {
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := p.Dialer.Dial(target.Addr)
	if err != nil {
		return nil, fmt.Errorf("probe: dial %s: %w", target.Addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	status := p.Status
	status.ProtocolVersion = ProtocolVersion
	status.Node = p.Self
	errCh := make(chan error, 1)
	go func() { errCh <- WriteMsg(conn, MsgStatus, status.encode()) }()
	msg, err := ReadMsg(conn)
	if err != nil {
		<-errCh
		return nil, fmt.Errorf("probe: handshake with %s: %w", target.Addr, err)
	}
	if err := <-errCh; err != nil {
		return nil, err
	}
	if msg.Code != MsgStatus {
		return nil, fmt.Errorf("%w: first message code %d", ErrBadMessage, msg.Code)
	}
	remote, err := decodeStatus(msg.Body)
	if err != nil {
		return nil, err
	}
	if !remote.ForkID.Compatible(status.ForkID) {
		return nil, ErrForkMismatch
	}

	if err := WriteMsg(conn, MsgFindNode, encodeFindNode(target.ID)); err != nil {
		return nil, err
	}
	// The target may send us unsolicited gossip; scan for the Neighbors
	// answer (generously — a busy node floods block and tx announces,
	// and under fault injection the answer may arrive late in the mix).
	for i := 0; i < 64; i++ {
		msg, err = ReadMsg(conn)
		if err != nil {
			return nil, fmt.Errorf("probe: awaiting neighbors from %s: %w", target.Addr, err)
		}
		if msg.Code != MsgNeighbors {
			continue
		}
		neighbors, err := decodeNeighbors(msg.Body)
		if err != nil {
			return nil, err
		}
		return &ProbeResult{Remote: *remote, Neighbors: neighbors}, nil
	}
	return nil, fmt.Errorf("probe: %s never answered FindNode", target.Addr)
}

// FindNodeFunc adapts the probe to the discover.Crawl interface.
func (p *Probe) FindNodeFunc() discover.FindNodeFunc {
	return func(n discover.Node, _ discover.NodeID) ([]discover.Node, error) {
		res, err := p.Run(n)
		if err != nil {
			return nil, err
		}
		return res.Neighbors, nil
	}
}
