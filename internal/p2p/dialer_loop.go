package p2p

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"time"

	"forkwatch/internal/discover"
)

// MaintainPeers runs the discovery/dial loop real nodes run: while the
// server is below target live peers it asks existing peers for neighbors
// (growing the Kademlia table) and dials table entries it is not yet
// connected to. Dead entries are evicted by Connect. Runs until the
// server closes; call in a goroutine.
//
// This is the mechanism by which the post-fork networks re-knit
// themselves: a node that lost 90% of its peers at the partition keeps
// asking the survivors for more survivors.
func (s *Server) MaintainPeers(target int, interval time.Duration) {
	if target <= 0 || target > s.cfg.MaxPeers {
		target = s.cfg.MaxPeers
	}
	// Seeded from all 8 leading node-id bytes: deterministic per node,
	// and collision-free across nodes (two bytes gave only 65536
	// distinct seeds — frequent collisions in any few-hundred-node run
	// meant identical shuffle sequences and correlated dial storms).
	r := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(s.cfg.Self.ID[:8]))))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		if s.PeerCount() >= target {
			continue
		}
		// Learn more nodes around a random point in the id space.
		s.RequestNeighbors(discover.RandomID(r))

		// Dial unconnected table entries until the target is met.
		connected := make(map[discover.NodeID]bool)
		for _, p := range s.Peers() {
			connected[p.Node().ID] = true
		}
		candidates := s.table.All()
		r.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		// Healthy candidates first; peers demoted by the score ledger
		// are last-resort dials.
		sort.SliceStable(candidates, func(i, j int) bool {
			return !s.scores.demoted(candidates[i].ID) && s.scores.demoted(candidates[j].ID)
		})
		for _, n := range candidates {
			if s.PeerCount() >= target {
				break
			}
			if connected[n.ID] || n.ID == s.cfg.Self.ID {
				continue
			}
			// Skip nodes inside a ban or backoff window; Connect would
			// refuse them anyway.
			if !s.scores.canDial(n.ID) {
				continue
			}
			// Errors are expected (dead nodes, fork mismatches,
			// duplicates); Connect backs off failed targets and evicts
			// repeatedly dead ones from the table.
			_ = s.Connect(n)
		}
	}
}
