package p2p

import (
	"sync/atomic"
	"time"

	"forkwatch/internal/rlp"
)

// Keepalive message codes (continuing the table in messages.go).
const (
	MsgPing uint64 = iota + 16
	MsgPong
)

// lastSeenNanos is maintained on every inbound message (see readLoop) and
// consulted by the keepalive loop.
func (p *Peer) touch() {
	atomic.StoreInt64(&p.lastSeen, time.Now().UnixNano())
}

// LastSeen returns the time of the peer's most recent inbound message.
func (p *Peer) LastSeen() time.Time {
	return time.Unix(0, atomic.LoadInt64(&p.lastSeen))
}

// KeepaliveLoop pings every peer each interval and drops peers that have
// been silent for longer than timeout — the liveness half of the peer
// churn the paper's node counts reflect. Runs until the server closes;
// call in a goroutine.
func (s *Server) KeepaliveLoop(interval, timeout time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for _, p := range s.Peers() {
			if now.Sub(p.LastSeen()) > timeout {
				s.cfg.Logf("p2p[%s]: dropping silent peer %x", s.cfg.Self.Addr, p.node.ID[:4])
				// Unanswered pings feed the score ledger: chronic
				// silence eventually demotes and bans the node instead
				// of redialing it forever.
				s.penalizePeer(p, penaltyUnansweredPing, "unanswered pings")
				s.dropPeer(p)
				continue
			}
			p.send(MsgPing, rlp.List())
		}
	}
}

// handleKeepalive processes ping/pong; returns true when the message was
// one of them.
func (s *Server) handleKeepalive(p *Peer, msg Message) bool {
	switch msg.Code {
	case MsgPing:
		p.send(MsgPong, rlp.List())
		return true
	case MsgPong:
		return true // touch() already updated liveness
	default:
		return false
	}
}
