package p2p

// Chaos tests: the hardened p2p layer under the faultnet fault-injecting
// transport. The centerpiece, TestChaosPartitionCensusE1, re-runs the
// paper's E1 node census over 40 nodes with 20% frame loss, 200ms jitter
// and a scripted bisection partition that later heals — the resilience
// layer must still converge every node to its fork's heaviest head and
// the census must still count the partition exactly.

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/faultnet"
	"forkwatch/internal/types"
)

// handshakeAs performs the client half of the status exchange on conn,
// presenting name's identity and the chain summary of bc. Used by
// hand-rolled misbehaving peers.
func handshakeAs(t *testing.T, conn net.Conn, bc *chain.Blockchain, name string, td *big.Int, headNumber uint64) {
	t.Helper()
	status := &Status{
		ProtocolVersion: ProtocolVersion,
		NetworkID:       1,
		TD:              td,
		Genesis:         bc.Genesis().Hash(),
		Head:            bc.Head().Hash(),
		HeadNumber:      headNumber,
		Node:            discover.Node{ID: nodeID(name), Addr: name},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- WriteMsg(conn, MsgStatus, status.encode()) }()
	if _, err := ReadMsg(conn); err != nil {
		t.Fatalf("%s: reading server status: %v", name, err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("%s: writing status: %v", name, err)
	}
}

// TestSlowLorisPeerDropped: a peer that completes the handshake and then
// never reads again stalls its pipe. The per-frame write deadline must cut
// it loose promptly, and broadcasts to healthy peers must never block on
// it (each peer has its own bounded queue and write loop).
func TestSlowLorisPeerDropped(t *testing.T) {
	mem := NewMemNet()
	const writeTimeout = 80 * time.Millisecond
	a := newTestNodeCfg(t, mem, "sl-a", newChain(t, chain.MainnetLikeConfig()), func(c *Config) {
		c.WriteTimeout = writeTimeout
	})
	b := newTestNode(t, mem, "sl-b", newChain(t, chain.MainnetLikeConfig()))
	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "healthy peering", func() bool {
		return a.server.PeerCount() == 1 && b.server.PeerCount() == 1
	})

	// The slow loris: handshake, then total silence — no reads, no writes.
	loris, err := mem.Dial("sl-a")
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	handshakeAs(t, loris, a.bc, "loris", big.NewInt(1), 0)
	waitFor(t, "loris registered", func() bool { return a.server.PeerCount() == 2 })

	blk := mineOn(t, a.bc)
	start := time.Now()
	a.server.BroadcastBlock(blk)
	if d := time.Since(start); d > writeTimeout/2 {
		t.Errorf("BroadcastBlock blocked for %v on a stalled peer", d)
	}
	// The write deadline fires on the stalled pipe and the peer is
	// dropped; generous multiple of the deadline for scheduling slack.
	waitFor(t, "loris dropped", func() bool { return a.server.PeerCount() == 1 })
	if d := time.Since(start); d > 10*writeTimeout {
		t.Errorf("stalled peer dropped after %v; write deadline is %v", d, writeTimeout)
	}
	// The healthy peer was served while the loris stalled.
	waitFor(t, "block at healthy peer", func() bool {
		return b.bc.Head().Hash() == blk.Hash()
	})
	// The write timeout fed the score ledger.
	if got := a.server.PeerScore(nodeID("loris")); got < penaltyWriteTimeout {
		t.Errorf("loris score = %d, want >= %d", got, penaltyWriteTimeout)
	}
}

// TestCorruptPeerBannedThenForgiven: repeated garbage frames cross the ban
// threshold; the banned node is refused on dial and on inbound reconnect
// until the ban window expires.
func TestCorruptPeerBannedThenForgiven(t *testing.T) {
	mem := NewMemNet()
	const banWindow = 300 * time.Millisecond
	a := newTestNodeCfg(t, mem, "cb-a", newChain(t, chain.MainnetLikeConfig()), func(c *Config) {
		c.BanScore = 60
		c.BanWindow = banWindow
	})
	id := nodeID("corrupter")

	conn, err := mem.Dial("cb-a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	handshakeAs(t, conn, a.bc, "corrupter", big.NewInt(1), 0)
	waitFor(t, "corrupter registered", func() bool { return a.server.PeerCount() == 1 })

	// Three well-framed garbage payloads at 25 points each cross the
	// 60-point ban line on the third frame.
	garbage := []byte{0, 0, 0, 1, 0xb9}
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(garbage); err != nil {
			break // server may already have dropped us on the final frame
		}
	}
	waitFor(t, "corrupter banned and dropped", func() bool {
		return a.server.Banned(id) && a.server.PeerCount() == 0
	})

	// Outbound: the dial loop (and Connect) refuse banned nodes outright —
	// a banned peer is not redialed during its window.
	if err := a.server.Connect(discover.Node{ID: id, Addr: "corrupter"}); !errors.Is(err, ErrPeerBanned) {
		t.Errorf("dialing banned node: err = %v, want ErrPeerBanned", err)
	}
	// Inbound: a reconnect from the banned identity is cut after the
	// status exchange.
	conn2, err := mem.Dial("cb-a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	handshakeAs(t, conn2, a.bc, "corrupter", big.NewInt(1), 0)
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadMsg(conn2); err == nil {
		t.Error("banned inbound reconnect was not closed")
	}
	if a.server.PeerCount() != 0 {
		t.Error("banned peer re-registered")
	}

	// The ban expires with its window; afterwards the node is dialable
	// again (the dial now fails only because nobody listens there).
	waitFor(t, "ban expiry", func() bool { return !a.server.Banned(id) })
	if err := a.server.Connect(discover.Node{ID: id, Addr: "corrupter"}); errors.Is(err, ErrPeerBanned) {
		t.Errorf("node still refused after ban window: %v", err)
	}
}

// TestSyncTimeoutReRequestsAlternatePeer: two fake peers advertise a heavy
// chain but never serve blocks. The sync watchdog must fire, penalize the
// silent peer and re-request the range from the alternate — observable as
// unanswered-sync penalties accumulating on BOTH fakes (the second fake is
// only ever asked via the alternate-peer path).
func TestSyncTimeoutReRequestsAlternatePeer(t *testing.T) {
	mem := NewMemNet()
	b := newTestNodeCfg(t, mem, "st-b", newChain(t, chain.MainnetLikeConfig()), func(c *Config) {
		c.SyncTimeout = 60 * time.Millisecond
		c.BanScore = 100000 // keep both fakes connected throughout
	})

	mkFake := func(name string, td int64) net.Conn {
		conn, err := mem.Dial("st-b")
		if err != nil {
			t.Fatal(err)
		}
		handshakeAs(t, conn, b.bc, name, big.NewInt(td), 30)
		// Drain everything (GetBlocks requests included) and answer none
		// of it.
		go func() {
			for {
				if _, err := ReadMsg(conn); err != nil {
					return
				}
			}
		}()
		return conn
	}
	f1 := mkFake("fake1", 1_000_000)
	defer f1.Close()
	waitFor(t, "fake1 registered", func() bool { return b.server.PeerCount() == 1 })
	f2 := mkFake("fake2", 1_000_001)
	defer f2.Close()
	waitFor(t, "fake2 registered", func() bool { return b.server.PeerCount() == 2 })

	// Each watchdog expiry penalizes the silent peer and re-requests from
	// the best alternate, which then times out too — the penalties must
	// reach both identities.
	waitFor(t, "alternate-peer re-requests", func() bool {
		return b.server.PeerScore(nodeID("fake1")) > 0 && b.server.PeerScore(nodeID("fake2")) > 0
	})
	if b.bc.Head().Number() != 0 {
		t.Error("no blocks should have been imported from silent fakes")
	}
}

// TestChaosPartitionCensusE1 is the acceptance scenario: the 40-node E1
// census (36 ETH / 4 ETC at a DAO-style fork) under seeded 20% frame
// loss, 20ms latency + 200ms jitter, and one scripted partition-and-heal
// bisecting the ETH side. The fault schedule is fully determined by the
// seed (see TestFaultScheduleDeterministic); injected delays are scaled
// down through the Sleep hook without changing the schedule, and every
// assertion below is on converged state, never on wall-clock timing.
func TestChaosPartitionCensusE1(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos census is slow; skipped with -short")
	}
	const (
		nEth      = 36
		nEtc      = 4
		forkBlock = 2
	)
	mem := NewMemNet()
	fnet := faultnet.New(mem, faultnet.Faults{
		Seed:     1729,
		Latency:  20 * time.Millisecond,
		Jitter:   200 * time.Millisecond,
		DropRate: 0.20,
		// Scale injected delays 20x down so the test runs in seconds; the
		// schedule (who is delayed/dropped, and by how much nominal delay)
		// is identical to the unscaled run.
		Sleep: func(d time.Duration) { time.Sleep(d / 20) },
	})
	gen := testGenesis()
	mkChain := func(eth bool) *chain.Blockchain {
		var cfg *chain.Config
		if eth {
			cfg = chain.ETHConfig(forkBlock, nil, types.Address{})
		} else {
			cfg = chain.ETCConfig(forkBlock)
		}
		bc, err := chain.NewBlockchain(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		return bc
	}
	mkNode := func(name string, bc *chain.Blockchain) *testNode {
		t.Helper()
		backend := NewChainBackend(bc)
		ep := fnet.Endpoint(name)
		srv := NewServer(Config{
			Self:      discover.Node{ID: nodeID(name), Addr: name},
			NetworkID: 1,
			// Well above the MaintainPeers target (6): a node pinned at
			// its peer limit refuses probes deterministically, which would
			// undercount the census.
			MaxPeers: 20,
			Backend:   backend,
			Dialer:    ep,
			// Resilience knobs sized for scaled-down chaos: short enough
			// to retry fast under 20% loss, long enough to survive jitter.
			HandshakeTimeout: 500 * time.Millisecond,
			ReadTimeout:      2 * time.Second,
			WriteTimeout:     400 * time.Millisecond,
			SyncTimeout:      200 * time.Millisecond,
			DialBackoff:      25 * time.Millisecond,
			MaxDialBackoff:   250 * time.Millisecond,
			// Chaos penalties (drops, stalls) hit honest peers too: keep
			// the tables intact and the ban line out of reach so the run
			// measures the partition, not collateral damage. Ban mechanics
			// are covered by TestCorruptPeerBannedThenForgiven.
			DialMaxFails: -1,
			DemoteScore:  5000,
			BanScore:     10000,
			BanWindow:    time.Second,
		})
		ln, err := mem.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ep.WrapListener(ln))
		t.Cleanup(srv.Close)
		return &testNode{name: name, server: srv, backend: backend, bc: bc}
	}

	var all, ethNodes, etcNodes []*testNode
	for i := 0; i < nEth; i++ {
		n := mkNode(fmt.Sprintf("ch-eth%02d", i), mkChain(true))
		ethNodes = append(ethNodes, n)
		all = append(all, n)
	}
	for i := 0; i < nEtc; i++ {
		n := mkNode(fmt.Sprintf("ch-etc%d", i), mkChain(false))
		etcNodes = append(etcNodes, n)
		all = append(all, n)
	}
	// Every node starts knowing every other node, as crawled tables did at
	// the fork moment.
	for _, n := range all {
		for _, m := range all {
			if n != m {
				n.server.Table().Add(m.server.Self())
			}
		}
	}
	for _, n := range all {
		go n.server.MaintainPeers(6, 20*time.Millisecond)
		go n.server.KeepaliveLoop(100*time.Millisecond, 1500*time.Millisecond)
	}

	// drive polls cond while nudging propagation with head announces;
	// lost announces are simply re-sent next tick.
	drive := func(what string, budget time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(budget)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			for _, n := range all {
				n.server.AnnounceHead()
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("chaos: timed out waiting for %s", what)
	}
	allAt := func(nodes []*testNode, blk *chain.Block) bool {
		for _, n := range nodes {
			if n.bc.Head().Hash() != blk.Hash() {
				return false
			}
		}
		return true
	}

	// Phase 1: the mesh knits itself under loss.
	drive("initial mesh", 30*time.Second, func() bool {
		for _, n := range all {
			if n.server.PeerCount() < 2 {
				return false
			}
		}
		return true
	})

	// Phase 2: shared pre-fork block 1 reaches all 40 nodes.
	b1 := mineOn(t, ethNodes[0].bc)
	ethNodes[0].server.BroadcastBlock(b1)
	drive("pre-fork block propagation", 30*time.Second, func() bool { return allAt(all, b1) })

	// Phase 3: the fork. Each side mines its own block 2; the network
	// partitions itself along fork ids.
	ethFork := mineOn(t, ethNodes[0].bc)
	ethNodes[0].server.BroadcastBlock(ethFork)
	etcFork := mineOn(t, etcNodes[0].bc)
	etcNodes[0].server.BroadcastBlock(etcFork)
	drive("fork divergence", 30*time.Second, func() bool {
		return allAt(ethNodes, ethFork) && allAt(etcNodes, etcFork)
	})

	// Phase 4: the ETH side extends to height 5; stragglers that missed a
	// gossip frame recover through block-range sync.
	var tip *chain.Block
	for i := 0; i < 3; i++ {
		tip = mineOn(t, ethNodes[0].bc)
		ethNodes[0].server.BroadcastBlock(tip)
	}
	drive("ETH chain at height 5", 30*time.Second, func() bool { return allAt(ethNodes, tip) })

	// Phase 5: scripted bisection of the ETH side. The miner's half keeps
	// producing; the far half must stay frozen at the pre-partition head.
	var sideA, sideB []string
	for i, n := range ethNodes {
		if i < nEth/2 {
			sideA = append(sideA, n.name)
		} else {
			sideB = append(sideB, n.name)
		}
	}
	for _, n := range etcNodes {
		sideA = append(sideA, n.name) // keep the small ETC net whole
	}
	fnet.PartitionSets(sideA, sideB)
	preSplit := tip
	for i := 0; i < 2; i++ {
		tip = mineOn(t, ethNodes[0].bc)
		ethNodes[0].server.BroadcastBlock(tip)
	}
	drive("partition-side convergence", 30*time.Second, func() bool {
		return allAt(ethNodes[:nEth/2], tip)
	})
	for _, n := range ethNodes[nEth/2:] {
		if n.bc.Head().Hash() != preSplit.Hash() {
			t.Fatalf("chaos: %s crossed the scripted partition (head %d)", n.name, n.bc.Head().Number())
		}
	}

	// Phase 6: heal; the far half backfills blocks 6..7 and the whole ETH
	// fork converges on the heaviest head.
	fnet.Heal()
	drive("post-heal convergence", 30*time.Second, func() bool {
		return allAt(ethNodes, tip) && allAt(etcNodes, etcFork)
	})

	// Phase 7: the E1 census. Crawl every node once as an ETC client and
	// once as an ETH client; fork-id handshakes partition the counts.
	census := func(ref *chain.Blockchain, label string) int {
		td, _ := ref.TD(ref.Head().Hash())
		var count int32
		var wg sync.WaitGroup
		for _, tn := range all {
			wg.Add(1)
			go func(tn *testNode) {
				defer wg.Done()
				for attempt := 0; attempt < 24; attempt++ {
					name := fmt.Sprintf("probe-%s-%s-%d", label, tn.name, attempt)
					probe := &Probe{
						Self: discover.Node{ID: nodeID(name), Addr: name},
						Status: Status{
							NetworkID:  1,
							TD:         td,
							Genesis:    ref.Genesis().Hash(),
							Head:       ref.Head().Hash(),
							HeadNumber: ref.Head().Number(),
							ForkID:     ref.ForkID(),
						},
						Dialer:  fnet.Endpoint(name),
						Timeout: 300 * time.Millisecond,
					}
					_, err := probe.Run(tn.server.Self())
					if err == nil {
						atomic.AddInt32(&count, 1)
						return
					}
					if errors.Is(err, ErrForkMismatch) {
						return // deterministic refusal: the other fork
					}
					// Lost frame; retry.
				}
			}(tn)
		}
		wg.Wait()
		return int(count)
	}
	if got := census(etcNodes[0].bc, "etc"); got != nEtc {
		t.Errorf("ETC census reached %d nodes, want %d", got, nEtc)
	}
	if got := census(ethNodes[0].bc, "eth"); got != nEth {
		t.Errorf("ETH census reached %d nodes, want %d", got, nEth)
	}

	// The faults really happened: frames were dropped and the scripted
	// partition refused cross-side dials.
	stats := fnet.Stats()
	if stats.Dropped == 0 {
		t.Error("fault injection dropped no frames")
	}
	if stats.Refusals == 0 {
		t.Error("scripted partition refused no dials")
	}
	t.Logf("chaos stats: %+v", stats)
}
