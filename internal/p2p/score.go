package p2p

import (
	"sync"
	"time"

	"forkwatch/internal/discover"
)

// Score penalties. A peer accumulates points for misbehavior; crossing
// DemoteScore deprioritizes it in the dial loop, crossing BanScore bans
// it for the configured window. Scores halve once per ban window, so old
// sins expire.
const (
	penaltyCorruptFrame   = 25 // undecodable or oversized frame
	penaltyBadMessage     = 25 // well-framed but malformed payload
	penaltyInvalidBlock   = 40 // block that fails validation
	penaltyUnansweredPing = 15 // dropped by the keepalive silence check
	penaltyWriteTimeout   = 10 // write deadline hit (stalled peer)
	penaltyUnansweredSync = 10 // block-range request that timed out
)

// scoreLedger tracks per-node misbehavior scores, ban windows and dial
// backoff across connections. Keyed by node ID, it survives reconnects:
// a banned peer stays banned even if it redials from a fresh socket.
type scoreLedger struct {
	demote, ban int
	window      time.Duration
	base, max   time.Duration // dial backoff schedule
	now         func() time.Time

	mu      sync.Mutex
	entries map[discover.NodeID]*scoreEntry
}

type scoreEntry struct {
	score       int
	lastDecay   time.Time
	bannedUntil time.Time
	dialFails   int
	nextDial    time.Time
}

func newScoreLedger(demote, ban int, window, base, max time.Duration) *scoreLedger {
	return &scoreLedger{
		demote:  demote,
		ban:     ban,
		window:  window,
		base:    base,
		max:     max,
		now:     time.Now,
		entries: make(map[discover.NodeID]*scoreEntry),
	}
}

func (l *scoreLedger) entry(id discover.NodeID) *scoreEntry {
	e, ok := l.entries[id]
	if !ok {
		e = &scoreEntry{lastDecay: l.now()}
		l.entries[id] = e
	}
	return e
}

// decayLocked halves the score once per elapsed ban window.
func (l *scoreLedger) decayLocked(e *scoreEntry, now time.Time) {
	if l.window <= 0 || e.score == 0 {
		e.lastDecay = now
		return
	}
	for now.Sub(e.lastDecay) >= l.window && e.score > 0 {
		e.score /= 2
		e.lastDecay = e.lastDecay.Add(l.window)
	}
	if e.score == 0 {
		e.lastDecay = now
	}
}

// penalize charges pts against the node and reports whether the node is
// now (or already was) banned.
func (l *scoreLedger) penalize(id discover.NodeID, pts int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	e := l.entry(id)
	if now.Before(e.bannedUntil) {
		return true
	}
	l.decayLocked(e, now)
	e.score += pts
	if e.score >= l.ban {
		e.bannedUntil = now.Add(l.window)
		e.score = 0
		return true
	}
	return false
}

// score returns the node's current (decayed) score.
func (l *scoreLedger) scoreOf(id discover.NodeID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return 0
	}
	l.decayLocked(e, l.now())
	return e.score
}

// banned reports whether the node is inside an active ban window.
func (l *scoreLedger) banned(id discover.NodeID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	return ok && l.now().Before(e.bannedUntil)
}

// demoted reports whether the node's score crossed the demotion line;
// the dial loop tries demoted nodes only after healthy candidates.
func (l *scoreLedger) demoted(id discover.NodeID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return false
	}
	l.decayLocked(e, l.now())
	return e.score >= l.demote
}

// canDial reports whether the node is dialable now: not banned and past
// its backoff horizon.
func (l *scoreLedger) canDial(id discover.NodeID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return true
	}
	now := l.now()
	return !now.Before(e.bannedUntil) && !now.Before(e.nextDial)
}

// dialFailed records a failed connection attempt and schedules the next
// allowed dial with exponential backoff and deterministic per-node
// jitter. Returns the consecutive failure count.
func (l *scoreLedger) dialFailed(id discover.NodeID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(id)
	e.dialFails++
	e.nextDial = l.now().Add(discover.DialBackoff(id, e.dialFails, l.base, l.max))
	return e.dialFails
}

// dialOK clears the node's failure history after a successful handshake.
func (l *scoreLedger) dialOK(id discover.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[id]; ok {
		e.dialFails = 0
		e.nextDial = time.Time{}
	}
}
