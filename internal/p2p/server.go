package p2p

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
)

// Handshake / connection errors.
var (
	ErrGenesisMismatch  = errors.New("p2p: genesis mismatch")
	ErrNetworkMismatch  = errors.New("p2p: network id mismatch")
	ErrProtocolMismatch = errors.New("p2p: protocol version mismatch")
	ErrForkMismatch     = errors.New("p2p: incompatible fork id (other side of the partition)")
	ErrAlreadyConnected = errors.New("p2p: already connected to this node")
	ErrTooManyPeers     = errors.New("p2p: peer limit reached")
	ErrServerClosed     = errors.New("p2p: server closed")
	ErrSelfConnect      = errors.New("p2p: refusing to connect to self")
)

// handshakeTimeout bounds the status exchange.
const handshakeTimeout = 5 * time.Second

// maxServedBlocks caps one MsgGetBlocks response.
const maxServedBlocks = 128

// Dialer connects to a node address. net.Dialer-based transports and the
// in-memory MemNet both satisfy it.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(addr string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(addr string) (net.Conn, error) { return f(addr) }

// TCPDialer dials over real TCP.
func TCPDialer(timeout time.Duration) Dialer {
	return DialerFunc(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
}

// Config configures a Server.
type Config struct {
	// Self is the node identity advertised in handshakes and neighbors
	// responses. Self.Addr must be dialable via Dialer.
	Self discover.Node
	// NetworkID must match between peers (1 for the mainnet-like nets).
	NetworkID uint64
	// MaxPeers bounds live connections (inbound + outbound).
	MaxPeers int
	// Backend is the ledger gossiped for.
	Backend Backend
	// Dialer reaches other nodes; required for Connect and discovery.
	Dialer Dialer
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)
}

// Server runs the wire protocol for one node: it accepts and dials peers,
// gossips blocks and transactions, serves sync and discovery queries, and
// enforces the fork-id handshake that partitions the network.
type Server struct {
	cfg   Config
	table *discover.Table

	mu       sync.Mutex
	peers    map[discover.NodeID]*Peer
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup

	quit chan struct{}
}

// NewServer returns a stopped server; call Serve (with a listener) and/or
// Connect to join the network.
func NewServer(cfg Config) *Server {
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = 25
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{
		cfg:   cfg,
		table: discover.NewTable(cfg.Self),
		peers: make(map[discover.NodeID]*Peer),
		quit:  make(chan struct{}),
	}
}

// Self returns the local node identity.
func (s *Server) Self() discover.Node { return s.cfg.Self }

// Table exposes the discovery table (the crawler and tests read it).
func (s *Server) Table() *discover.Table { return s.table }

// Serve accepts inbound connections until the listener or server closes.
// It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return ErrServerClosed
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if _, err := s.setupConn(conn); err != nil {
				s.cfg.Logf("p2p[%s]: inbound handshake failed: %v", s.cfg.Self.Addr, err)
			}
		}()
	}
}

// Connect dials a node and runs the handshake. On success the peer is
// live and its read loop runs until disconnect.
func (s *Server) Connect(n discover.Node) error {
	if n.ID == s.cfg.Self.ID {
		return ErrSelfConnect
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if _, dup := s.peers[n.ID]; dup {
		s.mu.Unlock()
		return ErrAlreadyConnected
	}
	s.mu.Unlock()

	conn, err := s.cfg.Dialer.Dial(n.Addr)
	if err != nil {
		s.table.Remove(n.ID)
		return fmt.Errorf("p2p: dial %s: %w", n.Addr, err)
	}
	_, err = s.setupConn(conn)
	return err
}

// localStatus snapshots the handshake payload.
func (s *Server) localStatus() *Status {
	head, number, td := s.cfg.Backend.Head()
	return &Status{
		ProtocolVersion: ProtocolVersion,
		NetworkID:       s.cfg.NetworkID,
		TD:              td,
		Head:            head,
		HeadNumber:      number,
		Genesis:         s.cfg.Backend.Genesis(),
		ForkID:          s.cfg.Backend.ForkID(),
		Node:            s.cfg.Self,
	}
}

// setupConn performs the status exchange and, on success, registers the
// peer and starts its read loop.
func (s *Server) setupConn(conn net.Conn) (*Peer, error) {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	// Write our status and read theirs concurrently; net.Pipe has no
	// buffering, so sequential write-then-read deadlocks when both sides
	// write first.
	errCh := make(chan error, 1)
	go func() {
		errCh <- WriteMsg(conn, MsgStatus, s.localStatus().encode())
	}()
	msg, err := ReadMsg(conn)
	if err != nil {
		conn.Close()
		<-errCh
		return nil, fmt.Errorf("p2p: reading status: %w", err)
	}
	if err := <-errCh; err != nil {
		conn.Close()
		return nil, fmt.Errorf("p2p: writing status: %w", err)
	}
	if msg.Code != MsgStatus {
		conn.Close()
		return nil, fmt.Errorf("%w: first message code %d", ErrBadMessage, msg.Code)
	}
	remote, err := decodeStatus(msg.Body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := s.checkStatus(remote); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})

	peer := newPeer(conn, remote)
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		peer.Close()
		return nil, ErrServerClosed
	case len(s.peers) >= s.cfg.MaxPeers:
		s.mu.Unlock()
		peer.Close()
		return nil, ErrTooManyPeers
	default:
		if _, dup := s.peers[remote.Node.ID]; dup {
			s.mu.Unlock()
			peer.Close()
			return nil, ErrAlreadyConnected
		}
		s.peers[remote.Node.ID] = peer
	}
	s.mu.Unlock()
	s.table.Add(remote.Node)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.readLoop(peer)
	}()

	// If the peer is ahead, start syncing.
	s.maybeSync(peer)
	return peer, nil
}

func (s *Server) checkStatus(remote *Status) error {
	if remote.ProtocolVersion != ProtocolVersion {
		return fmt.Errorf("%w: %d vs %d", ErrProtocolMismatch, remote.ProtocolVersion, ProtocolVersion)
	}
	if remote.NetworkID != s.cfg.NetworkID {
		return fmt.Errorf("%w: %d vs %d", ErrNetworkMismatch, remote.NetworkID, s.cfg.NetworkID)
	}
	if remote.Genesis != s.cfg.Backend.Genesis() {
		return ErrGenesisMismatch
	}
	if remote.Node.ID == s.cfg.Self.ID {
		return ErrSelfConnect
	}
	if !remote.ForkID.Compatible(s.cfg.Backend.ForkID()) {
		return ErrForkMismatch
	}
	return nil
}

func (s *Server) readLoop(p *Peer) {
	defer s.dropPeer(p)
	for {
		msg, err := ReadMsg(p.conn)
		if err != nil {
			return
		}
		p.touch()
		if s.handleKeepalive(p, msg) {
			continue
		}
		if err := s.handle(p, msg); err != nil {
			s.cfg.Logf("p2p[%s]: dropping %x: %v", s.cfg.Self.Addr, p.node.ID[:4], err)
			return
		}
	}
}

func (s *Server) dropPeer(p *Peer) {
	p.Close()
	s.mu.Lock()
	if cur, ok := s.peers[p.node.ID]; ok && cur == p {
		delete(s.peers, p.node.ID)
	}
	s.mu.Unlock()
}

func (s *Server) handle(p *Peer, msg Message) error {
	switch msg.Code {
	case MsgStatus:
		// Post-handshake status refresh (head announcement).
		remote, err := decodeStatus(msg.Body)
		if err != nil {
			return err
		}
		// A peer that crossed to the other side of the partition (e.g.
		// upgraded software mid-session) is dropped, as real nodes do.
		if !remote.ForkID.Compatible(s.cfg.Backend.ForkID()) {
			return ErrForkMismatch
		}
		p.setHead(remote.Head, remote.HeadNumber, remote.TD)
		s.maybeSync(p)
		return nil

	case MsgNewBlock:
		blk, td, err := decodeNewBlock(msg.Body)
		if err != nil {
			return err
		}
		p.setHead(blk.Hash(), blk.Number(), td)
		if s.cfg.Backend.HasBlock(blk.Hash()) {
			return nil
		}
		switch err := s.cfg.Backend.InsertBlock(blk); {
		case err == nil:
			s.relayBlock(blk, td, p.node.ID)
		case errors.Is(err, chain.ErrKnownBlock):
			// raced another relay; fine
		case errors.Is(err, chain.ErrUnknownParent):
			s.maybeSync(p)
		case errors.Is(err, chain.ErrSideOfPartition):
			return err // drop peers feeding us the other fork
		default:
			s.cfg.Logf("p2p[%s]: bad block %s: %v", s.cfg.Self.Addr, blk.Hash(), err)
		}
		return nil

	case MsgTransactions:
		txs, err := decodeTxs(msg.Body)
		if err != nil {
			return err
		}
		var fresh []*chain.Transaction
		for _, tx := range txs {
			if s.cfg.Backend.KnowsTransaction(tx.Hash()) {
				continue
			}
			if err := s.cfg.Backend.AddTransaction(tx); err == nil {
				fresh = append(fresh, tx)
			}
		}
		if len(fresh) > 0 {
			s.relayTxs(fresh, p.node.ID)
		}
		return nil

	case MsgGetBlocks:
		from, count, err := decodeGetBlocks(msg.Body)
		if err != nil {
			return err
		}
		if count > maxServedBlocks {
			count = maxServedBlocks
		}
		var blocks []*chain.Block
		for n := from; n < from+count; n++ {
			b, ok := s.cfg.Backend.BlockByNumber(n)
			if !ok {
				break
			}
			blocks = append(blocks, b)
		}
		p.send(MsgBlocks, encodeBlocks(blocks))
		return nil

	case MsgBlocks:
		blocks, err := decodeBlocks(msg.Body)
		if err != nil {
			return err
		}
		for _, blk := range blocks {
			if s.cfg.Backend.HasBlock(blk.Hash()) {
				continue
			}
			if err := s.cfg.Backend.InsertBlock(blk); err != nil {
				if errors.Is(err, chain.ErrSideOfPartition) {
					return err
				}
				break
			}
		}
		// Keep pulling if the peer is still ahead.
		s.maybeSync(p)
		return nil

	case MsgFindNode:
		target, err := decodeFindNode(msg.Body)
		if err != nil {
			return err
		}
		nodes := s.table.Closest(target, discover.BucketSize)
		p.send(MsgNeighbors, encodeNeighbors(nodes))
		return nil

	case MsgNeighbors:
		nodes, err := decodeNeighbors(msg.Body)
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if n.ID != s.cfg.Self.ID {
				s.table.Add(n)
			}
		}
		return nil

	default:
		return fmt.Errorf("%w: unknown code %d", ErrBadMessage, msg.Code)
	}
}

// maybeSync requests the next block range when the peer advertises a
// heavier chain.
func (s *Server) maybeSync(p *Peer) {
	_, localNum, localTD := s.cfg.Backend.Head()
	_, remoteNum, remoteTD := p.Head()
	if remoteTD == nil || localTD.Cmp(remoteTD) >= 0 {
		return
	}
	from := localNum + 1
	count := uint64(maxServedBlocks)
	if remoteNum >= from && remoteNum-from+1 < count {
		count = remoteNum - from + 1
	}
	// A heavier chain may be shorter; ask for at least one block around
	// our head so fork choice can see it.
	if remoteNum < from {
		if remoteNum == 0 {
			return
		}
		from = remoteNum
		count = 1
	}
	p.send(MsgGetBlocks, encodeGetBlocks(from, count))
}

// BroadcastBlock announces a locally produced block to every peer.
func (s *Server) BroadcastBlock(b *chain.Block) {
	_, _, td := s.cfg.Backend.Head()
	s.relayBlock(b, td, discover.NodeID{})
}

func (s *Server) relayBlock(b *chain.Block, td *big.Int, except discover.NodeID) {
	body := encodeNewBlock(b, td)
	for _, p := range s.Peers() {
		if p.node.ID == except {
			continue
		}
		p.send(MsgNewBlock, body)
	}
}

// BroadcastTxs announces transactions to every peer.
func (s *Server) BroadcastTxs(txs []*chain.Transaction) {
	s.relayTxs(txs, discover.NodeID{})
}

func (s *Server) relayTxs(txs []*chain.Transaction, except discover.NodeID) {
	body := encodeTxs(txs)
	for _, p := range s.Peers() {
		if p.node.ID == except {
			continue
		}
		p.send(MsgTransactions, body)
	}
}

// AnnounceHead sends a status refresh to all peers (e.g. after importing
// blocks out of band). Peers that became incompatible — the fork just
// activated — will drop us, partitioning the network.
func (s *Server) AnnounceHead() {
	status := s.localStatus().encode()
	for _, p := range s.Peers() {
		p.send(MsgStatus, status)
	}
}

// RequestNeighbors asks every peer for nodes near target, growing the
// local table.
func (s *Server) RequestNeighbors(target discover.NodeID) {
	body := encodeFindNode(target)
	for _, p := range s.Peers() {
		p.send(MsgFindNode, body)
	}
}

// Peers returns a snapshot of live peers.
func (s *Server) Peers() []*Peer {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	return out
}

// PeerCount returns the number of live peers.
func (s *Server) PeerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Close tears down the listener and every peer and waits for the loops to
// exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.quit)
	ln := s.listener
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, p := range peers {
		p.Close()
	}
	s.wg.Wait()
}
