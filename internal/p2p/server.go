package p2p

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
)

// Handshake / connection errors.
var (
	ErrGenesisMismatch  = errors.New("p2p: genesis mismatch")
	ErrNetworkMismatch  = errors.New("p2p: network id mismatch")
	ErrProtocolMismatch = errors.New("p2p: protocol version mismatch")
	ErrForkMismatch     = errors.New("p2p: incompatible fork id (other side of the partition)")
	ErrAlreadyConnected = errors.New("p2p: already connected to this node")
	ErrTooManyPeers     = errors.New("p2p: peer limit reached")
	ErrServerClosed     = errors.New("p2p: server closed")
	ErrSelfConnect      = errors.New("p2p: refusing to connect to self")
	ErrPeerBanned       = errors.New("p2p: peer is banned (score ledger)")
	ErrDialBackoff      = errors.New("p2p: dial suppressed by backoff window")
)

// Resilience defaults (all overridable via Config; negative disables).
const (
	defaultHandshakeTimeout = 5 * time.Second
	defaultReadTimeout      = 2 * time.Minute
	defaultWriteTimeout     = 10 * time.Second
	defaultSyncTimeout      = 10 * time.Second
	defaultDialBackoff      = 250 * time.Millisecond
	defaultMaxDialBackoff   = 30 * time.Second
	defaultDialMaxFails     = 3
	defaultDemoteScore      = 50
	defaultBanScore         = 100
	defaultBanWindow        = 5 * time.Minute
)

// maxServedBlocks caps one MsgGetBlocks response.
const maxServedBlocks = 128

// Dialer connects to a node address. net.Dialer-based transports and the
// in-memory MemNet both satisfy it.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(addr string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(addr string) (net.Conn, error) { return f(addr) }

// TCPDialer dials over real TCP.
func TCPDialer(timeout time.Duration) Dialer {
	return DialerFunc(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
}

// Config configures a Server.
type Config struct {
	// Self is the node identity advertised in handshakes and neighbors
	// responses. Self.Addr must be dialable via Dialer.
	Self discover.Node
	// NetworkID must match between peers (1 for the mainnet-like nets).
	NetworkID uint64
	// MaxPeers bounds live connections (inbound + outbound).
	MaxPeers int
	// Backend is the ledger gossiped for.
	Backend Backend
	// Dialer reaches other nodes; required for Connect and discovery.
	Dialer Dialer
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)

	// Resilience knobs. Zero selects the documented default; a negative
	// duration (or count) disables the mechanism.

	// HandshakeTimeout bounds the status exchange (default 5s).
	HandshakeTimeout time.Duration
	// ReadTimeout is the per-message read deadline in the read loop; a
	// peer silent for longer is disconnected (default 2m — above the
	// keepalive ping interval, so live peers always have traffic).
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline; a stalled
	// (slow-loris) connection is dropped instead of wedging the write
	// loop (default 10s).
	WriteTimeout time.Duration
	// SyncTimeout bounds one block-range request; on expiry without
	// progress the range is re-requested from an alternate peer
	// (default 10s).
	SyncTimeout time.Duration
	// DialBackoff is the base redial backoff after a failed dial,
	// doubling per consecutive failure up to MaxDialBackoff with
	// deterministic per-node jitter (defaults 250ms / 30s).
	DialBackoff    time.Duration
	MaxDialBackoff time.Duration
	// DialMaxFails is how many consecutive dial errors evict a node from
	// the discovery table (default 3).
	DialMaxFails int
	// DemoteScore and BanScore are the misbehavior-score thresholds at
	// which a peer is demoted (dialed last) and banned (defaults 50/100).
	DemoteScore int
	BanScore    int
	// BanWindow is how long a ban lasts, and the score half-life
	// (default 5m).
	BanWindow time.Duration
}

// effective returns v, or def when v is zero, or 0 when v is negative
// (negative = disabled).
func effective(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	default:
		return v
	}
}

// Server runs the wire protocol for one node: it accepts and dials peers,
// gossips blocks and transactions, serves sync and discovery queries, and
// enforces the fork-id handshake that partitions the network.
type Server struct {
	cfg    Config
	table  *discover.Table
	scores *scoreLedger

	mu       sync.Mutex
	peers    map[discover.NodeID]*Peer
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup

	// syncGen numbers block-range requests; the sync watchdog only acts
	// when its generation is still the latest (atomic).
	syncGen uint64

	quit chan struct{}
}

// NewServer returns a stopped server; call Serve (with a listener) and/or
// Connect to join the network.
func NewServer(cfg Config) *Server {
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = 25
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.HandshakeTimeout = effective(cfg.HandshakeTimeout, defaultHandshakeTimeout)
	cfg.ReadTimeout = effective(cfg.ReadTimeout, defaultReadTimeout)
	cfg.WriteTimeout = effective(cfg.WriteTimeout, defaultWriteTimeout)
	cfg.SyncTimeout = effective(cfg.SyncTimeout, defaultSyncTimeout)
	cfg.DialBackoff = effective(cfg.DialBackoff, defaultDialBackoff)
	cfg.MaxDialBackoff = effective(cfg.MaxDialBackoff, defaultMaxDialBackoff)
	cfg.BanWindow = effective(cfg.BanWindow, defaultBanWindow)
	switch {
	case cfg.DialMaxFails < 0:
		cfg.DialMaxFails = 0
	case cfg.DialMaxFails == 0:
		cfg.DialMaxFails = defaultDialMaxFails
	}
	if cfg.DemoteScore == 0 {
		cfg.DemoteScore = defaultDemoteScore
	}
	if cfg.BanScore == 0 {
		cfg.BanScore = defaultBanScore
	}
	return &Server{
		cfg:    cfg,
		table:  discover.NewTable(cfg.Self),
		scores: newScoreLedger(cfg.DemoteScore, cfg.BanScore, cfg.BanWindow, cfg.DialBackoff, cfg.MaxDialBackoff),
		peers:  make(map[discover.NodeID]*Peer),
		quit:   make(chan struct{}),
	}
}

// PeerScore returns the node's current misbehavior score (tests and
// operators inspect the ledger through this).
func (s *Server) PeerScore(id discover.NodeID) int { return s.scores.scoreOf(id) }

// Banned reports whether the node is inside an active ban window.
func (s *Server) Banned(id discover.NodeID) bool { return s.scores.banned(id) }

// Self returns the local node identity.
func (s *Server) Self() discover.Node { return s.cfg.Self }

// Table exposes the discovery table (the crawler and tests read it).
func (s *Server) Table() *discover.Table { return s.table }

// Serve accepts inbound connections until the listener or server closes.
// It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return ErrServerClosed
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if _, err := s.setupConn(conn); err != nil {
				s.cfg.Logf("p2p[%s]: inbound handshake failed: %v", s.cfg.Self.Addr, err)
			}
		}()
	}
}

// Connect dials a node and runs the handshake. On success the peer is
// live and its read loop runs until disconnect. Failed attempts feed an
// exponential redial backoff; repeated dial errors evict the node from
// the discovery table; banned nodes are refused outright.
func (s *Server) Connect(n discover.Node) error {
	if n.ID == s.cfg.Self.ID {
		return ErrSelfConnect
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if _, dup := s.peers[n.ID]; dup {
		s.mu.Unlock()
		return ErrAlreadyConnected
	}
	s.mu.Unlock()
	if s.scores.banned(n.ID) {
		return fmt.Errorf("%w: %x", ErrPeerBanned, n.ID[:4])
	}
	if !s.scores.canDial(n.ID) {
		return fmt.Errorf("%w: %x", ErrDialBackoff, n.ID[:4])
	}

	conn, err := s.cfg.Dialer.Dial(n.Addr)
	if err != nil {
		// Dead endpoint: back off, and evict from the table once the
		// consecutive-failure budget is spent (it can be re-learned
		// through Neighbors gossip later).
		if fails := s.scores.dialFailed(n.ID); s.cfg.DialMaxFails > 0 && fails >= s.cfg.DialMaxFails {
			s.table.Remove(n.ID)
		}
		return fmt.Errorf("p2p: dial %s: %w", n.Addr, err)
	}
	if _, err = s.setupConn(conn); err != nil {
		// The endpoint is alive but the handshake failed (other fork,
		// wrong genesis, timeout under loss...): back off so the dial
		// loop does not redial it hot, but keep it in the table.
		if !errors.Is(err, ErrAlreadyConnected) && !errors.Is(err, ErrTooManyPeers) && !errors.Is(err, ErrServerClosed) {
			s.scores.dialFailed(n.ID)
		}
		return err
	}
	s.scores.dialOK(n.ID)
	return nil
}

// localStatus snapshots the handshake payload.
func (s *Server) localStatus() *Status {
	head, number, td := s.cfg.Backend.Head()
	return &Status{
		ProtocolVersion: ProtocolVersion,
		NetworkID:       s.cfg.NetworkID,
		TD:              td,
		Head:            head,
		HeadNumber:      number,
		Genesis:         s.cfg.Backend.Genesis(),
		ForkID:          s.cfg.Backend.ForkID(),
		Node:            s.cfg.Self,
	}
}

// setupConn performs the status exchange and, on success, registers the
// peer and starts its read loop.
func (s *Server) setupConn(conn net.Conn) (*Peer, error) {
	if s.cfg.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	}
	// Write our status and read theirs concurrently; net.Pipe has no
	// buffering, so sequential write-then-read deadlocks when both sides
	// write first.
	errCh := make(chan error, 1)
	go func() {
		errCh <- WriteMsg(conn, MsgStatus, s.localStatus().encode())
	}()
	msg, err := ReadMsg(conn)
	if err != nil {
		conn.Close()
		<-errCh
		return nil, fmt.Errorf("p2p: reading status: %w", err)
	}
	if err := <-errCh; err != nil {
		conn.Close()
		return nil, fmt.Errorf("p2p: writing status: %w", err)
	}
	if msg.Code != MsgStatus {
		conn.Close()
		return nil, fmt.Errorf("%w: first message code %d", ErrBadMessage, msg.Code)
	}
	remote, err := decodeStatus(msg.Body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := s.checkStatus(remote); err != nil {
		conn.Close()
		return nil, err
	}
	if s.scores.banned(remote.Node.ID) {
		conn.Close()
		return nil, fmt.Errorf("%w: %x", ErrPeerBanned, remote.Node.ID[:4])
	}
	conn.SetDeadline(time.Time{})

	remoteID := remote.Node.ID
	peer := newPeer(conn, remote, s.cfg.WriteTimeout, func(err error) {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.cfg.Logf("p2p[%s]: write timeout to %x (stalled peer)", s.cfg.Self.Addr, remoteID[:4])
			s.scores.penalize(remoteID, penaltyWriteTimeout)
		}
	})
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		peer.Close()
		return nil, ErrServerClosed
	case len(s.peers) >= s.cfg.MaxPeers:
		s.mu.Unlock()
		peer.Close()
		return nil, ErrTooManyPeers
	default:
		if _, dup := s.peers[remote.Node.ID]; dup {
			s.mu.Unlock()
			peer.Close()
			return nil, ErrAlreadyConnected
		}
		s.peers[remote.Node.ID] = peer
	}
	s.mu.Unlock()
	s.table.Add(remote.Node)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.readLoop(peer)
	}()

	// If the peer is ahead, start syncing.
	s.maybeSync(peer)
	return peer, nil
}

func (s *Server) checkStatus(remote *Status) error {
	if remote.ProtocolVersion != ProtocolVersion {
		return fmt.Errorf("%w: %d vs %d", ErrProtocolMismatch, remote.ProtocolVersion, ProtocolVersion)
	}
	if remote.NetworkID != s.cfg.NetworkID {
		return fmt.Errorf("%w: %d vs %d", ErrNetworkMismatch, remote.NetworkID, s.cfg.NetworkID)
	}
	if remote.Genesis != s.cfg.Backend.Genesis() {
		return ErrGenesisMismatch
	}
	if remote.Node.ID == s.cfg.Self.ID {
		return ErrSelfConnect
	}
	if !remote.ForkID.Compatible(s.cfg.Backend.ForkID()) {
		return ErrForkMismatch
	}
	return nil
}

func (s *Server) readLoop(p *Peer) {
	defer s.dropPeer(p)
	for {
		if s.cfg.ReadTimeout > 0 {
			p.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		msg, err := ReadMsg(p.conn)
		if err != nil {
			switch {
			case errors.Is(err, ErrBadMessage):
				// The length framing survived, only the payload was
				// garbage: account for the corruption and keep reading
				// unless the peer crossed the ban line.
				if s.penalizePeer(p, penaltyCorruptFrame, "corrupt frame") {
					return
				}
				continue
			case errors.Is(err, ErrFrameTooLarge):
				// A corrupted length prefix desyncs the stream beyond
				// recovery: score it and drop the connection.
				s.penalizePeer(p, penaltyCorruptFrame, "corrupt frame header")
				return
			default:
				// I/O error, deadline or closed conn.
				return
			}
		}
		p.touch()
		if s.handleKeepalive(p, msg) {
			continue
		}
		if err := s.handle(p, msg); err != nil {
			if errors.Is(err, ErrBadMessage) {
				if s.penalizePeer(p, penaltyBadMessage, "malformed message") {
					return
				}
				continue
			}
			s.cfg.Logf("p2p[%s]: dropping %x: %v", s.cfg.Self.Addr, p.node.ID[:4], err)
			return
		}
	}
}

// penalizePeer charges pts against the peer's misbehavior score and
// reports whether the peer is now banned (callers should disconnect).
func (s *Server) penalizePeer(p *Peer, pts int, why string) bool {
	if s.scores.penalize(p.node.ID, pts) {
		s.cfg.Logf("p2p[%s]: banning %x for %v: %s", s.cfg.Self.Addr, p.node.ID[:4], s.cfg.BanWindow, why)
		return true
	}
	s.cfg.Logf("p2p[%s]: penalizing %x (+%d): %s", s.cfg.Self.Addr, p.node.ID[:4], pts, why)
	return false
}

func (s *Server) dropPeer(p *Peer) {
	p.Close()
	s.mu.Lock()
	if cur, ok := s.peers[p.node.ID]; ok && cur == p {
		delete(s.peers, p.node.ID)
	}
	s.mu.Unlock()
}

func (s *Server) handle(p *Peer, msg Message) error {
	switch msg.Code {
	case MsgStatus:
		// Post-handshake status refresh (head announcement).
		remote, err := decodeStatus(msg.Body)
		if err != nil {
			return err
		}
		// A peer that crossed to the other side of the partition (e.g.
		// upgraded software mid-session) is dropped, as real nodes do.
		if !remote.ForkID.Compatible(s.cfg.Backend.ForkID()) {
			return ErrForkMismatch
		}
		p.setHead(remote.Head, remote.HeadNumber, remote.TD)
		s.maybeSync(p)
		return nil

	case MsgNewBlock:
		blk, td, err := decodeNewBlock(msg.Body)
		if err != nil {
			return err
		}
		p.setHead(blk.Hash(), blk.Number(), td)
		if s.cfg.Backend.HasBlock(blk.Hash()) {
			return nil
		}
		switch err := s.cfg.Backend.InsertBlock(blk); {
		case err == nil:
			s.relayBlock(blk, td, p.node.ID)
		case errors.Is(err, chain.ErrKnownBlock):
			// raced another relay; fine
		case errors.Is(err, chain.ErrUnknownParent):
			s.maybeSync(p)
		case errors.Is(err, chain.ErrSideOfPartition):
			return err // drop peers feeding us the other fork
		default:
			s.cfg.Logf("p2p[%s]: bad block %s: %v", s.cfg.Self.Addr, blk.Hash(), err)
			if s.penalizePeer(p, penaltyInvalidBlock, "invalid block") {
				return fmt.Errorf("%w: repeated invalid blocks", ErrPeerBanned)
			}
		}
		return nil

	case MsgTransactions:
		txs, err := decodeTxs(msg.Body)
		if err != nil {
			return err
		}
		var fresh []*chain.Transaction
		for _, tx := range txs {
			if s.cfg.Backend.KnowsTransaction(tx.Hash()) {
				continue
			}
			if err := s.cfg.Backend.AddTransaction(tx); err == nil {
				fresh = append(fresh, tx)
			}
		}
		if len(fresh) > 0 {
			s.relayTxs(fresh, p.node.ID)
		}
		return nil

	case MsgGetBlocks:
		from, count, err := decodeGetBlocks(msg.Body)
		if err != nil {
			return err
		}
		if count > maxServedBlocks {
			count = maxServedBlocks
		}
		var blocks []*chain.Block
		for n := from; n < from+count; n++ {
			b, ok := s.cfg.Backend.BlockByNumber(n)
			if !ok {
				break
			}
			blocks = append(blocks, b)
		}
		p.send(MsgBlocks, encodeBlocks(blocks))
		return nil

	case MsgBlocks:
		blocks, err := decodeBlocks(msg.Body)
		if err != nil {
			return err
		}
		for _, blk := range blocks {
			if s.cfg.Backend.HasBlock(blk.Hash()) {
				continue
			}
			if err := s.cfg.Backend.InsertBlock(blk); err != nil {
				if errors.Is(err, chain.ErrSideOfPartition) {
					return err
				}
				break
			}
		}
		// Keep pulling if the peer is still ahead.
		s.maybeSync(p)
		return nil

	case MsgFindNode:
		target, err := decodeFindNode(msg.Body)
		if err != nil {
			return err
		}
		nodes := s.table.Closest(target, discover.BucketSize)
		p.send(MsgNeighbors, encodeNeighbors(nodes))
		return nil

	case MsgNeighbors:
		nodes, err := decodeNeighbors(msg.Body)
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if n.ID != s.cfg.Self.ID {
				s.table.Add(n)
			}
		}
		return nil

	default:
		return fmt.Errorf("%w: unknown code %d", ErrBadMessage, msg.Code)
	}
}

// maybeSync requests the next block range when the peer advertises a
// heavier chain. Each request arms a watchdog: if the range makes no
// progress within SyncTimeout (the response was lost, or the peer is
// stalling), the range is re-requested from an alternate peer.
func (s *Server) maybeSync(p *Peer) {
	_, localNum, localTD := s.cfg.Backend.Head()
	_, remoteNum, remoteTD := p.Head()
	if remoteTD == nil || localTD.Cmp(remoteTD) >= 0 {
		return
	}
	from := localNum + 1
	count := uint64(maxServedBlocks)
	if remoteNum >= from && remoteNum-from+1 < count {
		count = remoteNum - from + 1
	}
	// A heavier chain may be shorter; ask for at least one block around
	// our head so fork choice can see it.
	if remoteNum < from {
		if remoteNum == 0 {
			return
		}
		from = remoteNum
		count = 1
	}
	if !p.send(MsgGetBlocks, encodeGetBlocks(from, count)) {
		return // peer closing or queue saturated; a later trigger retries
	}
	if s.cfg.SyncTimeout > 0 {
		gen := atomic.AddUint64(&s.syncGen, 1)
		time.AfterFunc(s.cfg.SyncTimeout, func() { s.syncExpired(gen, p, localNum) })
	}
}

// syncExpired is the block-range watchdog: when the request generation is
// still current and the head has not advanced, the requested peer never
// delivered — charge it and re-request from the best alternate peer.
func (s *Server) syncExpired(gen uint64, p *Peer, localNum uint64) {
	select {
	case <-s.quit:
		return
	default:
	}
	if atomic.LoadUint64(&s.syncGen) != gen {
		return // a newer request superseded this watchdog
	}
	_, num, _ := s.cfg.Backend.Head()
	if num > localNum {
		return // made progress through this or any other peer
	}
	s.penalizePeer(p, penaltyUnansweredSync, "unanswered block-range request")
	var alt *Peer
	var altTD *big.Int
	for _, cand := range s.Peers() {
		if cand.node.ID == p.node.ID || cand.Closed() {
			continue
		}
		_, _, td := cand.Head()
		if td != nil && (altTD == nil || td.Cmp(altTD) > 0) {
			alt, altTD = cand, td
		}
	}
	if alt == nil {
		if !p.Closed() {
			alt = p // nobody else: retry the same peer
		} else {
			return
		}
	}
	s.cfg.Logf("p2p[%s]: sync request to %x timed out, re-requesting via %x",
		s.cfg.Self.Addr, p.node.ID[:4], alt.node.ID[:4])
	s.maybeSync(alt)
}

// BroadcastBlock announces a locally produced block to every peer.
func (s *Server) BroadcastBlock(b *chain.Block) {
	_, _, td := s.cfg.Backend.Head()
	s.relayBlock(b, td, discover.NodeID{})
}

func (s *Server) relayBlock(b *chain.Block, td *big.Int, except discover.NodeID) {
	body := encodeNewBlock(b, td)
	for _, p := range s.Peers() {
		if p.node.ID == except {
			continue
		}
		p.send(MsgNewBlock, body)
	}
}

// BroadcastTxs announces transactions to every peer.
func (s *Server) BroadcastTxs(txs []*chain.Transaction) {
	s.relayTxs(txs, discover.NodeID{})
}

func (s *Server) relayTxs(txs []*chain.Transaction, except discover.NodeID) {
	body := encodeTxs(txs)
	for _, p := range s.Peers() {
		if p.node.ID == except {
			continue
		}
		p.send(MsgTransactions, body)
	}
}

// AnnounceHead sends a status refresh to all peers (e.g. after importing
// blocks out of band). Peers that became incompatible — the fork just
// activated — will drop us, partitioning the network.
func (s *Server) AnnounceHead() {
	status := s.localStatus().encode()
	for _, p := range s.Peers() {
		p.send(MsgStatus, status)
	}
}

// RequestNeighbors asks every peer for nodes near target, growing the
// local table.
func (s *Server) RequestNeighbors(target discover.NodeID) {
	body := encodeFindNode(target)
	for _, p := range s.Peers() {
		p.send(MsgFindNode, body)
	}
}

// BestPeerHead returns the heaviest head any live peer has advertised:
// its height and total difficulty, and whether any peer has advertised a
// head at all. Replicas read it to measure their own sync lag.
func (s *Server) BestPeerHead() (number uint64, td *big.Int, ok bool) {
	for _, p := range s.Peers() {
		_, num, ptd := p.Head()
		if ptd != nil && (td == nil || ptd.Cmp(td) > 0) {
			number, td, ok = num, ptd, true
		}
	}
	return number, td, ok
}

// SyncNow nudges the sync pull: if the best peer advertises a heavier
// chain than ours, re-request the next block range from it. The follow
// loop of a replica calls this periodically so a lost MsgBlocks frame
// (or a head announcement dropped by a faulty network) never strands the
// sync until the peer happens to announce again.
func (s *Server) SyncNow() {
	var best *Peer
	var bestTD *big.Int
	for _, p := range s.Peers() {
		if p.Closed() {
			continue
		}
		_, _, td := p.Head()
		if td != nil && (bestTD == nil || td.Cmp(bestTD) > 0) {
			best, bestTD = p, td
		}
	}
	if best != nil {
		s.maybeSync(best)
	}
}

// Peers returns a snapshot of live peers.
func (s *Server) Peers() []*Peer {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	return out
}

// PeerCount returns the number of live peers.
func (s *Server) PeerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Close tears down the listener and every peer and waits for the loops to
// exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.quit)
	ln := s.listener
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, p := range peers {
		p.Close()
	}
	s.wg.Wait()
}
