package p2p

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/keccak"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

var (
	alice = types.HexToAddress("0xa11ce")
	bob   = types.HexToAddress("0xb0b")
	miner = types.HexToAddress("0x313233")
)

func testGenesis() *chain.Genesis {
	return &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_000_000,
		Alloc: map[types.Address]*big.Int{
			alice: new(big.Int).Mul(big.NewInt(100), chain.Ether),
		},
	}
}

func nodeID(name string) discover.NodeID {
	h := keccak.Sum256([]byte(name))
	return discover.IDFromHash(types.BytesToHash(h[:]))
}

// testNode bundles a served p2p node for tests.
type testNode struct {
	name    string
	server  *Server
	backend *ChainBackend
	bc      *chain.Blockchain
}

func newTestNode(t *testing.T, mem *MemNet, name string, bc *chain.Blockchain) *testNode {
	return newTestNodeCfg(t, mem, name, bc, nil)
}

// newTestNodeCfg is newTestNode with a config hook for resilience knobs.
func newTestNodeCfg(t *testing.T, mem *MemNet, name string, bc *chain.Blockchain, mut func(*Config)) *testNode {
	t.Helper()
	backend := NewChainBackend(bc)
	self := discover.Node{ID: nodeID(name), Addr: name}
	cfg := Config{
		Self:      self,
		NetworkID: 1,
		MaxPeers:  32,
		Backend:   backend,
		Dialer:    mem,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv := NewServer(cfg)
	ln, err := mem.Listen(name)
	if err != nil {
		t.Fatalf("listen %s: %v", name, err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return &testNode{name: name, server: srv, backend: backend, bc: bc}
}

func newChain(t *testing.T, cfg *chain.Config) *chain.Blockchain {
	t.Helper()
	bc, err := chain.NewBlockchain(cfg, testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

func mineOn(t *testing.T, bc *chain.Blockchain, txs ...*chain.Transaction) *chain.Block {
	t.Helper()
	b, err := bc.BuildBlock(miner, bc.Head().Header.Time+14, txs)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.InsertBlock(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMsgFraming(t *testing.T) {
	var buf bytes.Buffer
	body := rlp.List(rlp.Uint(42), rlp.String("payload"))
	if err := WriteMsg(&buf, MsgNewBlock, body); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Code != MsgNewBlock {
		t.Errorf("code = %d", msg.Code)
	}
	items, err := msg.Body.ListOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if u, _ := items[0].AsUint(); u != 42 {
		t.Errorf("payload corrupted: %d", u)
	}
}

func TestMsgFramingErrors(t *testing.T) {
	// Truncated frame.
	if _, err := ReadMsg(bytes.NewReader([]byte{0, 0, 0, 10, 1, 2})); err == nil {
		t.Error("truncated frame should fail")
	}
	// Oversized frame header.
	if _, err := ReadMsg(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame: err = %v", err)
	}
	// Garbage payload.
	if _, err := ReadMsg(bytes.NewReader([]byte{0, 0, 0, 1, 0xb9})); !errors.Is(err, ErrBadMessage) {
		t.Errorf("garbage payload: err = %v", err)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	s := &Status{
		ProtocolVersion: ProtocolVersion,
		NetworkID:       1,
		TD:              big.NewInt(12345678),
		Head:            types.HexToHash("0xbeef"),
		HeadNumber:      99,
		Genesis:         types.HexToHash("0xfeed"),
		ForkID:          chain.ForkID{DAOForkBlock: 1920000, DAOForkSupport: true},
		Node:            discover.Node{ID: nodeID("n"), Addr: "n"},
	}
	dec, err := decodeStatus(s.encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.TD.Cmp(s.TD) != 0 || dec.Head != s.Head || dec.ForkID != s.ForkID || dec.Node != s.Node {
		t.Errorf("status round trip mismatch: %+v vs %+v", dec, s)
	}
}

func TestMemNet(t *testing.T) {
	mem := NewMemNet()
	ln, err := mem.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate listen: err = %v", err)
	}
	if _, err := mem.Dial("nobody"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial unknown: err = %v", err)
	}
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	client, err := mem.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	go client.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := server.Read(buf); err != nil || string(buf) != "ping" {
		t.Errorf("pipe transfer failed: %q %v", buf, err)
	}
	ln.Close()
	if _, err := mem.Dial("a"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial closed listener: err = %v", err)
	}
}

func TestHandshakeAndPeering(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "a", newChain(t, chain.MainnetLikeConfig()))
	b := newTestNode(t, mem, "b", newChain(t, chain.MainnetLikeConfig()))

	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatalf("connect: %v", err)
	}
	waitFor(t, "peering", func() bool {
		return a.server.PeerCount() == 1 && b.server.PeerCount() == 1
	})
	if err := a.server.Connect(b.server.Self()); !errors.Is(err, ErrAlreadyConnected) {
		t.Errorf("duplicate connect: err = %v", err)
	}
	if err := a.server.Connect(a.server.Self()); !errors.Is(err, ErrSelfConnect) {
		t.Errorf("self connect: err = %v", err)
	}
}

func TestHandshakeGenesisMismatch(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "a", newChain(t, chain.MainnetLikeConfig()))

	otherGen, err := chain.NewBlockchain(chain.MainnetLikeConfig(), &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       42, // different genesis
	})
	if err != nil {
		t.Fatal(err)
	}
	b := newTestNode(t, mem, "b", otherGen)
	if err := a.server.Connect(b.server.Self()); !errors.Is(err, ErrGenesisMismatch) {
		t.Errorf("genesis mismatch: err = %v", err)
	}
	if a.server.PeerCount() != 0 {
		t.Error("mismatched peer should not be registered")
	}
}

// buildPartitionedChains returns an ETH and an ETC chain sharing genesis,
// both advanced past the DAO fork block so their fork ids conflict.
func buildPartitionedChains(t *testing.T) (*chain.Blockchain, *chain.Blockchain) {
	t.Helper()
	const forkBlock = 2
	gen := testGenesis()
	eth, err := chain.NewBlockchain(chain.ETHConfig(forkBlock, nil, types.Address{}), gen)
	if err != nil {
		t.Fatal(err)
	}
	etc, err := eth.NewSibling(chain.ETCConfig(forkBlock), gen)
	if err != nil {
		t.Fatal(err)
	}
	// Shared block 1.
	b1, err := eth.BuildBlock(miner, eth.Head().Header.Time+14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eth.InsertBlock(b1); err != nil {
		t.Fatal(err)
	}
	if err := etc.InsertBlock(b1); err != nil {
		t.Fatal(err)
	}
	// Divergent fork blocks.
	mineOn(t, eth)
	mineOn(t, etc)
	return eth, etc
}

func TestHandshakeForkPartition(t *testing.T) {
	mem := NewMemNet()
	eth, etc := buildPartitionedChains(t)
	a := newTestNode(t, mem, "eth-node", eth)
	b := newTestNode(t, mem, "etc-node", etc)

	if err := a.server.Connect(b.server.Self()); !errors.Is(err, ErrForkMismatch) {
		t.Errorf("cross-partition connect: err = %v", err)
	}
	if a.server.PeerCount() != 0 || b.server.PeerCount() != 0 {
		t.Error("cross-partition peers should not persist")
	}
}

func TestBlockGossip(t *testing.T) {
	mem := NewMemNet()
	cfg := chain.MainnetLikeConfig()
	a := newTestNode(t, mem, "a", newChain(t, cfg))
	b := newTestNode(t, mem, "b", newChain(t, chain.MainnetLikeConfig()))
	c := newTestNode(t, mem, "c", newChain(t, chain.MainnetLikeConfig()))

	// Line topology a-b-c: the block must be relayed through b.
	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatal(err)
	}
	if err := b.server.Connect(c.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "line topology wired", func() bool {
		return a.server.PeerCount() == 1 && b.server.PeerCount() == 2 && c.server.PeerCount() == 1
	})

	blk := mineOn(t, a.bc)
	a.server.BroadcastBlock(blk)

	waitFor(t, "block relay to c", func() bool {
		return c.bc.Head().Hash() == blk.Hash()
	})
	if b.bc.Head().Hash() != blk.Hash() {
		t.Error("relay node did not import the block")
	}
}

func TestSyncFromScratch(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "a", newChain(t, chain.MainnetLikeConfig()))
	for i := 0; i < 20; i++ {
		mineOn(t, a.bc)
	}
	b := newTestNode(t, mem, "b", newChain(t, chain.MainnetLikeConfig()))
	if err := b.server.Connect(a.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sync to height 20", func() bool {
		return b.bc.Head().Number() == 20
	})
	if b.bc.Head().Hash() != a.bc.Head().Hash() {
		t.Error("synced head differs")
	}
}

func TestTxGossip(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "a", newChain(t, chain.MainnetLikeConfig()))
	b := newTestNode(t, mem, "b", newChain(t, chain.MainnetLikeConfig()))
	c := newTestNode(t, mem, "c", newChain(t, chain.MainnetLikeConfig()))
	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatal(err)
	}
	if err := b.server.Connect(c.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "line topology wired", func() bool {
		return a.server.PeerCount() == 1 && b.server.PeerCount() == 2 && c.server.PeerCount() == 1
	})

	to := bob
	tx := chain.NewTransaction(0, &to, big.NewInt(5), 21_000, big.NewInt(1), nil).Sign(alice, 0)
	if err := a.backend.AddTransaction(tx); err != nil {
		t.Fatal(err)
	}
	a.server.BroadcastTxs([]*chain.Transaction{tx})
	waitFor(t, "tx relay to c", func() bool {
		return c.backend.KnowsTransaction(tx.Hash())
	})
	// An invalid (unfunded) transaction must not propagate.
	bad := chain.NewTransaction(0, &to, big.NewInt(5), 21_000, big.NewInt(1), nil).Sign(bob, 0)
	a.server.BroadcastTxs([]*chain.Transaction{bad})
	time.Sleep(20 * time.Millisecond)
	if b.backend.KnowsTransaction(bad.Hash()) {
		t.Error("unfunded tx should not enter peer pools")
	}
}

func TestProbeAndCrawlPartition(t *testing.T) {
	mem := NewMemNet()
	eth, etc := buildPartitionedChains(t)

	// 6 ETH nodes, 3 ETC nodes, wired within their own partitions plus
	// stale cross-partition table entries (as real tables had at the
	// fork moment).
	var ethNodes, etcNodes []*testNode
	for i := 0; i < 6; i++ {
		ethNodes = append(ethNodes, newTestNode(t, mem, fmt.Sprintf("eth%d", i), eth))
	}
	for i := 0; i < 3; i++ {
		etcNodes = append(etcNodes, newTestNode(t, mem, fmt.Sprintf("etc%d", i), etc))
	}
	wire := func(nodes []*testNode) {
		for i := 1; i < len(nodes); i++ {
			if err := nodes[i].server.Connect(nodes[0].server.Self()); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire(ethNodes)
	wire(etcNodes)
	// Stale entries: every node's table also lists one node of the other
	// partition.
	for _, n := range ethNodes {
		n.server.Table().Add(etcNodes[0].server.Self())
	}
	for _, n := range etcNodes {
		n.server.Table().Add(ethNodes[0].server.Self())
	}

	// Crawl as an ETC client: only the 3 ETC nodes are reachable.
	probe := &Probe{
		Self: discover.Node{ID: nodeID("crawler"), Addr: "crawler"},
		Status: Status{
			NetworkID:  1,
			TD:         big.NewInt(1),
			Genesis:    etc.Genesis().Hash(),
			HeadNumber: etc.Head().Number(),
			Head:       etc.Head().Hash(),
			ForkID:     etc.ForkID(),
		},
		Dialer: mem,
	}
	seeds := []discover.Node{etcNodes[0].server.Self()}
	res := discover.Crawl(seeds, probe.FindNodeFunc(), 0)
	if len(res.Reachable) != 3 {
		t.Errorf("ETC crawl reached %d nodes, want 3 (got %v)", len(res.Reachable), res.Reachable)
	}
	if len(res.Unreachable) == 0 {
		t.Error("crawl should have discovered unreachable ETH nodes via stale table entries")
	}
}

func TestServeOverTCP(t *testing.T) {
	a := newChainBackendPair(t)
	b := newChainBackendPair(t)

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(Config{
		Self:      discover.Node{ID: nodeID("tcp-a"), Addr: lnA.Addr().String()},
		NetworkID: 1, Backend: a, Dialer: TCPDialer(time.Second),
	})
	go srvA.Serve(lnA)
	defer srvA.Close()

	srvB := NewServer(Config{
		Self:      discover.Node{ID: nodeID("tcp-b"), Addr: "client"},
		NetworkID: 1, Backend: b, Dialer: TCPDialer(time.Second),
	})
	defer srvB.Close()

	if err := srvB.Connect(discover.Node{ID: nodeID("tcp-a"), Addr: lnA.Addr().String()}); err != nil {
		t.Fatalf("TCP connect: %v", err)
	}
	// Connect returns when the dialing side is done; the acceptor may
	// still be registering. Wait for both before a one-shot broadcast.
	waitFor(t, "mutual peering", func() bool {
		return srvA.PeerCount() == 1 && srvB.PeerCount() == 1
	})
	blk, err := a.BC.BuildBlock(miner, a.BC.Head().Header.Time+14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BC.InsertBlock(blk); err != nil {
		t.Fatal(err)
	}
	srvA.BroadcastBlock(blk)
	waitFor(t, "block over TCP", func() bool {
		return b.BC.Head().Hash() == blk.Hash()
	})
}

func newChainBackendPair(t *testing.T) *ChainBackend {
	t.Helper()
	bc, err := chain.NewBlockchain(chain.MainnetLikeConfig(), testGenesis())
	if err != nil {
		t.Fatal(err)
	}
	return NewChainBackend(bc)
}

// TestMaintainPeersKnitsNetwork: nodes that initially know only one
// neighbor discover and dial the rest of the network via the
// maintenance loop.
func TestMaintainPeersKnitsNetwork(t *testing.T) {
	mem := NewMemNet()
	const n = 6
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = newTestNode(t, mem, fmt.Sprintf("knit%d", i), newChain(t, chain.MainnetLikeConfig()))
	}
	// Line topology: i connects to i-1 only.
	for i := 1; i < n; i++ {
		if err := nodes[i].server.Connect(nodes[i-1].server.Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range nodes {
		go tn.server.MaintainPeers(n-1, 5*time.Millisecond)
	}
	waitFor(t, "network knitting", func() bool {
		for _, tn := range nodes {
			if tn.server.PeerCount() < 3 {
				return false
			}
		}
		return true
	})
}

// TestMaintainPeersEvictsDeadNodes: a table polluted with unreachable
// entries is cleaned by failed dials.
func TestMaintainPeersEvictsDeadNodes(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "evict-a", newChain(t, chain.MainnetLikeConfig()))
	for i := 0; i < 5; i++ {
		a.server.Table().Add(discover.Node{ID: nodeID(fmt.Sprintf("ghost%d", i)), Addr: fmt.Sprintf("ghost%d", i)})
	}
	go a.server.MaintainPeers(4, 5*time.Millisecond)
	waitFor(t, "dead node eviction", func() bool {
		return a.server.Table().Len() == 0
	})
}

// TestKeepalivePingPong: two live servers stay peered under an aggressive
// keepalive because pings are answered.
func TestKeepalivePingPong(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "ka-a", newChain(t, chain.MainnetLikeConfig()))
	b := newTestNode(t, mem, "ka-b", newChain(t, chain.MainnetLikeConfig()))
	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peering", func() bool {
		return a.server.PeerCount() == 1 && b.server.PeerCount() == 1
	})
	go a.server.KeepaliveLoop(5*time.Millisecond, 100*time.Millisecond)
	go b.server.KeepaliveLoop(5*time.Millisecond, 100*time.Millisecond)
	time.Sleep(150 * time.Millisecond)
	if a.server.PeerCount() != 1 || b.server.PeerCount() != 1 {
		t.Fatalf("live peers dropped by keepalive: a=%d b=%d",
			a.server.PeerCount(), b.server.PeerCount())
	}
	last := a.server.Peers()[0].LastSeen()
	if time.Since(last) > 50*time.Millisecond {
		t.Errorf("liveness timestamp stale: %v", time.Since(last))
	}
}

// TestKeepaliveDropsSilentPeer: a raw connection that completes the
// handshake but never answers anything is evicted.
func TestKeepaliveDropsSilentPeer(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "kd-a", newChain(t, chain.MainnetLikeConfig()))

	// Hand-rolled mute peer: handshake, then read nothing, send nothing.
	conn, err := mem.Dial("kd-a")
	if err != nil {
		t.Fatal(err)
	}
	genesis := a.bc.Genesis().Hash()
	status := &Status{
		ProtocolVersion: ProtocolVersion,
		NetworkID:       1,
		TD:              big.NewInt(1),
		Genesis:         genesis,
		Node:            discover.Node{ID: nodeID("mute"), Addr: "mute"},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- WriteMsg(conn, MsgStatus, status.encode()) }()
	if _, err := ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mute peer registered", func() bool { return a.server.PeerCount() == 1 })

	// The mute peer ignores pings; its queue fills and LastSeen ages.
	go a.server.KeepaliveLoop(5*time.Millisecond, 60*time.Millisecond)
	waitFor(t, "silent peer eviction", func() bool { return a.server.PeerCount() == 0 })
	conn.Close()
}

// TestLivePartition is the paper's event end to end at the network layer:
// four nodes peer up BEFORE the fork (all fork ids compatible), share the
// pre-fork chain via gossip, and then — the moment each side mines its
// fork block — the network physically splits: nodes feeding the other
// side's fork block are dropped, and each partition converges on its own
// head.
func TestLivePartition(t *testing.T) {
	mem := NewMemNet()
	const forkBlock = 3
	gen := testGenesis()

	mkChain := func(eth bool) *chain.Blockchain {
		var cfg *chain.Config
		if eth {
			cfg = chain.ETHConfig(forkBlock, nil, types.Address{})
		} else {
			cfg = chain.ETCConfig(forkBlock)
		}
		bc, err := chain.NewBlockchain(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		return bc
	}
	nodes := []*testNode{
		newTestNode(t, mem, "lp-eth0", mkChain(true)),
		newTestNode(t, mem, "lp-eth1", mkChain(true)),
		newTestNode(t, mem, "lp-etc0", mkChain(false)),
		newTestNode(t, mem, "lp-etc1", mkChain(false)),
	}
	// Full mesh pre-fork: everyone is compatible with everyone.
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if err := nodes[i].server.Connect(nodes[j].server.Self()); err != nil {
				t.Fatalf("pre-fork connect %d-%d: %v", i, j, err)
			}
		}
	}
	waitFor(t, "full pre-fork mesh", func() bool {
		for _, n := range nodes {
			if n.server.PeerCount() != 3 {
				return false
			}
		}
		return true
	})

	// Shared era: eth0 mines blocks 1 and 2; gossip carries them to all.
	for i := 0; i < 2; i++ {
		blk := mineOn(t, nodes[0].bc, blkTx(t, nodes[0].bc, i))
		nodes[0].server.BroadcastBlock(blk)
		waitFor(t, "pre-fork block propagation", func() bool {
			for _, n := range nodes {
				if n.bc.Head().Hash() != blk.Hash() {
					return false
				}
			}
			return true
		})
	}

	// The fork: each side mines its own block 3 and announces. Gossiping
	// the incompatible block gets the sender dropped on the other side.
	ethFork := mineOn(t, nodes[0].bc)
	nodes[0].server.BroadcastBlock(ethFork)
	nodes[0].server.AnnounceHead()
	etcFork := mineOn(t, nodes[2].bc)
	nodes[2].server.BroadcastBlock(etcFork)
	nodes[2].server.AnnounceHead()

	waitFor(t, "network partition", func() bool {
		// Each node ends up peered only within its own side.
		for i, n := range nodes {
			for _, p := range n.server.Peers() {
				sameSide := (i < 2) == (p.Node().Addr == "lp-eth0" || p.Node().Addr == "lp-eth1")
				if !sameSide {
					return false
				}
			}
		}
		// And the partitions converge on their own heads.
		return nodes[1].bc.Head().Hash() == ethFork.Hash() &&
			nodes[3].bc.Head().Hash() == etcFork.Hash()
	})

	// The split is permanent: reconnecting across the partition fails.
	if err := nodes[0].server.Connect(nodes[2].server.Self()); !errors.Is(err, ErrForkMismatch) {
		t.Errorf("cross-partition reconnect: err = %v", err)
	}
}

// TestMemNetConnDeadlines pins the deadline contract of MemNet conns: the
// pipe halves returned by Dial honor read and write deadlines exactly like
// TCP sockets, which the hardened read/write loops depend on.
func TestMemNetConnDeadlines(t *testing.T) {
	mem := NewMemNet()
	ln, err := mem.Listen("deadline")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := mem.Dial("deadline")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	defer cli.Close()
	defer srv.Close()

	isTimeout := func(err error) bool {
		var ne net.Error
		return errors.As(err, &ne) && ne.Timeout()
	}

	// Read with nobody writing: must time out, not block.
	cli.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	if _, err := cli.Read(make([]byte, 1)); !isTimeout(err) {
		t.Fatalf("read past deadline: err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("read deadline took %v to fire", time.Since(start))
	}

	// Write with nobody reading: pipes are unbuffered, must time out too.
	cli.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := cli.Write([]byte("stuck")); !isTimeout(err) {
		t.Fatalf("write past deadline: err = %v", err)
	}

	// Clearing the deadline restores normal blocking transfers.
	cli.SetReadDeadline(time.Time{})
	go srv.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(cli, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("transfer after deadline reset: %q %v", buf, err)
	}
}

// countingConn counts Write calls reaching the wrapped conn.
type countingConn struct {
	net.Conn
	writes int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	atomic.AddInt64(&c.writes, 1)
	return c.Conn.Write(p)
}

// TestNoSendAfterClose hammers Peer.send concurrently with Close and
// verifies that a peer dropped mid-broadcast never gets another frame
// written to its (closed) connection. Run with -race: this is exactly the
// dropPeer/relayBlock interleaving the write loop must tolerate.
func TestNoSendAfterClose(t *testing.T) {
	local, remote := net.Pipe()
	go io.Copy(io.Discard, remote)
	cc := &countingConn{Conn: local}
	status := &Status{
		Node: discover.Node{ID: nodeID("count"), Addr: "count"},
		TD:   big.NewInt(1),
	}
	p := newPeer(cc, status, 0, nil)

	var stop int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.LoadInt32(&stop) == 0 {
				p.send(MsgPing, rlp.List())
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	p.Close()
	waitFor(t, "send refused after close", func() bool {
		return !p.send(MsgPing, rlp.List())
	})
	// Let any in-flight write loop iteration settle, then verify the write
	// count no longer moves while sends keep hammering.
	time.Sleep(20 * time.Millisecond)
	before := atomic.LoadInt64(&cc.writes)
	deadline := time.Now().Add(30 * time.Millisecond)
	for time.Now().Before(deadline) {
		if p.send(MsgPing, rlp.List()) {
			t.Fatal("send succeeded on closed peer")
		}
	}
	atomic.StoreInt32(&stop, 1)
	wg.Wait()
	if after := atomic.LoadInt64(&cc.writes); after != before {
		t.Errorf("conn written after close: %d -> %d writes", before, after)
	}
	remote.Close()
}

// TestSendQueueShedsOldest: a peer that stops reading causes queue
// overflow; send stays non-blocking and sheds frames instead of wedging
// the caller.
func TestSendQueueShedsOldest(t *testing.T) {
	local, remote := net.Pipe()
	defer remote.Close()
	status := &Status{
		Node: discover.Node{ID: nodeID("shed"), Addr: "shed"},
		TD:   big.NewInt(1),
	}
	// No write timeout and nobody reading remote: the write loop blocks on
	// its first frame forever, so everything else piles into the queue.
	p := newPeer(local, status, 0, nil)
	defer p.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Overfill the queue well past capacity; every call must return
		// promptly (shedding), never block.
		for i := 0; i < sendQueueLen*3; i++ {
			p.send(MsgPing, rlp.List())
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("send blocked on a saturated queue")
	}
	if p.QueueDrops() == 0 {
		t.Error("overflow did not shed any frames")
	}
}

// TestConcurrentDropRelayServe drives dropPeer, block/tx relay, head
// announces and redials against the same server concurrently. It asserts
// nothing beyond "no deadlock, no panic" — under -race it is the detector
// for the peer-map and write-loop interleavings.
func TestConcurrentDropRelayServe(t *testing.T) {
	mem := NewMemNet()
	fast := func(c *Config) {
		c.DialBackoff = time.Millisecond
		c.MaxDialBackoff = 2 * time.Millisecond
		c.DialMaxFails = -1
	}
	a := newTestNodeCfg(t, mem, "ccr-a", newChain(t, chain.MainnetLikeConfig()), fast)
	b := newTestNodeCfg(t, mem, "ccr-b", newChain(t, chain.MainnetLikeConfig()), fast)
	c := newTestNodeCfg(t, mem, "ccr-c", newChain(t, chain.MainnetLikeConfig()), fast)
	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatal(err)
	}
	if err := a.server.Connect(c.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial peering", func() bool { return a.server.PeerCount() == 2 })

	blk := mineOn(t, a.bc)
	tx := blkTx(t, a.bc, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	loop := func(body func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					body()
				}
			}
		}()
	}
	loop(func() { // broadcaster
		a.server.BroadcastBlock(blk)
		a.server.BroadcastTxs([]*chain.Transaction{tx})
		a.server.AnnounceHead()
	})
	loop(func() { // dropper
		for _, p := range a.server.Peers() {
			a.server.dropPeer(p)
		}
	})
	loop(func() { // redialer
		_ = a.server.Connect(b.server.Self())
		_ = a.server.Connect(c.server.Self())
	})
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The server must still be functional after the churn.
	waitFor(t, "re-peering after churn", func() bool {
		_ = a.server.Connect(b.server.Self())
		return a.server.PeerCount() >= 1
	})
}

// blkTx returns a small funded transfer for block bodies.
func blkTx(t *testing.T, bc *chain.Blockchain, nonce int) *chain.Transaction {
	t.Helper()
	to := bob
	return chain.NewTransaction(uint64(nonce), &to, big.NewInt(1), 21_000, big.NewInt(1), nil).Sign(alice, 0)
}

// TestGossipCarriesUncles: a block with an uncle survives the wire.
func TestGossipCarriesUncles(t *testing.T) {
	mem := NewMemNet()
	a := newTestNode(t, mem, "unc-a", newChain(t, chain.MainnetLikeConfig()))
	b := newTestNode(t, mem, "unc-b", newChain(t, chain.MainnetLikeConfig()))
	if err := a.server.Connect(b.server.Self()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peering", func() bool {
		return a.server.PeerCount() == 1 && b.server.PeerCount() == 1
	})

	// Build a sibling at height 1 on A, then a block 2 including it.
	genesis := a.bc.Genesis()
	main1, err := a.bc.BuildBlock(miner, genesis.Header.Time+5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.bc.InsertBlock(main1); err != nil {
		t.Fatal(err)
	}
	a.server.BroadcastBlock(main1)
	sibling, err := a.bc.BuildBlock(alice, genesis.Header.Time+5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the sibling on the genesis parent: BuildBlock builds on
	// head (main1), so construct from genesis state directly.
	st, err := a.bc.StateAt(genesis.Hash())
	if err != nil {
		t.Fatal(err)
	}
	st.AddBalance(alice, a.bc.Config().BlockReward)
	root, err := st.Commit()
	if err != nil {
		t.Fatal(err)
	}
	sibling = &chain.Block{Header: &chain.Header{
		ParentHash:  genesis.Hash(),
		Number:      1,
		Time:        genesis.Header.Time + 20,
		Difficulty:  chain.CalcDifficulty(a.bc.Config(), genesis.Header.Time+20, genesis.Header),
		GasLimit:    a.bc.Config().GasLimit,
		Coinbase:    alice,
		StateRoot:   root,
		TxRoot:      chain.TxRoot(nil),
		ReceiptRoot: chain.ReceiptRoot(nil),
		UncleHash:   chain.EmptyUncleHash,
	}}
	if err := a.bc.InsertBlock(sibling); err != nil {
		t.Fatal(err)
	}
	a.server.BroadcastBlock(sibling)

	uncles := a.bc.CollectUncles(a.bc.Head().Hash())
	if len(uncles) != 1 {
		t.Fatalf("CollectUncles = %d", len(uncles))
	}
	b2, err := a.bc.BuildBlockWithUncles(miner, a.bc.Head().Header.Time+14, nil, uncles)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.bc.InsertBlock(b2); err != nil {
		t.Fatal(err)
	}
	a.server.BroadcastBlock(b2)
	waitFor(t, "uncle block propagation", func() bool {
		return b.bc.Head().Hash() == b2.Hash()
	})
	got, _ := b.bc.GetBlock(b2.Hash())
	if len(got.Uncles) != 1 || got.Uncles[0].Hash() != sibling.Hash() {
		t.Error("uncle lost or corrupted in gossip")
	}
}
