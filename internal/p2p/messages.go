// Package p2p implements the partition-aware wire protocol forkwatch
// nodes speak: length-framed RLP messages over net.Conn, an eth/63-style
// status handshake carrying genesis + fork id, block and transaction
// gossip, a block-range sync, and FindNode/Neighbors discovery messages.
//
// The handshake is where the paper's network partition physically
// happens: two nodes whose fork ids are incompatible (one accepted the
// DAO fork, the other did not) disconnect immediately, so each fork's
// gossip only reaches its own side. The message *format*, however, is
// shared — which is why transactions can be rebroadcast across the
// partition (Fig 4): an attacker node can complete the handshake with
// both sides as long as it presents the matching fork id to each.
package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// Protocol constants.
const (
	// ProtocolVersion is the wire protocol version (mirrors eth/63's
	// role; both partitions keep speaking the same version — the point
	// of the replay vulnerability).
	ProtocolVersion = 63
	// MaxFrameSize bounds a single message frame (DoS guard).
	MaxFrameSize = 8 << 20
)

// Message codes.
const (
	MsgStatus uint64 = iota
	MsgNewBlock
	MsgTransactions
	MsgGetBlocks
	MsgBlocks
	MsgFindNode
	MsgNeighbors
)

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("p2p: frame exceeds maximum size")
	ErrBadMessage    = errors.New("p2p: malformed message")
)

// Message is one framed protocol message.
type Message struct {
	Code uint64
	// Body is the RLP value of the message payload.
	Body rlp.Value
}

// encodeFrame builds one wire frame: 4-byte big-endian length, then
// rlp([code, body]).
func encodeFrame(code uint64, body rlp.Value) []byte {
	payload := rlp.EncodeList(rlp.Uint(code), body)
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)
	return frame
}

// WriteMsg frames and writes a message as a SINGLE Write call, so each
// protocol message is one transport frame — the unit fault-injecting
// transports drop or corrupt, and one syscall instead of two on TCP.
func WriteMsg(w io.Writer, code uint64, body rlp.Value) error {
	frame := encodeFrame(code, body)
	if len(frame)-4 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	_, err := w.Write(frame)
	return err
}

// ReadMsg reads one framed message.
func ReadMsg(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > MaxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	v, err := rlp.Decode(payload)
	if err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	items, err := v.ListOf(2)
	if err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	code, err := items[0].AsUint()
	if err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return Message{Code: code, Body: items[1]}, nil
}

// Status is the handshake payload. It carries the sender's node identity
// (id + dialable address) alongside the chain summary.
type Status struct {
	ProtocolVersion uint64
	NetworkID       uint64
	TD              *big.Int
	Head            types.Hash
	HeadNumber      uint64
	Genesis         types.Hash
	ForkID          chain.ForkID
	Node            discover.Node
}

func (s *Status) encode() rlp.Value {
	support := uint64(0)
	if s.ForkID.DAOForkSupport {
		support = 1
	}
	return rlp.List(
		rlp.Uint(s.ProtocolVersion),
		rlp.Uint(s.NetworkID),
		rlp.BigInt(s.TD),
		rlp.Bytes(s.Head.Bytes()),
		rlp.Uint(s.HeadNumber),
		rlp.Bytes(s.Genesis.Bytes()),
		rlp.Uint(s.ForkID.DAOForkBlock),
		rlp.Uint(support),
		rlp.Bytes(s.Node.ID[:]),
		rlp.String(s.Node.Addr),
	)
}

func decodeStatus(v rlp.Value) (*Status, error) {
	items, err := v.ListOf(10)
	if err != nil {
		return nil, fmt.Errorf("%w: status: %v", ErrBadMessage, err)
	}
	s := &Status{}
	if s.ProtocolVersion, err = items[0].AsUint(); err != nil {
		return nil, err
	}
	if s.NetworkID, err = items[1].AsUint(); err != nil {
		return nil, err
	}
	if s.TD, err = items[2].AsBigInt(); err != nil {
		return nil, err
	}
	b, err := items[3].AsBytes()
	if err != nil {
		return nil, err
	}
	s.Head = types.BytesToHash(b)
	if s.HeadNumber, err = items[4].AsUint(); err != nil {
		return nil, err
	}
	if b, err = items[5].AsBytes(); err != nil {
		return nil, err
	}
	s.Genesis = types.BytesToHash(b)
	if s.ForkID.DAOForkBlock, err = items[6].AsUint(); err != nil {
		return nil, err
	}
	support, err := items[7].AsUint()
	if err != nil {
		return nil, err
	}
	s.ForkID.DAOForkSupport = support == 1
	idB, err := items[8].AsBytes()
	if err != nil {
		return nil, err
	}
	if len(idB) != discover.IDLength {
		return nil, fmt.Errorf("%w: node id of %d bytes", ErrBadMessage, len(idB))
	}
	copy(s.Node.ID[:], idB)
	addrB, err := items[9].AsBytes()
	if err != nil {
		return nil, err
	}
	s.Node.Addr = string(addrB)
	return s, nil
}

// encodeNewBlock packs a block announcement with its total difficulty.
func encodeNewBlock(b *chain.Block, td *big.Int) rlp.Value {
	return rlp.List(rlp.Bytes(b.Encode()), rlp.BigInt(td))
}

func decodeNewBlock(v rlp.Value) (*chain.Block, *big.Int, error) {
	items, err := v.ListOf(2)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: new block: %v", ErrBadMessage, err)
	}
	enc, err := items[0].AsBytes()
	if err != nil {
		return nil, nil, err
	}
	blk, err := chain.DecodeBlock(enc)
	if err != nil {
		return nil, nil, err
	}
	td, err := items[1].AsBigInt()
	if err != nil {
		return nil, nil, err
	}
	return blk, td, nil
}

// encodeTxs packs a transaction announcement.
func encodeTxs(txs []*chain.Transaction) rlp.Value {
	items := make([]rlp.Value, len(txs))
	for i, tx := range txs {
		items[i] = rlp.Bytes(tx.Encode())
	}
	return rlp.List(items...)
}

func decodeTxs(v rlp.Value) ([]*chain.Transaction, error) {
	items, err := v.AsList()
	if err != nil {
		return nil, fmt.Errorf("%w: txs: %v", ErrBadMessage, err)
	}
	txs := make([]*chain.Transaction, 0, len(items))
	for _, it := range items {
		enc, err := it.AsBytes()
		if err != nil {
			return nil, err
		}
		tx, err := chain.DecodeTx(enc)
		if err != nil {
			return nil, err
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// encodeGetBlocks requests count canonical blocks starting at from.
func encodeGetBlocks(from, count uint64) rlp.Value {
	return rlp.List(rlp.Uint(from), rlp.Uint(count))
}

func decodeGetBlocks(v rlp.Value) (from, count uint64, err error) {
	items, err := v.ListOf(2)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: get blocks: %v", ErrBadMessage, err)
	}
	if from, err = items[0].AsUint(); err != nil {
		return 0, 0, err
	}
	if count, err = items[1].AsUint(); err != nil {
		return 0, 0, err
	}
	return from, count, nil
}

func encodeBlocks(blocks []*chain.Block) rlp.Value {
	items := make([]rlp.Value, len(blocks))
	for i, b := range blocks {
		items[i] = rlp.Bytes(b.Encode())
	}
	return rlp.List(items...)
}

func decodeBlocks(v rlp.Value) ([]*chain.Block, error) {
	items, err := v.AsList()
	if err != nil {
		return nil, fmt.Errorf("%w: blocks: %v", ErrBadMessage, err)
	}
	blocks := make([]*chain.Block, 0, len(items))
	for _, it := range items {
		enc, err := it.AsBytes()
		if err != nil {
			return nil, err
		}
		b, err := chain.DecodeBlock(enc)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}

func encodeFindNode(target discover.NodeID) rlp.Value {
	return rlp.List(rlp.Bytes(target[:]))
}

func decodeFindNode(v rlp.Value) (discover.NodeID, error) {
	items, err := v.ListOf(1)
	if err != nil {
		return discover.NodeID{}, fmt.Errorf("%w: find node: %v", ErrBadMessage, err)
	}
	b, err := items[0].AsBytes()
	if err != nil {
		return discover.NodeID{}, err
	}
	if len(b) != discover.IDLength {
		return discover.NodeID{}, fmt.Errorf("%w: node id of %d bytes", ErrBadMessage, len(b))
	}
	var id discover.NodeID
	copy(id[:], b)
	return id, nil
}

func encodeNeighbors(nodes []discover.Node) rlp.Value {
	items := make([]rlp.Value, len(nodes))
	for i, n := range nodes {
		items[i] = rlp.List(rlp.Bytes(n.ID[:]), rlp.String(n.Addr))
	}
	return rlp.List(items...)
}

func decodeNeighbors(v rlp.Value) ([]discover.Node, error) {
	items, err := v.AsList()
	if err != nil {
		return nil, fmt.Errorf("%w: neighbors: %v", ErrBadMessage, err)
	}
	nodes := make([]discover.Node, 0, len(items))
	for _, it := range items {
		pair, err := it.ListOf(2)
		if err != nil {
			return nil, err
		}
		idB, err := pair[0].AsBytes()
		if err != nil {
			return nil, err
		}
		if len(idB) != discover.IDLength {
			return nil, fmt.Errorf("%w: node id of %d bytes", ErrBadMessage, len(idB))
		}
		addrB, err := pair[1].AsBytes()
		if err != nil {
			return nil, err
		}
		var n discover.Node
		copy(n.ID[:], idB)
		n.Addr = string(addrB)
		nodes = append(nodes, n)
	}
	return nodes, nil
}
