package p2p

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Secure channel: forkwatch's analogue of devp2p's RLPx transport. Real
// Ethereum nodes encrypt and authenticate every frame after an ECIES
// handshake; forkwatch does the same with Go's standard crypto — an
// ephemeral X25519-style ECDH (P-256) agreement, per-direction AES-CTR
// keystreams and HMAC-SHA256 frame tags. cmd/forknode enables it with
// -secure; the protocol above is byte-identical either way.
//
// Substitution note (DESIGN.md): RLPx uses secp256k1 ECIES with a
// Keccak-based MAC scheme; P-256 + HMAC-SHA256 preserves the properties
// the system depends on (confidentiality, per-frame integrity, fresh keys
// per connection) using only the standard library.

// Secure-channel errors.
var (
	ErrSecureHandshake = errors.New("p2p: secure handshake failed")
	ErrFrameTag        = errors.New("p2p: frame authentication failed")
)

const (
	secureTagLen    = sha256.Size
	secureMaxFrame  = MaxFrameSize + 1024
	secureHSTimeout = 5 * time.Second
)

// secureConn wraps a net.Conn with encrypted, authenticated framing.
type secureConn struct {
	net.Conn
	enc, dec cipher.Stream
	macTx    []byte // HMAC key for sent frames
	macRx    []byte // HMAC key for received frames
	sendSeq  uint64
	recvSeq  uint64
	readBuf  []byte // decrypted bytes not yet consumed
}

// SecureClient upgrades the initiator side of conn to the encrypted
// channel. Must be paired with SecureServer on the other end before any
// protocol bytes flow.
func SecureClient(conn net.Conn) (net.Conn, error) { return secureHandshake(conn, true) }

// SecureServer upgrades the responder side of conn.
func SecureServer(conn net.Conn) (net.Conn, error) { return secureHandshake(conn, false) }

// SecureDialer wraps a Dialer so every outbound connection is upgraded.
func SecureDialer(d Dialer) Dialer {
	return DialerFunc(func(addr string) (net.Conn, error) {
		conn, err := d.Dial(addr)
		if err != nil {
			return nil, err
		}
		sc, err := SecureClient(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		return sc, nil
	})
}

// SecureListener wraps a net.Listener so every inbound connection is
// upgraded.
func SecureListener(ln net.Listener) net.Listener { return &secureListener{Listener: ln} }

type secureListener struct{ net.Listener }

// Accept implements net.Listener, upgrading each inbound connection.
func (l *secureListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	sc, err := SecureServer(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return sc, nil
}

func secureHandshake(conn net.Conn, initiator bool) (net.Conn, error) {
	deadline := time.Now().Add(secureHSTimeout)
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})

	curve := ecdh.P256()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("%w: keygen: %v", ErrSecureHandshake, err)
	}
	pub := priv.PublicKey().Bytes()

	// Exchange ephemeral public keys, length-prefixed; write and read
	// concurrently (net.Pipe has no buffering).
	errCh := make(chan error, 1)
	go func() {
		var lenBuf [2]byte
		binary.BigEndian.PutUint16(lenBuf[:], uint16(len(pub)))
		if _, err := conn.Write(lenBuf[:]); err != nil {
			errCh <- err
			return
		}
		_, err := conn.Write(pub)
		errCh <- err
	}()
	// On any failure, close the conn before draining errCh so the
	// concurrent key write cannot block on an unread pipe.
	bail := func(format string, args ...any) error {
		conn.Close()
		<-errCh
		return fmt.Errorf(format, args...)
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, bail("%w: reading peer key: %v", ErrSecureHandshake, err)
	}
	peerLen := binary.BigEndian.Uint16(lenBuf[:])
	if peerLen == 0 || peerLen > 256 {
		return nil, bail("%w: absurd key length %d", ErrSecureHandshake, peerLen)
	}
	peerBytes := make([]byte, peerLen)
	if _, err := io.ReadFull(conn, peerBytes); err != nil {
		return nil, bail("%w: reading peer key: %v", ErrSecureHandshake, err)
	}
	if err := <-errCh; err != nil {
		return nil, fmt.Errorf("%w: sending key: %v", ErrSecureHandshake, err)
	}
	peerPub, err := curve.NewPublicKey(peerBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: bad peer key: %v", ErrSecureHandshake, err)
	}
	secret, err := priv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: agreement: %v", ErrSecureHandshake, err)
	}

	// Key schedule: four independent keys derived from the shared secret
	// with role-tagged labels, so each direction has its own cipher
	// stream and MAC key.
	kdf := func(label string) []byte {
		h := sha256.New()
		h.Write(secret)
		h.Write([]byte(label))
		return h.Sum(nil)
	}
	encKeyI := kdf("enc-initiator") // initiator -> responder
	encKeyR := kdf("enc-responder")
	macKeyI := kdf("mac-initiator")
	macKeyR := kdf("mac-responder")
	ivI := kdf("iv-initiator")[:aes.BlockSize]
	ivR := kdf("iv-responder")[:aes.BlockSize]

	mkStream := func(key, iv []byte) (cipher.Stream, error) {
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return cipher.NewCTR(block, iv), nil
	}
	sI, err := mkStream(encKeyI, ivI)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSecureHandshake, err)
	}
	sR, err := mkStream(encKeyR, ivR)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSecureHandshake, err)
	}

	sc := &secureConn{Conn: conn}
	if initiator {
		sc.enc, sc.dec = sI, sR
		sc.macTx, sc.macRx = macKeyI, macKeyR
	} else {
		sc.enc, sc.dec = sR, sI
		sc.macTx, sc.macRx = macKeyR, macKeyI
	}
	return sc, nil
}

// Write encrypts p as one frame: 4-byte length, ciphertext, HMAC tag over
// (sequence number || ciphertext). Implements net.Conn.
func (s *secureConn) Write(p []byte) (int, error) {
	if len(p) > secureMaxFrame {
		return 0, ErrFrameTooLarge
	}
	ct := make([]byte, len(p))
	s.enc.XORKeyStream(ct, p)

	mac := hmac.New(sha256.New, s.macTx)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], s.sendSeq)
	s.sendSeq++
	mac.Write(seq[:])
	mac.Write(ct)
	tag := mac.Sum(nil)

	frame := make([]byte, 4+len(ct)+secureTagLen)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(ct)))
	copy(frame[4:], ct)
	copy(frame[4+len(ct):], tag)
	if _, err := s.Conn.Write(frame); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read returns decrypted bytes, buffering frame remainders. Implements
// net.Conn.
func (s *secureConn) Read(p []byte) (int, error) {
	if len(s.readBuf) > 0 {
		n := copy(p, s.readBuf)
		s.readBuf = s.readBuf[n:]
		return n, nil
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(s.Conn, lenBuf[:]); err != nil {
		return 0, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > secureMaxFrame {
		return 0, ErrFrameTooLarge
	}
	body := make([]byte, int(size)+secureTagLen)
	if _, err := io.ReadFull(s.Conn, body); err != nil {
		return 0, err
	}
	ct, tag := body[:size], body[size:]

	mac := hmac.New(sha256.New, s.macRx)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], s.recvSeq)
	s.recvSeq++
	mac.Write(seq[:])
	mac.Write(ct)
	if subtle.ConstantTimeCompare(mac.Sum(nil), tag) != 1 {
		return 0, ErrFrameTag
	}
	pt := make([]byte, size)
	s.dec.XORKeyStream(pt, ct)
	n := copy(p, pt)
	s.readBuf = pt[n:]
	return n, nil
}
