package p2p

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// MemNet is an in-memory transport: a registry of listeners dialable by
// name over net.Pipe. It lets the E1 node-census experiment run hundreds
// of fully wired nodes without consuming OS sockets, while exercising the
// exact same framing and handshake code paths as TCP (cmd/forknode uses
// real TCP with the same Server).
type MemNet struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNet returns an empty in-memory network.
func NewMemNet() *MemNet {
	return &MemNet{listeners: make(map[string]*memListener)}
}

// ErrAddrInUse reports a duplicate Listen address.
var ErrAddrInUse = errors.New("memnet: address already in use")

// ErrConnRefused reports a dial to an address nobody listens on.
var ErrConnRefused = errors.New("memnet: connection refused")

// Listen registers a listener under addr.
func (m *MemNet) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.listeners[addr]; dup {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	ln := &memListener{
		net:    m,
		addr:   addr,
		accept: make(chan net.Conn),
		closed: make(chan struct{}),
	}
	m.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a registered listener.
//
// The returned conns are net.Pipe halves, which fully honor
// SetDeadline/SetReadDeadline/SetWriteDeadline — the read/write deadlines
// the hardened peer loops rely on behave identically over MemNet and TCP
// (TestMemNetConnDeadlines pins this). Wrappers layered above MemNet
// (faultnet, the secure transport) must forward those methods.
func (m *MemNet) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	ln, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	local, remote := net.Pipe()
	select {
	case ln.accept <- remote:
		return local, nil
	case <-ln.closed:
		local.Close()
		remote.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
}

func (m *MemNet) remove(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	net    *MemNet
	addr   string
	accept chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.remove(l.addr)
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

// Network implements net.Addr.
func (a memAddr) Network() string { return "mem" }

// String implements net.Addr.
func (a memAddr) String() string { return string(a) }
