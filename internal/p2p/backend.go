package p2p

import (
	"math/big"

	"forkwatch/internal/chain"
	"forkwatch/internal/types"
)

// Backend is the ledger a p2p server gossips for.
type Backend interface {
	// Genesis returns the genesis hash (handshake check).
	Genesis() types.Hash
	// Head returns the canonical head hash, height and total difficulty.
	Head() (types.Hash, uint64, *big.Int)
	// ForkID returns the fork id at the head (handshake check).
	ForkID() chain.ForkID
	// InsertBlock imports a gossiped block.
	InsertBlock(b *chain.Block) error
	// BlockByNumber serves sync requests from the canonical chain.
	BlockByNumber(n uint64) (*chain.Block, bool)
	// HasBlock reports whether a block is already known.
	HasBlock(h types.Hash) bool
	// AddTransaction imports a gossiped transaction. Invalid
	// transactions return an error and are not re-gossiped.
	AddTransaction(tx *chain.Transaction) error
	// KnowsTransaction reports whether the transaction was already seen
	// (gossip dedup).
	KnowsTransaction(h types.Hash) bool
}

// ChainBackend adapts a chain.Blockchain plus its TxPool to the Backend
// interface.
type ChainBackend struct {
	BC   *chain.Blockchain
	Pool *chain.TxPool
}

// NewChainBackend wires a blockchain and a fresh tx pool together.
func NewChainBackend(bc *chain.Blockchain) *ChainBackend {
	return &ChainBackend{BC: bc, Pool: chain.NewTxPool(bc)}
}

// Genesis implements Backend.
func (c *ChainBackend) Genesis() types.Hash { return c.BC.Genesis().Hash() }

// Head implements Backend.
func (c *ChainBackend) Head() (types.Hash, uint64, *big.Int) {
	head := c.BC.Head()
	td, _ := c.BC.TD(head.Hash())
	return head.Hash(), head.Number(), td
}

// ForkID implements Backend.
func (c *ChainBackend) ForkID() chain.ForkID { return c.BC.ForkID() }

// InsertBlock implements Backend.
func (c *ChainBackend) InsertBlock(b *chain.Block) error {
	err := c.BC.InsertBlock(b)
	if err == nil {
		c.Pool.Reset()
	}
	return err
}

// BlockByNumber implements Backend.
func (c *ChainBackend) BlockByNumber(n uint64) (*chain.Block, bool) {
	return c.BC.BlockByNumber(n)
}

// HasBlock implements Backend.
func (c *ChainBackend) HasBlock(h types.Hash) bool { return c.BC.HasBlock(h) }

// AddTransaction implements Backend.
func (c *ChainBackend) AddTransaction(tx *chain.Transaction) error {
	return c.Pool.Add(tx)
}

// KnowsTransaction implements Backend.
func (c *ChainBackend) KnowsTransaction(h types.Hash) bool { return c.Pool.Has(h) }
