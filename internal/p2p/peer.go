package p2p

import (
	"math/big"
	"net"
	"sync"

	"forkwatch/internal/discover"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// sendQueueLen bounds the per-peer outbound queue. Gossip is lossy by
// design: a peer that cannot keep up misses announcements and recovers
// through block-range sync.
const sendQueueLen = 256

// Peer is one live connection after a successful handshake.
type Peer struct {
	node   discover.Node
	conn   net.Conn
	status Status

	sendCh chan []byte
	closed chan struct{}
	once   sync.Once

	mu         sync.Mutex
	headHash   types.Hash
	headNumber uint64
	td         *big.Int

	// lastSeen is the unix-nano time of the latest inbound message
	// (atomic; see keepalive.go).
	lastSeen int64
}

func newPeer(conn net.Conn, status *Status) *Peer {
	p := &Peer{
		node:       status.Node,
		conn:       conn,
		status:     *status,
		sendCh:     make(chan []byte, sendQueueLen),
		closed:     make(chan struct{}),
		headHash:   status.Head,
		headNumber: status.HeadNumber,
		td:         types.BigCopy(status.TD),
	}
	p.touch()
	go p.writeLoop()
	return p
}

// Node returns the peer's identity.
func (p *Peer) Node() discover.Node { return p.node }

// Status returns the handshake status the peer presented.
func (p *Peer) Status() Status { return p.status }

// Head returns the peer's last announced head and total difficulty.
func (p *Peer) Head() (types.Hash, uint64, *big.Int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.headHash, p.headNumber, types.BigCopy(p.td)
}

func (p *Peer) setHead(hash types.Hash, number uint64, td *big.Int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if td != nil && (p.td == nil || td.Cmp(p.td) > 0) {
		p.headHash, p.headNumber, p.td = hash, number, types.BigCopy(td)
	}
}

// send enqueues a framed message; drops it when the peer's queue is full
// or the peer is closing. Reports whether the message was queued.
func (p *Peer) send(code uint64, body rlp.Value) bool {
	payload := rlp.EncodeList(rlp.Uint(code), body)
	frame := make([]byte, 4+len(payload))
	frame[0] = byte(len(payload) >> 24)
	frame[1] = byte(len(payload) >> 16)
	frame[2] = byte(len(payload) >> 8)
	frame[3] = byte(len(payload))
	copy(frame[4:], payload)
	select {
	case p.sendCh <- frame:
		return true
	case <-p.closed:
		return false
	default:
		return false // queue full: lossy gossip
	}
}

func (p *Peer) writeLoop() {
	for {
		select {
		case frame := <-p.sendCh:
			if _, err := p.conn.Write(frame); err != nil {
				p.Close()
				return
			}
		case <-p.closed:
			return
		}
	}
}

// Close tears the connection down. Idempotent.
func (p *Peer) Close() {
	p.once.Do(func() {
		close(p.closed)
		p.conn.Close()
	})
}

// Closed reports whether the peer has been torn down.
func (p *Peer) Closed() bool {
	select {
	case <-p.closed:
		return true
	default:
		return false
	}
}
