package p2p

import (
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"forkwatch/internal/discover"
	"forkwatch/internal/rlp"
	"forkwatch/internal/types"
)

// sendQueueLen bounds the per-peer outbound queue. Gossip is lossy by
// design: a peer that cannot keep up misses announcements and recovers
// through block-range sync.
const sendQueueLen = 256

// Peer is one live connection after a successful handshake.
type Peer struct {
	node   discover.Node
	conn   net.Conn
	status Status

	// writeTimeout bounds each frame write; a stalled (slow-loris)
	// connection fails the deadline instead of wedging the write loop.
	writeTimeout time.Duration
	// onWriteError, when set, observes the write-loop error that killed
	// the connection (the server scores write timeouts with it).
	onWriteError func(error)

	sendCh chan []byte
	closed chan struct{}
	once   sync.Once

	mu         sync.Mutex
	headHash   types.Hash
	headNumber uint64
	td         *big.Int

	// lastSeen is the unix-nano time of the latest inbound message
	// (atomic; see keepalive.go).
	lastSeen int64
	// queueDrops counts frames dropped because the send queue was full
	// (atomic).
	queueDrops uint64
}

func newPeer(conn net.Conn, status *Status, writeTimeout time.Duration, onWriteError func(error)) *Peer {
	p := &Peer{
		node:         status.Node,
		conn:         conn,
		status:       *status,
		writeTimeout: writeTimeout,
		onWriteError: onWriteError,
		sendCh:       make(chan []byte, sendQueueLen),
		closed:       make(chan struct{}),
		headHash:     status.Head,
		headNumber:   status.HeadNumber,
		td:           types.BigCopy(status.TD),
	}
	p.touch()
	go p.writeLoop()
	return p
}

// Node returns the peer's identity.
func (p *Peer) Node() discover.Node { return p.node }

// Status returns the handshake status the peer presented.
func (p *Peer) Status() Status { return p.status }

// Head returns the peer's last announced head and total difficulty.
func (p *Peer) Head() (types.Hash, uint64, *big.Int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.headHash, p.headNumber, types.BigCopy(p.td)
}

func (p *Peer) setHead(hash types.Hash, number uint64, td *big.Int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if td != nil && (p.td == nil || td.Cmp(p.td) > 0) {
		p.headHash, p.headNumber, p.td = hash, number, types.BigCopy(td)
	}
}

// QueueDrops returns how many outbound frames were shed because the
// peer's send queue was full.
func (p *Peer) QueueDrops() uint64 { return atomic.LoadUint64(&p.queueDrops) }

// send enqueues a framed message. A full queue sheds the OLDEST queued
// frame to make room — stale gossip is the cheapest thing to lose, and a
// slow peer degrades gracefully instead of head-of-line blocking every
// broadcast. Reports whether the new message was queued.
func (p *Peer) send(code uint64, body rlp.Value) bool {
	frame := encodeFrame(code, body)
	select {
	case p.sendCh <- frame:
		return true
	case <-p.closed:
		return false
	default:
	}
	// Queue full: drop the oldest frame, then retry once.
	select {
	case <-p.sendCh:
		atomic.AddUint64(&p.queueDrops, 1)
	default:
	}
	select {
	case p.sendCh <- frame:
		return true
	case <-p.closed:
		return false
	default:
		atomic.AddUint64(&p.queueDrops, 1)
		return false
	}
}

func (p *Peer) writeLoop() {
	for {
		select {
		case frame := <-p.sendCh:
			// Re-check for close: both channels may be ready and select
			// picks randomly — never write after Close.
			select {
			case <-p.closed:
				return
			default:
			}
			if p.writeTimeout > 0 {
				p.conn.SetWriteDeadline(time.Now().Add(p.writeTimeout))
			}
			if _, err := p.conn.Write(frame); err != nil {
				if p.onWriteError != nil {
					p.onWriteError(err)
				}
				p.Close()
				return
			}
		case <-p.closed:
			return
		}
	}
}

// Close tears the connection down. Idempotent.
func (p *Peer) Close() {
	p.once.Do(func() {
		close(p.closed)
		p.conn.Close()
	})
}

// Closed reports whether the peer has been torn down.
func (p *Peer) Closed() bool {
	select {
	case <-p.closed:
		return true
	default:
		return false
	}
}
