package evm

import (
	"bytes"
	"math/big"
	"testing"

	"forkwatch/internal/state"
	"forkwatch/internal/types"
)

// neg returns the 256-bit two's-complement encoding of -v.
func neg(v int64) *big.Int {
	return new(big.Int).Sub(tt256, big.NewInt(v))
}

func TestSignedArithmetic(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Asm)
		want  *big.Int
	}{
		{"sdiv -8/3", func(a *Asm) { a.Push(3).PushBig(neg(8)).Op(SDIV) }, neg(2)},
		{"sdiv 8/-3", func(a *Asm) { a.PushBig(neg(3)).Push(8).Op(SDIV) }, neg(2)},
		{"sdiv by zero", func(a *Asm) { a.Push(0).PushBig(neg(8)).Op(SDIV) }, big.NewInt(0)},
		{"smod -8%3", func(a *Asm) { a.Push(3).PushBig(neg(8)).Op(SMOD) }, neg(2)},
		{"smod 8%-3", func(a *Asm) { a.PushBig(neg(3)).Push(8).Op(SMOD) }, big.NewInt(2)},
		{"slt -1<1", func(a *Asm) { a.Push(1).PushBig(neg(1)).Op(SLT) }, big.NewInt(1)},
		{"sgt 1>-1", func(a *Asm) { a.PushBig(neg(1)).Push(1).Op(SGT) }, big.NewInt(1)},
		{"sgt -1>1 false", func(a *Asm) { a.Push(1).PushBig(neg(1)).Op(SGT) }, big.NewInt(0)},
	}
	for _, tc := range cases {
		if got := runReturning(t, returnTop(tc.build)); got.Cmp(tc.want) != 0 {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestModularArithmetic(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Asm)
		want  int64
	}{
		// Stack order: ADDMOD pops x, y, m.
		{"addmod", func(a *Asm) { a.Push(7).Push(5).Push(4).Op(ADDMOD) }, 2}, // (4+5)%7
		{"addmod zero mod", func(a *Asm) { a.Push(0).Push(5).Push(4).Op(ADDMOD) }, 0},
		{"mulmod", func(a *Asm) { a.Push(7).Push(5).Push(4).Op(MULMOD) }, 6}, // (4*5)%7
		{"exp", func(a *Asm) { a.Push(10).Push(2).Op(EXP) }, 1024},
		{"exp zero", func(a *Asm) { a.Push(0).Push(2).Op(EXP) }, 1},
	}
	for _, tc := range cases {
		if got := runReturning(t, returnTop(tc.build)); got.Int64() != tc.want {
			t.Errorf("%s: got %v, want %d", tc.name, got, tc.want)
		}
	}
	// EXP wraps mod 2^256.
	wrap := runReturning(t, returnTop(func(a *Asm) { a.Push(256).Push(2).Op(EXP) }))
	if wrap.Sign() != 0 {
		t.Errorf("2^256 mod 2^256 = %v, want 0", wrap)
	}
}

func TestSignExtend(t *testing.T) {
	// Extend byte 0 of 0xff: becomes -1 (all ones).
	got := runReturning(t, returnTop(func(a *Asm) { a.Push(0xff).Push(0).Op(SIGNEXTEND) }))
	if got.Cmp(tt256m1) != 0 {
		t.Errorf("signextend(0, 0xff) = %v, want 2^256-1", got)
	}
	// Extend byte 0 of 0x7f: stays 0x7f.
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(0x7f).Push(0).Op(SIGNEXTEND) }))
	if got.Int64() != 0x7f {
		t.Errorf("signextend(0, 0x7f) = %v", got)
	}
	// Out-of-range byte index leaves the value unchanged.
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(0x1234).Push(99).Op(SIGNEXTEND) }))
	if got.Int64() != 0x1234 {
		t.Errorf("signextend(99, x) = %v", got)
	}
}

func TestByteAndShifts(t *testing.T) {
	// BYTE 31 of 0x1234 is 0x34 (31 = least significant byte).
	got := runReturning(t, returnTop(func(a *Asm) { a.Push(0x1234).Push(31).Op(BYTE) }))
	if got.Int64() != 0x34 {
		t.Errorf("byte(31) = %v", got)
	}
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(0x1234).Push(30).Op(BYTE) }))
	if got.Int64() != 0x12 {
		t.Errorf("byte(30) = %v", got)
	}
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(0x1234).Push(40).Op(BYTE) }))
	if got.Sign() != 0 {
		t.Errorf("byte(40) = %v, want 0", got)
	}
	// SHL/SHR. Stack: shift on top.
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(1).Push(4).Op(SHL) }))
	if got.Int64() != 16 {
		t.Errorf("1<<4 = %v", got)
	}
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(16).Push(4).Op(SHR) }))
	if got.Int64() != 1 {
		t.Errorf("16>>4 = %v", got)
	}
	got = runReturning(t, returnTop(func(a *Asm) { a.Push(1).Push(300).Op(SHL) }))
	if got.Sign() != 0 {
		t.Errorf("overshift should be 0, got %v", got)
	}
	// SAR on a negative value keeps the sign.
	got = runReturning(t, returnTop(func(a *Asm) { a.PushBig(neg(16)).Push(2).Op(SAR) }))
	if got.Cmp(neg(4)) != 0 {
		t.Errorf("-16 sar 2 = %v, want -4", got)
	}
	got = runReturning(t, returnTop(func(a *Asm) { a.PushBig(neg(1)).Push(300).Op(SAR) }))
	if got.Cmp(tt256m1) != 0 {
		t.Errorf("-1 sar 300 = %v, want -1", got)
	}
}

func TestMemoryOpcodes(t *testing.T) {
	// MSTORE8 writes a single byte.
	code := NewAsm().
		Push(0xAB).Push(3).Op(MSTORE8).
		Push(0).Op(MLOAD).
		Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN).MustAssemble()
	got := runReturning(t, code)
	want := new(big.Int).Lsh(big.NewInt(0xAB), 8*(31-3))
	if got.Cmp(want) != 0 {
		t.Errorf("MSTORE8 result = %x, want %x", got, want)
	}
	// MSIZE reflects expansion in 32-byte words.
	got = runReturning(t, returnTop(func(a *Asm) {
		a.Push(1).Push(40).Op(MSTORE) // touches bytes up to 72 -> 96 rounded
		a.Op(MSIZE)
	}))
	if got.Int64() != 96 {
		t.Errorf("MSIZE = %v, want 96", got)
	}
}

func TestCodeAndCalldataCopy(t *testing.T) {
	// CODECOPY: copy the first 4 bytes of own code to memory.
	a := NewAsm()
	a.Push(4).Push(0).Push(0).Op(CODECOPY) // size, codeOff, memOff
	a.Push(0).Op(MLOAD)
	a.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	code := a.MustAssemble()
	got := runReturning(t, code)
	gotBytes := got.Bytes() // leading zeros trimmed; first code byte is PUSH1 (0x60)
	if len(gotBytes) < 4 || !bytes.Equal(gotBytes[:4], code[:4]) {
		t.Errorf("CODECOPY = %x, want prefix %x", gotBytes, code[:4])
	}

	// CALLDATACOPY past the end of input zero-fills.
	e := newTestEVM()
	addr := deploy(e, NewAsm().
		Push(32).Push(0).Push(0).Op(CALLDATACOPY).
		Push(0).Op(MLOAD).
		Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN).MustAssemble())
	ret, _, err := e.Call(alice, addr, []byte{0xFF, 0xEE}, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 32)
	want[0], want[1] = 0xFF, 0xEE
	if !bytes.Equal(ret, want) {
		t.Errorf("CALLDATACOPY = %x", ret)
	}
}

func TestReturnData(t *testing.T) {
	e := newTestEVM()
	callee := deploy(e, returnTop(func(a *Asm) { a.Push(0xBEEF) }))
	caller := types.HexToAddress("0xca11")
	a := NewAsm()
	// Call callee with no output buffer, then pull via RETURNDATACOPY.
	a.Push(0).Push(0).Push(0).Push(0).Push(0)
	a.PushAddr(callee).Push(100_000).Op(CALL).Op(POP)
	a.Op(RETURNDATASIZE) // should be 32
	a.Push(0).Op(MSTORE)
	a.Push(32).Push(0).Push(32).Op(RETURNDATACOPY) // size=32, srcOff=0, memOff=32
	a.Push(64).Push(0).Op(RETURN)
	e.State.SetCode(caller, a.MustAssemble())
	ret, _, err := e.Call(alice, caller, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret) != 64 {
		t.Fatalf("returned %d bytes", len(ret))
	}
	if size := new(big.Int).SetBytes(ret[:32]); size.Int64() != 32 {
		t.Errorf("RETURNDATASIZE = %v", size)
	}
	if val := new(big.Int).SetBytes(ret[32:]); val.Int64() != 0xBEEF {
		t.Errorf("RETURNDATACOPY value = %x", val)
	}
}

func TestEnvironmentExtended(t *testing.T) {
	st := state.NewEmpty()
	st.AddBalance(alice, big.NewInt(5_000_000))
	coinbase := types.HexToAddress("0x90")
	e := New(st, Context{
		Coinbase: coinbase,
		Origin:   alice,
		GasPrice: big.NewInt(42),
	})
	if got := mustRun(t, e, returnTop(func(a *Asm) { a.Op(COINBASE) })); types.BytesToAddress(got.Bytes()) != coinbase {
		t.Errorf("COINBASE = %v", got)
	}
	if got := mustRun(t, e, returnTop(func(a *Asm) { a.Op(ORIGIN) })); types.BytesToAddress(got.Bytes()) != alice {
		t.Errorf("ORIGIN = %v", got)
	}
	if got := mustRun(t, e, returnTop(func(a *Asm) { a.Op(GASPRICE) })); got.Int64() != 42 {
		t.Errorf("GASPRICE = %v", got)
	}
	// SELFBALANCE: the contract received 77 wei with the call.
	addr := deploy(e, returnTop(func(a *Asm) { a.Op(SELFBALANCE) }))
	ret, _, err := e.Call(alice, addr, nil, big.NewInt(77), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Int64() != 77 {
		t.Errorf("SELFBALANCE = %x", ret)
	}
}

func mustRun(t *testing.T, e *EVM, code []byte) *big.Int {
	t.Helper()
	addr := types.HexToAddress("0xc0de00ff")
	e.State.SetCode(addr, code)
	ret, _, err := e.Call(alice, addr, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return new(big.Int).SetBytes(ret)
}

func TestLogs(t *testing.T) {
	e := newTestEVM()
	// LOG2 with data "xy" and two topics. LOG pops offset, size, then
	// the topics in order, so the stack is built bottom-up as
	// [topic2, topic1, size, offset].
	a := NewAsm()
	a.Push(0x7879).Push(0).Op(MSTORE) // mem[30:32] = "xy"
	a.Push(0xAAAA)                    // topic2
	a.Push(0xBBBB)                    // topic1
	a.Push(2)                         // size
	a.Push(30)                        // offset (top)
	a.Op(LOG2)
	a.Op(STOP)
	addr := deploy(e, a.MustAssemble())
	if _, _, err := e.Call(alice, addr, nil, nil, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(e.Logs) != 1 {
		t.Fatalf("logs = %d", len(e.Logs))
	}
	log := e.Logs[0]
	if log.Address != addr {
		t.Error("log address wrong")
	}
	if len(log.Topics) != 2 || log.Topics[0].Big().Int64() != 0xBBBB || log.Topics[1].Big().Int64() != 0xAAAA {
		t.Errorf("topics = %v", log.Topics)
	}
	if string(log.Data) != "xy" {
		t.Errorf("data = %q", log.Data)
	}
}

func TestLogsDiscardedOnRevert(t *testing.T) {
	e := newTestEVM()
	reverter := deploy(e, NewAsm().
		Push(0).Push(0).Op(LOG0).
		Push(0).Push(0).Op(REVERT).MustAssemble())
	caller := types.HexToAddress("0xcc")
	a := NewAsm()
	a.Push(0).Push(0).Op(LOG0) // this one survives
	a.Push(0).Push(0).Push(0).Push(0).Push(0)
	a.PushAddr(reverter).Push(50_000).Op(CALL).Op(POP)
	a.Op(STOP)
	e.State.SetCode(caller, a.MustAssemble())
	if _, _, err := e.Call(alice, caller, nil, nil, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(e.Logs) != 1 {
		t.Fatalf("logs after reverted sub-call = %d, want 1", len(e.Logs))
	}
	if e.Logs[0].Address != caller {
		t.Error("surviving log should be the caller's")
	}
}

func TestDelegateCall(t *testing.T) {
	e := newTestEVM()
	// Library: stores CALLVALUE at slot 1 and CALLER at slot 2 — under
	// DELEGATECALL these must be the *proxy's* value and original caller,
	// and the writes must land in the proxy's storage.
	library := deploy(e, func() []byte {
		a := NewAsm()
		a.Op(CALLVALUE) // [value]
		a.Push(1)       // [value, 1] — SSTORE pops key then value
		a.Op(SSTORE)    // slot1 = value
		a.Op(CALLER)
		a.Push(2)
		a.Op(SSTORE) // slot2 = caller
		a.Op(STOP)
		return a.MustAssemble()
	}())

	proxy := types.HexToAddress("0x9c0c59")
	a := NewAsm()
	a.Push(0).Push(0).Push(0).Push(0) // outSize outOff inSize inOff
	a.PushAddr(library)
	a.Push(200_000)
	a.Op(DELEGATECALL).Op(POP).Op(STOP)
	e.State.SetCode(proxy, a.MustAssemble())

	if _, _, err := e.Call(alice, proxy, nil, big.NewInt(55), 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Writes landed in the proxy's storage, not the library's.
	slot1 := e.State.GetState(proxy, types.BytesToHash([]byte{1}))
	if slot1.Big().Int64() != 55 {
		t.Errorf("proxy slot1 = %v, want 55 (CALLVALUE preserved)", slot1.Big())
	}
	caller := e.State.GetState(proxy, types.BytesToHash([]byte{2}))
	if types.BytesToAddress(caller.Bytes()) != alice {
		t.Errorf("proxy slot2 = %v, want original caller", caller)
	}
	if !e.State.GetState(library, types.BytesToHash([]byte{1})).IsZero() {
		t.Error("library storage must stay untouched under DELEGATECALL")
	}
}

func TestDelegateCallRevertsCleanly(t *testing.T) {
	e := newTestEVM()
	reverter := deploy(e, NewAsm().
		Push(9).Push(9).Op(SSTORE).
		Push(0).Push(0).Op(REVERT).MustAssemble())
	proxy := types.HexToAddress("0x9c0c59")
	a := NewAsm()
	a.Push(0).Push(0).Push(0).Push(0)
	a.PushAddr(reverter)
	a.Push(100_000)
	a.Op(DELEGATECALL) // pushes 0 on failure
	a.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	e.State.SetCode(proxy, a.MustAssemble())
	ret, _, err := e.Call(alice, proxy, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Sign() != 0 {
		t.Error("DELEGATECALL to reverting code should report failure")
	}
	if !e.State.GetState(proxy, types.BytesToHash([]byte{9})).IsZero() {
		t.Error("reverted delegate write persisted")
	}
}

// TestCreateOpcode: a factory contract spawns a child whose runtime
// returns 7, then the test calls the child directly (the DAO's
// child-spawning pattern).
func TestCreateOpcode(t *testing.T) {
	e := newTestEVM()
	// Child runtime: return 7.
	childRuntime := returnTop(func(a *Asm) { a.Push(7) })
	// Child init: write the runtime to memory and return it.
	childInit := NewAsm()
	padded := make([]byte, (len(childRuntime)+31)/32*32)
	copy(padded, childRuntime)
	for i := 0; i < len(padded); i += 32 {
		childInit.PushBytes(padded[i : i+32]).Push(uint64(i)).Op(MSTORE)
	}
	childInit.Push(uint64(len(childRuntime))).Push(0).Op(RETURN)
	init := childInit.MustAssemble()

	// Factory: CODECOPY the init code embedded after the "initcode"
	// label into memory, CREATE, return the child address. The label
	// emits a JUMPDEST, so the data starts one byte past it and the
	// CREATE reads from memory offset 1.
	factory := NewAsm()
	factory.Push(uint64(len(init)) + 1) // CODECOPY size incl. the JUMPDEST
	factory.PushLabel("initcode")       // code offset
	factory.Push(0)                     // memory offset
	factory.Op(CODECOPY)                // mem[0]=JUMPDEST, mem[1:]=init
	factory.Push(uint64(len(init)))     // CREATE: size (bottom)
	factory.Push(1)                     // offset: skip the JUMPDEST
	factory.Push(0)                     // value (top)
	factory.Op(CREATE)
	factory.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	factory.Label("initcode")
	for _, b := range init {
		factory.Op(OpCode(b)) // embedded data, never executed
	}

	factoryAddr := deploy(e, factory.MustAssemble())
	ret, _, err := e.Call(alice, factoryAddr, nil, nil, 2_000_000)
	if err != nil {
		t.Fatalf("factory call: %v", err)
	}
	childAddr := types.BytesToAddress(ret)
	if childAddr.IsZero() {
		t.Fatal("CREATE returned the zero address")
	}
	// Expected address: derived from the factory's address and its nonce
	// at creation time (0 here — the test installs code directly rather
	// than deploying, so the account never got the deployment nonce).
	if want := CreateAddress(factoryAddr, 0); childAddr != want {
		t.Fatalf("child at %s, want %s", childAddr, want)
	}
	out, _, err := e.Call(alice, childAddr, nil, nil, 100_000)
	if err != nil {
		t.Fatalf("child call: %v", err)
	}
	if new(big.Int).SetBytes(out).Int64() != 7 {
		t.Fatalf("child returned %x, want 7", out)
	}
}

// TestCreateOpcodeFailurePushesZero: failing init code (revert) yields
// address 0 and does not abort the creator.
func TestCreateOpcodeFailurePushesZero(t *testing.T) {
	e := newTestEVM()
	// init code = REVERT immediately: PUSH1 0 PUSH1 0 REVERT.
	a := NewAsm()
	a.PushBytes([]byte{byte(PUSH1), 0, byte(PUSH1), 0, byte(REVERT)}).Push(0).Op(MSTORE)
	// MSTORE right-aligns the word: the 5 code bytes sit at mem[27:32].
	a.Push(5)  // size (bottom of CREATE args)
	a.Push(27) // offset
	a.Push(0)  // value
	a.Op(CREATE)
	a.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	addr := deploy(e, a.MustAssemble())
	ret, _, err := e.Call(alice, addr, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Sign() != 0 {
		t.Fatalf("failed CREATE pushed %x, want 0", ret)
	}
}
