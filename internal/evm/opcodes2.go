package evm

// Extended instruction set: the arithmetic, bit, copy, logging and
// delegate-call opcodes beyond the core set in opcodes.go.
const (
	SDIV       OpCode = 0x05
	SMOD       OpCode = 0x07
	ADDMOD     OpCode = 0x08
	MULMOD     OpCode = 0x09
	EXP        OpCode = 0x0a
	SIGNEXTEND OpCode = 0x0b

	SLT  OpCode = 0x12
	SGT  OpCode = 0x13
	BYTE OpCode = 0x1a
	SHL  OpCode = 0x1b
	SHR  OpCode = 0x1c
	SAR  OpCode = 0x1d

	ORIGIN         OpCode = 0x32
	GASPRICE       OpCode = 0x3a
	CODESIZE       OpCode = 0x38
	CODECOPY       OpCode = 0x39
	CALLDATACOPY   OpCode = 0x37
	RETURNDATACOPY OpCode = 0x3e

	COINBASE    OpCode = 0x41
	SELFBALANCE OpCode = 0x47

	MSTORE8 OpCode = 0x53
	MSIZE   OpCode = 0x59

	LOG0 OpCode = 0xa0
	LOG1 OpCode = 0xa1
	LOG2 OpCode = 0xa2
	LOG3 OpCode = 0xa3
	LOG4 OpCode = 0xa4

	CREATE       OpCode = 0xf0
	DELEGATECALL OpCode = 0xf4
)

func init() {
	for op, name := range map[OpCode]string{
		SDIV: "SDIV", SMOD: "SMOD", ADDMOD: "ADDMOD", MULMOD: "MULMOD",
		EXP: "EXP", SIGNEXTEND: "SIGNEXTEND",
		SLT: "SLT", SGT: "SGT", BYTE: "BYTE", SHL: "SHL", SHR: "SHR", SAR: "SAR",
		ORIGIN: "ORIGIN", GASPRICE: "GASPRICE",
		CODESIZE: "CODESIZE", CODECOPY: "CODECOPY",
		CALLDATACOPY: "CALLDATACOPY", RETURNDATACOPY: "RETURNDATACOPY",
		COINBASE: "COINBASE", SELFBALANCE: "SELFBALANCE",
		MSTORE8: "MSTORE8", MSIZE: "MSIZE",
		LOG0: "LOG0", LOG1: "LOG1", LOG2: "LOG2", LOG3: "LOG3", LOG4: "LOG4",
		CREATE: "CREATE", DELEGATECALL: "DELEGATECALL",
	} {
		opNames[op] = name
	}
}
