package evm

import (
	"errors"
	"math/big"
	"testing"

	"forkwatch/internal/state"
	"forkwatch/internal/types"
)

var (
	alice = types.HexToAddress("0xa11ce")
	bob   = types.HexToAddress("0xb0b")
)

// newTestEVM returns an EVM over fresh state with alice funded.
func newTestEVM() *EVM {
	st := state.NewEmpty()
	st.AddBalance(alice, big.NewInt(1_000_000_000))
	return New(st, Context{BlockNumber: big.NewInt(1_920_000), Timestamp: 1_469_020_840})
}

// deploy installs code at a fixed address without running init code.
func deploy(e *EVM, code []byte) types.Address {
	addr := types.HexToAddress("0xc0de")
	e.State.SetCode(addr, code)
	return addr
}

// runReturning executes code that RETURNs a 32-byte word and decodes it.
func runReturning(t *testing.T, code []byte) *big.Int {
	t.Helper()
	e := newTestEVM()
	addr := deploy(e, code)
	ret, _, err := e.Call(alice, addr, nil, nil, 1_000_000)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if len(ret) != 32 {
		t.Fatalf("expected 32-byte return, got %d bytes", len(ret))
	}
	return new(big.Int).SetBytes(ret)
}

// returnTop wraps a computation so its top-of-stack result is returned.
func returnTop(build func(a *Asm)) []byte {
	a := NewAsm()
	build(a)
	a.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	return a.MustAssemble()
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Asm)
		want  int64
	}{
		{"add", func(a *Asm) { a.Push(3).Push(2).Op(ADD) }, 5},
		{"sub", func(a *Asm) { a.Push(3).Push(10).Op(SUB) }, 7},
		{"mul", func(a *Asm) { a.Push(6).Push(7).Op(MUL) }, 42},
		{"div", func(a *Asm) { a.Push(5).Push(20).Op(DIV) }, 4},
		{"div by zero", func(a *Asm) { a.Push(0).Push(20).Op(DIV) }, 0},
		{"mod", func(a *Asm) { a.Push(5).Push(17).Op(MOD) }, 2},
		{"mod by zero", func(a *Asm) { a.Push(0).Push(17).Op(MOD) }, 0},
		{"lt true", func(a *Asm) { a.Push(5).Push(3).Op(LT) }, 1},
		{"gt false", func(a *Asm) { a.Push(5).Push(3).Op(GT) }, 0},
		{"eq", func(a *Asm) { a.Push(9).Push(9).Op(EQ) }, 1},
		{"iszero", func(a *Asm) { a.Push(0).Op(ISZERO) }, 1},
		{"and", func(a *Asm) { a.Push(0b1100).Push(0b1010).Op(AND) }, 0b1000},
		{"or", func(a *Asm) { a.Push(0b1100).Push(0b1010).Op(OR) }, 0b1110},
		{"xor", func(a *Asm) { a.Push(0b1100).Push(0b1010).Op(XOR) }, 0b0110},
	}
	for _, tc := range cases {
		if got := runReturning(t, returnTop(tc.build)); got.Int64() != tc.want {
			t.Errorf("%s: got %v, want %d", tc.name, got, tc.want)
		}
	}
}

func TestAddWraps256Bits(t *testing.T) {
	max := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	code := returnTop(func(a *Asm) { a.Push(1).PushBig(max).Op(ADD) })
	if got := runReturning(t, code); got.Sign() != 0 {
		t.Errorf("2^256-1 + 1 = %v, want 0", got)
	}
}

func TestSubWrapsNegative(t *testing.T) {
	// 0 - 1 wraps to 2^256-1.
	code := returnTop(func(a *Asm) { a.Push(1).Push(0).Op(SUB) })
	want := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	if got := runReturning(t, code); got.Cmp(want) != 0 {
		t.Errorf("0-1 = %v, want 2^256-1", got)
	}
}

func TestEnvironmentOpcodes(t *testing.T) {
	if got := runReturning(t, returnTop(func(a *Asm) { a.Op(NUMBER) })); got.Int64() != 1_920_000 {
		t.Errorf("NUMBER = %v", got)
	}
	if got := runReturning(t, returnTop(func(a *Asm) { a.Op(TIMESTAMP) })); got.Int64() != 1_469_020_840 {
		t.Errorf("TIMESTAMP = %v", got)
	}
	if got := runReturning(t, returnTop(func(a *Asm) { a.Op(CALLER) })); types.BytesToAddress(got.Bytes()) != alice {
		t.Errorf("CALLER = %v", got)
	}
}

func TestCalldata(t *testing.T) {
	e := newTestEVM()
	addr := deploy(e, returnTop(func(a *Asm) { a.Push(0).Op(CALLDATALOAD) }))
	input := make([]byte, 32)
	input[31] = 0x2a
	ret, _, err := e.Call(alice, addr, input, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Int64() != 42 {
		t.Errorf("CALLDATALOAD = %x", ret)
	}
	// Reads past the end of calldata are zero-padded.
	short := deploy(e, returnTop(func(a *Asm) { a.Push(31).Op(CALLDATALOAD) }))
	ret, _, err = e.Call(alice, short, []byte{0xff}, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Sign() != 0 {
		t.Errorf("out-of-range CALLDATALOAD = %x, want 0", ret)
	}
}

func TestStoragePersistsAcrossCalls(t *testing.T) {
	e := newTestEVM()
	// First call stores 77 at slot 5; second call loads it.
	store := NewAsm().Push(77).Push(5).Op(SSTORE).Op(STOP).MustAssemble()
	addr := deploy(e, store)
	if _, _, err := e.Call(alice, addr, nil, nil, 1_000_000); err != nil {
		t.Fatal(err)
	}
	e.State.SetCode(addr, returnTop(func(a *Asm) { a.Push(5).Op(SLOAD) }))
	ret, _, err := e.Call(alice, addr, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Int64() != 77 {
		t.Errorf("SLOAD after SSTORE = %x", ret)
	}
}

func TestJumpLoop(t *testing.T) {
	// Sum 1..10 with a loop: i in slot of stack, acc on stack.
	a := NewAsm()
	a.Push(0)  // acc
	a.Push(10) // i
	a.Label("loop")
	// stack: [acc, i]
	a.Op(DUP1).JumpI("body")
	a.Jump("end")
	a.Label("body")
	// acc += i; i -= 1
	a.Op(DUP1)          // [acc, i, i]
	a.Op(SWAP1 + 1)     // SWAP2: [i, i, acc] -> top acc
	a.Op(ADD)           // [i, acc+i]
	a.Op(SWAP1)         // [acc', i]
	a.Push(1).Op(SWAP1) // [acc', i, 1] -> [acc', 1, i]
	a.Op(SUB)           // [acc', i-1]
	a.Jump("loop")
	a.Label("end")
	a.Op(POP) // drop i
	a.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	if got := runReturning(t, a.MustAssemble()); got.Int64() != 55 {
		t.Errorf("sum 1..10 = %v, want 55", got)
	}
}

func TestInvalidJumpFails(t *testing.T) {
	e := newTestEVM()
	addr := deploy(e, NewAsm().Push(3).Op(JUMP).MustAssemble())
	_, left, err := e.Call(alice, addr, nil, nil, 10_000)
	if !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", err)
	}
	if left != 0 {
		t.Errorf("invalid jump should consume all gas, left %d", left)
	}
}

func TestJumpIntoPushDataFails(t *testing.T) {
	// PUSH2 0x005b JUMP: byte 0x5b exists at pc 2 but inside push data.
	e := newTestEVM()
	code := []byte{byte(PUSH1) + 1, 0x00, 0x5b, byte(PUSH1), 0x02, byte(JUMP)}
	addr := deploy(e, code)
	if _, _, err := e.Call(alice, addr, nil, nil, 10_000); !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", err)
	}
}

func TestOutOfGas(t *testing.T) {
	e := newTestEVM()
	// Infinite loop.
	addr := deploy(e, NewAsm().Label("l").Jump("l").MustAssemble())
	_, left, err := e.Call(alice, addr, nil, nil, 5_000)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", err)
	}
	if left != 0 {
		t.Errorf("out of gas should consume everything, left %d", left)
	}
}

func TestRevertRollsBackStateAndRefundsGas(t *testing.T) {
	e := newTestEVM()
	addr := deploy(e, NewAsm().
		Push(1).Push(0).Op(SSTORE). // write, then revert
		Push(0).Push(0).Op(REVERT).MustAssemble())
	_, left, err := e.Call(alice, addr, nil, nil, 100_000)
	if !errors.Is(err, ErrRevert) {
		t.Fatalf("err = %v, want ErrRevert", err)
	}
	if left == 0 {
		t.Error("REVERT should refund remaining gas")
	}
	if !e.State.GetState(addr, types.Hash{}).IsZero() {
		t.Error("state write survived revert")
	}
}

func TestStackUnderflowOverflow(t *testing.T) {
	e := newTestEVM()
	addr := deploy(e, NewAsm().Op(ADD).MustAssemble())
	if _, _, err := e.Call(alice, addr, nil, nil, 10_000); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want ErrStackUnderflow", err)
	}
	over := NewAsm().Label("l").Push(1).Jump("l").MustAssemble()
	addr2 := deploy(e, over)
	if _, _, err := e.Call(alice, addr2, nil, nil, 100_000); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestInvalidOpcode(t *testing.T) {
	e := newTestEVM()
	addr := deploy(e, []byte{0xef})
	if _, _, err := e.Call(alice, addr, nil, nil, 10_000); !errors.Is(err, ErrInvalidOpcode) {
		t.Fatalf("err = %v, want ErrInvalidOpcode", err)
	}
}

func TestPlainTransfer(t *testing.T) {
	e := newTestEVM()
	if _, _, err := e.Call(alice, bob, nil, big.NewInt(500), 21_000); err != nil {
		t.Fatal(err)
	}
	if got := e.State.GetBalance(bob); got.Int64() != 500 {
		t.Errorf("bob balance = %v", got)
	}
	if _, _, err := e.Call(bob, alice, nil, big.NewInt(501), 21_000); !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("overdraft err = %v", err)
	}
}

func TestCallTransfersValueAndReturnsData(t *testing.T) {
	e := newTestEVM()
	callee := deploy(e, returnTop(func(a *Asm) { a.Op(CALLVALUE) }))
	// Caller contract forwards 123 wei and returns the callee's output.
	caller := types.HexToAddress("0xca11e4")
	a := NewAsm()
	a.Push(32).Push(0) // outSize, outOff
	a.Push(0).Push(0)  // inSize, inOff
	a.Push(123)        // value
	a.PushAddr(callee) // to
	a.Push(100_000)    // gas
	a.Op(CALL).Op(POP)
	a.Push(32).Push(0).Op(RETURN)
	e.State.SetCode(caller, a.MustAssemble())
	e.State.AddBalance(caller, big.NewInt(1000))

	ret, _, err := e.Call(alice, caller, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Int64() != 123 {
		t.Errorf("forwarded CALLVALUE = %x, want 123", ret)
	}
	if got := e.State.GetBalance(callee); got.Int64() != 123 {
		t.Errorf("callee balance = %v", got)
	}
}

func TestFailedInnerCallDoesNotAbortCaller(t *testing.T) {
	e := newTestEVM()
	reverter := deploy(e, NewAsm().Push(0).Push(0).Op(REVERT).MustAssemble())
	caller := types.HexToAddress("0xca11e4")
	a := NewAsm()
	a.Push(0).Push(0).Push(0).Push(0).Push(0)
	a.PushAddr(reverter)
	a.Push(50_000)
	a.Op(CALL) // pushes 0 on failure
	a.Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN)
	e.State.SetCode(caller, a.MustAssemble())
	ret, _, err := e.Call(alice, caller, nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Sign() != 0 {
		t.Errorf("CALL success flag = %x, want 0", ret)
	}
}

func TestCallDepthLimit(t *testing.T) {
	e := newTestEVM()
	self := types.HexToAddress("0x5e1f")
	// Contract that calls itself forever; 63/64 gas retention plus the
	// depth limit must terminate it without error at the top level.
	a := NewAsm()
	a.Push(0).Push(0).Push(0).Push(0).Push(0)
	a.PushAddr(self)
	a.Op(GAS)
	a.Op(CALL).Op(POP).Op(STOP)
	e.State.SetCode(self, a.MustAssemble())
	if _, _, err := e.Call(alice, self, nil, nil, 10_000_000); err != nil {
		t.Fatalf("self-recursive call failed at top level: %v", err)
	}
}

func TestSha3Opcode(t *testing.T) {
	// keccak256 of 32 zero bytes.
	code := NewAsm().
		Push(32).Push(0).Op(SHA3).
		Push(0).Op(MSTORE).Push(32).Push(0).Op(RETURN).MustAssemble()
	got := runReturning(t, code)
	want := types.HexToHash("0x290decd9548b62a8d60345a988386fc84ba6bc95484008f6362f93160ef3e563")
	if types.BytesToHash(got.Bytes()) != want {
		t.Errorf("SHA3(zero32) = %x, want %s", got, want)
	}
}

func TestCreateDeploysRuntimeCode(t *testing.T) {
	e := newTestEVM()
	runtime := returnTop(func(a *Asm) { a.Push(7) })
	// Init code: write the runtime into memory word by word, return it.
	init := NewAsm()
	padded := make([]byte, (len(runtime)+31)/32*32)
	copy(padded, runtime)
	for i := 0; i < len(padded); i += 32 {
		init.PushBytes(padded[i : i+32]).Push(uint64(i)).Op(MSTORE)
	}
	init.Push(uint64(len(runtime))).Push(0).Op(RETURN)

	addr, _, err := e.Create(alice, init.MustAssemble(), nil, 1_000_000)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	ret, _, err := e.Call(alice, addr, nil, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Int64() != 7 {
		t.Errorf("deployed contract returned %x", ret)
	}
}

func TestCreateAddressDeterministic(t *testing.T) {
	a0 := CreateAddress(alice, 0)
	a1 := CreateAddress(alice, 1)
	b0 := CreateAddress(bob, 0)
	if a0 == a1 || a0 == b0 {
		t.Error("create addresses should differ across nonce and creator")
	}
	if a0 != CreateAddress(alice, 0) {
		t.Error("create address not deterministic")
	}
}

func TestChainIDOpcode(t *testing.T) {
	st := state.NewEmpty()
	st.AddBalance(alice, big.NewInt(1_000_000))
	e := New(st, Context{ChainID: 61}) // ETC chain id
	addr := deploy(e, returnTop(func(a *Asm) { a.Op(CHAINID) }))
	ret, _, err := e.Call(alice, addr, nil, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).SetBytes(ret).Int64() != 61 {
		t.Errorf("CHAINID = %x, want 61", ret)
	}
}

func TestAsmErrors(t *testing.T) {
	if _, err := NewAsm().Jump("nowhere").Assemble(); err == nil {
		t.Error("undefined label should fail")
	}
	if _, err := NewAsm().Label("x").Label("x").Assemble(); err == nil {
		t.Error("duplicate label should fail")
	}
	if _, err := NewAsm().PushBytes(make([]byte, 33)).Assemble(); err == nil {
		t.Error("oversized push should fail")
	}
	if _, err := NewAsm().PushBig(big.NewInt(-1)).Assemble(); err == nil {
		t.Error("negative push should fail")
	}
}

func TestOpCodeString(t *testing.T) {
	cases := map[OpCode]string{
		ADD:       "ADD",
		PUSH1:     "PUSH1",
		PUSH32:    "PUSH32",
		DUP1 + 3:  "DUP4",
		SWAP1 + 7: "SWAP8",
		0xfe:      "INVALID(0xfe)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", byte(op), got, want)
		}
	}
}

// TestCreateAddressVectors pins contract-address derivation to the
// go-ethereum test vectors.
func TestCreateAddressVectors(t *testing.T) {
	creator := types.HexToAddress("0x970e8128ab834e8eac17ab8e3812f010678cf791")
	cases := map[uint64]string{
		0: "0x333c3310824b7c685133f2bedb2ca4b8b4df633d",
		1: "0x8bda78331c916a08481428e4b07c96d3e916d165",
		2: "0xc9ddedf451bc62ce88bf9292afb13df35b670699",
	}
	for nonce, want := range cases {
		if got := CreateAddress(creator, nonce); got != types.HexToAddress(want) {
			t.Errorf("CreateAddress(nonce %d) = %s, want %s", nonce, got, want)
		}
	}
	// Large nonce exercises the multi-byte RLP path.
	big1 := CreateAddress(creator, 0x1234)
	big2 := CreateAddress(creator, 0x1235)
	if big1 == big2 || big1.IsZero() {
		t.Error("multi-byte nonce derivation broken")
	}
}
