package evm

import "fmt"

// OpCode is an EVM instruction byte.
type OpCode byte

// Supported instruction set (Ethereum opcode numbering).
const (
	STOP OpCode = 0x00
	ADD  OpCode = 0x01
	MUL  OpCode = 0x02
	SUB  OpCode = 0x03
	DIV  OpCode = 0x04
	MOD  OpCode = 0x06

	LT     OpCode = 0x10
	GT     OpCode = 0x11
	EQ     OpCode = 0x14
	ISZERO OpCode = 0x15
	AND    OpCode = 0x16
	OR     OpCode = 0x17
	XOR    OpCode = 0x18
	NOT    OpCode = 0x19

	SHA3 OpCode = 0x20

	ADDRESS        OpCode = 0x30
	BALANCE        OpCode = 0x31
	CALLER         OpCode = 0x33
	CALLVALUE      OpCode = 0x34
	CALLDATALOAD   OpCode = 0x35
	CALLDATASIZE   OpCode = 0x36
	RETURNDATASIZE OpCode = 0x3d

	TIMESTAMP OpCode = 0x42
	NUMBER    OpCode = 0x43
	CHAINID   OpCode = 0x46

	POP      OpCode = 0x50
	MLOAD    OpCode = 0x51
	MSTORE   OpCode = 0x52
	SLOAD    OpCode = 0x54
	SSTORE   OpCode = 0x55
	JUMP     OpCode = 0x56
	JUMPI    OpCode = 0x57
	PC       OpCode = 0x58
	GAS      OpCode = 0x5a
	JUMPDEST OpCode = 0x5b

	PUSH1  OpCode = 0x60
	PUSH32 OpCode = 0x7f
	DUP1   OpCode = 0x80
	DUP16  OpCode = 0x8f
	SWAP1  OpCode = 0x90
	SWAP16 OpCode = 0x9f

	CALL   OpCode = 0xf1
	RETURN OpCode = 0xf3
	REVERT OpCode = 0xfd
)

// opNames maps mnemonics for the assembler and String.
var opNames = map[OpCode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV", MOD: "MOD",
	LT: "LT", GT: "GT", EQ: "EQ", ISZERO: "ISZERO",
	AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT",
	SHA3: "SHA3", ADDRESS: "ADDRESS", BALANCE: "BALANCE", CALLER: "CALLER",
	CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD", CALLDATASIZE: "CALLDATASIZE",
	RETURNDATASIZE: "RETURNDATASIZE",
	TIMESTAMP:      "TIMESTAMP", NUMBER: "NUMBER", CHAINID: "CHAINID",
	POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE", SLOAD: "SLOAD", SSTORE: "SSTORE",
	JUMP: "JUMP", JUMPI: "JUMPI", PC: "PC", GAS: "GAS", JUMPDEST: "JUMPDEST",
	CALL: "CALL", RETURN: "RETURN", REVERT: "REVERT",
}

// String returns the mnemonic of the opcode.
func (op OpCode) String() string {
	if name, ok := opNames[op]; ok {
		return name
	}
	switch {
	case op >= PUSH1 && op <= PUSH32:
		return fmt.Sprintf("PUSH%d", op-PUSH1+1)
	case op >= DUP1 && op <= DUP16:
		return fmt.Sprintf("DUP%d", op-DUP1+1)
	case op >= SWAP1 && op <= SWAP16:
		return fmt.Sprintf("SWAP%d", op-SWAP1+1)
	}
	return fmt.Sprintf("INVALID(0x%02x)", byte(op))
}
