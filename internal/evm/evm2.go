package evm

import (
	"math/big"

	"forkwatch/internal/types"
)

// Log is one LOG0..LOG4 event emitted during execution. Logs from
// reverted frames are discarded, as in Ethereum.
type Log struct {
	Address types.Address
	Topics  []types.Hash
	Data    []byte
}

// signed interprets v as a two's-complement 256-bit integer.
func signed(v *big.Int) *big.Int {
	if v.Bit(255) == 1 {
		return new(big.Int).Sub(v, tt256)
	}
	return new(big.Int).Set(v)
}

// fromSigned wraps a signed value back into the 256-bit unsigned domain.
func fromSigned(v *big.Int) *big.Int {
	if v.Sign() < 0 {
		return new(big.Int).Add(v, tt256)
	}
	return u256(new(big.Int).Set(v))
}

// stepExtended handles the opcodes added in opcodes2.go. It reports
// handled=false for opcodes it does not know.
func (e *EVM) stepExtended(f *frame, op OpCode) (handled bool, err error) {
	switch op {
	case SDIV, SMOD, SLT, SGT:
		if err := f.useGas(GasFastStep); err != nil {
			return true, err
		}
		x, err := f.pop()
		if err != nil {
			return true, err
		}
		y, err := f.pop()
		if err != nil {
			return true, err
		}
		sx, sy := signed(x), signed(y)
		var z *big.Int
		switch op {
		case SDIV:
			if sy.Sign() == 0 {
				z = new(big.Int)
			} else {
				z = fromSigned(new(big.Int).Quo(sx, sy))
			}
		case SMOD:
			if sy.Sign() == 0 {
				z = new(big.Int)
			} else {
				z = fromSigned(new(big.Int).Rem(sx, sy))
			}
		case SLT:
			z = boolToBig(sx.Cmp(sy) < 0)
		case SGT:
			z = boolToBig(sx.Cmp(sy) > 0)
		}
		if err := f.push(z); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case ADDMOD, MULMOD:
		if err := f.useGas(GasMidStep); err != nil {
			return true, err
		}
		x, err := f.pop()
		if err != nil {
			return true, err
		}
		y, err := f.pop()
		if err != nil {
			return true, err
		}
		m, err := f.pop()
		if err != nil {
			return true, err
		}
		z := new(big.Int)
		if m.Sign() != 0 {
			if op == ADDMOD {
				z.Add(x, y)
			} else {
				z.Mul(x, y)
			}
			z.Mod(z, m)
		}
		if err := f.push(z); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case EXP:
		base, err := f.pop()
		if err != nil {
			return true, err
		}
		exp, err := f.pop()
		if err != nil {
			return true, err
		}
		// 10 + 10 per exponent byte (Homestead's 0x0a pricing shape).
		expBytes := uint64((exp.BitLen() + 7) / 8)
		if err := f.useGas(GasSlowStep + GasSlowStep*expBytes); err != nil {
			return true, err
		}
		z := new(big.Int).Exp(base, exp, tt256)
		if err := f.push(z); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case SIGNEXTEND:
		if err := f.useGas(GasFastStep); err != nil {
			return true, err
		}
		back, err := f.pop()
		if err != nil {
			return true, err
		}
		val, err := f.pop()
		if err != nil {
			return true, err
		}
		z := new(big.Int).Set(val)
		if back.IsUint64() && back.Uint64() < 31 {
			bit := uint(back.Uint64()*8 + 7)
			mask := new(big.Int).Lsh(big.NewInt(1), bit+1)
			mask.Sub(mask, big.NewInt(1))
			if val.Bit(int(bit)) == 1 {
				z.Or(val, new(big.Int).Xor(tt256m1, mask))
			} else {
				z.And(val, mask)
			}
		}
		if err := f.push(u256(z)); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case BYTE:
		if err := f.useGas(GasFastestStep); err != nil {
			return true, err
		}
		idx, err := f.pop()
		if err != nil {
			return true, err
		}
		val, err := f.pop()
		if err != nil {
			return true, err
		}
		z := new(big.Int)
		if idx.IsUint64() && idx.Uint64() < 32 {
			b := val.Bytes()
			// Left-pad conceptually to 32 bytes.
			pos := int(idx.Uint64()) - (32 - len(b))
			if pos >= 0 {
				z.SetInt64(int64(b[pos]))
			}
		}
		if err := f.push(z); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case SHL, SHR, SAR:
		if err := f.useGas(GasFastestStep); err != nil {
			return true, err
		}
		shift, err := f.pop()
		if err != nil {
			return true, err
		}
		val, err := f.pop()
		if err != nil {
			return true, err
		}
		var z *big.Int
		switch {
		case op == SAR:
			sv := signed(val)
			if !shift.IsUint64() || shift.Uint64() >= 256 {
				if sv.Sign() < 0 {
					z = new(big.Int).Set(tt256m1) // -1
				} else {
					z = new(big.Int)
				}
			} else {
				z = fromSigned(sv.Rsh(sv, uint(shift.Uint64())))
			}
		case !shift.IsUint64() || shift.Uint64() >= 256:
			z = new(big.Int)
		case op == SHL:
			z = u256(new(big.Int).Lsh(val, uint(shift.Uint64())))
		default: // SHR
			z = new(big.Int).Rsh(val, uint(shift.Uint64()))
		}
		if err := f.push(z); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case ORIGIN, GASPRICE, COINBASE, SELFBALANCE, CODESIZE, MSIZE, RETURNDATASIZE:
		if err := f.useGas(GasQuickStep); err != nil {
			return true, err
		}
		var v *big.Int
		switch op {
		case ORIGIN:
			v = new(big.Int).SetBytes(e.Ctx.Origin.Bytes())
		case GASPRICE:
			v = types.BigCopy(e.Ctx.GasPrice)
			if v == nil {
				v = new(big.Int)
			}
		case COINBASE:
			v = new(big.Int).SetBytes(e.Ctx.Coinbase.Bytes())
		case SELFBALANCE:
			v = e.State.GetBalance(f.address)
		case CODESIZE:
			v = big.NewInt(int64(len(f.code)))
		case MSIZE:
			v = big.NewInt(int64(len(f.mem)))
		case RETURNDATASIZE:
			v = big.NewInt(int64(len(f.returnData)))
		}
		if err := f.push(v); err != nil {
			return true, err
		}
		f.pc++
		return true, nil

	case CODECOPY, CALLDATACOPY, RETURNDATACOPY:
		var src []byte
		switch op {
		case CODECOPY:
			src = f.code
		case CALLDATACOPY:
			src = f.input
		case RETURNDATACOPY:
			src = f.returnData
		}
		memOff, err := f.pop()
		if err != nil {
			return true, err
		}
		srcOff, err := f.pop()
		if err != nil {
			return true, err
		}
		size, err := f.pop()
		if err != nil {
			return true, err
		}
		if err := f.extendMem(memOff, size); err != nil {
			return true, err
		}
		words := (size.Uint64() + 31) / 32
		if err := f.useGas(GasFastestStep + GasCopyWord*words); err != nil {
			return true, err
		}
		if size.Sign() > 0 {
			dst := f.memSlice(memOff.Uint64(), size.Uint64())
			n := 0
			if srcOff.IsUint64() && srcOff.Uint64() < uint64(len(src)) {
				n = copy(dst, src[srcOff.Uint64():])
			}
			for i := n; i < len(dst); i++ {
				dst[i] = 0 // out-of-range reads are zero-filled
			}
		}
		f.pc++
		return true, nil

	case MSTORE8:
		if err := f.useGas(GasFastestStep); err != nil {
			return true, err
		}
		off, err := f.pop()
		if err != nil {
			return true, err
		}
		val, err := f.pop()
		if err != nil {
			return true, err
		}
		if err := f.extendMem(off, big.NewInt(1)); err != nil {
			return true, err
		}
		f.mem[off.Uint64()] = byte(val.Uint64())
		f.pc++
		return true, nil

	case LOG0, LOG1, LOG2, LOG3, LOG4:
		nTopics := int(op - LOG0)
		off, err := f.pop()
		if err != nil {
			return true, err
		}
		size, err := f.pop()
		if err != nil {
			return true, err
		}
		if err := f.extendMem(off, size); err != nil {
			return true, err
		}
		if err := f.useGas(GasLog + GasLog*uint64(nTopics) + 8*size.Uint64()); err != nil {
			return true, err
		}
		log := Log{Address: f.address}
		for i := 0; i < nTopics; i++ {
			topic, err := f.pop()
			if err != nil {
				return true, err
			}
			log.Topics = append(log.Topics, types.BytesToHash(topic.Bytes()))
		}
		log.Data = append([]byte(nil), f.memSlice(off.Uint64(), size.Uint64())...)
		e.Logs = append(e.Logs, log)
		f.pc++
		return true, nil

	case CREATE:
		return true, e.opCreate(f)

	case DELEGATECALL:
		return true, e.opDelegateCall(f)

	default:
		return false, nil
	}
}

// opCreate implements CREATE: value, memOffset, memSize of init code.
// Pushes the new contract address (or 0 on failure). The DAO itself was a
// factory contract spawning child DAOs with exactly this opcode.
func (e *EVM) opCreate(f *frame) error {
	value, err := f.pop()
	if err != nil {
		return err
	}
	off, err := f.pop()
	if err != nil {
		return err
	}
	size, err := f.pop()
	if err != nil {
		return err
	}
	if err := f.useGas(GasCreate); err != nil {
		return err
	}
	if err := f.extendMem(off, size); err != nil {
		return err
	}
	initCode := append([]byte(nil), f.memSlice(off.Uint64(), size.Uint64())...)

	// All-but-one-64th forwarding, as for calls.
	callGas := f.gas - f.gas/64
	if err := f.useGas(callGas); err != nil {
		return err
	}
	addr, left, err := e.Create(f.address, initCode, value, callGas)
	f.gas += left
	f.returnData = nil

	if err != nil {
		if pushErr := f.push(new(big.Int)); pushErr != nil {
			return pushErr
		}
	} else {
		if pushErr := f.push(new(big.Int).SetBytes(addr.Bytes())); pushErr != nil {
			return pushErr
		}
	}
	f.pc++
	return nil
}

// opDelegateCall implements DELEGATECALL: run another contract's code in
// the current contract's storage/balance context, preserving caller and
// value — the library-call primitive.
func (e *EVM) opDelegateCall(f *frame) error {
	args := make([]*big.Int, 6)
	for i := range args {
		v, err := f.pop()
		if err != nil {
			return err
		}
		args[i] = v
	}
	gasArg, toArg := args[0], args[1]
	inOff, inSize, outOff, outSize := args[2], args[3], args[4], args[5]

	if err := f.useGas(GasCall); err != nil {
		return err
	}
	if err := f.extendMem(inOff, inSize); err != nil {
		return err
	}
	if err := f.extendMem(outOff, outSize); err != nil {
		return err
	}
	input := append([]byte(nil), f.memSlice(inOff.Uint64(), inSize.Uint64())...)

	maxForward := f.gas - f.gas/64
	callGas := maxForward
	if gasArg.IsUint64() && gasArg.Uint64() < maxForward {
		callGas = gasArg.Uint64()
	}
	if err := f.useGas(callGas); err != nil {
		return err
	}

	codeAddr := types.BytesToAddress(toArg.Bytes())
	code := e.State.GetCode(codeAddr)

	var ret []byte
	var left uint64
	var err error
	if len(code) == 0 {
		left = callGas // delegate to empty code: trivially succeeds
	} else if e.depth >= MaxCallDepth {
		err = ErrDepth
	} else {
		snap := e.State.Snapshot()
		logMark := len(e.Logs)
		e.depth++
		// Same address and caller and value as the current frame: only
		// the code is borrowed.
		inner := newFrame(f.caller, f.address, input, f.value, callGas, code)
		ret, left, err = e.run(inner)
		e.depth--
		if err != nil {
			e.State.RevertToSnapshot(snap)
			e.Logs = e.Logs[:logMark]
			if !errorsIsRevert(err) {
				left = 0
			}
		}
	}
	f.gas += left
	f.returnData = append([]byte(nil), ret...)

	if err == nil && outSize.Uint64() > 0 {
		dst := f.memSlice(outOff.Uint64(), outSize.Uint64())
		n := copy(dst, ret)
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
	}
	if pushErr := f.push(boolToBig(err == nil)); pushErr != nil {
		return pushErr
	}
	f.pc++
	return nil
}
